package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"testing"
	"time"

	"kamel/internal/obs"
)

// traceJSON fetches one tracing-plane URL and decodes it, returning the
// status code so callers can assert error paths too.
func traceJSON(t *testing.T, url string, v interface{}) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == http.StatusOK && v != nil {
		if err := json.Unmarshal(raw, v); err != nil {
			t.Fatalf("decoding %s: %v\n%s", url, err, raw)
		}
	}
	return resp.StatusCode
}

func isHexID(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// waitTraceListed polls /v1/traces until the trace shows up: the observe
// middleware records the trace after the handler's response is flushed, so
// the client can race the store write by a hair.
func waitTraceListed(t *testing.T, base, query, traceID string) wireTraceSummary {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var resp wireTracesResponse
		if st := traceJSON(t, base+"/v1/traces"+query, &resp); st == http.StatusOK {
			for _, tr := range resp.Traces {
				if tr.TraceID == traceID {
					return tr
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never appeared in %s/v1/traces%s", traceID, base, query)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeTraceRetentionAndRetrieval: with head sampling at 1, an ordinary
// request is retained and retrievable after the fact — listed on /v1/traces,
// expanded by /v1/traces/{id}, and linked from the route histogram's
// exemplars — and the response announced its trace ID in a header.
func TestServeTraceRetentionAndRetrieval(t *testing.T) {
	opts := defaultServeOptions()
	opts.traceSample = 1
	ts := newTestServerOpts(t, opts)

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	traceID := resp.Header.Get("X-Kamel-Trace-ID")
	if !isHexID(traceID, 32) {
		t.Fatalf("X-Kamel-Trace-ID = %q, want 32 hex chars", traceID)
	}

	sum := waitTraceListed(t, ts.URL, "?route=/v1/stats", traceID)
	if sum.Retained != obs.RetainHead {
		t.Errorf("retained = %q, want %q", sum.Retained, obs.RetainHead)
	}
	if sum.Node != "local" {
		t.Errorf("node = %q, want local on a single-node server", sum.Node)
	}
	if sum.Status != http.StatusOK {
		t.Errorf("status = %d, want 200", sum.Status)
	}

	var doc wireTraceDoc
	if st := traceJSON(t, ts.URL+"/v1/traces/"+traceID, &doc); st != http.StatusOK {
		t.Fatalf("trace detail status %d", st)
	}
	if doc.TraceID != traceID || len(doc.Hops) == 0 {
		t.Fatalf("detail doc = %+v, want one hop for %s", doc, traceID)
	}
	hop := doc.Hops[0]
	if hop.Route != "/v1/stats" || !isHexID(hop.SpanID, 16) || hop.ParentSpanID != "" {
		t.Errorf("hop = %+v, want a root /v1/stats hop with a 16-hex span id", hop)
	}

	// The listing carries the histogram exemplars; the stats request's bucket
	// must point at a retrievable trace.
	var listing wireTracesResponse
	if st := traceJSON(t, ts.URL+"/v1/traces", &listing); st != http.StatusOK {
		t.Fatalf("listing status %d", st)
	}
	foundExemplar := false
	for _, ex := range listing.Exemplars {
		if ex.Metric == "kamel_http_request_duration_seconds" &&
			ex.Labels["route"] == "/v1/stats" && ex.TraceID == traceID {
			foundExemplar = true
		}
	}
	if !foundExemplar {
		t.Errorf("no /v1/stats exemplar carrying trace %s in %+v", traceID, listing.Exemplars)
	}

	// Error paths: unknown id 404, malformed filters 400.
	if st := traceJSON(t, ts.URL+"/v1/traces/"+strings.Repeat("0f", 16), nil); st != http.StatusNotFound {
		t.Errorf("unknown trace id: status %d, want 404", st)
	}
	for _, bad := range []string{"?min-duration=bogus", "?status=abc", "?limit=-1"} {
		if st := traceJSON(t, ts.URL+"/v1/traces"+bad, nil); st != http.StatusBadRequest {
			t.Errorf("filter %s: status %d, want 400", bad, st)
		}
	}
}

// TestServeTraceSamplingAndTailRetention: with head sampling off, an ordinary
// request is NOT listed — but stays briefly reachable by ID through the
// recent ring (the property cross-node stitching relies on) — while a slow
// request is retained regardless of the head decision.
func TestServeTraceSamplingAndTailRetention(t *testing.T) {
	opts := defaultServeOptions()
	opts.traceSample = 0
	ts := newTestServerOpts(t, opts)

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	traceID := resp.Header.Get("X-Kamel-Trace-ID")

	// Reachable by ID (recent ring) without ever being listed.
	deadline := time.Now().Add(5 * time.Second)
	for traceJSON(t, ts.URL+"/v1/traces/"+traceID, nil) != http.StatusOK {
		if time.Now().After(deadline) {
			t.Fatal("unsampled trace never reached the recent ring")
		}
		time.Sleep(10 * time.Millisecond)
	}
	var listing wireTracesResponse
	traceJSON(t, ts.URL+"/v1/traces?route=/v1/stats", &listing)
	for _, tr := range listing.Traces {
		if tr.TraceID == traceID {
			t.Error("unsampled, fast, successful request was retained")
		}
	}

	// Tail retention: same sampling-off server, but a slow threshold of 1ns
	// forces every request into the slow class.
	opts2 := defaultServeOptions()
	opts2.traceSample = 0
	opts2.traceSlow = time.Nanosecond
	ts2 := newTestServerOpts(t, opts2)
	resp2, err := http.Get(ts2.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	slowID := resp2.Header.Get("X-Kamel-Trace-ID")
	if sum := waitTraceListed(t, ts2.URL, "?route=/v1/stats", slowID); sum.Retained != obs.RetainSlow {
		t.Errorf("retained = %q, want %q", sum.Retained, obs.RetainSlow)
	}
}

// TestServeTraceIDInErrorEnvelope: a shed request (429) carries its trace ID
// in the structured error envelope, and the trace is tail-retained with
// reason "error" even with head sampling off.
func TestServeTraceIDInErrorEnvelope(t *testing.T) {
	opts := defaultServeOptions()
	opts.traceSample = 0
	opts.maxInflight = 1
	ts := newTestServerOpts(t, opts)

	// Occupy the single limiter slot with an impute whose body never arrives:
	// the handler blocks reading the pipe inside the slot.
	pr, pw := io.Pipe()
	blocked := make(chan struct{})
	go func() {
		defer close(blocked)
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/impute", pr)
		req.Header.Set("Content-Type", "application/json")
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}()
	release := func() {
		pw.CloseWithError(io.ErrClosedPipe)
		<-blocked
	}
	defer release()

	// Poll until the blocked request holds the slot and a probe is shed.
	var shedResp *http.Response
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			shedResp = resp
			break
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatal("limiter never shed a request")
		}
		time.Sleep(5 * time.Millisecond)
	}
	defer shedResp.Body.Close()

	var env struct {
		Error wireError `json:"error"`
	}
	if err := json.NewDecoder(shedResp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	headerID := shedResp.Header.Get("X-Kamel-Trace-ID")
	if !isHexID(env.Error.TraceID, 32) {
		t.Fatalf("429 envelope trace_id = %q, want 32 hex chars", env.Error.TraceID)
	}
	if env.Error.TraceID != headerID {
		t.Errorf("envelope trace_id %s != X-Kamel-Trace-ID %s", env.Error.TraceID, headerID)
	}
	// Free the limiter slot before polling the trace listing — those polls
	// would otherwise be shed too.
	release()
	if sum := waitTraceListed(t, ts.URL, "?status=429", env.Error.TraceID); sum.Retained != obs.RetainError {
		t.Errorf("retained = %q, want %q", sum.Retained, obs.RetainError)
	}
}

// TestServeSlowLogCarriesTraceID: the slow-request warn line names the trace,
// so a log reader can jump straight to /v1/traces/{id}.
func TestServeSlowLogCarriesTraceID(t *testing.T) {
	var logBuf syncBuffer
	opts := defaultServeOptions()
	opts.traceSample = 0
	opts.slowRequest = 1 // nanosecond: every request logs as slow
	opts.logger = slog.New(slog.NewJSONHandler(&logBuf, nil))
	ts := newTestServerOpts(t, opts)

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	traceID := resp.Header.Get("X-Kamel-Trace-ID")

	logs := logBuf.String()
	if !strings.Contains(logs, `"msg":"slow request"`) {
		t.Fatalf("no slow-request warn line:\n%s", logs)
	}
	if !strings.Contains(logs, `"trace_id":"`+traceID+`"`) {
		t.Errorf("slow-request line missing trace_id %s:\n%s", traceID, logs)
	}
}

// TestServeBuildInfoMetric: the deployment-identity gauge is on /metrics.
func TestServeBuildInfoMetric(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	if !strings.Contains(out, "kamel_build_info{") {
		t.Fatalf("/metrics missing kamel_build_info:\n%s", out)
	}
	for _, want := range []string{`version="dev"`, `replicas="0"`} {
		if !strings.Contains(out, want) {
			t.Errorf("kamel_build_info missing label %s", want)
		}
	}
}

// TestClusterTraceStitchingAcceptance is the tracing plane's end-to-end
// acceptance: on a 3-node cluster with 2-way replication and head sampling
// OFF, a slow forwarded request is retrievable after the fact from the
// gateway as one stitched multi-hop span tree; its trace ID is discoverable
// from the gateway's route-latency exemplar; a replica-failover walk yields
// one trace recording both attempts; and /v1/cluster/metrics federates every
// node's registry under a node label.
func TestClusterTraceStitchingAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	fx := newReplicaFixture(t, 3, 2, func(o *serveOptions) {
		o.traceSample = 0
		o.traceSlow = time.Nanosecond // every request is tail-retained as slow
	})

	// Pick a trajectory whose replica group excludes some node: that node is
	// the gateway, so the impute MUST forward.
	var traj wireTraj
	var group []string
	gw := -1
	for _, tr := range fx.sparse {
		g := fx.groupOf(t, tr)
		for i := 0; i < len(fx.c.Nodes); i++ {
			if !containsShard(g, fmt.Sprintf("shard-%d", i)) {
				traj, group, gw = tr, g, i
				break
			}
		}
		if gw >= 0 {
			break
		}
	}
	if gw < 0 {
		t.Fatal("every node replicates every fixture trajectory; cannot force a forward")
	}
	gwURL := fx.c.Nodes[gw].URL()
	gwShard := fmt.Sprintf("shard-%d", gw)

	var traceID string
	t.Run("StitchedSpanTree", func(t *testing.T) {
		status, hdr, raw := clusterReq(t, http.MethodPost, gwURL+"/v1/impute", nil, traj)
		if status != http.StatusOK {
			t.Fatalf("forwarded impute: status %d: %s", status, raw)
		}
		traceID = hdr.Get("X-Kamel-Trace-ID")
		if !isHexID(traceID, 32) {
			t.Fatalf("X-Kamel-Trace-ID = %q", traceID)
		}
		if sum := waitTraceListed(t, gwURL, "?route=/v1/impute", traceID); sum.Retained != obs.RetainSlow {
			t.Errorf("retained = %q, want %q", sum.Retained, obs.RetainSlow)
		}

		// The stitched tree: gateway hop at the root, the serving replica's
		// hop parent-linked under it.  Poll: the remote hop's store write can
		// race the gateway's response by a hair.
		var doc wireTraceDoc
		deadline := time.Now().Add(5 * time.Second)
		for {
			if st := traceJSON(t, gwURL+"/v1/traces/"+traceID, &doc); st == http.StatusOK && len(doc.Hops) >= 2 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("stitched doc never reached 2 hops: %+v", doc)
			}
			time.Sleep(10 * time.Millisecond)
		}
		root := doc.Hops[0]
		if root.Node != gwShard || root.ParentSpanID != "" {
			t.Fatalf("root hop = %+v, want a parentless %s hop", root, gwShard)
		}
		foundChild := false
		for _, hop := range doc.Hops[1:] {
			if hop.ParentSpanID == root.SpanID && containsShard(group, hop.Node) {
				foundChild = true
				if hop.Route != "/v1/impute" {
					t.Errorf("remote hop route = %q", hop.Route)
				}
			}
		}
		if !foundChild {
			t.Fatalf("no remote hop parent-linked to the gateway span in %+v", doc.Hops)
		}
		spanNames := map[string]bool{}
		for _, sp := range root.Spans {
			spanNames[sp.Name] = true
		}
		if !spanNames["cluster.forward"] || !spanNames["cluster.attempt"] {
			t.Errorf("gateway hop spans = %v, want cluster.forward and cluster.attempt", spanNames)
		}

		// The trace is discoverable from the gateway's route-latency exemplar.
		foundEx := false
		fx.syss[gw].Obs().EachExemplar(func(name string, labels []obs.Label, ex obs.Exemplar) {
			if name != "kamel_http_request_duration_seconds" {
				return
			}
			for _, l := range labels {
				if l.Key == "route" && l.Value == "/v1/impute" && ex.TraceID == traceID {
					foundEx = true
				}
			}
		})
		if !foundEx {
			t.Error("gateway /v1/impute latency histogram has no exemplar for the trace")
		}
	})

	t.Run("FederatedClusterMetrics", func(t *testing.T) {
		resp, err := http.Get(gwURL + "/v1/cluster/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		out := string(raw)
		for i := 0; i < 3; i++ {
			if !strings.Contains(out, fmt.Sprintf(`kamel_federation_up{node="shard-%d"} 1`, i)) {
				t.Errorf("federated exposition missing up series for shard-%d:\n%.2000s", i, out)
			}
		}
		if !strings.Contains(out, `kamel_http_request_duration_seconds_bucket{node="`) {
			t.Error("federated exposition missing node-labeled latency series")
		}
	})

	// Mutating subtest last: kill the group's first replica and check the
	// failover walk is one trace recording both attempts.
	t.Run("FailoverTraceContinuity", func(t *testing.T) {
		fx.c.Kill(shardIdx(t, group[0]))
		status, hdr, raw := clusterReq(t, http.MethodPost, gwURL+"/v1/impute", nil, traj)
		if status != http.StatusOK {
			t.Fatalf("failover impute: status %d: %s", status, raw)
		}
		failoverID := hdr.Get("X-Kamel-Trace-ID")
		waitTraceListed(t, gwURL, "?route=/v1/impute", failoverID)
		var doc wireTraceDoc
		if st := traceJSON(t, gwURL+"/v1/traces/"+failoverID, &doc); st != http.StatusOK {
			t.Fatalf("failover trace detail: status %d", st)
		}
		var attempts []wireTraceSpan
		for _, hop := range doc.Hops {
			if hop.Node != gwShard {
				continue
			}
			for _, sp := range hop.Spans {
				if sp.Name == "cluster.attempt" {
					attempts = append(attempts, sp)
				}
			}
		}
		if len(attempts) != 2 {
			t.Fatalf("gateway hop recorded %d cluster.attempt spans, want 2: %+v", len(attempts), doc.Hops)
		}
		attr := func(sp wireTraceSpan, key string) string {
			for _, a := range sp.Attrs {
				if a.Key == key {
					return a.Value
				}
			}
			return ""
		}
		if p, o := attr(attempts[0], "peer"), attr(attempts[0], "outcome"); p != group[0] || o != "retriable" {
			t.Errorf("first attempt peer=%s outcome=%s, want %s/retriable", p, o, group[0])
		}
		if p, o := attr(attempts[1], "peer"), attr(attempts[1], "outcome"); p != group[1] || o != "ok" {
			t.Errorf("second attempt peer=%s outcome=%s, want %s/ok", p, o, group[1])
		}
	})
}

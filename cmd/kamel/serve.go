package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"

	"kamel/internal/core"
	"kamel/internal/geo"
)

// runServe exposes the demonstration HTTP API of the SIGMOD demo paper: a
// train endpoint that enriches the models, an impute endpoint that fills
// gaps, and a stats endpoint for the dashboard.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	work := fs.String("work", "", "working directory (required)")
	addr := fs.String("addr", ":8080", "listen address")
	steps := fs.Int("steps", 0, "BERT training steps")
	fs.Parse(args)
	if *work == "" {
		return fmt.Errorf("serve: -work is required")
	}
	sys, err := core.New(systemConfig(*work, *steps, "", false, false, false))
	if err != nil {
		return err
	}
	defer sys.Close()
	// Best effort: load previously persisted models so a restart can serve
	// imputations immediately.
	if err := sys.LoadModels(); err == nil {
		fmt.Fprintln(os.Stderr, "serve: loaded persisted models")
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/api/train", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		var trajs []wireTraj
		if err := json.NewDecoder(r.Body).Decode(&trajs); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := sys.Train(fromWire(trajs)); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, sys.SystemStats())
	})
	mux.HandleFunc("/api/impute", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		var tr wireTraj
		if err := json.NewDecoder(r.Body).Decode(&tr); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		dense, stats, err := sys.Impute(fromWire([]wireTraj{tr})[0])
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		writeJSON(w, map[string]interface{}{
			"trajectory": toWire(dense),
			"segments":   stats.Segments,
			"failures":   stats.Failures,
		})
	})
	mux.HandleFunc("/api/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, sys.SystemStats())
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, demoPage)
	})

	fmt.Fprintf(os.Stderr, "serve: listening on %s\n", *addr)
	return http.ListenAndServe(*addr, mux)
}

// wireTraj is the HTTP JSON form of a trajectory.
type wireTraj struct {
	ID     string       `json:"id"`
	Points [][3]float64 `json:"points"` // [lat, lng, unixSeconds]
}

func fromWire(in []wireTraj) []geo.Trajectory {
	out := make([]geo.Trajectory, len(in))
	for i, tr := range in {
		out[i] = geo.Trajectory{ID: tr.ID}
		for _, p := range tr.Points {
			out[i].Points = append(out[i].Points, geo.Point{Lat: p[0], Lng: p[1], T: p[2]})
		}
	}
	return out
}

func toWire(tr geo.Trajectory) wireTraj {
	out := wireTraj{ID: tr.ID}
	for _, p := range tr.Points {
		out.Points = append(out.Points, [3]float64{p.Lat, p.Lng, p.T})
	}
	return out
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// demoPage is a minimal self-contained demo console.
const demoPage = `<!doctype html>
<title>KAMEL demo</title>
<h1>KAMEL trajectory imputation</h1>
<p>POST <code>/api/train</code> a JSON array of {id, points:[[lat,lng,t],...]} to train.</p>
<p>POST <code>/api/impute</code> one such object to impute; GET <code>/api/stats</code> for system state.</p>
<pre id="stats">loading stats…</pre>
<script>
fetch('/api/stats').then(r => r.json()).then(s => {
  document.getElementById('stats').textContent = JSON.stringify(s, null, 2);
});
</script>`

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"mime"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"kamel/internal/batcher"
	"kamel/internal/cluster"
	"kamel/internal/core"
	"kamel/internal/geo"
	"kamel/internal/obs"
	"kamel/internal/tokenizer"
)

// API error codes carried in the structured JSON error body.
const (
	codeBadRequest   = "bad_request"
	codeNotFound     = "not_found"
	codeNotTrained   = "not_trained"
	codeInternal     = "internal"
	codeOverloaded   = "overloaded"
	codeTimeout      = "timeout"
	codeTooLarge     = "too_large"
	codeWarming      = "warming"
	codeConflict     = "conflict"
	codeShardDown    = "shard_unavailable"
	codeShuttingDown = "shutting_down"
)

// apiServer wires a KAMEL system to the demonstration HTTP API of the SIGMOD
// demo paper.  The v1 surface is versioned and batch-first:
//
//	POST /v1/train         []{id, points:[[lat,lng,t],...]} → system stats
//	POST /v1/impute        one trajectory (+ admission fields) → dense trajectory
//	POST /v1/impute/batch  []trajectory or {trajectories, deadline_ms, priority}
//	GET  /v1/stats         trained-state summary
//
// Every error — top-level or per-element inside a batch response — uses the
// same structured envelope: {"error": {"code": "...", "message": "..."}}.
// The imputation endpoints accept two admission fields: "deadline_ms" bounds
// the request's context (on top of the server-side request timeout) and
// "priority" ("interactive", the single-impute default, or "bulk", the batch
// default) picks the admission batcher's dispatch lane.  Request contexts
// flow into the imputation engine, so clients that disconnect (and deadlines
// that expire) stop beam search mid-flight instead of burning the call
// budget.  The pre-versioning /api/* aliases have been removed; they now 404.
type apiServer struct {
	sys  *core.System
	opts serveOptions

	inflight chan struct{} // fixed-mode concurrency limiter slots
	warmed   atomic.Bool   // root model proven loadable (readyz warming gate)

	// admission, when non-nil, replaces the fixed inflight bucket with the
	// adaptive queue-delay controller (-admission adaptive, the default):
	// limit tracks the batcher's observed queue wait, per-client fair-share
	// quotas bound each tenant, and bulk work is shed ahead of interactive.
	admission *batcher.Admission

	// Resilience counters live in the system's metrics registry, so /metrics
	// and /v1/stats read the same values.
	shed     *obs.Counter // requests rejected with 429
	panics   *obs.Counter // handler panics recovered into 500s
	timeouts *obs.Counter // requests whose per-request deadline expired

	// hists caches (route, status) → latency histogram resolutions so the
	// steady state avoids a registry registration per request.
	histMu sync.RWMutex
	hists  map[string]*obs.Histogram

	// traces is this node's bounded trace store: head-sampled plus
	// tail-retained (error/slow) request traces, served by /v1/traces.
	traces *obs.TraceStore
	// slo, when non-nil, receives every request outcome for burn-rate
	// monitoring.
	slo *obs.SLOMonitor
}

// logger returns the configured structured logger, or the process default.
func (s *apiServer) logger() *slog.Logger {
	if s.opts.logger != nil {
		return s.opts.logger
	}
	return slog.Default()
}

// serveOptions are the hardening knobs of the HTTP surface, set from flags
// in runServe and directly by tests.
type serveOptions struct {
	// requestTimeout bounds each request's handling via its context; the
	// imputation engine aborts between BERT calls when it expires.  0
	// disables.
	requestTimeout time.Duration
	// maxBodyBytes caps request bodies; oversized requests get 413.
	maxBodyBytes int64
	// maxInflight caps concurrently handled API requests; excess load is
	// shed with 429 + Retry-After rather than queued without bound.
	maxInflight int
	// slowRequest is the duration at or above which a request is logged at
	// warn level with its per-stage span breakdown.  0 disables.
	slowRequest time.Duration
	// logger receives the structured request log; nil uses slog.Default().
	logger *slog.Logger
	// router, when non-nil, makes this node part of a horizontally sharded
	// deployment: imputation requests are routed to the shard owning their
	// spatial cell (see internal/cluster and serve_cluster.go).
	router *cluster.Router
	// clusterPath is the shard-map file /v1/cluster/reload re-reads.
	clusterPath string
	// replicaOverride, when positive, overrides the shard map's replica
	// count on load and on every reload (flag -replicas).
	replicaOverride int
	// syncer, when non-nil, is this node's anti-entropy reconciler; the
	// /v1/cluster endpoints report it and trigger sweeps through it.
	syncer *cluster.Syncer
	// traceSample is the head-sampling probability in [0,1]: the fraction of
	// root traces retained without a tail trigger.  1 keeps everything.
	traceSample float64
	// traceSlow is the tail-retention latency threshold: any request at or
	// above it is retained regardless of the head decision.  0 falls back to
	// slowRequest.
	traceSlow time.Duration
	// traceStore overrides the node's trace store (tests); nil has
	// newAPIHandler build one of traceRetained capacity.
	traceStore *obs.TraceStore
	// traceRetained caps the retained trace ring (0: the store default).
	traceRetained int
	// slo, when non-nil, is the node's SLO burn-rate monitor.
	slo *obs.SLOMonitor
	// admissionMode selects the overload regime: "adaptive" (default; the
	// queue-delay-tracking controller with per-client quotas) or "fixed"
	// (the original token bucket, kept for A/B comparison).
	admissionMode string
	// admissionTarget is the queue-delay bound the adaptive controller
	// converges on (0 uses the controller default, 25ms).
	admissionTarget time.Duration
	// admissionMin floors the adaptive concurrency limit (0: default 1).
	admissionMin int
	// admissionInterval is the controller evaluation period (0: default 100ms).
	admissionInterval time.Duration
	// quotaBurst scales the per-client fair share (0: default 2).
	quotaBurst float64
	// quotaClients bounds the per-client LRU table (0: default 1024).
	quotaClients int
	// bulkHeadroom is the fraction of the limit beyond which bulk work is
	// shed (0: default 0.75).
	bulkHeadroom float64
}

func defaultServeOptions() serveOptions {
	return serveOptions{
		requestTimeout: 30 * time.Second,
		maxBodyBytes:   8 << 20,
		maxInflight:    64,
		slowRequest:    time.Second,
		traceSample:    1,
		admissionMode:  "adaptive",
	}
}

// version identifies the build in kamel_build_info; stamped by
// -ldflags "-X main.version=..." at release time.
var version = "dev"

// newAPIHandler builds the HTTP routing table wrapped in the hardening
// middleware (outermost first: panic recovery → load shedding → per-request
// timeout → body size cap); factored out of runServe so tests can drive the
// full surface through httptest.
func newAPIHandler(sys *core.System, opts serveOptions) http.Handler {
	reg := sys.Obs()
	s := &apiServer{
		sys: sys, opts: opts,
		shed: reg.Counter("kamel_http_shed_total",
			"Requests rejected with 429 by the concurrency limiter."),
		panics: reg.Counter("kamel_http_panics_total",
			"Handler panics recovered into 500 responses."),
		timeouts: reg.Counter("kamel_http_timeouts_total",
			"Requests whose per-request deadline expired while handling."),
		hists:  make(map[string]*obs.Histogram),
		traces: opts.traceStore,
		slo:    opts.slo,
	}
	if s.traces == nil {
		s.traces = obs.NewTraceStore(opts.traceRetained, 0, reg)
	}
	if opts.maxInflight > 0 {
		if opts.admissionMode == "fixed" {
			s.inflight = make(chan struct{}, opts.maxInflight)
		} else {
			s.admission = batcher.NewAdmission(batcher.AdmissionOptions{
				Target:       opts.admissionTarget,
				MaxLimit:     opts.maxInflight,
				MinLimit:     opts.admissionMin,
				Interval:     opts.admissionInterval,
				QuotaBurst:   opts.quotaBurst,
				QuotaClients: opts.quotaClients,
				BulkHeadroom: opts.bulkHeadroom,
				Registry:     reg,
			})
			// The controller's congestion signal is the batcher's per-item
			// queue wait; absent the batcher (admission batching disabled)
			// the limit simply stays at MaxLimit — fixed-bucket behaviour.
			if b := sys.Batcher(); b != nil {
				b.SetQueueWaitObserver(s.admission.ObserveQueueDelay)
			}
		}
	}
	// Build identity for federated scrapes: which binary, token space, and
	// replication factor this node runs.  Value is constant 1; the labels are
	// the payload.
	replicas := 0
	if opts.router != nil {
		replicas = opts.router.Map().ReplicaCount()
	}
	reg.GaugeFunc("kamel_build_info",
		"Build and deployment identity; value is always 1.",
		func() float64 { return 1 },
		obs.L("version", version),
		obs.L("tokenizer", sys.Config().Tokenizer),
		obs.L("replicas", itoa(replicas)))
	mux := http.NewServeMux()
	mux.Handle("/v1/train", s.endpoint(http.MethodPost, s.handleTrain))
	mux.Handle("/v1/impute", s.endpoint(http.MethodPost, s.handleImpute))
	mux.Handle("/v1/impute/batch", s.endpoint(http.MethodPost, s.handleImputeBatch))
	mux.Handle("/v1/stats", s.endpoint(http.MethodGet, s.handleStats))
	mux.Handle("/v1/cluster", s.endpoint(http.MethodGet, s.handleClusterInfo))
	mux.Handle("/v1/cluster/manifest", s.endpoint(http.MethodGet, s.handleClusterManifest))
	mux.Handle("/v1/cluster/model", s.endpoint(http.MethodGet, s.handleClusterModel))
	mux.Handle("/v1/cluster/antientropy", s.endpoint(http.MethodPost, s.handleClusterAntiEntropy))
	mux.Handle("/v1/cluster/reload", s.endpoint(http.MethodPost, s.handleClusterReload))
	mux.Handle("/v1/cluster/metrics", s.endpoint(http.MethodGet, s.handleClusterMetrics))
	mux.Handle("/v1/traces", s.endpoint(http.MethodGet, s.handleTraces))
	mux.Handle("/v1/traces/", s.endpoint(http.MethodGet, s.handleTraceDetail))
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			// Unknown routes — including the removed pre-versioning /api/*
			// aliases — get a structured 404, not the demo page.
			writeError(w, http.StatusNotFound, codeNotFound,
				"no route "+r.URL.Path+" (the /api/* aliases were removed; use /v1/*)")
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, demoPage)
	})
	var h http.Handler = mux
	h = s.limitBody(h)
	h = s.withRequestTimeout(h)
	h = s.admitLoad(h)
	h = s.recoverPanics(h)
	h = s.observe(h)
	return h
}

// recoverPanics converts a handler panic into a structured 500 instead of
// killing the connection (and, for a panicking goroutine, the process).
func (s *apiServer) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.panics.Inc()
				s.logger().Error("panic in handler",
					"component", "serve", "method", r.Method, "path", r.URL.Path,
					"request_id", obs.RequestIDFrom(r.Context()), "panic", fmt.Sprint(rec))
				// Best effort: if the handler already started the response
				// this write is a no-op on the status line.
				writeErrorTraced(w, r, http.StatusInternalServerError, codeInternal, "internal server error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// isProbe reports whether the path is a health probe, which must stay
// responsive under overload and never be shed or timed out.
func isProbe(path string) bool { return path == "/healthz" || path == "/readyz" }

// headerPriority resolves a request's admission priority before its body is
// readable: the X-Kamel-Priority header (set by clients and by cluster
// forwards) wins; otherwise the endpoint's nature decides — the batch and
// train endpoints default to bulk, everything else to interactive.  The JSON
// body's priority field remains the authority for the dispatch lane; a body
// that contradicts the header only affects which lane the work runs in, not
// the (already made) admission decision.
func headerPriority(r *http.Request) batcher.Priority {
	def := batcher.Interactive
	if r.URL.Path == "/v1/impute/batch" || r.URL.Path == "/v1/train" {
		def = batcher.Bulk
	}
	pri, _ := batcher.ParsePriority(r.Header.Get(obs.HeaderPriority), def)
	return pri
}

// admitLoad is the overload-protection middleware: the adaptive queue-delay
// controller when enabled (-admission adaptive, the default), the fixed
// token bucket otherwise.  Either way a request is admitted immediately or
// shed with 429 + Retry-After — shedding, not queueing, keeps latency
// bounded when offered load exceeds capacity.
func (s *apiServer) admitLoad(next http.Handler) http.Handler {
	if s.admission == nil {
		return s.shedLoad(next)
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if isOps(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		client := r.Header.Get(obs.HeaderClient)
		pri := headerPriority(r)
		// Bind the admission baggage so cluster forwards carry the true
		// tenant and priority to the owning peer's controller.
		ctx := obs.ContextWithClientID(r.Context(), client)
		ctx = obs.ContextWithPriorityLabel(ctx, pri.String())
		release, shed := s.admission.Admit(client, pri)
		if shed != nil {
			s.shed.Inc()
			w.Header().Set("Retry-After", itoa(shed.RetryAfter))
			writeErrorTraced(w, r, http.StatusTooManyRequests, codeOverloaded,
				fmt.Sprintf("admission shed (%s): concurrency limit %d, queue delay ~%.1fms",
					shed.Reason, shed.Limit, shed.QueueDelayMS))
			return
		}
		defer release()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// shedLoad is a token-bucket concurrency limiter: a request either takes a
// slot immediately or is shed with 429 + Retry-After.  Shedding, not
// queueing, keeps latency bounded when a burst exceeds capacity.
func (s *apiServer) shedLoad(next http.Handler) http.Handler {
	if s.inflight == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if isOps(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
			next.ServeHTTP(w, r)
		default:
			s.shed.Inc()
			w.Header().Set("Retry-After", "1")
			writeErrorTraced(w, r, http.StatusTooManyRequests, codeOverloaded,
				fmt.Sprintf("server at capacity (%d in-flight requests)", cap(s.inflight)))
		}
	})
}

// withRequestTimeout bounds each request's context so a slow imputation (or
// a stuck client) cannot hold a limiter slot forever.
func (s *apiServer) withRequestTimeout(next http.Handler) http.Handler {
	if s.opts.requestTimeout <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if isOps(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.opts.requestTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			s.timeouts.Inc()
		}
	})
}

// limitBody caps request body sizes so one oversized POST cannot exhaust
// memory; handlers surface the violation as a structured 413.
func (s *apiServer) limitBody(next http.Handler) http.Handler {
	if s.opts.maxBodyBytes <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.opts.maxBodyBytes)
		}
		next.ServeHTTP(w, r)
	})
}

func (s *apiServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

// handleReadyz reports 200 only once the system can serve model-based
// imputations (trained or loaded models); load balancers use it to keep
// traffic away from instances that would answer every request with 409.
// A system whose models are disk-resident additionally reports "warming"
// (503) until the root model has been paged in once, so traffic is not
// admitted while the repository directory is unreadable.
func (s *apiServer) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.sys.Ready() {
		writeError(w, http.StatusServiceUnavailable, codeNotTrained, "no models trained or loaded yet")
		return
	}
	if !s.warmed.Load() {
		if err := s.sys.WarmRoot(r.Context()); err != nil {
			writeError(w, http.StatusServiceUnavailable, codeWarming,
				"warming model cache: "+err.Error())
			return
		}
		s.warmed.Store(true)
	}
	writeJSON(w, map[string]string{"status": "ready"})
}

// endpoint enforces the allowed method (and, for POSTs, a JSON Content-Type)
// before delegating.
func (s *apiServer) endpoint(method string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != method {
			w.Header().Set("Allow", method)
			writeError(w, http.StatusMethodNotAllowed, codeBadRequest, method+" required")
			return
		}
		if method == http.MethodPost && !jsonContentType(r) {
			writeError(w, http.StatusUnsupportedMediaType, codeBadRequest, "Content-Type must be application/json")
			return
		}
		h(w, r)
	})
}

// jsonContentType accepts application/json (with any parameters).  An absent
// Content-Type is tolerated for curl-friendliness; anything else is not.
func jsonContentType(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return true
	}
	mt, _, err := mime.ParseMediaType(ct)
	return err == nil && mt == "application/json"
}

// decodeBody decodes a JSON request body into v, writing the structured
// error response (and returning false) on failure.  An oversized body —
// truncated by the limitBody middleware — maps to 413 rather than 400.
func decodeBody(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, codeTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, codeBadRequest, "decoding request body: "+err.Error())
		return false
	}
	return true
}

// wireTrainRequest is the /v1/train request: a bare JSON array of
// trajectories (the public shape), or the envelope the replicated fan-out
// sends — {"trajectories": [...], "tokenizer_spec": {...}} — carrying the
// gateway's frozen tokenizer spec so every replica-group member trains in
// one token space instead of deriving its own from its sub-batch.
type wireTrainRequest struct {
	Trajectories  []wireTraj      `json:"trajectories"`
	TokenizerSpec *tokenizer.Spec `json:"tokenizer_spec,omitempty"`
}

func (b *wireTrainRequest) UnmarshalJSON(data []byte) error {
	if t := bytes.TrimLeft(data, " \t\r\n"); len(t) > 0 && t[0] == '[' {
		return json.Unmarshal(data, &b.Trajectories)
	}
	type bare wireTrainRequest // shed the method to avoid recursing
	return json.Unmarshal(data, (*bare)(b))
}

func (s *apiServer) handleTrain(w http.ResponseWriter, r *http.Request) {
	var req wireTrainRequest
	if !decodeBody(w, r, &req) {
		return
	}
	trajs := req.Trajectories
	if len(trajs) == 0 {
		writeError(w, http.StatusBadRequest, codeBadRequest, "empty training batch")
		return
	}
	if req.TokenizerSpec != nil {
		// A fan-out gateway offered its frozen spec: adopt it (no-op when
		// already frozen on the same spec; loud refusal on a different one).
		if err := s.sys.AdoptTokenizerSpec(*req.TokenizerSpec); err != nil {
			writeError(w, http.StatusConflict, codeConflict, err.Error())
			return
		}
	}
	if s.routeTrain(w, r, trajs) {
		return // replicated deployment: fanned out to each replica group
	}
	if err := s.sys.TrainContext(r.Context(), fromWire(trajs)); err != nil {
		writeErrorTraced(w, r, http.StatusInternalServerError, codeInternal, err.Error())
		return
	}
	writeJSON(w, s.sys.SystemStats())
}

// admissionContext applies a request's admission fields: deadline_ms bounds
// the context (tightening, never loosening, the server-side request timeout)
// and priority selects the batcher's dispatch lane.  ok=false means the
// fields were invalid and the 400 has been written; otherwise the caller owns
// the returned cancel.
func admissionContext(w http.ResponseWriter, r *http.Request, deadlineMS int64, priority string, def batcher.Priority) (context.Context, context.CancelFunc, bool) {
	pri, ok := batcher.ParsePriority(priority, def)
	if !ok {
		writeError(w, http.StatusBadRequest, codeBadRequest,
			fmt.Sprintf("unknown priority %q (want %q or %q)", priority, "interactive", "bulk"))
		return nil, nil, false
	}
	if deadlineMS < 0 {
		writeError(w, http.StatusBadRequest, codeBadRequest, "deadline_ms must be non-negative")
		return nil, nil, false
	}
	ctx := core.WithPriority(r.Context(), pri)
	// The body's priority is authoritative; rebind the forward-propagation
	// baggage in case it contradicts the admission header.
	ctx = obs.ContextWithPriorityLabel(ctx, pri.String())
	cancel := context.CancelFunc(func() {})
	if deadlineMS > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(deadlineMS)*time.Millisecond)
	}
	return ctx, cancel, true
}

// writeImputeError maps an engine error onto the wire, adding Retry-After on
// overload so shed clients back off like limiter-shed ones do, and the trace
// ID on the statuses whose retained trace is worth pulling.  Under adaptive
// admission the backoff and the queue-delay estimate in the message come from
// the live controller state instead of a fixed constant.
func (s *apiServer) writeImputeError(w http.ResponseWriter, r *http.Request, err error) {
	status, code := imputeErrStatus(err)
	msg := err.Error()
	if status == http.StatusTooManyRequests {
		retry := 1
		if s.admission != nil {
			var delayMS float64
			retry, delayMS = s.admission.RetryAfterHint()
			msg = fmt.Sprintf("%s (queue delay ~%.1fms)", msg, delayMS)
		}
		w.Header().Set("Retry-After", itoa(retry))
	}
	if status == http.StatusTooManyRequests || status >= 500 {
		writeErrorTraced(w, r, status, code, msg)
		return
	}
	writeError(w, status, code, msg)
}

func (s *apiServer) handleImpute(w http.ResponseWriter, r *http.Request) {
	var req wireImputeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	ctx, cancel, ok := admissionContext(w, r, req.DeadlineMS, req.Priority, batcher.Interactive)
	if !ok {
		return
	}
	defer cancel()
	r = r.WithContext(ctx)
	if s.routeSingle(w, r, req) {
		return // owned by a peer: forwarded (or degraded) by the cluster layer
	}
	dense, stats, err := s.sys.ImputeContext(ctx, fromWire([]wireTraj{req.wireTraj})[0])
	if err != nil {
		s.writeImputeError(w, r, err)
		return
	}
	out := wireImputeResult{
		Trajectory: toWirePtr(dense),
		Segments:   stats.Segments,
		Failures:   stats.Failures,
		Degraded:   stats.Degraded,
	}
	if wantDebug(r) {
		out.Debug = debugDoc(r)
	}
	writeJSON(w, out)
}

func (s *apiServer) handleImputeBatch(w http.ResponseWriter, r *http.Request) {
	var req wireBatchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	ctx, cancel, ok := admissionContext(w, r, req.DeadlineMS, req.Priority, batcher.Bulk)
	if !ok {
		return
	}
	defer cancel()
	r = r.WithContext(ctx)
	if s.routeBatch(w, r, req) {
		return // spans shards: scatter-gathered by the cluster layer
	}
	results, err := s.sys.ImputeBatch(ctx, fromWire(req.Trajectories))
	if err != nil {
		s.writeImputeError(w, r, err)
		return
	}
	doc := wireBatchResponse{Results: wireResults(results)}
	if wantDebug(r) {
		// The whole batch ran under one trace, so the breakdown is batch-wide.
		doc.Debug = debugDoc(r)
	}
	writeJSON(w, doc)
}

// wireResults maps engine batch results to their wire form, in order.
func wireResults(results []core.BatchResult) []wireImputeResult {
	items := make([]wireImputeResult, len(results))
	for i, res := range results {
		if res.Err != nil {
			items[i] = wireImputeResult{Error: wireErrorOf(res.Err)}
			continue
		}
		items[i] = wireImputeResult{
			Trajectory: toWirePtr(res.Trajectory),
			Segments:   res.Stats.Segments,
			Failures:   res.Stats.Failures,
			Degraded:   res.Stats.Degraded,
		}
	}
	return items
}

// wireStats is the /v1/stats document: the system's trained-state summary
// plus the serving layer's own resilience counters.
type wireStats struct {
	core.Stats
	SheddedRequests int64 `json:"shedded_requests"`
	PanicsRecovered int64 `json:"panics_recovered"`
	RequestTimeouts int64 `json:"request_timeouts"`
	// Admission is the adaptive controller's live state (current limit,
	// observed queue delay, quota sheds); absent in fixed mode.
	Admission *batcher.AdmissionStats `json:"admission,omitempty"`
	// Cluster is present only on sharded deployments: this node's routing
	// state and forwarding/degradation counters (includes the requests
	// answered 503 because every owning peer was unreachable).
	Cluster *cluster.Stats `json:"cluster,omitempty"`
}

// statsDoc reads the serving counters straight from the metrics registry, so
// /v1/stats and /metrics can never disagree.
func (s *apiServer) statsDoc() wireStats {
	doc := wireStats{
		Stats:           s.sys.SystemStats(),
		SheddedRequests: s.shed.Value(),
		PanicsRecovered: s.panics.Value(),
		RequestTimeouts: s.timeouts.Value(),
	}
	if s.admission != nil {
		as := s.admission.Stats()
		doc.Admission = &as
	}
	if rt := s.opts.router; rt != nil {
		cs := rt.ClusterStats()
		doc.Cluster = &cs
	}
	return doc
}

func (s *apiServer) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.statsDoc())
}

// imputeErrStatus maps an imputation error to its HTTP status and API code.
func imputeErrStatus(err error) (int, string) {
	if errors.Is(err, core.ErrNotTrained) {
		return http.StatusConflict, codeNotTrained
	}
	if errors.Is(err, core.ErrOverloaded) {
		// The admission batcher's per-model queue is full: shed, like the
		// concurrency limiter does, rather than queue without bound.
		return http.StatusTooManyRequests, codeOverloaded
	}
	if errors.Is(err, batcher.ErrClosed) {
		return http.StatusServiceUnavailable, codeShuttingDown
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusServiceUnavailable, codeTimeout
	}
	return http.StatusInternalServerError, codeInternal
}

// runServe starts the HTTP API with a graceful lifecycle: SIGINT/SIGTERM
// stops accepting connections and drains in-flight requests before exiting.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	work := fs.String("work", "", "working directory (required)")
	addr := fs.String("addr", ":8080", "listen address")
	steps := fs.Int("steps", 0, "BERT training steps")
	drain := fs.Duration("drain", 15*time.Second, "graceful-shutdown drain timeout")
	def := defaultServeOptions()
	readTimeout := fs.Duration("read-timeout", 30*time.Second, "http.Server read timeout (0 disables)")
	writeTimeout := fs.Duration("write-timeout", 60*time.Second, "http.Server write timeout (0 disables)")
	idleTimeout := fs.Duration("idle-timeout", 2*time.Minute, "http.Server idle keep-alive timeout (0 disables)")
	reqTimeout := fs.Duration("request-timeout", def.requestTimeout, "per-request handling timeout (0 disables)")
	maxBody := fs.Int64("max-body-bytes", def.maxBodyBytes, "maximum request body size in bytes (0 disables)")
	maxInflight := fs.Int("max-inflight", def.maxInflight, "maximum concurrently handled requests before shedding with 429 (0 disables)")
	admissionMode := fs.String("admission", def.admissionMode, "overload protection: adaptive (queue-delay controller with per-client quotas) or fixed (token bucket)")
	admissionTarget := fs.Duration("admission-target", 0, "adaptive admission: queue-delay bound the concurrency limit converges on (0 uses the default, 25ms)")
	admissionMin := fs.Int("admission-min", 0, "adaptive admission: concurrency-limit floor (0 uses the default, 1)")
	admissionInterval := fs.Duration("admission-interval", 0, "adaptive admission: controller evaluation period (0 uses the default, 100ms)")
	quotaBurst := fs.Float64("quota-burst", 0, "adaptive admission: per-client fair-share multiplier — each active client may hold up to limit*burst/clients slots (0 uses the default, 2)")
	quotaClients := fs.Int("quota-clients", 0, "adaptive admission: LRU-bounded client-table capacity (0 uses the default, 1024)")
	bulkHeadroom := fs.Float64("bulk-headroom", 0, "adaptive admission: fraction of the limit beyond which bulk-priority work is shed, reserving the rest for interactive (0 uses the default, 0.75)")
	slowReq := fs.Duration("slow-request", def.slowRequest, "log requests at warn level with a per-stage breakdown when they take at least this long (0 disables)")
	logLevel := fs.String("log-level", "info", "minimum structured-log level: debug, info, warn, error")
	cacheBytes := fs.Int64("model-cache-bytes", 0, "model cache budget in bytes (0 sizes from available memory, <0 unbounded)")
	batchMaxSize := fs.Int("batch-max-size", 0, "admission batching: queries per coalesced BERT pass (0 uses the default)")
	batchMaxWait := fs.Duration("batch-max-wait", 0, "admission batching: coalescing window under concurrency (0 uses the default, <0 disables windowing)")
	batchMaxQueue := fs.Int("batch-max-queue", 0, "admission batching: queued queries per model before shedding with 429 (0 uses the default, <0 unbounded)")
	batchMaxStarve := fs.Duration("batch-max-starve", 0, "admission batching: bulk-lane wait beyond which dispatches reserve slots for bulk (0 uses the default, <0 strict priority)")
	noBatching := fs.Bool("no-admission-batching", false, "compute predictions inline per request instead of coalescing across requests")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty disables)")
	clusterConfig := fs.String("cluster-config", "", "shard map JSON file enabling horizontal sharding (empty: single node)")
	clusterSelf := fs.String("cluster-self", "", "this process's shard id in the shard map (required with -cluster-config)")
	clusterHedge := fs.Duration("cluster-hedge", 0, "launch a hedged forward to the owning peer after this delay (0 disables)")
	clusterRetries := fs.Int("cluster-retries", 1, "retries after a failed forward to a peer (negative disables)")
	clusterProbe := fs.Duration("cluster-probe", 5*time.Second, "peer /readyz health-probe interval (0 uses the default)")
	replicas := fs.Int("replicas", 0, "replica-group size override: each shard cell is served by this many shards (0 keeps the map's value; requires -cluster-config)")
	antiEntropy := fs.Duration("anti-entropy-interval", 30*time.Second, "background anti-entropy sweep period reconciling model versions across replicas (0 disables the loop; requires -cluster-config)")
	rebuildWorkers := fs.Int("rebuild-workers", 0, "concurrent per-cell model trainings per maintenance round (0 sizes from CPUs, 1 is serial)")
	traceSample := fs.Float64("trace-sample", def.traceSample, "head-sampling probability for request traces in [0,1]; errored or slow requests are retained regardless")
	traceSlow := fs.Duration("trace-slow", 0, "tail-retention latency threshold: requests at least this slow are always retained (0 uses -slow-request)")
	traceRetained := fs.Int("trace-retained", 0, "retained-trace ring capacity per node (0 uses the default)")
	sloWindow := fs.Duration("slo-window", time.Minute, "SLO burn-rate rolling window")
	sloErrBudget := fs.Float64("slo-error-budget", 0.01, "tolerated error-rate fraction within the SLO window")
	sloLatTarget := fs.Duration("slo-latency-target", 500*time.Millisecond, "requests at least this slow burn the latency budget")
	sloLatBudget := fs.Float64("slo-latency-budget", 0.05, "tolerated slow-request fraction within the SLO window")
	sloBurn := fs.Float64("slo-burn-threshold", 1.0, "burn rate at or above which an evaluation counts as burning")
	sloProfileDir := fs.String("slo-profile-dir", "", "directory for CPU profiles captured on sustained SLO burn (empty disables capturing)")
	sloProfileEvery := fs.Duration("slo-profile-every", 10*time.Minute, "minimum interval between SLO-triggered CPU captures")
	sloProfilesMax := fs.Int("slo-profiles-max", 8, "maximum CPU profiles kept on disk; oldest pruned first")
	registerTokenizerFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *work == "" {
		return fmt.Errorf("serve: -work is required")
	}
	if *clusterConfig != "" && *clusterSelf == "" {
		return fmt.Errorf("serve: -cluster-self is required with -cluster-config")
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("serve: -log-level: %w", err)
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	// Library-level warnings (core, store) flow through the same handler.
	slog.SetDefault(logger)
	cfg := systemConfig(*work, *steps, "", false, false, false)
	cfg.ModelCacheBytes = *cacheBytes
	cfg.ShardID = *clusterSelf
	cfg.BatchMaxSize = *batchMaxSize
	cfg.BatchMaxWait = *batchMaxWait
	cfg.BatchMaxQueue = *batchMaxQueue
	cfg.BatchMaxStarve = *batchMaxStarve
	cfg.DisableAdmissionBatching = *noBatching
	cfg.RebuildWorkers = *rebuildWorkers
	sys, err := core.New(cfg)
	if err != nil {
		return err
	}
	defer sys.Close()
	// Best effort: load previously persisted models so a restart can serve
	// imputations immediately.
	if err := sys.LoadModels(); err == nil {
		logger.Info("loaded persisted models", "component", "serve")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The single background maintainer (§4.2): while it runs, /v1/train
	// returns once the batch is durable and model rebuilds happen here,
	// committed to disk and published without pausing imputation.
	go sys.Maintain(ctx)

	if *pprofAddr != "" {
		go servePprof(ctx, *pprofAddr)
	}

	// Horizontal sharding: load the shard map, start the router (health
	// probing runs for the process lifetime), and reload the map on SIGHUP so
	// a rollout never needs a restart.
	var router *cluster.Router
	var syncer *cluster.Syncer
	if *clusterConfig != "" {
		m, err := cluster.LoadMap(*clusterConfig)
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		if *replicas > 0 {
			m.Replicas = *replicas
		}
		router, err = cluster.New(m, cluster.Options{
			Self:          *clusterSelf,
			Retries:       *clusterRetries,
			HedgeAfter:    *clusterHedge,
			ProbeInterval: *clusterProbe,
			Logger:        logger,
			Registry:      sys.Obs(),
		})
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		go router.StartProbing(ctx)
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for {
				select {
				case <-hup:
					m, err := cluster.LoadMap(*clusterConfig)
					if err == nil {
						if *replicas > 0 {
							m.Replicas = *replicas
						}
						err = router.Reload(m)
					}
					if err != nil {
						logger.Error("shard map reload failed", "component", "serve", "err", err)
						continue
					}
					logger.Info("shard map reloaded on SIGHUP", "component", "serve",
						"generation", m.Generation, "shards", len(m.Shards))
				case <-ctx.Done():
					return
				}
			}
		}()
		// Anti-entropy: pull newer model versions from replica peers so a
		// node that missed train fan-outs converges without operator action.
		syncer = cluster.NewSyncer(router, replicaStore{sys}, cluster.SyncerOptions{
			Interval: *antiEntropy,
			Logger:   logger,
			Registry: sys.Obs(),
		})
		if *antiEntropy > 0 {
			go syncer.Run(ctx)
		}
		logger.Info("cluster routing enabled", "component", "serve",
			"self", *clusterSelf, "shards", len(m.Shards), "generation", m.Generation,
			"replicas", m.ReplicaCount(), "anti_entropy", antiEntropy.String())
	}

	// The SLO monitor watches every request outcome for budget burn and, on
	// sustained burn, captures a CPU profile of this very process.
	slo := obs.NewSLOMonitor(obs.SLOConfig{
		Window:        *sloWindow,
		ErrorBudget:   *sloErrBudget,
		LatencyTarget: *sloLatTarget,
		LatencyBudget: *sloLatBudget,
		BurnThreshold: *sloBurn,
		ProfileDir:    *sloProfileDir,
		ProfileEvery:  *sloProfileEvery,
		MaxProfiles:   *sloProfilesMax,
	}, sys.Obs(), logger)
	go slo.Run(ctx)

	if *admissionMode != "adaptive" && *admissionMode != "fixed" {
		return fmt.Errorf("serve: -admission must be adaptive or fixed, got %q", *admissionMode)
	}
	opts := serveOptions{
		requestTimeout:    *reqTimeout,
		maxBodyBytes:      *maxBody,
		maxInflight:       *maxInflight,
		slowRequest:       *slowReq,
		admissionMode:     *admissionMode,
		admissionTarget:   *admissionTarget,
		admissionMin:      *admissionMin,
		admissionInterval: *admissionInterval,
		quotaBurst:        *quotaBurst,
		quotaClients:      *quotaClients,
		bulkHeadroom:      *bulkHeadroom,
		logger:            logger,
		router:            router,
		clusterPath:       *clusterConfig,
		replicaOverride:   *replicas,
		syncer:            syncer,
		traceSample:       *traceSample,
		traceSlow:         *traceSlow,
		traceRetained:     *traceRetained,
		slo:               slo,
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           newAPIHandler(sys, opts),
		ReadTimeout:       *readTimeout,
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Info("listening", "component", "serve", "addr", *addr)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal during the drain kills the process the hard way
	logger.Info("shutting down", "component", "serve", "drain_timeout", drain.String())
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		// Drain timed out: close outright, cancelling in-flight request
		// contexts (the imputation engine aborts between BERT calls).
		srv.Close()
		return fmt.Errorf("serve: drain incomplete: %w", err)
	}
	return nil
}

// servePprof runs the net/http/pprof handlers on their own mux and listener,
// deliberately outside the API server: the hardening middleware (timeouts,
// load shedding, body caps) must never apply to profiling endpoints — a
// 30-second CPU profile would be killed by the request timeout — and the
// profiler should stay reachable when the API is shedding load.  Bind it to
// localhost; it is an operator surface, not part of the public API.
func servePprof(ctx context.Context, addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Addr: addr, Handler: mux}
	go func() {
		<-ctx.Done()
		srv.Close()
	}()
	fmt.Fprintf(os.Stderr, "serve: pprof listening on %s\n", addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "serve: pprof server: %v\n", err)
	}
}

// wireTraj is the HTTP JSON form of a trajectory.
type wireTraj struct {
	ID     string       `json:"id"`
	Points [][3]float64 `json:"points"` // [lat, lng, unixSeconds]
}

// wireImputeRequest is the /v1/impute request: one trajectory (fields
// promoted flat) plus the optional admission fields.
type wireImputeRequest struct {
	wireTraj
	DeadlineMS int64  `json:"deadline_ms,omitempty"`
	Priority   string `json:"priority,omitempty"`
}

// wireBatchRequest is the /v1/impute/batch request: either the envelope
// {"trajectories": [...], "deadline_ms": N, "priority": "..."} or — for
// compatibility — a bare JSON array of trajectories with default admission.
type wireBatchRequest struct {
	Trajectories []wireTraj `json:"trajectories"`
	DeadlineMS   int64      `json:"deadline_ms,omitempty"`
	Priority     string     `json:"priority,omitempty"`
}

func (b *wireBatchRequest) UnmarshalJSON(data []byte) error {
	if t := bytes.TrimLeft(data, " \t\r\n"); len(t) > 0 && t[0] == '[' {
		return json.Unmarshal(data, &b.Trajectories)
	}
	type bare wireBatchRequest // shed the method to avoid recursing
	return json.Unmarshal(data, (*bare)(b))
}

// wireError is the structured error shared by top-level responses and
// per-element batch failures: {"code": "...", "message": "..."}.  TraceID is
// set on the failure classes whose retained trace an operator will want to
// pull afterwards (429/500/503), joining the response to /v1/traces/{id}.
type wireError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	TraceID string `json:"trace_id,omitempty"`
}

// wireErrorOf classifies err through the same table the top-level status
// mapping uses, so an element's code inside a batch matches what the same
// failure would return as a whole-request error.
func wireErrorOf(err error) *wireError {
	_, code := imputeErrStatus(err)
	return &wireError{Code: code, Message: err.Error()}
}

// wireImputeResult is one imputed trajectory on the wire; Error is set (and
// Trajectory omitted) when only that trajectory failed inside a batch.
type wireImputeResult struct {
	Trajectory *wireTraj  `json:"trajectory,omitempty"`
	Segments   int        `json:"segments"`
	Failures   int        `json:"failures"`
	Degraded   int        `json:"degraded"`
	Error      *wireError `json:"error,omitempty"`
	Debug      *wireDebug `json:"debug,omitempty"` // ?debug=1 span breakdown
}

func fromWire(in []wireTraj) []geo.Trajectory {
	out := make([]geo.Trajectory, len(in))
	for i, tr := range in {
		out[i] = geo.Trajectory{ID: tr.ID}
		for _, p := range tr.Points {
			out[i].Points = append(out[i].Points, geo.Point{Lat: p[0], Lng: p[1], T: p[2]})
		}
	}
	return out
}

func toWire(tr geo.Trajectory) wireTraj {
	out := wireTraj{ID: tr.ID}
	for _, p := range tr.Points {
		out.Points = append(out.Points, [3]float64{p.Lat, p.Lng, p.T})
	}
	return out
}

func toWirePtr(tr geo.Trajectory) *wireTraj {
	w := toWire(tr)
	return &w
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The status line is already on the wire; all that is left is to
		// note the failure server-side.
		fmt.Fprintf(os.Stderr, "serve: encoding response: %v\n", err)
	}
}

// writeError emits the structured JSON error envelope shared by every
// endpoint: {"error": {"code": "...", "message": "..."}}.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeErrorID(w, status, code, msg, "")
}

// writeErrorTraced is writeError carrying the request's trace ID, for the
// failure classes (shed, panic, shard-down, engine failure) whose retained
// trace the client will want to look up afterwards.
func writeErrorTraced(w http.ResponseWriter, r *http.Request, status int, code, msg string) {
	writeErrorID(w, status, code, msg, requestTraceID(r))
}

// requestTraceID returns the distributed trace ID bound to the request, or "".
func requestTraceID(r *http.Request) string {
	if tr := obs.TraceFrom(r.Context()); tr != nil {
		return tr.TraceID
	}
	return ""
}

func writeErrorID(w http.ResponseWriter, status int, code, msg, traceID string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	doc := map[string]wireError{"error": {Code: code, Message: msg, TraceID: traceID}}
	if err := json.NewEncoder(w).Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "serve: encoding error response: %v\n", err)
	}
}

// demoPage is a minimal self-contained demo console.
const demoPage = `<!doctype html>
<title>KAMEL demo</title>
<h1>KAMEL trajectory imputation</h1>
<p>POST <code>/v1/train</code> a JSON array of {id, points:[[lat,lng,t],...]} to train.</p>
<p>POST <code>/v1/impute</code> one such object to impute, or <code>/v1/impute/batch</code>
an array of them; GET <code>/v1/stats</code> for system state.</p>
<p>Imputation requests take optional <code>deadline_ms</code> and
<code>priority</code> ("interactive" or "bulk") admission fields; errors come
back as <code>{"error": {"code", "message"}}</code>.
Liveness and readiness probes are at <code>/healthz</code> and <code>/readyz</code>.</p>
<pre id="stats">loading stats…</pre>
<script>
fetch('/v1/stats').then(r => r.json()).then(s => {
  document.getElementById('stats').textContent = JSON.stringify(s, null, 2);
});
</script>`

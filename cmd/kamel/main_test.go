package main

import (
	"os"
	"path/filepath"
	"testing"

	"kamel/internal/geo"
	"kamel/internal/roadnet"
	"kamel/internal/trajgen"
	"kamel/internal/trajio"
)

func TestWireConversionRoundTrip(t *testing.T) {
	in := wireTraj{ID: "x", Points: [][3]float64{{41.1, -8.6, 1}, {41.2, -8.5, 2}}}
	trajs := fromWire([]wireTraj{in})
	if len(trajs) != 1 || len(trajs[0].Points) != 2 {
		t.Fatal("fromWire wrong")
	}
	out := toWire(trajs[0])
	if out.ID != in.ID || out.Points[1] != in.Points[1] {
		t.Error("wire round trip lost data")
	}
}

func TestSystemConfigFlags(t *testing.T) {
	cfg := systemConfig("/tmp/x", 123, "iterative", true, true, true)
	if cfg.Train.Steps != 123 || string(cfg.Strategy) != "iterative" {
		t.Errorf("flags not applied: %+v", cfg)
	}
	if !cfg.DisablePartitioning || !cfg.DisableConstraints || !cfg.DisableMultipoint {
		t.Error("ablation flags not applied")
	}
}

// TestDatagenTrainImputePipeline exercises the CLI code paths end to end
// through their Go entry points (no subprocesses).
func TestDatagenTrainImputePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	dir := t.TempDir()

	// datagen equivalent: write a small dataset file.
	city := roadnet.DefaultCityConfig()
	city.Width, city.Height = 1500, 1500
	net := roadnet.GenerateCity(city)
	proj := geo.NewProjection(41.15, -8.61)
	trajs, err := trajgen.Generate(net, proj, trajgen.DefaultConfig(30))
	if err != nil {
		t.Fatal(err)
	}
	dataPath := filepath.Join(dir, "data.jsonl")
	f, _ := os.Create(dataPath)
	if err := trajio.Write(f, trajs[:25]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	sparsePath := filepath.Join(dir, "sparse.jsonl")
	f, _ = os.Create(sparsePath)
	if err := trajio.Write(f, []geo.Trajectory{trajs[25].Sparsify(800)}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	work := filepath.Join(dir, "work")
	if err := runTrain([]string{"-work", work, "-in", dataPath, "-steps", "90"}); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "dense.jsonl")
	if err := runImpute([]string{"-work", work, "-in", sparsePath, "-out", outPath}); err != nil {
		t.Fatal(err)
	}
	g, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	dense, err := trajio.Read(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(dense) != 1 || len(dense[0].Points) <= 3 {
		t.Fatalf("imputation output suspicious: %d trajectories", len(dense))
	}
}

func TestCommandsValidateFlags(t *testing.T) {
	if err := runTrain([]string{"-in", "/nonexistent"}); err == nil {
		t.Error("train without -work must fail")
	}
	if err := runImpute([]string{"-in", "/nonexistent"}); err == nil {
		t.Error("impute without -work must fail")
	}
	if err := runTune([]string{"-in", "/nonexistent"}); err == nil {
		t.Error("tune without -work must fail")
	}
	if err := runDatagen([]string{"-profile", "atlantis"}); err == nil {
		t.Error("unknown profile must fail")
	}
}

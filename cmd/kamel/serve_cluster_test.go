package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kamel/internal/cluster"
	"kamel/internal/cluster/clustertest"
	"kamel/internal/core"
	"kamel/internal/geo"
	"kamel/internal/roadnet"
	"kamel/internal/trajgen"
)

// quietLogger keeps per-request log lines out of test output.
func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// clusterReq issues one JSON request and returns the raw response.
func clusterReq(tb testing.TB, method, url string, hdrs map[string]string, body interface{}) (int, http.Header, []byte) {
	tb.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			tb.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		tb.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range hdrs {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		tb.Fatal(err)
	}
	return resp.StatusCode, resp.Header, raw
}

// copyDir clones a trained workdir so every shard node (and the single-node
// reference) serves byte-identical models — which is what makes element-wise
// parity assertions possible.
func copyDir(tb testing.TB, src, dst string) {
	tb.Helper()
	err := filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		tb.Fatal(err)
	}
}

func writeShardMap(tb testing.TB, path string, m *cluster.Map) {
	tb.Helper()
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		tb.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		tb.Fatal(err)
	}
}

// forwardRecorder counts the forwarded imputation requests a node receives,
// so tests can assert which shard actually served a routed request.
type forwardRecorder struct {
	next      http.Handler
	forwarded atomic.Int64
}

func (rec *forwardRecorder) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get(cluster.HeaderForwarded) != "" && strings.HasPrefix(r.URL.Path, "/v1/impute") {
		rec.forwarded.Add(1)
	}
	rec.next.ServeHTTP(w, r)
}

// clusterFixture is an in-process n-shard cluster plus a single-node
// reference server, all serving the same trained models: one system is
// trained once, persisted, and its workdir cloned per node.
type clusterFixture struct {
	c       *clustertest.Cluster
	syss    []*core.System
	single  *httptest.Server // single-node reference over identical models
	recs    []*forwardRecorder
	mapPath string
	sparse  []wireTraj       // sparsified held-out trajectories to impute
	trained []geo.Trajectory // the training set, for version-bumping retrains
}

// newClusterFixture builds the classic R=1 cluster (every cell has a single
// owner); newReplicaFixture generalizes it to N-way replica groups.
func newClusterFixture(tb testing.TB, n int) *clusterFixture {
	return newReplicaFixture(tb, n, 0)
}

// The optional tweaks run against every node's serveOptions after the
// fixture's defaults are applied (the tracing tests use them to pin the
// sampling and slow-retention knobs).
func newReplicaFixture(tb testing.TB, n, replicas int, tweaks ...func(*serveOptions)) *clusterFixture {
	tb.Helper()
	base := tb.TempDir()
	seed := filepath.Join(base, "seed")
	// Partitioning stays on (unlike the single-node serve tests): the fixture
	// persists the trained repository and clones it per node, and only the
	// pyramid repository round-trips through SaveModels/LoadModels.  The
	// model is shrunk to the unit-test scale of internal/core's fixtures so
	// training stays affordable under the race detector; every node and the
	// single-node reference share the identical config, which is what makes
	// element-wise parity assertions valid.
	mkcfg := func(dir, shardID string) core.Config {
		cfg := systemConfig(dir, 200, "", false, false, false)
		cfg.Hidden, cfg.FFN = 32, 128
		cfg.Train.Batch = 12
		cfg.TopK = 40
		cfg.MaxCalls = 150
		cfg.ShardID = shardID
		return cfg
	}
	sys0, err := core.New(mkcfg(seed, ""))
	if err != nil {
		tb.Fatal(err)
	}
	city := roadnet.DefaultCityConfig()
	city.Width, city.Height = 1500, 1500
	city.BlockSpacing = 250
	net := roadnet.GenerateCity(city)
	proj := geo.NewProjection(41.15, -8.61)
	gen := trajgen.DefaultConfig(56)
	gen.GPSNoiseMeters = 3
	trajs, err := trajgen.Generate(net, proj, gen)
	if err != nil {
		tb.Fatal(err)
	}
	if err := sys0.TrainContext(context.Background(), trajs[:48]); err != nil {
		tb.Fatal(err)
	}
	if err := sys0.SaveModels(); err != nil {
		tb.Fatal(err)
	}
	if err := sys0.Close(); err != nil {
		tb.Fatal(err)
	}

	fx := &clusterFixture{mapPath: filepath.Join(base, "shards.json"), trained: trajs[:48]}
	for _, tr := range trajs[48:56] {
		fx.sparse = append(fx.sparse, toWire(tr.Sparsify(800)))
	}

	loadCopy := func(dir, shardID string) *core.System {
		copyDir(tb, seed, dir)
		sys, err := core.New(mkcfg(dir, shardID))
		if err != nil {
			tb.Fatal(err)
		}
		tb.Cleanup(func() { sys.Close() })
		if err := sys.LoadModels(); err != nil {
			tb.Fatal(err)
		}
		// Parity assertions below are only meaningful if the nodes serve from
		// real models, not the linear fallback for missing models.
		if !sys.Ready() {
			tb.Fatalf("node %s not ready after loading the cloned repository", shardID)
		}
		if st := sys.SystemStats(); st.SingleModels == 0 {
			tb.Fatalf("node %s loaded no models (stats %+v)", shardID, st)
		}
		return sys
	}
	for i := 0; i < n; i++ {
		fx.syss = append(fx.syss,
			loadCopy(filepath.Join(base, fmt.Sprintf("node-%d", i)), fmt.Sprintf("shard-%d", i)))
	}
	refSys := loadCopy(filepath.Join(base, "single"), "")
	refOpts := defaultServeOptions()
	refOpts.logger = quietLogger()
	fx.single = httptest.NewServer(newAPIHandler(refSys, refOpts))
	tb.Cleanup(fx.single.Close)

	fx.recs = make([]*forwardRecorder, n)
	tmpl := cluster.Map{OriginLat: 41.15, OriginLng: -8.61, CellEdgeM: 250, Replicas: replicas}
	c, err := clustertest.New(n, tmpl,
		func(i int, self string) cluster.Options {
			return cluster.Options{
				Logger:       quietLogger(),
				Registry:     fx.syss[i].Obs(),
				RetryBackoff: time.Millisecond,
			}
		},
		func(i int, self string, rt *cluster.Router) (http.Handler, error) {
			opts := defaultServeOptions()
			opts.logger = quietLogger()
			opts.router = rt
			opts.clusterPath = fx.mapPath
			opts.replicaOverride = replicas
			// On-demand anti-entropy (never Run in tests: sweeps are driven
			// through POST /v1/cluster/antientropy, keeping tests deterministic).
			opts.syncer = cluster.NewSyncer(rt, replicaStore{fx.syss[i]}, cluster.SyncerOptions{
				Logger: quietLogger(),
			})
			for _, tweak := range tweaks {
				tweak(&opts)
			}
			rec := &forwardRecorder{next: newAPIHandler(fx.syss[i], opts)}
			fx.recs[i] = rec
			return rec, nil
		})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(c.Close)
	fx.c = c
	writeShardMap(tb, fx.mapPath, c.Map)
	return fx
}

// ownerIdx resolves which shard index owns a wire trajectory.
func (fx *clusterFixture) ownerIdx(tb testing.TB, tr wireTraj) int {
	tb.Helper()
	owner, _, ok := fx.c.Nodes[0].Router.Owner(wirePoints(tr))
	if !ok {
		tb.Fatalf("no owner for trajectory %s", tr.ID)
	}
	return shardIdx(tb, owner)
}

// groupOf resolves a wire trajectory's full replica group.
func (fx *clusterFixture) groupOf(tb testing.TB, tr wireTraj) []string {
	tb.Helper()
	g, _, ok := fx.c.Nodes[0].Router.ReplicaGroup(wirePoints(tr))
	if !ok {
		tb.Fatalf("no replica group for trajectory %s", tr.ID)
	}
	return g
}

// shardIdx maps a "shard-N" id back to its node index.
func shardIdx(tb testing.TB, id string) int {
	tb.Helper()
	i, err := strconv.Atoi(strings.TrimPrefix(id, "shard-"))
	if err != nil {
		tb.Fatal(err)
	}
	return i
}

// TestClusterServeEndToEnd drives the full sharded serving surface over one
// in-process 3-shard cluster: routing by shard cell, scatter-gather parity
// against single-node serving, trace stitching, peer failure degradation, and
// shard-map reload.  Subtests share the fixture and run in order; the kill
// and reload subtests mutate the cluster, so they come last.
func TestClusterServeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	fx := newClusterFixture(t, 3)

	owners := map[int]bool{}
	for _, tr := range fx.sparse {
		owners[fx.ownerIdx(t, tr)] = true
	}
	if len(owners) < 2 {
		t.Fatalf("fixture trajectories all owned by one shard — shrink the map's CellEdgeM")
	}
	victim := fx.ownerIdx(t, fx.sparse[0])
	gw := (victim + 1) % len(fx.c.Nodes)

	t.Run("SingleForwardRoutesToOwner", func(t *testing.T) {
		for _, tr := range fx.sparse[:4] {
			oi := fx.ownerIdx(t, tr)
			entry := (oi + 1) % len(fx.c.Nodes) // always a non-owner gateway
			before := fx.recs[oi].forwarded.Load()
			status, _, raw := clusterReq(t, http.MethodPost, fx.c.Nodes[entry].URL()+"/v1/impute", nil, tr)
			if status != http.StatusOK {
				t.Fatalf("impute %s via shard-%d: status %d: %s", tr.ID, entry, status, raw)
			}
			var res wireImputeResult
			if err := json.Unmarshal(raw, &res); err != nil {
				t.Fatal(err)
			}
			if res.Trajectory == nil || len(res.Trajectory.Points) <= len(tr.Points) {
				t.Errorf("%s: forwarded imputation added no points", tr.ID)
			}
			if got := fx.recs[oi].forwarded.Load(); got != before+1 {
				t.Errorf("%s: owner shard-%d saw %d forwarded requests, want %d", tr.ID, oi, got, before+1)
			}
			// Element-wise parity with single-node serving over the same models.
			status, _, refRaw := clusterReq(t, http.MethodPost, fx.single.URL+"/v1/impute", nil, tr)
			if status != http.StatusOK {
				t.Fatalf("single-node impute: status %d: %s", status, refRaw)
			}
			var ref wireImputeResult
			if err := json.Unmarshal(refRaw, &ref); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res, ref) {
				t.Errorf("%s: forwarded result differs from single-node serving", tr.ID)
			}
		}
	})

	t.Run("BatchScatterGatherParity", func(t *testing.T) {
		status, _, raw := clusterReq(t, http.MethodPost, fx.c.Nodes[gw].URL()+"/v1/impute/batch", nil, fx.sparse)
		if status != http.StatusOK {
			t.Fatalf("scatter-gather batch: status %d: %s", status, raw)
		}
		var got wireBatchResponse
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatal(err)
		}
		if len(got.Results) != len(fx.sparse) {
			t.Fatalf("batch returned %d results, want %d", len(got.Results), len(fx.sparse))
		}
		status, _, refRaw := clusterReq(t, http.MethodPost, fx.single.URL+"/v1/impute/batch", nil, fx.sparse)
		if status != http.StatusOK {
			t.Fatalf("single-node batch: status %d: %s", status, refRaw)
		}
		var ref wireBatchResponse
		if err := json.Unmarshal(refRaw, &ref); err != nil {
			t.Fatal(err)
		}
		for i := range got.Results {
			if got.Results[i].Error != nil {
				t.Errorf("item %d errored: %v", i, got.Results[i].Error)
			}
			if got.Results[i].Degraded != 0 {
				t.Errorf("item %d degraded with all shards healthy", i)
			}
			if !reflect.DeepEqual(got.Results[i], ref.Results[i]) {
				t.Errorf("item %d: scatter-gathered result differs from single-node serving", i)
			}
		}
	})

	t.Run("AdmissionBatchingOnEveryShard", func(t *testing.T) {
		// Several concurrent spanning batches through one gateway: every
		// shard's share flows through its local admission batcher, and each
		// concurrent caller still gets the single-node reference results.
		status, _, refRaw := clusterReq(t, http.MethodPost, fx.single.URL+"/v1/impute/batch", nil, fx.sparse)
		if status != http.StatusOK {
			t.Fatalf("single-node batch: status %d: %s", status, refRaw)
		}
		var ref wireBatchResponse
		if err := json.Unmarshal(refRaw, &ref); err != nil {
			t.Fatal(err)
		}
		const callers = 4
		type outcome struct {
			status int
			raw    []byte
		}
		outs := make([]outcome, callers)
		var wg sync.WaitGroup
		for c := 0; c < callers; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				st, _, raw := clusterReq(t, http.MethodPost, fx.c.Nodes[gw].URL()+"/v1/impute/batch", nil, fx.sparse)
				outs[c] = outcome{status: st, raw: raw}
			}(c)
		}
		wg.Wait()
		for c, o := range outs {
			if o.status != http.StatusOK {
				t.Fatalf("caller %d: status %d: %s", c, o.status, o.raw)
			}
			var got wireBatchResponse
			if err := json.Unmarshal(o.raw, &got); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Results, ref.Results) {
				t.Errorf("caller %d: concurrent scatter-gather diverged from single-node serving", c)
			}
		}
		for i, sys := range fx.syss {
			adm := sys.Batcher()
			if adm == nil {
				t.Fatalf("shard-%d serves without an admission batcher", i)
			}
			if st := adm.Stats(); st.Items == 0 || st.Batches == 0 {
				t.Errorf("shard-%d batcher saw no work: %+v", i, st)
			}
		}
	})

	t.Run("DebugStitchesOneTraceAcrossHops", func(t *testing.T) {
		var tr wireTraj
		for _, cand := range fx.sparse {
			if fx.ownerIdx(t, cand) != 0 {
				tr = cand
				break
			}
		}
		if tr.ID == "" {
			t.Fatal("no trajectory owned by a remote shard")
		}
		const reqID = "cluster-trace-1"
		status, hdr, raw := clusterReq(t, http.MethodPost, fx.c.Nodes[0].URL()+"/v1/impute?debug=1",
			map[string]string{"X-Request-ID": reqID}, tr)
		if status != http.StatusOK {
			t.Fatalf("debug impute: status %d: %s", status, raw)
		}
		if hdr.Get("X-Request-ID") != reqID {
			t.Errorf("X-Request-ID echoed as %q", hdr.Get("X-Request-ID"))
		}
		var res wireImputeResult
		if err := json.Unmarshal(raw, &res); err != nil {
			t.Fatal(err)
		}
		if res.Debug == nil {
			t.Fatal("debug breakdown missing")
		}
		if res.Debug.RequestID != reqID || res.Debug.Shard != "shard-0" {
			t.Errorf("local hop identity = (%q, %q), want (%q, shard-0)",
				res.Debug.RequestID, res.Debug.Shard, reqID)
		}
		var sawForward bool
		for _, sp := range res.Debug.Spans {
			if sp.Name == "cluster.forward" {
				sawForward = true
			}
		}
		if !sawForward {
			t.Error("local trace missing the cluster.forward span")
		}
		if len(res.Debug.Hops) != 1 {
			t.Fatalf("stitched %d hops, want 1", len(res.Debug.Hops))
		}
		hop := res.Debug.Hops[0]
		wantShard := fmt.Sprintf("shard-%d", fx.ownerIdx(t, tr))
		if hop.RequestID != reqID || hop.Shard != wantShard {
			t.Errorf("remote hop identity = (%q, %q), want (%q, %q)",
				hop.RequestID, hop.Shard, reqID, wantShard)
		}
		if len(hop.Stages) == 0 {
			t.Error("remote hop carries no stage breakdown")
		}
	})

	t.Run("StatsExposeClusterCounters", func(t *testing.T) {
		status, _, raw := clusterReq(t, http.MethodGet, fx.c.Nodes[gw].URL()+"/v1/stats", nil, nil)
		if status != http.StatusOK {
			t.Fatalf("stats: status %d", status)
		}
		var doc struct {
			ShardID string         `json:"shard_id"`
			Cluster *cluster.Stats `json:"cluster"`
		}
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatal(err)
		}
		wantSelf := fmt.Sprintf("shard-%d", gw)
		if doc.ShardID != wantSelf {
			t.Errorf("shard_id = %q, want %q", doc.ShardID, wantSelf)
		}
		if doc.Cluster == nil {
			t.Fatal("stats missing the cluster block")
		}
		if doc.Cluster.Self != wantSelf || doc.Cluster.Shards != 3 || doc.Cluster.MapGeneration != 1 {
			t.Errorf("cluster stats = self %q shards %d gen %d, want %q/3/1",
				doc.Cluster.Self, doc.Cluster.Shards, doc.Cluster.MapGeneration, wantSelf)
		}
		if doc.Cluster.Forwards == 0 {
			t.Error("gateway reports zero forwarded requests after scatter-gather")
		}
	})

	t.Run("PeerFailureDegradesOnlyItsShard", func(t *testing.T) {
		var alive wireTraj // owned by a shard that stays up
		for _, cand := range fx.sparse {
			if fx.ownerIdx(t, cand) != victim {
				alive = cand
				break
			}
		}
		fx.c.Kill(victim)

		status, _, raw := clusterReq(t, http.MethodPost, fx.c.Nodes[gw].URL()+"/v1/impute", nil, fx.sparse[0])
		if status != http.StatusOK {
			t.Fatalf("impute with owner down: status %d: %s", status, raw)
		}
		var res wireImputeResult
		if err := json.Unmarshal(raw, &res); err != nil {
			t.Fatal(err)
		}
		if res.Degraded == 0 {
			t.Error("dead shard's trajectory not flagged degraded")
		}
		if res.Trajectory == nil || len(res.Trajectory.Points) <= len(fx.sparse[0].Points) {
			t.Error("linear fallback added no points")
		}

		status, _, raw = clusterReq(t, http.MethodPost, fx.c.Nodes[gw].URL()+"/v1/impute", nil, alive)
		if status != http.StatusOK {
			t.Fatalf("impute on surviving shard: status %d: %s", status, raw)
		}
		if err := json.Unmarshal(raw, &res); err != nil {
			t.Fatal(err)
		}
		if res.Degraded != 0 {
			t.Error("surviving shard's trajectory degraded — failure leaked across shards")
		}

		// A spanning batch degrades only the dead shard's items.
		status, _, raw = clusterReq(t, http.MethodPost, fx.c.Nodes[gw].URL()+"/v1/impute/batch", nil, fx.sparse)
		if status != http.StatusOK {
			t.Fatalf("batch with one shard down: status %d: %s", status, raw)
		}
		var batch wireBatchResponse
		if err := json.Unmarshal(raw, &batch); err != nil {
			t.Fatal(err)
		}
		for i, item := range batch.Results {
			if item.Error != nil {
				t.Errorf("item %d errored: %v", i, item.Error)
				continue
			}
			ownedByVictim := fx.ownerIdx(t, fx.sparse[i]) == victim
			if ownedByVictim && item.Degraded == 0 {
				t.Errorf("item %d owned by dead shard not degraded", i)
			}
			if !ownedByVictim && item.Degraded != 0 {
				t.Errorf("item %d owned by live shard served degraded", i)
			}
		}

		if st := fx.c.Nodes[gw].Router.ClusterStats(); st.Degraded == 0 {
			t.Error("gateway counted no degraded requests")
		}
	})

	t.Run("ShardMapReloadReroutes", func(t *testing.T) {
		victimID := fmt.Sprintf("shard-%d", victim)
		old := *fx.c.Map
		next := old
		next.Generation = old.Generation + 1
		next.Shards = nil
		for _, sh := range old.Shards {
			if sh.ID != victimID {
				next.Shards = append(next.Shards, sh)
			}
		}
		writeShardMap(t, fx.mapPath, &next)
		for i, node := range fx.c.Nodes {
			if i == victim {
				continue
			}
			status, _, raw := clusterReq(t, http.MethodPost, node.URL()+"/v1/cluster/reload", nil, nil)
			if status != http.StatusOK {
				t.Fatalf("reload on shard-%d: status %d: %s", i, status, raw)
			}
			var ack map[string]interface{}
			if err := json.Unmarshal(raw, &ack); err != nil {
				t.Fatal(err)
			}
			if gen, _ := ack["generation"].(float64); int(gen) != next.Generation {
				t.Errorf("shard-%d acked generation %v, want %d", i, ack["generation"], next.Generation)
			}
		}

		// The dead shard's cells re-homed to a survivor, so its trajectory is
		// model-served again — no degradation, no 503.
		if owner, _, _ := fx.c.Nodes[gw].Router.Owner(wirePoints(fx.sparse[0])); owner == victimID {
			t.Fatalf("reload did not re-home cells away from %s", victimID)
		}
		status, _, raw := clusterReq(t, http.MethodPost, fx.c.Nodes[gw].URL()+"/v1/impute", nil, fx.sparse[0])
		if status != http.StatusOK {
			t.Fatalf("impute after reload: status %d: %s", status, raw)
		}
		var res wireImputeResult
		if err := json.Unmarshal(raw, &res); err != nil {
			t.Fatal(err)
		}
		if res.Degraded != 0 {
			t.Error("re-homed trajectory still served degraded after reload")
		}

		// A stale (lower-generation) map is rejected with 409.
		writeShardMap(t, fx.mapPath, &old)
		status, _, _ = clusterReq(t, http.MethodPost, fx.c.Nodes[gw].URL()+"/v1/cluster/reload", nil, nil)
		if status != http.StatusConflict {
			t.Errorf("stale map reload: status %d, want 409", status)
		}
		writeShardMap(t, fx.mapPath, &next)
	})
}

// TestClusterUnavailableWhenAllOwnersDown exercises the bottom of the
// degradation ladder without any training: the owning peer is dead and the
// local node has no projection, so the answer is 503 + Retry-After with the
// shard_unavailable code — and the refusal is counted in /v1/stats.
func TestClusterUnavailableWhenAllOwnersDown(t *testing.T) {
	var syss []*core.System
	for i := 0; i < 2; i++ {
		sys, err := core.New(systemConfig(t.TempDir(), 90, "", true, false, false))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sys.Close() })
		syss = append(syss, sys)
	}
	tmpl := cluster.Map{OriginLat: 41.15, OriginLng: -8.61, CellEdgeM: 250}
	c, err := clustertest.New(2, tmpl,
		func(i int, self string) cluster.Options {
			return cluster.Options{
				Logger:       quietLogger(),
				Registry:     syss[i].Obs(),
				RetryBackoff: time.Millisecond,
			}
		},
		func(i int, self string, rt *cluster.Router) (http.Handler, error) {
			opts := defaultServeOptions()
			opts.logger = quietLogger()
			opts.router = rt
			return newAPIHandler(syss[i], opts), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	// Find a probe trajectory owned by shard-1 (routing needs no training —
	// the map itself carries the projection origin).
	var tr wireTraj
	for dx := 0; dx < 400 && tr.ID == ""; dx++ {
		lat := 41.15 + float64(dx)*0.002
		cand := wireTraj{ID: "probe", Points: [][3]float64{{lat, -8.61, 0}, {lat, -8.6, 600}}}
		if owner, _, ok := c.Nodes[0].Router.Owner(wirePoints(cand)); ok && owner == "shard-1" {
			tr = cand
		}
	}
	if tr.ID == "" {
		t.Fatal("found no shard-1-owned probe trajectory")
	}
	c.Kill(1)

	status, hdr, raw := clusterReq(t, http.MethodPost, c.Nodes[0].URL()+"/v1/impute", nil, tr)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("impute with owner dead and no fallback: status %d: %s", status, raw)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("503 missing Retry-After")
	}
	var errBody map[string]wireError
	if err := json.Unmarshal(raw, &errBody); err != nil {
		t.Fatal(err)
	}
	if errBody["error"].Code != codeShardDown {
		t.Errorf("error code %q, want %q", errBody["error"].Code, codeShardDown)
	}

	status, hdr, raw = clusterReq(t, http.MethodPost, c.Nodes[0].URL()+"/v1/impute/batch", nil, []wireTraj{tr})
	if status != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Fatalf("batch with owner dead: status %d (Retry-After %q): %s", status, hdr.Get("Retry-After"), raw)
	}

	status, _, raw = clusterReq(t, http.MethodGet, c.Nodes[0].URL()+"/v1/stats", nil, nil)
	if status != http.StatusOK {
		t.Fatalf("stats: status %d", status)
	}
	var doc struct {
		Cluster *cluster.Stats `json:"cluster"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Cluster == nil || doc.Cluster.Unavailable != 2 {
		t.Errorf("unavailable_requests = %+v, want 2", doc.Cluster)
	}
}

// TestClusterReloadWithoutCluster pins the single-node behavior of the
// reload endpoint: clustering off means 404, not a panic or a silent 200.
func TestClusterReloadWithoutCluster(t *testing.T) {
	ts := newTestServer(t)
	status, _, body := call(t, http.MethodPost, ts.URL+"/v1/cluster/reload", "application/json", "")
	wantErrorCode(t, status, body, http.StatusNotFound, codeNotFound)
}

// TestRemainingDeadlineMS pins the forwarded-deadline rebase: a hop must
// hand the owning shard only the budget still left, never the original
// window (which would restart the client's deadline from the shard's
// arrival time), and never a zero that the shard would read as "no
// deadline".
func TestRemainingDeadlineMS(t *testing.T) {
	bg := context.Background()
	if got := remainingDeadlineMS(bg, 0); got != 0 {
		t.Fatalf("no deadline requested: got %d, want 0 passed through", got)
	}
	// A context without a deadline (deadline_ms set but admission not yet
	// applied) forwards the original window.
	if got := remainingDeadlineMS(bg, 500); got != 500 {
		t.Fatalf("deadline-free context: got %d, want 500", got)
	}
	// Elapsed time shrinks the forwarded budget below the original.
	ctx, cancel := context.WithTimeout(bg, 500*time.Millisecond)
	defer cancel()
	time.Sleep(50 * time.Millisecond)
	got := remainingDeadlineMS(ctx, 500)
	if got >= 500 || got < 1 {
		t.Fatalf("after 50ms of a 500ms budget: forwarded %d, want in [1,500)", got)
	}
	// An exhausted budget clamps to 1ms rather than 0 (= unlimited).
	expired, cancel2 := context.WithTimeout(bg, time.Nanosecond)
	defer cancel2()
	time.Sleep(time.Millisecond)
	if got := remainingDeadlineMS(expired, 500); got != 1 {
		t.Fatalf("expired budget: got %d, want clamp to 1", got)
	}
}

// BenchmarkClusterScatterGather measures a spanning batch through a 3-shard
// in-process cluster (gateway scatter, per-shard sub-batches, in-order
// merge) — the cluster-layer overhead on top of the engine's batch path.
func BenchmarkClusterScatterGather(b *testing.B) {
	fx := newClusterFixture(b, 3)
	body, err := json.Marshal(fx.sparse)
	if err != nil {
		b.Fatal(err)
	}
	url := fx.c.Nodes[0].Server.URL + "/v1/impute/batch"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"

	"kamel/internal/core"
	"kamel/internal/geo"
	"kamel/internal/roadnet"
	"kamel/internal/trajgen"
)

// newObsFixture builds the full API handler over a fresh system, returning
// both so tests can drive requests synchronously with httptest.NewRecorder
// (which, unlike a live server, guarantees middleware side effects like log
// lines and histogram updates are visible when ServeHTTP returns).
func newObsFixture(t *testing.T, opts serveOptions) (*core.System, http.Handler) {
	t.Helper()
	if opts.logger == nil {
		opts.logger = slog.New(slog.NewTextHandler(&bytes.Buffer{}, nil))
	}
	sys, err := core.New(systemConfig(t.TempDir(), 90, "", true, false, false))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	return sys, newAPIHandler(sys, opts)
}

func doReq(h http.Handler, method, target, body string, hdr map[string]string) *httptest.ResponseRecorder {
	var rd *strings.Reader
	if body != "" {
		rd = strings.NewReader(body)
	} else {
		rd = strings.NewReader("")
	}
	req := httptest.NewRequest(method, target, rd)
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// trainObsFixture trains a small model through the core API so the imputation
// endpoints serve real work.
func trainObsFixture(t *testing.T, sys *core.System) []wireTraj {
	t.Helper()
	city := roadnet.DefaultCityConfig()
	city.Width, city.Height = 1500, 1500
	net := roadnet.GenerateCity(city)
	proj := geo.NewProjection(41.15, -8.61)
	trajs, err := trajgen.Generate(net, proj, trajgen.DefaultConfig(30))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Train(trajs[:25]); err != nil {
		t.Fatal(err)
	}
	var sparse []wireTraj
	for _, tr := range trajs[25:28] {
		sparse = append(sparse, toWire(tr.Sparsify(800)))
	}
	return sparse
}

// TestServeMetricsEndpoint: /metrics speaks the Prometheus text format,
// pre-registers the pipeline stage histograms, and its request counters move
// when API traffic flows.
func TestServeMetricsEndpoint(t *testing.T) {
	_, h := newObsFixture(t, defaultServeOptions())

	rec := doReq(h, http.MethodGet, "/metrics", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("metrics Content-Type %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# HELP kamel_stage_duration_seconds",
		"# TYPE kamel_stage_duration_seconds histogram",
		`kamel_stage_duration_seconds_bucket{stage="impute.predict",le="+Inf"}`,
		`kamel_stage_duration_seconds_bucket{stage="impute.tokenize",le="+Inf"}`,
		"kamel_modelcache_load_seconds_count",
		"kamel_http_shed_total 0",
		"kamel_http_panics_total 0",
		"kamel_http_timeouts_total 0",
		"kamel_impute_requests_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// /metrics itself is an operator surface: it must not appear in the
	// request-duration series.
	if strings.Contains(body, `route="other"`) {
		t.Error("operator scrape was recorded as API traffic")
	}

	// API traffic feeds the per-route histogram and is visible on re-scrape.
	if rec := doReq(h, http.MethodGet, "/v1/stats", "", nil); rec.Code != http.StatusOK {
		t.Fatalf("stats status %d", rec.Code)
	}
	body = doReq(h, http.MethodGet, "/metrics", "", nil).Body.String()
	if !strings.Contains(body, `kamel_http_request_duration_seconds_count{route="/v1/stats",status="200"} 1`) {
		t.Errorf("request-duration series missing after traffic:\n%s", grepLines(body, "kamel_http_request_duration_seconds_count"))
	}
}

// grepLines returns the lines of s containing sub, for failure messages.
func grepLines(s, sub string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, sub) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestServeRequestID: a generated ID is echoed in X-Request-ID, and a
// client-supplied one is honored verbatim.
func TestServeRequestID(t *testing.T) {
	_, h := newObsFixture(t, defaultServeOptions())

	rec := doReq(h, http.MethodGet, "/v1/stats", "", nil)
	id := rec.Header().Get("X-Request-ID")
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(id) {
		t.Errorf("generated request ID %q is not 16 hex chars", id)
	}
	rec2 := doReq(h, http.MethodGet, "/v1/stats", "", nil)
	if rec2.Header().Get("X-Request-ID") == id {
		t.Error("request IDs must differ between requests")
	}

	rec3 := doReq(h, http.MethodGet, "/v1/stats", "", map[string]string{"X-Request-ID": "client-chose-this"})
	if got := rec3.Header().Get("X-Request-ID"); got != "client-chose-this" {
		t.Errorf("client request ID not honored: got %q", got)
	}
}

// TestServeDebugAndSlowLog trains a model, then checks (a) ?debug=1 returns
// the per-stage span breakdown inline on both imputation endpoints, and (b) a
// request over the slow-request threshold logs a warn line with its stages.
func TestServeDebugAndSlowLog(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	var logBuf syncBuffer
	opts := defaultServeOptions()
	opts.slowRequest = 1 // nanosecond: every request is "slow"
	opts.logger = slog.New(slog.NewJSONHandler(&logBuf, nil))
	sys, h := newObsFixture(t, opts)
	sparse := trainObsFixture(t, sys)

	oneBody, _ := json.Marshal(sparse[0])
	rec := doReq(h, http.MethodPost, "/v1/impute?debug=1", string(oneBody), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("impute status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Debug *wireDebug `json:"debug"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Debug == nil {
		t.Fatal("?debug=1 returned no debug document")
	}
	if resp.Debug.RequestID != rec.Header().Get("X-Request-ID") {
		t.Errorf("debug request_id %q != header %q", resp.Debug.RequestID, rec.Header().Get("X-Request-ID"))
	}
	if resp.Debug.TotalMS <= 0 {
		t.Errorf("debug total_ms = %v, want > 0", resp.Debug.TotalMS)
	}
	stages := map[string]bool{}
	for _, st := range resp.Debug.Stages {
		stages[st.Name] = true
		if st.Count <= 0 {
			t.Errorf("stage %s has count %d", st.Name, st.Count)
		}
	}
	for _, want := range []string{"impute.tokenize", "impute.beam", "impute.predict"} {
		if !stages[want] {
			t.Errorf("debug stages missing %q (got %v)", want, stages)
		}
	}
	if len(resp.Debug.Spans) == 0 {
		t.Error("debug document has no spans")
	}

	// Without the parameter the field is absent.
	rec = doReq(h, http.MethodPost, "/v1/impute", string(oneBody), nil)
	if strings.Contains(rec.Body.String(), `"debug"`) {
		t.Error("debug document returned without ?debug=1")
	}

	// Batch endpoint: one batch-wide debug document.
	batchBody, _ := json.Marshal(sparse)
	rec = doReq(h, http.MethodPost, "/v1/impute/batch?debug=1", string(batchBody), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status %d", rec.Code)
	}
	var batchResp struct {
		Debug *wireDebug `json:"debug"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &batchResp); err != nil {
		t.Fatal(err)
	}
	if batchResp.Debug == nil || len(batchResp.Debug.Stages) == 0 {
		t.Fatal("batch ?debug=1 returned no stage breakdown")
	}

	// Every request above ran over the 1ns threshold: the log must carry
	// warn-level "slow request" lines with a stages attribute.
	logs := logBuf.String()
	if !strings.Contains(logs, `"msg":"slow request"`) {
		t.Fatalf("no slow-request log lines:\n%s", logs)
	}
	if !strings.Contains(logs, `"stages"`) || !strings.Contains(logs, "impute.beam") {
		t.Errorf("slow-request log missing stage breakdown:\n%s", logs)
	}
	if !strings.Contains(logs, `"request_id"`) {
		t.Error("log lines missing request_id")
	}
}

// syncBuffer is a locked bytes.Buffer: slog handlers may be driven from
// concurrent requests.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

package main

import (
	"net/http"

	"kamel/internal/cluster"
	"kamel/internal/core"
)

// Replication endpoints: the HTTP face of the anti-entropy layer
// (internal/cluster.Syncer).  Every node in a replicated deployment serves
// its replication manifest (what models it has, at what versions) and its
// committed model payloads, and accepts an operator-triggered sweep.  All of
// it is gated on clustering being enabled; a single-node deployment 404s.
//
//	GET  /v1/cluster             replica/rebuild/anti-entropy stats
//	GET  /v1/cluster/manifest    this node's replication manifest
//	GET  /v1/cluster/model?file= one committed model's encoded payload
//	POST /v1/cluster/antientropy run one sweep now, return its outcome

// replicaStore adapts the core system to cluster.ReplicaStore: manifest
// enumeration from the serving snapshot, payload reads bounded to files the
// snapshot references, and installs through the single-writer commit path.
type replicaStore struct {
	sys *core.System
}

func (rs replicaStore) ManifestDoc() (cluster.ManifestDoc, bool) {
	ix := rs.sys.ServingIndex()
	proj := rs.sys.Projection()
	if ix == nil || proj == nil {
		// Nothing trained or loaded yet: the node has no manifest to offer
		// (it bootstraps through replicated train traffic).
		return cluster.ManifestDoc{}, false
	}
	lat, lng := proj.Origin()
	doc := cluster.ManifestDoc{
		Shard:      rs.sys.Config().ShardID,
		Generation: ix.Generation(),
		OriginLat:  lat,
		OriginLng:  lng,
		Config:     ix.Config(),
		// The frozen tokenizer fingerprint: peers refuse to exchange models
		// across differing token spaces.
		TokenizerSpecHash: rs.sys.TokenizerSpecHash(),
	}
	for _, ref := range ix.Models() {
		if ref.File == "" {
			continue // memory-only, not yet committed: nothing to pull
		}
		doc.Models = append(doc.Models, cluster.ReplicaModel{
			Key: ref.Key, Slot: ref.Slot, File: ref.File, Meta: ref.Meta,
		})
	}
	return doc, true
}

func (rs replicaStore) ModelPayload(file string) ([]byte, error) {
	return rs.sys.ModelPayload(file)
}

func (rs replicaStore) InstallModels(models []cluster.IncomingModel) (int, error) {
	conv := make([]core.ReplicaModel, len(models))
	for i, m := range models {
		conv[i] = core.ReplicaModel{Key: m.Key, Slot: m.Slot, Meta: m.Meta, Payload: m.Payload}
	}
	return rs.sys.InstallReplicaModels(conv)
}

// wireClusterDoc is the GET /v1/cluster response: the router's replication
// stats, the anti-entropy accounting (when the background syncer is
// enabled), and the rebuild parallelism in effect.
type wireClusterDoc struct {
	Cluster        cluster.Stats      `json:"cluster"`
	AntiEntropy    *cluster.SyncStats `json:"anti_entropy,omitempty"`
	RebuildWorkers int                `json:"rebuild_workers"`
}

func (s *apiServer) handleClusterInfo(w http.ResponseWriter, r *http.Request) {
	rt := s.opts.router
	if rt == nil {
		writeError(w, http.StatusNotFound, codeNotFound, "clustering is not enabled on this node")
		return
	}
	doc := wireClusterDoc{
		Cluster:        rt.ClusterStats(),
		RebuildWorkers: s.sys.Config().RebuildWorkers,
	}
	if s.opts.syncer != nil {
		st := s.opts.syncer.Stats()
		doc.AntiEntropy = &st
	}
	writeJSON(w, doc)
}

func (s *apiServer) handleClusterManifest(w http.ResponseWriter, r *http.Request) {
	if s.opts.router == nil {
		writeError(w, http.StatusNotFound, codeNotFound, "clustering is not enabled on this node")
		return
	}
	doc, ok := replicaStore{s.sys}.ManifestDoc()
	if !ok {
		writeError(w, http.StatusConflict, codeNotTrained, "no model snapshot to replicate yet")
		return
	}
	writeJSON(w, doc)
}

func (s *apiServer) handleClusterModel(w http.ResponseWriter, r *http.Request) {
	if s.opts.router == nil {
		writeError(w, http.StatusNotFound, codeNotFound, "clustering is not enabled on this node")
		return
	}
	file := r.URL.Query().Get("file")
	if file == "" {
		writeError(w, http.StatusBadRequest, codeBadRequest, "missing ?file= query parameter")
		return
	}
	buf, err := s.sys.ModelPayload(file)
	if err != nil {
		// Unreferenced names (including traversal attempts) and read failures
		// both land here: the file is not servable.
		writeError(w, http.StatusNotFound, codeNotFound, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(buf)
}

func (s *apiServer) handleClusterAntiEntropy(w http.ResponseWriter, r *http.Request) {
	if s.opts.syncer == nil {
		writeError(w, http.StatusNotFound, codeNotFound, "anti-entropy is not enabled on this node")
		return
	}
	writeJSON(w, s.opts.syncer.SweepOnce(r.Context()))
}

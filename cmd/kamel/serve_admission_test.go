package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"kamel/internal/batcher"
	"kamel/internal/obs"
)

// newAdmissionServer stands up the admitLoad middleware alone over a
// controllable inner handler, the same direct-construction pattern the fixed
// shedder's fault test uses, so overload behaviour is driven without training
// models.
func newAdmissionServer(t *testing.T, opts batcher.AdmissionOptions, inner http.Handler) (*httptest.Server, *apiServer) {
	t.Helper()
	reg := obs.NewRegistry()
	if opts.Registry == nil {
		opts.Registry = reg
	}
	s := &apiServer{
		admission: batcher.NewAdmission(opts),
		shed:      reg.Counter("kamel_http_shed_total", ""),
	}
	ts := httptest.NewServer(s.admitLoad(inner))
	t.Cleanup(ts.Close)
	return ts, s
}

// get issues one GET with optional client/priority admission headers.
func admitGet(t *testing.T, url, client, priority string) (int, http.Header) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if client != "" {
		req.Header.Set(obs.HeaderClient, client)
	}
	if priority != "" {
		req.Header.Set(obs.HeaderPriority, priority)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode, resp.Header
}

// TestServeAdmissionOverloadGoodput floods an adaptive server far past
// saturation and asserts the overload contract: goodput does not collapse
// (the limiter keeps serving at capacity), every refusal is an immediate 429
// with a valid Retry-After, and the whole burst resolves quickly because
// excess load is shed, never queued.  Run with -race in CI.
func TestServeAdmissionOverloadGoodput(t *testing.T) {
	const limit, burst = 8, 320

	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(2 * time.Millisecond) // a fast but non-zero service time
		writeJSON(w, map[string]string{"status": "done"})
	})
	ts, s := newAdmissionServer(t, batcher.AdmissionOptions{MaxLimit: limit}, inner)

	start := time.Now()
	var wg sync.WaitGroup
	var ok, shed, other int64
	var mu sync.Mutex
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, hdr := admitGet(t, ts.URL+"/v1/impute", fmt.Sprintf("c%d", i%4), "")
			mu.Lock()
			defer mu.Unlock()
			switch st {
			case http.StatusOK:
				ok++
			case http.StatusTooManyRequests:
				shed++
				if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || ra < 1 {
					t.Errorf("429 Retry-After = %q, want integer >= 1", hdr.Get("Retry-After"))
				}
			default:
				other++
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if other != 0 {
		t.Fatalf("%d responses were neither 200 nor 429", other)
	}
	if ok < limit {
		t.Fatalf("goodput collapsed: %d successes out of %d, want at least the limit %d", ok, burst, limit)
	}
	if shed == 0 {
		t.Fatalf("a %dx overload burst shed nothing (ok=%d)", burst/limit, ok)
	}
	// Shed-not-queue: the burst must resolve in bounded time, nowhere near
	// the serialized burst*serviceTime worst case.
	if elapsed > 10*time.Second {
		t.Fatalf("burst took %v; shed requests appear to have queued", elapsed)
	}
	st := s.admission.Stats()
	if st.Admitted != ok {
		t.Errorf("controller admitted = %d, HTTP successes = %d", st.Admitted, ok)
	}
	if st.ShedLimit+st.ShedQuota+st.ShedBulk != shed {
		t.Errorf("controller sheds = %d, HTTP 429s = %d",
			st.ShedLimit+st.ShedQuota+st.ShedBulk, shed)
	}
	if got := s.shed.Value(); got != shed {
		t.Errorf("shed counter = %d, want %d", got, shed)
	}
}

// TestServeAdmissionQuotaIsolation holds slots for a flooding client and
// checks a second client still admits: the fair-share quota bounds the
// flooder below the global limit.
func TestServeAdmissionQuotaIsolation(t *testing.T) {
	const limit = 8

	release := make(chan struct{})
	started := make(chan struct{}, limit)
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/stats" { // fast path: registers a client, no blocking
			writeJSON(w, map[string]string{"status": "ok"})
			return
		}
		started <- struct{}{}
		<-release
		writeJSON(w, map[string]string{"status": "done"})
	})
	ts, _ := newAdmissionServer(t, batcher.AdmissionOptions{
		MaxLimit:   limit,
		QuotaBurst: 1, // fair share with 2 active clients: ceil(8/2) = 4
	}, inner)
	var releaseOnce sync.Once
	unblock := func() { releaseOnce.Do(func() { close(release) }) }
	defer unblock()

	// The innocent touches first (an admitted fast request) so the fair-share
	// divisor is 2 by the time the flood asks for slots.
	if st, _ := admitGet(t, ts.URL+"/v1/stats", "good", ""); st != http.StatusOK {
		t.Fatalf("registration request status %d", st)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			admitGet(t, ts.URL+"/v1/impute", "flood", "")
		}()
	}
	for i := 0; i < 4; i++ {
		<-started
	}
	// The flooder, at its 4-slot fair share, is now refused with reason
	// quota...
	if st, hdr := admitGet(t, ts.URL+"/v1/impute", "flood", ""); st != http.StatusTooManyRequests {
		t.Fatalf("flooding client's 5th slot: status %d, want 429", st)
	} else if hdr.Get("Retry-After") == "" {
		t.Fatal("quota shed missing Retry-After")
	}
	// ...while the innocent client finds free slots behind the flood.
	done := make(chan int, 1)
	go func() {
		st, _ := admitGet(t, ts.URL+"/v1/impute", "good", "")
		done <- st
	}()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("innocent client never admitted behind the flood")
	}
	unblock()
	wg.Wait()
	if st := <-done; st != http.StatusOK {
		t.Fatalf("innocent client status %d, want 200", st)
	}
}

// TestServeAdmissionBulkHeadroom fills the bulk slice of an adaptive limiter
// and checks bulk is refused while interactive still admits, keyed off the
// X-Kamel-Priority header and the path default.
func TestServeAdmissionBulkHeadroom(t *testing.T) {
	const limit = 8 // bulk headroom 0.75: bulk sheds at 6 in flight

	release := make(chan struct{})
	started := make(chan struct{}, limit)
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-release
		writeJSON(w, map[string]string{"status": "done"})
	})
	ts, _ := newAdmissionServer(t, batcher.AdmissionOptions{
		MaxLimit:   limit,
		QuotaBurst: float64(limit), // quotas wide open; this test is about headroom
	}, inner)
	var releaseOnce sync.Once
	unblock := func() { releaseOnce.Do(func() { close(release) }) }
	defer unblock()

	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// The batch path defaults to bulk without any header.
			st, _ := admitGet(t, ts.URL+"/v1/impute/batch", fmt.Sprintf("b%d", i), "")
			if st != http.StatusOK {
				t.Errorf("bulk holder %d: status %d", i, st)
			}
		}(i)
	}
	for i := 0; i < 6; i++ {
		<-started
	}
	if st, _ := admitGet(t, ts.URL+"/v1/impute", "b7", "bulk"); st != http.StatusTooManyRequests {
		t.Fatalf("bulk beyond headroom: status %d, want 429", st)
	}
	stInteractive := make(chan int, 1)
	go func() {
		st, _ := admitGet(t, ts.URL+"/v1/impute", "user", "")
		stInteractive <- st
	}()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("interactive request never admitted into the reserved headroom")
	}
	unblock()
	wg.Wait()
	if st := <-stInteractive; st != http.StatusOK {
		t.Fatalf("interactive in reserved headroom: status %d, want 200", st)
	}
}

// TestServeAdmissionSurfaces checks the full handler exposes controller state
// everywhere the issue requires: the admission block in /v1/stats, the
// kamel_admission_* series in /metrics, and (in fixed mode) the block's
// absence.
func TestServeAdmissionSurfaces(t *testing.T) {
	ts := newTestServer(t) // default options: adaptive admission

	status, _, body := call(t, http.MethodGet, ts.URL+"/v1/stats", "", "")
	if status != http.StatusOK {
		t.Fatalf("/v1/stats status %d", status)
	}
	adm, ok := body["admission"].(map[string]interface{})
	if !ok {
		t.Fatalf("/v1/stats missing admission block: %v", body)
	}
	if lim, _ := adm["limit"].(float64); lim != float64(defaultServeOptions().maxInflight) {
		t.Errorf("admission limit = %v, want the max-inflight default %d",
			adm["limit"], defaultServeOptions().maxInflight)
	}
	for _, key := range []string{"target_ms", "queue_delay_ms", "active_clients", "shed_quota"} {
		if _, ok := adm[key]; !ok {
			t.Errorf("admission block missing %q: %v", key, adm)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(raw)
	for _, series := range []string{"kamel_admission_limit", "kamel_admission_queue_delay_seconds", "kamel_admission_active_clients"} {
		if !strings.Contains(metrics, series) {
			t.Errorf("/metrics missing %s", series)
		}
	}

	// Fixed mode keeps the original bucket and reports no admission block.
	fixed := defaultServeOptions()
	fixed.admissionMode = "fixed"
	tsFixed := newTestServerOpts(t, fixed)
	_, _, body = call(t, http.MethodGet, tsFixed.URL+"/v1/stats", "", "")
	if _, ok := body["admission"]; ok {
		t.Error("fixed mode must not report an admission block")
	}
}

// Command kamel is the command-line front end of the KAMEL trajectory
// imputation system:
//
//	kamel datagen  -profile porto-like -out data.jsonl     synthesize a dataset
//	kamel train    -work DIR -in train.jsonl               train / enrich models
//	kamel impute   -work DIR -in sparse.jsonl -out dense.jsonl
//	kamel tune     -work DIR -in train.jsonl               auto-tune the cell size (§3.2)
//	kamel serve    -work DIR -addr :8080                   demo HTTP API (SIGMOD demo)
//
// Trajectories travel as JSON Lines: {"id": "...", "points": [[lat,lng,t], ...]}.
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "datagen":
		err = runDatagen(os.Args[2:])
	case "train":
		err = runTrain(os.Args[2:])
	case "impute":
		err = runImpute(os.Args[2:])
	case "tune":
		err = runTune(os.Args[2:])
	case "serve":
		err = runServe(os.Args[2:])
	case "trace":
		err = runTraceCmd(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "kamel: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "kamel:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: kamel <command> [flags]

commands:
  datagen   generate a synthetic city trajectory dataset
  train     train KAMEL models from a trajectory file
  impute    impute sparse trajectories with trained models
  tune      auto-tune the tokenization cell size (paper §3.2)
  serve     run the demonstration HTTP API
  trace     list or inspect retained request traces on a running server

run "kamel <command> -h" for command flags
`)
}

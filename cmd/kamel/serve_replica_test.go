package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"kamel/internal/cluster"
	"kamel/internal/cluster/clustertest"
	"kamel/internal/core"
	"kamel/internal/geo"
	"kamel/internal/roadnet"
	"kamel/internal/trajgen"
)

// TestClusterReplicaFailoverParity is the headline robustness property of
// N-way replication: with R=2 over three shards, killing ANY single node
// leaves every trajectory's replica group with a live member, so the cluster
// keeps serving full-quality model results — element-wise identical to the
// single-node reference — with zero linear degradations and zero refusals.
func TestClusterReplicaFailoverParity(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	fx := newReplicaFixture(t, 3, 2)

	// The victim is the primary replica of the first probe trajectory; the
	// gateway is the node outside that replica group, so requests for that
	// trajectory must walk the group: dead primary -> live secondary.
	group := fx.groupOf(t, fx.sparse[0])
	if len(group) != 2 {
		t.Fatalf("replica group %v, want 2 members at R=2", group)
	}
	victim := shardIdx(t, group[0])
	gw := -1
	for i := range fx.c.Nodes {
		if id := fmt.Sprintf("shard-%d", i); id != group[0] && id != group[1] {
			gw = i
		}
	}
	if gw < 0 {
		t.Fatal("no node outside the probe trajectory's replica group")
	}
	fx.c.Kill(victim)

	t.Run("SinglesFailOverToSecondary", func(t *testing.T) {
		for _, tr := range fx.sparse {
			status, _, raw := clusterReq(t, http.MethodPost, fx.c.Nodes[gw].URL()+"/v1/impute", nil, tr)
			if status != http.StatusOK {
				t.Fatalf("impute %s with shard-%d dead: status %d: %s", tr.ID, victim, status, raw)
			}
			var res wireImputeResult
			if err := json.Unmarshal(raw, &res); err != nil {
				t.Fatal(err)
			}
			if res.Degraded != 0 {
				t.Errorf("%s: served degraded despite a live replica", tr.ID)
			}
			status, _, refRaw := clusterReq(t, http.MethodPost, fx.single.URL+"/v1/impute", nil, tr)
			if status != http.StatusOK {
				t.Fatalf("single-node impute: status %d: %s", status, refRaw)
			}
			var ref wireImputeResult
			if err := json.Unmarshal(refRaw, &ref); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res, ref) {
				t.Errorf("%s: failover result differs from single-node serving", tr.ID)
			}
		}
	})

	t.Run("BatchParityWithNodeDown", func(t *testing.T) {
		status, _, raw := clusterReq(t, http.MethodPost, fx.c.Nodes[gw].URL()+"/v1/impute/batch", nil, fx.sparse)
		if status != http.StatusOK {
			t.Fatalf("batch with shard-%d dead: status %d: %s", victim, status, raw)
		}
		var got wireBatchResponse
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatal(err)
		}
		status, _, refRaw := clusterReq(t, http.MethodPost, fx.single.URL+"/v1/impute/batch", nil, fx.sparse)
		if status != http.StatusOK {
			t.Fatalf("single-node batch: status %d: %s", status, refRaw)
		}
		var ref wireBatchResponse
		if err := json.Unmarshal(refRaw, &ref); err != nil {
			t.Fatal(err)
		}
		if len(got.Results) != len(ref.Results) {
			t.Fatalf("batch returned %d results, want %d", len(got.Results), len(ref.Results))
		}
		for i := range got.Results {
			if got.Results[i].Error != nil {
				t.Errorf("item %d errored: %v", i, got.Results[i].Error)
			}
			if got.Results[i].Degraded != 0 {
				t.Errorf("item %d degraded despite a live replica", i)
			}
			if !reflect.DeepEqual(got.Results[i], ref.Results[i]) {
				t.Errorf("item %d: failover result differs from single-node serving", i)
			}
		}
	})

	t.Run("StatsShowFailoverNotDegradation", func(t *testing.T) {
		st := fx.c.Nodes[gw].Router.ClusterStats()
		if st.Replicas != 2 {
			t.Errorf("replicas = %d, want 2", st.Replicas)
		}
		if st.Failovers == 0 {
			t.Error("gateway recorded no replica failovers with the primary dead")
		}
		if st.Degraded != 0 || st.Unavailable != 0 {
			t.Errorf("degraded=%d unavailable=%d, want 0/0 (replicas absorbed the failure)",
				st.Degraded, st.Unavailable)
		}
	})
}

// TestClusterAntiEntropyConvergence drives the pull-based reconciliation end
// to end over HTTP: node-0 trains ahead (bumping per-slot model versions),
// one operator-triggered sweep on node-1 pulls every newer model, the two
// manifests converge version-for-version, and a second sweep is a no-op.
func TestClusterAntiEntropyConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	fx := newReplicaFixture(t, 2, 2)

	// Node-0 moves ahead: retraining a slice of the corpus marks its cells
	// dirty, and the rebuilt models commit at bumped versions.
	if err := fx.syss[0].TrainContext(context.Background(), fx.trained[:8]); err != nil {
		t.Fatal(err)
	}
	if err := fx.syss[0].SaveModels(); err != nil {
		t.Fatal(err)
	}

	manifest := func(i int) map[string]int {
		t.Helper()
		status, _, raw := clusterReq(t, http.MethodGet, fx.c.Nodes[i].URL()+"/v1/cluster/manifest", nil, nil)
		if status != http.StatusOK {
			t.Fatalf("manifest on shard-%d: status %d: %s", i, status, raw)
		}
		var doc cluster.ManifestDoc
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatal(err)
		}
		out := map[string]int{}
		for _, m := range doc.Models {
			out[fmt.Sprintf("%d/%d/%d/%s", m.Key.Level, m.Key.IX, m.Key.IY, m.Slot)] = m.Meta.Version
		}
		return out
	}
	v0, v1 := manifest(0), manifest(1)
	ahead := 0
	for k, v := range v0 {
		if v1[k] < v {
			ahead++
		}
	}
	if ahead == 0 {
		t.Fatal("retrain bumped no versions on node-0; the test is vacuous")
	}

	// One sweep on the lagging node pulls every newer model.
	status, _, raw := clusterReq(t, http.MethodPost, fx.c.Nodes[1].URL()+"/v1/cluster/antientropy", nil, nil)
	if status != http.StatusOK {
		t.Fatalf("anti-entropy sweep: status %d: %s", status, raw)
	}
	var sweep cluster.SweepStats
	if err := json.Unmarshal(raw, &sweep); err != nil {
		t.Fatal(err)
	}
	if sweep.Errors != 0 || sweep.Pulled < ahead {
		t.Fatalf("sweep = %+v, want >= %d pulls and no errors", sweep, ahead)
	}

	// Converged: node-1 now serves node-0's versions, slot for slot.
	v1 = manifest(1)
	for k, v := range v0 {
		if v1[k] != v {
			t.Errorf("model %s: node-1 at version %d after sweep, node-0 at %d", k, v1[k], v)
		}
	}

	// Idempotent: a second sweep finds nothing newer.
	status, _, raw = clusterReq(t, http.MethodPost, fx.c.Nodes[1].URL()+"/v1/cluster/antientropy", nil, nil)
	if status != http.StatusOK {
		t.Fatalf("second sweep: status %d: %s", status, raw)
	}
	if err := json.Unmarshal(raw, &sweep); err != nil {
		t.Fatal(err)
	}
	if sweep.Pulled != 0 {
		t.Errorf("second sweep pulled %d models, want 0 (converged)", sweep.Pulled)
	}

	// The cluster doc surfaces the accounting.
	status, _, raw = clusterReq(t, http.MethodGet, fx.c.Nodes[1].URL()+"/v1/cluster", nil, nil)
	if status != http.StatusOK {
		t.Fatalf("cluster doc: status %d: %s", status, raw)
	}
	var doc wireClusterDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Cluster.Replicas != 2 {
		t.Errorf("cluster doc replicas = %d, want 2", doc.Cluster.Replicas)
	}
	if doc.AntiEntropy == nil || doc.AntiEntropy.Sweeps != 2 || doc.AntiEntropy.Pulled < int64(ahead) {
		t.Errorf("anti-entropy stats = %+v, want 2 sweeps and >= %d pulls", doc.AntiEntropy, ahead)
	}
}

// TestClusterTrainFanoutReplication checks the replicated write path: a train
// batch sent to one node of an R=2 pair is applied on BOTH replicas (the peer
// receives it via single-attempt write forwards), the response reports the
// fan-out, and with the peer dead the write still lands locally but the
// response and counters surface the missed quorum.
func TestClusterTrainFanoutReplication(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	base := t.TempDir()
	var syss []*core.System
	for i := 0; i < 2; i++ {
		// Partitioning off: the write path under test is the replica fan-out,
		// not the pyramid, and a global model trains fast enough for -race.
		cfg := systemConfig(filepath.Join(base, fmt.Sprintf("node-%d", i)), 30, "", true, false, false)
		cfg.Hidden, cfg.FFN = 32, 128
		cfg.Train.Batch = 8
		cfg.ShardID = fmt.Sprintf("shard-%d", i)
		sys, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sys.Close() })
		syss = append(syss, sys)
	}
	tmpl := cluster.Map{OriginLat: 41.15, OriginLng: -8.61, CellEdgeM: 250, Replicas: 2}
	c, err := clustertest.New(2, tmpl,
		func(i int, self string) cluster.Options {
			return cluster.Options{
				Logger:       quietLogger(),
				Registry:     syss[i].Obs(),
				RetryBackoff: time.Millisecond,
				// The forwarded sub-batch TRAINS on the peer before acking,
				// which takes far longer than a forwarded read.
				ForwardTimeout: 2 * time.Minute,
			}
		},
		func(i int, self string, rt *cluster.Router) (http.Handler, error) {
			opts := defaultServeOptions()
			opts.logger = quietLogger()
			opts.router = rt
			opts.requestTimeout = 2 * time.Minute // training inside the handler
			return newAPIHandler(syss[i], opts), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	city := roadnet.DefaultCityConfig()
	city.Width, city.Height = 1000, 1000
	city.BlockSpacing = 250
	net := roadnet.GenerateCity(city)
	gen := trajgen.DefaultConfig(6)
	gen.GPSNoiseMeters = 3
	trajs, err := trajgen.Generate(net, geo.NewProjection(41.15, -8.61), gen)
	if err != nil {
		t.Fatal(err)
	}
	var body []wireTraj
	for _, tr := range trajs {
		body = append(body, toWire(tr))
	}

	status, _, raw := clusterReq(t, http.MethodPost, c.Nodes[0].URL()+"/v1/train", nil, body)
	if status != http.StatusOK {
		t.Fatalf("replicated train: status %d: %s", status, raw)
	}
	var res wireTrainResponse
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.Replication == nil {
		t.Fatal("train response on a replicated deployment missing the replication block")
	}
	rep := res.Replication
	if rep.Groups < 1 || rep.Targets < 1 {
		t.Fatalf("replication = %+v, want at least one group with a peer target", rep)
	}
	if rep.Acked != rep.Targets || rep.Failed != 0 || !rep.QuorumMet {
		t.Fatalf("replication = %+v, want every peer acked and quorum met", rep)
	}
	for i, sys := range syss {
		if !sys.Ready() {
			t.Errorf("shard-%d not trained after the replicated write", i)
		}
	}
	if st := c.Nodes[0].Router.ClusterStats(); st.WriteForwards < 1 || st.WriteErrors != 0 {
		t.Errorf("router write stats = forwards %d errors %d, want >=1/0", st.WriteForwards, st.WriteErrors)
	}

	// Peer down: the write still lands on the local replica (200, data safe)
	// but quorum is reported missed — anti-entropy repairs the peer later.
	c.Kill(1)
	status, _, raw = clusterReq(t, http.MethodPost, c.Nodes[0].URL()+"/v1/train", nil, body)
	if status != http.StatusOK {
		t.Fatalf("train with peer dead: status %d: %s", status, raw)
	}
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.Replication == nil || res.Replication.QuorumMet || res.Replication.Failed < 1 {
		t.Fatalf("replication with peer dead = %+v, want failed forwards and quorum missed", res.Replication)
	}
	if st := c.Nodes[0].Router.ClusterStats(); st.QuorumFailures < 1 || st.WriteErrors < 1 {
		t.Errorf("router write stats = quorum failures %d errors %d, want >=1/>=1", st.QuorumFailures, st.WriteErrors)
	}
}

// TestClusterBatchAccountingPerElement pins the degradation-ladder accounting
// fix: every batch element is counted exactly once, at its final rung.  A
// 3-element batch whose owner is dead (this node has a projection, so the
// linear baseline serves) moves the degraded counter by exactly 3 — not 6,
// which the old per-group-and-per-element double counting produced.
func TestClusterBatchAccountingPerElement(t *testing.T) {
	sys0, err := core.NewWithProjection(
		systemConfig(t.TempDir(), 90, "", true, false, false), geo.NewProjection(41.15, -8.61))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys0.Close() })
	sys1, err := core.New(systemConfig(t.TempDir(), 90, "", true, false, false))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys1.Close() })
	syss := []*core.System{sys0, sys1}

	tmpl := cluster.Map{OriginLat: 41.15, OriginLng: -8.61, CellEdgeM: 250}
	c, err := clustertest.New(2, tmpl,
		func(i int, self string) cluster.Options {
			return cluster.Options{
				Logger:       quietLogger(),
				Registry:     syss[i].Obs(),
				RetryBackoff: time.Millisecond,
			}
		},
		func(i int, self string, rt *cluster.Router) (http.Handler, error) {
			opts := defaultServeOptions()
			opts.logger = quietLogger()
			opts.router = rt
			return newAPIHandler(syss[i], opts), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	// Three distinct probe trajectories, all owned by shard-1.
	var probes []wireTraj
	for dx := 0; dx < 400 && len(probes) < 3; dx++ {
		lat := 41.15 + float64(dx)*0.002
		cand := wireTraj{
			ID:     fmt.Sprintf("probe-%d", dx),
			Points: [][3]float64{{lat, -8.61, 0}, {lat, -8.6, 600}},
		}
		if owner, _, ok := c.Nodes[0].Router.Owner(wirePoints(cand)); ok && owner == "shard-1" {
			probes = append(probes, cand)
		}
	}
	if len(probes) < 3 {
		t.Fatal("found fewer than 3 shard-1-owned probe trajectories")
	}
	c.Kill(1)

	status, _, raw := clusterReq(t, http.MethodPost, c.Nodes[0].URL()+"/v1/impute/batch", nil, probes)
	if status != http.StatusOK {
		t.Fatalf("batch with owner dead: status %d: %s", status, raw)
	}
	var batch wireBatchResponse
	if err := json.Unmarshal(raw, &batch); err != nil {
		t.Fatal(err)
	}
	for i, item := range batch.Results {
		if item.Error != nil {
			t.Errorf("item %d errored: %v", i, item.Error)
		}
		if item.Degraded == 0 {
			t.Errorf("item %d not flagged degraded on the linear fallback", i)
		}
	}
	if st := c.Nodes[0].Router.ClusterStats(); st.Degraded != 3 || st.Unavailable != 0 {
		t.Errorf("after a 3-element batch: degraded=%d unavailable=%d, want exactly 3/0", st.Degraded, st.Unavailable)
	}

	// A single on top of the batch moves the counter by exactly one more.
	status, _, raw = clusterReq(t, http.MethodPost, c.Nodes[0].URL()+"/v1/impute", nil, probes[0])
	if status != http.StatusOK {
		t.Fatalf("single with owner dead: status %d: %s", status, raw)
	}
	if st := c.Nodes[0].Router.ClusterStats(); st.Degraded != 4 {
		t.Errorf("after one more single: degraded=%d, want exactly 4", st.Degraded)
	}
}

// BenchmarkClusterFailover measures the replica-failover read path: a single
// imputation through a gateway whose target group's primary is dead, so every
// request walks the group to the live secondary.  The interesting number is
// the latency relative to BenchmarkClusterScatterGather's healthy path.
func BenchmarkClusterFailover(b *testing.B) {
	fx := newReplicaFixture(b, 3, 2)
	group := fx.groupOf(b, fx.sparse[0])
	victim := shardIdx(b, group[0])
	gw := -1
	for i := range fx.c.Nodes {
		if id := fmt.Sprintf("shard-%d", i); id != group[0] && id != group[1] {
			gw = i
		}
	}
	if gw < 0 {
		b.Fatal("no node outside the probe trajectory's replica group")
	}
	fx.c.Kill(victim)
	body, err := json.Marshal(fx.sparse[0])
	if err != nil {
		b.Fatal(err)
	}
	url := fx.c.Nodes[gw].URL() + "/v1/impute"
	// Warm once: the first failover marks the dead primary unhealthy.
	if status, _, raw := clusterReq(b, http.MethodPost, url, nil, fx.sparse[0]); status != http.StatusOK {
		b.Fatalf("warm-up impute: status %d: %s", status, raw)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		status, _, _ := clusterReq(b, http.MethodPost, url, map[string]string{"Content-Type": "application/json"}, json.RawMessage(body))
		if status != http.StatusOK {
			b.Fatalf("status %d", status)
		}
	}
}

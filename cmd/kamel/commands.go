package main

import (
	"flag"
	"fmt"
	"os"

	"kamel/internal/core"
	"kamel/internal/geo"
	"kamel/internal/trajgen"
	"kamel/internal/trajio"
)

// runDatagen synthesizes a dataset from one of the built-in profiles.
func runDatagen(args []string) error {
	fs := flag.NewFlagSet("datagen", flag.ExitOnError)
	profile := fs.String("profile", "porto-like", "dataset profile: porto-like | jakarta-like")
	scale := fs.Float64("scale", 1, "trip-count scale factor")
	out := fs.String("out", "", "output JSONL file (default stdout)")
	fs.Parse(args)

	var p trajgen.Profile
	switch *profile {
	case "porto-like":
		p = trajgen.PortoLike(*scale)
	case "jakarta-like":
		p = trajgen.JakartaLike(*scale)
	default:
		return fmt.Errorf("unknown profile %q", *profile)
	}
	_, _, trajs, err := p.Materialize()
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := trajio.Write(w, trajs); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %d trajectories (%s profile)\n", len(trajs), p.Name)
	return nil
}

// systemConfig assembles a core.Config from shared CLI flags.
func systemConfig(work string, steps int, strategy string, noPart, noConst, noMulti bool) core.Config {
	cfg := core.DefaultConfig(work)
	if steps > 0 {
		cfg.Train.Steps = steps
	}
	if strategy != "" {
		cfg.Strategy = core.Strategy(strategy)
	}
	cfg.Tokenizer = tokenizerFlag
	cfg.PyramidH = 1
	cfg.PyramidL = 2
	cfg.ThresholdK = 300
	cfg.DisablePartitioning = noPart
	cfg.DisableConstraints = noConst
	cfg.DisableMultipoint = noMulti
	return cfg
}

// tokenizerFlag is the shared -tokenizer value; registerTokenizerFlag binds
// it on each command's flag set so every entry point names the token mapping
// the same way.  For an already-trained workdir the persisted spec wins over
// this flag (tokens are identities; see core.Config.Tokenizer).
var tokenizerFlag = core.TokenizerFixed

func registerTokenizerFlag(fs *flag.FlagSet) {
	fs.StringVar(&tokenizerFlag, "tokenizer", tokenizerFlag,
		"spatial tokenizer: fixed | adaptive (density-adaptive multi-resolution)")
}

// runTrain ingests a training file and persists the resulting models.
func runTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	work := fs.String("work", "", "working directory (required)")
	in := fs.String("in", "", "training JSONL file (default stdin)")
	steps := fs.Int("steps", 0, "BERT training steps (default config)")
	noPart := fs.Bool("no-partitioning", false, "ablation: one global model")
	registerTokenizerFlag(fs)
	fs.Parse(args)
	if *work == "" {
		return fmt.Errorf("train: -work is required")
	}
	trajs, err := readTrajs(*in)
	if err != nil {
		return err
	}
	sys, err := core.New(systemConfig(*work, *steps, "", *noPart, false, false))
	if err != nil {
		return err
	}
	defer sys.Close()
	if err := sys.Train(trajs); err != nil {
		return err
	}
	if !*noPart {
		if err := sys.SaveModels(); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "train: %+v\n", sys.SystemStats())
	return nil
}

// runImpute loads persisted models and imputes a sparse trajectory file.
func runImpute(args []string) error {
	fs := flag.NewFlagSet("impute", flag.ExitOnError)
	work := fs.String("work", "", "working directory with trained models (required)")
	in := fs.String("in", "", "sparse JSONL file (default stdin)")
	out := fs.String("out", "", "dense JSONL output (default stdout)")
	strategy := fs.String("strategy", "", "beam | iterative")
	registerTokenizerFlag(fs)
	fs.Parse(args)
	if *work == "" {
		return fmt.Errorf("impute: -work is required")
	}
	sparse, err := readTrajs(*in)
	if err != nil {
		return err
	}
	sys, err := core.New(systemConfig(*work, 0, *strategy, false, false, false))
	if err != nil {
		return err
	}
	defer sys.Close()
	if err := sys.LoadModels(); err != nil {
		return fmt.Errorf("loading models (run `kamel train` first): %w", err)
	}
	var dense []geo.Trajectory
	segments, failures := 0, 0
	for _, tr := range sparse {
		d, st, err := sys.Impute(tr)
		if err != nil {
			return err
		}
		segments += st.Segments
		failures += st.Failures
		dense = append(dense, d)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := trajio.Write(w, dense); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "impute: %d trajectories, %d segments, %d failures\n", len(dense), segments, failures)
	return nil
}

// runTune runs the cell-size auto-tuner over a training file.
func runTune(args []string) error {
	fs := flag.NewFlagSet("tune", flag.ExitOnError)
	work := fs.String("work", "", "scratch directory (required)")
	in := fs.String("in", "", "training JSONL file (default stdin)")
	sparse := fs.Float64("sparse", 1000, "evaluation sparseness in meters")
	delta := fs.Float64("delta", 50, "accuracy threshold δ in meters")
	fs.Parse(args)
	if *work == "" {
		return fmt.Errorf("tune: -work is required")
	}
	trajs, err := readTrajs(*in)
	if err != nil {
		return err
	}
	cfg := systemConfig(*work, 300, "", true, false, false)
	sys, err := core.New(cfg)
	if err != nil {
		return err
	}
	defer sys.Close()
	sizes := []float64{25, 50, 75, 125, 200, 300}
	best, results, err := sys.TuneCellSize(trajs, sizes, *sparse, *delta)
	if err != nil {
		return err
	}
	fmt.Println("cell_edge_m  recall  precision")
	for _, r := range results {
		fmt.Printf("%10.0f  %.3f  %.3f\n", r.CellEdgeM, r.Recall, r.Precision)
	}
	fmt.Printf("best: %.0f m\n", best)
	return nil
}

// readTrajs loads a JSONL file, or stdin when path is empty.
func readTrajs(path string) ([]geo.Trajectory, error) {
	if path == "" {
		return trajio.Read(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trajio.Read(f)
}

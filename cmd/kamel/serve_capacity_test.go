package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"kamel/internal/cluster"
	"kamel/internal/cluster/clustertest"
	"kamel/internal/core"
	"kamel/internal/loadgen"
	"kamel/internal/trajgen"
)

// This file is the in-process half of the load harness: the same open-loop
// generator cmd/kamel-loadgen ships is pointed at httptest servers built from
// the real API handler, so CI can smoke the sweep path without ports or
// subprocesses, and scripts/bench.sh can record the capacity curves
// (single-node adaptive, single-node fixed for the A/B, and the 3-node
// cluster) into BENCH_impute.json via TestCapacityRecord.

// capacityConfig shrinks the model to the integration-test scale (the same
// knobs the cluster fixture uses) so training through /v1/train stays
// affordable; everything else — partitioning, constraints, the batcher — runs
// as shipped, which is what makes the measured capacity meaningful.
func capacityConfig(dir, shardID string) core.Config {
	cfg := systemConfig(dir, 200, "", false, false, false)
	cfg.Hidden, cfg.FFN = 32, 128
	cfg.Train.Batch = 12
	cfg.TopK = 40
	cfg.MaxCalls = 150
	cfg.ShardID = shardID
	return cfg
}

// capacityServeOptions widens the request plumbing for seeding: the training
// split arrives as one large POST that may run well past the interactive
// 30s default.
func capacityServeOptions(mode string) serveOptions {
	opts := defaultServeOptions()
	opts.logger = quietLogger()
	opts.admissionMode = mode
	opts.requestTimeout = 10 * time.Minute
	opts.maxBodyBytes = 256 << 20
	return opts
}

// newCapacityServer stands up one untrained node; the generator's seed phase
// trains it over the wire, exactly like an operator driving a fresh server.
func newCapacityServer(t *testing.T, mode string) *httptest.Server {
	t.Helper()
	sys, err := core.New(capacityConfig(t.TempDir(), ""))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	ts := httptest.NewServer(newAPIHandler(sys, capacityServeOptions(mode)))
	t.Cleanup(ts.Close)
	return ts
}

// newCapacityCluster stands up n untrained shard nodes and returns the
// gateway (node 0) URL.  Seeding POSTs the training split at the gateway and
// relies on the train fan-out to reach the owning shards.
func newCapacityCluster(t *testing.T, n int) string {
	t.Helper()
	base := t.TempDir()
	mapPath := filepath.Join(base, "shards.json")
	syss := make([]*core.System, n)
	for i := range syss {
		sys, err := core.New(capacityConfig(
			filepath.Join(base, fmt.Sprintf("node-%d", i)), fmt.Sprintf("shard-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sys.Close() })
		syss[i] = sys
	}
	tmpl := cluster.Map{OriginLat: 41.15, OriginLng: -8.61, CellEdgeM: 250}
	c, err := clustertest.New(n, tmpl,
		func(i int, self string) cluster.Options {
			return cluster.Options{
				Logger:       quietLogger(),
				Registry:     syss[i].Obs(),
				RetryBackoff: time.Millisecond,
				// The seed phase fans the training split out to the peers,
				// and each peer trains its sub-batch inside the forwarded
				// request — well past the 10s interactive default.
				ForwardTimeout: 10 * time.Minute,
			}
		},
		func(i int, self string, rt *cluster.Router) (http.Handler, error) {
			opts := capacityServeOptions("adaptive")
			opts.router = rt
			opts.clusterPath = mapPath
			return newAPIHandler(syss[i], opts), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	writeShardMap(t, mapPath, c.Map)
	return c.Nodes[0].URL()
}

// capacityWorkload builds the porto-like request pools at the given dataset
// scale.  The workload's own training split is what seeds the target, so the
// impute bodies are genuinely held-out trajectories over trained cells.
func capacityWorkload(t *testing.T, scale float64) *loadgen.Workload {
	t.Helper()
	w, err := loadgen.BuildWorkload(
		[]trajgen.Profile{trajgen.PortoLike(scale)},
		loadgen.WorkloadOptions{SparsifyMeters: 600})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// capacitySweep seeds the target over the wire, then runs the stepped sweep.
// The seed phase gets its own bound so a target that never reports ready
// fails loudly with the last /readyz response instead of eating the sweep's
// whole budget.
func capacitySweep(t *testing.T, url string, w *loadgen.Workload, rates []float64, warmup, measure time.Duration, p99Target float64) loadgen.SweepResult {
	t.Helper()
	g := loadgen.New(w, loadgen.Options{BaseURL: url, Seed: 1, ZipfS: 1.2})
	seedCtx, cancelSeed := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancelSeed()
	if err := g.SeedTarget(seedCtx); err != nil {
		t.Fatalf("seeding capacity target: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Minute)
	defer cancel()
	return g.Sweep(ctx, rates, warmup, measure, p99Target)
}

// TestLoadgenSmoke is the CI loadgen job: a short open-loop sweep against an
// in-process adaptive node, failing on any internal error — overload must
// surface as 429s, never 500s — and on a sweep that produced no goodput.
func TestLoadgenSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("loadgen smoke trains a model; skipped under -short")
	}
	ts := newCapacityServer(t, "adaptive")
	w := capacityWorkload(t, 0.1)
	res := capacitySweep(t, ts.URL, w, []float64{40, 80}, 300*time.Millisecond, 1200*time.Millisecond, 250)

	if len(res.Steps) != 2 {
		t.Fatalf("sweep ran %d steps, want 2", len(res.Steps))
	}
	var ok int64
	for _, st := range res.Steps {
		if st.Internal != 0 {
			t.Errorf("offered %.0f/s: %d internal errors (out of %d sent); overload must shed with 429, not 500",
				st.OfferedRPS, st.Internal, st.Sent)
		}
		if st.Sent == 0 {
			t.Errorf("offered %.0f/s: generator sent nothing", st.OfferedRPS)
		}
		ok += st.OK
	}
	if ok == 0 {
		t.Fatal("sweep produced zero goodput against a seeded node")
	}
}

// capacityRecord is the machine-readable block scripts/bench.sh splices into
// BENCH_impute.json: the capacity curves plus the fixed-vs-adaptive A/B at
// the highest offered rate (the past-saturation point the adaptive controller
// exists for).
type capacityRecord struct {
	P99TargetMS    float64             `json:"p99_target_ms"`
	Rates          []float64           `json:"rates"`
	SingleAdaptive loadgen.SweepResult `json:"single_adaptive"`
	SingleFixed    loadgen.SweepResult `json:"single_fixed"`
	Cluster3       loadgen.SweepResult `json:"cluster3_adaptive"`
	AB             capacityAB          `json:"ab"`
}

type capacityAB struct {
	OfferedRPS         float64 `json:"offered_rps"`
	AdaptiveGoodputRPS float64 `json:"adaptive_goodput_rps"`
	FixedGoodputRPS    float64 `json:"fixed_goodput_rps"`
	AdaptiveP99MS      float64 `json:"adaptive_p99_ms"`
	FixedP99MS         float64 `json:"fixed_p99_ms"`
	AdaptiveShedRate   float64 `json:"adaptive_shed_rate"`
	FixedShedRate      float64 `json:"fixed_shed_rate"`
}

// TestCapacityRecord runs the full capacity benchmark and writes the record
// to $KAMEL_CAPACITY_OUT; without the variable it is skipped, so the ~minutes
// of sweeping only run from scripts/bench.sh (or an operator) on purpose.
// KAMEL_CAPACITY_RATES, KAMEL_CAPACITY_MEASURE, and KAMEL_CAPACITY_TARGET
// (p99 SLO in ms — bench.sh defaults it to a container-scale bound, since
// the interactive 250ms default assumes real serving hardware) resize the
// sweep.
func TestCapacityRecord(t *testing.T) {
	out := os.Getenv("KAMEL_CAPACITY_OUT")
	if out == "" {
		t.Skip("set KAMEL_CAPACITY_OUT to record the capacity curves")
	}
	rates := []float64{100, 300, 900, 2700}
	if spec := os.Getenv("KAMEL_CAPACITY_RATES"); spec != "" {
		rates = nil
		for _, part := range strings.Split(spec, ",") {
			r, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil || r <= 0 {
				t.Fatalf("bad KAMEL_CAPACITY_RATES entry %q", part)
			}
			rates = append(rates, r)
		}
	}
	measure := 3 * time.Second
	if spec := os.Getenv("KAMEL_CAPACITY_MEASURE"); spec != "" {
		d, err := time.ParseDuration(spec)
		if err != nil || d <= 0 {
			t.Fatalf("bad KAMEL_CAPACITY_MEASURE %q", spec)
		}
		measure = d
	}
	warmup := measure / 3
	p99Target := 250.0
	if spec := os.Getenv("KAMEL_CAPACITY_TARGET"); spec != "" {
		f, err := strconv.ParseFloat(spec, 64)
		if err != nil || f <= 0 {
			t.Fatalf("bad KAMEL_CAPACITY_TARGET %q", spec)
		}
		p99Target = f
	}
	// The scale floor is set by the 3-node target: the train fan-out splits
	// the seed batch across shards, and core declines cells whose sub-corpus
	// is too thin (<10 trajectories / <600 tokens), so each shard's share
	// must clear it or the cluster never reports ready.
	scale := 0.4
	if spec := os.Getenv("KAMEL_CAPACITY_SCALE"); spec != "" {
		f, err := strconv.ParseFloat(spec, 64)
		if err != nil || f <= 0 {
			t.Fatalf("bad KAMEL_CAPACITY_SCALE %q", spec)
		}
		scale = f
	}
	w := capacityWorkload(t, scale)

	rec := capacityRecord{P99TargetMS: p99Target, Rates: rates}
	t.Log("capacity: sweeping single-node adaptive")
	rec.SingleAdaptive = capacitySweep(t, newCapacityServer(t, "adaptive").URL, w, rates, warmup, measure, p99Target)
	t.Log("capacity: sweeping single-node fixed (A/B baseline)")
	rec.SingleFixed = capacitySweep(t, newCapacityServer(t, "fixed").URL, w, rates, warmup, measure, p99Target)
	t.Log("capacity: sweeping 3-node cluster (adaptive)")
	rec.Cluster3 = capacitySweep(t, newCapacityCluster(t, 3), w, rates, warmup, measure, p99Target)

	// The A/B headline compares both modes at the highest offered rate —
	// equal rate budget, equal workload, equal seed.
	last := len(rates) - 1
	if last < len(rec.SingleAdaptive.Steps) && last < len(rec.SingleFixed.Steps) {
		a, f := rec.SingleAdaptive.Steps[last], rec.SingleFixed.Steps[last]
		rec.AB = capacityAB{
			OfferedRPS:         a.OfferedRPS,
			AdaptiveGoodputRPS: a.GoodputRPS,
			FixedGoodputRPS:    f.GoodputRPS,
			AdaptiveP99MS:      a.P99MS,
			FixedP99MS:         f.P99MS,
			AdaptiveShedRate:   a.ShedRate,
			FixedShedRate:      f.ShedRate,
		}
	}

	raw, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("capacity: single adaptive %s", loadgen.Summary(rec.SingleAdaptive))
	t.Logf("capacity: single fixed    %s", loadgen.Summary(rec.SingleFixed))
	t.Logf("capacity: cluster3        %s", loadgen.Summary(rec.Cluster3))
	t.Logf("capacity: wrote %s", out)
}

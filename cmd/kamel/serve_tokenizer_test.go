package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"kamel/internal/cluster"
	"kamel/internal/cluster/clustertest"
	"kamel/internal/core"
	"kamel/internal/geo"
	"kamel/internal/roadnet"
	"kamel/internal/tokenizer"
	"kamel/internal/trajgen"
)

// TestClusterTrainFanoutSpecConvergence pins the replicated-write tokenizer
// contract: the gateway freezes ONE adaptive spec from the full spanning
// batch and ships it in the fan-out envelope, so every replica-group member
// ends up frozen on the same hash.  Without the envelope each member would
// derive its own spec from its sub-batch — different mappings, permanently
// incompatible under the anti-entropy hash gate.  It also pins the refusal:
// a node already frozen on a different spec answers the offer with 409
// `conflict` rather than silently re-mapping its persisted tokens.
func TestClusterTrainFanoutSpecConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	base := t.TempDir()
	var syss []*core.System
	for i := 0; i < 2; i++ {
		// Partitioning off: the property under test is spec derivation and
		// transport, not the pyramid; a global model trains fast.
		cfg := systemConfig(filepath.Join(base, fmt.Sprintf("node-%d", i)), 30, "", true, false, false)
		cfg.Tokenizer = core.TokenizerAdaptive
		cfg.AdaptiveSplitMin = 20 // low enough that this batch yields split cells
		cfg.Hidden, cfg.FFN = 32, 128
		cfg.Train.Batch = 8
		cfg.ShardID = fmt.Sprintf("shard-%d", i)
		sys, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sys.Close() })
		syss = append(syss, sys)
	}
	tmpl := cluster.Map{OriginLat: 41.15, OriginLng: -8.61, CellEdgeM: 250, Replicas: 2}
	c, err := clustertest.New(2, tmpl,
		func(i int, self string) cluster.Options {
			return cluster.Options{
				Logger:         quietLogger(),
				Registry:       syss[i].Obs(),
				RetryBackoff:   time.Millisecond,
				ForwardTimeout: 2 * time.Minute, // forwarded sub-batches train before acking
			}
		},
		func(i int, self string, rt *cluster.Router) (http.Handler, error) {
			opts := defaultServeOptions()
			opts.logger = quietLogger()
			opts.router = rt
			opts.requestTimeout = 2 * time.Minute
			return newAPIHandler(syss[i], opts), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	city := roadnet.DefaultCityConfig()
	city.Width, city.Height = 1000, 1000
	city.BlockSpacing = 250
	net := roadnet.GenerateCity(city)
	gen := trajgen.DefaultConfig(6)
	gen.GPSNoiseMeters = 3
	trajs, err := trajgen.Generate(net, geo.NewProjection(41.15, -8.61), gen)
	if err != nil {
		t.Fatal(err)
	}
	var body []wireTraj
	for _, tr := range trajs {
		body = append(body, toWire(tr))
	}

	status, _, raw := clusterReq(t, http.MethodPost, c.Nodes[0].URL()+"/v1/train", nil, body)
	if status != http.StatusOK {
		t.Fatalf("replicated train: status %d: %s", status, raw)
	}
	var res wireTrainResponse
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.Replication == nil || res.Replication.Acked != res.Replication.Targets || res.Replication.Failed != 0 {
		t.Fatalf("replication = %+v, want every peer acked", res.Replication)
	}

	// The headline property: one batch, one spec, both replicas frozen on it.
	h0, h1 := syss[0].TokenizerSpecHash(), syss[1].TokenizerSpecHash()
	if h0 == "" || h0 != h1 {
		t.Fatalf("replica spec hashes diverged after fan-out: shard-0 %.12s, shard-1 %.12s", h0, h1)
	}
	spec := syss[0].Tokenizer().Spec()
	if spec.Kind != tokenizer.KindAdaptive {
		t.Fatalf("frozen spec kind = %q, want adaptive", spec.Kind)
	}
	// Convergence is only meaningful when the derived spec depends on the
	// batch; an empty split set would match trivially.
	if len(spec.Split) == 0 {
		t.Fatal("adaptive spec derived no split cells; the convergence check is vacuous (lower AdaptiveSplitMin)")
	}

	// A frozen node offered a DIFFERENT spec refuses loudly: 409 `conflict`,
	// nothing trained, nothing re-mapped.
	other := tokenizer.Spec{Kind: tokenizer.KindFixed, Grid: "hex", EdgeM: spec.EdgeM * 2}
	env := map[string]any{"trajectories": body[:1], "tokenizer_spec": other}
	status, _, raw = clusterReq(t, http.MethodPost, c.Nodes[0].URL()+"/v1/train", nil, env)
	if status != http.StatusConflict {
		t.Fatalf("train with mismatched offered spec: status %d, want 409: %s", status, raw)
	}
	if !strings.Contains(string(raw), `"conflict"`) {
		t.Errorf("conflict response missing the error code: %s", raw)
	}
	if got := syss[0].TokenizerSpecHash(); got != h0 {
		t.Errorf("refused offer still changed the frozen spec: %.12s -> %.12s", h0, got)
	}

	// The same spec re-offered (a retried fan-out) is a no-op, not an error.
	env["tokenizer_spec"] = spec
	status, _, raw = clusterReq(t, http.MethodPost, c.Nodes[0].URL()+"/v1/train", nil, env)
	if status != http.StatusOK {
		t.Fatalf("train re-offering the frozen spec: status %d, want 200: %s", status, raw)
	}
}

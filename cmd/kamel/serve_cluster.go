package main

import (
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"kamel/internal/cluster"
	"kamel/internal/core"
	"kamel/internal/geo"
	"kamel/internal/obs"
	"kamel/internal/tokenizer"
)

// This file is the HTTP face of the horizontal-sharding layer
// (internal/cluster): spatial routing of imputations to their replica group,
// failover down the group when the primary is unreachable, scatter-gather for
// batches that span groups, the write fan-out that replicates train batches
// across each group, and the degradation ladder when every replica of a cell
// is down (local linear fallback, then 503).
//
// The read ladder, in order: a node serves locally whenever it is a member of
// the trajectory's replica group (the train fan-out put the models here); a
// non-member walks the group in rendezvous rank order, failing over past
// unreachable or refusing replicas; when the whole group is down it degrades
// to the local linear baseline; and only when even that is impossible (no
// projection on this node) does it answer 503.  Degraded and Unavailable are
// counted per trajectory element, exactly once, at the element's final rung.
//
// The one-hop contract: a request carrying cluster.HeaderForwarded is always
// served locally, whatever the shard map says.  Forwarding therefore
// terminates even while two nodes briefly disagree on the map during a
// rollout — the worst case is one extra hop to a node that serves the
// request from a non-owning model (or its linear fallback), never a loop.
// The same header gates the train fan-out, so replicated writes fan out
// exactly once.

// wirePoints converts a wire trajectory's raw triples to routing points.
func wirePoints(tr wireTraj) []geo.Point {
	pts := make([]geo.Point, len(tr.Points))
	for i, p := range tr.Points {
		pts[i] = geo.Point{Lat: p[0], Lng: p[1], T: p[2]}
	}
	return pts
}

// containsShard reports whether ids contains id.
func containsShard(ids []string, id string) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// debugSuffix propagates ?debug=1 to a forwarded hop so the remote span
// breakdown comes back for stitching.
func debugSuffix(r *http.Request) string {
	if wantDebug(r) {
		return "?debug=1"
	}
	return ""
}

// isForwarded reports whether this request already made its one hop.
func isForwarded(r *http.Request) bool {
	return r.Header.Get(cluster.HeaderForwarded) != ""
}

// remainingDeadlineMS rebases deadline_ms for a forwarded hop.  The owning
// shard restarts its admission timer when the forwarded request arrives, so
// it must receive the budget still left at this hop — forwarding the
// original window verbatim would let the end-to-end deadline stretch by the
// routing and transfer time already spent.  Zero (no deadline) passes
// through; an exhausted budget clamps to 1ms so the shard still applies a
// deadline rather than treating 0 as unlimited (the first hop's context
// cancellation aborts the forward anyway).
func remainingDeadlineMS(ctx context.Context, orig int64) int64 {
	if orig <= 0 {
		return orig
	}
	dl, ok := ctx.Deadline()
	if !ok {
		return orig
	}
	rem := time.Until(dl).Milliseconds()
	if rem < 1 {
		return 1
	}
	if rem > orig {
		return orig
	}
	return rem
}

// clusterUnavailable answers the request with 503 + Retry-After: every
// replica of the trajectory's cell is unreachable and this node has no
// projection to even draw a straight line with.  elements is how many
// trajectory elements hit this final rung (counted once each, so /v1/stats
// and /metrics surface per-element totals).
func (s *apiServer) clusterUnavailable(w http.ResponseWriter, r *http.Request, shard string, elements int64) {
	s.opts.router.CountUnavailable(elements)
	w.Header().Set("Retry-After", "1")
	writeErrorTraced(w, r, http.StatusServiceUnavailable, codeShardDown,
		"every replica of shard "+shard+" unreachable and no local fallback available")
}

// linearItem serves one trajectory down the degradation ladder: the local
// linear baseline, flagged degraded.  ok=false means even that is impossible
// (no projection on this node).
func (s *apiServer) linearItem(tr wireTraj) (wireImputeResult, bool) {
	dense, stats, err := s.sys.ImputeLinear(fromWire([]wireTraj{tr})[0])
	if err != nil {
		return wireImputeResult{}, false
	}
	return wireImputeResult{
		Trajectory: toWirePtr(dense),
		Segments:   stats.Segments,
		Failures:   stats.Failures,
		Degraded:   stats.Degraded,
	}, true
}

// routeSingle routes one trajectory to its replica group.  It reports true
// when it wrote the response (forwarded, degraded, or unavailable); false
// means this node is itself a replica of the trajectory's cell — the caller
// serves it on the ordinary path.  The request envelope is forwarded with
// deadline_ms rebased to the budget remaining at this hop, so the serving
// replica's own admission timer enforces the client's end-to-end deadline;
// the first hop's context (already bounded by the deadline) additionally caps
// the forward itself.
func (s *apiServer) routeSingle(w http.ResponseWriter, r *http.Request, req wireImputeRequest) bool {
	rt := s.opts.router
	if rt == nil || isForwarded(r) {
		return false
	}
	tr := req.wireTraj
	group, _, ok := rt.ReplicaGroup(wirePoints(tr))
	if !ok || containsShard(group, rt.Self()) {
		return false
	}
	req.DeadlineMS = remainingDeadlineMS(r.Context(), req.DeadlineMS)
	body, err := json.Marshal(req)
	if err != nil {
		writeErrorTraced(w, r, http.StatusInternalServerError, codeInternal, "encoding forwarded request: "+err.Error())
		return true
	}
	sp := obs.StartSpan(r.Context(), "cluster.forward")
	res, servedBy, ferr := rt.ForwardAny(r.Context(), group, "/v1/impute"+debugSuffix(r), body)
	sp.End()
	if ferr != nil {
		if err := r.Context().Err(); err != nil {
			status, code := imputeErrStatus(err)
			writeError(w, status, code, err.Error())
			return true
		}
		// Whole replica group down (or refusing): degrade to the local
		// linear baseline.
		item, ok := s.linearItem(tr)
		if !ok {
			s.clusterUnavailable(w, r, group[0], 1)
			return true
		}
		rt.CountDegraded(1)
		if wantDebug(r) {
			item.Debug = debugDoc(r)
		}
		writeJSON(w, item)
		return true
	}
	if res.Status != http.StatusOK {
		// A non-retryable client error from the replica (bad request, too
		// large, ...) passes through verbatim — it is about the request, not
		// about shard health.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(res.Status)
		w.Write(res.Body)
		return true
	}
	if !wantDebug(r) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(res.Body)
		return true
	}
	// Stitch the trace: the local hop's spans (routing, forward wait) wrap
	// the serving replica's breakdown, all under one request id.
	var item wireImputeResult
	if err := json.Unmarshal(res.Body, &item); err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.Write(res.Body)
		return true
	}
	remote := item.Debug
	item.Debug = debugDoc(r)
	if item.Debug != nil {
		item.Debug.Shard = rt.Self()
		if remote != nil {
			remote.Shard = servedBy
			item.Debug.Hops = append(item.Debug.Hops, remote)
		}
	}
	writeJSON(w, item)
	return true
}

// wireBatchResponse is the /v1/impute/batch response document.
type wireBatchResponse struct {
	Results []wireImputeResult `json:"results"`
	Debug   *wireDebug         `json:"debug,omitempty"`
}

// shardOutcome is one scatter group's result.
type shardOutcome struct {
	label       string   // primary replica (or self), for hop reporting
	group       []string // full replica group; nil for the local group
	idxs        []int    // original batch positions of this group's items
	items       []wireImputeResult
	servedBy    string // which replica answered a remote group
	dbg         *wireDebug
	unreachable bool  // every replica down after retries (or answered garbage)
	err         error // local system-level error (untrained, cancelled)
}

// routeBatch scatter-gathers a batch across replica groups.  It reports true
// when it wrote the response; false means the whole batch is local (this node
// is a replica of every trajectory's cell).  Each forwarded sub-batch
// re-wraps the originals' admission fields — priority verbatim, deadline_ms
// rebased to the remaining budget — so every replica serves its share at the
// caller's priority within its end-to-end deadline.
func (s *apiServer) routeBatch(w http.ResponseWriter, r *http.Request, req wireBatchRequest) bool {
	rt := s.opts.router
	trajs := req.Trajectories
	if rt == nil || isForwarded(r) || len(trajs) == 0 {
		return false
	}
	self := rt.Self()
	groups := make(map[string]*shardOutcome)
	var order []string // first-seen order keeps hop reporting deterministic
	local := false
	for i, tr := range trajs {
		g, _, ok := rt.ReplicaGroup(wirePoints(tr))
		key := self
		if ok && !containsShard(g, self) {
			key = strings.Join(g, ",")
		}
		o := groups[key]
		if o == nil {
			o = &shardOutcome{label: self}
			if key != self {
				o.label, o.group = g[0], g
			} else {
				local = true
			}
			groups[key] = o
			order = append(order, key)
		}
		o.idxs = append(o.idxs, i)
	}
	if len(groups) == 1 && local {
		return false // wholly local: the ordinary path serves it
	}

	// Scatter: every replica group gets its sub-batch concurrently — the
	// local group runs through the same ImputeBatch path a single-node
	// deployment uses, remote groups are forwarded with failover down the
	// group.  Each group writes only its own outcome slot, so no locking is
	// needed.
	outs := make([]*shardOutcome, len(order))
	var wg sync.WaitGroup
	for gi, key := range order {
		o := groups[key]
		outs[gi] = o
		wg.Add(1)
		go func(o *shardOutcome) {
			defer wg.Done()
			if o.group == nil {
				o.items, o.err = s.localSubBatch(r, trajs, o.idxs)
				return
			}
			sub := make([]wireTraj, len(o.idxs))
			for j, ix := range o.idxs {
				sub[j] = trajs[ix]
			}
			body, err := json.Marshal(wireBatchRequest{
				Trajectories: sub,
				DeadlineMS:   remainingDeadlineMS(r.Context(), req.DeadlineMS),
				Priority:     req.Priority,
			})
			if err != nil {
				o.err = err
				return
			}
			sp := obs.StartSpan(r.Context(), "cluster.forward")
			res, servedBy, ferr := rt.ForwardAny(r.Context(), o.group, "/v1/impute/batch"+debugSuffix(r), body)
			sp.End()
			if ferr != nil || res.Status != http.StatusOK {
				o.unreachable = true
				return
			}
			var resp wireBatchResponse
			if err := json.Unmarshal(res.Body, &resp); err != nil || len(resp.Results) != len(o.idxs) {
				o.unreachable = true // the peer answered garbage; treat as down
				return
			}
			o.items = resp.Results
			o.servedBy = servedBy
			o.dbg = resp.Debug
		}(o)
	}
	wg.Wait()

	// Gather: merge sub-batch results back into original order, degrading
	// unreachable groups item-by-item to the local linear baseline.  Each
	// element is counted at most once, at its final rung: Degraded if the
	// linear baseline served it, Unavailable if nothing could.
	items := make([]wireImputeResult, len(trajs))
	var hops []*wireDebug
	var degraded, unavailable int64
	served := 0
	var sysErr error
	for _, o := range outs {
		switch {
		case o.err != nil:
			sysErr = o.err
		case o.unreachable:
			for _, ix := range o.idxs {
				item, ok := s.linearItem(trajs[ix])
				if !ok {
					unavailable++
					items[ix] = wireImputeResult{Error: &wireError{
						Code:    codeShardDown,
						Message: "every replica of shard " + o.label + " unreachable",
					}}
					continue
				}
				degraded++
				served++
				items[ix] = item
			}
		default:
			for j, ix := range o.idxs {
				items[ix] = o.items[j]
			}
			served += len(o.idxs)
			if o.dbg != nil {
				o.dbg.Shard = o.servedBy
				if o.dbg.Shard == "" {
					o.dbg.Shard = o.label
				}
				hops = append(hops, o.dbg)
			}
		}
	}
	if sysErr != nil {
		// A local system-level failure (untrained, cancelled) keeps the
		// single-node batch contract: the whole call errors.
		status, code := imputeErrStatus(sysErr)
		writeError(w, status, code, sysErr.Error())
		return true
	}
	if served == 0 && unavailable == int64(len(trajs)) {
		// Every element's whole replica group unreachable and not even a
		// linear fallback: 503 + Retry-After, not a generic 500.  The
		// elements are counted inside clusterUnavailable, once each.
		s.clusterUnavailable(w, r, outs[0].label, unavailable)
		return true
	}
	if degraded > 0 {
		rt.CountDegraded(degraded)
	}
	if unavailable > 0 {
		rt.CountUnavailable(unavailable)
	}
	resp := wireBatchResponse{Results: items}
	if wantDebug(r) {
		if dbg := debugDoc(r); dbg != nil {
			dbg.Shard = self
			dbg.Hops = hops
			resp.Debug = dbg
		}
	}
	writeJSON(w, resp)
	return true
}

// localSubBatch serves this node's share of a scattered batch through the
// same engine path a forwarded sub-batch hits on its owner.
func (s *apiServer) localSubBatch(r *http.Request, trajs []wireTraj, idxs []int) ([]wireImputeResult, error) {
	sub := make([]wireTraj, len(idxs))
	for j, ix := range idxs {
		sub[j] = trajs[ix]
	}
	results, err := s.sys.ImputeBatch(r.Context(), fromWire(sub))
	if err != nil {
		return nil, err
	}
	return wireResults(results), nil
}

// wireTrainReplication summarizes a train fan-out for the response body:
// how many replica groups the batch spanned, how the peer forwards went,
// and whether every group reached majority quorum.
type wireTrainReplication struct {
	Groups    int  `json:"groups"`     // replica groups the batch partitioned into
	Targets   int  `json:"targets"`    // peer forwards attempted (excludes local)
	Acked     int  `json:"acked"`      // peer forwards acknowledged
	Failed    int  `json:"failed"`     // peer forwards that failed or were refused
	QuorumMet bool `json:"quorum_met"` // every group got majority acks
}

// wireTrainResponse is the /v1/train response on a replicated deployment: the
// usual system stats plus the replication outcome.
type wireTrainResponse struct {
	core.Stats
	Replication *wireTrainReplication `json:"replication,omitempty"`
}

// routeTrain fans a training batch out to each trajectory's full replica
// group — the write path of N-way replication.  It reports true when it wrote
// the response; false means the batch is wholly local (single node, or every
// group collapses to self).  Per group, the local membership trains through
// the ordinary engine path and every peer member receives the group's
// sub-batch once via ForwardWrite (single attempt, no retry and no hedge:
// training is not idempotent, and a retry after a lost response could apply
// the batch twice).  Acks are best-effort with a quorum report: the call
// fails with 503 only when some group was applied nowhere (the data would be
// silently lost); a group below majority quorum is surfaced in the response
// and the write-quorum counter, and anti-entropy later converges the lagging
// replicas.
func (s *apiServer) routeTrain(w http.ResponseWriter, r *http.Request, trajs []wireTraj) bool {
	rt := s.opts.router
	if rt == nil || isForwarded(r) {
		return false
	}
	self := rt.Self()
	type trainGroup struct {
		members []string
		idxs    []int
	}
	groups := make(map[string]*trainGroup)
	var order []string
	peerTargets := 0
	for i, tr := range trajs {
		members, _, ok := rt.ReplicaGroup(wirePoints(tr))
		if !ok {
			members = []string{self}
		}
		key := strings.Join(members, ",")
		g := groups[key]
		if g == nil {
			g = &trainGroup{members: members}
			groups[key] = g
			order = append(order, key)
			for _, m := range members {
				if m != self {
					peerTargets++
				}
			}
		}
		g.idxs = append(g.idxs, i)
	}
	if peerTargets == 0 {
		return false // wholly local: the ordinary path trains it
	}

	// Freeze this node's token mapping from the FULL spanning batch before
	// scattering, and offer the frozen spec to every peer in the fan-out
	// envelope.  Without this, each replica would derive its own adaptive
	// spec from just its sub-batch, and anti-entropy would (correctly)
	// refuse to exchange models across the divergent token spaces forever.
	var offeredSpec *tokenizer.Spec
	if err := s.sys.EnsureTokenizer(fromWire(trajs)); err != nil {
		writeErrorTraced(w, r, http.StatusInternalServerError, codeInternal, "freezing tokenizer for fan-out: "+err.Error())
		return true
	}
	if tk := s.sys.Tokenizer(); tk != nil {
		spec := tk.Spec()
		offeredSpec = &spec
	}

	// Scatter: the local sub-batch (the union of every group this node
	// belongs to) trains once through the engine; each peer member of each
	// group gets that group's sub-batch concurrently.
	var localIdxs []int
	for _, key := range order {
		if containsShard(groups[key].members, self) {
			localIdxs = append(localIdxs, groups[key].idxs...)
		}
	}
	sort.Ints(localIdxs)

	var wg sync.WaitGroup
	var mu sync.Mutex
	acked := make(map[string]int, len(order)) // group key → successful members
	var localErr error
	localOK := false
	if len(localIdxs) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub := make([]wireTraj, len(localIdxs))
			for j, ix := range localIdxs {
				sub[j] = trajs[ix]
			}
			err := s.sys.TrainContext(r.Context(), fromWire(sub))
			mu.Lock()
			localErr, localOK = err, err == nil
			mu.Unlock()
		}()
	}
	var peerAcks, peerFails int64
	for _, key := range order {
		g := groups[key]
		sub := make([]wireTraj, len(g.idxs))
		for j, ix := range g.idxs {
			sub[j] = trajs[ix]
		}
		body, err := json.Marshal(wireTrainRequest{Trajectories: sub, TokenizerSpec: offeredSpec})
		if err != nil {
			writeErrorTraced(w, r, http.StatusInternalServerError, codeInternal, "encoding train fan-out: "+err.Error())
			return true
		}
		for _, m := range g.members {
			if m == self {
				continue
			}
			wg.Add(1)
			go func(key, m string, body []byte) {
				defer wg.Done()
				_, err := rt.ForwardWrite(r.Context(), m, "/v1/train", body)
				mu.Lock()
				if err != nil {
					peerFails++
				} else {
					peerAcks++
					acked[key]++
				}
				mu.Unlock()
			}(key, m, body)
		}
	}
	wg.Wait()

	// Gather: per-group quorum accounting.  Local success counts as an ack
	// for every group this node belongs to.
	var quorumMisses int64
	quorumMet := true
	lost := ""
	for _, key := range order {
		g := groups[key]
		n := acked[key]
		if containsShard(g.members, self) && localOK {
			n++
		}
		if n == 0 {
			lost = g.members[0]
		}
		if n < len(g.members)/2+1 {
			quorumMisses++
			quorumMet = false
		}
	}
	rt.CountWrites(peerAcks, peerFails, quorumMisses)

	if localErr != nil {
		writeErrorTraced(w, r, http.StatusInternalServerError, codeInternal, localErr.Error())
		return true
	}
	if lost != "" {
		// No replica of some group took the sub-batch: the write would be
		// silently lost, so the whole call fails retriably.
		w.Header().Set("Retry-After", "1")
		writeErrorTraced(w, r, http.StatusServiceUnavailable, codeShardDown,
			"training batch for replica group of "+lost+" not applied anywhere")
		return true
	}
	writeJSON(w, wireTrainResponse{
		Stats: s.sys.SystemStats(),
		Replication: &wireTrainReplication{
			Groups:    len(order),
			Targets:   peerTargets,
			Acked:     int(peerAcks),
			Failed:    int(peerFails),
			QuorumMet: quorumMet,
		},
	})
	return true
}

// handleClusterReload re-reads the shard map file and swaps it in on this
// node.  Operators hit it on every node after rolling out a new map (or send
// SIGHUP); generations only move forward, so racing rollouts are safe.  A
// -replicas override on this node applies to the reloaded map too, so an
// operator cannot accidentally drop the replication factor by distributing a
// map that omits it.
func (s *apiServer) handleClusterReload(w http.ResponseWriter, r *http.Request) {
	rt := s.opts.router
	if rt == nil {
		writeError(w, http.StatusNotFound, codeNotFound, "clustering is not enabled on this node")
		return
	}
	if s.opts.clusterPath == "" {
		writeError(w, http.StatusConflict, codeBadRequest, "no shard-map file configured to reload from")
		return
	}
	m, err := cluster.LoadMap(s.opts.clusterPath)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	if s.opts.replicaOverride > 0 {
		m.Replicas = s.opts.replicaOverride
	}
	if err := rt.Reload(m); err != nil {
		writeError(w, http.StatusConflict, codeBadRequest, err.Error())
		return
	}
	s.logger().Info("shard map reloaded via API", "component", "serve",
		"generation", m.Generation, "shards", len(m.Shards), "replicas", m.ReplicaCount())
	writeJSON(w, map[string]interface{}{
		"status":     "reloaded",
		"generation": m.Generation,
		"shards":     len(m.Shards),
		"replicas":   m.ReplicaCount(),
	})
}

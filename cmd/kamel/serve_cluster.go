package main

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"kamel/internal/cluster"
	"kamel/internal/geo"
	"kamel/internal/obs"
)

// This file is the HTTP face of the horizontal-sharding layer
// (internal/cluster): spatial routing of single imputations to the owning
// shard, scatter-gather for batches that span shards, the degradation ladder
// when an owning peer is down (local linear fallback, then 503), and the
// shard-map reload endpoint.
//
// The one-hop contract: a request carrying cluster.HeaderForwarded is always
// served locally, whatever the shard map says.  Forwarding therefore
// terminates even while two nodes briefly disagree on the map during a
// rollout — the worst case is one extra hop to a node that serves the
// request from a non-owning model (or its linear fallback), never a loop.

// wirePoints converts a wire trajectory's raw triples to routing points.
func wirePoints(tr wireTraj) []geo.Point {
	pts := make([]geo.Point, len(tr.Points))
	for i, p := range tr.Points {
		pts[i] = geo.Point{Lat: p[0], Lng: p[1], T: p[2]}
	}
	return pts
}

// debugSuffix propagates ?debug=1 to a forwarded hop so the remote span
// breakdown comes back for stitching.
func debugSuffix(r *http.Request) string {
	if wantDebug(r) {
		return "?debug=1"
	}
	return ""
}

// isForwarded reports whether this request already made its one hop.
func isForwarded(r *http.Request) bool {
	return r.Header.Get(cluster.HeaderForwarded) != ""
}

// remainingDeadlineMS rebases deadline_ms for a forwarded hop.  The owning
// shard restarts its admission timer when the forwarded request arrives, so
// it must receive the budget still left at this hop — forwarding the
// original window verbatim would let the end-to-end deadline stretch by the
// routing and transfer time already spent.  Zero (no deadline) passes
// through; an exhausted budget clamps to 1ms so the shard still applies a
// deadline rather than treating 0 as unlimited (the first hop's context
// cancellation aborts the forward anyway).
func remainingDeadlineMS(ctx context.Context, orig int64) int64 {
	if orig <= 0 {
		return orig
	}
	dl, ok := ctx.Deadline()
	if !ok {
		return orig
	}
	rem := time.Until(dl).Milliseconds()
	if rem < 1 {
		return 1
	}
	if rem > orig {
		return orig
	}
	return rem
}

// clusterUnavailable answers the request with 503 + Retry-After: the owning
// shard is unreachable and this node has no projection to even draw a
// straight line with.  Counted so /v1/stats and /metrics surface it.
func (s *apiServer) clusterUnavailable(w http.ResponseWriter, shard string) {
	s.opts.router.CountUnavailable()
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, codeShardDown,
		"shard "+shard+" unreachable and no local fallback available")
}

// linearItem serves one trajectory down the degradation ladder: the local
// linear baseline, flagged degraded.  ok=false means even that is impossible
// (no projection on this node).
func (s *apiServer) linearItem(tr wireTraj) (wireImputeResult, bool) {
	dense, stats, err := s.sys.ImputeLinear(fromWire([]wireTraj{tr})[0])
	if err != nil {
		return wireImputeResult{}, false
	}
	return wireImputeResult{
		Trajectory: toWirePtr(dense),
		Segments:   stats.Segments,
		Failures:   stats.Failures,
		Degraded:   stats.Degraded,
	}, true
}

// routeSingle routes one trajectory to its owning shard.  It reports true
// when it wrote the response (forwarded, degraded, or unavailable); false
// means the request is local — the caller serves it on the ordinary path.
// The request envelope is forwarded with deadline_ms rebased to the budget
// remaining at this hop, so the owner's own admission timer enforces the
// client's end-to-end deadline; the first hop's context (already bounded by
// the deadline) additionally caps the forward itself.
func (s *apiServer) routeSingle(w http.ResponseWriter, r *http.Request, req wireImputeRequest) bool {
	rt := s.opts.router
	if rt == nil || isForwarded(r) {
		return false
	}
	tr := req.wireTraj
	owner, _, ok := rt.Owner(wirePoints(tr))
	if !ok || owner == rt.Self() {
		return false
	}
	req.DeadlineMS = remainingDeadlineMS(r.Context(), req.DeadlineMS)
	body, err := json.Marshal(req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, codeInternal, "encoding forwarded request: "+err.Error())
		return true
	}
	sp := obs.StartSpan(r.Context(), "cluster.forward")
	res, ferr := rt.Forward(r.Context(), owner, "/v1/impute"+debugSuffix(r), body)
	sp.End()
	if ferr != nil {
		if err := r.Context().Err(); err != nil {
			status, code := imputeErrStatus(err)
			writeError(w, status, code, err.Error())
			return true
		}
		// Owning shard down: degrade to the local linear baseline.
		item, ok := s.linearItem(tr)
		if !ok {
			s.clusterUnavailable(w, owner)
			return true
		}
		rt.CountDegraded(1)
		if wantDebug(r) {
			item.Debug = debugDoc(r)
		}
		writeJSON(w, item)
		return true
	}
	if res.Status != http.StatusOK {
		// A non-retryable client error from the owner (bad request, too
		// large, ...) passes through verbatim — it is about the request, not
		// about shard health.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(res.Status)
		w.Write(res.Body)
		return true
	}
	if !wantDebug(r) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(res.Body)
		return true
	}
	// Stitch the trace: the local hop's spans (routing, forward wait) wrap
	// the owner's breakdown, all under one request id.
	var item wireImputeResult
	if err := json.Unmarshal(res.Body, &item); err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.Write(res.Body)
		return true
	}
	remote := item.Debug
	item.Debug = debugDoc(r)
	if item.Debug != nil {
		item.Debug.Shard = rt.Self()
		if remote != nil {
			remote.Shard = owner
			item.Debug.Hops = append(item.Debug.Hops, remote)
		}
	}
	writeJSON(w, item)
	return true
}

// wireBatchResponse is the /v1/impute/batch response document.
type wireBatchResponse struct {
	Results []wireImputeResult `json:"results"`
	Debug   *wireDebug         `json:"debug,omitempty"`
}

// shardOutcome is one scatter group's result.
type shardOutcome struct {
	shard       string
	idxs        []int // original batch positions of this group's items
	items       []wireImputeResult
	dbg         *wireDebug
	unreachable bool  // owner down after retries (or answered garbage)
	err         error // local system-level error (untrained, cancelled)
}

// routeBatch scatter-gathers a batch across owning shards.  It reports true
// when it wrote the response; false means the whole batch is local.  Each
// forwarded sub-batch re-wraps the originals' admission fields — priority
// verbatim, deadline_ms rebased to the remaining budget — so every shard
// serves its share at the caller's priority within its end-to-end deadline.
func (s *apiServer) routeBatch(w http.ResponseWriter, r *http.Request, req wireBatchRequest) bool {
	rt := s.opts.router
	trajs := req.Trajectories
	if rt == nil || isForwarded(r) || len(trajs) == 0 {
		return false
	}
	self := rt.Self()
	groups := make(map[string][]int)
	var order []string // first-seen order keeps hop reporting deterministic
	for i, tr := range trajs {
		owner, _, ok := rt.Owner(wirePoints(tr))
		if !ok {
			owner = self
		}
		if _, seen := groups[owner]; !seen {
			order = append(order, owner)
		}
		groups[owner] = append(groups[owner], i)
	}
	if len(groups) == 1 && groups[self] != nil {
		return false // wholly local: the ordinary path serves it
	}

	// Scatter: every owning shard gets its sub-batch concurrently — the
	// local group runs through the same ImputeBatch path a single-node
	// deployment uses, remote groups are forwarded.  Each group writes only
	// its own outcome slot, so no locking is needed.
	outs := make([]*shardOutcome, len(order))
	var wg sync.WaitGroup
	for gi, shard := range order {
		o := &shardOutcome{shard: shard, idxs: groups[shard]}
		outs[gi] = o
		wg.Add(1)
		go func(shard string, o *shardOutcome) {
			defer wg.Done()
			if shard == self {
				o.items, o.err = s.localSubBatch(r, trajs, o.idxs)
				return
			}
			sub := make([]wireTraj, len(o.idxs))
			for j, ix := range o.idxs {
				sub[j] = trajs[ix]
			}
			body, err := json.Marshal(wireBatchRequest{
				Trajectories: sub,
				DeadlineMS:   remainingDeadlineMS(r.Context(), req.DeadlineMS),
				Priority:     req.Priority,
			})
			if err != nil {
				o.err = err
				return
			}
			sp := obs.StartSpan(r.Context(), "cluster.forward")
			res, ferr := rt.Forward(r.Context(), shard, "/v1/impute/batch"+debugSuffix(r), body)
			sp.End()
			if ferr != nil || res.Status != http.StatusOK {
				o.unreachable = true
				return
			}
			var resp wireBatchResponse
			if err := json.Unmarshal(res.Body, &resp); err != nil || len(resp.Results) != len(o.idxs) {
				o.unreachable = true // the peer answered garbage; treat as down
				return
			}
			o.items = resp.Results
			o.dbg = resp.Debug
		}(shard, o)
	}
	wg.Wait()

	// Gather: merge sub-batch results back into original order, degrading
	// unreachable groups item-by-item to the local linear baseline.
	items := make([]wireImputeResult, len(trajs))
	var hops []*wireDebug
	var degraded int64
	unreachable, served := 0, 0
	var sysErr error
	for _, o := range outs {
		switch {
		case o.err != nil:
			sysErr = o.err
		case o.unreachable:
			unreachable++
			for _, ix := range o.idxs {
				item, ok := s.linearItem(trajs[ix])
				if !ok {
					items[ix] = wireImputeResult{Error: &wireError{
						Code:    codeShardDown,
						Message: "shard " + o.shard + " unreachable",
					}}
					continue
				}
				degraded++
				served++
				items[ix] = item
			}
		default:
			for j, ix := range o.idxs {
				items[ix] = o.items[j]
			}
			served += len(o.idxs)
			if o.dbg != nil {
				o.dbg.Shard = o.shard
				hops = append(hops, o.dbg)
			}
		}
	}
	if sysErr != nil {
		// A local system-level failure (untrained, cancelled) keeps the
		// single-node batch contract: the whole call errors.
		status, code := imputeErrStatus(sysErr)
		writeError(w, status, code, sysErr.Error())
		return true
	}
	if served == 0 && unreachable > 0 && unreachable == len(order) {
		// Every owning peer unreachable and not even a linear fallback:
		// 503 + Retry-After, not a generic 500 (satellite contract).
		s.clusterUnavailable(w, order[0])
		return true
	}
	if degraded > 0 {
		rt.CountDegraded(degraded)
	}
	resp := wireBatchResponse{Results: items}
	if wantDebug(r) {
		if dbg := debugDoc(r); dbg != nil {
			dbg.Shard = self
			dbg.Hops = hops
			resp.Debug = dbg
		}
	}
	writeJSON(w, resp)
	return true
}

// localSubBatch serves this node's share of a scattered batch through the
// same engine path a forwarded sub-batch hits on its owner.
func (s *apiServer) localSubBatch(r *http.Request, trajs []wireTraj, idxs []int) ([]wireImputeResult, error) {
	sub := make([]wireTraj, len(idxs))
	for j, ix := range idxs {
		sub[j] = trajs[ix]
	}
	results, err := s.sys.ImputeBatch(r.Context(), fromWire(sub))
	if err != nil {
		return nil, err
	}
	return wireResults(results), nil
}

// handleClusterReload re-reads the shard map file and swaps it in on this
// node.  Operators hit it on every node after rolling out a new map (or send
// SIGHUP); generations only move forward, so racing rollouts are safe.
func (s *apiServer) handleClusterReload(w http.ResponseWriter, r *http.Request) {
	rt := s.opts.router
	if rt == nil {
		writeError(w, http.StatusNotFound, codeNotFound, "clustering is not enabled on this node")
		return
	}
	if s.opts.clusterPath == "" {
		writeError(w, http.StatusConflict, codeBadRequest, "no shard-map file configured to reload from")
		return
	}
	m, err := cluster.LoadMap(s.opts.clusterPath)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	if err := rt.Reload(m); err != nil {
		writeError(w, http.StatusConflict, codeBadRequest, err.Error())
		return
	}
	s.logger().Info("shard map reloaded via API", "component", "serve",
		"generation", m.Generation, "shards", len(m.Shards))
	writeJSON(w, map[string]interface{}{
		"status":     "reloaded",
		"generation": m.Generation,
		"shards":     len(m.Shards),
	})
}

package main

import (
	"math/rand/v2"
	"net/http"
	"strings"
	"time"

	"kamel/internal/obs"
)

// This file is the HTTP face of the observability layer (internal/obs): the
// request-observation middleware that traces, times, and logs every API
// request, the /metrics Prometheus endpoint, and the ?debug=1 span breakdown
// returned inline by the imputation endpoints.

// isOps reports whether the path is an operator surface — health probes and
// the metrics scrape — which must stay responsive under overload and is
// therefore excluded from shedding, timeouts, and request logging.
func isOps(path string) bool { return isProbe(path) || path == "/metrics" }

// apiRoutes is the closed set of route labels for the per-route latency
// histograms.  Bounding the label set here keeps series cardinality fixed no
// matter what paths clients probe.
var apiRoutes = map[string]bool{
	"/v1/train": true, "/v1/impute": true, "/v1/impute/batch": true,
	"/v1/stats": true, "/v1/cluster/reload": true, "/v1/traces": true,
	"/v1/cluster/metrics": true, "/": true,
}

// normalizeRoute maps a request path to its histogram label: a known route
// keeps its path, trace lookups collapse their ID into a placeholder, and
// everything else collapses into "other".
func normalizeRoute(path string) string {
	if apiRoutes[path] {
		return path
	}
	if strings.HasPrefix(path, "/v1/traces/") {
		return "/v1/traces/{id}"
	}
	return "other"
}

// statusWriter captures the response status code for metrics and logging.
// WriteHeader is recorded once, matching net/http's superfluous-call rule;
// a body write without an explicit header is an implicit 200.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// requestHist returns the latency histogram for one (route, status) pair,
// resolving through a local read-mostly cache so the steady state costs one
// RLock instead of a registry registration per request.
func (s *apiServer) requestHist(route, status string) *obs.Histogram {
	key := route + "|" + status
	s.histMu.RLock()
	h := s.hists[key]
	s.histMu.RUnlock()
	if h != nil {
		return h
	}
	h = s.sys.Obs().Histogram("kamel_http_request_duration_seconds",
		"HTTP request handling latency by route and status.", nil,
		obs.L("route", route), obs.L("status", status))
	s.histMu.Lock()
	s.hists[key] = h
	s.histMu.Unlock()
	return h
}

// sampleTrace is the head-sampling coin flip for a new root trace.
func (s *apiServer) sampleTrace() bool {
	p := s.opts.traceSample
	if p >= 1 {
		return true
	}
	if p <= 0 {
		return false
	}
	return rand.Float64() < p
}

// traceSlowAt is the tail-retention latency threshold: -trace-slow when set,
// else the slow-request log threshold (0 disables slow retention).
func (s *apiServer) traceSlowAt() time.Duration {
	if s.opts.traceSlow > 0 {
		return s.opts.traceSlow
	}
	return s.opts.slowRequest
}

// node names this hop in trace records: the shard id on a clustered node,
// "local" otherwise.
func (s *apiServer) node() string {
	if rt := s.opts.router; rt != nil {
		return rt.Self()
	}
	return "local"
}

// observe is the outermost middleware: it assigns the request ID (honoring a
// client-sent X-Request-ID and echoing the effective one back), establishes
// the request's distributed trace — adopting an incoming Traceparent from an
// upstream hop, or minting a fresh root identity under head sampling — and
// binds it with the system registry to the context.  On completion it feeds
// the per-route histogram (with the trace ID as the bucket's exemplar), the
// SLO monitor, and the trace store: head-sampled traces are retained, and any
// request that errored (5xx/429) or ran slow is retained regardless of the
// head decision.  One structured log line is emitted — at warn level with the
// per-stage breakdown when the request exceeded the slow-request threshold.
// Operator surfaces (probes, /metrics) pass through untouched.
func (s *apiServer) observe(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if isOps(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		reqID := r.Header.Get("X-Request-ID")
		if reqID == "" {
			reqID = obs.NewRequestID()
		}
		var tr *obs.Trace
		if tc, ok := obs.ParseTraceparent(r.Header.Get(obs.HeaderTraceparent)); ok {
			tr = obs.NewChildTrace(tc)
		} else {
			tr = obs.NewRootTrace(s.sampleTrace())
		}
		w.Header().Set("X-Request-ID", reqID)
		w.Header().Set("X-Kamel-Trace-ID", tr.TraceID)
		ctx := obs.ContextWithRequestID(r.Context(), reqID)
		ctx = obs.With(ctx, tr, s.sys.Obs())
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))
		dur := time.Since(start)

		status := sw.status
		if status == 0 {
			status = http.StatusOK // handler wrote nothing: net/http sends 200
		}
		route := normalizeRoute(r.URL.Path)
		s.requestHist(route, itoa(status)).ObserveExemplar(dur.Seconds(), tr.TraceID)
		s.slo.Observe(status, dur)

		slowAt := s.traceSlowAt()
		slow := slowAt > 0 && dur >= slowAt
		// Tail retention trumps the head decision — the reason label records
		// what actually kept the trace.
		reason := ""
		switch {
		case status >= 500 || status == http.StatusTooManyRequests:
			reason = obs.RetainError
		case slow:
			reason = obs.RetainSlow
		case tr.Sampled:
			reason = obs.RetainHead
		}
		s.traces.Add(obs.TraceRecord{
			TraceID:      tr.TraceID,
			SpanID:       tr.SpanID,
			ParentSpanID: tr.ParentSpanID,
			Node:         s.node(),
			Route:        route,
			Status:       status,
			Start:        tr.Start(),
			Duration:     dur,
			Spans:        tr.Records(),
			Dropped:      tr.Dropped(),
			Retained:     reason,
		})

		log := s.logger()
		attrs := []any{
			"component", "serve",
			"request_id", reqID,
			"trace_id", tr.TraceID,
			"method", r.Method,
			"path", r.URL.Path,
			"status", status,
			"duration_ms", float64(dur.Microseconds()) / 1000,
		}
		if s.opts.slowRequest > 0 && dur >= s.opts.slowRequest {
			log.Warn("slow request", append(attrs, "stages", stageAttr(tr))...)
			return
		}
		log.Info("request", attrs...)
	})
}

// itoa renders a status code without strconv noise at the call site.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [4]byte
	i := len(buf)
	for v > 0 && i > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// stageAttr renders a trace's per-stage totals for a slow-request log line.
func stageAttr(tr *obs.Trace) []map[string]any {
	stages := tr.Stages()
	out := make([]map[string]any, len(stages))
	for i, st := range stages {
		out[i] = map[string]any{
			"name":     st.Name,
			"count":    st.Count,
			"total_ms": float64(st.Total.Microseconds()) / 1000,
		}
	}
	return out
}

// handleMetrics serves the registry in the Prometheus text exposition format.
func (s *apiServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, codeBadRequest, "GET required")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.sys.Obs().WritePrometheus(w); err != nil {
		s.logger().Error("writing metrics exposition", "component", "serve", "err", err)
	}
}

// wantDebug reports whether the request asked for the inline span breakdown.
func wantDebug(r *http.Request) bool {
	v := r.URL.Query().Get("debug")
	return v == "1" || v == "true"
}

// wireDebug is the ?debug=1 payload: the request's identity and its span
// breakdown, both summarized per stage and as the raw (capped) span list.
type wireDebug struct {
	RequestID string      `json:"request_id,omitempty"`
	Shard     string      `json:"shard,omitempty"` // which shard produced this hop
	TotalMS   float64     `json:"total_ms"`
	Stages    []wireStage `json:"stages"`
	Spans     []wireSpan  `json:"spans"`
	// Hops carries the remote shards' own breakdowns when a request was
	// forwarded or scatter-gathered, stitching one trace across the cluster —
	// every hop shares this request's id (X-Request-ID propagates on forward).
	Hops    []*wireDebug `json:"hops,omitempty"`
	Dropped int          `json:"spans_dropped,omitempty"`
}

type wireStage struct {
	Name    string  `json:"name"`
	Count   int     `json:"count"`
	TotalMS float64 `json:"total_ms"`
}

type wireSpan struct {
	Name    string  `json:"name"`
	StartMS float64 `json:"start_ms"` // offset from request start
	DurMS   float64 `json:"dur_ms"`
}

// debugDoc renders the request's trace, or nil when the request was not
// traced (the observe middleware not in the chain).
func debugDoc(r *http.Request) *wireDebug {
	tr := obs.TraceFrom(r.Context())
	if tr == nil {
		return nil
	}
	doc := &wireDebug{
		RequestID: obs.RequestIDFrom(r.Context()),
		TotalMS:   float64(tr.Elapsed().Microseconds()) / 1000,
		Stages:    []wireStage{},
		Spans:     []wireSpan{},
		Dropped:   tr.Dropped(),
	}
	for _, st := range tr.Stages() {
		doc.Stages = append(doc.Stages, wireStage{
			Name:    st.Name,
			Count:   st.Count,
			TotalMS: float64(st.Total.Microseconds()) / 1000,
		})
	}
	for _, sp := range tr.Records() {
		doc.Spans = append(doc.Spans, wireSpan{
			Name:    sp.Name,
			StartMS: float64(sp.Start.Microseconds()) / 1000,
			DurMS:   float64(sp.Dur.Microseconds()) / 1000,
		})
	}
	return doc
}

package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"
)

// kamel trace: the operator CLI over the tracing plane.  Without -id it lists
// a server's retained traces (filterable the same way /v1/traces is) plus the
// latency-histogram exemplars; with -id it fetches the stitched cross-node
// span tree from /v1/traces/{id} and renders it with per-stage timings.

func runTraceCmd(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "base URL of a kamel serve instance")
	id := fs.String("id", "", "trace ID to inspect (empty: list retained traces)")
	route := fs.String("route", "", "list filter: route label (e.g. /v1/impute)")
	status := fs.Int("status", 0, "list filter: exact HTTP status (0: any)")
	minDur := fs.Duration("min-duration", 0, "list filter: minimum request duration")
	limit := fs.Int("limit", 20, "maximum traces listed")
	timeout := fs.Duration("timeout", 10*time.Second, "HTTP client timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	client := &http.Client{Timeout: *timeout}
	// A bare positional argument is the trace ID: `kamel trace <id>` and
	// `kamel trace -id <id>` are equivalent.
	if *id == "" && fs.NArg() > 0 {
		*id = fs.Arg(0)
	}
	if fs.NArg() > 1 || (*id != "" && fs.NArg() == 1 && fs.Arg(0) != *id) {
		return fmt.Errorf("trace: unexpected arguments %q", fs.Args())
	}
	if *id != "" {
		return traceDetail(client, *addr, *id, os.Stdout)
	}
	return traceList(client, *addr, *route, *status, *minDur, *limit, os.Stdout)
}

// traceGet fetches one tracing-plane URL and decodes its JSON document.
func traceGet(client *http.Client, rawURL string, v interface{}) error {
	resp, err := client.Get(rawURL)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var doc map[string]wireError
		if json.Unmarshal(body, &doc) == nil && doc["error"].Message != "" {
			return fmt.Errorf("trace: server answered %d: %s", resp.StatusCode, doc["error"].Message)
		}
		return fmt.Errorf("trace: server answered %d", resp.StatusCode)
	}
	return json.Unmarshal(body, v)
}

func traceList(client *http.Client, addr, route string, status int, minDur time.Duration, limit int, w io.Writer) error {
	q := url.Values{}
	if route != "" {
		q.Set("route", route)
	}
	if status != 0 {
		q.Set("status", fmt.Sprint(status))
	}
	if minDur > 0 {
		q.Set("min-duration", minDur.String())
	}
	if limit > 0 {
		q.Set("limit", fmt.Sprint(limit))
	}
	u := strings.TrimRight(addr, "/") + "/v1/traces"
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	var resp wireTracesResponse
	if err := traceGet(client, u, &resp); err != nil {
		return err
	}
	if len(resp.Traces) == 0 {
		fmt.Fprintln(w, "no retained traces match")
	} else {
		fmt.Fprintf(w, "%-32s  %-8s  %-20s  %6s  %10s  %-6s  %5s\n",
			"TRACE ID", "NODE", "ROUTE", "STATUS", "DURATION", "KEPT", "SPANS")
		for _, t := range resp.Traces {
			fmt.Fprintf(w, "%-32s  %-8s  %-20s  %6d  %9.1fms  %-6s  %5d\n",
				t.TraceID, t.Node, t.Route, t.Status, t.DurationMS, t.Retained, t.Spans)
		}
	}
	if len(resp.Exemplars) > 0 {
		fmt.Fprintln(w, "\nexemplars (latency bucket -> recent trace):")
		for _, ex := range resp.Exemplars {
			var labels []string
			for k, v := range ex.Labels {
				labels = append(labels, k+"="+v)
			}
			sort.Strings(labels)
			fmt.Fprintf(w, "  %s{%s} le=%s value=%.6f trace=%s\n",
				ex.Metric, strings.Join(labels, ","), ex.LE, ex.Value, ex.TraceID)
		}
	}
	return nil
}

func traceDetail(client *http.Client, addr, id string, w io.Writer) error {
	u := strings.TrimRight(addr, "/") + "/v1/traces/" + url.PathEscape(id)
	var doc wireTraceDoc
	if err := traceGet(client, u, &doc); err != nil {
		return err
	}
	fmt.Fprintf(w, "trace %s (%d hops)\n", doc.TraceID, len(doc.Hops))
	// Hops form a tree by parent-span links; hops whose parent is absent
	// (e.g. an expired intermediate) render at the root level rather than
	// being dropped.
	byParent := make(map[string][]wireTraceHop)
	present := make(map[string]bool, len(doc.Hops))
	for _, hop := range doc.Hops {
		present[hop.SpanID] = true
	}
	var roots []wireTraceHop
	for _, hop := range doc.Hops {
		if hop.ParentSpanID != "" && present[hop.ParentSpanID] {
			byParent[hop.ParentSpanID] = append(byParent[hop.ParentSpanID], hop)
		} else {
			roots = append(roots, hop)
		}
	}
	var render func(hop wireTraceHop, indent string)
	render = func(hop wireTraceHop, indent string) {
		kept := ""
		if hop.Retained != "" {
			kept = " [" + hop.Retained + "]"
		}
		fmt.Fprintf(w, "%s● node=%s %s %d %.1fms span=%s%s\n",
			indent, hop.Node, hop.Route, hop.Status, hop.DurationMS, hop.SpanID, kept)
		for _, sp := range hop.Spans {
			attrs := ""
			for _, a := range sp.Attrs {
				attrs += " " + a.Key + "=" + a.Value
			}
			fmt.Fprintf(w, "%s  %-28s @%8.1fms %8.1fms%s\n",
				indent, sp.Name, sp.StartMS, sp.DurMS, attrs)
		}
		if hop.Dropped > 0 {
			fmt.Fprintf(w, "%s  (+%d spans dropped at the per-trace cap)\n", indent, hop.Dropped)
		}
		for _, child := range byParent[hop.SpanID] {
			render(child, indent+"    ")
		}
	}
	for _, hop := range roots {
		render(hop, "")
	}
	return nil
}

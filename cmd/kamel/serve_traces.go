package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	"kamel/internal/obs"
)

// This file is the HTTP face of the distributed tracing plane: the retained-
// trace listing (/v1/traces), the cross-node stitched span tree
// (/v1/traces/{id}), and the cluster-wide metrics federation
// (/v1/cluster/metrics).  The kamel trace CLI subcommand consumes the first
// two.

// wireTraceSpan is one span inside a hop, offsets relative to the hop start.
type wireTraceSpan struct {
	Name    string     `json:"name"`
	StartMS float64    `json:"start_ms"`
	DurMS   float64    `json:"dur_ms"`
	Attrs   []obs.Attr `json:"attrs,omitempty"`
}

// wireTraceHop is one node's recorded share of a distributed trace.
type wireTraceHop struct {
	SpanID       string          `json:"span_id"`
	ParentSpanID string          `json:"parent_span_id,omitempty"`
	Node         string          `json:"node"`
	Route        string          `json:"route"`
	Status       int             `json:"status"`
	StartUnixMS  int64           `json:"start_unix_ms"`
	DurationMS   float64         `json:"duration_ms"`
	Retained     string          `json:"retained,omitempty"`
	Spans        []wireTraceSpan `json:"spans"`
	Dropped      int             `json:"spans_dropped,omitempty"`
}

// wireTraceDoc is the /v1/traces/{id} document: every hop of one trace, the
// gateway's own plus those stitched in from peers.
type wireTraceDoc struct {
	TraceID string         `json:"trace_id"`
	Hops    []wireTraceHop `json:"hops"`
}

// wireTraceSummary is one /v1/traces listing row.
type wireTraceSummary struct {
	TraceID     string  `json:"trace_id"`
	Node        string  `json:"node"`
	Route       string  `json:"route"`
	Status      int     `json:"status"`
	StartUnixMS int64   `json:"start_unix_ms"`
	DurationMS  float64 `json:"duration_ms"`
	Retained    string  `json:"retained"`
	Spans       int     `json:"spans"`
}

// wireExemplar links a histogram bucket to the trace ID of a recent occupant,
// so a listing reader can jump from a p99 bucket to /v1/traces/{id}.
type wireExemplar struct {
	Metric  string            `json:"metric"`
	Labels  map[string]string `json:"labels,omitempty"`
	LE      string            `json:"le"`
	Value   float64           `json:"value"`
	TraceID string            `json:"trace_id"`
}

// wireTracesResponse is the /v1/traces document.
type wireTracesResponse struct {
	Traces    []wireTraceSummary `json:"traces"`
	Exemplars []wireExemplar     `json:"exemplars,omitempty"`
}

func hopOf(rec obs.TraceRecord) wireTraceHop {
	hop := wireTraceHop{
		SpanID:       rec.SpanID,
		ParentSpanID: rec.ParentSpanID,
		Node:         rec.Node,
		Route:        rec.Route,
		Status:       rec.Status,
		StartUnixMS:  rec.Start.UnixMilli(),
		DurationMS:   float64(rec.Duration.Microseconds()) / 1000,
		Retained:     rec.Retained,
		Spans:        []wireTraceSpan{},
		Dropped:      rec.Dropped,
	}
	for _, sp := range rec.Spans {
		hop.Spans = append(hop.Spans, wireTraceSpan{
			Name:    sp.Name,
			StartMS: float64(sp.Start.Microseconds()) / 1000,
			DurMS:   float64(sp.Dur.Microseconds()) / 1000,
			Attrs:   sp.Attrs,
		})
	}
	return hop
}

// handleTraces lists this node's retained traces, newest first, filtered by
// ?route=, ?status=, ?min-duration= (Go duration), and capped by ?limit=.
// The response also carries the registry's current histogram exemplars, so
// the latency buckets' recent trace IDs are discoverable alongside the list.
func (s *apiServer) handleTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	f := obs.TraceFilter{Route: q.Get("route")}
	if v := q.Get("status"); v != "" {
		st, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, codeBadRequest, "status must be an integer")
			return
		}
		f.Status = st
	}
	if v := q.Get("min-duration"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, codeBadRequest, "min-duration: "+err.Error())
			return
		}
		f.MinDuration = d
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, codeBadRequest, "limit must be a positive integer")
			return
		}
		f.Limit = n
	}
	resp := wireTracesResponse{Traces: []wireTraceSummary{}}
	for _, rec := range s.traces.List(f) {
		resp.Traces = append(resp.Traces, wireTraceSummary{
			TraceID:     rec.TraceID,
			Node:        rec.Node,
			Route:       rec.Route,
			Status:      rec.Status,
			StartUnixMS: rec.Start.UnixMilli(),
			DurationMS:  float64(rec.Duration.Microseconds()) / 1000,
			Retained:    rec.Retained,
			Spans:       len(rec.Spans),
		})
	}
	s.sys.Obs().EachExemplar(func(name string, labels []obs.Label, ex obs.Exemplar) {
		lm := make(map[string]string, len(labels))
		for _, l := range labels {
			lm[l.Key] = l.Value
		}
		resp.Exemplars = append(resp.Exemplars, wireExemplar{
			Metric:  name,
			Labels:  lm,
			LE:      strconv.FormatFloat(ex.LE, 'g', -1, 64),
			Value:   ex.Value,
			TraceID: ex.TraceID,
		})
	})
	writeJSON(w, resp)
}

// handleTraceDetail serves /v1/traces/{id}: this node's recorded hops of the
// trace plus — on a clustered gateway — every peer's, fetched with ?local=1
// so the stitching fan-out terminates after one level.  Hops are returned
// root-first (then by start time); parent links (span_id ↔ parent_span_id)
// carry the tree shape.
func (s *apiServer) handleTraceDetail(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/traces/")
	if id == "" || strings.ContainsRune(id, '/') {
		writeError(w, http.StatusNotFound, codeNotFound, "no route "+r.URL.Path)
		return
	}
	doc := wireTraceDoc{TraceID: id, Hops: []wireTraceHop{}}
	seen := map[string]bool{}
	for _, rec := range s.traces.Find(id) {
		doc.Hops = append(doc.Hops, hopOf(rec))
		seen[rec.SpanID] = true
	}
	localOnly := r.URL.Query().Get("local") == "1"
	if rt := s.opts.router; rt != nil && !localOnly && !isForwarded(r) {
		for _, peerID := range rt.PeerIDs() {
			res, err := rt.Get(r.Context(), peerID, "/v1/traces/"+url.PathEscape(id)+"?local=1")
			if err != nil || res.Status != http.StatusOK {
				continue // a down peer just contributes no hops
			}
			var peerDoc wireTraceDoc
			if json.Unmarshal(res.Body, &peerDoc) != nil {
				continue
			}
			for _, hop := range peerDoc.Hops {
				if !seen[hop.SpanID] {
					seen[hop.SpanID] = true
					doc.Hops = append(doc.Hops, hop)
				}
			}
		}
	}
	if len(doc.Hops) == 0 {
		writeError(w, http.StatusNotFound, codeNotFound,
			"trace "+id+" not found (expired from the store, or never retained)")
		return
	}
	sort.SliceStable(doc.Hops, func(i, j int) bool {
		ri, rj := doc.Hops[i].ParentSpanID == "", doc.Hops[j].ParentSpanID == ""
		if ri != rj {
			return ri // the root hop leads
		}
		return doc.Hops[i].StartUnixMS < doc.Hops[j].StartUnixMS
	})
	writeJSON(w, doc)
}

// handleClusterMetrics federates the whole deployment's metrics: this node's
// exposition merged with every peer's under an injected node label, plus a
// kamel_federation_up series per node.  On a single-node deployment it is the
// local exposition with the node label added.
func (s *apiServer) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	var self bytes.Buffer
	if err := s.sys.Obs().WritePrometheus(&self); err != nil {
		writeErrorTraced(w, r, http.StatusInternalServerError, codeInternal, err.Error())
		return
	}
	sources := []obs.FederatedSource{{Node: s.node(), Text: self.Bytes(), Up: true}}
	if rt := s.opts.router; rt != nil {
		for _, peerID := range rt.PeerIDs() {
			res, err := rt.Get(r.Context(), peerID, "/metrics")
			src := obs.FederatedSource{Node: peerID, Up: err == nil && res.Status == http.StatusOK}
			if src.Up {
				src.Text = res.Body
			}
			sources = append(sources, src)
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := obs.WriteFederated(w, sources); err != nil {
		s.logger().Error("writing federated exposition", "component", "serve", "err", err)
	}
}

package main

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"kamel/internal/core"
	"kamel/internal/geo"
	"kamel/internal/roadnet"
	"kamel/internal/trajgen"
)

// newTestServer stands up the full HTTP surface over a fresh (untrained)
// system with the default hardening options.
func newTestServer(t *testing.T) *httptest.Server {
	return newTestServerOpts(t, defaultServeOptions())
}

func newTestServerOpts(t *testing.T, opts serveOptions) *httptest.Server {
	t.Helper()
	if opts.logger == nil {
		// Keep per-request log lines out of test output; logging-specific
		// tests install their own capturing logger.
		opts.logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	sys, err := core.New(systemConfig(t.TempDir(), 90, "", true, false, false))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	ts := httptest.NewServer(newAPIHandler(sys, opts))
	t.Cleanup(ts.Close)
	return ts
}

// call issues a request and decodes the JSON response body into a map.
func call(t *testing.T, method, url, contentType, body string) (int, http.Header, map[string]interface{}) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]interface{}
	if len(raw) > 0 && json.Unmarshal(raw, &decoded) != nil && resp.Header.Get("Content-Type") == "application/json" {
		t.Fatalf("%s %s: non-JSON body %q", method, url, raw)
	}
	return resp.StatusCode, resp.Header, decoded
}

// errorDoc pulls the structured {"error": {"code", "message"}} envelope out
// of a decoded response body; nil when absent.
func errorDoc(body map[string]interface{}) map[string]interface{} {
	doc, _ := body["error"].(map[string]interface{})
	return doc
}

func wantErrorCode(t *testing.T, status int, body map[string]interface{}, wantStatus int, wantCode string) {
	t.Helper()
	if status != wantStatus {
		t.Errorf("status %d, want %d (body %v)", status, wantStatus, body)
	}
	doc := errorDoc(body)
	if doc == nil {
		t.Fatalf("response carries no structured error envelope: %v", body)
	}
	if doc["code"] != wantCode {
		t.Errorf("error code %v, want %q", doc["code"], wantCode)
	}
	if msg, ok := doc["message"].(string); !ok || msg == "" {
		t.Errorf("error envelope must carry a message, got %v", doc)
	}
}

// TestServeAPIErrors drives every error path of the v1 surface; no model is
// trained so it stays fast.
func TestServeAPIErrors(t *testing.T) {
	ts := newTestServer(t)

	t.Run("not trained", func(t *testing.T) {
		status, _, body := call(t, http.MethodPost, ts.URL+"/v1/impute", "application/json",
			`{"id":"x","points":[[41.1,-8.6,0],[41.2,-8.5,600]]}`)
		wantErrorCode(t, status, body, http.StatusConflict, codeNotTrained)
		status, _, body = call(t, http.MethodPost, ts.URL+"/v1/impute/batch", "application/json",
			`[{"id":"x","points":[[41.1,-8.6,0],[41.2,-8.5,600]]}]`)
		wantErrorCode(t, status, body, http.StatusConflict, codeNotTrained)
	})

	t.Run("malformed body", func(t *testing.T) {
		for _, path := range []string{"/v1/train", "/v1/impute", "/v1/impute/batch"} {
			status, _, body := call(t, http.MethodPost, ts.URL+path, "application/json", `{nope`)
			wantErrorCode(t, status, body, http.StatusBadRequest, codeBadRequest)
		}
	})

	t.Run("empty training batch", func(t *testing.T) {
		status, _, body := call(t, http.MethodPost, ts.URL+"/v1/train", "application/json", `[]`)
		wantErrorCode(t, status, body, http.StatusBadRequest, codeBadRequest)
	})

	t.Run("wrong method", func(t *testing.T) {
		for _, path := range []string{"/v1/train", "/v1/impute", "/v1/impute/batch"} {
			status, hdr, body := call(t, http.MethodGet, ts.URL+path, "", "")
			wantErrorCode(t, status, body, http.StatusMethodNotAllowed, codeBadRequest)
			if hdr.Get("Allow") != http.MethodPost {
				t.Errorf("%s: Allow header %q", path, hdr.Get("Allow"))
			}
		}
		// Stats is GET-only.
		status, _, body := call(t, http.MethodPost, ts.URL+"/v1/stats", "application/json", `{}`)
		wantErrorCode(t, status, body, http.StatusMethodNotAllowed, codeBadRequest)
	})

	t.Run("bad admission fields", func(t *testing.T) {
		status, _, body := call(t, http.MethodPost, ts.URL+"/v1/impute", "application/json",
			`{"id":"x","points":[[41.1,-8.6,0],[41.2,-8.5,600]],"priority":"urgent"}`)
		wantErrorCode(t, status, body, http.StatusBadRequest, codeBadRequest)
		status, _, body = call(t, http.MethodPost, ts.URL+"/v1/impute", "application/json",
			`{"id":"x","points":[[41.1,-8.6,0],[41.2,-8.5,600]],"deadline_ms":-5}`)
		wantErrorCode(t, status, body, http.StatusBadRequest, codeBadRequest)
		status, _, body = call(t, http.MethodPost, ts.URL+"/v1/impute/batch", "application/json",
			`{"trajectories":[],"priority":"asap"}`)
		wantErrorCode(t, status, body, http.StatusBadRequest, codeBadRequest)
	})

	t.Run("wrong content type", func(t *testing.T) {
		status, _, body := call(t, http.MethodPost, ts.URL+"/v1/impute", "text/plain", `{}`)
		wantErrorCode(t, status, body, http.StatusUnsupportedMediaType, codeBadRequest)
	})

	t.Run("stats ok", func(t *testing.T) {
		status, _, body := call(t, http.MethodGet, ts.URL+"/v1/stats", "", "")
		if status != http.StatusOK {
			t.Fatalf("status %d", status)
		}
		if _, ok := body["trajectories"]; !ok {
			t.Errorf("stats body missing trajectories: %v", body)
		}
	})

	t.Run("removed aliases", func(t *testing.T) {
		// The pre-versioning /api/* aliases are gone: structured 404, with a
		// message pointing at /v1.
		for _, path := range []string{"/api/stats", "/api/train", "/api/impute"} {
			status, _, body := call(t, http.MethodGet, ts.URL+path, "", "")
			wantErrorCode(t, status, body, http.StatusNotFound, codeNotFound)
		}
	})
}

// TestServeAPIEndToEnd trains through HTTP, then drives the single and batch
// imputation endpoints.
func TestServeAPIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	ts := newTestServer(t)

	// Not ready before any training.
	if status, _, _ := call(t, http.MethodGet, ts.URL+"/readyz", "", ""); status != http.StatusServiceUnavailable {
		t.Fatalf("readyz before training: status %d, want 503", status)
	}

	city := roadnet.DefaultCityConfig()
	city.Width, city.Height = 1500, 1500
	net := roadnet.GenerateCity(city)
	proj := geo.NewProjection(41.15, -8.61)
	trajs, err := trajgen.Generate(net, proj, trajgen.DefaultConfig(30))
	if err != nil {
		t.Fatal(err)
	}
	var wires []wireTraj
	for _, tr := range trajs[:25] {
		wires = append(wires, toWire(tr))
	}
	trainBody, _ := json.Marshal(wires)
	status, _, body := call(t, http.MethodPost, ts.URL+"/v1/train", "application/json", string(trainBody))
	if status != http.StatusOK {
		t.Fatalf("train status %d: %v", status, body)
	}
	if n, _ := body["trajectories"].(float64); int(n) != 25 {
		t.Fatalf("train stats report %v trajectories", body["trajectories"])
	}

	sparse := toWire(trajs[25].Sparsify(800))
	oneBody, _ := json.Marshal(sparse)
	status, _, body = call(t, http.MethodPost, ts.URL+"/v1/impute", "application/json", string(oneBody))
	if status != http.StatusOK {
		t.Fatalf("impute status %d: %v", status, body)
	}
	traj, _ := body["trajectory"].(map[string]interface{})
	pts, _ := traj["points"].([]interface{})
	if len(pts) <= len(sparse.Points) {
		t.Fatalf("imputation added no points: %d <= %d", len(pts), len(sparse.Points))
	}

	batch := []wireTraj{sparse, toWire(trajs[26].Sparsify(800))}
	batchBody, _ := json.Marshal(batch)
	status, _, body = call(t, http.MethodPost, ts.URL+"/v1/impute/batch", "application/json", string(batchBody))
	if status != http.StatusOK {
		t.Fatalf("batch status %d: %v", status, body)
	}
	results, _ := body["results"].([]interface{})
	if len(results) != 2 {
		t.Fatalf("batch returned %d results", len(results))
	}
	for i, raw := range results {
		item, _ := raw.(map[string]interface{})
		if doc := errorDoc(item); doc != nil {
			t.Fatalf("batch item %d errored: %v", i, doc)
		}
		tr, _ := item["trajectory"].(map[string]interface{})
		got, _ := tr["points"].([]interface{})
		if len(got) <= len(batch[i].Points) {
			t.Errorf("batch item %d added no points", i)
		}
	}

	// The batch envelope form carries the same trajectories plus admission
	// fields; a bulk-priority run returns the identical results.
	envBody, _ := json.Marshal(map[string]interface{}{
		"trajectories": batch, "priority": "bulk", "deadline_ms": 60_000,
	})
	status, _, body = call(t, http.MethodPost, ts.URL+"/v1/impute/batch", "application/json", string(envBody))
	if status != http.StatusOK {
		t.Fatalf("envelope batch status %d: %v", status, body)
	}
	if results, _ := body["results"].([]interface{}); len(results) != 2 {
		t.Fatalf("envelope batch returned %d results", len(results))
	}

	// A deadline too tight to finish maps onto the context and comes back as
	// a structured timeout, not a 200 or a hang.
	var tight map[string]interface{}
	if err := json.Unmarshal(oneBody, &tight); err != nil {
		t.Fatal(err)
	}
	tight["deadline_ms"] = 1
	tightBody, _ := json.Marshal(tight)
	status, _, body = call(t, http.MethodPost, ts.URL+"/v1/impute", "application/json", string(tightBody))
	wantErrorCode(t, status, body, http.StatusServiceUnavailable, codeTimeout)

	// An explicit interactive priority on the single path still serves.
	tight["deadline_ms"] = 60_000
	tight["priority"] = "interactive"
	priBody, _ := json.Marshal(tight)
	status, _, body = call(t, http.MethodPost, ts.URL+"/v1/impute", "application/json", string(priBody))
	if status != http.StatusOK {
		t.Fatalf("interactive impute status %d: %v", status, body)
	}

	// Training flipped the readiness probe.
	status, _, body = call(t, http.MethodGet, ts.URL+"/readyz", "", "")
	if status != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("readyz after training: status %d body %v", status, body)
	}

	// Stats exports the serving-resilience counters alongside trained state.
	status, _, body = call(t, http.MethodGet, ts.URL+"/v1/stats", "", "")
	if status != http.StatusOK {
		t.Fatalf("stats status %d", status)
	}
	for _, key := range []string{
		"shedded_requests", "panics_recovered",
		"quarantined_models", "corrupt_store_records",
		"served_segments", "served_failures", "degraded_segments",
	} {
		if _, ok := body[key]; !ok {
			t.Errorf("stats body missing %q: %v", key, body)
		}
	}
	if served, _ := body["served_segments"].(float64); served <= 0 {
		t.Errorf("served_segments = %v, want > 0 after imputations", body["served_segments"])
	}
}

package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"kamel/internal/obs"
)

// TestServeHealthProbes: liveness always answers; readiness answers 503 until
// the system has trained or loaded models (the end-to-end test covers the
// post-training flip to 200).
func TestServeHealthProbes(t *testing.T) {
	ts := newTestServer(t)

	status, _, body := call(t, http.MethodGet, ts.URL+"/healthz", "", "")
	if status != http.StatusOK || body["status"] != "ok" {
		t.Errorf("healthz: status %d body %v", status, body)
	}
	status, _, body = call(t, http.MethodGet, ts.URL+"/readyz", "", "")
	wantErrorCode(t, status, body, http.StatusServiceUnavailable, codeNotTrained)
}

// TestFaultServePanicRecovery: a panicking handler must not kill the server —
// the middleware converts it into a structured 500 and counts it.
func TestFaultServePanicRecovery(t *testing.T) {
	s := &apiServer{panics: obs.NewRegistry().Counter("kamel_http_panics_total", "")}
	h := s.recoverPanics(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("imputation exploded")
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()

	for i := 0; i < 3; i++ {
		status, _, body := call(t, http.MethodGet, ts.URL+"/v1/stats", "", "")
		wantErrorCode(t, status, body, http.StatusInternalServerError, codeInternal)
	}
	if got := s.panics.Value(); got != 3 {
		t.Errorf("panics recovered = %d, want 3", got)
	}
}

// TestFaultServeLoadShed drives a 64-client burst against a 4-slot limiter:
// the four in-flight requests complete, every excess request is shed with
// 429 + Retry-After, and health probes keep answering throughout.
func TestFaultServeLoadShed(t *testing.T) {
	const slots, burst = 4, 64

	release := make(chan struct{})
	started := make(chan struct{}, slots)
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if isProbe(r.URL.Path) {
			writeJSON(w, map[string]string{"status": "ok"})
			return
		}
		started <- struct{}{}
		<-release
		writeJSON(w, map[string]string{"status": "done"})
	})
	s := &apiServer{
		inflight: make(chan struct{}, slots),
		shed:     obs.NewRegistry().Counter("kamel_http_shed_total", ""),
	}
	ts := httptest.NewServer(s.shedLoad(inner))
	defer ts.Close()

	// Fill every limiter slot with a blocked request.
	var wg sync.WaitGroup
	holderStatus := make([]int, slots)
	for i := 0; i < slots; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, _, _ := call(t, http.MethodGet, ts.URL+"/v1/impute", "", "")
			holderStatus[i] = st
		}(i)
	}
	for i := 0; i < slots; i++ {
		<-started
	}

	// The rest of the burst must be shed immediately, not queued.
	sheddedStatus := make([]int, burst-slots)
	retryAfter := make([]string, burst-slots)
	var shedWG sync.WaitGroup
	for i := 0; i < burst-slots; i++ {
		shedWG.Add(1)
		go func(i int) {
			defer shedWG.Done()
			st, hdr, _ := call(t, http.MethodGet, ts.URL+"/v1/impute", "", "")
			sheddedStatus[i] = st
			retryAfter[i] = hdr.Get("Retry-After")
		}(i)
	}
	shedWG.Wait()
	for i, st := range sheddedStatus {
		if st != http.StatusTooManyRequests {
			t.Fatalf("burst request %d: status %d, want 429", i, st)
		}
		if retryAfter[i] == "" {
			t.Fatalf("burst request %d: missing Retry-After header", i)
		}
	}
	if got := s.shed.Value(); got != burst-slots {
		t.Errorf("shed counter = %d, want %d", got, burst-slots)
	}

	// Probes bypass the limiter even at capacity.
	if st, _, _ := call(t, http.MethodGet, ts.URL+"/healthz", "", ""); st != http.StatusOK {
		t.Errorf("healthz under overload: status %d", st)
	}

	// Releasing the gate lets the in-flight holders finish normally.
	close(release)
	wg.Wait()
	for i, st := range holderStatus {
		if st != http.StatusOK {
			t.Errorf("holder %d: status %d, want 200", i, st)
		}
	}

	// Freed slots accept new work again.
	if st, _, _ := call(t, http.MethodGet, ts.URL+"/v1/impute", "", ""); st != http.StatusOK {
		t.Errorf("post-burst request: status %d, want 200", st)
	}
}

// TestFaultServeBodyLimit: oversized request bodies are rejected with a
// structured 413, not a connection reset or an unbounded read.
func TestFaultServeBodyLimit(t *testing.T) {
	opts := defaultServeOptions()
	opts.maxBodyBytes = 256
	ts := newTestServerOpts(t, opts)

	huge := `{"id":"x","points":[` + strings.Repeat("[41.1,-8.6,0],", 200) + `[41.2,-8.5,600]]}`
	for _, path := range []string{"/v1/train", "/v1/impute", "/v1/impute/batch"} {
		body := huge
		if path != "/v1/impute" {
			body = "[" + huge + "]"
		}
		status, _, resp := call(t, http.MethodPost, ts.URL+path, "application/json", body)
		wantErrorCode(t, status, resp, http.StatusRequestEntityTooLarge, codeTooLarge)
	}

	// A body under the cap still parses.
	status, _, resp := call(t, http.MethodPost, ts.URL+"/v1/impute", "application/json",
		`{"id":"x","points":[[41.1,-8.6,0],[41.2,-8.5,600]]}`)
	wantErrorCode(t, status, resp, http.StatusConflict, codeNotTrained)
}

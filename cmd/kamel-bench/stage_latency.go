package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"kamel/internal/core"
	"kamel/internal/geo"
	"kamel/internal/obs"
	"kamel/internal/roadnet"
	"kamel/internal/trajgen"
)

// stageLatency is one row of the -stage-latency report: the latency
// distribution of one pipeline stage, read back from the observability
// registry's kamel_stage_duration_seconds histograms after a fixed workload.
type stageLatency struct {
	Stage  string  `json:"stage"`
	Count  int64   `json:"count"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`
}

// stageReport is the JSON document written by -stage-latency.  Quantiles are
// interpolated within histogram buckets, so they carry bucket-resolution
// error, not exact order statistics — fine for tracking regressions across
// commits, which is their job.
type stageReport struct {
	Generated  string         `json:"generated"`
	TrainTrajs int            `json:"train_trajectories"`
	TestTrajs  int            `json:"test_trajectories"`
	TrainSteps int            `json:"train_steps"`
	Stages     []stageLatency `json:"stages"`
}

// runStageLatency trains a small partitioned system on a synthetic city,
// imputes a sparsified test set through the instrumented pipeline, and dumps
// every stage's count/p50/p95/p99 to out as JSON.  The workload is seeded and
// fixed-size so successive runs measure code, not data.
func runStageLatency(out string, quiet bool) error {
	logf := func(format string, args ...interface{}) {
		if !quiet {
			fmt.Fprintf(os.Stderr, "# "+format+"\n", args...)
		}
	}

	work, err := os.MkdirTemp("", "kamel-stage-latency-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)

	cfg := core.DefaultConfig(work)
	cfg.PyramidH, cfg.PyramidL, cfg.ThresholdK = 1, 2, 300
	cfg.Train.Steps = 250
	sys, err := core.New(cfg)
	if err != nil {
		return err
	}
	defer sys.Close()

	city := roadnet.DefaultCityConfig()
	city.Width, city.Height = 2000, 2000
	net := roadnet.GenerateCity(city)
	proj := geo.NewProjection(41.15, -8.61)
	trajs, err := trajgen.Generate(net, proj, trajgen.DefaultConfig(60))
	if err != nil {
		return err
	}
	train, tests := trajs[:48], trajs[48:]

	logf("training on %d trajectories (%d steps)", len(train), cfg.Train.Steps)
	if err := sys.Train(train); err != nil {
		return err
	}
	logf("imputing %d sparsified test trajectories", len(tests))
	for _, tr := range tests {
		if _, _, err := sys.Impute(tr.Sparsify(800)); err != nil {
			return err
		}
	}

	var rows []stageLatency
	sys.Obs().EachHistogram(func(name string, labels []obs.Label, snap obs.HistogramSnapshot) {
		if name != obs.StageHistogramName || snap.Count == 0 {
			return
		}
		stage := ""
		for _, l := range labels {
			if l.Key == "stage" {
				stage = l.Value
			}
		}
		rows = append(rows, stageLatency{
			Stage:  stage,
			Count:  snap.Count,
			P50MS:  snap.Quantile(0.50) * 1000,
			P95MS:  snap.Quantile(0.95) * 1000,
			P99MS:  snap.Quantile(0.99) * 1000,
			MeanMS: snap.Sum / float64(snap.Count) * 1000,
		})
	})
	sort.Slice(rows, func(i, j int) bool { return rows[i].Stage < rows[j].Stage })

	doc := stageReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		TrainTrajs: len(train),
		TestTrajs:  len(tests),
		TrainSteps: cfg.Train.Steps,
		Stages:     rows,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	logf("wrote %s (%d stages)", out, len(rows))
	return nil
}

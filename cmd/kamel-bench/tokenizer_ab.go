package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"kamel/internal/eval"
)

// tokenizerABDoc is the JSON document written by -tokenizer-ab: one
// fixed-vs-adaptive comparison per dataset, each carrying both token spaces'
// vocabulary size, training-data factor, model count, accuracy, and median
// imputation latency.  scripts/bench.sh embeds it into BENCH_impute.json so
// the token-space shape is tracked across commits alongside the latency
// baselines.
type tokenizerABDoc struct {
	Generated string                    `json:"generated"`
	Reports   []*eval.TokenizerABReport `json:"reports"`
}

// runTokenizerAB runs the fixed-vs-adaptive tokenizer comparison on both
// canonical datasets, prints the accuracy sweep as a table, and writes the
// structured report to out as JSON.
func runTokenizerAB(out string, runner *eval.Runner) error {
	doc := tokenizerABDoc{Generated: time.Now().UTC().Format(time.RFC3339)}
	var rows []eval.Row
	for _, ds := range []string{"porto-like", "jakarta-like"} {
		rs, rep, err := runner.RunTokenizerAB(ds, nil)
		if err != nil {
			return fmt.Errorf("tokenizer-ab %s: %w", ds, err)
		}
		rows = append(rows, rs...)
		doc.Reports = append(doc.Reports, rep)
	}
	if err := eval.WriteTable(os.Stdout, rows); err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

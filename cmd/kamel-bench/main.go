// Command kamel-bench regenerates the paper's tables and figures (§8) on
// the synthetic city substrate.  Each experiment id matches DESIGN.md's
// experiment index:
//
//	kamel-bench -exp fig9            data sparseness (Fig 9)
//	kamel-bench -exp fig10           accuracy threshold δ (Fig 10)
//	kamel-bench -exp fig11           training & imputation time (Fig 11)
//	kamel-bench -exp fig12-road      straight vs curved (Fig 12-I/II)
//	kamel-bench -exp fig12-grid      hex vs square grid (Fig 12-III)
//	kamel-bench -exp fig12-size      training data size (Fig 12-IV)
//	kamel-bench -exp fig12-density   training data density (Fig 12-V)
//	kamel-bench -exp fig12-ablation  module ablation (Fig 12-VI)
//	kamel-bench -exp fig3d           cell-size curve (Fig 3d)
//	kamel-bench -exp models          model repository inventory
//	kamel-bench -exp all             everything above
//
// Results print as aligned tables; -csv also writes a CSV file.
//
// A separate mode records the serving pipeline's per-stage latency
// distribution (tokenize, lookup, page-in, predict, constraints, beam,
// detokenize) from the observability layer's histograms:
//
//	kamel-bench -stage-latency out.json
//
// It trains a small partitioned system, pages its models from disk, imputes
// a sparsified test set, and writes one JSON array of per-stage
// count/p50/p95/p99 — the machine-readable baseline scripts/bench.sh embeds
// into BENCH_impute.json.
//
// A third mode compares the fixed-grid and density-adaptive tokenizers
// (vocabulary size, training-data factor, model count, accuracy, median
// imputation latency) on both canonical datasets:
//
//	kamel-bench -tokenizer-ab out.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"kamel/internal/eval"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -h)")
	scale := flag.Float64("scale", 1, "workload scale factor")
	testN := flag.Int("tests", 8, "test trajectories per point")
	steps := flag.Int("steps", 700, "KAMEL training steps")
	csvPath := flag.String("csv", "", "also write results to this CSV file")
	quiet := flag.Bool("quiet", false, "suppress progress logging")
	stageOut := flag.String("stage-latency", "", "record per-stage serving latencies to this JSON file and exit")
	tokABOut := flag.String("tokenizer-ab", "", "run the fixed-vs-adaptive tokenizer A/B, write the structured report to this JSON file, and exit")
	flag.Parse()

	if *stageOut != "" {
		if err := runStageLatency(*stageOut, *quiet); err != nil {
			fmt.Fprintln(os.Stderr, "kamel-bench:", err)
			os.Exit(1)
		}
		return
	}

	opts := eval.DefaultOptions()
	opts.Scale = *scale
	opts.TestN = *testN
	opts.TrainSteps = *steps
	runner := eval.NewRunner(opts)
	defer runner.Close()
	if !*quiet {
		runner.Log = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "# "+format+"\n", args...)
		}
	}

	if *tokABOut != "" {
		if err := runTokenizerAB(*tokABOut, runner); err != nil {
			fmt.Fprintln(os.Stderr, "kamel-bench:", err)
			os.Exit(1)
		}
		return
	}

	rows, err := run(runner, *exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kamel-bench:", err)
		os.Exit(1)
	}
	if err := eval.WriteTable(os.Stdout, rows); err != nil {
		fmt.Fprintln(os.Stderr, "kamel-bench:", err)
		os.Exit(1)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kamel-bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := eval.WriteCSV(f, rows); err != nil {
			fmt.Fprintln(os.Stderr, "kamel-bench:", err)
			os.Exit(1)
		}
	}
}

// run dispatches one or all experiments.
func run(r *eval.Runner, exp string) ([]eval.Row, error) {
	both := []string{"porto-like", "jakarta-like"}
	single := func(fn func() ([]eval.Row, error)) ([]eval.Row, error) { return fn() }
	switch exp {
	case "fig9":
		return r.RunSparseness(both, nil)
	case "fig10":
		return r.RunThreshold(both, nil)
	case "fig11":
		return r.RunTiming(both)
	case "fig12-road":
		return single(func() ([]eval.Row, error) { return r.RunRoadType("jakarta-like", nil) })
	case "fig12-grid":
		return single(func() ([]eval.Row, error) { return r.RunGridType("jakarta-like", nil) })
	case "fig12-size":
		return single(func() ([]eval.Row, error) { return r.RunTrainSize("jakarta-like", nil) })
	case "fig12-density":
		return single(func() ([]eval.Row, error) { return r.RunDensity("jakarta-like", nil) })
	case "fig12-ablation":
		return single(func() ([]eval.Row, error) { return r.RunAblation("jakarta-like", nil) })
	case "fig3d":
		return single(func() ([]eval.Row, error) { return r.RunCellSize("porto-like", nil) })
	case "models":
		var rows []eval.Row
		for _, ds := range both {
			rs, err := r.ModelInventory(ds)
			if err != nil {
				return nil, err
			}
			rows = append(rows, rs...)
		}
		return rows, nil
	case "all":
		var rows []eval.Row
		for _, id := range []string{"fig9", "fig10", "fig11", "fig12-road", "fig12-grid", "fig12-size", "fig12-density", "fig12-ablation", "fig3d", "models"} {
			rs, err := run(r, id)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", id, err)
			}
			rows = append(rows, rs...)
		}
		return rows, nil
	default:
		return nil, fmt.Errorf("unknown experiment %q; valid: fig9 fig10 fig11 fig12-road fig12-grid fig12-size fig12-density fig12-ablation fig3d models all", strings.TrimSpace(exp))
	}
}

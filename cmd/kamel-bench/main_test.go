package main

import (
	"strings"
	"testing"

	"kamel/internal/eval"
)

func TestRunRejectsUnknownExperiment(t *testing.T) {
	r := eval.NewRunner(eval.DefaultOptions())
	defer r.Close()
	_, err := run(r, "fig99")
	if err == nil {
		t.Fatal("unknown experiment must error")
	}
	// The error must enumerate the valid ids so the operator can recover.
	for _, id := range []string{"fig9", "fig12-ablation", "fig3d", "models"} {
		if !strings.Contains(err.Error(), id) {
			t.Errorf("error does not mention %q: %v", id, err)
		}
	}
}

// Command kamel-loadgen drives a running kamel serve node (or cluster
// entrypoint) with the open-loop Poisson workload from internal/loadgen and
// prints the resulting capacity curve.
//
//	kamel-loadgen -url http://127.0.0.1:8080 -rates 25,50,100,200
//
// Arrivals fire on schedule regardless of how many requests are in flight
// (open loop), so overload shows up as queueing delay and shed rate instead
// of being hidden by client self-throttling.  Each offered rate runs a
// warmup phase then a measured phase; the sweep ends with the capacity
// point: the best goodput among steps whose p99 stayed under the target
// with zero internal errors.
//
// The workload reuses the synthetic porto-like / jakarta-like datasets
// (-profile), Zipf-skews origins over hotspot cells (-zipf), attributes
// requests to a pool of client identities via X-Kamel-Client (-clients),
// and mixes operations per -mix ("impute=0.9,batch=0.08,train=0.02").
// -seed-target first trains the node on the workload's training split and
// waits for /readyz — the standing-start path for a fresh server.
//
// -json writes the machine-readable sweep next to the human table; each
// step also reports its slowest requests with their X-Kamel-Trace-ID so
// outliers link straight to GET {target}/v1/traces/{id}.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"kamel/internal/loadgen"
	"kamel/internal/trajgen"
)

func main() {
	url := flag.String("url", "", "target base URL, e.g. http://127.0.0.1:8080 (required)")
	rates := flag.String("rates", "25,50,100,200,400", "comma-separated offered rates (req/s), swept in order")
	warmup := flag.Duration("warmup", 2*time.Second, "unmeasured warmup per step")
	measure := flag.Duration("measure", 10*time.Second, "measured duration per step")
	clients := flag.Int("clients", 8, "distinct client identities (X-Kamel-Client)")
	zipf := flag.Float64("zipf", 1.2, "Zipf hotspot skew over origin cells (<=1: uniform)")
	mix := flag.String("mix", "impute=0.9,batch=0.1", "operation mix weights, e.g. impute=0.9,batch=0.08,train=0.02")
	profile := flag.String("profile", "porto", "dataset profile: porto, jakarta, or mixed")
	scale := flag.Float64("scale", 0.25, "dataset scale factor")
	sparsify := flag.Float64("sparsify", 500, "sparsification gap (meters) for impute inputs")
	seed := flag.Uint64("seed", 1, "RNG seed for arrivals and request selection")
	p99Target := flag.Float64("p99-target", 250, "capacity-point p99 SLO in ms (<=0: latency unconstrained)")
	slowTraces := flag.Int("slow-traces", 3, "slowest requests reported per step with trace IDs")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request timeout")
	jsonOut := flag.String("json", "", "also write the sweep result to this JSON file")
	seedTarget := flag.Bool("seed-target", false, "POST the training split to /v1/train and wait for /readyz before the sweep")
	flag.Parse()

	if err := run(*url, *rates, *warmup, *measure, *clients, *zipf, *mix, *profile,
		*scale, *sparsify, *seed, *p99Target, *slowTraces, *timeout, *jsonOut, *seedTarget); err != nil {
		fmt.Fprintln(os.Stderr, "kamel-loadgen:", err)
		os.Exit(1)
	}
}

func run(url, rates string, warmup, measure time.Duration, clients int, zipfS float64,
	mixSpec, profile string, scale, sparsify float64, seed uint64, p99Target float64,
	slowTraces int, timeout time.Duration, jsonOut string, seedTarget bool) error {
	if url == "" {
		return fmt.Errorf("-url is required")
	}
	stepRates, err := parseRates(rates)
	if err != nil {
		return err
	}
	mix, err := parseMix(mixSpec)
	if err != nil {
		return err
	}
	profiles, err := datasetProfiles(profile, scale)
	if err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "building %s workload (scale %.2f)...\n", profile, scale)
	w, err := loadgen.BuildWorkload(profiles, loadgen.WorkloadOptions{SparsifyMeters: sparsify})
	if err != nil {
		return err
	}
	ni, nb, nt, cells := w.Sizes()
	fmt.Fprintf(os.Stderr, "workload: %d impute, %d batch, %d train bodies over %d hotspot cells\n", ni, nb, nt, cells)

	g := loadgen.New(w, loadgen.Options{
		BaseURL:    strings.TrimRight(url, "/"),
		Clients:    clients,
		ZipfS:      zipfS,
		Mix:        mix,
		Timeout:    timeout,
		Seed:       seed,
		SlowTraces: slowTraces,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if seedTarget {
		fmt.Fprintln(os.Stderr, "seeding target (/v1/train + /readyz)...")
		if err := g.SeedTarget(ctx); err != nil {
			return err
		}
	}

	res := g.Sweep(ctx, stepRates, warmup, measure, p99Target)
	loadgen.WriteTable(os.Stdout, res)
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "sweep interrupted; partial results above")
	}
	if jsonOut != "" {
		raw, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", jsonOut)
	}
	return nil
}

// parseRates reads "25,50,100" into ascending-or-not offered rates; order is
// preserved so an operator can sweep down as well as up.
func parseRates(spec string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := strconv.ParseFloat(part, 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("bad rate %q in -rates", part)
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-rates is empty")
	}
	return out, nil
}

// parseMix reads "impute=0.9,batch=0.08,train=0.02" (weights are normalized
// downstream, so they need not sum to 1).
func parseMix(spec string) (loadgen.Mix, error) {
	var m loadgen.Mix
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return m, fmt.Errorf("bad mix term %q (want op=weight)", part)
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil || f < 0 {
			return m, fmt.Errorf("bad mix weight %q", val)
		}
		switch strings.TrimSpace(key) {
		case "impute":
			m.Impute = f
		case "batch":
			m.Batch = f
		case "train":
			m.Train = f
		default:
			return m, fmt.Errorf("unknown mix op %q (impute|batch|train)", key)
		}
	}
	if m == (loadgen.Mix{}) {
		return m, fmt.Errorf("-mix selects no operations")
	}
	return m, nil
}

func datasetProfiles(name string, scale float64) ([]trajgen.Profile, error) {
	switch name {
	case "porto":
		return []trajgen.Profile{trajgen.PortoLike(scale)}, nil
	case "jakarta":
		return []trajgen.Profile{trajgen.JakartaLike(scale)}, nil
	case "mixed":
		return []trajgen.Profile{trajgen.PortoLike(scale), trajgen.JakartaLike(scale)}, nil
	default:
		return nil, fmt.Errorf("unknown -profile %q (porto|jakarta|mixed)", name)
	}
}

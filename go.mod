module kamel

go 1.22

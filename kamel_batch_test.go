package kamel

import (
	"context"
	"errors"
	"testing"
)

// sparsifyPublic crudely drops interior points through the public types.
func sparsifyPublic(tr Trajectory) Trajectory {
	sparse := Trajectory{ID: tr.ID}
	for i, p := range tr.Points {
		if i == 0 || i == len(tr.Points)-1 || i%60 == 0 {
			sparse.Points = append(sparse.Points, p)
		}
	}
	return sparse
}

func TestImputeBatchPublic(t *testing.T) {
	train, test := fixtureTrajectories(t)
	sys, err := Open(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.Train(train); err != nil {
		t.Fatal(err)
	}

	batch := []Trajectory{sparsifyPublic(test[0]), sparsifyPublic(test[1])}
	results, err := sys.ImputeBatch(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(batch) {
		t.Fatalf("%d results for %d inputs", len(results), len(batch))
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("item %d: %v", i, res.Err)
		}
		want, wantStats, err := sys.Impute(batch[i])
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats != wantStats {
			t.Errorf("item %d stats %+v != sequential %+v", i, res.Stats, wantStats)
		}
		if len(res.Trajectory.Points) != len(want.Points) {
			t.Errorf("item %d: %d points, sequential produced %d",
				i, len(res.Trajectory.Points), len(want.Points))
		}
	}

	// Cancelled context aborts the call with ctx.Err().
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.ImputeBatch(ctx, batch); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled batch error %v, want context.Canceled", err)
	}
	if _, _, err := sys.ImputeContext(ctx, batch[0]); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled impute error %v, want context.Canceled", err)
	}
	if err := sys.TrainContext(ctx, train[:1]); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled train error %v, want context.Canceled", err)
	}
}

func TestImputeBatchNotTrainedPublic(t *testing.T) {
	sys, err := Open(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	_, err = sys.ImputeBatch(context.Background(), []Trajectory{{ID: "x"}})
	if !errors.Is(err, ErrNotTrained) {
		t.Fatalf("error %v, want ErrNotTrained", err)
	}
}

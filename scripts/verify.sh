#!/usr/bin/env sh
# Repo verification gate: formatting, vet, build, and the full test suite
# under the race detector.  Extra flags are passed to `go test` (e.g.
# `./scripts/verify.sh -short` for the fast subset).
set -eu
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go build ./...
# Race instrumentation slows the model-training packages ~8x; the default
# 10m per-package timeout is not enough on loaded machines.
go test -race -timeout 30m "$@" ./...

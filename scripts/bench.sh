#!/usr/bin/env sh
# Benchmark gate: runs the imputation-path benchmarks (BERT vs n-gram
# predictor; full pipeline with and without observability instrumentation)
# and the model-lookup benchmarks (cold cache: every resolution pays the
# disk read-verify-decode; warm cache: steady-state LRU hits), then records
# the serving pipeline's per-stage latency distribution (p50/p95/p99 from
# the observability histograms via kamel-bench -stage-latency) and the
# 3-shard in-process cluster baselines — the healthy scatter-gather path
# (BenchmarkClusterScatterGather) and the replica-failover read path with one
# node dead at R=2 (BenchmarkClusterFailover) — and writes machine-readable
# results to BENCH_impute.json for tracking across commits.
#
# The BenchmarkImpute vs BenchmarkImputeNoObs delta is the observability
# layer's hot-path overhead; the acceptance bound is within 5%.
# BenchmarkImputeTraced adds the always-on tracing plane (sampled root trace,
# span exemplars, trace-store completion) on top; the "tracing_overhead"
# block records both deltas so the 5% combined bound is tracked per commit.
#
# The BenchmarkImputeConcurrent{Sequential,Frontier,Admission} trio measures
# the >=8-stream hot path in three regimes (one engine call per query; per-
# request frontier stacking; cross-request admission batching); the Admission
# entry additionally records the realized coalescing stats — avg_batch and
# queue_wait_p99_ms — emitted by the benchmark via b.ReportMetric.
#
# The tokenizer A/B (kamel-bench -tokenizer-ab) trains fixed-grid and
# density-adaptive systems on both canonical datasets and records each token
# space's vocab_size and training_data_factor (plus model count, accuracy,
# and median imputation latency) under "tokenizer_ab" — the shape statistics
# the adaptive tokenizer exists to improve, tracked across commits.
#
# The capacity block (TestCapacityRecord, driving internal/loadgen's
# open-loop Poisson generator against in-process nodes) records the offered
# vs goodput curves with p50/p99/p999 and shed rates for a single adaptive
# node, a single fixed-bucket node (the A/B the adaptive admission controller
# is judged by, at the past-saturation rate), and a 3-node cluster gateway.
#
# Usage: scripts/bench.sh [output.json]
#   BENCHTIME=... overrides the per-benchmark budget (default 10x; use e.g.
#   2s for more stable numbers on a quiet machine).
#   TOKAB_SCALE/TOKAB_TESTS/TOKAB_STEPS resize the tokenizer A/B workload
#   (defaults 0.5/4/300: a reduced but stable comparison).
#   KAMEL_CAPACITY_RATES/KAMEL_CAPACITY_MEASURE resize the capacity sweep;
#   KAMEL_CAPACITY_TARGET overrides the p99 SLO (ms) the capacity point is
#   judged by — defaulted here to 5000, a container-scale bound, because the
#   single shared core's intrinsic service time (impute p50 ~250ms, batch ~1s)
#   sits above the interactive 250ms default the CLI assumes for real
#   hardware; SKIP_CAPACITY=1 skips the block (it records {} that run).
set -eu
cd "$(dirname "$0")/.."

out=${1:-BENCH_impute.json}
benchtime=${BENCHTIME:-10x}
raw=$(mktemp)
stages=$(mktemp)
tokab=$(mktemp)
capacity=$(mktemp)
trap 'rm -f "$raw" "$stages" "$tokab" "$capacity"' EXIT

go test -run '^$' -bench 'BenchmarkPredictor|BenchmarkModelLookup|BenchmarkImpute' \
	-benchmem -benchtime "$benchtime" ./internal/core/ | tee "$raw"

# The 3-shard in-process cluster paths: a healthy spanning batch through one
# gateway (scatter-gather), and a single imputation at R=2 with the target
# group's primary replica dead (failover to the live secondary).  The
# fixtures train models, so each op is dominated by real imputation — the
# numbers to watch against BenchmarkImpute are the per-item overhead and the
# failover premium over the healthy path.
go test -run '^$' -bench 'BenchmarkCluster' \
	-benchmem -benchtime "${CLUSTER_BENCHTIME:-5x}" ./cmd/kamel/ | tee -a "$raw"

go run ./cmd/kamel-bench -stage-latency "$stages"

go run ./cmd/kamel-bench -tokenizer-ab "$tokab" \
	-scale "${TOKAB_SCALE:-0.5}" -tests "${TOKAB_TESTS:-4}" -steps "${TOKAB_STEPS:-300}"

# Capacity curves: the open-loop sweep (single adaptive, single fixed A/B,
# 3-node cluster).  Each sweep seeds its target over the wire, so this is the
# slowest block; SKIP_CAPACITY=1 leaves an empty object in its place.
if [ "${SKIP_CAPACITY:-0}" = "1" ]; then
	printf '{}\n' >"$capacity"
else
	KAMEL_CAPACITY_OUT="$capacity" KAMEL_CAPACITY_TARGET="${KAMEL_CAPACITY_TARGET:-5000}" \
		go test -run 'TestCapacityRecord' -v -timeout 30m ./cmd/kamel/
fi

{
	printf '{\n'
	printf '  "generated": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
	printf '  "go": "%s",\n' "$(go env GOVERSION)"
	printf '  "commit": "%s",\n' "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
	printf '  "benchtime": "%s",\n' "$benchtime"
	printf '  "benchmarks": [\n'
	awk '
		/^Benchmark/ {
			extra = ""
			for (i = 3; i < NF; i += 2) {
				key = $(i + 1)
				gsub(/[^a-zA-Z0-9_-]/, "_", key)
				extra = extra sprintf(", \"%s\": %s", key, $i)
			}
			if (n++) printf ",\n"
			printf "    {\"name\": \"%s\", \"iterations\": %s%s}", $1, $2, extra
		}
		END { printf "\n" }
	' "$raw"
	printf '  ],\n'
	# Tracing overhead: ns/op of the plain, no-obs, and traced impute paths
	# plus the derived percentage deltas (obs over no-obs; tracing over plain
	# obs).  Missing benchmarks leave the block empty rather than failing.
	printf '  "tracing_overhead": '
	awk '
		/^BenchmarkImpute(-| )/        { plain = $3 }
		/^BenchmarkImputeNoObs/        { noobs = $3 }
		/^BenchmarkImputeTraced/       { traced = $3 }
		END {
			if (plain > 0 && noobs > 0 && traced > 0)
				printf "{\"impute_ns_op\": %s, \"impute_noobs_ns_op\": %s, \"impute_traced_ns_op\": %s, \"obs_overhead_pct\": %.2f, \"tracing_overhead_pct\": %.2f},\n", \
					plain, noobs, traced, (plain - noobs) * 100.0 / noobs, (traced - plain) * 100.0 / plain
			else
				printf "{},\n"
		}
	' "$raw"
	printf '  "stage_latency": '
	sed '1!s/^/  /' "$stages"
	# sed above ends without a trailing comma inside the document; splice one
	# in before the tokenizer_ab key.
	printf '  ,\n  "tokenizer_ab": '
	sed '1!s/^/  /' "$tokab"
	printf '  ,\n  "capacity": '
	sed '1!s/^/  /' "$capacity"
	printf '}\n'
} >"$out"
echo "bench: wrote $out"

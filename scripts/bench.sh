#!/usr/bin/env sh
# Benchmark gate: runs the imputation-path benchmarks (BERT vs n-gram
# predictor) and the model-lookup benchmarks (cold cache: every resolution
# pays the disk read-verify-decode; warm cache: steady-state LRU hits) and
# writes machine-readable results to BENCH_impute.json for tracking across
# commits.
#
# Usage: scripts/bench.sh [output.json]
#   BENCHTIME=... overrides the per-benchmark budget (default 5x; use e.g.
#   2s for more stable numbers on a quiet machine).
set -eu
cd "$(dirname "$0")/.."

out=${1:-BENCH_impute.json}
benchtime=${BENCHTIME:-5x}
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkPredictor|BenchmarkModelLookup' \
	-benchmem -benchtime "$benchtime" ./internal/core/ | tee "$raw"

{
	printf '{\n'
	printf '  "generated": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
	printf '  "go": "%s",\n' "$(go env GOVERSION)"
	printf '  "commit": "%s",\n' "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
	printf '  "benchtime": "%s",\n' "$benchtime"
	printf '  "benchmarks": [\n'
	awk '
		/^Benchmark/ {
			extra = ""
			for (i = 3; i < NF; i += 2) {
				key = $(i + 1)
				gsub(/[^a-zA-Z0-9_-]/, "_", key)
				extra = extra sprintf(", \"%s\": %s", key, $i)
			}
			if (n++) printf ",\n"
			printf "    {\"name\": \"%s\", \"iterations\": %s%s}", $1, $2, extra
		}
		END { printf "\n" }
	' "$raw"
	printf '  ]\n}\n'
} >"$out"
echo "bench: wrote $out"

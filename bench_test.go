package kamel

// Benchmarks: one testing.B target per paper table/figure, wired to the
// experiment harness in internal/eval at a small fixed scale so the full
// bench suite completes in minutes on one core.  Full-scale runs use
// `go run ./cmd/kamel-bench -exp <id>` (see DESIGN.md's experiment index
// and EXPERIMENTS.md for recorded results).
//
// Benchmark iterations re-run measurement only; the expensive scenario
// materialization and model training happen once per process and are
// excluded from timings via b.ResetTimer.

import (
	"os"
	"sync"
	"testing"

	"kamel/internal/eval"
)

// benchRunner is shared across benchmarks: scenarios and trained systems are
// cached inside, so the first benchmark pays the training cost once.
var (
	benchOnce   sync.Once
	benchShared *eval.Runner
)

func runner(b *testing.B) *eval.Runner {
	b.Helper()
	benchOnce.Do(func() {
		dir, err := os.MkdirTemp("", "kamel-bench-*")
		if err != nil {
			panic(err)
		}
		opts := eval.DefaultOptions()
		opts.Workdir = dir
		opts.Scale = 0.3
		opts.TestN = 2
		opts.TrainSteps = 180
		benchShared = eval.NewRunner(opts)
	})
	return benchShared
}

// benchRows runs fn once per iteration and fails the benchmark on error or
// empty output.
func benchRows(b *testing.B, fn func() ([]eval.Row, error)) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := fn()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

// BenchmarkFig9Sparseness regenerates Fig 9: recall/precision/failure versus
// data sparseness for KAMEL and its competitors.
func BenchmarkFig9Sparseness(b *testing.B) {
	r := runner(b)
	benchRows(b, func() ([]eval.Row, error) {
		return r.RunSparseness([]string{"porto-like"}, []float64{800, 2000})
	})
}

// BenchmarkFig10Threshold regenerates Fig 10: accuracy versus δ.
func BenchmarkFig10Threshold(b *testing.B) {
	r := runner(b)
	benchRows(b, func() ([]eval.Row, error) {
		return r.RunThreshold([]string{"porto-like"}, []float64{10, 50, 100})
	})
}

// BenchmarkFig11Timing regenerates Fig 11: training and imputation time.
func BenchmarkFig11Timing(b *testing.B) {
	r := runner(b)
	benchRows(b, func() ([]eval.Row, error) {
		return r.RunTiming([]string{"porto-like"})
	})
}

// BenchmarkFig12RoadType regenerates Fig 12-I/II: straight versus curved
// segments.
func BenchmarkFig12RoadType(b *testing.B) {
	r := runner(b)
	benchRows(b, func() ([]eval.Row, error) {
		return r.RunRoadType("porto-like", []float64{1000})
	})
}

// BenchmarkFig12GridType regenerates Fig 12-III: hex versus square grids.
func BenchmarkFig12GridType(b *testing.B) {
	r := runner(b)
	benchRows(b, func() ([]eval.Row, error) {
		return r.RunGridType("porto-like", []float64{1000})
	})
}

// BenchmarkFig12TrainSize regenerates Fig 12-IV: training-set size sweep.
func BenchmarkFig12TrainSize(b *testing.B) {
	r := runner(b)
	benchRows(b, func() ([]eval.Row, error) {
		return r.RunTrainSize("porto-like", []float64{1000})
	})
}

// BenchmarkFig12Density regenerates Fig 12-V: sampling-rate sweep.
func BenchmarkFig12Density(b *testing.B) {
	r := runner(b)
	benchRows(b, func() ([]eval.Row, error) {
		return r.RunDensity("porto-like", []float64{1000})
	})
}

// BenchmarkFig12Ablation regenerates Fig 12-VI: module ablations.
func BenchmarkFig12Ablation(b *testing.B) {
	r := runner(b)
	benchRows(b, func() ([]eval.Row, error) {
		return r.RunAblation("porto-like", []float64{1000})
	})
}

// BenchmarkFig3CellSize regenerates Fig 3(d): the cell-size accuracy curve
// via the auto-tuner.
func BenchmarkFig3CellSize(b *testing.B) {
	r := runner(b)
	benchRows(b, func() ([]eval.Row, error) {
		return r.RunCellSize("porto-like", []float64{50, 75, 200})
	})
}

// BenchmarkModelInventory regenerates the §8 model-count report (E13).
func BenchmarkModelInventory(b *testing.B) {
	r := runner(b)
	benchRows(b, func() ([]eval.Row, error) {
		return r.ModelInventory("porto-like")
	})
}

// BenchmarkImputeIterativeVsBeam quantifies the §6 design choice: greedy
// iterative calling versus bidirectional beam search on the same trained
// system.  (The beam is KAMEL's default; see DESIGN.md ablations.)
func BenchmarkImputeIterativeVsBeam(b *testing.B) {
	// This ablation runs at the impute layer via the ablation runner: the
	// "No Multi." variant approximates a single iterative step while the
	// full system uses the beam, so the ablation rows cover the comparison.
	r := runner(b)
	benchRows(b, func() ([]eval.Row, error) {
		return r.RunAblation("porto-like", []float64{800})
	})
}

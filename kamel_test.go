package kamel

import (
	"context"
	"testing"

	"kamel/internal/geo"
	"kamel/internal/roadnet"
	"kamel/internal/trajgen"
)

// fixtureTrajectories simulates a small city's traffic and converts it to
// the public types.
func fixtureTrajectories(t *testing.T) ([]Trajectory, []Trajectory) {
	t.Helper()
	cfg := roadnet.DefaultCityConfig()
	cfg.Width, cfg.Height = 1500, 1500
	net := roadnet.GenerateCity(cfg)
	proj := geo.NewProjection(41.15, -8.61)
	gen := trajgen.DefaultConfig(50)
	gen.GPSNoiseMeters = 3
	trajs, err := trajgen.Generate(net, proj, gen)
	if err != nil {
		t.Fatal(err)
	}
	train, test := trajgen.SplitTrainTest(trajs, 0.8, 1)
	conv := func(in []geo.Trajectory) []Trajectory {
		out := make([]Trajectory, len(in))
		for i, tr := range in {
			out[i] = Trajectory{ID: tr.ID}
			for _, p := range tr.Points {
				out[i].Points = append(out[i].Points, Point{Lat: p.Lat, Lng: p.Lng, Time: p.T})
			}
		}
		return out
	}
	return conv(train), conv(test)
}

func testConfig(t *testing.T) Config {
	cfg := DefaultConfig(t.TempDir())
	cfg.DisablePartitioning = true
	cfg.Hidden, cfg.FFN = 32, 128
	cfg.Train.Steps = 150
	cfg.Train.Batch = 12
	cfg.MaxCalls = 120
	return cfg
}

func TestOpenTrainImpute(t *testing.T) {
	train, test := fixtureTrajectories(t)
	sys, err := Open(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	if err := sys.Train(train); err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.Trajectories != len(train) || st.SingleModels == 0 {
		t.Fatalf("unexpected stats: %+v", st)
	}

	// Sparsify through the public types: drop interior points crudely.
	sparse := Trajectory{ID: test[0].ID}
	for i, p := range test[0].Points {
		if i == 0 || i == len(test[0].Points)-1 || i%60 == 0 {
			sparse.Points = append(sparse.Points, p)
		}
	}
	dense, stats, err := sys.Impute(sparse)
	if err != nil {
		t.Fatal(err)
	}
	if len(dense.Points) <= len(sparse.Points) {
		t.Error("imputation must add points")
	}
	if stats.Segments == 0 {
		t.Error("no segments counted")
	}
	_ = stats.FailureRate()
}

func TestImputeStreamPublic(t *testing.T) {
	train, test := fixtureTrajectories(t)
	sys, err := Open(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.Train(train); err != nil {
		t.Fatal(err)
	}
	in := make(chan Trajectory, 2)
	in <- test[0]
	in <- test[1]
	close(in)
	n := 0
	for res := range sys.ImputeStream(context.Background(), in, 2) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		n++
	}
	if n != 2 {
		t.Errorf("stream returned %d results", n)
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(Trajectory{ID: "empty"}); err == nil {
		t.Error("empty trajectory must be invalid")
	}
	good := Trajectory{ID: "g", Points: []Point{{Lat: 1, Lng: 2, Time: 10}, {Lat: 1.1, Lng: 2, Time: 20}}}
	if err := Validate(good); err != nil {
		t.Errorf("valid trajectory rejected: %v", err)
	}
	bad := Trajectory{ID: "b", Points: []Point{{Time: 20}, {Time: 10}}}
	if err := Validate(bad); err == nil {
		t.Error("backwards time must be invalid")
	}
}

func TestStatsFailureRate(t *testing.T) {
	if (Stats{}).FailureRate() != 0 {
		t.Error("empty stats must report 0")
	}
	if got := (Stats{Segments: 4, Failures: 1}).FailureRate(); got != 0.25 {
		t.Errorf("failure rate %f", got)
	}
}

func TestOpenRejectsBadConfig(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Error("missing workdir must be rejected")
	}
}

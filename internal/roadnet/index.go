package roadnet

import (
	"math"

	"kamel/internal/geo"
)

// bucketIndex is a uniform-grid spatial index over node positions.
type bucketIndex struct {
	cell    float64
	buckets map[[2]int][]int
}

func newBucketIndex(pos []geo.XY, cell float64) *bucketIndex {
	idx := &bucketIndex{cell: cell, buckets: make(map[[2]int][]int)}
	for i, p := range pos {
		k := idx.key(p)
		idx.buckets[k] = append(idx.buckets[k], i)
	}
	return idx
}

func (b *bucketIndex) key(p geo.XY) [2]int {
	return [2]int{int(math.Floor(p.X / b.cell)), int(math.Floor(p.Y / b.cell))}
}

// nearest returns the node index closest to p, or -1 for an empty index.  It
// searches outward ring by ring until a hit is confirmed closer than the
// next unexplored ring could be.
func (b *bucketIndex) nearest(pos []geo.XY, p geo.XY) int {
	if len(pos) == 0 {
		return -1
	}
	center := b.key(p)
	best := -1
	bestD := math.Inf(1)
	for ring := 0; ; ring++ {
		// Once we have a hit, stop when the ring floor distance exceeds it.
		if best >= 0 && float64(ring-1)*b.cell > bestD {
			return best
		}
		scan := func(dx, dy int) {
			k := [2]int{center[0] + dx, center[1] + dy}
			for _, i := range b.buckets[k] {
				if d := pos[i].Dist(p); d < bestD {
					bestD = d
					best = i
				}
			}
		}
		if ring == 0 {
			scan(0, 0)
		} else {
			for d := -ring; d <= ring; d++ {
				scan(d, -ring)
				scan(d, ring)
				if d != -ring && d != ring {
					scan(-ring, d)
					scan(ring, d)
				}
			}
		}
		// Safety: a query point very far outside the data extent would walk
		// many empty rings; a linear scan is cheaper at that point.
		if ring > 512 {
			for i, q := range pos {
				if d := q.Dist(p); d < bestD {
					bestD = d
					best = i
				}
			}
			return best
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// NearestNode returns the index of the node closest to p, or -1 when the
// network is empty.  The first call builds a lazy spatial index; callers must
// not add nodes afterwards.
func (n *Network) NearestNode(p geo.XY) int {
	if len(n.Pos) == 0 {
		return -1
	}
	if n.nodeIndex == nil {
		n.nodeIndex = newBucketIndex(n.Pos, 250)
	}
	return n.nodeIndex.nearest(n.Pos, p)
}

// EdgeRef identifies an undirected edge by its endpoint node indices with
// A < B.
type EdgeRef struct {
	A, B int
}

// edgeIndex is a uniform-grid index over edge bounding boxes for nearest-edge
// queries (used by the map-matching baseline).
type edgeIndex struct {
	cell    float64
	buckets map[[2]int][]EdgeRef
	edges   []EdgeRef
}

func (n *Network) buildEdgeIndex() {
	idx := &edgeIndex{cell: 250, buckets: make(map[[2]int][]EdgeRef)}
	seen := make(map[EdgeRef]bool)
	for a, arcs := range n.Adj {
		for _, arc := range arcs {
			e := EdgeRef{A: a, B: arc.To}
			if e.A > e.B {
				e.A, e.B = e.B, e.A
			}
			if seen[e] {
				continue
			}
			seen[e] = true
			idx.edges = append(idx.edges, e)
			// Register the edge in every bucket its bounding box touches.
			pa, pb := n.Pos[e.A], n.Pos[e.B]
			loX := int(math.Floor(math.Min(pa.X, pb.X) / idx.cell))
			hiX := int(math.Floor(math.Max(pa.X, pb.X) / idx.cell))
			loY := int(math.Floor(math.Min(pa.Y, pb.Y) / idx.cell))
			hiY := int(math.Floor(math.Max(pa.Y, pb.Y) / idx.cell))
			for x := loX; x <= hiX; x++ {
				for y := loY; y <= hiY; y++ {
					k := [2]int{x, y}
					idx.buckets[k] = append(idx.buckets[k], e)
				}
			}
		}
	}
	n.edgeIndex = idx
}

// EdgesNear returns edges whose buckets fall within radius meters of p.  The
// result may contain a few extras beyond the radius (bucket granularity); it
// never misses an edge within it.  Used by the HMM map matcher to gather
// candidate roads per GPS point.
func (n *Network) EdgesNear(p geo.XY, radius float64) []EdgeRef {
	if n.edgeIndex == nil {
		n.buildEdgeIndex()
	}
	idx := n.edgeIndex
	r := int(math.Ceil(radius/idx.cell)) + 1
	center := [2]int{int(math.Floor(p.X / idx.cell)), int(math.Floor(p.Y / idx.cell))}
	var out []EdgeRef
	dedup := make(map[EdgeRef]bool)
	for dx := -r; dx <= r; dx++ {
		for dy := -r; dy <= r; dy++ {
			k := [2]int{center[0] + dx, center[1] + dy}
			for _, e := range idx.buckets[k] {
				if !dedup[e] {
					dedup[e] = true
					out = append(out, e)
				}
			}
		}
	}
	return out
}

// NearestEdge returns the edge closest to p and the distance to it.  Returns
// ok=false for an empty network.
func (n *Network) NearestEdge(p geo.XY) (EdgeRef, float64, bool) {
	if n.edgeIndex == nil {
		n.buildEdgeIndex()
	}
	if len(n.edgeIndex.edges) == 0 {
		return EdgeRef{}, 0, false
	}
	best := EdgeRef{}
	bestD := math.Inf(1)
	for radius := 300.0; ; radius *= 2 {
		for _, e := range n.EdgesNear(p, radius) {
			if d := geo.PointSegmentDist(p, n.Pos[e.A], n.Pos[e.B]); d < bestD {
				bestD = d
				best = e
			}
		}
		if bestD <= radius {
			return best, bestD, true
		}
		if radius > 1e7 { // beyond any plausible city extent
			// Linear fallback for points absurdly far outside the network.
			for _, e := range n.edgeIndex.edges {
				if d := geo.PointSegmentDist(p, n.Pos[e.A], n.Pos[e.B]); d < bestD {
					bestD = d
					best = e
				}
			}
			return best, bestD, true
		}
	}
}

// Package roadnet models road networks and generates synthetic cities.
//
// KAMEL itself never sees a road network — that is the whole point of the
// paper.  This package exists for everything *around* KAMEL: the trajectory
// simulator (internal/trajgen) drives trips over a ground-truth network, the
// map-matching reference baseline (internal/baseline) is allowed to read it,
// and the evaluation harness uses it to classify segments as straight or
// curved (paper §8.4).  It substitutes for the Porto and Jakarta datasets the
// paper evaluates on (see DESIGN.md, substitution table).
package roadnet

import (
	"container/heap"
	"fmt"
	"math"

	"kamel/internal/geo"
)

// Arc is a directed connection to a neighboring node.
type Arc struct {
	To   int     // destination node index
	Dist float64 // length in meters
}

// Network is a road graph embedded in the local planar frame.  All streets
// are represented as chains of short straight edges (tens of meters), so
// curved roads are polylines of dense nodes.  Edges are bidirectional.
type Network struct {
	Pos []geo.XY // node positions
	Adj [][]Arc  // adjacency lists, parallel to Pos

	nodeIndex *bucketIndex
	edgeIndex *edgeIndex
}

// NumNodes returns the number of nodes.
func (n *Network) NumNodes() int { return len(n.Pos) }

// NumEdges returns the number of undirected edges.
func (n *Network) NumEdges() int {
	var arcs int
	for _, a := range n.Adj {
		arcs += len(a)
	}
	return arcs / 2
}

// Bounds returns the MBR of all nodes.
func (n *Network) Bounds() geo.Rect {
	return geo.BoundXY(n.Pos)
}

// AddNode appends a node and returns its index.
func (n *Network) AddNode(p geo.XY) int {
	n.Pos = append(n.Pos, p)
	n.Adj = append(n.Adj, nil)
	return len(n.Pos) - 1
}

// Connect adds a bidirectional edge between a and b (no-op when a == b or
// when the edge already exists).
func (n *Network) Connect(a, b int) {
	if a == b {
		return
	}
	for _, arc := range n.Adj[a] {
		if arc.To == b {
			return
		}
	}
	d := n.Pos[a].Dist(n.Pos[b])
	n.Adj[a] = append(n.Adj[a], Arc{To: b, Dist: d})
	n.Adj[b] = append(n.Adj[b], Arc{To: a, Dist: d})
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	node int
	dist float64
}

type pq []pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

// ShortestPath returns the node sequence of the shortest path from a to b,
// its length in meters, and whether b is reachable from a.
func (n *Network) ShortestPath(a, b int) ([]int, float64, bool) {
	if a < 0 || b < 0 || a >= len(n.Pos) || b >= len(n.Pos) {
		return nil, 0, false
	}
	if a == b {
		return []int{a}, 0, true
	}
	dist := make([]float64, len(n.Pos))
	prev := make([]int, len(n.Pos))
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[a] = 0
	q := &pq{{node: a}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.node == b {
			break
		}
		if it.dist > dist[it.node] {
			continue
		}
		for _, arc := range n.Adj[it.node] {
			nd := it.dist + arc.Dist
			if nd < dist[arc.To] {
				dist[arc.To] = nd
				prev[arc.To] = it.node
				heap.Push(q, pqItem{node: arc.To, dist: nd})
			}
		}
	}
	if math.IsInf(dist[b], 1) {
		return nil, 0, false
	}
	var path []int
	for v := b; v != -1; v = prev[v] {
		path = append(path, v)
	}
	// Reverse in place.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, dist[b], true
}

// PathPolyline converts a node path to its planar polyline.
func (n *Network) PathPolyline(path []int) []geo.XY {
	out := make([]geo.XY, len(path))
	for i, v := range path {
		out[i] = n.Pos[v]
	}
	return out
}

// NetworkDistance returns the shortest-path distance between the nearest
// nodes to two planar points.  The evaluation harness uses it to classify
// trajectory segments as straight or curved (paper §8.4).
func (n *Network) NetworkDistance(a, b geo.XY) (float64, error) {
	na := n.NearestNode(a)
	nb := n.NearestNode(b)
	if na < 0 || nb < 0 {
		return 0, fmt.Errorf("roadnet: empty network")
	}
	_, d, ok := n.ShortestPath(na, nb)
	if !ok {
		return 0, fmt.Errorf("roadnet: nodes %d and %d are disconnected", na, nb)
	}
	// Account for the offsets from the query points to their snap nodes.
	return d + a.Dist(n.Pos[na]) + b.Dist(n.Pos[nb]), nil
}

package roadnet

import (
	"math"

	"kamel/internal/geo"
	"kamel/internal/tensor"
)

// CityConfig controls the procedural city generator.  The defaults produce
// the road features the paper's spatial-constraints discussion illustrates
// (Figure 5): straight grid streets, curved roads, roundabouts, and an
// overpass-style highway that crosses streets without intersecting them.
type CityConfig struct {
	Width, Height float64 // city extent in meters
	BlockSpacing  float64 // distance between parallel grid streets
	SegLen        float64 // node spacing along every street (edge length)
	CurvedRoads   int     // number of sine-shaped roads across the city
	Roundabouts   int     // number of roundabout rings grafted onto the grid
	Overpasses    int     // number of non-intersecting diagonal highways
	Seed          uint64
}

// DefaultCityConfig returns a compact city used across tests and examples:
// 3×3 km, 300 m blocks, 50 m edges.
func DefaultCityConfig() CityConfig {
	return CityConfig{
		Width:        3000,
		Height:       3000,
		BlockSpacing: 300,
		SegLen:       50,
		CurvedRoads:  3,
		Roundabouts:  2,
		Overpasses:   1,
		Seed:         1,
	}
}

// GenerateCity builds a synthetic road network per the configuration.  The
// result is connected: features that could end up isolated are stitched to
// the nearest grid node.
func GenerateCity(cfg CityConfig) *Network {
	if cfg.SegLen <= 0 || cfg.BlockSpacing <= 0 || cfg.Width <= 0 || cfg.Height <= 0 {
		panic("roadnet: city dimensions must be positive")
	}
	rng := tensor.NewRNG(cfg.Seed)
	n := &Network{}

	// Grid streets: nodes every SegLen along every horizontal and vertical
	// street, shared at intersections via a position registry.
	reg := make(map[[2]int64]int) // quantized position -> node
	nodeAt := func(p geo.XY) int {
		k := [2]int64{int64(math.Round(p.X * 8)), int64(math.Round(p.Y * 8))}
		if id, ok := reg[k]; ok {
			return id
		}
		id := n.AddNode(p)
		reg[k] = id
		return id
	}
	addPolyline := func(pts []geo.XY) {
		prev := -1
		for _, p := range pts {
			id := nodeAt(p)
			if prev >= 0 && prev != id {
				n.Connect(prev, id)
			}
			prev = id
		}
	}
	linspace := func(lo, hi, step float64) []float64 {
		var out []float64
		for v := lo; v <= hi+1e-9; v += step {
			out = append(out, v)
		}
		return out
	}

	for _, y := range linspace(0, cfg.Height, cfg.BlockSpacing) {
		var pts []geo.XY
		for _, x := range linspace(0, cfg.Width, cfg.SegLen) {
			pts = append(pts, geo.XY{X: x, Y: y})
		}
		addPolyline(pts)
	}
	for _, x := range linspace(0, cfg.Width, cfg.BlockSpacing) {
		var pts []geo.XY
		for _, y := range linspace(0, cfg.Height, cfg.SegLen) {
			pts = append(pts, geo.XY{X: x, Y: y})
		}
		addPolyline(pts)
	}

	// Curved roads: full-width sine waves with random phase and amplitude,
	// stitched to the grid at both ends.
	for i := 0; i < cfg.CurvedRoads; i++ {
		baseY := cfg.Height * (0.2 + 0.6*rng.Float64())
		amp := cfg.BlockSpacing * (0.8 + 0.8*rng.Float64())
		freq := (1 + rng.Float64()*2) * 2 * math.Pi / cfg.Width
		phase := rng.Float64() * 2 * math.Pi
		var pts []geo.XY
		for _, x := range linspace(0, cfg.Width, cfg.SegLen*0.8) {
			pts = append(pts, geo.XY{X: x, Y: baseY + amp*math.Sin(freq*x+phase)})
		}
		first := len(n.Pos)
		addPolyline(pts)
		stitchToGrid(n, first, cfg.BlockSpacing)
	}

	// Roundabouts: rings of radius ~35 m around random grid intersections,
	// connected to the four street approaches.
	for i := 0; i < cfg.Roundabouts; i++ {
		cx := cfg.BlockSpacing * math.Round(rng.Float64()*(cfg.Width/cfg.BlockSpacing-2)+1)
		cy := cfg.BlockSpacing * math.Round(rng.Float64()*(cfg.Height/cfg.BlockSpacing-2)+1)
		center := geo.XY{X: cx, Y: cy}
		const radius = 35
		const steps = 12
		var ring []int
		for s := 0; s < steps; s++ {
			a := 2 * math.Pi * float64(s) / steps
			ring = append(ring, nodeAt(geo.XY{X: cx + radius*math.Cos(a), Y: cy + radius*math.Sin(a)}))
		}
		for s := range ring {
			n.Connect(ring[s], ring[(s+1)%steps])
		}
		// Connect the ring to the nearest grid nodes at the four compass
		// points just outside the radius.
		for _, d := range []geo.XY{{X: radius + 20}, {X: -radius - 20}, {Y: radius + 20}, {Y: -radius - 20}} {
			approach := n.NearestNodeBefore(len(n.Pos)-steps, center.Add(d))
			if approach >= 0 {
				ringNode := ring[0]
				bd := math.Inf(1)
				for _, r := range ring {
					if dd := n.Pos[r].Dist(n.Pos[approach]); dd < bd {
						bd = dd
						ringNode = r
					}
				}
				n.Connect(approach, ringNode)
			}
		}
	}

	// Overpasses: a diagonal highway with dense nodes but no connections to
	// anything it crosses, except at its two endpoints.
	for i := 0; i < cfg.Overpasses; i++ {
		from := geo.XY{X: 0, Y: cfg.Height * rng.Float64() * 0.3}
		to := geo.XY{X: cfg.Width, Y: cfg.Height * (0.7 + 0.3*rng.Float64())}
		total := from.Dist(to)
		steps := int(total / cfg.SegLen)
		if steps < 2 {
			steps = 2
		}
		var prev int = -1
		first := -1
		for s := 0; s <= steps; s++ {
			t := float64(s) / float64(steps)
			id := n.AddNode(from.Add(to.Sub(from).Scale(t))) // never shared: true overpass
			if prev >= 0 {
				n.Connect(prev, id)
			} else {
				first = id
			}
			prev = id
		}
		// Endpoints join the grid.
		stitchNode(n, first, cfg.BlockSpacing)
		stitchNode(n, prev, cfg.BlockSpacing)
	}

	return n
}

// stitchToGrid connects the first and last node at or after index `from` to
// their nearest earlier node, keeping generated features reachable.
func stitchToGrid(n *Network, from int, maxDist float64) {
	if from >= len(n.Pos) {
		return
	}
	stitchNode(n, from, maxDist)
	stitchNode(n, len(n.Pos)-1, maxDist)
}

// stitchNode connects node id to the nearest node with a smaller index,
// provided one exists within maxDist.
func stitchNode(n *Network, id int, maxDist float64) {
	if id < 0 {
		return
	}
	best := n.NearestNodeBefore(id, n.Pos[id])
	if best >= 0 && n.Pos[best].Dist(n.Pos[id]) <= maxDist {
		n.Connect(best, id)
	}
}

// NearestNodeBefore returns the node with index < limit closest to p, or -1.
// Linear scan — only used during generation, never on query paths.
func (n *Network) NearestNodeBefore(limit int, p geo.XY) int {
	best := -1
	bestD := math.Inf(1)
	if limit > len(n.Pos) {
		limit = len(n.Pos)
	}
	for i := 0; i < limit; i++ {
		if d := n.Pos[i].Dist(p); d < bestD {
			bestD = d
			best = i
		}
	}
	return best
}

package roadnet

import (
	"math"
	"testing"

	"kamel/internal/geo"
)

func smallCity() *Network {
	cfg := DefaultCityConfig()
	cfg.Width = 1200
	cfg.Height = 1200
	cfg.CurvedRoads = 1
	cfg.Roundabouts = 1
	cfg.Overpasses = 1
	return GenerateCity(cfg)
}

func TestGenerateCityBasics(t *testing.T) {
	n := smallCity()
	if n.NumNodes() < 100 {
		t.Fatalf("city has only %d nodes", n.NumNodes())
	}
	if n.NumEdges() < n.NumNodes()-1 {
		t.Errorf("city has %d edges for %d nodes; too sparse", n.NumEdges(), n.NumNodes())
	}
	b := n.Bounds()
	if b.Width() < 1200 || b.Height() < 1200 {
		t.Errorf("bounds %v smaller than configured extent", b)
	}
}

func TestCityIsConnected(t *testing.T) {
	n := smallCity()
	// BFS from node 0 must reach (nearly) every node.  Allow a tiny slack
	// for degenerate stitches.
	visited := make([]bool, n.NumNodes())
	queue := []int{0}
	visited[0] = true
	count := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, arc := range n.Adj[v] {
			if !visited[arc.To] {
				visited[arc.To] = true
				count++
				queue = append(queue, arc.To)
			}
		}
	}
	if float64(count) < 0.99*float64(n.NumNodes()) {
		t.Errorf("only %d/%d nodes reachable from node 0", count, n.NumNodes())
	}
}

func TestGenerateCityDeterministic(t *testing.T) {
	a := smallCity()
	b := smallCity()
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed must generate the same city")
	}
	for i := range a.Pos {
		if a.Pos[i] != b.Pos[i] {
			t.Fatal("node positions differ between identical seeds")
		}
	}
}

func TestShortestPath(t *testing.T) {
	n := smallCity()
	a := n.NearestNode(geo.XY{X: 0, Y: 0})
	b := n.NearestNode(geo.XY{X: 1200, Y: 1200})
	path, dist, ok := n.ShortestPath(a, b)
	if !ok {
		t.Fatal("corners must be connected")
	}
	if path[0] != a || path[len(path)-1] != b {
		t.Error("path endpoints wrong")
	}
	// Path length must be at least the straight-line distance and no more
	// than a loose detour factor.
	straight := n.Pos[a].Dist(n.Pos[b])
	if dist < straight-1e-6 {
		t.Errorf("path dist %f shorter than straight line %f", dist, straight)
	}
	if dist > 3*straight {
		t.Errorf("path dist %f is an implausible detour over %f", dist, straight)
	}
	// Consecutive path nodes must be adjacent.
	for i := 1; i < len(path); i++ {
		adjacent := false
		for _, arc := range n.Adj[path[i-1]] {
			if arc.To == path[i] {
				adjacent = true
			}
		}
		if !adjacent {
			t.Fatalf("path step %d is not an edge", i)
		}
	}
}

func TestShortestPathEdgeCases(t *testing.T) {
	n := smallCity()
	if _, _, ok := n.ShortestPath(-1, 0); ok {
		t.Error("negative node must fail")
	}
	if path, d, ok := n.ShortestPath(5, 5); !ok || d != 0 || len(path) != 1 {
		t.Error("self path must be trivial")
	}
	// Disconnected graph.
	iso := &Network{}
	iso.AddNode(geo.XY{})
	iso.AddNode(geo.XY{X: 100})
	if _, _, ok := iso.ShortestPath(0, 1); ok {
		t.Error("disconnected nodes must be unreachable")
	}
}

func TestNearestNode(t *testing.T) {
	n := smallCity()
	p := geo.XY{X: 600, Y: 600}
	id := n.NearestNode(p)
	if id < 0 {
		t.Fatal("nearest node not found")
	}
	want := math.Inf(1)
	for _, q := range n.Pos {
		if d := q.Dist(p); d < want {
			want = d
		}
	}
	if got := n.Pos[id].Dist(p); math.Abs(got-want) > 1e-9 {
		t.Errorf("NearestNode dist %f, brute force %f", got, want)
	}
	// Far-away query still resolves.
	if far := n.NearestNode(geo.XY{X: 1e6, Y: -1e6}); far < 0 {
		t.Error("far query must still find a node")
	}
	if empty := (&Network{}).NearestNode(p); empty != -1 {
		t.Error("empty network must return -1")
	}
}

func TestNearestEdge(t *testing.T) {
	n := smallCity()
	// A point slightly off a horizontal street must snap to it.
	p := geo.XY{X: 625, Y: 312}
	e, d, ok := n.NearestEdge(p)
	if !ok {
		t.Fatal("edge not found")
	}
	if d > 60 {
		t.Errorf("nearest edge is %fm away; expected a street within 60m", d)
	}
	got := geo.PointSegmentDist(p, n.Pos[e.A], n.Pos[e.B])
	if math.Abs(got-d) > 1e-9 {
		t.Error("returned distance does not match returned edge")
	}
}

func TestNetworkDistanceStraightVsCurved(t *testing.T) {
	n := smallCity()
	// Two points along the same straight street: network distance ≈ Euclid.
	a := geo.XY{X: 300, Y: 300}
	b := geo.XY{X: 800, Y: 300}
	nd, err := n.NetworkDistance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if eu := a.Dist(b); math.Abs(nd-eu) > 30 {
		t.Errorf("straight-street network distance %f vs euclid %f", nd, eu)
	}
	// Diagonal across a block: network distance must exceed Euclid clearly.
	c := geo.XY{X: 300, Y: 600}
	nd2, err := n.NetworkDistance(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if nd2 < a.Dist(c)-1e-6 {
		t.Error("network distance cannot beat the straight line")
	}
}

func TestConnectIdempotent(t *testing.T) {
	n := &Network{}
	a := n.AddNode(geo.XY{})
	b := n.AddNode(geo.XY{X: 10})
	n.Connect(a, b)
	n.Connect(a, b)
	n.Connect(b, a)
	n.Connect(a, a)
	if n.NumEdges() != 1 {
		t.Errorf("expected 1 edge, got %d", n.NumEdges())
	}
	if len(n.Adj[a]) != 1 || n.Adj[a][0].Dist != 10 {
		t.Error("arc distance wrong")
	}
}

func TestPathPolyline(t *testing.T) {
	n := &Network{}
	a := n.AddNode(geo.XY{X: 1})
	b := n.AddNode(geo.XY{X: 2})
	line := n.PathPolyline([]int{a, b})
	if len(line) != 2 || line[1].X != 2 {
		t.Error("polyline wrong")
	}
}

package modelcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeModel is a Sizer with a fixed footprint and an identity.
type fakeModel struct {
	id   int
	size int64
}

func (f *fakeModel) SizeBytes() int64 { return f.size }

func key(i int) Key { return Key{Level: 3, IX: i, IY: 0, Slot: "single", Generation: 1} }

func loadOK(id int, size int64) LoadFunc {
	return func() (Sizer, error) { return &fakeModel{id: id, size: size}, nil }
}

func TestHitMissAccounting(t *testing.T) {
	c := New(1 << 20)
	ctx := context.Background()

	p, err := c.GetOrLoad(ctx, key(1), loadOK(1, 100))
	if err != nil {
		t.Fatal(err)
	}
	p.Release()
	p2, err := c.GetOrLoad(ctx, key(1), func() (Sizer, error) {
		t.Fatal("loader must not run on a hit")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p2.Value().(*fakeModel).id != 1 {
		t.Error("hit returned the wrong model")
	}
	p2.Release()

	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Loads != 1 {
		t.Errorf("hits/misses/loads = %d/%d/%d, want 1/1/1", st.Hits, st.Misses, st.Loads)
	}
	if st.Bytes != 100 || st.Models != 1 {
		t.Errorf("bytes/models = %d/%d, want 100/1", st.Bytes, st.Models)
	}
	if got := st.HitRatio(); got != 0.5 {
		t.Errorf("hit ratio %f, want 0.5", got)
	}
}

func TestLRUEvictionUnderBudget(t *testing.T) {
	c := New(250) // fits two 100-byte models, not three
	ctx := context.Background()
	for i := 1; i <= 3; i++ {
		p, err := c.GetOrLoad(ctx, key(i), loadOK(i, 100))
		if err != nil {
			t.Fatal(err)
		}
		p.Release()
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Models != 2 || st.Bytes != 200 {
		t.Fatalf("evictions/models/bytes = %d/%d/%d, want 1/2/200", st.Evictions, st.Models, st.Bytes)
	}
	// Model 1 (least recently used) was the victim: re-requesting it loads.
	var loaded atomic.Bool
	p, err := c.GetOrLoad(ctx, key(1), func() (Sizer, error) {
		loaded.Store(true)
		return &fakeModel{id: 1, size: 100}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Release()
	if !loaded.Load() {
		t.Error("evicted model must reload on next request")
	}
}

func TestTouchKeepsHotEntryResident(t *testing.T) {
	c := New(250)
	ctx := context.Background()
	mustGet := func(i int) {
		t.Helper()
		p, err := c.GetOrLoad(ctx, key(i), loadOK(i, 100))
		if err != nil {
			t.Fatal(err)
		}
		p.Release()
	}
	mustGet(1)
	mustGet(2)
	mustGet(1) // touch: 1 becomes MRU
	mustGet(3) // must evict 2, not 1
	p, err := c.GetOrLoad(ctx, key(1), func() (Sizer, error) {
		t.Fatal("hot entry was evicted")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Release()
}

func TestPinnedEntriesSurviveEviction(t *testing.T) {
	c := New(150) // fits one model
	ctx := context.Background()
	p1, err := c.GetOrLoad(ctx, key(1), loadOK(1, 100))
	if err != nil {
		t.Fatal(err)
	}
	// While 1 is pinned, loading 2 overflows the budget but must not evict 1.
	p2, err := c.GetOrLoad(ctx, key(2), loadOK(2, 100))
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Models != 2 || st.Evictions != 0 {
		t.Fatalf("pinned entry evicted: %+v", st)
	}
	if p1.Value().(*fakeModel).id != 1 {
		t.Error("pinned value must stay usable")
	}
	// Releasing makes them evictable; the next pressure point trims.
	p1.Release()
	p2.Release()
	if st := c.Stats(); st.Bytes > 150 {
		t.Errorf("release must trim over-budget cache, bytes=%d", st.Bytes)
	}
}

func TestSingleflightDedupesConcurrentLoads(t *testing.T) {
	c := New(1 << 20)
	ctx := context.Background()
	var loaderRuns atomic.Int64
	gate := make(chan struct{})

	const waiters = 16
	var wg sync.WaitGroup
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, err := c.GetOrLoad(ctx, key(7), func() (Sizer, error) {
				loaderRuns.Add(1)
				<-gate
				return &fakeModel{id: 7, size: 10}, nil
			})
			if err != nil {
				errs <- err
				return
			}
			if p.Value().(*fakeModel).id != 7 {
				errs <- errors.New("wrong model")
			}
			p.Release()
		}()
	}
	// Let goroutines pile up on the in-flight load, then open the gate.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := loaderRuns.Load(); got != 1 {
		t.Errorf("loader ran %d times, want 1 (singleflight)", got)
	}
	if st := c.Stats(); st.Loads != 1 {
		t.Errorf("loads = %d, want 1", st.Loads)
	}
}

func TestLoadErrorPropagatesAndRetries(t *testing.T) {
	c := New(1 << 20)
	ctx := context.Background()
	boom := errors.New("disk gone")
	if _, err := c.GetOrLoad(ctx, key(1), func() (Sizer, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if st := c.Stats(); st.LoadErrors != 1 || st.Models != 0 {
		t.Errorf("after failed load: %+v", st)
	}
	// The failed key is not poisoned: the next call retries and succeeds.
	p, err := c.GetOrLoad(ctx, key(1), loadOK(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	p.Release()
}

func TestContextCancelledWhileWaiting(t *testing.T) {
	c := New(1 << 20)
	gate := make(chan struct{})
	go func() {
		p, err := c.GetOrLoad(context.Background(), key(1), func() (Sizer, error) {
			<-gate
			return &fakeModel{id: 1, size: 10}, nil
		})
		if err == nil {
			p.Release()
		}
	}()
	time.Sleep(20 * time.Millisecond) // let the loader claim the key
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.GetOrLoad(ctx, key(1), loadOK(1, 10))
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	close(gate)
}

func TestReleaseIdempotent(t *testing.T) {
	c := New(1 << 20)
	p, err := c.GetOrLoad(context.Background(), key(1), loadOK(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	p.Release()
	p.Release() // second release must not double-decrement pins
	p2, err := c.GetOrLoad(context.Background(), key(1), loadOK(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	p2.Release()
	if st := c.Stats(); st.Models != 1 {
		t.Errorf("models = %d, want 1", st.Models)
	}
}

func TestUnboundedBudgetNeverEvicts(t *testing.T) {
	c := New(0)
	ctx := context.Background()
	for i := 0; i < 50; i++ {
		p, err := c.GetOrLoad(ctx, key(i), loadOK(i, 1<<20))
		if err != nil {
			t.Fatal(err)
		}
		p.Release()
	}
	if st := c.Stats(); st.Evictions != 0 || st.Models != 50 {
		t.Errorf("unbounded cache evicted: %+v", st)
	}
}

func TestConcurrentChurnRace(t *testing.T) {
	c := New(500) // heavy pressure: 5 resident models of 100 bytes
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := (seed*31 + i) % 16
				p, err := c.GetOrLoad(ctx, key(k), loadOK(k, 100))
				if err != nil {
					t.Error(err)
					return
				}
				if p.Value().(*fakeModel).id != k {
					t.Errorf("key %d resolved to model %d", k, p.Value().(*fakeModel).id)
				}
				p.Release()
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes > 500 {
		t.Errorf("cache over budget after churn: %d bytes", st.Bytes)
	}
	if st.Evictions == 0 {
		t.Error("churn over a small budget must evict")
	}
	if st.Hits+st.Misses != 8*200 {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, 8*200)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(1 << 20)
	ctx := context.Background()
	p, _ := c.GetOrLoad(ctx, key(1), loadOK(1, 10))
	if c.Invalidate(key(1)) {
		t.Error("pinned entry must not be invalidated")
	}
	p.Release()
	if !c.Invalidate(key(1)) {
		t.Error("unpinned entry must be invalidated")
	}
	if c.Invalidate(key(1)) {
		t.Error("absent entry reports false")
	}
	if st := c.Stats(); st.Models != 0 || st.Bytes != 0 {
		t.Errorf("after invalidate: %+v", st)
	}
}

func TestKeyString(t *testing.T) {
	got := Key{Level: 2, IX: 1, IY: 3, Slot: "east", Generation: 4}.String()
	want := "L2(1,3)/east.g4"
	if got != want {
		t.Errorf("Key.String() = %q, want %q", got, want)
	}
}

func ExampleCache() {
	c := New(1 << 20)
	p, _ := c.GetOrLoad(context.Background(), Key{Level: 0, Slot: "single", Generation: 1},
		func() (Sizer, error) { return &fakeModel{id: 1, size: 512}, nil })
	defer p.Release()
	fmt.Println(c.Stats().Models)
	// Output: 1
}

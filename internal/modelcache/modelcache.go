// Package modelcache implements the memory half of KAMEL's disk-resident
// model repository (paper §4): a byte-budgeted LRU cache of loaded models.
// The paper keeps per-area BERT models on disk and brings them into memory
// per request; this cache is the bound on how many of them are resident at
// once, so total memory stays fixed no matter how large the deployment area
// (and therefore the model population) grows.
//
// Entries are keyed by (cell, slot, generation) — the identity of one
// immutable generation-stamped model file — and loaded lazily on miss via a
// caller-supplied loader.  Concurrent requests for the same key are
// deduplicated (singleflight): one loader runs, every waiter shares its
// result.  An entry handed out by GetOrLoad is pinned until every holder
// releases it, so eviction can never free a model mid-inference.
package modelcache

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"time"

	"kamel/internal/obs"
)

// Key identifies one immutable model artifact: a pyramid cell, the model
// slot within it, and the repository generation that wrote the file.  A
// rebuilt model gets a new generation and therefore a new cache identity;
// stale generations age out of the cache through normal LRU pressure.
type Key struct {
	Level, IX, IY int
	Slot          string
	Generation    int
}

// String renders the key for logs.
func (k Key) String() string {
	return fmt.Sprintf("L%d(%d,%d)/%s.g%d", k.Level, k.IX, k.IY, k.Slot, k.Generation)
}

// Sizer is the one thing the cache needs from a model: its resident size,
// so occupancy can be charged against the byte budget.
type Sizer interface {
	SizeBytes() int64
}

// LoadFunc materializes a model from disk.  It runs outside the cache lock;
// at most one loader runs per key at a time.
type LoadFunc func() (Sizer, error)

// entry is one cached (or in-flight) model.
type entry struct {
	key   Key
	value Sizer
	size  int64
	pins  int           // holders that must finish before eviction
	elem  *list.Element // position in the LRU list; nil while loading
	done  chan struct{} // closed when the load completes (ok or not)
	err   error         // load error; entry is removed, waiters see this
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	BudgetBytes int64 // configured budget (<= 0: unbounded)
	Bytes       int64 // resident model bytes
	Models      int   // resident model count
	Hits        int64
	Misses      int64
	Evictions   int64
	Loads       int64 // completed loader runs (hits share one load)
	LoadErrors  int64
	LoadNanos   int64 // cumulative wall time spent in loaders
}

// HitRatio returns Hits/(Hits+Misses), or 0 before any traffic.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is a byte-budgeted LRU of loaded models.  All methods are safe for
// concurrent use.
type Cache struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	entries map[Key]*entry
	lru     *list.List // front = most recently used; holds *entry

	hits, misses, evictions, loads, loadErrors, loadNanos int64

	// loadHist, when instrumented, receives every completed loader's wall
	// time — the page-in latency distribution behind cold-cache tails.
	loadHist *obs.Histogram
}

// Instrument registers the cache's occupancy gauges and traffic counters on
// reg and routes load latencies into a histogram there.  The registry reads
// the same counters Stats reports, so /metrics and /v1/stats cannot
// disagree.  Call once, before concurrent use.
func (c *Cache) Instrument(reg *obs.Registry) {
	c.loadHist = reg.Histogram("kamel_modelcache_load_seconds",
		"Wall time to page one model in from disk (read, verify, decode).", nil)
	stat := func(read func(Stats) float64) func() float64 {
		return func() float64 { return read(c.Stats()) }
	}
	reg.GaugeFunc("kamel_modelcache_bytes",
		"Resident model bytes.", stat(func(s Stats) float64 { return float64(s.Bytes) }))
	reg.GaugeFunc("kamel_modelcache_models",
		"Resident model count.", stat(func(s Stats) float64 { return float64(s.Models) }))
	reg.GaugeFunc("kamel_modelcache_budget_bytes",
		"Configured byte budget (<= 0: unbounded).", stat(func(s Stats) float64 { return float64(s.BudgetBytes) }))
	reg.CounterFunc("kamel_modelcache_hits_total",
		"Cache hits.", stat(func(s Stats) float64 { return float64(s.Hits) }))
	reg.CounterFunc("kamel_modelcache_misses_total",
		"Cache misses.", stat(func(s Stats) float64 { return float64(s.Misses) }))
	reg.CounterFunc("kamel_modelcache_evictions_total",
		"Models evicted under budget pressure.", stat(func(s Stats) float64 { return float64(s.Evictions) }))
	reg.CounterFunc("kamel_modelcache_loads_total",
		"Completed loader runs.", stat(func(s Stats) float64 { return float64(s.Loads) }))
	reg.CounterFunc("kamel_modelcache_load_errors_total",
		"Loader runs that failed.", stat(func(s Stats) float64 { return float64(s.LoadErrors) }))
}

// New creates a cache with the given byte budget.  A budget <= 0 disables
// eviction (unbounded residency) — the caller opted out of the bound.
func New(budgetBytes int64) *Cache {
	return &Cache{
		budget:  budgetBytes,
		entries: make(map[Key]*entry),
		lru:     list.New(),
	}
}

// Pin is a lease on a cached model.  The model cannot be evicted until
// Release is called; Release is idempotent.
type Pin struct {
	c    *Cache
	e    *entry
	once sync.Once
}

// Value returns the pinned model.
func (p *Pin) Value() Sizer { return p.e.value }

// Release ends the lease.  The entry stays cached (and becomes evictable
// once its last pin is gone).
func (p *Pin) Release() {
	p.once.Do(func() {
		p.c.mu.Lock()
		p.e.pins--
		p.c.evictLocked()
		p.c.mu.Unlock()
	})
}

// GetOrLoad returns a pinned lease on the model for key, loading it via
// load on a miss.  Concurrent callers for the same key share one loader
// run.  The context only bounds the wait on someone else's in-flight load;
// the loader itself is not cancelled (local disk reads are short and the
// result is useful to the other waiters regardless).
func (c *Cache) GetOrLoad(ctx context.Context, key Key, load LoadFunc) (*Pin, error) {
	for {
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			if e.done == nil { // resident
				e.pins++
				c.lru.MoveToFront(e.elem)
				c.hits++
				c.mu.Unlock()
				return &Pin{c: c, e: e}, nil
			}
			// Someone else is loading it: wait and re-check.
			done := e.done
			c.mu.Unlock()
			select {
			case <-done:
				continue
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		// Miss: claim the load slot for this key.
		e := &entry{key: key, done: make(chan struct{})}
		c.entries[key] = e
		c.misses++
		c.mu.Unlock()

		started := time.Now()
		value, err := load()
		elapsed := time.Since(started).Nanoseconds()
		c.loadHist.Observe(time.Since(started).Seconds())

		c.mu.Lock()
		c.loads++
		c.loadNanos += elapsed
		if err != nil {
			c.loadErrors++
			delete(c.entries, key) // next caller retries the load
			e.err = err
			close(e.done)
			c.mu.Unlock()
			return nil, err
		}
		e.value = value
		e.size = value.SizeBytes()
		e.pins = 1
		e.elem = c.lru.PushFront(e)
		done := e.done
		e.done = nil // resident from here on; waiters re-check under the lock
		c.bytes += e.size
		close(done)
		c.evictLocked()
		c.mu.Unlock()
		return &Pin{c: c, e: e}, nil
	}
}

// evictLocked drops least-recently-used unpinned entries until the cache is
// within budget.  Pinned entries (models serving in-flight imputations) are
// skipped; they become evictable at Release time.
func (c *Cache) evictLocked() {
	if c.budget <= 0 {
		return
	}
	for c.bytes > c.budget {
		victim := c.oldestUnpinnedLocked()
		if victim == nil {
			return // everything over budget is pinned; retry on next Release
		}
		c.lru.Remove(victim.elem)
		delete(c.entries, victim.key)
		c.bytes -= victim.size
		c.evictions++
	}
}

// oldestUnpinnedLocked scans from the LRU tail for an evictable entry.
func (c *Cache) oldestUnpinnedLocked() *entry {
	for el := c.lru.Back(); el != nil; el = el.Prev() {
		if e := el.Value.(*entry); e.pins == 0 {
			return e
		}
	}
	return nil
}

// Invalidate drops the entry for key if it is resident and unpinned.  It
// reports whether an entry was removed.  Pinned or in-flight entries are
// left alone.
func (c *Cache) Invalidate(key Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || e.done != nil || e.pins > 0 {
		return false
	}
	c.lru.Remove(e.elem)
	delete(c.entries, key)
	c.bytes -= e.size
	return true
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	resident := 0
	for _, e := range c.entries {
		if e.done == nil {
			resident++
		}
	}
	return Stats{
		BudgetBytes: c.budget,
		Bytes:       c.bytes,
		Models:      resident,
		Hits:        c.hits,
		Misses:      c.misses,
		Evictions:   c.evictions,
		Loads:       c.loads,
		LoadErrors:  c.loadErrors,
		LoadNanos:   c.loadNanos,
	}
}

package modelcache

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestPinnedModelSurvivesConcurrentEvictionChurn models the sharded serving
// layer's hazard: forwarded requests pin a model on the owning node while
// unrelated traffic churns the cache hard enough to evict everything else.
// The pinned model must never be reloaded, never be invalidated, and never be
// freed out from under its holders — and once the last pin is released the
// cache must settle back under its byte budget.
func TestPinnedModelSurvivesConcurrentEvictionChurn(t *testing.T) {
	c := New(300) // room for three 100-byte models: constant pressure
	ctx := context.Background()

	var hotLoads atomic.Int64
	hotLoad := func() (Sizer, error) {
		hotLoads.Add(1)
		return &fakeModel{id: 0, size: 100}, nil
	}

	// The anchor pin stands in for a long-running forwarded imputation: it
	// holds the hot model for the whole churn phase.
	anchor, err := c.GetOrLoad(ctx, key(0), hotLoad)
	if err != nil {
		t.Fatal(err)
	}
	hot := anchor.Value().(*fakeModel)

	stop := make(chan struct{})
	var churn sync.WaitGroup
	for w := 0; w < 4; w++ {
		churn.Add(1)
		go func(w int) {
			defer churn.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := 1 + (w*97+i)%20
				p, err := c.GetOrLoad(ctx, key(id), loadOK(id, 100))
				if err != nil {
					t.Error(err)
					return
				}
				p.Release()
			}
		}(w)
	}

	// Concurrent short-lived holders (forwarded sub-batches hitting the same
	// model) stack additional pins on top of the anchor.  Every acquisition
	// must be a hit on the very same resident model.
	var holders sync.WaitGroup
	for h := 0; h < 6; h++ {
		holders.Add(1)
		go func() {
			defer holders.Done()
			for n := 0; n < 200; n++ {
				p, err := c.GetOrLoad(ctx, key(0), hotLoad)
				if err != nil {
					t.Error(err)
					return
				}
				if got := p.Value().(*fakeModel); got != hot {
					t.Errorf("pinned model replaced mid-flight: got id %d", got.id)
				}
				if c.Invalidate(key(0)) {
					t.Error("Invalidate removed a pinned model")
				}
				runtime.Gosched()
				p.Release()
			}
		}()
	}
	holders.Wait()
	close(stop)
	churn.Wait()

	if n := hotLoads.Load(); n != 1 {
		t.Errorf("pinned model loaded %d times, want exactly 1", n)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Error("churn produced no evictions — the test exerted no pressure")
	}
	if st.Bytes > st.BudgetBytes {
		t.Errorf("cache over budget after churn: %d > %d bytes", st.Bytes, st.BudgetBytes)
	}

	// Only after the last pin drops does the hot model become collectable.
	anchor.Release()
	if !c.Invalidate(key(0)) {
		t.Error("unpinned model must be invalidatable")
	}
}

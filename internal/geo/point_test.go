package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHaversineKnownDistances(t *testing.T) {
	tests := []struct {
		name string
		a, b Point
		want float64 // meters
		tol  float64
	}{
		{"same point", Point{Lat: 41.15, Lng: -8.61}, Point{Lat: 41.15, Lng: -8.61}, 0, 1e-6},
		{"one degree latitude", Point{Lat: 0, Lng: 0}, Point{Lat: 1, Lng: 0}, 111195, 50},
		{"one degree longitude at equator", Point{Lat: 0, Lng: 0}, Point{Lat: 0, Lng: 1}, 111195, 50},
		{"porto to lisbon", Point{Lat: 41.1579, Lng: -8.6291}, Point{Lat: 38.7223, Lng: -9.1393}, 274000, 5000},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := HaversineMeters(tc.a, tc.b)
			if math.Abs(got-tc.want) > tc.tol {
				t.Errorf("HaversineMeters(%v,%v) = %f, want %f±%f", tc.a, tc.b, got, tc.want, tc.tol)
			}
		})
	}
}

func TestHaversineSymmetric(t *testing.T) {
	f := func(lat1, lng1, lat2, lng2 float64) bool {
		a := Point{Lat: clampLat(lat1), Lng: clampLng(lng1)}
		b := Point{Lat: clampLat(lat2), Lng: clampLng(lng2)}
		d1 := HaversineMeters(a, b)
		d2 := HaversineMeters(b, a)
		return math.Abs(d1-d2) < 1e-6 && d1 >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func clampLat(v float64) float64 { return math.Mod(math.Abs(v), 80) }
func clampLng(v float64) float64 { return math.Mod(v, 179) }

func TestProjectionRoundTrip(t *testing.T) {
	pr := NewProjection(41.15, -8.61)
	f := func(dx, dy float64) bool {
		// Stay within a ~50km box around the origin.
		q := XY{X: math.Mod(dx, 50000), Y: math.Mod(dy, 50000)}
		p := pr.ToLatLng(q)
		back := pr.ToXY(p)
		return back.Dist(q) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProjectionMatchesHaversine(t *testing.T) {
	// Over a city-scale extent the planar distance must agree with the
	// spherical distance to well under a hexagon edge length.
	pr := NewProjection(41.15, -8.61)
	a := Point{Lat: 41.16, Lng: -8.62}
	b := Point{Lat: 41.12, Lng: -8.58}
	planar := pr.ToXY(a).Dist(pr.ToXY(b))
	sphere := HaversineMeters(a, b)
	if math.Abs(planar-sphere) > 0.01*sphere {
		t.Errorf("planar %f vs haversine %f differ by more than 1%%", planar, sphere)
	}
}

func TestAngleDiff(t *testing.T) {
	tests := []struct {
		a, b, want float64
	}{
		{0, 0, 0},
		{0, math.Pi / 2, math.Pi / 2},
		{-math.Pi + 0.1, math.Pi - 0.1, 0.2},
		{0, math.Pi, math.Pi},
		{3 * math.Pi, 0, math.Pi},
	}
	for _, tc := range tests {
		if got := AngleDiff(tc.a, tc.b); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("AngleDiff(%f,%f) = %f, want %f", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestAngleDiffProperties(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Mod(a, 100)
		b = math.Mod(b, 100)
		d := AngleDiff(a, b)
		return d >= 0 && d <= math.Pi+1e-9 && math.Abs(d-AngleDiff(b, a)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXYVectorOps(t *testing.T) {
	a := XY{3, 4}
	b := XY{1, -2}
	if got := a.Sub(b); got != (XY{2, 6}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Add(b); got != (XY{4, 2}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Scale(2); got != (XY{6, 8}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 3-8 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := (XY{0, 1}).Heading(); math.Abs(got-math.Pi/2) > 1e-12 {
		t.Errorf("Heading = %v", got)
	}
}

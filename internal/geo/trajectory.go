package geo

// Trajectory is an ordered sequence of GPS points produced by one moving
// object.  It is the unit of input and output of every KAMEL stage: raw
// trajectories enter Tokenization, and imputed trajectories leave
// Detokenization (paper §2).
type Trajectory struct {
	ID     string
	Points []Point
}

// Clone returns a deep copy of the trajectory.
func (t Trajectory) Clone() Trajectory {
	pts := make([]Point, len(t.Points))
	copy(pts, t.Points)
	return Trajectory{ID: t.ID, Points: pts}
}

// XYs projects every point of the trajectory into the local planar frame.
func (t Trajectory) XYs(pr *Projection) []XY {
	out := make([]XY, len(t.Points))
	for i, p := range t.Points {
		out[i] = pr.ToXY(p)
	}
	return out
}

// MBR returns the minimum bounding rectangle of the trajectory in the local
// planar frame.
func (t Trajectory) MBR(pr *Projection) Rect {
	r := EmptyRect()
	for _, p := range t.Points {
		r = r.ExtendXY(pr.ToXY(p))
	}
	return r
}

// LengthMeters returns the driven length of the trajectory, using spherical
// distances between consecutive points.
func (t Trajectory) LengthMeters() float64 {
	var sum float64
	for i := 0; i+1 < len(t.Points); i++ {
		sum += HaversineMeters(t.Points[i], t.Points[i+1])
	}
	return sum
}

// Duration returns the elapsed time between the first and last points in
// seconds, or 0 when the trajectory has fewer than two points.
func (t Trajectory) Duration() float64 {
	if len(t.Points) < 2 {
		return 0
	}
	return t.Points[len(t.Points)-1].T - t.Points[0].T
}

// Sparsify applies the paper's §8 sparsification protocol: keep the first
// point, then drop every point within `sparseDist` meters (along the
// trajectory's driven path) of the last kept point, keep the next one, and so
// on.  The final point is always kept so that the last gap is bounded.
func (t Trajectory) Sparsify(sparseDist float64) Trajectory {
	idx := t.SparsifyIndices(sparseDist)
	kept := make([]Point, len(idx))
	for i, j := range idx {
		kept[i] = t.Points[j]
	}
	return Trajectory{ID: t.ID, Points: kept}
}

// SparsifyIndices returns the indices Sparsify would keep.  The evaluation
// harness uses them to slice the dense ground truth per sparse gap (§8.4).
func (t Trajectory) SparsifyIndices(sparseDist float64) []int {
	if len(t.Points) == 0 {
		return nil
	}
	if sparseDist <= 0 {
		idx := make([]int, len(t.Points))
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	idx := []int{0}
	var acc float64
	for i := 1; i < len(t.Points); i++ {
		acc += HaversineMeters(t.Points[i-1], t.Points[i])
		if acc >= sparseDist {
			idx = append(idx, i)
			acc = 0
		}
	}
	if last := len(t.Points) - 1; idx[len(idx)-1] != last {
		idx = append(idx, last)
	}
	return idx
}

// SampleEvery keeps one point per `period` seconds of trajectory time,
// emulating a device with a lower sampling rate.  It always keeps the first
// and last points.  Used by the training-density experiment (paper §8.6).
func (t Trajectory) SampleEvery(period float64) Trajectory {
	if len(t.Points) == 0 || period <= 0 {
		return t.Clone()
	}
	kept := []Point{t.Points[0]}
	nextT := t.Points[0].T + period
	for i := 1; i < len(t.Points); i++ {
		if t.Points[i].T >= nextT {
			kept = append(kept, t.Points[i])
			nextT = t.Points[i].T + period
		}
	}
	last := t.Points[len(t.Points)-1]
	if kept[len(kept)-1] != last {
		kept = append(kept, last)
	}
	return Trajectory{ID: t.ID, Points: kept}
}

// Package geo provides the geodetic and planar-geometry primitives that every
// other KAMEL package builds on: GPS points, local metric projections,
// bounding rectangles, trajectories, and point/polyline distance kernels.
//
// KAMEL (paper §3-§7) reasons about trajectories in meters.  All spherical
// coordinates are converted once, through a Projection anchored near the
// dataset, into a local planar frame where Euclidean math is accurate to well
// under the hexagon edge lengths the system uses (tens to hundreds of meters
// over city-scale extents).
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusMeters is the mean Earth radius used by the spherical formulas.
const EarthRadiusMeters = 6371008.8

// Point is a single GPS reading: a WGS84 coordinate plus a timestamp in Unix
// seconds.  The timestamp participates in KAMEL's speed constraints (paper
// §5.1); zero means "no timestamp known".
type Point struct {
	Lat float64 // degrees, positive north
	Lng float64 // degrees, positive east
	T   float64 // Unix seconds; 0 when unknown
}

// String renders the point for logs and error messages.
func (p Point) String() string {
	return fmt.Sprintf("(%.6f,%.6f@%.1f)", p.Lat, p.Lng, p.T)
}

// HaversineMeters returns the great-circle distance between two points.
func HaversineMeters(a, b Point) float64 {
	la1 := a.Lat * math.Pi / 180
	la2 := b.Lat * math.Pi / 180
	dLat := (b.Lat - a.Lat) * math.Pi / 180
	dLng := (b.Lng - a.Lng) * math.Pi / 180
	s1 := math.Sin(dLat / 2)
	s2 := math.Sin(dLng / 2)
	h := s1*s1 + math.Cos(la1)*math.Cos(la2)*s2*s2
	return 2 * EarthRadiusMeters * math.Asin(math.Min(1, math.Sqrt(h)))
}

// XY is a point in a local planar frame, in meters.
type XY struct {
	X float64
	Y float64
}

// Sub returns a - b.
func (a XY) Sub(b XY) XY { return XY{a.X - b.X, a.Y - b.Y} }

// Add returns a + b.
func (a XY) Add(b XY) XY { return XY{a.X + b.X, a.Y + b.Y} }

// Scale returns a scaled by f.
func (a XY) Scale(f float64) XY { return XY{a.X * f, a.Y * f} }

// Dot returns the dot product of a and b.
func (a XY) Dot(b XY) float64 { return a.X*b.X + a.Y*b.Y }

// Norm returns the Euclidean length of the vector a.
func (a XY) Norm() float64 { return math.Hypot(a.X, a.Y) }

// Dist returns the Euclidean distance between a and b.
func (a XY) Dist(b XY) float64 { return math.Hypot(a.X-b.X, a.Y-b.Y) }

// Heading returns the direction of the vector a in radians in (-pi, pi],
// measured counterclockwise from the +X axis.
func (a XY) Heading() float64 { return math.Atan2(a.Y, a.X) }

// Projection is a local equirectangular projection anchored at an origin.
// Within city-scale extents (tens of kilometers) its distance error is
// negligible relative to KAMEL's grid cell sizes.
type Projection struct {
	originLat float64
	originLng float64
	cosLat    float64
}

// NewProjection returns a projection anchored at the given origin.
func NewProjection(originLat, originLng float64) *Projection {
	return &Projection{
		originLat: originLat,
		originLng: originLng,
		cosLat:    math.Cos(originLat * math.Pi / 180),
	}
}

// Origin returns the anchor of the projection.
func (pr *Projection) Origin() (lat, lng float64) { return pr.originLat, pr.originLng }

// ToXY converts a WGS84 point to local planar meters.
func (pr *Projection) ToXY(p Point) XY {
	const degToMeters = EarthRadiusMeters * math.Pi / 180
	return XY{
		X: (p.Lng - pr.originLng) * degToMeters * pr.cosLat,
		Y: (p.Lat - pr.originLat) * degToMeters,
	}
}

// ToLatLng converts local planar meters back to a WGS84 point.  The returned
// point carries a zero timestamp.
func (pr *Projection) ToLatLng(q XY) Point {
	const metersToDeg = 180 / (EarthRadiusMeters * math.Pi)
	return Point{
		Lat: pr.originLat + q.Y*metersToDeg,
		Lng: pr.originLng + q.X*metersToDeg/pr.cosLat,
	}
}

// AngleDiff returns the absolute difference between two angles in radians,
// normalized into [0, pi].
func AngleDiff(a, b float64) float64 {
	d := math.Mod(a-b, 2*math.Pi)
	if d < 0 {
		d += 2 * math.Pi
	}
	if d > math.Pi {
		d = 2*math.Pi - d
	}
	return d
}

package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointSegmentDist(t *testing.T) {
	a, b := XY{0, 0}, XY{10, 0}
	tests := []struct {
		p    XY
		want float64
	}{
		{XY{5, 3}, 3},      // projects inside the segment
		{XY{-4, 3}, 5},     // clamps to a
		{XY{13, 4}, 5},     // clamps to b
		{XY{0, 0}, 0},      // endpoint
		{XY{10, 0}, 0},     // endpoint
		{XY{5, 0}, 0},      // on the segment
		{XY{5, -2.5}, 2.5}, // below
	}
	for _, tc := range tests {
		if got := PointSegmentDist(tc.p, a, b); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("PointSegmentDist(%v) = %f, want %f", tc.p, got, tc.want)
		}
	}
	// Degenerate segment.
	if got := PointSegmentDist(XY{3, 4}, XY{0, 0}, XY{0, 0}); got != 5 {
		t.Errorf("degenerate segment dist = %f, want 5", got)
	}
}

func TestPointPolylineDist(t *testing.T) {
	line := []XY{{0, 0}, {10, 0}, {10, 10}}
	if got := PointPolylineDist(XY{5, 1}, line); got != 1 {
		t.Errorf("dist = %f, want 1", got)
	}
	if got := PointPolylineDist(XY{12, 5}, line); got != 2 {
		t.Errorf("dist = %f, want 2", got)
	}
	if !math.IsInf(PointPolylineDist(XY{0, 0}, nil), 1) {
		t.Error("empty polyline must be infinitely far")
	}
	if got := PointPolylineDist(XY{3, 4}, []XY{{0, 0}}); got != 5 {
		t.Errorf("single-vertex dist = %f, want 5", got)
	}
}

func TestResamplePolyline(t *testing.T) {
	line := []XY{{0, 0}, {10, 0}}
	got := ResamplePolyline(line, 2.5)
	want := []XY{{0, 0}, {2.5, 0}, {5, 0}, {7.5, 0}, {10, 0}}
	if len(got) != len(want) {
		t.Fatalf("got %d points, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i].Dist(want[i]) > 1e-9 {
			t.Errorf("point %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestResamplePolylineAcrossVertices(t *testing.T) {
	// Arc length accumulates across vertices: a bend must not reset the step.
	line := []XY{{0, 0}, {3, 0}, {3, 4}}
	got := ResamplePolyline(line, 2)
	// Total length is 7, so emissions at arc lengths 0,2,4,6 plus the end.
	if len(got) != 5 {
		t.Fatalf("got %d points %v, want 5", len(got), got)
	}
	// The point at arc length 4 is one unit up the vertical leg.
	if got[2].Dist(XY{3, 1}) > 1e-9 {
		t.Errorf("arc-4 point = %v, want (3,1)", got[2])
	}
	if got[len(got)-1].Dist(XY{3, 4}) > 1e-9 {
		t.Errorf("last point = %v, want endpoint", got[len(got)-1])
	}
}

func TestResamplePolylineProperties(t *testing.T) {
	f := func(x1, y1, x2, y2, x3, y3 float64) bool {
		line := []XY{
			{math.Mod(x1, 1000), math.Mod(y1, 1000)},
			{math.Mod(x2, 1000), math.Mod(y2, 1000)},
			{math.Mod(x3, 1000), math.Mod(y3, 1000)},
		}
		out := ResamplePolyline(line, 50)
		if len(out) < 2 {
			return false
		}
		// Every resampled point lies on the original polyline.
		for _, p := range out {
			if PointPolylineDist(p, line) > 1e-6 {
				return false
			}
		}
		// First and last points are preserved.
		return out[0] == line[0] && out[len(out)-1].Dist(line[2]) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPolylineLength(t *testing.T) {
	if got := PolylineLength([]XY{{0, 0}, {3, 0}, {3, 4}}); got != 7 {
		t.Errorf("length = %f, want 7", got)
	}
	if got := PolylineLength([]XY{{1, 1}}); got != 0 {
		t.Errorf("single point length = %f, want 0", got)
	}
}

func TestInsideEllipse(t *testing.T) {
	f1, f2 := XY{-3, 0}, XY{3, 0}
	// Major axis 10 => semi-major 5, semi-minor 4.
	if !InsideEllipse(XY{0, 4}, f1, f2, 10) {
		t.Error("co-vertex must be inside")
	}
	if !InsideEllipse(XY{5, 0}, f1, f2, 10) {
		t.Error("vertex must be inside")
	}
	if InsideEllipse(XY{0, 4.01}, f1, f2, 10) {
		t.Error("point beyond co-vertex must be outside")
	}
	if InsideEllipse(XY{5.01, 0}, f1, f2, 10) {
		t.Error("point beyond vertex must be outside")
	}
}

package geo

import (
	"testing"
	"testing/quick"
)

func TestSparsifyIndicesMatchesSparsify(t *testing.T) {
	tr := eastwardTrajectory(80, 25)
	for _, d := range []float64{0, 100, 300, 1e6} {
		idx := tr.SparsifyIndices(d)
		sp := tr.Sparsify(d)
		if len(idx) != len(sp.Points) {
			t.Fatalf("d=%f: %d indices vs %d points", d, len(idx), len(sp.Points))
		}
		for i, j := range idx {
			if tr.Points[j] != sp.Points[i] {
				t.Fatalf("d=%f: index %d mismatch", d, i)
			}
		}
	}
}

func TestSparsifyIndicesProperties(t *testing.T) {
	tr := eastwardTrajectory(60, 30)
	f := func(raw uint16) bool {
		d := float64(raw%3000) + 1
		idx := tr.SparsifyIndices(d)
		if len(idx) < 2 {
			return false
		}
		// Strictly increasing, starts at 0, ends at last.
		if idx[0] != 0 || idx[len(idx)-1] != len(tr.Points)-1 {
			return false
		}
		for i := 1; i < len(idx); i++ {
			if idx[i] <= idx[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSparsifyIndicesEmpty(t *testing.T) {
	var tr Trajectory
	if got := tr.SparsifyIndices(100); got != nil {
		t.Errorf("empty trajectory must give nil indices, got %v", got)
	}
	one := Trajectory{Points: []Point{{Lat: 1}}}
	if got := one.SparsifyIndices(100); len(got) != 1 || got[0] != 0 {
		t.Errorf("single point must keep itself: %v", got)
	}
}

package geo

import "math"

// PointSegmentDist returns the Euclidean distance from p to the closed segment
// [a, b] in the local planar frame.
func PointSegmentDist(p, a, b XY) float64 {
	ab := b.Sub(a)
	len2 := ab.Dot(ab)
	if len2 == 0 {
		return p.Dist(a)
	}
	t := p.Sub(a).Dot(ab) / len2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return p.Dist(a.Add(ab.Scale(t)))
}

// PointPolylineDist returns the minimum distance from p to the polyline.  It
// returns +Inf for an empty polyline and the point distance for a single
// vertex.
func PointPolylineDist(p XY, line []XY) float64 {
	switch len(line) {
	case 0:
		return math.Inf(1)
	case 1:
		return p.Dist(line[0])
	}
	best := math.Inf(1)
	for i := 0; i+1 < len(line); i++ {
		if d := PointSegmentDist(p, line[i], line[i+1]); d < best {
			best = d
		}
	}
	return best
}

// PolylineLength returns the total length of the polyline in meters.
func PolylineLength(line []XY) float64 {
	var sum float64
	for i := 0; i+1 < len(line); i++ {
		sum += line[i].Dist(line[i+1])
	}
	return sum
}

// ResamplePolyline walks the polyline and emits one point every `step` meters
// of arc length, starting at the first vertex and always including the last
// vertex.  It is the discretization the paper's recall/precision metrics use
// ("placing points P as one point every max_gap distance", §8).  A polyline
// with fewer than two vertices is returned unchanged (copied).
func ResamplePolyline(line []XY, step float64) []XY {
	if len(line) < 2 || step <= 0 {
		out := make([]XY, len(line))
		copy(out, line)
		return out
	}
	out := []XY{line[0]}
	carry := step // distance remaining until the next emission
	for i := 0; i+1 < len(line); i++ {
		a, b := line[i], line[i+1]
		segLen := a.Dist(b)
		pos := 0.0
		for segLen-pos >= carry {
			pos += carry
			t := pos / segLen
			out = append(out, a.Add(b.Sub(a).Scale(t)))
			carry = step
		}
		carry -= segLen - pos
	}
	last := line[len(line)-1]
	if out[len(out)-1].Dist(last) > 1e-9 {
		out = append(out, last)
	}
	return out
}

// InsideEllipse reports whether p lies inside (or on) the ellipse whose foci
// are f1 and f2 and whose major-axis length (the maximum total distance from
// the foci) is sum.  This is the speed-constraint area of paper §5.1.
func InsideEllipse(p, f1, f2 XY, sum float64) bool {
	return p.Dist(f1)+p.Dist(f2) <= sum
}

package geo

import (
	"math"
	"testing"
)

// eastwardTrajectory builds a straight trajectory heading east with one point
// every stepMeters, one per second.
func eastwardTrajectory(n int, stepMeters float64) Trajectory {
	pr := NewProjection(41.15, -8.61)
	pts := make([]Point, n)
	for i := range pts {
		p := pr.ToLatLng(XY{X: float64(i) * stepMeters, Y: 0})
		p.T = float64(i)
		pts[i] = p
	}
	return Trajectory{ID: "east", Points: pts}
}

func TestTrajectoryLengthAndDuration(t *testing.T) {
	tr := eastwardTrajectory(11, 100)
	if got := tr.LengthMeters(); math.Abs(got-1000) > 1 {
		t.Errorf("LengthMeters = %f, want ~1000", got)
	}
	if got := tr.Duration(); got != 10 {
		t.Errorf("Duration = %f, want 10", got)
	}
	if (Trajectory{}).Duration() != 0 {
		t.Error("empty trajectory duration must be 0")
	}
}

func TestSparsify(t *testing.T) {
	tr := eastwardTrajectory(101, 10) // 1km long, points every 10m
	sp := tr.Sparsify(250)
	// Expect kept points roughly every 250m plus the forced final point.
	if len(sp.Points) < 5 || len(sp.Points) > 6 {
		t.Fatalf("Sparsify kept %d points, want 5 or 6", len(sp.Points))
	}
	if sp.Points[0] != tr.Points[0] {
		t.Error("first point must be kept")
	}
	if sp.Points[len(sp.Points)-1] != tr.Points[len(tr.Points)-1] {
		t.Error("last point must be kept")
	}
	// Every gap except the forced final one must honor the sparse distance.
	for i := 1; i < len(sp.Points)-1; i++ {
		d := HaversineMeters(sp.Points[i-1], sp.Points[i])
		if d < 249 {
			t.Errorf("gap %d is %fm, want >= 250m", i, d)
		}
	}
}

func TestSparsifyNoopCases(t *testing.T) {
	tr := eastwardTrajectory(5, 10)
	if got := tr.Sparsify(0); len(got.Points) != 5 {
		t.Error("sparseDist<=0 must be a no-op")
	}
	empty := Trajectory{ID: "e"}
	if got := empty.Sparsify(100); len(got.Points) != 0 {
		t.Error("empty trajectory must stay empty")
	}
}

func TestSampleEvery(t *testing.T) {
	tr := eastwardTrajectory(61, 10) // one point per second, 60s long
	s := tr.SampleEvery(15)
	// Keep t=0,15,30,45,60 => 5 points.
	if len(s.Points) != 5 {
		t.Fatalf("SampleEvery kept %d points, want 5: %v", len(s.Points), s.Points)
	}
	for i := 1; i < len(s.Points); i++ {
		if dt := s.Points[i].T - s.Points[i-1].T; dt < 15 {
			t.Errorf("interval %d is %fs, want >= 15s", i, dt)
		}
	}
	if s.Points[len(s.Points)-1].T != 60 {
		t.Error("last point must be kept")
	}
}

func TestTrajectoryMBRAndXYs(t *testing.T) {
	pr := NewProjection(41.15, -8.61)
	tr := eastwardTrajectory(11, 100)
	r := tr.MBR(pr)
	if math.Abs(r.Width()-1000) > 1 {
		t.Errorf("MBR width = %f, want ~1000", r.Width())
	}
	if r.Height() > 1 {
		t.Errorf("MBR height = %f, want ~0", r.Height())
	}
	xys := tr.XYs(pr)
	if len(xys) != 11 {
		t.Fatalf("XYs returned %d points", len(xys))
	}
	if math.Abs(xys[10].X-1000) > 1 {
		t.Errorf("last X = %f, want ~1000", xys[10].X)
	}
}

func TestClone(t *testing.T) {
	tr := eastwardTrajectory(3, 10)
	cl := tr.Clone()
	cl.Points[0].Lat = 0
	if tr.Points[0].Lat == 0 {
		t.Error("Clone must not share backing storage")
	}
}

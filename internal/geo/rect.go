package geo

import "math"

// Rect is an axis-aligned rectangle in the local planar frame (meters).
// It is the minimum-bounding-rectangle currency of the trajectory store and
// the pyramid model repository (paper §4).
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// EmptyRect returns the identity element for Union: a rectangle that contains
// nothing and leaves any rectangle unchanged when united with it.
func EmptyRect() Rect {
	return Rect{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
}

// IsEmpty reports whether the rectangle contains no points.
func (r Rect) IsEmpty() bool { return r.MinX > r.MaxX || r.MinY > r.MaxY }

// Width returns the X extent of the rectangle, or 0 if empty.
func (r Rect) Width() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.MaxX - r.MinX
}

// Height returns the Y extent of the rectangle, or 0 if empty.
func (r Rect) Height() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.MaxY - r.MinY
}

// Center returns the midpoint of the rectangle.
func (r Rect) Center() XY { return XY{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2} }

// ContainsXY reports whether the point q lies inside r (borders inclusive).
func (r Rect) ContainsXY(q XY) bool {
	return q.X >= r.MinX && q.X <= r.MaxX && q.Y >= r.MinY && q.Y <= r.MaxY
}

// ContainsRect reports whether s lies fully inside r (borders inclusive).
// An empty s is contained in everything.
func (r Rect) ContainsRect(s Rect) bool {
	if s.IsEmpty() {
		return true
	}
	return s.MinX >= r.MinX && s.MaxX <= r.MaxX && s.MinY >= r.MinY && s.MaxY <= r.MaxY
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX && r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		MinX: math.Min(r.MinX, s.MinX),
		MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX),
		MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// ExtendXY returns the smallest rectangle containing both r and the point q.
func (r Rect) ExtendXY(q XY) Rect {
	return r.Union(Rect{MinX: q.X, MinY: q.Y, MaxX: q.X, MaxY: q.Y})
}

// Expand grows the rectangle by m meters on every side.  Negative m shrinks
// it; shrinking past empty yields an empty rectangle.
func (r Rect) Expand(m float64) Rect {
	if r.IsEmpty() {
		return r
	}
	return Rect{MinX: r.MinX - m, MinY: r.MinY - m, MaxX: r.MaxX + m, MaxY: r.MaxY + m}
}

// BoundXY returns the MBR of a set of planar points.
func BoundXY(pts []XY) Rect {
	r := EmptyRect()
	for _, p := range pts {
		r = r.ExtendXY(p)
	}
	return r
}

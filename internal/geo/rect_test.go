package geo

import (
	"testing"
	"testing/quick"
)

func TestEmptyRect(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() {
		t.Fatal("EmptyRect is not empty")
	}
	if e.Width() != 0 || e.Height() != 0 {
		t.Error("empty rect must have zero extent")
	}
	if e.ContainsXY(XY{0, 0}) {
		t.Error("empty rect must contain nothing")
	}
	r := Rect{0, 0, 1, 1}
	if got := e.Union(r); got != r {
		t.Errorf("EmptyRect.Union(r) = %v, want %v", got, r)
	}
	if got := r.Union(e); got != r {
		t.Errorf("r.Union(EmptyRect) = %v, want %v", got, r)
	}
}

func TestRectContainment(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	tests := []struct {
		p    XY
		want bool
	}{
		{XY{5, 5}, true},
		{XY{0, 0}, true},   // border inclusive
		{XY{10, 10}, true}, // border inclusive
		{XY{-0.1, 5}, false},
		{XY{5, 10.1}, false},
	}
	for _, tc := range tests {
		if got := r.ContainsXY(tc.p); got != tc.want {
			t.Errorf("ContainsXY(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if !r.ContainsRect(Rect{1, 1, 9, 9}) {
		t.Error("inner rect should be contained")
	}
	if r.ContainsRect(Rect{1, 1, 11, 9}) {
		t.Error("overflowing rect should not be contained")
	}
	if !r.ContainsRect(EmptyRect()) {
		t.Error("empty rect is contained in everything")
	}
}

func TestRectIntersects(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	if !r.Intersects(Rect{5, 5, 15, 15}) {
		t.Error("overlapping rects must intersect")
	}
	if !r.Intersects(Rect{10, 10, 20, 20}) {
		t.Error("touching rects must intersect (closed rectangles)")
	}
	if r.Intersects(Rect{11, 11, 20, 20}) {
		t.Error("disjoint rects must not intersect")
	}
	if r.Intersects(EmptyRect()) {
		t.Error("nothing intersects the empty rect")
	}
}

func TestRectExpand(t *testing.T) {
	r := Rect{0, 0, 10, 10}.Expand(5)
	if r != (Rect{-5, -5, 15, 15}) {
		t.Errorf("Expand(5) = %v", r)
	}
	if EmptyRect().Expand(100).IsEmpty() != true {
		t.Error("expanding an empty rect must keep it empty")
	}
}

func TestUnionProperties(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		r := BoundXY([]XY{{ax, ay}, {bx, by}})
		s := BoundXY([]XY{{cx, cy}, {dx, dy}})
		u := r.Union(s)
		// Union contains both operands and is commutative.
		return u.ContainsRect(r) && u.ContainsRect(s) && u == s.Union(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoundXY(t *testing.T) {
	r := BoundXY([]XY{{1, 2}, {-3, 7}, {4, -1}})
	want := Rect{-3, -1, 4, 7}
	if r != want {
		t.Errorf("BoundXY = %v, want %v", r, want)
	}
	if !BoundXY(nil).IsEmpty() {
		t.Error("BoundXY(nil) must be empty")
	}
}

package pyramid

import (
	"strings"
	"testing"

	"kamel/internal/fsx"
	"kamel/internal/geo"
	"kamel/internal/store"
)

// buildTestRepo ingests east-walking trajectories so the repo holds models
// at several levels, then returns it with the store.
func buildTestRepo(t *testing.T) (*Repo, *store.Store) {
	t.Helper()
	st, _ := store.Open(t.TempDir(), geo.NewProjection(41.15, -8.61))
	t.Cleanup(func() { st.Close() })
	r, _ := New(testConfig())
	fill(t, st, 100, 100, 20, 10)
	var batch []store.Traj
	st.All(func(tr store.Traj) bool { batch = append(batch, tr); return true })
	var id int32
	err := r.Ingest(st, batch, func(region geo.Rect, trajs []store.Traj) (Handle, ModelMeta, error) {
		id++
		return &fakeHandle{id: id}, ModelMeta{Tokens: len(trajs) * 10}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return r, st
}

func TestIndexMirrorsRepoLookup(t *testing.T) {
	r, _ := buildTestRepo(t)
	ix := r.Index()

	s1, n1 := r.NumModels()
	s2, n2 := ix.NumModels()
	if s1 != s2 || n1 != n2 {
		t.Errorf("model counts diverge: repo %d/%d, index %d/%d", s1, n1, s2, n2)
	}

	mbr := geo.Rect{MinX: 110, MinY: 100, MaxX: 250, MaxY: 110}
	h, cover, ok := r.Lookup(mbr)
	ref, cover2, ok2 := ix.Lookup(mbr)
	if !ok || !ok2 {
		t.Fatalf("lookup ok mismatch: repo=%v index=%v", ok, ok2)
	}
	if cover != cover2 {
		t.Errorf("coverage mismatch: %v vs %v", cover, cover2)
	}
	if ref.Handle != h {
		t.Error("index ref must carry the resident handle")
	}
	if ref.File != "" {
		t.Errorf("never-persisted model has file %q, want none", ref.File)
	}
}

func TestIndexIsImmutableSnapshot(t *testing.T) {
	r, st := buildTestRepo(t)
	ix := r.Index()
	before, _ := ix.NumModels()

	// Mutate the repo after snapshotting: re-ingest bumps versions and
	// reassigns handles.
	var batch []store.Traj
	st.All(func(tr store.Traj) bool { batch = append(batch, tr); return true })
	err := r.Ingest(st, batch, func(region geo.Rect, trajs []store.Traj) (Handle, ModelMeta, error) {
		return &fakeHandle{id: 99}, ModelMeta{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	after, _ := ix.NumModels()
	if before != after {
		t.Error("snapshot changed after repo mutation")
	}
	ref, _, ok := ix.Lookup(geo.Rect{MinX: 110, MinY: 100, MaxX: 250, MaxY: 110})
	if !ok || ref.Handle.(*fakeHandle).id == 99 {
		t.Error("snapshot must keep the pre-mutation handle")
	}
}

func TestCommitIncremental(t *testing.T) {
	r, st := buildTestRepo(t)
	fsys := fsx.OS()
	dir := t.TempDir()

	gen, err := r.CommitFS(fsys, dir, fakeCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Errorf("first commit generation %d, want 1", gen)
	}
	if r.Generation() != 1 {
		t.Errorf("repo generation %d, want 1", r.Generation())
	}

	// Nothing dirty: a second commit writes no model files, only carries
	// references forward.
	files1 := modelFiles(t, fsys, dir)
	gen, err = r.CommitFS(fsys, dir, fakeCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 {
		t.Errorf("second commit generation %d, want 2", gen)
	}
	files2 := modelFiles(t, fsys, dir)
	if len(files1) != len(files2) {
		t.Fatalf("file count changed on no-op commit: %d -> %d", len(files1), len(files2))
	}
	for f := range files1 {
		if !files2[f] {
			t.Errorf("file %s not carried forward", f)
		}
	}

	// Rebuild one cell: only its files gain the new generation.
	var batch []store.Traj
	st.All(func(tr store.Traj) bool { batch = append(batch, tr); return true })
	err = r.Ingest(st, batch, func(region geo.Rect, trajs []store.Traj) (Handle, ModelMeta, error) {
		return &fakeHandle{id: 42}, ModelMeta{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err = r.CommitFS(fsys, dir, fakeCodec{}); err != nil {
		t.Fatal(err)
	}
	var g3 int
	for f := range modelFiles(t, fsys, dir) {
		if strings.Contains(f, ".g000003.") {
			g3++
		}
	}
	if g3 == 0 {
		t.Error("rebuild must produce generation-3 files")
	}
}

func modelFiles(t *testing.T, fsys fsx.FS, dir string) map[string]bool {
	t.Helper()
	out := make(map[string]bool)
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "model-") {
			out[e.Name()] = true
		}
	}
	return out
}

func TestLoadIndexLazy(t *testing.T) {
	r, _ := buildTestRepo(t)
	fsys := fsx.OS()
	dir := t.TempDir()
	if _, err := r.CommitFS(fsys, dir, fakeCodec{}); err != nil {
		t.Fatal(err)
	}

	lr, report, err := LoadIndexFS(fsys, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Quarantined) != 0 {
		t.Fatalf("unexpected quarantine: %+v", report.Quarantined)
	}
	s1, n1 := r.NumModels()
	s2, n2 := lr.NumModels()
	if s1 != s2 || n1 != n2 {
		t.Errorf("model counts diverge after lazy load: %d/%d vs %d/%d", s1, n1, s2, n2)
	}
	// No handles are resident; every slot is a file reference.
	lr.Entries(func(e *Entry) {
		if e.Single != nil || e.East != nil || e.South != nil {
			t.Errorf("cell %s has a resident handle after lazy load", e.Key)
		}
	})

	// Resolving a reference through ReadModelFS decodes the model.
	ix := lr.Index()
	ref, _, ok := ix.Lookup(geo.Rect{MinX: 110, MinY: 100, MaxX: 250, MaxY: 110})
	if !ok {
		t.Fatal("index lookup failed after lazy load")
	}
	if ref.Handle != nil {
		t.Error("lazy-loaded ref must not carry a handle")
	}
	if ref.File == "" || ref.Gen == 0 {
		t.Errorf("ref missing file identity: %+v", ref)
	}
	h, err := ReadModelFS(fsys, dir, FileRef{Name: ref.File, Gen: ref.Gen}, fakeCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if _, isFake := h.(*fakeHandle); !isFake {
		t.Error("decoded model has wrong type")
	}
}

func TestLoadIndexQuarantinesCorruptFile(t *testing.T) {
	r, _ := buildTestRepo(t)
	fsys := fsx.OS()
	dir := t.TempDir()
	if _, err := r.CommitFS(fsys, dir, fakeCodec{}); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in one model file.
	var victim string
	for f := range modelFiles(t, fsys, dir) {
		victim = f
		break
	}
	corruptFile(t, fsys, dir, victim)

	lr, report, err := LoadIndexFS(fsys, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Quarantined) != 1 || report.Quarantined[0].File != victim {
		t.Fatalf("quarantine report %+v, want exactly %s", report.Quarantined, victim)
	}
	if lr.QuarantinedModels() != 1 {
		t.Errorf("QuarantinedModels = %d, want 1", lr.QuarantinedModels())
	}
	if ix := lr.Index(); ix.QuarantinedModels() != 1 {
		t.Errorf("index QuarantinedModels = %d, want 1", ix.QuarantinedModels())
	}
}

func corruptFile(t *testing.T, fsys fsx.FS, dir, name string) {
	t.Helper()
	path := dir + "/" + name
	buf, err := fsx.ReadFile(fsys, path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0xFF
	f, err := fsys.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(buf); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDropHandles(t *testing.T) {
	r, _ := buildTestRepo(t)
	fsys := fsx.OS()
	dir := t.TempDir()

	// Before any commit, DropHandles must keep everything (no refs yet).
	s0, n0 := r.NumModels()
	r.DropHandles()
	if s1, n1 := r.NumModels(); s1 != s0 || n1 != n0 {
		t.Fatalf("DropHandles before commit lost models: %d/%d -> %d/%d", s0, n0, s1, n1)
	}

	if _, err := r.CommitFS(fsys, dir, fakeCodec{}); err != nil {
		t.Fatal(err)
	}
	r.DropHandles()
	if s1, n1 := r.NumModels(); s1 != s0 || n1 != n0 {
		t.Errorf("DropHandles after commit lost models: %d/%d -> %d/%d", s0, n0, s1, n1)
	}
	r.Entries(func(e *Entry) {
		if e.Single != nil || e.East != nil || e.South != nil {
			t.Errorf("cell %s still holds a handle after DropHandles", e.Key)
		}
	})
}

func TestRootRef(t *testing.T) {
	r, _ := buildTestRepo(t)
	ix := r.Index()
	ref, ok := ix.RootRef()
	if !ok {
		t.Fatal("populated index must have a root model")
	}
	// buildTestRepo's data reaches level 1 (the shallowest maintained level).
	if ref.Key.Level != 1 {
		t.Errorf("root ref at level %d, want 1", ref.Key.Level)
	}

	empty, _ := New(testConfig())
	if _, ok := empty.Index().RootRef(); ok {
		t.Error("empty index must have no root ref")
	}
}

func TestParseGen(t *testing.T) {
	cases := []struct {
		name    string
		gen     int
		stamped bool
	}{
		{"model-3-0-0-single.g000042.bin", 42, true},
		{"model-3-0-0-single.bin", 0, false},
		{"model-0-0-0-east.g000001.bin", 1, true},
		{"garbage", 0, false},
		{"model-1-0-0-south.g-12.bin", 0, false},
	}
	for _, c := range cases {
		gen, stamped := parseGen(c.name)
		if gen != c.gen || stamped != c.stamped {
			t.Errorf("parseGen(%q) = (%d, %v), want (%d, %v)", c.name, gen, stamped, c.gen, c.stamped)
		}
	}
}

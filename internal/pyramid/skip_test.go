package pyramid

import (
	"fmt"
	"testing"

	"kamel/internal/geo"
	"kamel/internal/store"
)

// TestIngestRespectsErrSkip: a builder that declines must leave the cell
// model-less without aborting maintenance, and the decline must not be
// retried within the same ingest.
func TestIngestRespectsErrSkip(t *testing.T) {
	st, _ := store.Open(t.TempDir(), geo.NewProjection(41.15, -8.61))
	defer st.Close()
	r, _ := New(testConfig())
	fill(t, st, 100, 100, 20, 10)
	var batch []store.Traj
	st.All(func(tr store.Traj) bool { batch = append(batch, tr); return true })

	asked := map[string]int{}
	err := r.Ingest(st, batch, func(region geo.Rect, trajs []store.Traj) (Handle, ModelMeta, error) {
		key := fmt.Sprintf("%v", region)
		asked[key]++
		return nil, ModelMeta{}, ErrSkip
	})
	if err != nil {
		t.Fatalf("ErrSkip must not abort ingest: %v", err)
	}
	single, neighbor := r.NumModels()
	if single != 0 || neighbor != 0 {
		t.Errorf("declined builds still produced models: %d/%d", single, neighbor)
	}
	for key, n := range asked {
		if n > 1 {
			t.Errorf("region %s asked %d times within one ingest", key, n)
		}
	}
	// Lookups must miss cleanly.
	if _, _, ok := r.Lookup(geo.Rect{MinX: 110, MinY: 100, MaxX: 250, MaxY: 110}); ok {
		t.Error("lookup hit despite universal decline")
	}
}

// TestIngestMixedSkip: declining deep cells must not prevent an ancestor
// from building.
func TestIngestMixedSkip(t *testing.T) {
	st, _ := store.Open(t.TempDir(), geo.NewProjection(41.15, -8.61))
	defer st.Close()
	r, _ := New(testConfig())
	fill(t, st, 100, 100, 20, 10)
	var batch []store.Traj
	st.All(func(tr store.Traj) bool { batch = append(batch, tr); return true })

	err := r.Ingest(st, batch, func(region geo.Rect, trajs []store.Traj) (Handle, ModelMeta, error) {
		// Decline anything smaller than a level-1 cell (2000m).
		if region.Width() < 1999 {
			return nil, ModelMeta{}, ErrSkip
		}
		return &fakeHandle{id: 1}, ModelMeta{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := r.Entry(CellKey{Level: 1, IX: 0, IY: 0}); !ok || e.Single == nil {
		t.Error("level-1 model should have been built despite deep declines")
	}
	if e, ok := r.Entry(CellKey{Level: 3, IX: 0, IY: 0}); ok && e.Single != nil {
		t.Error("declined leaf must stay model-less")
	}
}

package pyramid

import (
	"encoding/binary"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kamel/internal/fsx"
	"kamel/internal/geo"
	"kamel/internal/store"
)

// ancestorRepo builds a repo with single-cell models at levels 1, 2, and 3
// over cell (0,0) — the fixture the degradation tests quarantine leaves of.
func ancestorRepo(t *testing.T) *Repo {
	t.Helper()
	st, err := store.Open(t.TempDir(), geo.NewProjection(41.15, -8.61))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	r, _ := New(testConfig())
	fill(t, st, 100, 100, 20, 10) // 200 tokens: clears levels 1-3 thresholds
	var batch []store.Traj
	st.All(func(tr store.Traj) bool { batch = append(batch, tr); return true })
	var next int32
	err = r.Ingest(st, batch, func(region geo.Rect, trajs []store.Traj) (Handle, ModelMeta, error) {
		next++
		return &fakeHandle{id: next}, ModelMeta{Tokens: 200}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, level := range []int{1, 2, 3} {
		if e, ok := r.Entry(CellKey{Level: level, IX: 0, IY: 0}); !ok || e.Single == nil {
			t.Fatalf("fixture: no model at level %d", level)
		}
	}
	return r
}

// leafQuery lies inside leaf (0,0) and is served by its single-cell model
// when healthy.
var leafQuery = geo.Rect{MinX: 110, MinY: 100, MaxX: 250, MaxY: 110}

// verifyLoadable loads dir and checks it matches the reference repo.
func verifyLoadable(t *testing.T, dir string, ref *Repo) {
	t.Helper()
	r2, rep, err := LoadFS(fsx.OS(), dir, fakeCodec{})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(rep.Quarantined) != 0 {
		t.Fatalf("unexpected quarantine: %+v", rep.Quarantined)
	}
	s1, n1 := ref.NumModels()
	s2, n2 := r2.NumModels()
	if s1 != s2 || n1 != n2 {
		t.Fatalf("model counts %d/%d, want %d/%d", s2, n2, s1, n1)
	}
	if _, _, ok := r2.Lookup(leafQuery); !ok {
		t.Fatal("loaded repo misses the leaf lookup")
	}
}

// TestFaultSaveKillPoints interrupts Repo.Save at every injected write
// (clean and torn) and asserts the previous repository version stays fully
// loadable after each: the old manifest wins until the atomic commit.
func TestFaultSaveKillPoints(t *testing.T) {
	r := ancestorRepo(t)
	for _, torn := range []bool{false, true} {
		dir := t.TempDir()
		// Generation 1: a committed baseline to fall back to.
		if err := r.SaveFS(fsx.OS(), dir, fakeCodec{}); err != nil {
			t.Fatal(err)
		}
		const maxOps = 10000
		completed := false
		for n := 1; n <= maxOps; n++ {
			ff := fsx.NewFault(fsx.OS())
			ff.FailAt = n
			ff.Torn = torn
			err := r.SaveFS(ff, dir, fakeCodec{})
			if err == nil {
				// FailAt landed beyond the save's op sequence (only GC ops
				// remained, which are best-effort): the sweep is done.
				completed = true
				break
			}
			verifyLoadable(t, dir, r)
		}
		if !completed {
			t.Fatalf("torn=%v: save still failing after %d kill points", torn, maxOps)
		}
		// And the final, uninterrupted save is the committed state.
		verifyLoadable(t, dir, r)
	}
}

// TestFaultSaveNoSpace checks ENOSPC during save surfaces as an error while
// the previous version stays loadable.
func TestFaultSaveNoSpace(t *testing.T) {
	r := ancestorRepo(t)
	dir := t.TempDir()
	if err := r.SaveFS(fsx.OS(), dir, fakeCodec{}); err != nil {
		t.Fatal(err)
	}
	ff := fsx.NewFault(fsx.OS())
	ff.FailAt = 4
	ff.Err = fsx.ErrNoSpace
	if err := r.SaveFS(ff, dir, fakeCodec{}); err == nil {
		t.Fatal("save must surface ENOSPC")
	}
	verifyLoadable(t, dir, r)
}

// TestFaultBitFlipQuarantine bit-flips the leaf model file on read: the
// model must be quarantined (sidelined on disk, counted) and the leaf
// lookup degrade to the enclosing ancestor model.
func TestFaultBitFlipQuarantine(t *testing.T) {
	r := ancestorRepo(t)
	dir := t.TempDir()
	if err := r.Save(dir, fakeCodec{}); err != nil {
		t.Fatal(err)
	}
	healthy, healthyCover, ok := r.Lookup(leafQuery)
	if !ok {
		t.Fatal("healthy lookup failed")
	}

	ff := fsx.NewFault(fsx.OS())
	ff.FlipBitIn = "model-3-0-0-single"
	r2, rep, err := LoadFS(ff, dir, fakeCodec{})
	if err != nil {
		t.Fatalf("load with corrupt leaf must not fail: %v", err)
	}
	if len(rep.Quarantined) != 1 || r2.QuarantinedModels() != 1 {
		t.Fatalf("quarantined %d/%d, want 1/1 (%+v)", len(rep.Quarantined), r2.QuarantinedModels(), rep.Quarantined)
	}
	q := rep.Quarantined[0]
	if q.Slot != SlotSingle || q.Key != (CellKey{Level: 3, IX: 0, IY: 0}) {
		t.Errorf("quarantined %+v, want leaf single", q)
	}
	// The file was sidelined to quarantine/.
	if _, err := os.Stat(filepath.Join(dir, q.File)); !os.IsNotExist(err) {
		t.Errorf("corrupt file still in repository dir: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, q.File)); err != nil {
		t.Errorf("corrupt file not in quarantine dir: %v", err)
	}

	// The same query still resolves — via an ancestor, flagged degraded.
	h, cover, info, ok := r2.LookupBest(leafQuery)
	if !ok || h == nil {
		t.Fatal("degraded lookup must still resolve via an ancestor")
	}
	if !info.Degraded {
		t.Error("lookup served by ancestor must be flagged degraded")
	}
	if cover.Width() <= healthyCover.Width() {
		t.Errorf("degraded coverage %v not coarser than healthy %v", cover, healthyCover)
	}
	if h.(*fakeHandle).id == healthy.(*fakeHandle).id {
		t.Error("degraded lookup returned the quarantined model")
	}

	// A healthy lookup elsewhere is not flagged.
	if _, _, info, ok := r2.LookupBest(geo.Rect{MinX: 600, MinY: 100, MaxX: 900, MaxY: 300}); ok && info.Degraded {
		t.Error("healthy region flagged degraded")
	}
}

// TestFaultTornManifestLegacy: a version-1 (pre-atomic-commit) repository
// with a torn manifest fails the load cleanly rather than panicking or
// returning a half-repo.
func TestFaultTornManifestLegacy(t *testing.T) {
	dir := t.TempDir()
	full, _ := json.Marshal(manifest{Version: 1, RootMaxX: 4000, RootMaxY: 4000, H: 3, L: 3, K: 10})
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadFS(fsx.OS(), dir, fakeCodec{}); err == nil || !strings.Contains(err.Error(), "parsing manifest") {
		t.Fatalf("torn legacy manifest: got %v", err)
	}
}

// TestLoadV1Manifest keeps the pre-framing on-disk format readable: raw
// (unframed) model files referenced by a version-1 manifest.
func TestLoadV1Manifest(t *testing.T) {
	dir := t.TempDir()
	raw := make([]byte, 4)
	binary.LittleEndian.PutUint32(raw, 42)
	if err := os.WriteFile(filepath.Join(dir, "model-3-0-0-single.bin"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	man := manifest{
		Version: 1, RootMaxX: 4000, RootMaxY: 4000, H: 3, L: 3, K: 10,
		Cells: []manifestEntry{{Level: 3, IX: 0, IY: 0, TokenCount: 50, Single: "model-3-0-0-single.bin"}},
	}
	buf, _ := json.Marshal(man)
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	r, rep, err := LoadFS(fsx.OS(), dir, fakeCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) != 0 {
		t.Fatalf("v1 load quarantined %+v", rep.Quarantined)
	}
	h, _, ok := r.Lookup(leafQuery)
	if !ok || h.(*fakeHandle).id != 42 {
		t.Fatalf("v1 model not served: %v ok=%v", h, ok)
	}
}

// TestFaultSaveGarbageCollects: committed saves leave exactly the referenced
// model files (plus quarantine/), even after interrupted generations
// littered the directory.
func TestFaultSaveGarbageCollects(t *testing.T) {
	r := ancestorRepo(t)
	dir := t.TempDir()
	if err := r.Save(dir, fakeCodec{}); err != nil {
		t.Fatal(err)
	}
	// Interrupt a save mid-way to leave orphaned generation-2 files.
	ff := fsx.NewFault(fsx.OS())
	ff.FailAt = 8
	if err := r.SaveFS(ff, dir, fakeCodec{}); err == nil {
		t.Fatal("expected injected failure")
	}
	// A clean save commits generation 3 and sweeps the orphans.
	if err := r.Save(dir, fakeCodec{}); err != nil {
		t.Fatal(err)
	}
	man, err := readManifest(fsx.OS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	referenced := make(map[string]bool)
	for _, me := range man.Cells {
		for _, name := range []string{me.Single, me.East, me.South} {
			if name != "" {
				referenced[name] = true
			}
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || name == "manifest.json" {
			continue
		}
		if !referenced[name] {
			t.Errorf("unreferenced file survives GC: %s", name)
		}
	}
}

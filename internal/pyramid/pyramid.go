// Package pyramid implements KAMEL's model repository (paper §4): a pyramid
// of square cells over the deployment region, where each maintained cell may
// hold a single-cell BERT model and up to two neighbor-cell models (shared
// with its east and south neighbors).  The repository decides *where* models
// exist — via the paper's token-count thresholds k×4^(H−l) — and *which*
// model serves an imputation request (the smallest cell or neighbor pair
// fully enclosing the trajectory's MBR), while the actual model construction
// is delegated to a build callback so the package stays independent of the
// model implementation.
//
// The package separates the mutable and immutable halves of the repository:
//
//   - Repo is the builder — the single-writer side that Ingest mutates during
//     maintenance and that CommitFS persists incrementally.
//   - Index is an immutable point-in-time snapshot of the repository (cell
//     metadata plus generation-stamped model file references, no mutation
//     API).  Serving paths publish an Index through an atomic pointer and
//     run lookups lock-free against it while the builder prepares the next
//     generation — the copy-on-write scheme that lets model maintenance run
//     concurrently with imputation.
package pyramid

import (
	"fmt"

	"kamel/internal/geo"
	"kamel/internal/obs"
	"kamel/internal/store"
)

// CellKey identifies a pyramid cell: level 0 is the single root cell covering
// the whole region; level l is a 2^l × 2^l grid.
type CellKey struct {
	Level  int
	IX, IY int
}

// String renders the key for logs and manifests.
func (k CellKey) String() string { return fmt.Sprintf("L%d(%d,%d)", k.Level, k.IX, k.IY) }

// Handle is an opaque model reference owned by the caller (KAMEL's core
// wires a trained BERT model plus its vocabulary behind it).
type Handle interface{}

// Slot names identify the three model positions of a cell, in manifests and
// quarantine records.
const (
	SlotSingle = "single"
	SlotEast   = "east"
	SlotSouth  = "south"
)

// ModelMeta is the bookkeeping the paper attaches to every stored model.
type ModelMeta struct {
	Tokens    int     // training tokens the model was built over
	Sequences int     // training sequences
	FinalLoss float64 // training loss at completion
	Version   int     // bumped on every rebuild ("last update" stand-in)
}

// FileRef points at one immutable, generation-stamped model file inside the
// repository directory.  A zero FileRef means the slot has no persisted
// model.  Because model files are never rewritten, a FileRef uniquely
// identifies the model's bytes — the property the model cache keys on.
type FileRef struct {
	Name string // file name within the repository directory
	Gen  int    // manifest generation that wrote the file
}

// Entry is the repository state of one pyramid cell.  A slot may hold an
// in-memory handle (freshly built or eagerly loaded), a persisted file
// reference, or both; HasSingle/HasEast/HasSouth report slot occupancy
// regardless of residency.
type Entry struct {
	Key        CellKey
	TokenCount int // tokens in the trajectory store within this cell

	Single     Handle // single-cell model, if resident in memory
	SingleMeta ModelMeta
	SingleRef  FileRef // persisted single-cell model file, if committed

	// Neighbor-cell models are stored in the west cell of a horizontal pair
	// and the north cell of a vertical pair (paper §4.1); the other member
	// holds an implicit pointer, which Lookup resolves.
	East      Handle // model over this cell ∪ its east neighbor
	EastMeta  ModelMeta
	EastRef   FileRef
	South     Handle // model over this cell ∪ its south neighbor
	SouthMeta ModelMeta
	SouthRef  FileRef
}

// HasSingle reports whether the cell has a single-cell model, resident or
// on disk.
func (e *Entry) HasSingle() bool { return e.Single != nil || e.SingleRef.Name != "" }

// HasEast reports whether the cell stores a model over itself and its east
// neighbor.
func (e *Entry) HasEast() bool { return e.East != nil || e.EastRef.Name != "" }

// HasSouth reports whether the cell stores a model over itself and its south
// neighbor.
func (e *Entry) HasSouth() bool { return e.South != nil || e.SouthRef.Name != "" }

// Config sizes the pyramid.
type Config struct {
	Root geo.Rect // the deployment region (root cell); must be non-empty
	H    int      // pyramid height; leaf cells are at level H
	L    int      // number of lowest (deepest) levels maintained
	K    int      // model threshold base: a leaf model needs K tokens
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	switch {
	case c.Root.IsEmpty():
		return fmt.Errorf("pyramid: empty root region")
	case c.H < 1:
		return fmt.Errorf("pyramid: H %d must be >= 1", c.H)
	case c.L < 1 || c.L > c.H+1:
		return fmt.Errorf("pyramid: L %d must be in [1, H+1]", c.L)
	case c.K < 1:
		return fmt.Errorf("pyramid: K %d must be >= 1", c.K)
	}
	return nil
}

// CellRect returns the planar rectangle of a cell.  Pure geometry: shared by
// the builder and by immutable Index snapshots.
func (c Config) CellRect(k CellKey) geo.Rect {
	n := 1 << k.Level
	w := c.Root.Width() / float64(n)
	h := c.Root.Height() / float64(n)
	return geo.Rect{
		MinX: c.Root.MinX + float64(k.IX)*w,
		MinY: c.Root.MinY + float64(k.IY)*h,
		MaxX: c.Root.MinX + float64(k.IX+1)*w,
		MaxY: c.Root.MinY + float64(k.IY+1)*h,
	}
}

// Maintained reports whether models are kept at this level: the L deepest
// levels of the pyramid (paper Figure 4).
func (c Config) Maintained(level int) bool {
	return level >= c.H-c.L+1 && level <= c.H
}

// Threshold returns the minimum token count for a single-cell model at the
// level: k × 4^(H−l) (paper §4.1).  Neighbor-cell models double it.
func (c Config) Threshold(level int) int {
	t := c.K
	for i := level; i < c.H; i++ {
		t *= 4
	}
	return t
}

// cellOf returns the cell containing p at the given level, clamped to the
// grid.
func (c Config) cellOf(p geo.XY, level int) CellKey {
	n := 1 << level
	fx := (p.X - c.Root.MinX) / c.Root.Width() * float64(n)
	fy := (p.Y - c.Root.MinY) / c.Root.Height() * float64(n)
	return CellKey{Level: level, IX: clamp(int(fx), 0, n-1), IY: clamp(int(fy), 0, n-1)}
}

// SmallestEnclosing returns the deepest cell (highest level ≤ maxLevel) that
// fully contains the rectangle, and false when the rectangle is not inside
// the root region at all.
func (c Config) SmallestEnclosing(mbr geo.Rect, maxLevel int) (CellKey, bool) {
	if mbr.IsEmpty() || !c.Root.ContainsRect(mbr) {
		return CellKey{}, false
	}
	best := CellKey{Level: 0}
	for l := 1; l <= maxLevel; l++ {
		lo := c.cellOf(geo.XY{X: mbr.MinX, Y: mbr.MinY}, l)
		hi := c.cellOf(geo.XY{X: mbr.MaxX, Y: mbr.MaxY}, l)
		if lo != hi {
			break
		}
		best = lo
	}
	return best, true
}

// BuildFunc constructs a model over the given region from the given training
// trajectories.  It returns the handle plus metadata to record.
type BuildFunc func(region geo.Rect, trajs []store.Traj) (Handle, ModelMeta, error)

// Repo is the mutable builder side of the model repository: the single
// maintenance actor mutates it (Ingest, CommitFS) and publishes immutable
// Index snapshots for the serving path.  A Repo is safe for one writer at a
// time; concurrent readers must go through a published Index, never through
// the Repo itself.  KAMEL runs maintenance as a single background process
// (paper §4.2), so this single-writer discipline matches the paper's design.
type Repo struct {
	cfg   Config
	cells map[CellKey]*Entry

	// gen is the generation of the last manifest this repository was loaded
	// from or committed to; 0 for a repository that has never touched disk.
	gen int

	// dirty marks slots whose model was (re)built since the last successful
	// commit; CommitFS writes files only for these, carrying every other
	// slot's existing file reference forward into the new manifest.
	dirty map[CellKey]map[string]bool

	// quarantined tracks model slots whose on-disk file was corrupt at load
	// time (per-slot set keyed by cell).  Lookups that would have been
	// served by a quarantined model degrade to the smallest enclosing
	// ancestor model and are flagged as such (LookupBest).
	quarantined map[CellKey]map[string]bool

	// commitHist, when instrumented, receives each commit's wall time —
	// commits run on the maintenance path but gate how quickly rebuilt
	// models become pageable, so their duration is an operator signal.
	commitHist *obs.Histogram
	// quarantineCtr, when instrumented, counts model files sidelined as
	// corrupt over the process lifetime (the Index's QuarantinedModels is
	// the per-snapshot view of the same events).
	quarantineCtr *obs.Counter
}

// Instrument registers the repository's commit-duration histogram and
// quarantine counter on reg.  Call before the repository is used from the
// maintenance path; safe to call more than once (re-registration returns
// the existing series).
func (r *Repo) Instrument(reg *obs.Registry) {
	r.SetMetrics(
		reg.Histogram("kamel_pyramid_commit_seconds",
			"Wall time of one incremental repository commit (write dirty models, fsync, manifest rename).", nil),
		reg.Counter("kamel_pyramid_quarantined_total",
			"Model files sidelined as corrupt at load time."))
}

// SetMetrics attaches pre-resolved metric series (plain field assignment, no
// registry locking), for callers that must instrument a repository while
// holding locks that a registry registration is not allowed under.  Either
// argument may be nil to leave that series detached.
func (r *Repo) SetMetrics(commit *obs.Histogram, quarantine *obs.Counter) {
	r.commitHist = commit
	r.quarantineCtr = quarantine
}

// New creates an empty repository.
func New(cfg Config) (*Repo, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Repo{cfg: cfg, cells: make(map[CellKey]*Entry)}, nil
}

// markDirty records that a slot's model was rebuilt and needs persisting.
func (r *Repo) markDirty(k CellKey, slot string) {
	if r.dirty == nil {
		r.dirty = make(map[CellKey]map[string]bool)
	}
	if r.dirty[k] == nil {
		r.dirty[k] = make(map[string]bool)
	}
	r.dirty[k][slot] = true
}

// isDirty reports whether a slot was rebuilt since the last commit.
func (r *Repo) isDirty(k CellKey, slot string) bool {
	return r.dirty[k][slot]
}

// markQuarantined records that a slot's persisted model was corrupt.
func (r *Repo) markQuarantined(k CellKey, slot string) {
	if r.quarantined == nil {
		r.quarantined = make(map[CellKey]map[string]bool)
	}
	if r.quarantined[k] == nil {
		r.quarantined[k] = make(map[string]bool)
	}
	r.quarantined[k][slot] = true
	r.quarantineCtr.Inc()
}

// clearQuarantine lifts a slot's quarantine mark — called when the slot's
// model is rebuilt, superseding the corrupt file.
func (r *Repo) clearQuarantine(k CellKey, slot string) {
	if slots, ok := r.quarantined[k]; ok {
		delete(slots, slot)
		if len(slots) == 0 {
			delete(r.quarantined, k)
		}
	}
}

// isQuarantined reports whether a slot was sidelined at load time.
func (r *Repo) isQuarantined(k CellKey, slot string) bool {
	return r.quarantined[k][slot]
}

// QuarantinedModels returns the number of model slots quarantined at load
// time — the operator-visible "how degraded is this repository" figure.
func (r *Repo) QuarantinedModels() int {
	var n int
	for _, slots := range r.quarantined {
		n += len(slots)
	}
	return n
}

// Config returns the repository configuration.
func (r *Repo) Config() Config { return r.cfg }

// Generation returns the manifest generation the repository was last loaded
// from or committed to, or 0 if it has never been persisted.
func (r *Repo) Generation() int { return r.gen }

// CellRect returns the planar rectangle of a cell.
func (r *Repo) CellRect(k CellKey) geo.Rect { return r.cfg.CellRect(k) }

// Maintained reports whether models are kept at this level: the L deepest
// levels of the pyramid (paper Figure 4).
func (r *Repo) Maintained(level int) bool { return r.cfg.Maintained(level) }

// Threshold returns the minimum token count for a single-cell model at the
// level: k × 4^(H−l) (paper §4.1).  Neighbor-cell models double it.
func (r *Repo) Threshold(level int) int { return r.cfg.Threshold(level) }

// entry returns (creating if needed) the entry for a cell.
func (r *Repo) entry(k CellKey) *Entry {
	e, ok := r.cells[k]
	if !ok {
		e = &Entry{Key: k}
		r.cells[k] = e
	}
	return e
}

// Entry returns the entry for a cell if it exists.
func (r *Repo) Entry(k CellKey) (*Entry, bool) {
	e, ok := r.cells[k]
	return e, ok
}

// Entries invokes fn for every cell with repository state.
func (r *Repo) Entries(fn func(*Entry)) {
	for _, e := range r.cells {
		fn(e)
	}
}

// NumModels returns the count of single-cell and neighbor-cell models,
// whether resident in memory or committed to disk.
func (r *Repo) NumModels() (single, neighbor int) {
	for _, e := range r.cells {
		if e.HasSingle() {
			single++
		}
		if e.HasEast() {
			neighbor++
		}
		if e.HasSouth() {
			neighbor++
		}
	}
	return single, neighbor
}

// Adopt installs an externally built model — one replicated from a peer by
// the anti-entropy sweep — into a cell's slot, taking meta verbatim (no
// version bump: the version is the peer's, and keeping it is what makes the
// replicas' version counters comparable).  The slot is marked dirty so the
// next CommitFS persists the model under this repository's own generation
// sequence, and any quarantine mark on the slot is lifted (the adopted model
// supersedes the corrupt file).  Adopt is a Repo mutation: callers hold the
// single-writer role, exactly as for Ingest.
func (r *Repo) Adopt(k CellKey, slot string, h Handle, meta ModelMeta) error {
	if h == nil {
		return fmt.Errorf("pyramid: adopting nil model at %s/%s", k, slot)
	}
	e := r.entry(k)
	switch slot {
	case SlotSingle:
		e.Single, e.SingleMeta = h, meta
	case SlotEast:
		e.East, e.EastMeta = h, meta
	case SlotSouth:
		e.South, e.SouthMeta = h, meta
	default:
		return fmt.Errorf("pyramid: unknown slot %q at %s", slot, k)
	}
	r.markDirty(k, slot)
	r.clearQuarantine(k, slot)
	return nil
}

// DropHandles releases the in-memory model handles of every slot that has a
// committed file reference, converting the builder to its disk-resident
// form: future Index snapshots will reference files only, and the serving
// path pages models back in through its cache on demand.  Slots without a
// file reference keep their handles (dropping them would lose the model).
func (r *Repo) DropHandles() {
	for _, e := range r.cells {
		if e.SingleRef.Name != "" {
			e.Single = nil
		}
		if e.EastRef.Name != "" {
			e.East = nil
		}
		if e.SouthRef.Name != "" {
			e.South = nil
		}
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// SmallestEnclosing returns the deepest cell (highest level ≤ maxLevel) that
// fully contains the rectangle, and false when the rectangle is not inside
// the root region at all.
func (r *Repo) SmallestEnclosing(mbr geo.Rect, maxLevel int) (CellKey, bool) {
	return r.cfg.SmallestEnclosing(mbr, maxLevel)
}

// LookupInfo describes how a lookup was served.
type LookupInfo struct {
	// Degraded is true when a deeper (better-fitting) model would have
	// served this MBR but was quarantined at load time, so the result is a
	// coarser ancestor model — or no model at all.
	Degraded bool
}

// Lookup finds the model best suited for imputing a trajectory with the
// given MBR (paper §4.1): the single-cell or neighbor-cell model with the
// smallest coverage fully enclosing the MBR.  Returns ok=false when no model
// covers it.  Only memory-resident handles are returned; serving paths that
// need disk-resident models resolve through an Index snapshot instead.
func (r *Repo) Lookup(mbr geo.Rect) (Handle, geo.Rect, bool) {
	h, cover, _, ok := r.LookupBest(mbr)
	return h, cover, ok
}

// LookupBest is Lookup plus degradation accounting: the info reports whether
// a quarantined model forced the result onto a coarser ancestor.
func (r *Repo) LookupBest(mbr geo.Rect) (Handle, geo.Rect, LookupInfo, bool) {
	var info LookupInfo
	if mbr.IsEmpty() || !r.cfg.Root.ContainsRect(mbr) {
		return nil, geo.Rect{}, info, false
	}
	for l := r.cfg.H; l >= 0; l-- {
		lo := r.cfg.cellOf(geo.XY{X: mbr.MinX, Y: mbr.MinY}, l)
		hi := r.cfg.cellOf(geo.XY{X: mbr.MaxX, Y: mbr.MaxY}, l)
		dx, dy := hi.IX-lo.IX, hi.IY-lo.IY
		switch {
		case dx == 0 && dy == 0:
			if e, ok := r.cells[lo]; ok && e.Single != nil {
				return e.Single, r.cfg.CellRect(lo), info, true
			}
			if r.isQuarantined(lo, SlotSingle) {
				info.Degraded = true
			}
		case dx == 1 && dy == 0:
			// Horizontal pair; the model lives in the west cell's East slot.
			if e, ok := r.cells[lo]; ok && e.East != nil {
				return e.East, r.cfg.CellRect(lo).Union(r.cfg.CellRect(hi)), info, true
			}
			if r.isQuarantined(lo, SlotEast) {
				info.Degraded = true
			}
		case dx == 0 && dy == 1:
			// Vertical pair; the model lives in the north cell's South slot.
			if e, ok := r.cells[hi]; ok && e.South != nil {
				return e.South, r.cfg.CellRect(lo).Union(r.cfg.CellRect(hi)), info, true
			}
			if r.isQuarantined(hi, SlotSouth) {
				info.Degraded = true
			}
		}
	}
	return nil, geo.Rect{}, info, false
}

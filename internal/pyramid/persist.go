package pyramid

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"

	"kamel/internal/fsx"
)

// Codec serializes model handles.  KAMEL's core provides one that writes the
// BERT weights and vocabulary; the pyramid package stays model-agnostic.
type Codec interface {
	Encode(w io.Writer, h Handle) error
	Decode(r io.Reader) (Handle, error)
}

// On-disk layout and commit protocol.
//
// A repository directory holds one manifest.json plus one CRC32-framed
// binary file per model.  Model files are immutable and generation-stamped
// (model-L-IX-IY-slot.gNNNNNN.bin): a save never overwrites a file the
// current manifest references.  The save sequence is
//
//  1. write every model file of generation g+1 (each atomically framed),
//  2. atomically replace manifest.json (temp + fsync + rename + dir fsync),
//  3. best-effort garbage-collect files no manifest references.
//
// The manifest rename is the commit point: a crash anywhere before it leaves
// the generation-g manifest referencing only generation-g files, all intact,
// so the previous repository version stays fully loadable.  A crash after it
// leaves the new version committed and at worst some unreferenced garbage
// for the next save's GC.
//
// On load, each model file's frame checksum is verified.  A corrupt or
// unreadable model is quarantined — sidelined to quarantine/ and recorded —
// rather than failing the load; lookups for its region degrade to the
// smallest enclosing ancestor model (see LookupBest).

// manifestVersion is the current manifest format; version 1 (pre-framing,
// unversioned model files) is still read.
const manifestVersion = 2

// quarantineDir is the subdirectory corrupt model files are moved to.
const quarantineDir = "quarantine"

// manifest is the on-disk description of the repository.
type manifest struct {
	Version    int             `json:"version"`
	Generation int             `json:"generation,omitempty"`
	RootMinX   float64         `json:"root_min_x"`
	RootMinY   float64         `json:"root_min_y"`
	RootMaxX   float64         `json:"root_max_x"`
	RootMaxY   float64         `json:"root_max_y"`
	H          int             `json:"h"`
	L          int             `json:"l"`
	K          int             `json:"k"`
	Cells      []manifestEntry `json:"cells"`
}

type manifestEntry struct {
	Level      int       `json:"level"`
	IX         int       `json:"ix"`
	IY         int       `json:"iy"`
	TokenCount int       `json:"token_count"`
	Single     string    `json:"single,omitempty"` // model file name
	SingleMeta ModelMeta `json:"single_meta,omitempty"`
	East       string    `json:"east,omitempty"`
	EastMeta   ModelMeta `json:"east_meta,omitempty"`
	South      string    `json:"south,omitempty"`
	SouthMeta  ModelMeta `json:"south_meta,omitempty"`
}

// Save persists the repository to dir on the real filesystem.  The paper
// keeps its repository on disk for the same reason (§4): models are built
// offline and only read at imputation time.
func (r *Repo) Save(dir string, codec Codec) error {
	return r.SaveFS(fsx.OS(), dir, codec)
}

// SaveFS is Save over a pluggable filesystem, the seam the fault-injection
// tests drive crash scenarios through.  See the commit-protocol comment
// above: interrupting SaveFS at any write leaves the previous repository
// version fully loadable.
func (r *Repo) SaveFS(fsys fsx.FS, dir string, codec Codec) error {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("pyramid: creating %s: %w", dir, err)
	}
	gen := 1
	if old, err := readManifest(fsys, dir); err == nil {
		gen = old.Generation + 1
	}
	man := manifest{
		Version:    manifestVersion,
		Generation: gen,
		RootMinX:   r.cfg.Root.MinX, RootMinY: r.cfg.Root.MinY,
		RootMaxX: r.cfg.Root.MaxX, RootMaxY: r.cfg.Root.MaxY,
		H: r.cfg.H, L: r.cfg.L, K: r.cfg.K,
	}
	writeModel := func(k CellKey, slot string, h Handle) (string, error) {
		name := fmt.Sprintf("model-%d-%d-%d-%s.g%06d.bin", k.Level, k.IX, k.IY, slot, gen)
		var buf bytes.Buffer
		if err := codec.Encode(&buf, h); err != nil {
			return "", err
		}
		if err := fsx.WriteFramed(fsys, filepath.Join(dir, name), buf.Bytes()); err != nil {
			return "", err
		}
		return name, nil
	}
	// Deterministic cell order keeps kill-point sweeps and manifest diffs
	// stable across runs.
	keys := make([]CellKey, 0, len(r.cells))
	for k := range r.cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Level != b.Level {
			return a.Level < b.Level
		}
		if a.IX != b.IX {
			return a.IX < b.IX
		}
		return a.IY < b.IY
	})
	for _, k := range keys {
		e := r.cells[k]
		me := manifestEntry{Level: k.Level, IX: k.IX, IY: k.IY, TokenCount: e.TokenCount}
		var err error
		if e.Single != nil {
			if me.Single, err = writeModel(k, SlotSingle, e.Single); err != nil {
				return fmt.Errorf("pyramid: saving %s single model: %w", k, err)
			}
			me.SingleMeta = e.SingleMeta
		}
		if e.East != nil {
			if me.East, err = writeModel(k, SlotEast, e.East); err != nil {
				return fmt.Errorf("pyramid: saving %s east model: %w", k, err)
			}
			me.EastMeta = e.EastMeta
		}
		if e.South != nil {
			if me.South, err = writeModel(k, SlotSouth, e.South); err != nil {
				return fmt.Errorf("pyramid: saving %s south model: %w", k, err)
			}
			me.SouthMeta = e.SouthMeta
		}
		man.Cells = append(man.Cells, me)
	}
	buf, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	// Commit point: the new manifest becomes visible atomically.
	if err := fsx.WriteFileAtomic(fsys, filepath.Join(dir, "manifest.json"), buf); err != nil {
		return err
	}
	collectGarbage(fsys, dir, man)
	return nil
}

// collectGarbage removes model files no longer referenced by the committed
// manifest, plus stale temp files from interrupted saves.  Failures are
// ignored: garbage is harmless, and the next save retries.
func collectGarbage(fsys fsx.FS, dir string, man manifest) {
	referenced := make(map[string]bool)
	for _, me := range man.Cells {
		for _, name := range []string{me.Single, me.East, me.South} {
			if name != "" {
				referenced[name] = true
			}
		}
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return
	}
	for _, ent := range entries {
		name := ent.Name()
		stale := strings.HasSuffix(name, fsx.TmpSuffix) ||
			(strings.HasPrefix(name, "model-") && strings.HasSuffix(name, ".bin") && !referenced[name])
		if !ent.IsDir() && stale {
			fsys.Remove(filepath.Join(dir, name))
		}
	}
}

// QuarantinedModel records one model file sidelined during load.
type QuarantinedModel struct {
	File string  // original file name inside the repository dir
	Key  CellKey // the cell whose slot the model filled
	Slot string  // SlotSingle | SlotEast | SlotSouth
	Err  error   // why it was quarantined
}

// LoadReport summarizes the degradations a load performed.
type LoadReport struct {
	Quarantined []QuarantinedModel
}

// readManifest reads and validates manifest.json.
func readManifest(fsys fsx.FS, dir string) (manifest, error) {
	var man manifest
	buf, err := fsx.ReadFile(fsys, filepath.Join(dir, "manifest.json"))
	if err != nil {
		return man, fmt.Errorf("pyramid: reading manifest: %w", err)
	}
	if err := json.Unmarshal(buf, &man); err != nil {
		return man, fmt.Errorf("pyramid: parsing manifest: %w", err)
	}
	if man.Version != 1 && man.Version != manifestVersion {
		return man, fmt.Errorf("pyramid: unsupported manifest version %d", man.Version)
	}
	return man, nil
}

// Load restores a repository persisted by Save from the real filesystem.
// Per-model corruption is quarantined, not fatal; use LoadFS for the report.
func Load(dir string, codec Codec) (*Repo, error) {
	r, _, err := LoadFS(fsx.OS(), dir, codec)
	return r, err
}

// LoadFS restores a repository from dir.  The manifest itself must parse (an
// atomic commit guarantees it is never torn); individual model files that
// are missing, corrupt (frame checksum), or undecodable are moved to
// dir/quarantine/, recorded in the report, and their slots left empty so
// lookups degrade to the enclosing ancestor model instead of failing the
// whole load.
func LoadFS(fsys fsx.FS, dir string, codec Codec) (*Repo, *LoadReport, error) {
	man, err := readManifest(fsys, dir)
	if err != nil {
		return nil, nil, err
	}
	cfg := Config{H: man.H, L: man.L, K: man.K}
	cfg.Root.MinX, cfg.Root.MinY = man.RootMinX, man.RootMinY
	cfg.Root.MaxX, cfg.Root.MaxY = man.RootMaxX, man.RootMaxY
	r, err := New(cfg)
	if err != nil {
		return nil, nil, err
	}
	report := &LoadReport{}
	readModel := func(name string) (Handle, error) {
		var payload []byte
		var err error
		if man.Version >= manifestVersion {
			payload, err = fsx.ReadFramed(fsys, filepath.Join(dir, name))
		} else {
			payload, err = fsx.ReadFile(fsys, filepath.Join(dir, name))
		}
		if err != nil {
			return nil, err
		}
		return codec.Decode(bytes.NewReader(payload))
	}
	loadSlot := func(k CellKey, slot, name string) Handle {
		h, err := readModel(name)
		if err == nil {
			return h
		}
		quarantine(fsys, dir, name)
		r.markQuarantined(k, slot)
		report.Quarantined = append(report.Quarantined, QuarantinedModel{
			File: name, Key: k, Slot: slot, Err: err,
		})
		return nil
	}
	for _, me := range man.Cells {
		k := CellKey{Level: me.Level, IX: me.IX, IY: me.IY}
		e := r.entry(k)
		e.TokenCount = me.TokenCount
		if me.Single != "" {
			if e.Single = loadSlot(k, SlotSingle, me.Single); e.Single != nil {
				e.SingleMeta = me.SingleMeta
			}
		}
		if me.East != "" {
			if e.East = loadSlot(k, SlotEast, me.East); e.East != nil {
				e.EastMeta = me.EastMeta
			}
		}
		if me.South != "" {
			if e.South = loadSlot(k, SlotSouth, me.South); e.South != nil {
				e.SouthMeta = me.SouthMeta
			}
		}
	}
	return r, report, nil
}

// quarantine sidelines a suspect model file to dir/quarantine/.  Best
// effort: the file may already be gone, and a failed move leaves it in
// place — it will not be loaded either way.
func quarantine(fsys fsx.FS, dir, name string) {
	qdir := filepath.Join(dir, quarantineDir)
	if err := fsys.MkdirAll(qdir, 0o755); err != nil {
		return
	}
	fsys.Rename(filepath.Join(dir, name), filepath.Join(qdir, name))
}

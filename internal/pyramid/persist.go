package pyramid

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"kamel/internal/fsx"
)

// Codec serializes model handles.  KAMEL's core provides one that writes the
// BERT weights and vocabulary; the pyramid package stays model-agnostic.
type Codec interface {
	Encode(w io.Writer, h Handle) error
	Decode(r io.Reader) (Handle, error)
}

// On-disk layout and commit protocol.
//
// A repository directory holds one manifest.json plus one CRC32-framed
// binary file per model.  Model files are immutable and generation-stamped
// (model-L-IX-IY-slot.gNNNNNN.bin): a save never overwrites a file the
// current manifest references.  The commit sequence is
//
//  1. write the model files of generation g+1 (each atomically framed) —
//     only for slots rebuilt since the last commit; every other slot's
//     existing file is carried forward by reference (copy-on-write),
//  2. atomically replace manifest.json (temp + fsync + rename + dir fsync),
//  3. best-effort garbage-collect files no manifest references.
//
// The manifest rename is the commit point: a crash anywhere before it leaves
// the generation-g manifest referencing only intact files, so the previous
// repository version stays fully loadable.  A crash after it leaves the new
// version committed and at worst some unreferenced garbage for the next
// save's GC.
//
// Because a model file's name is unique for its bytes (cell × slot ×
// generation, never rewritten), the name doubles as a cache identity: the
// serving layer keys its in-memory model cache on it, and models carried
// forward across commits keep their cache entries warm.
//
// Legacy note: version-1 manifests reference unframed, unstamped files
// (model-L-IX-IY-slot.bin).  A file name therefore encodes its own framing:
// stamped names are CRC-framed, unstamped names are raw.  parseGen recovers
// both the generation and that distinction.
//
// On load, each model file's integrity is verified.  A corrupt or unreadable
// model is quarantined — sidelined to quarantine/ and recorded — rather than
// failing the load; lookups for its region degrade to the smallest enclosing
// ancestor model (see LookupBest).

// manifestVersion is the current manifest format; version 1 (pre-framing,
// unversioned model files) is still read.
const manifestVersion = 2

// quarantineDir is the subdirectory corrupt model files are moved to.
const quarantineDir = "quarantine"

// manifest is the on-disk description of the repository.
type manifest struct {
	Version    int             `json:"version"`
	Generation int             `json:"generation,omitempty"`
	RootMinX   float64         `json:"root_min_x"`
	RootMinY   float64         `json:"root_min_y"`
	RootMaxX   float64         `json:"root_max_x"`
	RootMaxY   float64         `json:"root_max_y"`
	H          int             `json:"h"`
	L          int             `json:"l"`
	K          int             `json:"k"`
	Cells      []manifestEntry `json:"cells"`
}

type manifestEntry struct {
	Level      int       `json:"level"`
	IX         int       `json:"ix"`
	IY         int       `json:"iy"`
	TokenCount int       `json:"token_count"`
	Single     string    `json:"single,omitempty"` // model file name
	SingleMeta ModelMeta `json:"single_meta,omitempty"`
	East       string    `json:"east,omitempty"`
	EastMeta   ModelMeta `json:"east_meta,omitempty"`
	South      string    `json:"south,omitempty"`
	SouthMeta  ModelMeta `json:"south_meta,omitempty"`
}

// parseGen extracts the generation stamp from a model file name
// (model-L-IX-IY-slot.gNNNNNN.bin).  Legacy version-1 names carry no stamp;
// they report generation 0 and stamped=false, which also means the file is
// raw rather than CRC-framed.
func parseGen(name string) (gen int, stamped bool) {
	const suffix = ".bin"
	if !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	rest := strings.TrimSuffix(name, suffix)
	i := strings.LastIndex(rest, ".g")
	if i < 0 {
		return 0, false
	}
	n, err := strconv.Atoi(rest[i+2:])
	if err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}

// Save persists the repository to dir on the real filesystem, rewriting
// every resident model.  The paper keeps its repository on disk for the same
// reason (§4): models are built offline and only read at imputation time.
func (r *Repo) Save(dir string, codec Codec) error {
	return r.SaveFS(fsx.OS(), dir, codec)
}

// SaveFS is Save over a pluggable filesystem, the seam the fault-injection
// tests drive crash scenarios through.  It is CommitFS with copy-on-write
// disabled: every memory-resident model is rewritten under the new
// generation.  Interrupting it at any write leaves the previous repository
// version fully loadable (see the commit-protocol comment above).
func (r *Repo) SaveFS(fsys fsx.FS, dir string, codec Codec) error {
	_, err := r.commitFS(fsys, dir, codec, true)
	return err
}

// CommitFS persists the repository incrementally: only slots rebuilt since
// the last successful commit (plus resident models never persisted) are
// written as new generation-stamped files; every other slot's existing file
// is carried forward by reference into the new manifest.  On success the
// entries' file references are updated, the dirty set is cleared, and the
// committed generation is returned.  On failure the repository state is
// unchanged — the dirty marks survive, so the next commit retries, and any
// files already written are swept up by a later commit's garbage collection.
func (r *Repo) CommitFS(fsys fsx.FS, dir string, codec Codec) (int, error) {
	return r.commitFS(fsys, dir, codec, false)
}

func (r *Repo) commitFS(fsys fsx.FS, dir string, codec Codec, forceAll bool) (int, error) {
	defer func(t0 time.Time) { r.commitHist.Observe(time.Since(t0).Seconds()) }(time.Now())
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("pyramid: creating %s: %w", dir, err)
	}
	gen := 1
	if old, err := readManifest(fsys, dir); err == nil {
		gen = old.Generation + 1
	}
	man := manifest{
		Version:    manifestVersion,
		Generation: gen,
		RootMinX:   r.cfg.Root.MinX, RootMinY: r.cfg.Root.MinY,
		RootMaxX: r.cfg.Root.MaxX, RootMaxY: r.cfg.Root.MaxY,
		H: r.cfg.H, L: r.cfg.L, K: r.cfg.K,
	}
	writeModel := func(k CellKey, slot string, h Handle) (string, error) {
		name := fmt.Sprintf("model-%d-%d-%d-%s.g%06d.bin", k.Level, k.IX, k.IY, slot, gen)
		var buf bytes.Buffer
		if err := codec.Encode(&buf, h); err != nil {
			return "", err
		}
		if err := fsx.WriteFramed(fsys, filepath.Join(dir, name), buf.Bytes()); err != nil {
			return "", err
		}
		return name, nil
	}
	// refUpdate defers mutating an entry's file reference until the manifest
	// commit succeeds, keeping the in-memory state consistent with the last
	// durable manifest on any failure path.
	type refUpdate struct {
		ref  *FileRef
		name string
	}
	var updates []refUpdate
	// saveSlot decides one slot's fate: rewrite, carry forward, or absent.
	saveSlot := func(k CellKey, slot string, h Handle, ref *FileRef) (string, error) {
		if h != nil && (forceAll || r.isDirty(k, slot) || ref.Name == "") {
			name, err := writeModel(k, slot, h)
			if err != nil {
				return "", err
			}
			updates = append(updates, refUpdate{ref: ref, name: name})
			return name, nil
		}
		return ref.Name, nil // carry forward ("" when the slot is empty)
	}
	// Deterministic cell order keeps kill-point sweeps and manifest diffs
	// stable across runs.
	keys := make([]CellKey, 0, len(r.cells))
	for k := range r.cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Level != b.Level {
			return a.Level < b.Level
		}
		if a.IX != b.IX {
			return a.IX < b.IX
		}
		return a.IY < b.IY
	})
	for _, k := range keys {
		e := r.cells[k]
		me := manifestEntry{Level: k.Level, IX: k.IX, IY: k.IY, TokenCount: e.TokenCount}
		var err error
		if me.Single, err = saveSlot(k, SlotSingle, e.Single, &e.SingleRef); err != nil {
			return 0, fmt.Errorf("pyramid: saving %s single model: %w", k, err)
		}
		if me.Single != "" {
			me.SingleMeta = e.SingleMeta
		}
		if me.East, err = saveSlot(k, SlotEast, e.East, &e.EastRef); err != nil {
			return 0, fmt.Errorf("pyramid: saving %s east model: %w", k, err)
		}
		if me.East != "" {
			me.EastMeta = e.EastMeta
		}
		if me.South, err = saveSlot(k, SlotSouth, e.South, &e.SouthRef); err != nil {
			return 0, fmt.Errorf("pyramid: saving %s south model: %w", k, err)
		}
		if me.South != "" {
			me.SouthMeta = e.SouthMeta
		}
		man.Cells = append(man.Cells, me)
	}
	buf, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return 0, err
	}
	// Commit point: the new manifest becomes visible atomically.
	if err := fsx.WriteFileAtomic(fsys, filepath.Join(dir, "manifest.json"), buf); err != nil {
		return 0, err
	}
	for _, u := range updates {
		g, _ := parseGen(u.name)
		*u.ref = FileRef{Name: u.name, Gen: g}
	}
	r.dirty = nil
	r.gen = gen
	collectGarbage(fsys, dir, man)
	return gen, nil
}

// collectGarbage removes model files no longer referenced by the committed
// manifest, plus stale temp files from interrupted saves.  Failures are
// ignored: garbage is harmless, and the next save retries.
//
// Note for concurrent serving: a request started just before a commit may
// still resolve models through the previous snapshot, whose rebuilt slots
// reference files this GC deletes.  Such a load fails cleanly and the
// request degrades (straight-line fallback) rather than erroring — see the
// core package's model resolution.
func collectGarbage(fsys fsx.FS, dir string, man manifest) {
	referenced := make(map[string]bool)
	for _, me := range man.Cells {
		for _, name := range []string{me.Single, me.East, me.South} {
			if name != "" {
				referenced[name] = true
			}
		}
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return
	}
	for _, ent := range entries {
		name := ent.Name()
		stale := strings.HasSuffix(name, fsx.TmpSuffix) ||
			(strings.HasPrefix(name, "model-") && strings.HasSuffix(name, ".bin") && !referenced[name])
		if !ent.IsDir() && stale {
			fsys.Remove(filepath.Join(dir, name))
		}
	}
}

// QuarantinedModel records one model file sidelined during load.
type QuarantinedModel struct {
	File string  // original file name inside the repository dir
	Key  CellKey // the cell whose slot the model filled
	Slot string  // SlotSingle | SlotEast | SlotSouth
	Err  error   // why it was quarantined
}

// LoadReport summarizes the degradations a load performed.
type LoadReport struct {
	Quarantined []QuarantinedModel
}

// readManifest reads and validates manifest.json.
func readManifest(fsys fsx.FS, dir string) (manifest, error) {
	var man manifest
	buf, err := fsx.ReadFile(fsys, filepath.Join(dir, "manifest.json"))
	if err != nil {
		return man, fmt.Errorf("pyramid: reading manifest: %w", err)
	}
	if err := json.Unmarshal(buf, &man); err != nil {
		return man, fmt.Errorf("pyramid: parsing manifest: %w", err)
	}
	if man.Version != 1 && man.Version != manifestVersion {
		return man, fmt.Errorf("pyramid: unsupported manifest version %d", man.Version)
	}
	return man, nil
}

// configOf reconstructs the pyramid configuration a manifest was saved with.
func (m manifest) configOf() Config {
	cfg := Config{H: m.H, L: m.L, K: m.K}
	cfg.Root.MinX, cfg.Root.MinY = m.RootMinX, m.RootMinY
	cfg.Root.MaxX, cfg.Root.MaxY = m.RootMaxX, m.RootMaxY
	return cfg
}

// Load restores a repository persisted by Save from the real filesystem.
// Per-model corruption is quarantined, not fatal; use LoadFS for the report.
func Load(dir string, codec Codec) (*Repo, error) {
	r, _, err := LoadFS(fsx.OS(), dir, codec)
	return r, err
}

// LoadFS restores a repository from dir with every model decoded into
// memory.  The manifest itself must parse (an atomic commit guarantees it is
// never torn); individual model files that are missing, corrupt (frame
// checksum), or undecodable are moved to dir/quarantine/, recorded in the
// report, and their slots left empty so lookups degrade to the enclosing
// ancestor model instead of failing the whole load.
//
// Memory-bounded deployments use LoadIndexFS instead, which verifies files
// but defers decoding to first use.
func LoadFS(fsys fsx.FS, dir string, codec Codec) (*Repo, *LoadReport, error) {
	man, err := readManifest(fsys, dir)
	if err != nil {
		return nil, nil, err
	}
	r, err := New(man.configOf())
	if err != nil {
		return nil, nil, err
	}
	r.gen = man.Generation
	report := &LoadReport{}
	readModel := func(name string) (Handle, error) {
		var payload []byte
		var err error
		if man.Version >= manifestVersion {
			payload, err = fsx.ReadFramed(fsys, filepath.Join(dir, name))
		} else {
			payload, err = fsx.ReadFile(fsys, filepath.Join(dir, name))
		}
		if err != nil {
			return nil, err
		}
		return codec.Decode(bytes.NewReader(payload))
	}
	loadSlot := func(k CellKey, slot, name string) Handle {
		h, err := readModel(name)
		if err == nil {
			return h
		}
		quarantine(fsys, dir, name)
		r.markQuarantined(k, slot)
		report.Quarantined = append(report.Quarantined, QuarantinedModel{
			File: name, Key: k, Slot: slot, Err: err,
		})
		return nil
	}
	for _, me := range man.Cells {
		k := CellKey{Level: me.Level, IX: me.IX, IY: me.IY}
		e := r.entry(k)
		e.TokenCount = me.TokenCount
		if me.Single != "" {
			if e.Single = loadSlot(k, SlotSingle, me.Single); e.Single != nil {
				e.SingleMeta = me.SingleMeta
				e.SingleRef = fileRefOf(me.Single)
			}
		}
		if me.East != "" {
			if e.East = loadSlot(k, SlotEast, me.East); e.East != nil {
				e.EastMeta = me.EastMeta
				e.EastRef = fileRefOf(me.East)
			}
		}
		if me.South != "" {
			if e.South = loadSlot(k, SlotSouth, me.South); e.South != nil {
				e.SouthMeta = me.SouthMeta
				e.SouthRef = fileRefOf(me.South)
			}
		}
	}
	return r, report, nil
}

// fileRefOf builds the FileRef for a manifest-referenced file name.
func fileRefOf(name string) FileRef {
	g, _ := parseGen(name)
	return FileRef{Name: name, Gen: g}
}

// LoadIndexFS restores a repository from dir in disk-resident form: every
// referenced model file is integrity-checked eagerly (CRC frame for stamped
// files, readability for legacy raw files) but NOT decoded — entries carry
// file references only, and the serving layer pages models into memory
// through its cache on first use.  Corrupt or unreadable files are
// quarantined exactly as in LoadFS: sidelined, recorded in the report, and
// their slots left empty so lookups degrade instead of failing.
func LoadIndexFS(fsys fsx.FS, dir string) (*Repo, *LoadReport, error) {
	man, err := readManifest(fsys, dir)
	if err != nil {
		return nil, nil, err
	}
	r, err := New(man.configOf())
	if err != nil {
		return nil, nil, err
	}
	r.gen = man.Generation
	report := &LoadReport{}
	verify := func(name string) error {
		var err error
		if _, stamped := parseGen(name); stamped {
			_, err = fsx.ReadFramed(fsys, filepath.Join(dir, name))
		} else {
			_, err = fsx.ReadFile(fsys, filepath.Join(dir, name))
		}
		return err
	}
	verifySlot := func(k CellKey, slot, name string) bool {
		err := verify(name)
		if err == nil {
			return true
		}
		quarantine(fsys, dir, name)
		r.markQuarantined(k, slot)
		report.Quarantined = append(report.Quarantined, QuarantinedModel{
			File: name, Key: k, Slot: slot, Err: err,
		})
		return false
	}
	for _, me := range man.Cells {
		k := CellKey{Level: me.Level, IX: me.IX, IY: me.IY}
		e := r.entry(k)
		e.TokenCount = me.TokenCount
		if me.Single != "" && verifySlot(k, SlotSingle, me.Single) {
			e.SingleRef = fileRefOf(me.Single)
			e.SingleMeta = me.SingleMeta
		}
		if me.East != "" && verifySlot(k, SlotEast, me.East) {
			e.EastRef = fileRefOf(me.East)
			e.EastMeta = me.EastMeta
		}
		if me.South != "" && verifySlot(k, SlotSouth, me.South) {
			e.SouthRef = fileRefOf(me.South)
			e.SouthMeta = me.SouthMeta
		}
	}
	return r, report, nil
}

// ReadModelFS reads and decodes one model file by reference — the loader the
// serving layer's cache calls on a miss.  Stamped files are CRC-verified;
// legacy unstamped files are read raw.
func ReadModelFS(fsys fsx.FS, dir string, ref FileRef, codec Codec) (Handle, error) {
	if ref.Name == "" {
		return nil, fmt.Errorf("pyramid: empty model file reference")
	}
	var payload []byte
	var err error
	if _, stamped := parseGen(ref.Name); stamped {
		payload, err = fsx.ReadFramed(fsys, filepath.Join(dir, ref.Name))
	} else {
		payload, err = fsx.ReadFile(fsys, filepath.Join(dir, ref.Name))
	}
	if err != nil {
		return nil, fmt.Errorf("pyramid: reading model %s: %w", ref.Name, err)
	}
	h, err := codec.Decode(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("pyramid: decoding model %s: %w", ref.Name, err)
	}
	return h, nil
}

// ReadModelPayloadFS reads (and integrity-verifies, for stamped files) one
// model file's raw payload bytes without decoding them — what the
// anti-entropy endpoint ships to a pulling replica, which decodes with its
// own codec and re-commits under its own generation sequence.
func ReadModelPayloadFS(fsys fsx.FS, dir, name string) ([]byte, error) {
	if name == "" {
		return nil, fmt.Errorf("pyramid: empty model file name")
	}
	var payload []byte
	var err error
	if _, stamped := parseGen(name); stamped {
		payload, err = fsx.ReadFramed(fsys, filepath.Join(dir, name))
	} else {
		payload, err = fsx.ReadFile(fsys, filepath.Join(dir, name))
	}
	if err != nil {
		return nil, fmt.Errorf("pyramid: reading model %s: %w", name, err)
	}
	return payload, nil
}

// quarantine sidelines a suspect model file to dir/quarantine/.  Best
// effort: the file may already be gone, and a failed move leaves it in
// place — it will not be loaded either way.
func quarantine(fsys fsx.FS, dir, name string) {
	qdir := filepath.Join(dir, quarantineDir)
	if err := fsys.MkdirAll(qdir, 0o755); err != nil {
		return
	}
	fsys.Rename(filepath.Join(dir, name), filepath.Join(qdir, name))
}

package pyramid

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Codec serializes model handles.  KAMEL's core provides one that writes the
// BERT weights and vocabulary; the pyramid package stays model-agnostic.
type Codec interface {
	Encode(w io.Writer, h Handle) error
	Decode(r io.Reader) (Handle, error)
}

// manifest is the on-disk description of the repository.
type manifest struct {
	Version  int             `json:"version"`
	RootMinX float64         `json:"root_min_x"`
	RootMinY float64         `json:"root_min_y"`
	RootMaxX float64         `json:"root_max_x"`
	RootMaxY float64         `json:"root_max_y"`
	H        int             `json:"h"`
	L        int             `json:"l"`
	K        int             `json:"k"`
	Cells    []manifestEntry `json:"cells"`
}

type manifestEntry struct {
	Level      int       `json:"level"`
	IX         int       `json:"ix"`
	IY         int       `json:"iy"`
	TokenCount int       `json:"token_count"`
	Single     string    `json:"single,omitempty"` // model file name
	SingleMeta ModelMeta `json:"single_meta,omitempty"`
	East       string    `json:"east,omitempty"`
	EastMeta   ModelMeta `json:"east_meta,omitempty"`
	South      string    `json:"south,omitempty"`
	SouthMeta  ModelMeta `json:"south_meta,omitempty"`
}

// Save persists the repository to dir: a manifest.json plus one binary file
// per model, encoded via the codec.  The paper keeps its repository on disk
// for the same reason (§4): models are built offline and only read at
// imputation time.
func (r *Repo) Save(dir string, codec Codec) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("pyramid: creating %s: %w", dir, err)
	}
	man := manifest{
		Version:  1,
		RootMinX: r.cfg.Root.MinX, RootMinY: r.cfg.Root.MinY,
		RootMaxX: r.cfg.Root.MaxX, RootMaxY: r.cfg.Root.MaxY,
		H: r.cfg.H, L: r.cfg.L, K: r.cfg.K,
	}
	writeModel := func(name string, h Handle) (string, error) {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return "", err
		}
		defer f.Close()
		if err := codec.Encode(f, h); err != nil {
			return "", err
		}
		return name, f.Sync()
	}
	for _, e := range r.cells {
		me := manifestEntry{Level: e.Key.Level, IX: e.Key.IX, IY: e.Key.IY, TokenCount: e.TokenCount}
		var err error
		if e.Single != nil {
			me.Single, err = writeModel(fmt.Sprintf("model-%d-%d-%d-single.bin", e.Key.Level, e.Key.IX, e.Key.IY), e.Single)
			if err != nil {
				return fmt.Errorf("pyramid: saving %s single model: %w", e.Key, err)
			}
			me.SingleMeta = e.SingleMeta
		}
		if e.East != nil {
			me.East, err = writeModel(fmt.Sprintf("model-%d-%d-%d-east.bin", e.Key.Level, e.Key.IX, e.Key.IY), e.East)
			if err != nil {
				return fmt.Errorf("pyramid: saving %s east model: %w", e.Key, err)
			}
			me.EastMeta = e.EastMeta
		}
		if e.South != nil {
			me.South, err = writeModel(fmt.Sprintf("model-%d-%d-%d-south.bin", e.Key.Level, e.Key.IX, e.Key.IY), e.South)
			if err != nil {
				return fmt.Errorf("pyramid: saving %s south model: %w", e.Key, err)
			}
			me.SouthMeta = e.SouthMeta
		}
		man.Cells = append(man.Cells, me)
	}
	buf, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "manifest.json"), buf, 0o644)
}

// Load restores a repository persisted by Save.
func Load(dir string, codec Codec) (*Repo, error) {
	buf, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, fmt.Errorf("pyramid: reading manifest: %w", err)
	}
	var man manifest
	if err := json.Unmarshal(buf, &man); err != nil {
		return nil, fmt.Errorf("pyramid: parsing manifest: %w", err)
	}
	if man.Version != 1 {
		return nil, fmt.Errorf("pyramid: unsupported manifest version %d", man.Version)
	}
	cfg := Config{H: man.H, L: man.L, K: man.K}
	cfg.Root.MinX, cfg.Root.MinY = man.RootMinX, man.RootMinY
	cfg.Root.MaxX, cfg.Root.MaxY = man.RootMaxX, man.RootMaxY
	r, err := New(cfg)
	if err != nil {
		return nil, err
	}
	readModel := func(name string) (Handle, error) {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return codec.Decode(f)
	}
	for _, me := range man.Cells {
		e := r.entry(CellKey{Level: me.Level, IX: me.IX, IY: me.IY})
		e.TokenCount = me.TokenCount
		if me.Single != "" {
			if e.Single, err = readModel(me.Single); err != nil {
				return nil, fmt.Errorf("pyramid: loading %s: %w", me.Single, err)
			}
			e.SingleMeta = me.SingleMeta
		}
		if me.East != "" {
			if e.East, err = readModel(me.East); err != nil {
				return nil, fmt.Errorf("pyramid: loading %s: %w", me.East, err)
			}
			e.EastMeta = me.EastMeta
		}
		if me.South != "" {
			if e.South, err = readModel(me.South); err != nil {
				return nil, fmt.Errorf("pyramid: loading %s: %w", me.South, err)
			}
			e.SouthMeta = me.SouthMeta
		}
	}
	return r, nil
}

package pyramid

import (
	"errors"
	"fmt"

	"kamel/internal/geo"
	"kamel/internal/store"
)

// ErrSkip may be returned by a BuildFunc to decline building a model — for
// example when too few trajectories are fully enclosed in the region to
// train anything useful.  The cell is left without that model and
// maintenance continues.
var ErrSkip = errors.New("pyramid: builder declined to build a model")

// Ingest runs the paper's four-step repository maintenance (§4.2) for a
// batch of training trajectories that the caller has already appended to the
// trajectory store:
//
//  1. If the batch's smallest enclosing cell C holds enough tokens, build
//     (or rebuild) a single-cell model at C.
//  2. For each of C's four neighbors, build a neighbor-cell model when the
//     combined token count clears the doubled threshold.
//  3. Recursively consider C's ancestors up to the shallowest maintained
//     level.
//  4. Recursively consider C's descendants while they still clear their
//     thresholds.
//
// The batch is enriched with every stored trajectory enclosed in the region
// being modeled, per the paper.  Ingest is idempotent for a cell within one
// call: each cell is built at most once.
func (r *Repo) Ingest(st *store.Store, batch []store.Traj, build BuildFunc) error {
	if len(batch) == 0 {
		return nil
	}
	mbr := geo.EmptyRect()
	for _, tr := range batch {
		for _, p := range tr.Points {
			mbr = mbr.ExtendXY(stProj(st).ToXY(p))
		}
	}
	c, ok := r.SmallestEnclosing(mbr, r.cfg.H)
	if !ok {
		return fmt.Errorf("pyramid: batch MBR %+v outside root region %+v", mbr, r.cfg.Root)
	}

	done := &buildTracker{singles: make(map[CellKey]bool), pairs: make(map[pairKey]bool)}

	// Steps 1 and 2 at C itself.
	if err := r.considerCell(st, c, build, done); err != nil {
		return err
	}

	// Step 3: ancestors up to the shallowest maintained level.
	for k := c; k.Level > 0; {
		k = CellKey{Level: k.Level - 1, IX: k.IX / 2, IY: k.IY / 2}
		if !r.Maintained(k.Level) {
			break
		}
		if err := r.considerCell(st, k, build, done); err != nil {
			return err
		}
	}

	// Step 4: descendants while thresholds hold.
	if err := r.considerChildren(st, c, build, done); err != nil {
		return err
	}
	return nil
}

// pairKey identifies a neighbor-cell model by its storage cell and
// orientation.
type pairKey struct {
	at    CellKey
	horiz bool
}

// buildTracker dedupes model builds within one Ingest call.
type buildTracker struct {
	singles map[CellKey]bool
	pairs   map[pairKey]bool
}

// considerCell refreshes a cell's token count and builds its single-cell and
// neighbor-cell models where thresholds allow (steps 1-2).
func (r *Repo) considerCell(st *store.Store, k CellKey, build BuildFunc, done *buildTracker) error {
	rect := r.CellRect(k)
	tokens := st.TokensInRect(rect)
	e := r.entry(k)
	e.TokenCount = tokens
	if !r.Maintained(k.Level) {
		return nil
	}

	if tokens >= r.Threshold(k.Level) && !done.singles[k] {
		trajs := st.QueryEnclosed(rect)
		if len(trajs) > 0 {
			h, meta, err := build(rect, trajs)
			switch {
			case errors.Is(err, ErrSkip):
				done.singles[k] = true // don't re-ask within this ingest
			case err != nil:
				return fmt.Errorf("pyramid: building single-cell model at %s: %w", k, err)
			default:
				meta.Version = e.SingleMeta.Version + 1
				e.Single, e.SingleMeta = h, meta
				r.markDirty(k, SlotSingle)
				r.clearQuarantine(k, SlotSingle)
				done.singles[k] = true
			}
		}
	}

	// Neighbor-cell models with the four edge neighbors (paper §4.2 step 2).
	n := 1 << k.Level
	for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
		nk := CellKey{Level: k.Level, IX: k.IX + d[0], IY: k.IY + d[1]}
		if nk.IX < 0 || nk.IY < 0 || nk.IX >= n || nk.IY >= n {
			continue
		}
		nRect := r.CellRect(nk)
		pairTokens := tokens + st.TokensInRect(nRect)
		if pairTokens < 2*r.Threshold(k.Level) {
			continue
		}
		// Storage cell: the west cell of a horizontal pair, the north cell
		// (larger IY) of a vertical pair (paper §4.1).
		horiz := d[0] != 0
		storeAt := k
		if d[0] == -1 || d[1] == 1 {
			storeAt = nk
		}
		pk := pairKey{at: storeAt, horiz: horiz}
		if done.pairs[pk] {
			continue
		}
		union := rect.Union(nRect)
		trajs := st.QueryEnclosed(union)
		if len(trajs) == 0 {
			continue
		}
		h, meta, err := build(union, trajs)
		if errors.Is(err, ErrSkip) {
			done.pairs[pk] = true
			continue
		}
		if err != nil {
			return fmt.Errorf("pyramid: building neighbor-cell model at %s: %w", storeAt, err)
		}
		se := r.entry(storeAt)
		if horiz {
			meta.Version = se.EastMeta.Version + 1
			se.East, se.EastMeta = h, meta
			r.markDirty(storeAt, SlotEast)
			r.clearQuarantine(storeAt, SlotEast)
		} else {
			meta.Version = se.SouthMeta.Version + 1
			se.South, se.SouthMeta = h, meta
			r.markDirty(storeAt, SlotSouth)
			r.clearQuarantine(storeAt, SlotSouth)
		}
		done.pairs[pk] = true
	}
	return nil
}

// considerChildren implements step 4: descend while children clear their
// thresholds.
func (r *Repo) considerChildren(st *store.Store, k CellKey, build BuildFunc, done *buildTracker) error {
	if k.Level >= r.cfg.H {
		return nil
	}
	for dx := 0; dx < 2; dx++ {
		for dy := 0; dy < 2; dy++ {
			ch := CellKey{Level: k.Level + 1, IX: k.IX*2 + dx, IY: k.IY*2 + dy}
			tokens := st.TokensInRect(r.CellRect(ch))
			if tokens < r.Threshold(ch.Level) {
				continue
			}
			if err := r.considerCell(st, ch, build, done); err != nil {
				return err
			}
			if err := r.considerChildren(st, ch, build, done); err != nil {
				return err
			}
		}
	}
	return nil
}

// stProj exposes the store's projection for MBR computation.  The store
// keeps records in WGS84; the pyramid lives in the planar frame.
func stProj(st *store.Store) *geo.Projection { return st.Projection() }

package pyramid

import (
	"errors"
	"fmt"
	"sync"

	"kamel/internal/geo"
	"kamel/internal/store"
)

// ErrSkip may be returned by a BuildFunc to decline building a model — for
// example when too few trajectories are fully enclosed in the region to
// train anything useful.  The cell is left without that model and
// maintenance continues.
var ErrSkip = errors.New("pyramid: builder declined to build a model")

// Ingest runs the paper's four-step repository maintenance (§4.2) for a
// batch of training trajectories that the caller has already appended to the
// trajectory store:
//
//  1. If the batch's smallest enclosing cell C holds enough tokens, build
//     (or rebuild) a single-cell model at C.
//  2. For each of C's four neighbors, build a neighbor-cell model when the
//     combined token count clears the doubled threshold.
//  3. Recursively consider C's ancestors up to the shallowest maintained
//     level.
//  4. Recursively consider C's descendants while they still clear their
//     thresholds.
//
// The batch is enriched with every stored trajectory enclosed in the region
// being modeled, per the paper.  Ingest is idempotent for a cell within one
// call: each cell is built at most once.
func (r *Repo) Ingest(st *store.Store, batch []store.Traj, build BuildFunc) error {
	return r.IngestParallel(st, batch, build, 1)
}

// IngestParallel is Ingest with the model builds fanned out over a bounded
// worker pool.  Maintenance is split into three phases:
//
//   - plan: the serial four-step walk above, unchanged, but instead of
//     building inline it records one task per (cell, slot) due a rebuild —
//     the region, the enclosed training set, and an apply closure.  Token
//     counts are refreshed here.  Dedupe (each model at most once per call)
//     happens here too, so the task list has no conflicts by construction.
//   - execute: up to workers goroutines run the build callback over the
//     tasks.  Tasks are independent models over fixed training sets, so a
//     deterministic builder (KAMEL's seeds per task) produces bit-identical
//     models regardless of concurrency or completion order.
//   - apply: results are installed serially in plan order — version bumps,
//     slot assignment, dirty marking — preserving the repository's
//     single-writer discipline.  The Repo is never touched from a worker.
//
// On a build error the error for the earliest task in plan order is
// returned and no later task is applied, matching serial semantics (later
// builds are wasted work, not divergent state).  workers <= 1 degenerates to
// the serial Ingest.
func (r *Repo) IngestParallel(st *store.Store, batch []store.Traj, build BuildFunc, workers int) error {
	if len(batch) == 0 {
		return nil
	}
	mbr := geo.EmptyRect()
	for _, tr := range batch {
		for _, p := range tr.Points {
			mbr = mbr.ExtendXY(stProj(st).ToXY(p))
		}
	}
	c, ok := r.SmallestEnclosing(mbr, r.cfg.H)
	if !ok {
		return fmt.Errorf("pyramid: batch MBR %+v outside root region %+v", mbr, r.cfg.Root)
	}

	done := &buildTracker{singles: make(map[CellKey]bool), pairs: make(map[pairKey]bool)}
	var plan []buildTask

	// Steps 1 and 2 at C itself.
	plan = r.considerCell(st, c, plan, done)

	// Step 3: ancestors up to the shallowest maintained level.
	for k := c; k.Level > 0; {
		k = CellKey{Level: k.Level - 1, IX: k.IX / 2, IY: k.IY / 2}
		if !r.Maintained(k.Level) {
			break
		}
		plan = r.considerCell(st, k, plan, done)
	}

	// Step 4: descendants while thresholds hold.
	plan = r.considerChildren(st, c, plan, done)

	return r.runPlan(plan, build, workers)
}

// buildTask is one planned model build.  The region and training set are
// fixed at plan time; apply installs the finished model into the repository.
type buildTask struct {
	label  string // error context, e.g. "single-cell model at L3(1,2)"
	region geo.Rect
	trajs  []store.Traj
	apply  func(h Handle, meta ModelMeta)
}

// runPlan executes the planned builds (concurrently when workers > 1) and
// applies the results serially in plan order.
func (r *Repo) runPlan(plan []buildTask, build BuildFunc, workers int) error {
	if len(plan) == 0 {
		return nil
	}
	if workers > len(plan) {
		workers = len(plan)
	}

	type result struct {
		h    Handle
		meta ModelMeta
		err  error
	}

	if workers <= 1 {
		// Serial path: build and apply interleaved, stopping at the first
		// error — the pre-parallelism Ingest behaviour.
		for _, t := range plan {
			h, meta, err := build(t.region, t.trajs)
			if errors.Is(err, ErrSkip) {
				continue
			}
			if err != nil {
				return fmt.Errorf("pyramid: building %s: %w", t.label, err)
			}
			t.apply(h, meta)
		}
		return nil
	}

	results := make([]result, len(plan))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				h, meta, err := build(plan[i].region, plan[i].trajs)
				results[i] = result{h: h, meta: meta, err: err}
			}
		}()
	}
	for i := range plan {
		next <- i
	}
	close(next)
	wg.Wait()

	for i, t := range plan {
		res := results[i]
		if errors.Is(res.err, ErrSkip) {
			continue
		}
		if res.err != nil {
			return fmt.Errorf("pyramid: building %s: %w", t.label, res.err)
		}
		t.apply(res.h, res.meta)
	}
	return nil
}

// pairKey identifies a neighbor-cell model by its storage cell and
// orientation.
type pairKey struct {
	at    CellKey
	horiz bool
}

// buildTracker dedupes model builds within one Ingest call.
type buildTracker struct {
	singles map[CellKey]bool
	pairs   map[pairKey]bool
}

// considerCell refreshes a cell's token count and plans its single-cell and
// neighbor-cell model builds where thresholds allow (steps 1-2).
func (r *Repo) considerCell(st *store.Store, k CellKey, plan []buildTask, done *buildTracker) []buildTask {
	rect := r.CellRect(k)
	tokens := st.TokensInRect(rect)
	e := r.entry(k)
	e.TokenCount = tokens
	if !r.Maintained(k.Level) {
		return plan
	}

	if tokens >= r.Threshold(k.Level) && !done.singles[k] {
		trajs := st.QueryEnclosed(rect)
		if len(trajs) > 0 {
			done.singles[k] = true // at most once per ingest
			plan = append(plan, buildTask{
				label:  fmt.Sprintf("single-cell model at %s", k),
				region: rect,
				trajs:  trajs,
				apply: func(h Handle, meta ModelMeta) {
					meta.Version = e.SingleMeta.Version + 1
					e.Single, e.SingleMeta = h, meta
					r.markDirty(k, SlotSingle)
					r.clearQuarantine(k, SlotSingle)
				},
			})
		}
	}

	// Neighbor-cell models with the four edge neighbors (paper §4.2 step 2).
	n := 1 << k.Level
	for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
		nk := CellKey{Level: k.Level, IX: k.IX + d[0], IY: k.IY + d[1]}
		if nk.IX < 0 || nk.IY < 0 || nk.IX >= n || nk.IY >= n {
			continue
		}
		nRect := r.CellRect(nk)
		pairTokens := tokens + st.TokensInRect(nRect)
		if pairTokens < 2*r.Threshold(k.Level) {
			continue
		}
		// Storage cell: the west cell of a horizontal pair, the north cell
		// (larger IY) of a vertical pair (paper §4.1).
		horiz := d[0] != 0
		storeAt := k
		if d[0] == -1 || d[1] == 1 {
			storeAt = nk
		}
		pk := pairKey{at: storeAt, horiz: horiz}
		if done.pairs[pk] {
			continue
		}
		union := rect.Union(nRect)
		trajs := st.QueryEnclosed(union)
		if len(trajs) == 0 {
			continue
		}
		done.pairs[pk] = true
		storeCell, isHoriz := storeAt, horiz
		plan = append(plan, buildTask{
			label:  fmt.Sprintf("neighbor-cell model at %s", storeAt),
			region: union,
			trajs:  trajs,
			apply: func(h Handle, meta ModelMeta) {
				se := r.entry(storeCell)
				if isHoriz {
					meta.Version = se.EastMeta.Version + 1
					se.East, se.EastMeta = h, meta
					r.markDirty(storeCell, SlotEast)
					r.clearQuarantine(storeCell, SlotEast)
				} else {
					meta.Version = se.SouthMeta.Version + 1
					se.South, se.SouthMeta = h, meta
					r.markDirty(storeCell, SlotSouth)
					r.clearQuarantine(storeCell, SlotSouth)
				}
			},
		})
	}
	return plan
}

// considerChildren implements step 4: descend while children clear their
// thresholds.
func (r *Repo) considerChildren(st *store.Store, k CellKey, plan []buildTask, done *buildTracker) []buildTask {
	if k.Level >= r.cfg.H {
		return plan
	}
	for dx := 0; dx < 2; dx++ {
		for dy := 0; dy < 2; dy++ {
			ch := CellKey{Level: k.Level + 1, IX: k.IX*2 + dx, IY: k.IY*2 + dy}
			tokens := st.TokensInRect(r.CellRect(ch))
			if tokens < r.Threshold(ch.Level) {
				continue
			}
			plan = r.considerCell(st, ch, plan, done)
			plan = r.considerChildren(st, ch, plan, done)
		}
	}
	return plan
}

// stProj exposes the store's projection for MBR computation.  The store
// keeps records in WGS84; the pyramid lives in the planar frame.
func stProj(st *store.Store) *geo.Projection { return st.Projection() }

package pyramid

import (
	"sort"

	"kamel/internal/geo"
)

// ModelRef is one model slot as seen through an immutable Index snapshot: the
// cell and slot identity, the persisted file (if any), and — when the model
// was resident in the builder at snapshot time — the live handle, which lets
// the serving layer skip the disk round-trip entirely.
//
// File and Gen together identify one immutable model artifact, so they are
// the natural key for a model cache: a rebuilt model lands in a new file
// with a new generation and therefore a new cache identity, while models
// carried across commits unchanged keep theirs (and stay warm).
type ModelRef struct {
	Key  CellKey
	Slot string // SlotSingle | SlotEast | SlotSouth
	File string // persisted file name within the repository dir; "" if memory-only
	Gen  int    // the file's generation stamp (0 for legacy unstamped files)
	Meta ModelMeta

	// Handle is the decoded model when it was memory-resident at snapshot
	// time, nil for disk-resident slots (resolve through the cache).
	Handle Handle
}

// indexEntry is the snapshot of one cell.
type indexEntry struct {
	tokens              int
	single, east, south *ModelRef
	quarantined         map[string]bool // slot name → sidelined at load time
}

// Index is an immutable point-in-time snapshot of a Repo: cell metadata and
// model references without any mutation API.  All methods are safe for
// unsynchronized concurrent use — the copy-on-write contract is that a
// published Index is never modified; the builder produces a fresh one after
// every maintenance round and the serving layer swaps it in atomically.
type Index struct {
	cfg         Config
	gen         int
	cells       map[CellKey]*indexEntry
	numSingle   int
	numNeighbor int
	quarantined int
}

// Index captures the repository's current state as an immutable snapshot.
// The snapshot shares model handles (which are themselves read-safe) but no
// mutable structure with the builder: subsequent Ingest/Commit calls on the
// Repo never alter an already-captured Index.
func (r *Repo) Index() *Index {
	ix := &Index{
		cfg:   r.cfg,
		gen:   r.gen,
		cells: make(map[CellKey]*indexEntry, len(r.cells)),
	}
	refOf := func(k CellKey, slot string, h Handle, fr FileRef, meta ModelMeta) *ModelRef {
		if h == nil && fr.Name == "" {
			return nil
		}
		return &ModelRef{Key: k, Slot: slot, File: fr.Name, Gen: fr.Gen, Meta: meta, Handle: h}
	}
	for k, e := range r.cells {
		ie := &indexEntry{tokens: e.TokenCount}
		if ie.single = refOf(k, SlotSingle, e.Single, e.SingleRef, e.SingleMeta); ie.single != nil {
			ix.numSingle++
		}
		if ie.east = refOf(k, SlotEast, e.East, e.EastRef, e.EastMeta); ie.east != nil {
			ix.numNeighbor++
		}
		if ie.south = refOf(k, SlotSouth, e.South, e.SouthRef, e.SouthMeta); ie.south != nil {
			ix.numNeighbor++
		}
		if slots := r.quarantined[k]; len(slots) > 0 {
			ie.quarantined = make(map[string]bool, len(slots))
			for s := range slots {
				ie.quarantined[s] = true
				ix.quarantined++
			}
		}
		ix.cells[k] = ie
	}
	return ix
}

// Config returns the pyramid configuration the snapshot was built with.
func (ix *Index) Config() Config { return ix.cfg }

// Generation returns the manifest generation backing the snapshot (0 for a
// never-persisted repository).
func (ix *Index) Generation() int { return ix.gen }

// NumModels returns the snapshot's single-cell and neighbor-cell model
// counts.
func (ix *Index) NumModels() (single, neighbor int) { return ix.numSingle, ix.numNeighbor }

// QuarantinedModels returns how many model slots were sidelined as corrupt
// when the backing repository was loaded.
func (ix *Index) QuarantinedModels() int { return ix.quarantined }

// Models enumerates every model reference in the snapshot, sorted by cell
// (level, ix, iy) then slot — the deterministic order manifests use.  The
// anti-entropy layer serves this as a node's replication manifest.
func (ix *Index) Models() []ModelRef {
	keys := make([]CellKey, 0, len(ix.cells))
	for k := range ix.cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Level != b.Level {
			return a.Level < b.Level
		}
		if a.IX != b.IX {
			return a.IX < b.IX
		}
		return a.IY < b.IY
	})
	var out []ModelRef
	for _, k := range keys {
		e := ix.cells[k]
		for _, ref := range []*ModelRef{e.single, e.east, e.south} {
			if ref != nil {
				out = append(out, *ref)
			}
		}
	}
	return out
}

// RootRef returns the model covering the largest region — the shallowest,
// and within a level the first in scan order.  Serving layers use it as the
// readiness probe: once the root model is loadable, the system can answer
// (possibly degraded) imputations anywhere in its coverage.
func (ix *Index) RootRef() (*ModelRef, bool) {
	var best *ModelRef
	bestLevel := int(^uint(0) >> 1)
	for k, e := range ix.cells {
		if k.Level >= bestLevel {
			continue
		}
		for _, ref := range []*ModelRef{e.single, e.east, e.south} {
			if ref != nil {
				best, bestLevel = ref, k.Level
				break
			}
		}
	}
	return best, best != nil
}

// Lookup finds the model reference best suited for imputing a trajectory
// with the given MBR (paper §4.1): the single-cell or neighbor-cell model
// with the smallest coverage fully enclosing the MBR.  Returns ok=false when
// no model covers it.
func (ix *Index) Lookup(mbr geo.Rect) (*ModelRef, geo.Rect, bool) {
	ref, cover, _, ok := ix.LookupBest(mbr)
	return ref, cover, ok
}

// LookupBest is Lookup plus degradation accounting: the info reports whether
// a quarantined model forced the result onto a coarser ancestor.  The walk
// mirrors Repo.LookupBest but yields references instead of handles, so the
// caller decides how to materialize the model (resident handle or cache
// load).
func (ix *Index) LookupBest(mbr geo.Rect) (*ModelRef, geo.Rect, LookupInfo, bool) {
	var info LookupInfo
	if mbr.IsEmpty() || !ix.cfg.Root.ContainsRect(mbr) {
		return nil, geo.Rect{}, info, false
	}
	for l := ix.cfg.H; l >= 0; l-- {
		lo := ix.cfg.cellOf(geo.XY{X: mbr.MinX, Y: mbr.MinY}, l)
		hi := ix.cfg.cellOf(geo.XY{X: mbr.MaxX, Y: mbr.MaxY}, l)
		dx, dy := hi.IX-lo.IX, hi.IY-lo.IY
		switch {
		case dx == 0 && dy == 0:
			if e, ok := ix.cells[lo]; ok {
				if e.single != nil {
					return e.single, ix.cfg.CellRect(lo), info, true
				}
				if e.quarantined[SlotSingle] {
					info.Degraded = true
				}
			}
		case dx == 1 && dy == 0:
			// Horizontal pair; the model lives in the west cell's East slot.
			if e, ok := ix.cells[lo]; ok {
				if e.east != nil {
					return e.east, ix.cfg.CellRect(lo).Union(ix.cfg.CellRect(hi)), info, true
				}
				if e.quarantined[SlotEast] {
					info.Degraded = true
				}
			}
		case dx == 0 && dy == 1:
			// Vertical pair; the model lives in the north cell's South slot.
			if e, ok := ix.cells[hi]; ok {
				if e.south != nil {
					return e.south, ix.cfg.CellRect(lo).Union(ix.cfg.CellRect(hi)), info, true
				}
				if e.quarantined[SlotSouth] {
					info.Degraded = true
				}
			}
		}
	}
	return nil, geo.Rect{}, info, false
}

package pyramid

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"kamel/internal/fsx"
	"kamel/internal/geo"
	"kamel/internal/store"
)

// buildRepoWith ingests the same spread of trajectories into a fresh repo at
// the given worker count, using a deterministic (but slow) builder, commits
// it, and returns the repo, the ingest wall time, and the committed dir.
func buildRepoWith(t *testing.T, workers int, buildDelay time.Duration) (*Repo, time.Duration, string) {
	t.Helper()
	st, err := store.Open(t.TempDir(), geo.NewProjection(41.15, -8.61))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	r, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Data in four separate leaf cells (500m each at level 3), adjacent in
	// pairs, so the plan holds single-cell models at several levels plus
	// neighbor models — enough independent build tasks to parallelize.
	fill(t, st, 100, 100, 5, 10)
	fill(t, st, 600, 100, 5, 10)
	fill(t, st, 100, 600, 5, 10)
	fill(t, st, 1600, 1600, 5, 10)
	var batch []store.Traj
	st.All(func(tr store.Traj) bool { batch = append(batch, tr); return true })

	// The builder is deterministic in its inputs alone — the property that
	// makes worker count invisible in the result.
	build := func(region geo.Rect, trajs []store.Traj) (Handle, ModelMeta, error) {
		time.Sleep(buildDelay)
		id := int32(len(trajs)) + int32(region.MinX)/16 + int32(region.MinY)/64
		return &fakeHandle{id: id}, ModelMeta{Tokens: len(trajs) * 10, Sequences: len(trajs)}, nil
	}
	start := time.Now()
	if err := r.IngestParallel(st, batch, build, workers); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	dir := t.TempDir()
	if _, err := r.CommitFS(fsx.OS(), dir, fakeCodec{}); err != nil {
		t.Fatal(err)
	}
	return r, elapsed, dir
}

// dirContents reads every file in dir into a name → content map.
func dirContents(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := map[string]string{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		buf, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = string(buf)
	}
	return out
}

// TestIngestParallelDeterminism is the parallel-rebuild contract: the same
// batch ingested serially and with a worker pool commits bit-identical
// repositories (same manifest, same model files, same versions), because
// builds are pure functions of their training sets and applies replay in
// plan order under the single writer.
func TestIngestParallelDeterminism(t *testing.T) {
	serial, _, serialDir := buildRepoWith(t, 1, 0)
	parallel, _, parallelDir := buildRepoWith(t, 4, 0)

	sm, pm := dirContents(t, serialDir), dirContents(t, parallelDir)
	if len(sm) != len(pm) {
		t.Fatalf("serial committed %d files, parallel %d", len(sm), len(pm))
	}
	for name, content := range sm {
		if pm[name] != content {
			t.Errorf("file %s differs between serial and parallel commit", name)
		}
	}

	// The in-memory snapshots agree slot-by-slot, versions included.
	sRefs, pRefs := serial.Index().Models(), parallel.Index().Models()
	if len(sRefs) != len(pRefs) {
		t.Fatalf("serial has %d models, parallel %d", len(sRefs), len(pRefs))
	}
	if len(sRefs) < 4 {
		t.Fatalf("only %d models built; plan too small to exercise parallelism", len(sRefs))
	}
	for i := range sRefs {
		s, p := sRefs[i], pRefs[i]
		if s.Key != p.Key || s.Slot != p.Slot || s.Meta != p.Meta || s.File != p.File {
			t.Errorf("model %d differs: %+v vs %+v", i, s, p)
		}
	}
}

// TestIngestParallelFaster checks the point of the worker pool: with a slow
// builder, four workers finish the same plan measurably faster than one.
// The builder sleeps 25ms per model; with >= 8 independent builds the serial
// pass takes >= 200ms while four workers need roughly a quarter of that, so
// the 25% margin asserted here has a wide safety band even on loaded CI.
func TestIngestParallelFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	const delay = 25 * time.Millisecond
	_, serialTime, _ := buildRepoWith(t, 1, delay)
	_, parallelTime, _ := buildRepoWith(t, 4, delay)
	if parallelTime >= serialTime*3/4 {
		t.Errorf("4 workers took %v vs serial %v; want at least a 25%% cut", parallelTime, serialTime)
	}
}

// TestIngestParallelErrorSemantics pins the plan-order error contract: the
// first failing task (in plan order) surfaces, tasks before it still apply,
// and ErrSkip still means "no model, no error" under the pool.
func TestIngestParallelErrorSemantics(t *testing.T) {
	st, err := store.Open(t.TempDir(), geo.NewProjection(41.15, -8.61))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	r, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	fill(t, st, 100, 100, 5, 10)
	fill(t, st, 1600, 1600, 5, 10)
	var batch []store.Traj
	st.All(func(tr store.Traj) bool { batch = append(batch, tr); return true })

	boom := errors.New("boom")
	calls := 0
	err = r.IngestParallel(st, batch, func(region geo.Rect, trajs []store.Traj) (Handle, ModelMeta, error) {
		calls++
		if calls > 2 {
			return nil, ModelMeta{}, boom
		}
		return &fakeHandle{id: 1}, ModelMeta{}, nil
	}, 1)
	if !errors.Is(err, boom) {
		t.Fatalf("ingest error = %v, want the builder's failure", err)
	}
	single, neighbor := r.NumModels()
	if single+neighbor != 2 {
		t.Errorf("%d models applied before the failure, want the 2 built", single+neighbor)
	}

	// ErrSkip produces no model and no error, at any worker count.
	r2, _ := New(testConfig())
	if err := r2.IngestParallel(st, batch, func(geo.Rect, []store.Traj) (Handle, ModelMeta, error) {
		return nil, ModelMeta{}, ErrSkip
	}, 4); err != nil {
		t.Fatalf("all-skip ingest errored: %v", err)
	}
	if s, n := r2.NumModels(); s+n != 0 {
		t.Errorf("all-skip ingest recorded %d models", s+n)
	}
}

package pyramid

import (
	"encoding/binary"
	"fmt"
	"io"
	"testing"

	"kamel/internal/geo"
	"kamel/internal/grid"
	"kamel/internal/store"
)

func testConfig() Config {
	return Config{
		Root: geo.Rect{MinX: 0, MinY: 0, MaxX: 4000, MaxY: 4000},
		H:    3,
		L:    3,
		K:    10,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testConfig()
	bad.Root = geo.EmptyRect()
	if bad.Validate() == nil {
		t.Error("empty root must be rejected")
	}
	bad = testConfig()
	bad.L = 5 // > H+1
	if bad.Validate() == nil {
		t.Error("L > H+1 must be rejected")
	}
	bad = testConfig()
	bad.K = 0
	if bad.Validate() == nil {
		t.Error("K 0 must be rejected")
	}
}

func TestCellRectGeometry(t *testing.T) {
	r, _ := New(testConfig())
	root := r.CellRect(CellKey{Level: 0})
	if root != r.Config().Root {
		t.Errorf("root cell %v != root region", root)
	}
	// Level 1: 2×2 grid of 2000m cells.
	c := r.CellRect(CellKey{Level: 1, IX: 1, IY: 0})
	want := geo.Rect{MinX: 2000, MinY: 0, MaxX: 4000, MaxY: 2000}
	if c != want {
		t.Errorf("cell rect %v, want %v", c, want)
	}
	// Children tile the parent exactly.
	parent := r.CellRect(CellKey{Level: 1, IX: 0, IY: 0})
	union := geo.EmptyRect()
	for dx := 0; dx < 2; dx++ {
		for dy := 0; dy < 2; dy++ {
			union = union.Union(r.CellRect(CellKey{Level: 2, IX: dx, IY: dy}))
		}
	}
	if union != parent {
		t.Errorf("children union %v != parent %v", union, parent)
	}
}

func TestMaintainedLevels(t *testing.T) {
	r, _ := New(testConfig()) // H=3, L=3 → maintained 1,2,3
	for level, want := range map[int]bool{0: false, 1: true, 2: true, 3: true} {
		if got := r.Maintained(level); got != want {
			t.Errorf("Maintained(%d) = %v, want %v", level, got, want)
		}
	}
}

func TestThresholds(t *testing.T) {
	r, _ := New(testConfig()) // K=10, H=3
	wants := map[int]int{3: 10, 2: 40, 1: 160, 0: 640}
	for level, want := range wants {
		if got := r.Threshold(level); got != want {
			t.Errorf("Threshold(%d) = %d, want %d", level, got, want)
		}
	}
}

func TestSmallestEnclosing(t *testing.T) {
	r, _ := New(testConfig())
	// A small rect well inside one leaf cell.
	k, ok := r.SmallestEnclosing(geo.Rect{MinX: 100, MinY: 100, MaxX: 200, MaxY: 200}, 3)
	if !ok || k.Level != 3 || k.IX != 0 || k.IY != 0 {
		t.Errorf("got %v ok=%v, want leaf (0,0)", k, ok)
	}
	// A rect straddling the vertical midline fits only at level 0.
	k, ok = r.SmallestEnclosing(geo.Rect{MinX: 1900, MinY: 100, MaxX: 2100, MaxY: 200}, 3)
	if !ok || k.Level != 0 {
		t.Errorf("straddling rect resolved to %v, want root", k)
	}
	// Outside the root region.
	if _, ok := r.SmallestEnclosing(geo.Rect{MinX: -10, MinY: 0, MaxX: 10, MaxY: 10}, 3); ok {
		t.Error("rect outside root must not resolve")
	}
}

// fakeHandle is a trivially serializable model stand-in.
type fakeHandle struct{ id int32 }

type fakeCodec struct{}

func (fakeCodec) Encode(w io.Writer, h Handle) error {
	return binary.Write(w, binary.LittleEndian, h.(*fakeHandle).id)
}
func (fakeCodec) Decode(r io.Reader) (Handle, error) {
	var id int32
	if err := binary.Read(r, binary.LittleEndian, &id); err != nil {
		return nil, err
	}
	return &fakeHandle{id: id}, nil
}

// fill populates a store with east-walking trajectories around (x, y).
func fill(t *testing.T, st *store.Store, x, y float64, count, pts int) {
	t.Helper()
	pr := st.Projection()
	g := grid.NewHex(75)
	for i := 0; i < count; i++ {
		tr := store.Traj{ID: fmt.Sprintf("f%f-%f-%d", x, y, i)}
		for j := 0; j < pts; j++ {
			xy := geo.XY{X: x + float64(j)*20, Y: y + float64(i)}
			p := pr.ToLatLng(xy)
			p.T = float64(j)
			tr.Points = append(tr.Points, p)
			tr.Tokens = append(tr.Tokens, g.CellAt(xy))
		}
		if err := st.Append(tr); err != nil {
			t.Fatal(err)
		}
	}
}

func TestIngestBuildsLeafModel(t *testing.T) {
	st, _ := store.Open(t.TempDir(), geo.NewProjection(41.15, -8.61))
	defer st.Close()
	r, _ := New(testConfig())

	// 5 trajectories × 10 points = 50 tokens in leaf (0,0): above K=10.
	fill(t, st, 100, 100, 5, 10)
	var batch []store.Traj
	st.All(func(tr store.Traj) bool { batch = append(batch, tr); return true })

	var builds int
	err := r.Ingest(st, batch, func(region geo.Rect, trajs []store.Traj) (Handle, ModelMeta, error) {
		builds++
		return &fakeHandle{id: int32(builds)}, ModelMeta{Tokens: len(trajs) * 10}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if builds == 0 {
		t.Fatal("no models built")
	}
	single, _ := r.NumModels()
	if single == 0 {
		t.Fatal("no single-cell models recorded")
	}
	// Lookup for a trajectory inside leaf (0,0) must find a model.
	h, cover, ok := r.Lookup(geo.Rect{MinX: 110, MinY: 100, MaxX: 250, MaxY: 110})
	if !ok {
		t.Fatal("lookup failed for covered region")
	}
	if _, isFake := h.(*fakeHandle); !isFake {
		t.Error("wrong handle type")
	}
	if !cover.ContainsRect(geo.Rect{MinX: 110, MinY: 100, MaxX: 250, MaxY: 110}) {
		t.Error("coverage does not contain query")
	}
}

func TestIngestPropagatesToAncestors(t *testing.T) {
	st, _ := store.Open(t.TempDir(), geo.NewProjection(41.15, -8.61))
	defer st.Close()
	r, _ := New(testConfig())

	// Enough tokens to clear level-2 threshold (40) and level-1 (160).
	fill(t, st, 100, 100, 20, 10) // 200 tokens in leaf (0,0)
	var batch []store.Traj
	st.All(func(tr store.Traj) bool { batch = append(batch, tr); return true })

	err := r.Ingest(st, batch, func(region geo.Rect, trajs []store.Traj) (Handle, ModelMeta, error) {
		return &fakeHandle{id: 1}, ModelMeta{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, level := range []int{1, 2, 3} {
		e, ok := r.Entry(CellKey{Level: level, IX: 0, IY: 0})
		if !ok || e.Single == nil {
			t.Errorf("level %d cell (0,0) has no model", level)
		}
	}
	// Level 0 is not maintained: no model there even though tokens suffice.
	if e, ok := r.Entry(CellKey{Level: 0}); ok && e.Single != nil {
		t.Error("unmaintained root must not hold a model")
	}
}

func TestIngestNeighborModels(t *testing.T) {
	st, _ := store.Open(t.TempDir(), geo.NewProjection(41.15, -8.61))
	defer st.Close()
	r, _ := New(testConfig())

	// Two leaf cells side by side at level 3 (cells are 500m): data at
	// x≈100 (cell 0) and x≈600 (cell 1), each with 15 tokens: individually
	// above K=10, and 30 combined ≥ 2K=20 → neighbor model too.
	fill(t, st, 100, 100, 3, 5)
	fill(t, st, 600, 100, 3, 5)
	var batch []store.Traj
	st.All(func(tr store.Traj) bool { batch = append(batch, tr); return true })

	err := r.Ingest(st, batch, func(region geo.Rect, trajs []store.Traj) (Handle, ModelMeta, error) {
		return &fakeHandle{id: 7}, ModelMeta{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_, neighbor := r.NumModels()
	if neighbor == 0 {
		t.Fatal("no neighbor-cell models built")
	}
	// A trajectory spanning the two leaf cells must resolve to the
	// neighbor model at leaf level, not a coarser single-cell model.
	h, cover, ok := r.Lookup(geo.Rect{MinX: 150, MinY: 100, MaxX: 650, MaxY: 120})
	if !ok || h == nil {
		t.Fatal("lookup across pair failed")
	}
	if cover.Width() > 1100 {
		t.Errorf("expected a leaf pair coverage (~1000m), got %v", cover)
	}
}

func TestLookupMisses(t *testing.T) {
	r, _ := New(testConfig())
	if _, _, ok := r.Lookup(geo.Rect{MinX: 1, MinY: 1, MaxX: 2, MaxY: 2}); ok {
		t.Error("empty repo must not resolve")
	}
	if _, _, ok := r.Lookup(geo.EmptyRect()); ok {
		t.Error("empty rect must not resolve")
	}
	if _, _, ok := r.Lookup(geo.Rect{MinX: -100, MinY: 0, MaxX: 10, MaxY: 10}); ok {
		t.Error("out-of-region rect must not resolve")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	st, _ := store.Open(t.TempDir(), geo.NewProjection(41.15, -8.61))
	defer st.Close()
	r, _ := New(testConfig())
	fill(t, st, 100, 100, 20, 10)
	var batch []store.Traj
	st.All(func(tr store.Traj) bool { batch = append(batch, tr); return true })
	var next int32
	r.Ingest(st, batch, func(region geo.Rect, trajs []store.Traj) (Handle, ModelMeta, error) {
		next++
		return &fakeHandle{id: next}, ModelMeta{Tokens: 200}, nil
	})

	dir := t.TempDir()
	if err := r.Save(dir, fakeCodec{}); err != nil {
		t.Fatal(err)
	}
	r2, err := Load(dir, fakeCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Config() != r.Config() {
		t.Errorf("config mismatch: %+v vs %+v", r2.Config(), r.Config())
	}
	s1, n1 := r.NumModels()
	s2, n2 := r2.NumModels()
	if s1 != s2 || n1 != n2 {
		t.Errorf("model counts differ: %d/%d vs %d/%d", s1, n1, s2, n2)
	}
	// A lookup that worked before must work after.
	q := geo.Rect{MinX: 110, MinY: 100, MaxX: 250, MaxY: 110}
	if _, _, ok := r2.Lookup(q); !ok {
		t.Error("loaded repo misses a lookup the original served")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(t.TempDir(), fakeCodec{}); err == nil {
		t.Error("missing manifest must fail")
	}
}

func TestIngestVersionBumps(t *testing.T) {
	st, _ := store.Open(t.TempDir(), geo.NewProjection(41.15, -8.61))
	defer st.Close()
	r, _ := New(testConfig())
	fill(t, st, 100, 100, 5, 10)
	var batch []store.Traj
	st.All(func(tr store.Traj) bool { batch = append(batch, tr); return true })
	build := func(region geo.Rect, trajs []store.Traj) (Handle, ModelMeta, error) {
		return &fakeHandle{}, ModelMeta{}, nil
	}
	r.Ingest(st, batch, build)
	r.Ingest(st, batch, build) // re-ingest same batch => rebuild
	e, _ := r.Entry(CellKey{Level: 3, IX: 0, IY: 0})
	if e.SingleMeta.Version != 2 {
		t.Errorf("version = %d, want 2 after rebuild", e.SingleMeta.Version)
	}
}

package bert

import (
	"fmt"

	"kamel/internal/vocab"

	"kamel/internal/tensor"
)

// TrainConfig controls the masked-language-model training loop.
type TrainConfig struct {
	Steps    int                          // optimizer steps
	Batch    int                          // sequences per step
	LR       float64                      // peak learning rate
	Warmup   int                          // linear LR warmup steps (0 disables)
	MaskProb float64                      // fraction of tokens masked per sequence (BERT uses 0.15)
	Seed     uint64                       // masking/shuffling seed
	OnStep   func(step int, loss float64) // optional progress callback
}

// DefaultTrainConfig returns the training settings the experiment harness
// uses at reproduction scale.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Steps:    800,
		Batch:    16,
		LR:       3e-3,
		Warmup:   40,
		MaskProb: 0.15,
		Seed:     1,
	}
}

// TrainStats summarizes a completed training run.
type TrainStats struct {
	Steps     int
	FinalLoss float64 // mean loss over the last 10% of steps
	Sequences int     // training windows after chunking
}

// Train fits the model on the tokenized trajectories with BERT's masking
// objective.  Each input sequence is wrapped with [CLS]/[SEP] and chunked
// into overlapping windows of MaxSeqLen.  Per window, MaskProb of the
// interior tokens are selected; of those, 80% are replaced by [MASK], 10% by
// a random token, 10% left intact — exactly the original BERT procedure —
// and the model is trained to recover the originals.
func (m *Model) Train(sequences [][]int, tc TrainConfig) (TrainStats, error) {
	if tc.Steps <= 0 || tc.Batch <= 0 {
		return TrainStats{}, fmt.Errorf("bert: Steps and Batch must be positive")
	}
	if tc.MaskProb <= 0 || tc.MaskProb >= 1 {
		return TrainStats{}, fmt.Errorf("bert: MaskProb %f out of (0,1)", tc.MaskProb)
	}
	windows := m.chunk(sequences)
	if len(windows) == 0 {
		return TrainStats{}, fmt.Errorf("bert: no usable training sequences (need at least 3 tokens each)")
	}
	// Adam mutates the weights in place; any transposed copies held by the
	// batched inference engine would go stale.
	m.invalidateInfer()
	defer m.invalidateInfer()

	rng := tensor.NewRNG(tc.Seed)
	opt := tensor.NewAdam(tc.LR)
	gm := m.newGradHolder()

	var tail []float64
	tailFrom := tc.Steps - tc.Steps/10
	if tailFrom == tc.Steps {
		tailFrom = tc.Steps - 1
	}

	for step := 0; step < tc.Steps; step++ {
		if tc.Warmup > 0 && step < tc.Warmup {
			opt.LR = tc.LR * float64(step+1) / float64(tc.Warmup)
		} else {
			opt.LR = tc.LR
		}
		for _, g := range gm {
			g.Zero()
		}
		var batchLoss float64
		for b := 0; b < tc.Batch; b++ {
			seq := windows[rng.Intn(len(windows))]
			masked, positions, targets := m.maskSequence(seq, tc.MaskProb, rng)
			if len(positions) == 0 {
				continue
			}
			c := m.encode(masked)
			batchLoss += m.lossAndBackward(c, positions, targets, gm)
		}
		batchLoss /= float64(tc.Batch)
		// Average gradients over the batch.
		inv := float32(1 / float64(tc.Batch))
		for _, g := range gm {
			g.Scale(inv)
		}
		opt.Step(m.Params(), gm)

		if step >= tailFrom {
			tail = append(tail, batchLoss)
		}
		if tc.OnStep != nil {
			tc.OnStep(step, batchLoss)
		}
	}

	var final float64
	for _, l := range tail {
		final += l
	}
	if len(tail) > 0 {
		final /= float64(len(tail))
	}
	return TrainStats{Steps: tc.Steps, FinalLoss: final, Sequences: len(windows)}, nil
}

// chunk wraps each sequence with [CLS]/[SEP] and splits long ones into
// windows of MaxSeqLen with 50% overlap so that every local context is seen.
// Sequences shorter than 3 tokens (one real token) are dropped.
func (m *Model) chunk(sequences [][]int) [][]int {
	maxBody := m.Cfg.MaxSeqLen - 2
	stride := maxBody / 2
	if stride == 0 {
		stride = 1
	}
	var out [][]int
	for _, seq := range sequences {
		if len(seq) == 0 {
			continue
		}
		for start := 0; ; start += stride {
			end := start + maxBody
			if end > len(seq) {
				end = len(seq)
			}
			body := seq[start:end]
			if len(body) >= 1 {
				w := make([]int, 0, len(body)+2)
				w = append(w, vocab.CLS)
				w = append(w, body...)
				w = append(w, vocab.SEP)
				if len(w) >= 3 {
					out = append(out, w)
				}
			}
			if end == len(seq) {
				break
			}
		}
	}
	return out
}

// maskSequence applies BERT's 80/10/10 masking to the interior of a window
// (never the [CLS]/[SEP] frame), guaranteeing at least one masked position.
func (m *Model) maskSequence(seq []int, prob float64, rng *tensor.RNG) (masked []int, positions, targets []int) {
	masked = make([]int, len(seq))
	copy(masked, seq)
	interior := len(seq) - 2
	if interior <= 0 {
		return masked, nil, nil
	}
	for i := 1; i <= interior; i++ {
		if rng.Float64() >= prob {
			continue
		}
		positions = append(positions, i)
		targets = append(targets, seq[i])
		switch r := rng.Float64(); {
		case r < 0.8:
			masked[i] = vocab.MASK
		case r < 0.9:
			masked[i] = vocab.NumSpecial + rng.Intn(maxInt(1, m.Cfg.VocabSize-vocab.NumSpecial))
		default:
			// keep the original token
		}
	}
	if len(positions) == 0 {
		i := 1 + rng.Intn(interior)
		positions = append(positions, i)
		targets = append(targets, seq[i])
		masked[i] = vocab.MASK
	}
	return masked, positions, targets
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package bert

import (
	"fmt"
	"math"

	"kamel/internal/tensor"
)

// This file is the batched inference engine: the "Call BERT" arrow of the
// paper's Figure 1 amortized over many queries at once.  Beam search (paper
// §6.2) expands a whole frontier of candidate segments per iteration; issuing
// those masked predictions as one PredictMaskedBatch call stacks B sequences
// into a single [B×L, d] activation matrix, so every projection and FFN
// matmul runs once per layer instead of B times, on the transposed-weight
// register-tiled kernels of tensor.MatMulTN.  Attention remains per-sequence
// (a sequence must not attend across batch neighbors), computed over aliased
// row views of the stacked matrix.
//
// The engine is inference-only: it allocates no backward caches, reuses its
// activation buffers across layers, and is bit-compatible with the training
// forward pass — PredictMaskedBatch returns predictions element-wise equal to
// per-query PredictMasked calls (enforced by TestPredictMaskedBatchMatches).

// MaskQuery is one masked-prediction request: a token sequence (including
// any [CLS]/[SEP]/[MASK] specials), the position of the mask to score, and
// the number of candidates wanted (TopK <= 0 means the full vocabulary).
type MaskQuery struct {
	Tokens  []int
	MaskPos int
	TopK    int
}

// blockT caches one block's projection weights transposed for MatMulTN.
type blockT struct {
	wq, wk, wv, wo *tensor.Mat // d×d (transposed in place of the originals)
	w1             *tensor.Mat // f×d = W1ᵀ
	w2             *tensor.Mat // d×f = W2ᵀ
}

// inferT is the per-model transposed-weight cache, built lazily on the first
// batched prediction and dropped whenever training touches the weights.
type inferT struct {
	blocks []*blockT
	headW  *tensor.Mat // d×d = HeadWᵀ
}

// inferWeights returns the transposed-weight cache, building it on first use.
func (m *Model) inferWeights() *inferT {
	m.inferMu.Lock()
	defer m.inferMu.Unlock()
	if m.infer == nil {
		t := &inferT{headW: tensor.Transpose(m.HeadW)}
		for _, b := range m.Blocks {
			t.blocks = append(t.blocks, &blockT{
				wq: tensor.Transpose(b.Wq),
				wk: tensor.Transpose(b.Wk),
				wv: tensor.Transpose(b.Wv),
				wo: tensor.Transpose(b.Wo),
				w1: tensor.Transpose(b.W1),
				w2: tensor.Transpose(b.W2),
			})
		}
		m.infer = t
	}
	return m.infer
}

// invalidateInfer drops the transposed-weight cache; Train calls it so a
// model trained further never serves stale weights.
func (m *Model) invalidateInfer() {
	m.inferMu.Lock()
	m.infer = nil
	m.inferMu.Unlock()
}

// PredictMaskedBatch answers B masked-prediction queries in one engine pass
// and returns one candidate list per query, in query order.  Results are
// element-wise equal to calling PredictMasked per query; wall-clock is
// substantially lower because same-length sequences share every projection
// and FFN matmul.  It is safe for concurrent use on a model that is no
// longer training.
func (m *Model) PredictMaskedBatch(queries []MaskQuery) ([][]Candidate, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	for qi, q := range queries {
		if err := m.checkTokens(q.Tokens); err != nil {
			return nil, fmt.Errorf("bert: batch query %d: %w", qi, err)
		}
		if q.MaskPos < 0 || q.MaskPos >= len(q.Tokens) {
			return nil, fmt.Errorf("bert: batch query %d: mask position %d out of range for sequence of length %d", qi, q.MaskPos, len(q.Tokens))
		}
	}
	tw := m.inferWeights()
	d := m.Cfg.Hidden

	// Group queries by sequence length: stacking requires uniform rows per
	// sequence, and padding would change attention results.  Iteration is in
	// first-seen order so the engine stays deterministic.
	groups := make(map[int][]int)
	var lengths []int
	for qi, q := range queries {
		n := len(q.Tokens)
		if _, ok := groups[n]; !ok {
			lengths = append(lengths, n)
		}
		groups[n] = append(groups[n], qi)
	}

	// Encode each group and gather the masked-position encodings; the MLM
	// head then runs once over every query's mask row regardless of group.
	hx := tensor.NewMat(len(queries), d)
	for _, n := range lengths {
		idxs := groups[n]
		enc := m.encodeStack(tw, queries, idxs, n)
		for bi, qi := range idxs {
			copy(hx.Row(qi), enc.Row(bi*n+queries[qi].MaskPos))
		}
	}

	th := tensor.NewMat(len(queries), d)
	tensor.MatMulTN(th, hx, tw.headW, m.HeadB.A)
	tensor.GELU(th.A, th.A)
	tensor.LayerNormInfer(th, th, m.HeadLNg.A, m.HeadLNb.A, lnEps)
	logits := tensor.NewMat(len(queries), m.Cfg.VocabSize)
	tensor.MatMulBT(logits, th, m.TokEmb)

	out := make([][]Candidate, len(queries))
	for qi, q := range queries {
		row := logits.Row(qi)
		for j, bv := range m.OutBias.A {
			row[j] += bv
		}
		tensor.SoftmaxInPlace(row)
		out[qi] = topKCandidates(row, q.TopK)
	}
	return out, nil
}

// encodeStack runs the encoder over the queries selected by idxs (all of
// sequence length n) stacked into one [len(idxs)×n, d] activation matrix,
// and returns the final layer-norm output.  Buffers are reused across blocks
// so the pass allocates O(batch) matrices rather than O(batch × layers).
func (m *Model) encodeStack(tw *inferT, queries []MaskQuery, idxs []int, n int) *tensor.Mat {
	B := len(idxs)
	N := B * n
	d, f, heads := m.Cfg.Hidden, m.Cfg.FFN, m.Cfg.Heads
	dh := d / heads
	scale := float32(1 / math.Sqrt(float64(dh)))

	// Embeddings: token + position, layer-normed in place.
	x := tensor.NewMat(N, d)
	for bi, qi := range idxs {
		for i, tok := range queries[qi].Tokens {
			row := x.Row(bi*n + i)
			te := m.TokEmb.Row(tok)
			pe := m.PosEmb.Row(i)
			for j := 0; j < d; j++ {
				row[j] = te[j] + pe[j]
			}
		}
	}
	tensor.LayerNormInfer(x, x, m.EmbLNg.A, m.EmbLNb.A, lnEps)

	xn := tensor.NewMat(N, d)
	tmp := tensor.NewMat(N, d)
	q := tensor.NewMat(N, d)
	k := tensor.NewMat(N, d)
	v := tensor.NewMat(N, d)
	att := tensor.NewMat(N, d)
	pre := tensor.NewMat(N, f)

	for li, b := range m.Blocks {
		bt := tw.blocks[li]
		tensor.LayerNormInfer(xn, x, b.LN1g.A, b.LN1b.A, lnEps)
		tensor.MatMulTN(q, xn, bt.wq, b.Bq.A)
		tensor.MatMulTN(k, xn, bt.wk, b.Bk.A)
		tensor.MatMulTN(v, xn, bt.wv, b.Bv.A)

		// Attention stays per sequence: row views slice the stacked matrix
		// so no sequence attends across a batch neighbor.  Sequences are
		// independent, so large admission batches fan out across the tensor
		// worker pool, each chunk on its own head-sized scratch — results are
		// element-wise identical to the serial loop.
		tensor.ParallelRows(B, 2*n*n*d, func(blo, bhi int) {
			qh := tensor.NewMat(n, dh)
			kh := tensor.NewMat(n, dh)
			vh := tensor.NewMat(n, dh)
			oh := tensor.NewMat(n, dh)
			p := tensor.NewMat(n, n)
			for bi := blo; bi < bhi; bi++ {
				qs := q.RowsView(bi*n, (bi+1)*n)
				ks := k.RowsView(bi*n, (bi+1)*n)
				vs := v.RowsView(bi*n, (bi+1)*n)
				as := att.RowsView(bi*n, (bi+1)*n)
				for h := 0; h < heads; h++ {
					copyHead(qh, qs, h, dh)
					copyHead(kh, ks, h, dh)
					copyHead(vh, vs, h, dh)
					tensor.MatMulBT(p, qh, kh)
					p.Scale(scale)
					tensor.SoftmaxRows(p)
					tensor.MatMul(oh, p, vh)
					pasteHead(as, oh, h, dh)
				}
			}
		})

		tensor.MatMulTN(tmp, att, bt.wo, b.Bo.A)
		for i := range x.A {
			x.A[i] += tmp.A[i]
		}
		tensor.LayerNormInfer(xn, x, b.LN2g.A, b.LN2b.A, lnEps)
		tensor.MatMulTN(pre, xn, bt.w1, b.B1.A)
		tensor.GELU(pre.A, pre.A)
		tensor.MatMulTN(tmp, pre, bt.w2, b.B2.A)
		for i := range x.A {
			x.A[i] += tmp.A[i]
		}
	}
	tensor.LayerNormInfer(x, x, m.FinLNg.A, m.FinLNb.A, lnEps)
	return x
}

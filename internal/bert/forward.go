package bert

import (
	"math"

	"kamel/internal/tensor"
)

// blockCache stores the per-block activations the backward pass needs.
type blockCache struct {
	xIn   *tensor.Mat   // block input (n×d)
	xhat1 *tensor.Mat   // LN1 normalized pre-gain
	xn1   *tensor.Mat   // LN1 output
	q     *tensor.Mat   // n×d
	k     *tensor.Mat   // n×d
	v     *tensor.Mat   // n×d
	probs []*tensor.Mat // per-head attention probabilities (n×n)
	att   *tensor.Mat   // concatenated head outputs, pre-Wo (n×d)
	xMid  *tensor.Mat   // after the attention residual (n×d)
	xhat2 *tensor.Mat
	xn2   *tensor.Mat
	pre   *tensor.Mat // FFN pre-activation (n×f)
	h     *tensor.Mat // gelu(pre) (n×f)
	out   *tensor.Mat // block output (n×d), the next block's xIn
}

// cache stores the full activation trace of one sequence forward pass.
type cache struct {
	tokens  []int
	emb     *tensor.Mat // token+position embedding sum (n×d)
	embXhat *tensor.Mat
	embOut  *tensor.Mat // embedding LN output = input to block 0
	blocks  []*blockCache
	finIn   *tensor.Mat // output of the last block
	finXhat *tensor.Mat
	encOut  *tensor.Mat // final LN output (n×d)
}

// encode runs the encoder over one token sequence and returns the activation
// trace.  Token validity is the caller's responsibility (checkTokens).
func (m *Model) encode(tokens []int) *cache {
	n, d := len(tokens), m.Cfg.Hidden
	c := &cache{tokens: tokens}

	// Embeddings: token + position, then layer norm.
	c.emb = tensor.NewMat(n, d)
	for i, t := range tokens {
		row := c.emb.Row(i)
		te := m.TokEmb.Row(t)
		pe := m.PosEmb.Row(i)
		for j := 0; j < d; j++ {
			row[j] = te[j] + pe[j]
		}
	}
	c.embXhat = tensor.NewMat(n, d)
	c.embOut = tensor.NewMat(n, d)
	tensor.LayerNormForward(c.embOut, c.embXhat, c.emb, m.EmbLNg.A, m.EmbLNb.A, lnEps)

	x := c.embOut
	for _, b := range m.Blocks {
		bc := m.blockForward(b, x)
		c.blocks = append(c.blocks, bc)
		// Recompute the block output from the cache: xOut = xMid + F where
		// F = h·W2 + B2 was folded into xOut during blockForward; we keep
		// the output as the next block's xIn, stored transiently here.
		x = bc.out
	}

	c.finIn = x
	c.finXhat = tensor.NewMat(n, d)
	c.encOut = tensor.NewMat(n, d)
	tensor.LayerNormForward(c.encOut, c.finXhat, c.finIn, m.FinLNg.A, m.FinLNb.A, lnEps)
	return c
}

// out is the block output; stored on blockCache for chaining (not needed by
// the backward pass itself, which reconstructs gradients from the rest).
func (m *Model) blockForward(b *Block, x *tensor.Mat) *blockCache {
	n, d, f := x.R, m.Cfg.Hidden, m.Cfg.FFN
	heads := m.Cfg.Heads
	dh := d / heads
	scale := float32(1 / math.Sqrt(float64(dh)))

	bc := &blockCache{xIn: x}
	bc.xhat1 = tensor.NewMat(n, d)
	bc.xn1 = tensor.NewMat(n, d)
	tensor.LayerNormForward(bc.xn1, bc.xhat1, x, b.LN1g.A, b.LN1b.A, lnEps)

	bc.q = linear(bc.xn1, b.Wq, b.Bq)
	bc.k = linear(bc.xn1, b.Wk, b.Bk)
	bc.v = linear(bc.xn1, b.Wv, b.Bv)

	bc.att = tensor.NewMat(n, d)
	bc.probs = make([]*tensor.Mat, heads)
	qh := tensor.NewMat(n, dh)
	kh := tensor.NewMat(n, dh)
	vh := tensor.NewMat(n, dh)
	oh := tensor.NewMat(n, dh)
	for h := 0; h < heads; h++ {
		copyHead(qh, bc.q, h, dh)
		copyHead(kh, bc.k, h, dh)
		copyHead(vh, bc.v, h, dh)
		p := tensor.NewMat(n, n)
		tensor.MatMulBT(p, qh, kh)
		p.Scale(scale)
		tensor.SoftmaxRows(p)
		bc.probs[h] = p
		tensor.MatMul(oh, p, vh)
		pasteHead(bc.att, oh, h, dh)
	}

	attOut := linear(bc.att, b.Wo, b.Bo)
	bc.xMid = tensor.NewMat(n, d)
	for i := range bc.xMid.A {
		bc.xMid.A[i] = x.A[i] + attOut.A[i]
	}

	bc.xhat2 = tensor.NewMat(n, d)
	bc.xn2 = tensor.NewMat(n, d)
	tensor.LayerNormForward(bc.xn2, bc.xhat2, bc.xMid, b.LN2g.A, b.LN2b.A, lnEps)

	bc.pre = linear(bc.xn2, b.W1, b.B1)
	bc.h = tensor.NewMat(n, f)
	tensor.GELU(bc.h.A, bc.pre.A)
	ffnOut := linear(bc.h, b.W2, b.B2)

	bc.out = tensor.NewMat(n, d)
	for i := range bc.out.A {
		bc.out.A[i] = bc.xMid.A[i] + ffnOut.A[i]
	}
	return bc
}

// linear computes x·W + b (bias broadcast over rows).
func linear(x, w, bias *tensor.Mat) *tensor.Mat {
	out := tensor.NewMat(x.R, w.C)
	tensor.MatMul(out, x, w)
	for i := 0; i < out.R; i++ {
		row := out.Row(i)
		for j, bv := range bias.A {
			row[j] += bv
		}
	}
	return out
}

// copyHead extracts head h's column slice of src (n×d) into dst (n×dh).
func copyHead(dst, src *tensor.Mat, h, dh int) {
	off := h * dh
	for i := 0; i < src.R; i++ {
		copy(dst.Row(i), src.Row(i)[off:off+dh])
	}
}

// pasteHead writes dst (n×dh) into head h's column slice of out (n×d).
func pasteHead(out, src *tensor.Mat, h, dh int) {
	off := h * dh
	for i := 0; i < src.R; i++ {
		copy(out.Row(i)[off:off+dh], src.Row(i))
	}
}

// headForward runs the MLM head at the given sequence positions, returning
// the logits (len(positions)×V) and the intermediates needed for backward.
func (m *Model) headForward(c *cache, positions []int) (logits, x, t, g, ghat, hn *tensor.Mat) {
	d, v := m.Cfg.Hidden, m.Cfg.VocabSize
	mrows := len(positions)
	x = tensor.NewMat(mrows, d)
	for i, p := range positions {
		copy(x.Row(i), c.encOut.Row(p))
	}
	t = linear(x, m.HeadW, m.HeadB)
	g = tensor.NewMat(mrows, d)
	tensor.GELU(g.A, t.A)
	ghat = tensor.NewMat(mrows, d)
	hn = tensor.NewMat(mrows, d)
	tensor.LayerNormForward(hn, ghat, g, m.HeadLNg.A, m.HeadLNb.A, lnEps)
	logits = tensor.NewMat(mrows, v)
	tensor.MatMulBT(logits, hn, m.TokEmb)
	for i := 0; i < mrows; i++ {
		row := logits.Row(i)
		for j, bv := range m.OutBias.A {
			row[j] += bv
		}
	}
	return logits, x, t, g, ghat, hn
}

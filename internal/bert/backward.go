package bert

import (
	"math"

	"kamel/internal/tensor"
)

// grads indexes a Params-ordered gradient holder by the same names as the
// model, so the backward code reads like the math.
type grads struct {
	mats []*tensor.Mat
	ps   []*tensor.Mat // Params(), cached once per backward pass
}

func (g *grads) of(p *tensor.Mat) *tensor.Mat {
	// Params order is fixed; find by identity.  The slice is short (tens of
	// entries), so a linear scan is cheaper than a map.
	for i, q := range g.ps {
		if q == p {
			return g.mats[i]
		}
	}
	panic("bert: gradient requested for unknown parameter")
}

// lossAndBackward computes the mean masked cross-entropy loss of one sequence
// and accumulates parameter gradients into gm (Params order).  positions are
// the masked indices; targets the true token IDs at those positions.
// It returns the loss.
func (m *Model) lossAndBackward(c *cache, positions, targets []int, gm []*tensor.Mat) float64 {
	g := &grads{mats: gm, ps: m.Params()}
	n, d, v := len(c.tokens), m.Cfg.Hidden, m.Cfg.VocabSize
	mrows := len(positions)
	if mrows == 0 {
		return 0
	}

	logits, hx, ht, hg, ghat, hn := m.headForward(c, positions)

	// Cross-entropy + softmax backward.  dlogits = (softmax - onehot)/mrows.
	var loss float64
	dlogits := tensor.NewMat(mrows, v)
	for i := 0; i < mrows; i++ {
		row := logits.Row(i)
		lse := tensor.LogSumExp(row)
		loss += lse - float64(row[targets[i]])
		drow := dlogits.Row(i)
		copy(drow, row)
		tensor.SoftmaxInPlace(drow)
		drow[targets[i]] -= 1
		for j := range drow {
			drow[j] /= float32(mrows)
		}
	}
	loss /= float64(mrows)

	// Output projection (tied to TokEmb): logits = hn·TokEmbᵀ + OutBias, so
	// dhn = dlogits·TokEmb and dTokEmb += dlogitsᵀ·hn.
	dhn := tensor.NewMat(mrows, d)
	tensor.MatMul(dhn, dlogits, m.TokEmb)
	addMatMulAT(g.of(m.TokEmb), dlogits, hn)

	dOutBias := g.of(m.OutBias)
	for i := 0; i < mrows; i++ {
		row := dlogits.Row(i)
		for j := range row {
			dOutBias.A[j] += row[j]
		}
	}

	// Head layer norm backward.
	dg := tensor.NewMat(mrows, d)
	tensor.LayerNormBackward(dg, dhn, ghat, hg, m.HeadLNg.A, g.of(m.HeadLNg).A, g.of(m.HeadLNb).A, lnEps)

	// Head GELU backward.
	dt := tensor.NewMat(mrows, d)
	tensor.GELUBackward(dt.A, dg.A, ht.A)

	// Head transform backward: t = x·HeadW + HeadB.
	dx := tensor.NewMat(mrows, d)
	tensor.MatMulBT(dx, dt, m.HeadW)
	addMatMulAT(g.of(m.HeadW), hx, dt)
	addColSum(g.of(m.HeadB), dt)

	// Scatter into the encoder-output gradient.
	dEnc := tensor.NewMat(n, d)
	for i, p := range positions {
		dst := dEnc.Row(p)
		src := dx.Row(i)
		for j := range dst {
			dst[j] += src[j]
		}
	}

	// Final layer norm backward.
	dFinIn := tensor.NewMat(n, d)
	tensor.LayerNormBackward(dFinIn, dEnc, c.finXhat, c.finIn, m.FinLNg.A, g.of(m.FinLNg).A, g.of(m.FinLNb).A, lnEps)

	// Blocks in reverse.
	dOut := dFinIn
	for i := len(m.Blocks) - 1; i >= 0; i-- {
		dOut = m.blockBackward(m.Blocks[i], c.blocks[i], dOut, g)
	}

	// Embedding layer norm backward.
	dEmb := tensor.NewMat(n, d)
	tensor.LayerNormBackward(dEmb, dOut, c.embXhat, c.emb, m.EmbLNg.A, g.of(m.EmbLNg).A, g.of(m.EmbLNb).A, lnEps)

	// Scatter into token and position embedding gradients.
	dTok := g.of(m.TokEmb)
	dPos := g.of(m.PosEmb)
	for i, tok := range c.tokens {
		src := dEmb.Row(i)
		tr := dTok.Row(tok)
		pr := dPos.Row(i)
		for j := range src {
			tr[j] += src[j]
			pr[j] += src[j]
		}
	}
	return loss
}

// blockBackward backpropagates through one block, accumulating parameter
// gradients and returning the gradient w.r.t. the block input.
func (m *Model) blockBackward(b *Block, bc *blockCache, dOut *tensor.Mat, g *grads) *tensor.Mat {
	n, d, f := bc.xIn.R, m.Cfg.Hidden, m.Cfg.FFN
	heads := m.Cfg.Heads
	dh := d / heads
	scale := float32(1 / math.Sqrt(float64(dh)))

	// FFN residual: out = xMid + (gelu(LN2(xMid)·W1+B1)·W2+B2).
	dF := dOut // gradient of the FFN branch output
	dH := tensor.NewMat(n, f)
	tensor.MatMulBT(dH, dF, b.W2)
	addMatMulAT(g.of(b.W2), bc.h, dF)
	addColSum(g.of(b.B2), dF)

	dPre := tensor.NewMat(n, f)
	tensor.GELUBackward(dPre.A, dH.A, bc.pre.A)

	dXn2 := tensor.NewMat(n, d)
	tensor.MatMulBT(dXn2, dPre, b.W1)
	addMatMulAT(g.of(b.W1), bc.xn2, dPre)
	addColSum(g.of(b.B1), dPre)

	dXMid := tensor.NewMat(n, d)
	tensor.LayerNormBackward(dXMid, dXn2, bc.xhat2, bc.xMid, b.LN2g.A, g.of(b.LN2g).A, g.of(b.LN2b).A, lnEps)
	dXMid.Add(dOut) // residual connection

	// Attention residual: xMid = xIn + (att·Wo + Bo).
	dA := dXMid
	dAtt := tensor.NewMat(n, d)
	tensor.MatMulBT(dAtt, dA, b.Wo)
	addMatMulAT(g.of(b.Wo), bc.att, dA)
	addColSum(g.of(b.Bo), dA)

	dQ := tensor.NewMat(n, d)
	dK := tensor.NewMat(n, d)
	dV := tensor.NewMat(n, d)
	qh := tensor.NewMat(n, dh)
	kh := tensor.NewMat(n, dh)
	vh := tensor.NewMat(n, dh)
	dOh := tensor.NewMat(n, dh)
	dP := tensor.NewMat(n, n)
	dS := tensor.NewMat(n, n)
	dQh := tensor.NewMat(n, dh)
	dKh := tensor.NewMat(n, dh)
	dVh := tensor.NewMat(n, dh)
	for h := 0; h < heads; h++ {
		copyHead(qh, bc.q, h, dh)
		copyHead(kh, bc.k, h, dh)
		copyHead(vh, bc.v, h, dh)
		copyHead(dOh, dAtt, h, dh)
		p := bc.probs[h]

		// dP = dOh·Vhᵀ ; dVh = Pᵀ·dOh.
		tensor.MatMulBT(dP, dOh, vh)
		tensor.MatMulAT(dVh, p, dOh)

		// Softmax backward: dS = P ⊙ (dP − rowsum(dP⊙P)).
		for i := 0; i < n; i++ {
			pi := p.Row(i)
			dpi := dP.Row(i)
			var dot float32
			for j := range pi {
				dot += dpi[j] * pi[j]
			}
			dsi := dS.Row(i)
			for j := range pi {
				dsi[j] = pi[j] * (dpi[j] - dot)
			}
		}
		dS.Scale(scale) // the 1/sqrt(dh) applied before softmax

		// dQh = dS·Kh ; dKh = dSᵀ·Qh.
		tensor.MatMul(dQh, dS, kh)
		tensor.MatMulAT(dKh, dS, qh)

		pasteHead(dQ, dQh, h, dh)
		pasteHead(dK, dKh, h, dh)
		pasteHead(dV, dVh, h, dh)
	}

	// Projections: q = xn1·Wq + Bq, etc.
	dXn1 := tensor.NewMat(n, d)
	tmp := tensor.NewMat(n, d)
	tensor.MatMulBT(dXn1, dQ, b.Wq)
	tensor.MatMulBT(tmp, dK, b.Wk)
	dXn1.Add(tmp)
	tensor.MatMulBT(tmp, dV, b.Wv)
	dXn1.Add(tmp)
	addMatMulAT(g.of(b.Wq), bc.xn1, dQ)
	addMatMulAT(g.of(b.Wk), bc.xn1, dK)
	addMatMulAT(g.of(b.Wv), bc.xn1, dV)
	addColSum(g.of(b.Bq), dQ)
	addColSum(g.of(b.Bk), dK)
	addColSum(g.of(b.Bv), dV)

	dXIn := tensor.NewMat(n, d)
	tensor.LayerNormBackward(dXIn, dXn1, bc.xhat1, bc.xIn, b.LN1g.A, g.of(b.LN1g).A, g.of(b.LN1b).A, lnEps)
	dXIn.Add(dXMid) // residual connection
	return dXIn
}

// addMatMulAT accumulates aᵀ·b into dst.
func addMatMulAT(dst, a, b *tensor.Mat) {
	tmp := tensor.NewMat(dst.R, dst.C)
	tensor.MatMulAT(tmp, a, b)
	dst.Add(tmp)
}

// addColSum accumulates the column sums of src into the 1×C matrix dst.
func addColSum(dst, src *tensor.Mat) {
	for i := 0; i < src.R; i++ {
		row := src.Row(i)
		for j := range row {
			dst.A[j] += row[j]
		}
	}
}

package bert

import (
	"strings"
	"testing"

	"kamel/internal/vocab"
)

// batchTestQueries builds a mixed-length batch that exercises grouping:
// three distinct sequence lengths, interleaved, with repeated lengths.
func batchTestQueries() []MaskQuery {
	return []MaskQuery{
		{Tokens: []int{vocab.CLS, 5, vocab.MASK, 7, vocab.SEP}, MaskPos: 2, TopK: 4},
		{Tokens: []int{vocab.CLS, vocab.MASK, 6, vocab.SEP}, MaskPos: 1, TopK: 3},
		{Tokens: []int{vocab.CLS, 4, 5, vocab.MASK, 7, 8, vocab.SEP}, MaskPos: 3, TopK: 5},
		{Tokens: []int{vocab.CLS, 8, vocab.MASK, 5, vocab.SEP}, MaskPos: 2, TopK: 4},
		{Tokens: []int{vocab.CLS, vocab.MASK, 9, vocab.SEP}, MaskPos: 1, TopK: 0},
		{Tokens: []int{vocab.CLS, 6, 7, vocab.MASK, 9, 10, vocab.SEP}, MaskPos: 3, TopK: 2},
	}
}

func assertBatchMatchesSequential(t *testing.T, m *Model, queries []MaskQuery) {
	t.Helper()
	got, err := m.PredictMaskedBatch(queries)
	if err != nil {
		t.Fatalf("PredictMaskedBatch: %v", err)
	}
	if len(got) != len(queries) {
		t.Fatalf("got %d result lists, want %d", len(got), len(queries))
	}
	for qi, q := range queries {
		want, err := m.PredictMasked(q.Tokens, q.MaskPos, q.TopK)
		if err != nil {
			t.Fatalf("PredictMasked query %d: %v", qi, err)
		}
		if len(got[qi]) != len(want) {
			t.Fatalf("query %d: %d candidates, want %d", qi, len(got[qi]), len(want))
		}
		for ci := range want {
			if got[qi][ci] != want[ci] {
				t.Fatalf("query %d candidate %d: batch %+v != sequential %+v",
					qi, ci, got[qi][ci], want[ci])
			}
		}
	}
}

// TestPredictMaskedBatchMatches is the engine's exactness contract: batched
// predictions must be element-wise identical (token IDs and probabilities)
// to per-query PredictMasked calls, across mixed sequence lengths.
func TestPredictMaskedBatchMatches(t *testing.T) {
	m, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	assertBatchMatchesSequential(t, m, batchTestQueries())

	// A single-query batch must match too (the n=1 kernel remainder path).
	assertBatchMatchesSequential(t, m, batchTestQueries()[:1])
}

// TestPredictMaskedBatchAfterTrain retrains the model between batched calls;
// the transposed-weight cache must be invalidated so results track the new
// weights.
func TestPredictMaskedBatchAfterTrain(t *testing.T) {
	m, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	queries := batchTestQueries()
	before, err := m.PredictMaskedBatch(queries)
	if err != nil {
		t.Fatal(err)
	}

	seqs := [][]int{{5, 6, 7, 8}, {8, 7, 6, 5}, {4, 5, 6, 7, 8, 9}}
	if _, err := m.Train(seqs, TrainConfig{Steps: 5, Batch: 4, LR: 1e-2, MaskProb: 0.3, Seed: 7}); err != nil {
		t.Fatal(err)
	}

	assertBatchMatchesSequential(t, m, queries)

	after, err := m.PredictMaskedBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	changed := false
	for qi := range before {
		for ci := range before[qi] {
			if before[qi][ci] != after[qi][ci] {
				changed = true
			}
		}
	}
	if !changed {
		t.Fatal("predictions identical after training; stale transposed-weight cache?")
	}
}

func TestPredictMaskedBatchErrors(t *testing.T) {
	m, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}

	if out, err := m.PredictMaskedBatch(nil); err != nil || out != nil {
		t.Fatalf("empty batch: got (%v, %v), want (nil, nil)", out, err)
	}

	cases := []struct {
		name  string
		q     MaskQuery
		index string
	}{
		{"empty tokens", MaskQuery{Tokens: nil, MaskPos: 0}, "query 1"},
		{"token out of vocab", MaskQuery{Tokens: []int{vocab.CLS, 99, vocab.SEP}, MaskPos: 1}, "query 1"},
		{"mask position negative", MaskQuery{Tokens: []int{vocab.CLS, 5, vocab.SEP}, MaskPos: -1}, "query 1"},
		{"mask position past end", MaskQuery{Tokens: []int{vocab.CLS, 5, vocab.SEP}, MaskPos: 3}, "query 1"},
		{"too long", MaskQuery{Tokens: make([]int, 11), MaskPos: 0}, "query 1"},
	}
	valid := MaskQuery{Tokens: []int{vocab.CLS, vocab.MASK, vocab.SEP}, MaskPos: 1, TopK: 2}
	for _, tc := range cases {
		_, err := m.PredictMaskedBatch([]MaskQuery{valid, tc.q})
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.index) {
			t.Errorf("%s: error %q should name the offending %s", tc.name, err, tc.index)
		}
	}
}

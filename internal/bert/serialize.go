package bert

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary model format, little-endian:
//
//	magic "KBRT" | u32 version
//	u32 ×7: VocabSize Hidden Layers Heads FFN MaxSeqLen (Seed lo32, Seed hi32 as two u32)
//	for each parameter in Params() order: u32 rows, u32 cols, rows*cols × f32
//
// The Params() order is part of the format; changing it requires bumping the
// version.
const (
	modelMagic   = "KBRT"
	modelVersion = 1
)

// WriteTo serializes the model weights and configuration.
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var written int64
	put32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		bw.Write(b[:])
		written += 4
	}
	if _, err := bw.WriteString(modelMagic); err != nil {
		return written, err
	}
	written += 4
	put32(modelVersion)
	put32(uint32(m.Cfg.VocabSize))
	put32(uint32(m.Cfg.Hidden))
	put32(uint32(m.Cfg.Layers))
	put32(uint32(m.Cfg.Heads))
	put32(uint32(m.Cfg.FFN))
	put32(uint32(m.Cfg.MaxSeqLen))
	put32(uint32(m.Cfg.Seed & 0xffffffff))
	put32(uint32(m.Cfg.Seed >> 32))

	buf := make([]byte, 4)
	for _, p := range m.Params() {
		put32(uint32(p.R))
		put32(uint32(p.C))
		for _, v := range p.A {
			binary.LittleEndian.PutUint32(buf, math.Float32bits(v))
			if _, err := bw.Write(buf); err != nil {
				return written, err
			}
			written += 4
		}
	}
	return written, bw.Flush()
}

// Read deserializes a model previously written by WriteTo.
func Read(r io.Reader) (*Model, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, 4)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("bert: reading magic: %w", err)
	}
	if string(head) != modelMagic {
		return nil, fmt.Errorf("bert: bad magic %q", head)
	}
	get32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	ver, err := get32()
	if err != nil {
		return nil, fmt.Errorf("bert: reading version: %w", err)
	}
	if ver != modelVersion {
		return nil, fmt.Errorf("bert: unsupported model version %d", ver)
	}
	var fields [8]uint32
	for i := range fields {
		if fields[i], err = get32(); err != nil {
			return nil, fmt.Errorf("bert: reading config: %w", err)
		}
	}
	cfg := Config{
		VocabSize: int(fields[0]),
		Hidden:    int(fields[1]),
		Layers:    int(fields[2]),
		Heads:     int(fields[3]),
		FFN:       int(fields[4]),
		MaxSeqLen: int(fields[5]),
		Seed:      uint64(fields[6]) | uint64(fields[7])<<32,
	}
	m, err := New(cfg)
	if err != nil {
		return nil, fmt.Errorf("bert: deserialized config invalid: %w", err)
	}
	buf := make([]byte, 4)
	for pi, p := range m.Params() {
		rows, err := get32()
		if err != nil {
			return nil, fmt.Errorf("bert: reading param %d shape: %w", pi, err)
		}
		cols, err := get32()
		if err != nil {
			return nil, fmt.Errorf("bert: reading param %d shape: %w", pi, err)
		}
		if int(rows) != p.R || int(cols) != p.C {
			return nil, fmt.Errorf("bert: param %d shape %dx%d does not match config (%dx%d)", pi, rows, cols, p.R, p.C)
		}
		for i := range p.A {
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, fmt.Errorf("bert: reading param %d data: %w", pi, err)
			}
			p.A[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf))
		}
	}
	return m, nil
}

package bert

import (
	"fmt"
	"sort"

	"kamel/internal/tensor"
)

// Candidate is one masked-token prediction: a token ID and its softmax
// probability.  The Partitioning module forwards candidate lists to the
// Spatial Constraints module (paper Figure 1).
type Candidate struct {
	Token int
	Prob  float64
}

// PredictMasked runs the model over tokens (which must already contain
// exactly the sequence to score, including any [CLS]/[SEP]/[MASK]) and
// returns the topK candidates at position maskPos, most probable first.
// It is safe for concurrent use on a model that is no longer training.
func (m *Model) PredictMasked(tokens []int, maskPos int, topK int) ([]Candidate, error) {
	if err := m.checkTokens(tokens); err != nil {
		return nil, err
	}
	if maskPos < 0 || maskPos >= len(tokens) {
		return nil, fmt.Errorf("bert: mask position %d out of range for sequence of length %d", maskPos, len(tokens))
	}
	c := m.encode(tokens)
	logits, _, _, _, _, _ := m.headForward(c, []int{maskPos})
	row := logits.Row(0)
	tensor.SoftmaxInPlace(row)
	return topKCandidates(row, topK), nil
}

// topKCandidates extracts the k highest-probability tokens from a softmax
// row.  For small k it does a partial selection rather than a full sort.
func topKCandidates(probs []float32, k int) []Candidate {
	if k <= 0 || k > len(probs) {
		k = len(probs)
	}
	out := make([]Candidate, 0, k)
	for tok, p := range probs {
		c := Candidate{Token: tok, Prob: float64(p)}
		if len(out) < k {
			out = append(out, c)
			if len(out) == k {
				sort.Slice(out, func(i, j int) bool { return out[i].Prob > out[j].Prob })
			}
			continue
		}
		if c.Prob <= out[k-1].Prob {
			continue
		}
		// Insert in order, dropping the smallest.
		i := sort.Search(k, func(i int) bool { return out[i].Prob < c.Prob })
		copy(out[i+1:], out[i:k-1])
		out[i] = c
	}
	if len(out) < k {
		sort.Slice(out, func(i, j int) bool { return out[i].Prob > out[j].Prob })
	}
	return out
}

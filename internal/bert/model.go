package bert

import (
	"fmt"
	"sync"

	"kamel/internal/tensor"
)

// Block holds the parameters of one pre-LN transformer encoder block.
type Block struct {
	Wq, Wk, Wv, Wo *tensor.Mat // d×d projections
	Bq, Bk, Bv, Bo *tensor.Mat // 1×d biases
	LN1g, LN1b     *tensor.Mat // 1×d attention layer-norm
	W1             *tensor.Mat // d×f
	B1             *tensor.Mat // 1×f
	W2             *tensor.Mat // f×d
	B2             *tensor.Mat // 1×d
	LN2g, LN2b     *tensor.Mat // 1×d feed-forward layer-norm
}

// Model is a BERT-style masked-language model.  Weights are plain matrices;
// the model is safe for concurrent *inference* once training has finished
// (forward passes allocate their own activation buffers).
type Model struct {
	Cfg Config

	TokEmb *tensor.Mat // V×d token embeddings (tied with the output projection)
	PosEmb *tensor.Mat // MaxSeqLen×d learned position embeddings
	EmbLNg *tensor.Mat // 1×d embedding layer-norm gain
	EmbLNb *tensor.Mat // 1×d embedding layer-norm bias

	Blocks []*Block

	FinLNg *tensor.Mat // 1×d final layer-norm gain
	FinLNb *tensor.Mat // 1×d final layer-norm bias

	HeadW   *tensor.Mat // d×d MLM transform
	HeadB   *tensor.Mat // 1×d
	HeadLNg *tensor.Mat // 1×d MLM layer-norm gain
	HeadLNb *tensor.Mat // 1×d
	OutBias *tensor.Mat // 1×V output bias (projection itself is TokEmbᵀ)

	// Lazily built transposed-weight cache for the batched inference engine
	// (batch.go); dropped by Train whenever the weights change.
	inferMu sync.Mutex
	infer   *inferT
}

const lnEps = 1e-5

// New constructs a model with randomly initialized weights.  Layer-norm
// gains start at 1, everything else per BERT convention (N(0, 0.02) for
// embeddings, Xavier for projections, zero biases).
func New(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := tensor.NewRNG(cfg.Seed)
	d, f, v := cfg.Hidden, cfg.FFN, cfg.VocabSize

	m := &Model{Cfg: cfg}
	m.TokEmb = tensor.NewMat(v, d)
	tensor.NormalInit(m.TokEmb, 0.02, rng)
	m.PosEmb = tensor.NewMat(cfg.MaxSeqLen, d)
	tensor.NormalInit(m.PosEmb, 0.02, rng)
	m.EmbLNg = ones(1, d)
	m.EmbLNb = tensor.NewMat(1, d)

	for i := 0; i < cfg.Layers; i++ {
		b := &Block{
			Wq: xavier(d, d, rng), Wk: xavier(d, d, rng),
			Wv: xavier(d, d, rng), Wo: xavier(d, d, rng),
			Bq: tensor.NewMat(1, d), Bk: tensor.NewMat(1, d),
			Bv: tensor.NewMat(1, d), Bo: tensor.NewMat(1, d),
			LN1g: ones(1, d), LN1b: tensor.NewMat(1, d),
			W1: xavier(d, f, rng), B1: tensor.NewMat(1, f),
			W2: xavier(f, d, rng), B2: tensor.NewMat(1, d),
			LN2g: ones(1, d), LN2b: tensor.NewMat(1, d),
		}
		m.Blocks = append(m.Blocks, b)
	}

	m.FinLNg = ones(1, d)
	m.FinLNb = tensor.NewMat(1, d)
	m.HeadW = xavier(d, d, rng)
	m.HeadB = tensor.NewMat(1, d)
	m.HeadLNg = ones(1, d)
	m.HeadLNb = tensor.NewMat(1, d)
	m.OutBias = tensor.NewMat(1, v)
	return m, nil
}

func xavier(r, c int, rng *tensor.RNG) *tensor.Mat {
	m := tensor.NewMat(r, c)
	tensor.XavierInit(m, rng)
	return m
}

func ones(r, c int) *tensor.Mat {
	m := tensor.NewMat(r, c)
	for i := range m.A {
		m.A[i] = 1
	}
	return m
}

// Params returns every trainable matrix in a fixed, documented order.  The
// same order is used by gradient accumulators and the serializer, so the
// three always agree.
func (m *Model) Params() []*tensor.Mat {
	out := []*tensor.Mat{m.TokEmb, m.PosEmb, m.EmbLNg, m.EmbLNb}
	for _, b := range m.Blocks {
		out = append(out,
			b.Wq, b.Bq, b.Wk, b.Bk, b.Wv, b.Bv, b.Wo, b.Bo,
			b.LN1g, b.LN1b, b.W1, b.B1, b.W2, b.B2, b.LN2g, b.LN2b,
		)
	}
	out = append(out, m.FinLNg, m.FinLNb, m.HeadW, m.HeadB, m.HeadLNg, m.HeadLNb, m.OutBias)
	return out
}

// NumParams returns the number of trainable scalars in the live model.
func (m *Model) NumParams() int {
	var n int
	for _, p := range m.Params() {
		n += len(p.A)
	}
	return n
}

// SizeBytes returns the model's resident memory footprint: every trainable
// float32 plus the transposed-weight inference cache, which is about the
// same size again and is built lazily by the first prediction.  The figure
// is charged against the model cache's byte budget at load time — before
// the model has served — so the inference cache is always counted: a cached
// model is by definition about to serve, and undercounting would let the
// budget be exceeded by 2× in steady state.
func (m *Model) SizeBytes() int64 {
	return int64(m.NumParams()) * 4 * 2
}

// newGradHolder allocates zero matrices shaped like every parameter, in
// Params order.
func (m *Model) newGradHolder() []*tensor.Mat {
	ps := m.Params()
	out := make([]*tensor.Mat, len(ps))
	for i, p := range ps {
		out[i] = tensor.NewMat(p.R, p.C)
	}
	return out
}

// checkTokens validates a token sequence for forward passes.
func (m *Model) checkTokens(tokens []int) error {
	if len(tokens) == 0 {
		return fmt.Errorf("bert: empty token sequence")
	}
	if len(tokens) > m.Cfg.MaxSeqLen {
		return fmt.Errorf("bert: sequence length %d exceeds MaxSeqLen %d", len(tokens), m.Cfg.MaxSeqLen)
	}
	for i, t := range tokens {
		if t < 0 || t >= m.Cfg.VocabSize {
			return fmt.Errorf("bert: token %d at position %d outside vocabulary of size %d", t, i, m.Cfg.VocabSize)
		}
	}
	return nil
}

package bert

import (
	"testing"

	"kamel/internal/vocab"
)

// TestPositionSensitivity: with learned position embeddings, reversing the
// context around a mask must generally change the prediction distribution —
// the model is not a bag of words.
func TestPositionSensitivity(t *testing.T) {
	m, _ := New(tinyConfig())
	fwd := []int{vocab.CLS, 5, 6, vocab.MASK, 8, 9, vocab.SEP}
	rev := []int{vocab.CLS, 9, 8, vocab.MASK, 6, 5, vocab.SEP}
	a, err := m.PredictMasked(fwd, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.PredictMasked(rev, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Compare full distributions: at least one probability must differ
	// noticeably (random init almost surely differs; identical would signal
	// the position path is dead).
	var maxDiff float64
	probs := map[int]float64{}
	for _, c := range a {
		probs[c.Token] = c.Prob
	}
	for _, c := range b {
		d := c.Prob - probs[c.Token]
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff < 1e-9 {
		t.Error("reversed context produced identical distribution; position embeddings ignored")
	}
}

// TestContextSensitivity: changing a context token must change the masked
// prediction (attention actually reads the context).
func TestContextSensitivity(t *testing.T) {
	m, _ := New(tinyConfig())
	base := []int{vocab.CLS, 5, vocab.MASK, 7, vocab.SEP}
	alt := []int{vocab.CLS, 10, vocab.MASK, 7, vocab.SEP}
	a, _ := m.PredictMasked(base, 2, 1)
	b, _ := m.PredictMasked(alt, 2, 1)
	if a[0].Token == b[0].Token && a[0].Prob == b[0].Prob {
		t.Error("changing context left the top prediction bit-identical; attention path suspicious")
	}
}

// TestMaskPositionMatters: the same sequence queried at different mask
// positions must produce different distributions.
func TestMaskPositionMatters(t *testing.T) {
	m, _ := New(tinyConfig())
	seq := []int{vocab.CLS, vocab.MASK, 6, vocab.MASK, 8, vocab.SEP}
	a, _ := m.PredictMasked(seq, 1, 1)
	b, _ := m.PredictMasked(seq, 3, 1)
	if a[0].Token == b[0].Token && a[0].Prob == b[0].Prob {
		t.Error("two mask positions produced bit-identical predictions")
	}
}

package bert

import (
	"bytes"
	"math"
	"testing"

	"kamel/internal/tensor"
	"kamel/internal/vocab"
)

func tinyConfig() Config {
	return Config{
		VocabSize: 12,
		Hidden:    8,
		Layers:    2,
		Heads:     2,
		FFN:       16,
		MaxSeqLen: 10,
		Seed:      42,
	}
}

func TestConfigValidate(t *testing.T) {
	good := tinyConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bads := []func(*Config){
		func(c *Config) { c.VocabSize = 0 },
		func(c *Config) { c.Hidden = -1 },
		func(c *Config) { c.Layers = 0 },
		func(c *Config) { c.Heads = 0 },
		func(c *Config) { c.Heads = 3 }, // 8 % 3 != 0
		func(c *Config) { c.FFN = 0 },
		func(c *Config) { c.MaxSeqLen = 2 },
	}
	for i, mut := range bads {
		c := tinyConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNumParamsMatchesLiveModel(t *testing.T) {
	cfg := tinyConfig()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.NumParams(), cfg.NumParams(); got != want {
		t.Errorf("live params %d != config params %d", got, want)
	}
}

func TestPaperConfigSize(t *testing.T) {
	// The paper reports ~165M trainable parameters at a ~80K vocabulary (§8).
	n := PaperConfig(80000).NumParams()
	if n < 140e6 || n > 190e6 {
		t.Errorf("paper config has %d params, expected ~165M", n)
	}
}

func TestForwardShapesAndDeterminism(t *testing.T) {
	m, _ := New(tinyConfig())
	tokens := []int{vocab.CLS, 5, vocab.MASK, 7, vocab.SEP}
	c1, err := m.PredictMasked(tokens, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(c1) != 5 {
		t.Fatalf("got %d candidates, want 5", len(c1))
	}
	var sum float64
	all, _ := m.PredictMasked(tokens, 2, 0)
	for _, c := range all {
		sum += c.Prob
	}
	if math.Abs(sum-1) > 1e-4 {
		t.Errorf("probabilities sum to %f", sum)
	}
	for i := 1; i < len(c1); i++ {
		if c1[i].Prob > c1[i-1].Prob {
			t.Error("candidates not sorted by probability")
		}
	}
	// Same model, same input => identical output.
	c2, _ := m.PredictMasked(tokens, 2, 5)
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Error("forward pass is not deterministic")
		}
	}
}

func TestPredictMaskedErrors(t *testing.T) {
	m, _ := New(tinyConfig())
	if _, err := m.PredictMasked(nil, 0, 1); err == nil {
		t.Error("empty sequence must error")
	}
	if _, err := m.PredictMasked([]int{1, 2}, 5, 1); err == nil {
		t.Error("out-of-range mask position must error")
	}
	if _, err := m.PredictMasked([]int{1, 99}, 0, 1); err == nil {
		t.Error("out-of-vocab token must error")
	}
	long := make([]int, 11)
	if _, err := m.PredictMasked(long, 0, 1); err == nil {
		t.Error("over-length sequence must error")
	}
}

// TestGradientsNumerically validates the entire manual backward pass —
// attention, layer norms, GELU, residuals, embeddings, tied MLM head —
// against central finite differences on a tiny model.
func TestGradientsNumerically(t *testing.T) {
	m, _ := New(tinyConfig())
	tokens := []int{vocab.CLS, 6, vocab.MASK, 9, 7, vocab.SEP}
	positions := []int{2, 4}
	targets := []int{8, 5}

	loss := func() float64 {
		c := m.encode(tokens)
		logits, _, _, _, _, _ := m.headForward(c, positions)
		var l float64
		for i := range positions {
			row := logits.Row(i)
			l += tensor.LogSumExp(row) - float64(row[targets[i]])
		}
		return l / float64(len(positions))
	}

	gm := m.newGradHolder()
	c := m.encode(tokens)
	analytic := m.lossAndBackward(c, positions, targets, gm)
	if math.IsNaN(analytic) || analytic <= 0 {
		t.Fatalf("suspicious loss %f", analytic)
	}

	params := m.Params()
	const h = 1e-2
	checked := 0
	for pi, p := range params {
		// Sample a few coordinates per parameter to keep the test fast.
		idxs := []int{0, len(p.A) / 2, len(p.A) - 1}
		for _, i := range idxs {
			orig := p.A[i]
			p.A[i] = orig + h
			up := loss()
			p.A[i] = orig - h
			down := loss()
			p.A[i] = orig
			num := (up - down) / (2 * h)
			ana := float64(gm[pi].A[i])
			// float32 finite differences are noisy; accept absolute 2e-2 or
			// relative 10%.
			if math.Abs(num-ana) > 2e-2 && math.Abs(num-ana) > 0.1*math.Abs(num) {
				t.Errorf("param %d coord %d: analytic %f vs numeric %f", pi, i, ana, num)
			}
			checked++
		}
	}
	if checked < 50 {
		t.Fatalf("only %d gradient coordinates checked", checked)
	}
}

func TestTrainLearnsDeterministicPattern(t *testing.T) {
	// A corpus with a rigid grammar: token sequences cycle 5→6→7→8→9→5…
	// After training, masking any interior position must put the correct
	// token on top.
	cfg := tinyConfig()
	cfg.Hidden = 16
	cfg.FFN = 64
	cfg.Seed = 7
	m, _ := New(cfg)
	var seqs [][]int
	for s := 0; s < 5; s++ {
		seq := make([]int, 7)
		for i := range seq {
			seq[i] = 5 + (s+i)%5
		}
		seqs = append(seqs, seq)
	}
	tc := TrainConfig{Steps: 300, Batch: 8, LR: 3e-3, Warmup: 20, MaskProb: 0.2, Seed: 3}
	stats, err := m.Train(seqs, tc)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FinalLoss > 0.9 {
		t.Fatalf("final loss %f too high; model failed to learn", stats.FinalLoss)
	}
	// Probe: [CLS] 5 6 [MASK] 8 9 [SEP] → token 7.
	probe := []int{vocab.CLS, 5, 6, vocab.MASK, 8, 9, vocab.SEP}
	cands, err := m.PredictMasked(probe, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cands[0].Token != 7 {
		t.Errorf("top prediction = %d (p=%.3f), want 7", cands[0].Token, cands[0].Prob)
	}
}

func TestTrainErrors(t *testing.T) {
	m, _ := New(tinyConfig())
	if _, err := m.Train(nil, DefaultTrainConfig()); err == nil {
		t.Error("empty corpus must error")
	}
	if _, err := m.Train([][]int{{5, 6, 7}}, TrainConfig{Steps: 0, Batch: 1, MaskProb: 0.15}); err == nil {
		t.Error("zero steps must error")
	}
	if _, err := m.Train([][]int{{5, 6, 7}}, TrainConfig{Steps: 1, Batch: 1, MaskProb: 0}); err == nil {
		t.Error("zero mask prob must error")
	}
}

func TestChunkLongSequences(t *testing.T) {
	m, _ := New(tinyConfig()) // MaxSeqLen 10 => body 8, stride 4
	long := make([]int, 30)
	for i := range long {
		long[i] = 5 + i%5
	}
	windows := m.chunk([][]int{long})
	if len(windows) < 3 {
		t.Fatalf("long sequence produced only %d windows", len(windows))
	}
	for _, w := range windows {
		if len(w) > m.Cfg.MaxSeqLen {
			t.Errorf("window of length %d exceeds MaxSeqLen", len(w))
		}
		if w[0] != vocab.CLS || w[len(w)-1] != vocab.SEP {
			t.Error("window must be framed by CLS/SEP")
		}
	}
}

func TestMaskSequenceProcedure(t *testing.T) {
	m, _ := New(tinyConfig())
	rng := tensor.NewRNG(5)
	seq := []int{vocab.CLS, 5, 6, 7, 8, 9, vocab.SEP}
	sawMask := false
	for trial := 0; trial < 200; trial++ {
		masked, positions, targets := m.maskSequence(seq, 0.3, rng)
		if len(positions) == 0 {
			t.Fatal("must mask at least one position")
		}
		if len(positions) != len(targets) {
			t.Fatal("positions/targets length mismatch")
		}
		if masked[0] != vocab.CLS || masked[len(masked)-1] != vocab.SEP {
			t.Fatal("CLS/SEP must never be masked")
		}
		for i, p := range positions {
			if p <= 0 || p >= len(seq)-1 {
				t.Fatalf("masked position %d outside interior", p)
			}
			if targets[i] != seq[p] {
				t.Fatal("target must be the original token")
			}
			if masked[p] == vocab.MASK {
				sawMask = true
			}
		}
	}
	if !sawMask {
		t.Error("80%% of masked positions should become [MASK]; saw none in 200 trials")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	m, _ := New(tinyConfig())
	// Perturb weights so we are not round-tripping fresh init by luck.
	rng := tensor.NewRNG(9)
	for _, p := range m.Params() {
		for i := range p.A {
			p.A[i] += float32(rng.NormFloat64() * 0.01)
		}
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Cfg != m.Cfg {
		t.Fatalf("config mismatch: %+v vs %+v", m2.Cfg, m.Cfg)
	}
	p1, p2 := m.Params(), m2.Params()
	for i := range p1 {
		for j := range p1[i].A {
			if p1[i].A[j] != p2[i].A[j] {
				t.Fatalf("param %d coord %d differs", i, j)
			}
		}
	}
	// Behavioral equivalence.
	tokens := []int{vocab.CLS, 5, vocab.MASK, 7, vocab.SEP}
	c1, _ := m.PredictMasked(tokens, 2, 3)
	c2, _ := m2.PredictMasked(tokens, 2, 3)
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Error("deserialized model predicts differently")
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("XXXX"))); err == nil {
		t.Error("bad magic must be rejected")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream must be rejected")
	}
	// Truncated stream: serialize then cut.
	m, _ := New(tinyConfig())
	var buf bytes.Buffer
	m.WriteTo(&buf)
	if _, err := Read(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Error("truncated stream must be rejected")
	}
}

func TestTopKCandidates(t *testing.T) {
	probs := []float32{0.1, 0.5, 0.05, 0.3, 0.05}
	top := topKCandidates(probs, 3)
	if len(top) != 3 {
		t.Fatalf("got %d", len(top))
	}
	if top[0].Token != 1 || top[1].Token != 3 || top[2].Token != 0 {
		t.Errorf("wrong order: %+v", top)
	}
	if got := topKCandidates(probs, 0); len(got) != len(probs) {
		t.Error("k<=0 must return all")
	}
	if got := topKCandidates(probs, 100); len(got) != len(probs) {
		t.Error("k>len must return all")
	}
}

package bert

import (
	"sync"
	"testing"

	"kamel/internal/vocab"
)

// TestConcurrentInference: a trained model must serve predictions from many
// goroutines (the streaming mode depends on this).  Run with -race.
func TestConcurrentInference(t *testing.T) {
	m, _ := New(tinyConfig())
	tokens := []int{vocab.CLS, 5, vocab.MASK, 7, vocab.SEP}
	want, err := m.PredictMasked(tokens, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				got, err := m.PredictMasked(tokens, 2, 3)
				if err != nil {
					t.Error(err)
					return
				}
				for j := range want {
					if got[j] != want[j] {
						t.Error("concurrent predictions diverged")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestTrainOnStepCallback verifies the progress hook fires once per step
// with a finite loss.
func TestTrainOnStepCallback(t *testing.T) {
	m, _ := New(tinyConfig())
	var steps int
	tc := TrainConfig{Steps: 7, Batch: 4, LR: 1e-3, MaskProb: 0.2, Seed: 1,
		OnStep: func(step int, loss float64) {
			if step != steps {
				t.Errorf("step %d out of order (want %d)", step, steps)
			}
			if loss < 0 {
				t.Errorf("negative loss %f", loss)
			}
			steps++
		}}
	if _, err := m.Train([][]int{{5, 6, 7, 8}}, tc); err != nil {
		t.Fatal(err)
	}
	if steps != 7 {
		t.Errorf("callback fired %d times, want 7", steps)
	}
}

// TestTrainingReducesLoss: loss at the end must be below loss at the start
// on a learnable corpus.
func TestTrainingReducesLoss(t *testing.T) {
	cfg := tinyConfig()
	cfg.Hidden, cfg.FFN = 16, 64
	m, _ := New(cfg)
	var first, last float64
	tc := TrainConfig{Steps: 150, Batch: 8, LR: 3e-3, Warmup: 10, MaskProb: 0.2, Seed: 2,
		OnStep: func(step int, loss float64) {
			if step == 0 {
				first = loss
			}
			last = loss
		}}
	seqs := [][]int{{5, 6, 7, 8, 9}, {5, 6, 7, 8, 9}, {9, 8, 7, 6, 5}}
	if _, err := m.Train(seqs, tc); err != nil {
		t.Fatal(err)
	}
	if last >= first {
		t.Errorf("loss did not decrease: first %f, last %f", first, last)
	}
}

// TestWindowedPrediction: sequences longer than MaxSeqLen must still be
// predictable after external windowing, and the model rejects raw overlong
// input.
func TestWindowedPrediction(t *testing.T) {
	m, _ := New(tinyConfig()) // MaxSeqLen 10
	long := make([]int, 15)
	for i := range long {
		long[i] = 5 + i%5
	}
	if _, err := m.PredictMasked(long, 3, 1); err == nil {
		t.Error("overlong sequence must be rejected")
	}
	window := long[:10]
	window[5] = vocab.MASK
	if _, err := m.PredictMasked(window, 5, 1); err != nil {
		t.Errorf("windowed sequence rejected: %v", err)
	}
}

// TestChunkShortSequence: a minimal 1-token sequence still yields a window.
func TestChunkShortSequence(t *testing.T) {
	m, _ := New(tinyConfig())
	windows := m.chunk([][]int{{7}})
	if len(windows) != 1 {
		t.Fatalf("got %d windows", len(windows))
	}
	if len(windows[0]) != 3 {
		t.Errorf("window = %v, want [CLS 7 SEP]", windows[0])
	}
	if got := m.chunk([][]int{{}}); len(got) != 0 {
		t.Error("empty sequence must produce no windows")
	}
}

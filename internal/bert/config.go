// Package bert implements, from scratch and on the stdlib only, the
// masked-language-model transformer encoder that sits at the core of KAMEL
// (paper §1-§2): learned token and position embeddings, multi-head
// self-attention, GELU feed-forward blocks, layer normalization, and a tied
// MLM head, together with manual backpropagation, an Adam training loop with
// BERT's 80/10/10 masking procedure, top-k masked-token prediction, and
// binary weight serialization.
//
// KAMEL treats BERT as a black box that answers "given this token sequence
// with a hole at position i, what token fills the hole and with what
// probability?" (paper Figure 1).  This package is that black box.  The
// architecture follows Devlin et al. [19] with one deliberate deviation:
// blocks are pre-layer-norm rather than post-layer-norm, which trains stably
// without a warmup schedule at the small scales a CPU-only reproduction can
// afford.  The paper's 768/12/12 configuration is expressible via Config but
// is not the default.
package bert

import "fmt"

// Config describes a model architecture.  All fields must be positive and
// Hidden must be divisible by Heads.
type Config struct {
	VocabSize int    // token IDs in [0, VocabSize)
	Hidden    int    // model width d
	Layers    int    // transformer blocks
	Heads     int    // attention heads; Hidden % Heads == 0
	FFN       int    // feed-forward inner width (BERT uses 4×Hidden)
	MaxSeqLen int    // longest sequence, including [CLS]/[SEP]
	Seed      uint64 // weight-init and masking seed
}

// DefaultConfig returns a laptop-scale architecture for the given vocabulary:
// 64 wide, 2 layers, 4 heads — small enough to train on one CPU core in
// seconds-to-minutes, large enough to learn city transition structure.
func DefaultConfig(vocabSize int) Config {
	return Config{
		VocabSize: vocabSize,
		Hidden:    64,
		Layers:    2,
		Heads:     4,
		FFN:       256,
		MaxSeqLen: 64,
		Seed:      1,
	}
}

// PaperConfig returns the architecture the paper reports (§8): 768 hidden
// dimensions, 12 heads, 12 layers.  At the paper's ~80K vocabulary this is
// ~165M parameters; it exists so the configuration is expressible, not
// because a CPU reproduction can train it.
func PaperConfig(vocabSize int) Config {
	return Config{
		VocabSize: vocabSize,
		Hidden:    768,
		Layers:    12,
		Heads:     12,
		FFN:       3072,
		MaxSeqLen: 512,
		Seed:      1,
	}
}

// Validate reports the first problem with the configuration, or nil.
func (c Config) Validate() error {
	switch {
	case c.VocabSize <= 0:
		return fmt.Errorf("bert: VocabSize %d must be positive", c.VocabSize)
	case c.Hidden <= 0:
		return fmt.Errorf("bert: Hidden %d must be positive", c.Hidden)
	case c.Layers <= 0:
		return fmt.Errorf("bert: Layers %d must be positive", c.Layers)
	case c.Heads <= 0:
		return fmt.Errorf("bert: Heads %d must be positive", c.Heads)
	case c.Hidden%c.Heads != 0:
		return fmt.Errorf("bert: Hidden %d not divisible by Heads %d", c.Hidden, c.Heads)
	case c.FFN <= 0:
		return fmt.Errorf("bert: FFN %d must be positive", c.FFN)
	case c.MaxSeqLen < 3:
		return fmt.Errorf("bert: MaxSeqLen %d must be at least 3", c.MaxSeqLen)
	}
	return nil
}

// NumParams returns the total number of trainable scalars.
func (c Config) NumParams() int {
	d, f, v, l := c.Hidden, c.FFN, c.VocabSize, c.MaxSeqLen
	emb := v*d + l*d + 2*d        // token, position, embedding LN
	perBlock := 4*(d*d+d) + 2*d + // attention + LN1
		d*f + f + f*d + d + 2*d // FFN + LN2
	head := d*d + d + 2*d + v // transform + LN + output bias (output proj tied)
	fin := 2 * d              // final LN
	return emb + c.Layers*perBlock + head + fin
}

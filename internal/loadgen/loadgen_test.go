package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"kamel/internal/trajgen"
)

func buildTestWorkload(t *testing.T) *Workload {
	t.Helper()
	w, err := BuildWorkload([]trajgen.Profile{trajgen.PortoLike(0.1)}, WorkloadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBuildWorkloadPools(t *testing.T) {
	w := buildTestWorkload(t)
	impute, batch, train, cells := w.Sizes()
	if impute == 0 || batch == 0 || train == 0 {
		t.Fatalf("empty pools: impute=%d batch=%d train=%d", impute, batch, train)
	}
	if cells < 2 {
		t.Fatalf("hotspot grouping produced %d cells, want at least 2 for Zipf skew", cells)
	}
	// Groups are ordered most to least populous, and partition the pool.
	total := 0
	for i := 1; i < len(w.groups); i++ {
		if len(w.groups[i]) > len(w.groups[i-1]) {
			t.Fatalf("groups not sorted by popularity at %d", i)
		}
	}
	for _, g := range w.groups {
		total += len(g)
	}
	if total != impute {
		t.Fatalf("groups cover %d of %d impute bodies", total, impute)
	}
	if len(w.TrainBodies()) != 1 {
		t.Fatalf("want 1 seed train body per profile, got %d", len(w.TrainBodies()))
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := quantile(sorted, 0.5); got != 5 {
		t.Errorf("p50 = %v, want 5", got)
	}
	if got := quantile(sorted, 0.99); got != 10 {
		t.Errorf("p99 = %v, want 10", got)
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}

func TestRecorderClassification(t *testing.T) {
	rec := &recorder{slowCap: 2}
	rec.record(OpImpute, 200, 10*time.Millisecond, "t1", false)
	rec.record(OpImpute, 429, time.Millisecond, "t2", false)
	rec.record(OpImpute, 500, time.Millisecond, "t3", false)
	rec.record(OpImpute, 503, time.Millisecond, "", false)
	rec.record(OpImpute, 0, time.Second, "", true)
	st := rec.result(100, time.Second)
	if st.OK != 1 || st.Shed != 1 || st.Errors != 2 || st.Internal != 1 || st.Timeout != 1 {
		t.Fatalf("classification: %+v", st)
	}
	if st.Sent != 5 {
		t.Fatalf("sent = %d, want 5", st.Sent)
	}
	if st.GoodputRPS != 1 {
		t.Fatalf("goodput = %v, want 1/s", st.GoodputRPS)
	}
	// The slowest list is capped and sorted descending, skipping transport
	// failures (no trace to follow).
	if len(st.Slowest) != 2 || st.Slowest[0].TraceID != "t1" {
		t.Fatalf("slowest = %+v", st.Slowest)
	}
}

// TestOpenLoopArrivals is the open-loop property itself: a deliberately slow
// server must NOT slow the generator down.  At 200 req/s for 600ms against a
// handler sleeping 100ms, a closed-loop pool would self-throttle to a
// handful of requests; the open loop must still fire on schedule.
func TestOpenLoopArrivals(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		time.Sleep(100 * time.Millisecond)
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	w := buildTestWorkload(t)
	g := New(w, Options{BaseURL: ts.URL, Seed: 7, ZipfS: 1.2, Clients: 4})
	st := g.RunStep(context.Background(), 200, 0, 600*time.Millisecond)

	// 200/s * 0.6s = 120 expected arrivals; allow wide scheduling slack but
	// reject anything compatible with closed-loop throttling (~6 requests
	// at concurrency 1, ~24 at 4).
	if st.Sent < 60 {
		t.Fatalf("open loop sent only %d requests at 200/s over 600ms; generator is closing the loop", st.Sent)
	}
	if st.OK != st.Sent {
		t.Fatalf("ok=%d sent=%d; stub accepts everything", st.OK, st.Sent)
	}
	if st.P50MS < 90 {
		t.Fatalf("p50 = %.1fms, want >= the 100ms service floor", st.P50MS)
	}
}

// TestSweepCapacityPoint checks capacity selection: the best goodput among
// steps with p99 under target and no internal errors.
func TestSweepCapacityPoint(t *testing.T) {
	res := SweepResult{P99TargetMS: 100}
	res.Steps = []StepResult{
		{OfferedRPS: 50, GoodputRPS: 49, P99MS: 20},
		{OfferedRPS: 100, GoodputRPS: 97, P99MS: 80},
		{OfferedRPS: 200, GoodputRPS: 150, P99MS: 300},             // out of SLO
		{OfferedRPS: 400, GoodputRPS: 180, P99MS: 50, Internal: 3}, // internal errors
	}
	out := SweepResult{P99TargetMS: res.P99TargetMS, Steps: res.Steps}
	for _, st := range out.Steps {
		inSLO := st.Internal == 0 && st.P99MS <= out.P99TargetMS
		if inSLO && st.GoodputRPS > out.CapacityRPS {
			out.CapacityRPS = st.GoodputRPS
			out.CapacityOfferedRPS = st.OfferedRPS
		}
	}
	if out.CapacityRPS != 97 || out.CapacityOfferedRPS != 100 {
		t.Fatalf("capacity = %.1f at %.1f, want 97 at 100", out.CapacityRPS, out.CapacityOfferedRPS)
	}
}

// TestSweepAgainstStub runs a tiny two-step sweep end to end, checking trace
// IDs surface from the response header and the table renders.
func TestSweepAgainstStub(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Kamel-Trace-ID", "deadbeef")
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	w := buildTestWorkload(t)
	g := New(w, Options{BaseURL: ts.URL, Seed: 3, SlowTraces: 2})
	res := g.Sweep(context.Background(), []float64{50, 100}, 50*time.Millisecond, 250*time.Millisecond, 1000)
	if len(res.Steps) != 2 {
		t.Fatalf("steps = %d, want 2", len(res.Steps))
	}
	if res.CapacityRPS <= 0 {
		t.Fatalf("no capacity point found: %+v", res.Steps)
	}
	found := false
	for _, st := range res.Steps {
		for _, s := range st.Slowest {
			if s.TraceID == "deadbeef" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("slowest requests carry no trace IDs from X-Kamel-Trace-ID")
	}
	var sb mockWriter
	WriteTable(&sb, res)
	if len(sb.b) == 0 {
		t.Fatal("table rendered empty")
	}
}

type mockWriter struct{ b []byte }

func (m *mockWriter) Write(p []byte) (int, error) { m.b = append(m.b, p...); return len(p), nil }

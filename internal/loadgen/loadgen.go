package loadgen

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"net/http"
	"sort"
	"sync"
	"time"

	"kamel/internal/obs"
)

// Options configure a Generator.  Zero values take the noted defaults.
type Options struct {
	// BaseURL is the target node, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client issues the requests; nil uses a dedicated transport with a
	// connection pool wide enough that the generator, not the client, is
	// the bottleneck.
	Client *http.Client
	// Clients is the number of distinct client identities requests are
	// attributed to via X-Kamel-Client (default 8; 0 < n).
	Clients int
	// ZipfS is the hotspot skew exponent over origin cells; values <= 1
	// fall back to uniform cell selection (default 1.2).
	ZipfS float64
	// Mix weighs impute/batch/train operations (zero: 90/10/0).
	Mix Mix
	// Timeout bounds one request (default 10s).
	Timeout time.Duration
	// Seed drives arrival times and request selection; runs with equal
	// seeds against equal workloads issue identical request sequences.
	Seed uint64
	// SlowTraces is how many of a step's slowest requests to report with
	// their X-Kamel-Trace-ID (default 3), linking capacity-curve outliers
	// straight to /v1/traces on the target.
	SlowTraces int
}

func (o *Options) normalize() {
	if o.Client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConns = 512
		tr.MaxIdleConnsPerHost = 512
		o.Client = &http.Client{Transport: tr}
	}
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.Mix == (Mix{}) {
		o.Mix = Mix{Impute: 0.9, Batch: 0.1}
	}
	o.Mix = o.Mix.normalized()
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.SlowTraces <= 0 {
		o.SlowTraces = 3
	}
}

// Generator drives one target with the open-loop workload.
type Generator struct {
	opts Options
	w    *Workload
}

// New builds a Generator over a pre-rendered workload.
func New(w *Workload, opts Options) *Generator {
	opts.normalize()
	return &Generator{opts: opts, w: w}
}

// SlowRequest identifies one of a step's slowest requests for post-hoc trace
// inspection via GET {target}/v1/traces/{TraceID}.
type SlowRequest struct {
	Op        Op      `json:"op"`
	Status    int     `json:"status"`
	LatencyMS float64 `json:"latency_ms"`
	TraceID   string  `json:"trace_id,omitempty"`
}

// StepResult is one point of the capacity curve: what happened while offering
// load at one fixed Poisson rate.
type StepResult struct {
	OfferedRPS float64       `json:"offered_rps"`
	Duration   time.Duration `json:"-"`
	DurationS  float64       `json:"duration_s"`

	Sent     int64 `json:"sent"`
	OK       int64 `json:"ok"`
	Shed     int64 `json:"shed"`     // 429
	Errors   int64 `json:"errors"`   // non-2xx other than 429
	Internal int64 `json:"internal"` // the 500 subset of Errors
	Timeout  int64 `json:"timeouts"` // client-side deadline/transport failures

	GoodputRPS float64 `json:"goodput_rps"`
	ShedRate   float64 `json:"shed_rate"`
	ErrorRate  float64 `json:"error_rate"`

	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`

	Slowest []SlowRequest `json:"slowest,omitempty"`
}

// recorder accumulates one measurement phase under a single mutex; the
// per-request critical section is tiny compared to a network round trip.
type recorder struct {
	mu       sync.Mutex
	lat      []float64 // success latencies, ms
	ok       int64
	shed     int64
	errors   int64
	internal int64
	timeout  int64
	sent     int64
	slowest  []SlowRequest // kept sorted descending by latency, capped
	slowCap  int
}

func (r *recorder) record(op Op, status int, latency time.Duration, traceID string, transportErr bool) {
	ms := float64(latency) / float64(time.Millisecond)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sent++
	switch {
	case transportErr:
		r.timeout++
	case status >= 200 && status < 300:
		r.ok++
		r.lat = append(r.lat, ms)
	case status == http.StatusTooManyRequests:
		r.shed++
	default:
		r.errors++
		if status >= 500 && status != http.StatusServiceUnavailable {
			r.internal++
		}
	}
	if transportErr || r.slowCap == 0 {
		return
	}
	if len(r.slowest) < r.slowCap || ms > r.slowest[len(r.slowest)-1].LatencyMS {
		r.slowest = append(r.slowest, SlowRequest{Op: op, Status: status, LatencyMS: ms, TraceID: traceID})
		sort.Slice(r.slowest, func(i, j int) bool { return r.slowest[i].LatencyMS > r.slowest[j].LatencyMS })
		if len(r.slowest) > r.slowCap {
			r.slowest = r.slowest[:r.slowCap]
		}
	}
}

func (r *recorder) result(rate float64, elapsed time.Duration) StepResult {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := StepResult{
		OfferedRPS: rate,
		Duration:   elapsed,
		DurationS:  elapsed.Seconds(),
		Sent:       r.sent,
		OK:         r.ok,
		Shed:       r.shed,
		Errors:     r.errors,
		Internal:   r.internal,
		Timeout:    r.timeout,
		Slowest:    append([]SlowRequest(nil), r.slowest...),
	}
	if elapsed > 0 {
		st.GoodputRPS = float64(r.ok) / elapsed.Seconds()
	}
	if r.sent > 0 {
		st.ShedRate = float64(r.shed) / float64(r.sent)
		st.ErrorRate = float64(r.errors+r.timeout) / float64(r.sent)
	}
	sort.Float64s(r.lat)
	st.P50MS = quantile(r.lat, 0.50)
	st.P99MS = quantile(r.lat, 0.99)
	st.P999MS = quantile(r.lat, 0.999)
	return st
}

// quantile reads q from an ascending-sorted sample (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// shot is one pre-selected request: everything the issuing goroutine needs,
// chosen single-threaded in the arrival loop so the RNG is never shared.
type shot struct {
	op     Op
	path   string
	body   []byte
	client string
	pri    string
}

// pick selects the next request: operation by mix weight, impute body by
// Zipf-over-cells (uniform within the chosen cell), batch/train uniform.
func (g *Generator) pick(rng *rand.Rand, zipf *rand.Zipf) shot {
	u := rng.Float64()
	cl := fmt.Sprintf("client-%d", rng.IntN(g.opts.Clients))
	switch {
	case u < g.opts.Mix.Impute || len(g.w.train) == 0 && len(g.w.batch) == 0:
		var idx int
		if zipf != nil {
			group := g.w.groups[int(zipf.Uint64())]
			idx = group[rng.IntN(len(group))]
		} else {
			idx = rng.IntN(len(g.w.impute))
		}
		return shot{op: OpImpute, path: "/v1/impute", body: g.w.impute[idx], client: cl, pri: "interactive"}
	case u < g.opts.Mix.Impute+g.opts.Mix.Batch || len(g.w.train) == 0:
		return shot{op: OpBatch, path: "/v1/impute/batch", body: g.w.batch[rng.IntN(len(g.w.batch))], client: cl, pri: "bulk"}
	default:
		return shot{op: OpTrain, path: "/v1/train", body: g.w.train[rng.IntN(len(g.w.train))], client: cl, pri: "bulk"}
	}
}

// issue sends one request and records its outcome (rec nil during warmup).
func (g *Generator) issue(ctx context.Context, sh shot, rec *recorder) {
	ctx, cancel := context.WithTimeout(ctx, g.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, g.opts.BaseURL+sh.path, bytes.NewReader(sh.body))
	if err != nil {
		if rec != nil {
			rec.record(sh.op, 0, 0, "", true)
		}
		return
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.HeaderClient, sh.client)
	req.Header.Set(obs.HeaderPriority, sh.pri)
	start := time.Now()
	resp, err := g.opts.Client.Do(req)
	latency := time.Since(start)
	if err != nil {
		if rec != nil {
			rec.record(sh.op, 0, latency, "", true)
		}
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if rec != nil {
		rec.record(sh.op, resp.StatusCode, latency, resp.Header.Get("X-Kamel-Trace-ID"), false)
	}
}

// runPhase offers load at rate for d, open loop: arrivals are scheduled by an
// exponential inter-arrival clock and fired regardless of how many requests
// are still outstanding.  rec nil makes it a warmup phase.  It returns once
// every fired request has completed (so a step's stragglers cannot leak into
// the next step's measurements).
func (g *Generator) runPhase(ctx context.Context, rate float64, d time.Duration, rec *recorder) {
	if rate <= 0 || d <= 0 {
		return
	}
	rng := rand.New(rand.NewPCG(g.opts.Seed, g.opts.Seed^0x9e3779b97f4a7c15))
	var zipf *rand.Zipf
	if g.opts.ZipfS > 1 && len(g.w.groups) > 1 {
		zipf = rand.NewZipf(rng, g.opts.ZipfS, 1, uint64(len(g.w.groups)-1))
	}
	var wg sync.WaitGroup
	defer wg.Wait()
	start := time.Now()
	deadline := start.Add(d)
	next := start
	for {
		now := time.Now()
		if !now.Before(deadline) {
			return
		}
		if wait := next.Sub(now); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return
			}
		}
		if ctx.Err() != nil {
			return
		}
		sh := g.pick(rng, zipf)
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.issue(ctx, sh, rec)
		}()
		// Exponential inter-arrival: the Poisson process.  Scheduling from
		// the previous *scheduled* time (not from now) preserves the offered
		// rate even when the generator briefly falls behind.
		next = next.Add(time.Duration(rng.ExpFloat64() / rate * float64(time.Second)))
	}
}

// RunStep offers one fixed rate: warmup (unmeasured) then measure.
func (g *Generator) RunStep(ctx context.Context, rate float64, warmup, measure time.Duration) StepResult {
	g.runPhase(ctx, rate, warmup, nil)
	rec := &recorder{slowCap: g.opts.SlowTraces}
	start := time.Now()
	g.runPhase(ctx, rate, measure, rec)
	return rec.result(rate, time.Since(start))
}

// SweepResult is a stepped-rate run: the capacity curve plus its headline —
// the maximum goodput among steps meeting the p99 target with zero internal
// errors.
type SweepResult struct {
	Target      string       `json:"target"`
	P99TargetMS float64      `json:"p99_target_ms"`
	Steps       []StepResult `json:"steps"`
	// CapacityRPS is the goodput of the best in-SLO step (0 when none).
	CapacityRPS float64 `json:"capacity_rps"`
	// CapacityOfferedRPS is the offered rate of that step.
	CapacityOfferedRPS float64 `json:"capacity_offered_rps"`
}

// Sweep runs warmup+measure at each offered rate in turn and derives the
// capacity point.  A cancelled ctx ends the sweep early with the steps
// completed so far.
func (g *Generator) Sweep(ctx context.Context, rates []float64, warmup, measure time.Duration, p99TargetMS float64) SweepResult {
	out := SweepResult{Target: g.opts.BaseURL, P99TargetMS: p99TargetMS}
	for _, rate := range rates {
		if ctx.Err() != nil {
			break
		}
		st := g.RunStep(ctx, rate, warmup, measure)
		out.Steps = append(out.Steps, st)
	}
	for _, st := range out.Steps {
		inSLO := st.Internal == 0 && (p99TargetMS <= 0 || st.P99MS <= p99TargetMS)
		if inSLO && st.GoodputRPS > out.CapacityRPS {
			out.CapacityRPS = st.GoodputRPS
			out.CapacityOfferedRPS = st.OfferedRPS
		}
	}
	return out
}

// SeedTarget trains the target with the workload's full training splits and
// polls /readyz until the node reports ready (or ctx ends).  It is the
// standing-start path for driving a fresh server.
func (g *Generator) SeedTarget(ctx context.Context) error {
	for _, body := range g.w.TrainBodies() {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, g.opts.BaseURL+"/v1/train", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := g.opts.Client.Do(req)
		if err != nil {
			return fmt.Errorf("loadgen: seeding target: %w", err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("loadgen: seeding target: /v1/train status %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
		}
	}
	last := "no /readyz response yet"
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, g.opts.BaseURL+"/readyz", nil)
		if err != nil {
			return err
		}
		resp, err := g.opts.Client.Do(req)
		if err != nil {
			last = err.Error()
		} else {
			raw, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			last = fmt.Sprintf("status %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
		}
		select {
		case <-time.After(200 * time.Millisecond):
		case <-ctx.Done():
			return fmt.Errorf("loadgen: target never became ready (last /readyz: %s): %w", last, ctx.Err())
		}
	}
}

package loadgen

import (
	"fmt"
	"io"
	"strings"
)

// WriteTable renders the sweep as the human-readable capacity table:
//
//	offered   sent     ok   shed    err  goodput     p50     p99    p999
//	 50.0/s    500    498      0      0   49.8/s   12.1ms  40.2ms  55.0ms
//
// followed by the capacity line and, when present, the slowest requests of
// the worst step with their trace IDs.
func WriteTable(w io.Writer, res SweepResult) {
	fmt.Fprintf(w, "capacity sweep against %s (p99 target %.0fms)\n", res.Target, res.P99TargetMS)
	fmt.Fprintf(w, "%9s %7s %7s %6s %6s %9s %9s %9s %9s\n",
		"offered", "sent", "ok", "shed", "err", "goodput", "p50", "p99", "p999")
	for _, st := range res.Steps {
		fmt.Fprintf(w, "%8.1f/s %7d %7d %6d %6d %8.1f/s %8.1fms %8.1fms %8.1fms\n",
			st.OfferedRPS, st.Sent, st.OK, st.Shed, st.Errors+st.Timeout,
			st.GoodputRPS, st.P50MS, st.P99MS, st.P999MS)
	}
	if res.CapacityRPS > 0 {
		fmt.Fprintf(w, "capacity: %.1f req/s goodput at %.1f req/s offered (p99 <= %.0fms, no internal errors)\n",
			res.CapacityRPS, res.CapacityOfferedRPS, res.P99TargetMS)
	} else {
		fmt.Fprintln(w, "capacity: no step met the p99 target without internal errors")
	}
	if slow := worstStepSlowest(res); len(slow) > 0 {
		fmt.Fprintln(w, "slowest requests of the worst step (GET /v1/traces/{id} on the target):")
		for _, s := range slow {
			id := s.TraceID
			if id == "" {
				id = "(no trace id)"
			}
			fmt.Fprintf(w, "  %-7s %3d  %8.1fms  %s\n", s.Op, s.Status, s.LatencyMS, id)
		}
	}
}

// worstStepSlowest returns the slowest-request list of the step with the
// highest p99 — the step an operator will want to debug first.
func worstStepSlowest(res SweepResult) []SlowRequest {
	var worst []SlowRequest
	worstP99 := -1.0
	for _, st := range res.Steps {
		if st.P99MS > worstP99 && len(st.Slowest) > 0 {
			worstP99 = st.P99MS
			worst = st.Slowest
		}
	}
	return worst
}

// Summary is the one-line form for logs.
func Summary(res SweepResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d steps", len(res.Steps))
	if res.CapacityRPS > 0 {
		fmt.Fprintf(&b, ", capacity %.1f req/s at %.1f offered", res.CapacityRPS, res.CapacityOfferedRPS)
	} else {
		b.WriteString(", no step in SLO")
	}
	return b.String()
}

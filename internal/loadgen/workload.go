// Package loadgen is KAMEL's open-loop load harness (ROADMAP item 2): a
// Poisson-arrival workload generator that measures goodput and latency
// against offered load instead of request count.  Open loop is the point —
// a closed-loop client (fixed worker pool) slows down exactly when the
// server does, hiding overload behind self-throttling; Poisson arrivals
// fire on schedule regardless of how many requests are still in flight, so
// queueing delay and shed rate become observable the way they are for real
// user populations.
//
// The workload itself reuses internal/trajgen's porto-like and jakarta-like
// datasets: requests are pre-rendered JSON bodies (sparse trajectories for
// the impute endpoints, dense ones for train), spatially skewed by a Zipf
// distribution over origin cells so hot shards exist, attributed to a pool
// of client identities, and mixed across the impute/batch/train operations.
package loadgen

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"kamel/internal/geo"
	"kamel/internal/trajgen"
)

// Op is one of the workload's operation kinds.
type Op string

const (
	OpImpute Op = "impute"
	OpBatch  Op = "batch"
	OpTrain  Op = "train"
)

// Mix weighs the operation kinds; weights need not sum to 1 (they are
// normalized).  A zero Mix defaults to 90% single imputes, 10% batches.
type Mix struct {
	Impute float64 `json:"impute"`
	Batch  float64 `json:"batch"`
	Train  float64 `json:"train"`
}

func (m Mix) normalized() Mix {
	total := m.Impute + m.Batch + m.Train
	if total <= 0 {
		return Mix{Impute: 0.9, Batch: 0.1}
	}
	return Mix{Impute: m.Impute / total, Batch: m.Batch / total, Train: m.Train / total}
}

// WorkloadOptions shape the pre-rendered request pools.
type WorkloadOptions struct {
	// SparsifyMeters is the gap distance the impute inputs are thinned to —
	// the imputation workload's difficulty knob (default 500).
	SparsifyMeters float64
	// CellMeters is the hotspot-grid cell size origins are quantized into
	// for the Zipf skew (default 500).
	CellMeters float64
	// BatchSize is trajectories per /v1/impute/batch body (default 4).
	BatchSize int
	// TrainSize is trajectories per /v1/train body (default 2).
	TrainSize int
	// TrainFrac splits each profile's trajectories into train (dense, for
	// /v1/train bodies and TrainBodies) and test (sparsified, for the
	// impute pools) sets (default 0.8).
	TrainFrac float64
}

func (o *WorkloadOptions) normalize() {
	if o.SparsifyMeters <= 0 {
		o.SparsifyMeters = 500
	}
	if o.CellMeters <= 0 {
		o.CellMeters = 500
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 4
	}
	if o.TrainSize <= 0 {
		o.TrainSize = 2
	}
	if o.TrainFrac <= 0 || o.TrainFrac >= 1 {
		o.TrainFrac = 0.8
	}
}

// wireTraj mirrors the server's trajectory wire form.
type wireTraj struct {
	ID     string       `json:"id"`
	Points [][3]float64 `json:"points"`
}

func toWire(tr geo.Trajectory) wireTraj {
	out := wireTraj{ID: tr.ID}
	for _, p := range tr.Points {
		out.Points = append(out.Points, [3]float64{p.Lat, p.Lng, p.T})
	}
	return out
}

// Workload is the immutable pre-rendered request pool one or more Generators
// draw from.  Rendering bodies ahead of time keeps the arrival loop's
// per-request work down to a slice index, so the generator can sustain high
// offered rates without measuring its own JSON encoding.
type Workload struct {
	impute [][]byte
	batch  [][]byte
	train  [][]byte

	// groups are impute-pool indices bucketed by origin cell, ordered most
	// to least populous: Zipf rank r draws uniformly within groups[r].
	groups [][]int

	// trainBodies are the full per-profile training splits, for seeding a
	// target server before a run (one POST /v1/train each).
	trainBodies [][]byte
}

// BuildWorkload renders the request pools for the given dataset profiles.
// Trajectory generation is deterministic per profile, so two processes
// building the same profiles measure the same workload.
func BuildWorkload(profiles []trajgen.Profile, opts WorkloadOptions) (*Workload, error) {
	opts.normalize()
	if len(profiles) == 0 {
		return nil, fmt.Errorf("loadgen: no dataset profiles")
	}
	w := &Workload{}
	cells := make(map[[2]int][]int)

	for _, prof := range profiles {
		_, proj, trajs, err := prof.Materialize()
		if err != nil {
			return nil, fmt.Errorf("loadgen: %s: %w", prof.Name, err)
		}
		train, test := trajgen.SplitTrainTest(trajs, opts.TrainFrac, prof.Traffic.Seed)
		if len(train) == 0 || len(test) == 0 {
			return nil, fmt.Errorf("loadgen: %s: %d trajectories split to empty train/test", prof.Name, len(trajs))
		}

		// The full training split, as one body per profile (seed phase).
		seedBody, err := json.Marshal(map[string]any{"trajectories": wireAll(train)})
		if err != nil {
			return nil, err
		}
		w.trainBodies = append(w.trainBodies, seedBody)

		// Impute pool: each test trajectory sparsified, plus its origin cell
		// for the Zipf grouping.
		var sparse []wireTraj
		for _, tr := range test {
			sp := tr.Sparsify(opts.SparsifyMeters)
			if len(sp.Points) < 2 {
				continue
			}
			body, err := json.Marshal(toWire(sp))
			if err != nil {
				return nil, err
			}
			idx := len(w.impute)
			w.impute = append(w.impute, body)
			sparse = append(sparse, toWire(sp))
			o := proj.ToXY(tr.Points[0])
			key := [2]int{int(math.Floor(o.X / opts.CellMeters)), int(math.Floor(o.Y / opts.CellMeters))}
			cells[key] = append(cells[key], idx)
		}

		// Batch pool: consecutive sparse trajectories, bulk priority in the
		// body (the authoritative dispatch-lane field).
		for i := 0; i+opts.BatchSize <= len(sparse); i += opts.BatchSize {
			body, err := json.Marshal(map[string]any{
				"trajectories": sparse[i : i+opts.BatchSize],
				"priority":     "bulk",
			})
			if err != nil {
				return nil, err
			}
			w.batch = append(w.batch, body)
		}

		// Train pool: small dense batches for the mixed-operation profile.
		for i := 0; i+opts.TrainSize <= len(train); i += opts.TrainSize {
			body, err := json.Marshal(map[string]any{"trajectories": wireAll(train[i : i+opts.TrainSize])})
			if err != nil {
				return nil, err
			}
			w.train = append(w.train, body)
		}
	}
	if len(w.impute) == 0 {
		return nil, fmt.Errorf("loadgen: sparsification left no usable impute bodies")
	}
	if len(w.batch) == 0 {
		w.batch = w.impute // degenerate but safe: tiny datasets
	}

	for _, idxs := range cells {
		w.groups = append(w.groups, idxs)
	}
	sort.Slice(w.groups, func(i, j int) bool {
		if len(w.groups[i]) != len(w.groups[j]) {
			return len(w.groups[i]) > len(w.groups[j])
		}
		return w.groups[i][0] < w.groups[j][0] // deterministic tie-break
	})
	return w, nil
}

func wireAll(trajs []geo.Trajectory) []wireTraj {
	out := make([]wireTraj, len(trajs))
	for i, tr := range trajs {
		out[i] = toWire(tr)
	}
	return out
}

// Sizes reports the pool sizes (impute bodies, batch bodies, train bodies,
// hotspot cells) for logging.
func (w *Workload) Sizes() (impute, batch, train, cells int) {
	return len(w.impute), len(w.batch), len(w.train), len(w.groups)
}

// TrainBodies returns the per-profile full training splits, one POST
// /v1/train body each — the seed phase for an untrained target.
func (w *Workload) TrainBodies() [][]byte {
	return w.trainBodies
}

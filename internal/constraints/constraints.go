// Package constraints implements KAMEL's Spatial Constraints module (paper
// §5).  BERT's candidate tokens are filtered against the physics of movement
// — a speed ellipse between the segment endpoints and direction cones away
// from where the trajectory came from and where it heads next — and imputed
// sequences are rejected when they repeat, preventing the cycles multi-point
// imputation can otherwise fall into (§5.2).
package constraints

import (
	"math"

	"kamel/internal/geo"
	"kamel/internal/grid"
	"kamel/internal/tokenizer"
)

// Checker evaluates spatial constraints over a tokenizer.  The zero value is
// not usable; construct with NewChecker.
type Checker struct {
	tk tokenizer.Tokenizer

	// MaxSpeedMPS bounds travel speed for the ellipse area (paper §5.1);
	// KAMEL infers it from training data.
	MaxSpeedMPS float64
	// ConeAngleRad is the direction-constraint half-angle (default 45°).
	ConeAngleRad float64
	// CycleLen is the maximum repeated-suffix length checked (default 6).
	CycleLen int
	// SlackMeters loosens the ellipse so that endpoint timestamps quantized
	// to the grid never exclude the direct path itself.
	SlackMeters float64
	// PathKappa bounds the imputed path length to κ × the direct distance
	// when no timing information is available (default 3).
	PathKappa float64
	// Disabled turns the module into a pass-through, for the paper's
	// "No Const." ablation (§8.7).
	Disabled bool
}

// NewChecker returns a checker with the paper's defaults: a 45° cone and
// cycle window 6, with the given speed limit.
func NewChecker(tk tokenizer.Tokenizer, maxSpeedMPS float64) *Checker {
	return &Checker{
		tk:           tk,
		MaxSpeedMPS:  maxSpeedMPS,
		ConeAngleRad: 45 * math.Pi / 180,
		CycleLen:     6,
		SlackMeters:  2 * tk.EdgeMeters(),
		PathKappa:    3,
	}
}

// MaxPathMeters returns the upper bound on the driven length of an imputed
// segment, derived from the speed constraint (§5.1): a vehicle covering the
// gap in TimeDiff seconds cannot have driven further than speed × time.
// Without timing information the bound falls back to PathKappa × the direct
// distance.  The direct distance plus slack is always admissible.
func (c *Checker) MaxPathMeters(seg Segment) float64 {
	if c.Disabled {
		return math.Inf(1)
	}
	direct := c.tk.Detokenize(seg.S).Dist(c.tk.Detokenize(seg.D))
	floor := direct + c.SlackMeters + 2*c.tk.StepMeters()
	var bound float64
	if seg.TimeDiff > 0 && c.MaxSpeedMPS > 0 {
		bound = c.MaxSpeedMPS * seg.TimeDiff
	} else {
		kappa := c.PathKappa
		if kappa <= 0 {
			kappa = 3
		}
		bound = kappa * direct
	}
	if bound < floor {
		bound = floor
	}
	return bound
}

// Segment describes the gap being imputed: end tokens S and D, the optional
// tokens just before S and just after D (t1 and t2 in the paper's Figure 5),
// and the timestamp difference between S and D in seconds (0 when unknown,
// which disables the speed constraint).
type Segment struct {
	S, D     grid.Cell
	Prev     *grid.Cell
	Next     *grid.Cell
	TimeDiff float64
}

// AllowedArea reports whether the token satisfies both the speed-ellipse and
// the direction-cone constraints for the segment.
func (c *Checker) AllowedArea(t grid.Cell, seg Segment) bool {
	if c.Disabled {
		return true
	}
	return c.insideSpeedEllipse(t, seg) && !c.inRejectedCone(t, seg)
}

// insideSpeedEllipse implements the blue dashed area of Figure 5: the token
// centroid must lie within the ellipse whose foci are the centroids of S and
// D and whose major axis is MaxSpeed × TimeDiff.
func (c *Checker) insideSpeedEllipse(t grid.Cell, seg Segment) bool {
	if seg.TimeDiff <= 0 || c.MaxSpeedMPS <= 0 {
		return true // no timing information: constraint vacuous
	}
	fs := c.tk.Detokenize(seg.S)
	fd := c.tk.Detokenize(seg.D)
	limit := c.MaxSpeedMPS * seg.TimeDiff
	// The direct path must always be admissible even with grid quantization.
	if floor := fs.Dist(fd) + c.SlackMeters; limit < floor {
		limit = floor
	}
	return geo.InsideEllipse(c.tk.Detokenize(t), fs, fd, limit)
}

// inRejectedCone implements the red token area of Figure 5: tokens deviating
// less than the cone angle from the direction S→Prev (doubling back) or
// D→Next (jumping ahead) are rejected.
func (c *Checker) inRejectedCone(t grid.Cell, seg Segment) bool {
	tc := c.tk.Detokenize(t)
	if seg.Prev != nil {
		s := c.tk.Detokenize(seg.S)
		back := c.tk.Detokenize(*seg.Prev).Sub(s).Heading()
		if tc.Dist(s) > 1e-9 {
			if geo.AngleDiff(tc.Sub(s).Heading(), back) < c.ConeAngleRad {
				return true
			}
		}
	}
	if seg.Next != nil {
		d := c.tk.Detokenize(seg.D)
		ahead := c.tk.Detokenize(*seg.Next).Sub(d).Heading()
		if tc.Dist(d) > 1e-9 {
			if geo.AngleDiff(tc.Sub(d).Heading(), ahead) < c.ConeAngleRad {
				return true
			}
		}
	}
	return false
}

// Candidate pairs a token with its model probability; the type mirrors what
// the Partitioning module hands to this module (paper Figure 1).
type Candidate struct {
	Cell grid.Cell
	Prob float64
}

// Filter returns the candidates that satisfy the area constraints, in their
// original order.  The trivial-cycle rule (§5.2, x=1) is also applied here:
// a candidate equal to either gap endpoint is dropped.
func (c *Checker) Filter(cands []Candidate, seg Segment) []Candidate {
	out := cands[:0:0]
	for _, cand := range cands {
		if cand.Cell == seg.S || cand.Cell == seg.D {
			continue
		}
		if c.Disabled || c.AllowedArea(cand.Cell, seg) {
			out = append(out, cand)
		}
	}
	return out
}

// HasCycle reports whether the token sequence ends in a repeated run: for
// any x in [1, CycleLen], the last x tokens equal the x tokens before them
// (paper §5.2).  The overpass case of Figure 5(d) — a token appearing twice
// without a repeated *sequence* — is, correctly, not a cycle.
func (c *Checker) HasCycle(tokens []grid.Cell) bool {
	maxX := c.CycleLen
	if maxX <= 0 {
		maxX = 6
	}
	for x := 1; x <= maxX; x++ {
		if len(tokens) < 2*x {
			break
		}
		match := true
		for i := 0; i < x; i++ {
			if tokens[len(tokens)-1-i] != tokens[len(tokens)-1-x-i] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

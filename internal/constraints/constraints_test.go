package constraints

import (
	"math"
	"testing"

	"kamel/internal/geo"
	"kamel/internal/grid"
	"kamel/internal/tokenizer"
)

func setup() (*Checker, grid.Grid) {
	g := grid.NewHex(75)
	return NewChecker(tokenizer.NewFixed(g), 30), g
}

func TestSpeedEllipse(t *testing.T) {
	c, g := setup()
	s := g.CellAt(geo.XY{X: 0, Y: 0})
	d := g.CellAt(geo.XY{X: 1000, Y: 0})
	// 30 m/s over 60 s → ellipse major axis 1800 m.
	seg := Segment{S: s, D: d, TimeDiff: 60}

	// A token on the direct path is allowed.
	mid := g.CellAt(geo.XY{X: 500, Y: 0})
	if !c.AllowedArea(mid, seg) {
		t.Error("midpoint must satisfy the speed ellipse")
	}
	// A token requiring a huge detour is rejected: sum of distances
	// ≈ 2×sqrt(500² + 2000²) ≈ 4123 > 1800.
	far := g.CellAt(geo.XY{X: 500, Y: 2000})
	if c.AllowedArea(far, seg) {
		t.Error("far detour must violate the speed ellipse")
	}
	// With no timing info the constraint is vacuous.
	segNoTime := Segment{S: s, D: d}
	if !c.AllowedArea(far, segNoTime) {
		t.Error("no-timestamp segment must not apply the ellipse")
	}
}

func TestSpeedEllipseFloor(t *testing.T) {
	c, g := setup()
	s := g.CellAt(geo.XY{X: 0, Y: 0})
	d := g.CellAt(geo.XY{X: 1000, Y: 0})
	// Absurdly tight timing (1 s for 1 km) must still admit the direct path
	// thanks to the slack floor.
	seg := Segment{S: s, D: d, TimeDiff: 1}
	mid := g.CellAt(geo.XY{X: 500, Y: 0})
	if !c.AllowedArea(mid, seg) {
		t.Error("direct path must remain admissible under tight timing")
	}
}

func TestDirectionCones(t *testing.T) {
	c, g := setup()
	// Trajectory heading east: prev ← S → ... → D → next, all on the X axis.
	prev := g.CellAt(geo.XY{X: -500, Y: 0})
	s := g.CellAt(geo.XY{X: 0, Y: 0})
	d := g.CellAt(geo.XY{X: 1000, Y: 0})
	next := g.CellAt(geo.XY{X: 1500, Y: 0})
	seg := Segment{S: s, D: d, Prev: &prev, Next: &next}

	// A token behind S (towards prev) is rejected.
	behind := g.CellAt(geo.XY{X: -300, Y: 20})
	if c.AllowedArea(behind, seg) {
		t.Error("token behind S must be rejected by the S→prev cone")
	}
	// A token beyond D (towards next) is rejected.
	beyond := g.CellAt(geo.XY{X: 1300, Y: 20})
	if c.AllowedArea(beyond, seg) {
		t.Error("token beyond D must be rejected by the D→next cone")
	}
	// A token between them is fine.
	mid := g.CellAt(geo.XY{X: 500, Y: 100})
	if !c.AllowedArea(mid, seg) {
		t.Error("interior token must be allowed")
	}
	// Without prev/next there are no cones.
	segBare := Segment{S: s, D: d}
	if !c.AllowedArea(behind, segBare) {
		t.Error("no-context segment must not apply cones")
	}
}

func TestConeAngleBoundary(t *testing.T) {
	c, g := setup()
	prev := g.CellAt(geo.XY{X: -500, Y: 0})
	s := g.CellAt(geo.XY{X: 0, Y: 0})
	d := g.CellAt(geo.XY{X: 1000, Y: 0})
	seg := Segment{S: s, D: d, Prev: &prev}
	// 60° off the back direction: outside the default 45° cone.
	a := 120 * math.Pi / 180 // measured from +X; back direction is 180°
	tok := g.CellAt(geo.XY{X: 400 * math.Cos(a), Y: 400 * math.Sin(a)})
	if !c.AllowedArea(tok, seg) {
		t.Error("60° off the back direction must be allowed")
	}
	// 20° off the back direction: inside the cone.
	a = 160 * math.Pi / 180
	tok = g.CellAt(geo.XY{X: 400 * math.Cos(a), Y: 400 * math.Sin(a)})
	if c.AllowedArea(tok, seg) {
		t.Error("20° off the back direction must be rejected")
	}
}

func TestFilter(t *testing.T) {
	c, g := setup()
	s := g.CellAt(geo.XY{X: 0, Y: 0})
	d := g.CellAt(geo.XY{X: 600, Y: 0})
	seg := Segment{S: s, D: d, TimeDiff: 60}
	cands := []Candidate{
		{Cell: g.CellAt(geo.XY{X: 300, Y: 0}), Prob: 0.5},
		{Cell: s, Prob: 0.3},                                 // trivial cycle: equals S
		{Cell: g.CellAt(geo.XY{X: 300, Y: 5000}), Prob: 0.2}, // outside ellipse
	}
	got := c.Filter(cands, seg)
	if len(got) != 1 || got[0].Prob != 0.5 {
		t.Fatalf("Filter returned %+v, want only the 0.5 candidate", got)
	}
	// Filter must not mutate the input slice.
	if cands[1].Cell != s {
		t.Error("input slice mutated")
	}
}

func TestHasCycle(t *testing.T) {
	c, _ := setup()
	mk := func(ids ...int) []grid.Cell {
		out := make([]grid.Cell, len(ids))
		for i, v := range ids {
			out[i] = grid.Cell(v)
		}
		return out
	}
	tests := []struct {
		name   string
		tokens []grid.Cell
		want   bool
	}{
		{"empty", nil, false},
		{"trivial x=1", mk(1, 2, 3, 3), true},
		{"x=2", mk(9, 1, 2, 1, 2), true},
		{"x=3", mk(7, 1, 2, 3, 1, 2, 3), true},
		{"no cycle", mk(1, 2, 3, 4, 5), false},
		{"overpass: repeated token, no repeated sequence", mk(3, 6, 7, 8, 3, 9), false},
		{"too short for x=2", mk(1, 2), false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := c.HasCycle(tc.tokens); got != tc.want {
				t.Errorf("HasCycle(%v) = %v, want %v", tc.tokens, got, tc.want)
			}
		})
	}
}

func TestHasCycleRespectsWindow(t *testing.T) {
	c, _ := setup()
	c.CycleLen = 2
	long := []grid.Cell{1, 2, 3, 1, 2, 3} // x=3 cycle, beyond window 2
	if c.HasCycle(long) {
		t.Error("cycle longer than the window must not be detected")
	}
	c.CycleLen = 3
	if !c.HasCycle(long) {
		t.Error("x=3 cycle must be detected with window 3")
	}
}

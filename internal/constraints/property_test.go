package constraints

import (
	"math"
	"testing"
	"testing/quick"

	"kamel/internal/geo"
	"kamel/internal/grid"
	"kamel/internal/tokenizer"
)

// TestFilterSubsetProperty: Filter output is always an order-preserving
// subset of its input, never containing S or D.
func TestFilterSubsetProperty(t *testing.T) {
	g := grid.NewHex(75)
	c, _ := setupLike(g)
	f := func(coords []int16, timeDiff float64) bool {
		s := g.CellAt(geo.XY{X: 0, Y: 0})
		d := g.CellAt(geo.XY{X: 900, Y: 0})
		seg := Segment{S: s, D: d, TimeDiff: math.Mod(math.Abs(timeDiff), 300)}
		var cands []Candidate
		for i := 0; i+1 < len(coords); i += 2 {
			cell := g.CellAt(geo.XY{X: float64(coords[i]), Y: float64(coords[i+1])})
			cands = append(cands, Candidate{Cell: cell, Prob: 0.1})
		}
		out := c.Filter(cands, seg)
		if len(out) > len(cands) {
			return false
		}
		// Order preserved: out must be a subsequence of cands.
		j := 0
		for _, o := range out {
			found := false
			for ; j < len(cands); j++ {
				if cands[j].Cell == o.Cell {
					found = true
					j++
					break
				}
			}
			if !found {
				return false
			}
			if o.Cell == s || o.Cell == d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func setupLike(g grid.Grid) (*Checker, grid.Grid) {
	return NewChecker(tokenizer.NewFixed(g), 30), g
}

// TestDisabledCheckerPassesEverything: the No-Const ablation accepts any
// candidate except exact gap endpoints, and never bounds path length.
func TestDisabledCheckerPassesEverything(t *testing.T) {
	g := grid.NewHex(75)
	c := NewChecker(tokenizer.NewFixed(g), 30)
	c.Disabled = true
	s := g.CellAt(geo.XY{X: 0, Y: 0})
	d := g.CellAt(geo.XY{X: 500, Y: 0})
	prev := g.CellAt(geo.XY{X: -500, Y: 0})
	seg := Segment{S: s, D: d, Prev: &prev, TimeDiff: 1} // absurdly tight timing
	farAndBehind := []Candidate{
		{Cell: g.CellAt(geo.XY{X: -400, Y: 0}), Prob: 0.5}, // in the back cone
		{Cell: g.CellAt(geo.XY{X: 0, Y: 9e5}), Prob: 0.5},  // far outside any ellipse
	}
	if got := c.Filter(farAndBehind, seg); len(got) != 2 {
		t.Errorf("disabled checker filtered %d of 2 candidates", 2-len(got))
	}
	if !math.IsInf(c.MaxPathMeters(seg), 1) {
		t.Error("disabled checker must not bound path length")
	}
}

// TestMaxPathMeters covers the three regimes of the path bound.
func TestMaxPathMeters(t *testing.T) {
	g := grid.NewHex(75)
	c := NewChecker(tokenizer.NewFixed(g), 20)
	s := g.CellAt(geo.XY{X: 0, Y: 0})
	d := g.CellAt(geo.XY{X: 1000, Y: 0})

	// Timed: speed × Δt.
	timed := c.MaxPathMeters(Segment{S: s, D: d, TimeDiff: 100})
	if math.Abs(timed-2000) > 1 {
		t.Errorf("timed bound %f, want 2000", timed)
	}
	// Untimed: κ × direct.
	direct := g.Centroid(s).Dist(g.Centroid(d))
	untimed := c.MaxPathMeters(Segment{S: s, D: d})
	if math.Abs(untimed-3*direct) > 1 {
		t.Errorf("untimed bound %f, want %f", untimed, 3*direct)
	}
	// Floor: even absurd timing admits the direct path plus slack.
	floor := c.MaxPathMeters(Segment{S: s, D: d, TimeDiff: 0.001})
	if floor < direct {
		t.Errorf("floor %f below direct distance %f", floor, direct)
	}
}

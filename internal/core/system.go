package core

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"

	"kamel/internal/baseline"
	"kamel/internal/batcher"
	"kamel/internal/bert"
	"kamel/internal/constraints"
	"kamel/internal/detok"
	"kamel/internal/fsx"
	"kamel/internal/geo"
	"kamel/internal/grid"
	"kamel/internal/modelcache"
	"kamel/internal/obs"
	"kamel/internal/pyramid"
	"kamel/internal/store"
	"kamel/internal/tokenizer"
	"kamel/internal/vocab"
)

// maintQueueDepth bounds how many training batches may be queued for the
// background maintainer before Train falls back to rebuilding synchronously
// (natural backpressure).
const maintQueueDepth = 16

// modelBundle is what the pyramid stores per model: a trained BERT plus the
// vocabulary that maps its token IDs to grid cells.
type modelBundle struct {
	model *bert.Model
	vocab *vocab.Vocab
}

// SizeBytes implements modelcache.Sizer: the bundle's resident footprint
// charged against the model-cache byte budget.
func (b *modelBundle) SizeBytes() int64 {
	return b.model.SizeBytes() + b.vocab.SizeBytes()
}

// serveState is the immutable serving snapshot.  Imputation loads it once
// per request through an atomic pointer and never takes a lock: every field
// is written before publication and read-only afterwards (copy-on-write).
// One request therefore always sees one consistent generation of models,
// detokenization clusters, and constraints — even while training rebuilds
// the next generation concurrently.
type serveState struct {
	seq      int64          // publication sequence, monotonically increasing
	index    *pyramid.Index // model snapshot; nil before partitioned training
	global   *modelBundle   // used when DisablePartitioning is set
	detok    *detok.Table
	checker  *constraints.Checker
	proj     *geo.Projection
	tok      tokenizer.Tokenizer // frozen token mapping this generation was built with
	speedMPS float64             // inferred max speed (§5.1)
}

// System is a deployed KAMEL instance.  Train and Impute may be called from
// multiple goroutines: imputation runs lock-free against the latest
// published serveState, and training serializes internally (short state
// mutations under mu, long model rebuilds under maintMu).
type System struct {
	cfg  Config
	g    grid.Grid // base tessellation; also the routing key space of the cluster layer
	proj *geo.Projection

	// tok is the spatial tokenizer every persisted artifact (store tokens,
	// vocabularies, models, detok clusters) is expressed in.  For the fixed
	// tokenizer it is set at construction; for the adaptive tokenizer it is
	// derived from the first training batch (or loaded from disk) and then
	// frozen — tokens are identities, so the mapping must never change under
	// a trained system.  Guarded by mu; the imputation path reads the copy in
	// the published serveState instead.
	tok       tokenizer.Tokenizer
	tokFrozen bool

	// serve is the atomically-published serving snapshot; see serveState.
	serve atomic.Pointer[serveState]

	// cache pages disk-resident models into memory under a byte budget
	// (paper §4: models live on disk and load per request).  Shared by
	// WithAblation clones.
	cache *modelcache.Cache

	// adm coalesces concurrent requests' BERT predictions into shared
	// engine passes (internal/batcher).  Nil when admission batching is
	// disabled; shared by WithAblation clones.  Its per-model dispatchers
	// are keyed by engine value and exit when drained, so snapshot churn
	// and cache evictions never leak goroutines; Close drains it.
	adm *batcher.Batcher

	// maintMu serializes model rebuilds (pyramid maintenance, repository
	// commits, global-model training) — the long-running work.  Lock order:
	// maintMu before mu, never the reverse.
	maintMu sync.Mutex
	repo    *pyramid.Repo // builder; guarded by maintMu

	// maintCh feeds appended training batches to the background maintainer
	// (Maintain); maintaining reports whether one is running, and
	// pendingRebuilds counts scheduled-but-unfinished batches.
	maintCh         chan []store.Traj
	maintaining     atomic.Bool
	pendingRebuilds atomic.Int64

	mu        sync.RWMutex
	st        *store.Store
	curIndex  *pyramid.Index // latest repo snapshot, for stats + publication
	global    *modelBundle   // used when DisablePartitioning is set
	detokTab  *detok.Table
	checker   *constraints.Checker
	speedMPS  float64 // inferred max speed (§5.1)
	trainTime float64 // cumulative seconds spent training
	pubSeq    int64   // last published serveState sequence

	// served accumulates per-process serving counters; a pointer so
	// WithAblation clones share the receiver's counters.
	served *servedCounters

	// obsReg is the system's metrics registry: the single source of truth
	// for every serving-side counter, gauge, and latency histogram.  The
	// HTTP layer exposes it at /metrics and registers its own request
	// metrics into it; SystemStats reads the same counters, so the two
	// surfaces can never disagree.  Shared by WithAblation clones.
	obsReg *obs.Registry

	// imputeReqs/imputeErrs count ImputeContext entries and error returns.
	imputeReqs, imputeErrs *obs.Counter
	// maintRebuilds/maintFailures count background maintainer outcomes.
	maintRebuilds, maintFailures *obs.Counter
	// modelBuilds counts per-cell BERT trainings run by pyramid maintenance
	// (the unit of work the rebuild worker pool parallelizes).
	modelBuilds *obs.Counter
	// pyrCommit/pyrQuarantine are resolved once at init and attached to every
	// pyramid.Repo the system creates or loads (Repo.SetMetrics), because the
	// attachment sites hold mu and registry registration is forbidden under mu
	// (the registry's gauge closures take mu.RLock during exposition).
	pyrCommit     *obs.Histogram
	pyrQuarantine *obs.Counter
}

// Obs returns the system's metrics registry, for the serving layer to expose
// at /metrics and to register HTTP-level series into.
func (s *System) Obs() *obs.Registry { return s.obsReg }

// imputeStages are the per-stage span names of one imputation request, in
// pipeline order.  They are pre-registered so /metrics shows every stage
// histogram from the first scrape, not only after traffic.  "impute.beam"
// wraps the whole multipoint search, so it includes its "impute.predict" and
// "impute.constraints" children; the stages overlap by design, they are not
// a partition.
var imputeStages = []string{
	"impute.tokenize", "impute.lookup", "impute.page_in", "impute.predict",
	"impute.constraints", "impute.beam", "impute.detok",
	"train.append", "train.rebuild",
}

// initObs builds the registry and registers every core-owned series.
func (s *System) initObs() {
	reg := obs.NewRegistry()
	s.obsReg = reg
	for _, stage := range imputeStages {
		reg.Stage(stage)
	}
	s.imputeReqs = reg.Counter("kamel_impute_requests_total",
		"ImputeContext/ImputeBatch items entered.")
	s.imputeErrs = reg.Counter("kamel_impute_errors_total",
		"Imputation requests that returned an error (untrained, cancelled, ...).")
	s.maintRebuilds = reg.Counter("kamel_maintain_rebuilds_total",
		"Background maintainer rebuilds completed.")
	s.maintFailures = reg.Counter("kamel_maintain_failures_total",
		"Background maintainer rebuilds that failed.")
	s.modelBuilds = reg.Counter("kamel_rebuild_models_total",
		"Per-cell model trainings run by pyramid maintenance.")
	reg.GaugeFunc("kamel_rebuild_workers",
		"Bounded worker-pool size for concurrent per-cell rebuilds.", func() float64 {
			return float64(s.cfg.RebuildWorkers)
		})
	s.pyrCommit = reg.Histogram("kamel_pyramid_commit_seconds",
		"Wall time of one incremental repository commit (write dirty models, fsync, manifest rename).", nil)
	s.pyrQuarantine = reg.Counter("kamel_pyramid_quarantined_total",
		"Model files sidelined as corrupt at load time.")
	s.served = newServedCounters(reg)
	reg.GaugeFunc("kamel_snapshot_generation",
		"Published serving-snapshot sequence number.", func() float64 {
			if ss := s.serve.Load(); ss != nil {
				return float64(ss.seq)
			}
			return 0
		})
	reg.GaugeFunc("kamel_maintenance_pending",
		"Training batches queued for the background maintainer.", func() float64 {
			return float64(s.pendingRebuilds.Load())
		})
	reg.GaugeFunc("kamel_quarantined_models",
		"Model slots quarantined as corrupt in the current snapshot.", func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			if s.curIndex == nil {
				return 0
			}
			return float64(s.curIndex.QuarantinedModels())
		})
	s.cache.Instrument(reg)
	if !s.cfg.DisableAdmissionBatching {
		s.adm = batcher.New(batcher.Options{
			MaxBatch:  s.cfg.BatchMaxSize,
			MaxWait:   s.cfg.BatchMaxWait,
			MaxQueue:  s.cfg.BatchMaxQueue,
			MaxStarve: s.cfg.BatchMaxStarve,
			Registry:  reg,
		})
	}
}

// Batcher returns the admission batcher, or nil when admission batching is
// disabled.  The serving layer reads its coalescing stats.
func (s *System) Batcher() *batcher.Batcher { return s.adm }

// publishLocked snapshots the current trained state into a fresh serveState
// and publishes it atomically.  Callers hold mu.
func (s *System) publishLocked() {
	s.pubSeq++
	s.serve.Store(&serveState{
		seq:      s.pubSeq,
		index:    s.curIndex,
		global:   s.global,
		detok:    s.detokTab,
		checker:  s.checker,
		proj:     s.proj,
		tok:      s.tok,
		speedMPS: s.speedMPS,
	})
}

// servedCounters are the cumulative imputation-serving counters operators
// read from /v1/stats and /metrics: how much work was served, how much of it
// fell back to a straight line, and how much was degraded by quarantined
// models.  They live in the obs registry so both surfaces read one value.
type servedCounters struct {
	segments *obs.Counter
	failures *obs.Counter
	degraded *obs.Counter
}

func newServedCounters(reg *obs.Registry) *servedCounters {
	return &servedCounters{
		segments: reg.Counter("kamel_served_segments_total",
			"Trajectory gaps imputation attempted to fill."),
		failures: reg.Counter("kamel_served_failures_total",
			"Gaps that fell back to a straight line."),
		degraded: reg.Counter("kamel_degraded_segments_total",
			"Gaps served down the degradation ladder (ancestor model or linear fallback)."),
	}
}

// account folds one request's accounting into the cumulative counters.
func (c *servedCounters) account(st baseline.Stats) {
	if c == nil || st.Segments == 0 && st.Degraded == 0 {
		return
	}
	c.segments.Add(int64(st.Segments))
	c.failures.Add(int64(st.Failures))
	c.degraded.Add(int64(st.Degraded))
}

// New creates a KAMEL system.  The projection is fixed lazily by the first
// training batch unless cfg.Region plus an explicit projection are provided
// via NewWithProjection.
func New(cfg Config) (*System, error) {
	return NewWithProjection(cfg, nil)
}

// NewWithProjection creates a system with a pre-chosen projection (useful
// when the deployment region is known up front).
func NewWithProjection(cfg Config, proj *geo.Projection) (*System, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	s := &System{
		cfg:     cfg,
		proj:    proj,
		cache:   modelcache.New(resolveCacheBudget(cfg.ModelCacheBytes)),
		maintCh: make(chan []store.Traj, maintQueueDepth),
	}
	s.initObs()
	switch cfg.GridKind {
	case "hex":
		s.g = grid.NewHex(cfg.CellEdgeM)
	case "square":
		edge := cfg.SquareEdgeM
		if edge <= 0 {
			edge = grid.SquareEdgeForHexArea(cfg.CellEdgeM)
		}
		s.g = grid.NewSquare(edge)
	}
	if cfg.Tokenizer != TokenizerAdaptive {
		// The fixed tokenizer is pure configuration; it exists from birth.
		// It stays unfrozen until a persisted spec (disk wins) or the first
		// training batch confirms it — see ensureTokenizerLocked.
		s.tok = tokenizer.NewFixed(s.g)
	}
	if proj != nil {
		if err := s.initStorage(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// initStorage opens the trajectory store once a projection is known and
// persists the projection origin so later processes can reopen it.
func (s *System) initStorage() error {
	st, err := store.Open(filepath.Join(s.cfg.Workdir, "store"), s.proj)
	if err != nil {
		return err
	}
	s.st = st
	return s.saveMeta()
}

// Config returns the (normalized) configuration.
func (s *System) Config() Config { return s.cfg }

// Grid returns the base tessellation.  The cluster layer routes on these
// coarse cells regardless of tokenizer; token-space consumers should use
// Tokenizer instead.
func (s *System) Grid() grid.Grid { return s.g }

// Tokenizer returns the active spatial tokenizer, or nil when an adaptive
// tokenizer is configured but not yet derived (no training, no load).
func (s *System) Tokenizer() tokenizer.Tokenizer {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tok
}

// TokenizerSpecHash returns the canonical hash of the active tokenizer's
// spec — the compatibility fingerprint replicas compare before exchanging
// models — or "" when no tokenizer is active yet.
func (s *System) TokenizerSpecHash() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.tok == nil {
		return ""
	}
	return s.tok.Spec().Hash()
}

// Projection returns the planar projection, or nil before any training.
func (s *System) Projection() *geo.Projection {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.proj
}

// Close releases the underlying store.  It waits for any in-flight model
// rebuild to finish (maintMu) so the store is never closed under a running
// maintenance pass.
func (s *System) Close() error {
	// Drain the admission batcher first: queued predictions fail with
	// batcher.ErrClosed (so in-flight imputations unblock and error out) and
	// running engine passes finish delivering before the store goes away.
	if s.adm != nil {
		s.adm.Close()
	}
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.st == nil {
		return nil
	}
	err := s.st.Close()
	s.st = nil
	// Unpublish the serving snapshot: a closed system answers ErrNotTrained,
	// as it did before the snapshot scheme.
	s.curIndex = nil
	s.global = nil
	s.publishLocked()
	return err
}

// Stats summarizes the trained state for dashboards and the demo API.  The
// quarantine and serving counters let operators see degradation rates: how
// many persisted models were sidelined as corrupt, and how many served gaps
// were degraded (ancestor model or linear fallback) as a result.
type Stats struct {
	// ShardID labels which shard of a horizontally sharded deployment these
	// stats describe (empty for a single-node system).
	ShardID string `json:"shard_id,omitempty"`

	Trajectories   int     `json:"trajectories"`
	Tokens         int     `json:"tokens"`
	SingleModels   int     `json:"single_models"`
	NeighborModels int     `json:"neighbor_models"`
	DetokTokens    int     `json:"detok_tokens"`
	MaxSpeedMPS    float64 `json:"max_speed_mps"`
	TrainSeconds   float64 `json:"train_seconds"`

	// Tokenizer identity and shape: the kind, the spec fingerprint replicas
	// compare, and — for the adaptive tokenizer — how many base cells were
	// split finer / merged coarser.
	TokenizerKind     string `json:"tokenizer_kind,omitempty"`
	TokenizerSpecHash string `json:"tokenizer_spec_hash,omitempty"`
	SplitCells        int    `json:"split_cells,omitempty"`
	MergeCells        int    `json:"merge_cells,omitempty"`

	QuarantinedModels   int   `json:"quarantined_models"`
	CorruptStoreRecords int   `json:"corrupt_store_records"`
	ServedSegments      int64 `json:"served_segments"`
	ServedFailures      int64 `json:"served_failures"`
	DegradedSegments    int64 `json:"degraded_segments"`

	// Model lifecycle: cache occupancy/traffic, the published snapshot
	// sequence, the on-disk manifest generation, and how many training
	// batches await the background maintainer.
	ModelCacheBudgetBytes int64   `json:"model_cache_budget_bytes"`
	ModelCacheBytes       int64   `json:"model_cache_bytes"`
	ModelCacheModels      int     `json:"model_cache_models"`
	ModelCacheHits        int64   `json:"model_cache_hits"`
	ModelCacheMisses      int64   `json:"model_cache_misses"`
	ModelCacheHitRatio    float64 `json:"model_cache_hit_ratio"`
	ModelCacheEvictions   int64   `json:"model_cache_evictions"`
	ModelCacheLoads       int64   `json:"model_cache_loads"`
	ModelCacheLoadErrors  int64   `json:"model_cache_load_errors"`
	ModelCacheLoadMeanMS  float64 `json:"model_cache_load_mean_ms"`
	SnapshotGeneration    int64   `json:"snapshot_generation"`
	ManifestGeneration    int     `json:"manifest_generation"`
	MaintenancePending    int64   `json:"maintenance_pending"`

	// Admission batching: how concurrent requests' predictions coalesced
	// into shared engine passes (zero-valued when batching is disabled).
	Batcher batcher.Stats `json:"batcher"`
}

// SystemStats reports the current state.
func (s *System) SystemStats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := Stats{ShardID: s.cfg.ShardID, MaxSpeedMPS: s.speedMPS, TrainSeconds: s.trainTime}
	if s.tok != nil {
		out.TokenizerKind = s.tok.Kind()
		out.TokenizerSpecHash = s.tok.Spec().Hash()
		if a, ok := s.tok.(*tokenizer.Adaptive); ok {
			out.SplitCells = a.SplitCells()
			out.MergeCells = a.MergeCells()
		}
	}
	if s.st != nil {
		out.Trajectories = s.st.Len()
		out.Tokens = s.st.TotalTokens()
		out.CorruptStoreRecords = s.st.CorruptRecords()
	}
	if s.curIndex != nil {
		out.SingleModels, out.NeighborModels = s.curIndex.NumModels()
		out.QuarantinedModels = s.curIndex.QuarantinedModels()
		out.ManifestGeneration = s.curIndex.Generation()
	}
	if s.global != nil {
		out.SingleModels++
	}
	if s.detokTab != nil {
		out.DetokTokens = s.detokTab.NumTokens()
	}
	if s.served != nil {
		out.ServedSegments = s.served.segments.Value()
		out.ServedFailures = s.served.failures.Value()
		out.DegradedSegments = s.served.degraded.Value()
	}
	out.SnapshotGeneration = s.pubSeq
	out.MaintenancePending = s.pendingRebuilds.Load()
	if s.adm != nil {
		out.Batcher = s.adm.Stats()
	}
	cs := s.cache.Stats()
	out.ModelCacheBudgetBytes = cs.BudgetBytes
	out.ModelCacheBytes = cs.Bytes
	out.ModelCacheModels = cs.Models
	out.ModelCacheHits = cs.Hits
	out.ModelCacheMisses = cs.Misses
	out.ModelCacheHitRatio = cs.HitRatio()
	out.ModelCacheEvictions = cs.Evictions
	out.ModelCacheLoads = cs.Loads
	out.ModelCacheLoadErrors = cs.LoadErrors
	if cs.Loads > 0 {
		out.ModelCacheLoadMeanMS = float64(cs.LoadNanos) / float64(cs.Loads) / 1e6
	}
	return out
}

// Ready reports whether the system can serve model-based imputations: at
// least one trained (or loaded) model exists in the published snapshot.  The
// serving layer's readiness probe keys off it.
func (s *System) Ready() bool {
	ss := s.serve.Load()
	if ss == nil {
		return false
	}
	if ss.global != nil {
		return true
	}
	if ss.index == nil {
		return false
	}
	single, neighbor := ss.index.NumModels()
	return single+neighbor > 0
}

// WarmRoot proves the published snapshot's root model — the one covering the
// largest region — is materializable: resident models pass trivially, and
// disk-resident ones are paged in through the cache (then released).  The
// serving layer reports "warming" readiness until this succeeds, so traffic
// is not admitted while the repository directory is unreadable.
func (s *System) WarmRoot(ctx context.Context) error {
	ss := s.serve.Load()
	if ss == nil {
		return ErrNotTrained
	}
	if ss.global != nil {
		return nil
	}
	if ss.index == nil {
		return ErrNotTrained
	}
	ref, ok := ss.index.RootRef()
	if !ok {
		return ErrNotTrained
	}
	_, release, err := s.resolveModel(ctx, ref)
	if err != nil {
		return err
	}
	release()
	return nil
}

// WithAblation returns a read-only view of the trained system with the
// Spatial Constraints and/or Multipoint Imputation modules toggled (paper
// §8.7).  Both switches act purely at imputation time, so the trained models
// are shared with the receiver — the returned system must not be trained or
// closed, and the receiver must outlive it.
func (s *System) WithAblation(disableConstraints, disableMultipoint bool) *System {
	s.mu.RLock()
	defer s.mu.RUnlock()
	clone := &System{
		cfg:       s.cfg,
		g:         s.g,
		tok:       s.tok,
		tokFrozen: s.tokFrozen,
		proj:      s.proj,
		st:        s.st,
		curIndex:  s.curIndex,
		global:    s.global,
		detokTab:  s.detokTab,
		speedMPS:  s.speedMPS,
		served:    s.served,
		cache:     s.cache, // paged models are shared; ablations only change search
		adm:       s.adm,   // coalescing spans ablations: same models, same engine
		maintCh:   make(chan []store.Traj, maintQueueDepth),
		// The observability substrate is shared too: an ablation's requests
		// count toward the same process-wide registry.
		obsReg:        s.obsReg,
		imputeReqs:    s.imputeReqs,
		imputeErrs:    s.imputeErrs,
		maintRebuilds: s.maintRebuilds,
		maintFailures: s.maintFailures,
		pyrCommit:     s.pyrCommit,
		pyrQuarantine: s.pyrQuarantine,
	}
	clone.cfg.DisableConstraints = disableConstraints
	clone.cfg.DisableMultipoint = disableMultipoint
	clone.refreshChecker()
	// The clone publishes its own snapshot: the receiver's trained state
	// with the re-derived checker swapped in.
	if ss := s.serve.Load(); ss != nil {
		ss2 := *ss
		ss2.checker = clone.checker
		clone.pubSeq = ss2.seq
		clone.serve.Store(&ss2)
	}
	return clone
}

// Repo exposes the model repository builder for offline inspection
// (experiment E13).  The builder is owned by the maintenance path; do not
// call this while training or a maintenance loop is active.
func (s *System) Repo() *pyramid.Repo {
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	return s.repo
}

// tokenize converts a trajectory to a store record: one spatial token per
// point.  Callers hold mu and have run ensureTokenizerLocked.
func (s *System) tokenize(tr geo.Trajectory) store.Traj {
	rec := store.Traj{ID: tr.ID, Points: tr.Points}
	rec.Tokens = make([]grid.Cell, len(tr.Points))
	for i, p := range tr.Points {
		rec.Tokens[i] = s.tok.Tokenize(s.proj.ToXY(p))
	}
	return rec
}

// sequenceOf collapses a record's tokens into the deduplicated sequence BERT
// trains on: consecutive identical tokens become one, mirroring how a
// sentence does not repeat a word for every acoustic frame.
func sequenceOf(rec store.Traj) []grid.Cell {
	var out []grid.Cell
	for _, c := range rec.Tokens {
		if len(out) == 0 || out[len(out)-1] != c {
			out = append(out, c)
		}
	}
	return out
}

// ensureProjection fixes the projection (and storage) from the first batch.
func (s *System) ensureProjection(trajs []geo.Trajectory) error {
	if s.proj != nil {
		if s.st == nil {
			return s.initStorage()
		}
		return nil
	}
	for _, tr := range trajs {
		if len(tr.Points) > 0 {
			p := tr.Points[0]
			s.proj = geo.NewProjection(p.Lat, p.Lng)
			return s.initStorage()
		}
	}
	return fmt.Errorf("core: cannot fix projection from an empty batch")
}

// metaPath is the workdir file that persists the projection origin, so a
// fresh process can reopen the store and models without retraining.
func (s *System) metaPath() string { return filepath.Join(s.cfg.Workdir, "meta.json") }

// saveMeta persists the projection origin.  The write is atomic: meta.json
// is the root pointer a fresh process recovers everything else from, so it
// must never be observable half-written.
func (s *System) saveMeta() error {
	lat, lng := s.proj.Origin()
	buf, err := json.Marshal(map[string]float64{"origin_lat": lat, "origin_lng": lng})
	if err != nil {
		return err
	}
	return fsx.WriteFileAtomic(fsx.OS(), s.metaPath(), buf)
}

// loadMeta restores the projection origin if previously saved.
func (s *System) loadMeta() error {
	buf, err := fsx.ReadFile(fsx.OS(), s.metaPath())
	if err != nil {
		return err
	}
	var m map[string]float64
	if err := json.Unmarshal(buf, &m); err != nil {
		return fmt.Errorf("core: parsing %s: %w", s.metaPath(), err)
	}
	s.proj = geo.NewProjection(m["origin_lat"], m["origin_lng"])
	return nil
}

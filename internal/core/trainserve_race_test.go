package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"kamel/internal/geo"
)

// seqRecorder collects, per imputation request, the serve-snapshot sequence
// number that served each gap (via testGapHook).  A request whose gaps span
// more than one sequence has read a torn snapshot.
type seqRecorder struct {
	mu   sync.Mutex
	seqs []int64
}

type seqRecorderKey struct{}

// TestTrainWhileServeRace hammers ImputeBatch from several goroutines while
// training batches flow through the background maintainer, which rebuilds
// models, commits them to disk, and republishes serving snapshots the whole
// time.  Run under -race it proves the lock-free impute path; the recorder
// proves every request is served by exactly one snapshot generation.
func TestTrainWhileServeRace(t *testing.T) {
	if testing.Short() {
		t.Skip("trains several models under load")
	}
	f := newFixture(t, func(c *Config) {
		c.DisablePartitioning = false
		c.PyramidH = 1
		c.PyramidL = 2
		c.ThresholdK = 200
		c.Train.Steps = 60
	})
	sys, err := NewWithProjection(f.cfg, f.proj)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	// Seed the system so imputation works from the start.
	half := len(f.train) / 2
	if err := sys.Train(f.train[:half]); err != nil {
		t.Fatal(err)
	}

	testGapHook = func(ctx context.Context, seq int64) {
		rec, _ := ctx.Value(seqRecorderKey{}).(*seqRecorder)
		if rec == nil {
			return
		}
		rec.mu.Lock()
		rec.seqs = append(rec.seqs, seq)
		rec.mu.Unlock()
	}
	defer func() { testGapHook = nil }()

	mctx, cancelMaint := context.WithCancel(context.Background())
	defer cancelMaint()
	maintDone := make(chan error, 1)
	go func() { maintDone <- sys.Maintain(mctx) }()

	sparse := make([]geo.Trajectory, len(f.test))
	for i, tr := range f.test {
		sparse[i] = tr.Sparsify(700)
	}

	const workers = 6
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rec := &seqRecorder{}
				ctx := context.WithValue(context.Background(), seqRecorderKey{}, rec)
				batch := []geo.Trajectory{sparse[(w+i)%len(sparse)]}
				results, err := sys.ImputeBatch(ctx, batch)
				if err != nil {
					errCh <- err
					return
				}
				if results[0].Err != nil {
					errCh <- results[0].Err
					return
				}
				rec.mu.Lock()
				for j := 1; j < len(rec.seqs); j++ {
					if rec.seqs[j] != rec.seqs[0] {
						errCh <- fmt.Errorf("torn snapshot read: gap %d served by snapshot %d, gap 0 by snapshot %d",
							j, rec.seqs[j], rec.seqs[0])
						rec.mu.Unlock()
						return
					}
				}
				rec.mu.Unlock()
			}
		}(w)
	}

	// Feed the remaining training data in two batches; with the maintainer
	// running these return once the batch is durable and the rebuilds (and
	// snapshot swaps) happen concurrently with the imputation load above.
	rest := f.train[half:]
	for _, batch := range [][]geo.Trajectory{rest[:len(rest)/2], rest[len(rest)/2:]} {
		if err := sys.Train(batch); err != nil {
			t.Fatal(err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	// Keep the hammering overlapped with at least part of the rebuild work,
	// then stop it so the maintainer gets the CPU to drain its queue.
	hammerUntil := time.Now().Add(5 * time.Second)
	for sys.SystemStats().MaintenancePending > 0 && time.Now().Before(hammerUntil) {
		time.Sleep(50 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	deadline := time.Now().Add(3 * time.Minute)
	for sys.SystemStats().MaintenancePending > 0 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Millisecond)
	}
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	cancelMaint()
	if err := <-maintDone; err != nil && !errors.Is(err, context.Canceled) {
		t.Fatal(err)
	}

	st := sys.SystemStats()
	if st.MaintenancePending > 0 {
		t.Errorf("maintainer did not drain: %d rebuilds pending", st.MaintenancePending)
	}
	if st.SnapshotGeneration < 2 {
		t.Errorf("snapshot never advanced under train-while-serve (generation %d)", st.SnapshotGeneration)
	}
	if st.SingleModels == 0 {
		t.Error("no models after maintained training")
	}
}

// TestCachePagingUnderSmallBudget proves the acceptance criterion that a
// model repository far larger than the cache budget still evaluates
// correctly: a reloaded system with a tiny ModelCacheBytes pages models in
// and out (nonzero evictions) yet imputes the test set identically to the
// fully memory-resident system, and a generous budget serves repeats from
// cache (nonzero hits, sane hit ratio).
func TestCachePagingUnderSmallBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("trains several models")
	}
	f := newFixture(t, func(c *Config) {
		c.DisablePartitioning = false
		c.PyramidH = 1
		c.PyramidL = 2
		c.ThresholdK = 200
		c.Train.Steps = 80
	})
	sys := trainedSystem(t, f)
	if err := sys.SaveModels(); err != nil {
		t.Fatal(err)
	}

	sparse := make([]geo.Trajectory, len(f.test))
	for i, tr := range f.test {
		sparse[i] = tr.Sparsify(700)
	}
	want := make([]geo.Trajectory, len(sparse))
	for i, tr := range sparse {
		dense, _, err := sys.Impute(tr)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = dense
	}

	run := func(t *testing.T, budget int64) Stats {
		cfg := f.cfg
		cfg.ModelCacheBytes = budget
		sys2, err := NewWithProjection(cfg, f.proj)
		if err != nil {
			t.Fatal(err)
		}
		defer sys2.Close()
		if err := sys2.LoadModels(); err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 2; round++ { // repeats give a warm cache something to hit
			for i, tr := range sparse {
				dense, _, err := sys2.Impute(tr)
				if err != nil {
					t.Fatal(err)
				}
				if len(dense.Points) != len(want[i].Points) {
					t.Fatalf("budget %d: trajectory %d imputed %d points, memory-resident system %d",
						budget, i, len(dense.Points), len(want[i].Points))
				}
			}
		}
		return sys2.SystemStats()
	}

	t.Run("tiny", func(t *testing.T) {
		// A 1-byte budget keeps every model over budget, so each is evicted
		// as soon as its pin is released — maximal paging pressure.
		st := run(t, 1)
		if st.ModelCacheEvictions == 0 {
			t.Errorf("tiny budget evicted nothing (budget=%d bytes=%d models=%d)",
				st.ModelCacheBudgetBytes, st.ModelCacheBytes, st.ModelCacheModels)
		}
		if st.ModelCacheBytes > 0 && st.ModelCacheBytes > st.ModelCacheBudgetBytes {
			// Occupancy above budget is only legal while models are pinned.
			t.Errorf("cache over budget at rest: %d > %d", st.ModelCacheBytes, st.ModelCacheBudgetBytes)
		}
	})
	t.Run("generous", func(t *testing.T) {
		st := run(t, 1<<30)
		if st.ModelCacheHits == 0 {
			t.Error("generous budget never hit the cache")
		}
		if st.ModelCacheEvictions != 0 {
			t.Errorf("generous budget evicted %d models", st.ModelCacheEvictions)
		}
		if r := st.ModelCacheHitRatio; r <= 0 || r > 1 {
			t.Errorf("hit ratio %v out of range", r)
		}
	})
}

package core

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"

	"kamel/internal/bert"
	"kamel/internal/fsx"
	"kamel/internal/pyramid"
	"kamel/internal/vocab"
)

// bundleCodec persists modelBundles for the pyramid's disk repository: the
// vocabulary followed by the BERT weights, both in their own binary formats.
type bundleCodec struct{}

// Encode implements pyramid.Codec.
func (bundleCodec) Encode(w io.Writer, h pyramid.Handle) error {
	b, ok := h.(*modelBundle)
	if !ok {
		return fmt.Errorf("core: cannot encode handle of type %T", h)
	}
	if _, err := b.vocab.WriteTo(w); err != nil {
		return fmt.Errorf("core: writing vocabulary: %w", err)
	}
	if _, err := b.model.WriteTo(w); err != nil {
		return fmt.Errorf("core: writing model: %w", err)
	}
	return nil
}

// Decode implements pyramid.Codec.  Both sections buffer their reads, so the
// stream is materialized once and split by the vocabulary's consumed-byte
// count.
func (bundleCodec) Decode(r io.Reader) (pyramid.Handle, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("core: reading model bundle: %w", err)
	}
	v := vocab.New()
	n, err := v.ReadFrom(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("core: reading vocabulary: %w", err)
	}
	if n < 0 || n > int64(len(data)) {
		return nil, fmt.Errorf("core: vocabulary section size %d out of range", n)
	}
	m, err := bert.Read(bytes.NewReader(data[n:]))
	if err != nil {
		return nil, fmt.Errorf("core: reading model: %w", err)
	}
	return &modelBundle{model: m, vocab: v}, nil
}

// SaveModels persists the model repository under the system's Workdir so a
// later process can impute without retraining — the paper's offline-train /
// online-impute split (§4).  The save is an incremental copy-on-write
// commit: only models rebuilt since the last commit are written; everything
// else is carried forward by file reference.  Freshly trained models stay
// memory-resident in this process — paging through the model cache begins
// when a process restores the repository with LoadModels.
func (s *System) SaveModels() error {
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	if s.repo == nil {
		return fmt.Errorf("core: nothing to save (no repository; global-model mode is not persisted)")
	}
	// The spec precedes the models: a directory holding models must always
	// name the token space they are expressed in.  Training already wrote it
	// (ensureTokenizerLocked), so this re-save is an idempotent no-op unless
	// the directory was wiped between train and save.
	s.mu.Lock()
	err := s.saveSpecLocked()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	if _, err := s.repo.CommitFS(fsx.OS(), s.modelsDir(), bundleCodec{}); err != nil {
		return err
	}
	ix := s.repo.Index()
	s.mu.Lock()
	s.curIndex = ix
	s.publishLocked()
	s.mu.Unlock()
	return nil
}

// LoadModels restores a repository persisted by SaveModels in disk-resident
// form: every model file is integrity-checked eagerly, but models are only
// decoded into memory when imputation first needs them, through the
// byte-budgeted model cache — KAMEL's scalability story (§4: the repository
// outgrows memory; the working set does not).  The trajectory store (and
// therefore detokenization clusters and the speed estimate) is rebuilt from
// the Workdir store automatically.  Model files that fail their integrity
// checks are quarantined with a logged warning, not fatal: the surviving
// models keep serving and lookups degrade to ancestors (visible as
// QuarantinedModels / DegradedSegments in Stats).
func (s *System) LoadModels() error {
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.proj == nil {
		// A fresh process: restore the projection persisted at training
		// time and replay the trajectory store.
		if err := s.loadMeta(); err != nil {
			return fmt.Errorf("core: no persisted system in %s: %w", s.cfg.Workdir, err)
		}
		if err := s.initStorage(); err != nil {
			return err
		}
	}
	// Restore the frozen token mapping first — a corrupt or missing spec
	// must refuse the models, because serving them in an unknown token space
	// would silently misplace every imputed point.
	if err := s.loadTokenizerLocked(); err != nil {
		return err
	}
	repo, report, err := pyramid.LoadIndexFS(fsx.OS(), s.modelsDir())
	if err != nil {
		return err
	}
	for _, q := range report.Quarantined {
		slog.Warn("quarantined corrupt model",
			"component", "core", "file", q.File,
			"cell", fmt.Sprint(q.Key), "slot", fmt.Sprint(q.Slot), "err", q.Err)
	}
	// The repo was built before metrics could be attached, so fold the
	// load-time quarantines into the counter here; later quarantines (none
	// today — loads are the only site) increment through the repo itself.
	s.pyrQuarantine.Add(int64(len(report.Quarantined)))
	repo.SetMetrics(s.pyrCommit, s.pyrQuarantine)
	s.repo = repo
	s.curIndex = repo.Index()
	if s.st != nil && s.st.Len() > 0 {
		s.refreshSpeedEstimate()
		s.refreshChecker()
		s.rebuildDetok()
	}
	s.publishLocked()
	return nil
}

func (s *System) modelsDir() string { return s.cfg.Workdir + "/models" }

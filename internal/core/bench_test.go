package core

import (
	"context"
	"testing"
	"time"

	"kamel/internal/geo"
	"kamel/internal/grid"
	"kamel/internal/impute"
	"kamel/internal/ngram"
	"kamel/internal/obs"
	"kamel/internal/roadnet"
	"kamel/internal/store"
	"kamel/internal/trajgen"
)

// benchFixture trains one global system for the predictor benchmarks.
func benchFixture(b *testing.B) (*System, []geo.Trajectory) {
	b.Helper()
	cityCfg := roadnet.DefaultCityConfig()
	cityCfg.Width, cityCfg.Height = 1500, 1500
	net := roadnet.GenerateCity(cityCfg)
	proj := geo.NewProjection(41.15, -8.61)
	gen := trajgen.DefaultConfig(50)
	trajs, err := trajgen.Generate(net, proj, gen)
	if err != nil {
		b.Fatal(err)
	}
	train, test := trajgen.SplitTrainTest(trajs, 0.8, 1)

	cfg := DefaultConfig(b.TempDir())
	cfg.DisablePartitioning = true
	cfg.Hidden, cfg.FFN = 48, 192
	cfg.Train.Steps = 250
	sys, err := NewWithProjection(cfg, proj)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { sys.Close() })
	if err := sys.Train(train); err != nil {
		b.Fatal(err)
	}
	return sys, test
}

// gapRequests extracts imputation requests from sparsified test trajectories.
func gapRequests(sys *System, tests []geo.Trajectory, sparse float64) []impute.Request {
	var out []impute.Request
	for _, truth := range tests {
		sp := truth.Sparsify(sparse)
		for i := 0; i+1 < len(sp.Points); i++ {
			a := sys.proj.ToXY(sp.Points[i])
			bxy := sys.proj.ToXY(sp.Points[i+1])
			out = append(out, impute.Request{
				S:        sys.tok.Tokenize(a),
				D:        sys.tok.Tokenize(bxy),
				TimeDiff: sp.Points[i+1].T - sp.Points[i].T,
			})
		}
	}
	return out
}

// sparseTests returns the sparsified end-to-end imputation inputs shared by
// the BenchmarkImpute pair.
func sparseTests(tests []geo.Trajectory, sparse float64) []geo.Trajectory {
	out := make([]geo.Trajectory, len(tests))
	for i, tr := range tests {
		out[i] = tr.Sparsify(sparse)
	}
	return out
}

// BenchmarkImpute measures the full serving path — ImputeContext with the
// observability layer live, every stage feeding its histogram.  Compared
// against BenchmarkImputeNoObs it is the registry's hot-path overhead; the
// acceptance bound is a delta within 5%.
func BenchmarkImpute(b *testing.B) {
	sys, tests := benchFixture(b)
	in := sparseTests(tests[:4], 800)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tr := range in {
			if _, _, err := sys.Impute(tr); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkImputeNoObs is BenchmarkImpute with Config.DisableObservability
// set: no spans, no timestamps, no histogram updates.
func BenchmarkImputeNoObs(b *testing.B) {
	sys, tests := benchFixture(b)
	sys.cfg.DisableObservability = true
	in := sparseTests(tests[:4], 800)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tr := range in {
			if _, _, err := sys.Impute(tr); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkImputeTraced is BenchmarkImpute under the always-on tracing plane:
// every request runs with a sampled root trace bound to the context alongside
// the registry sink (spans carry exemplars) and completes into a trace store,
// as the serving layer does.  Compared against BenchmarkImpute it is the cost
// of distributed tracing on top of plain observability; the combined delta
// against BenchmarkImputeNoObs must stay within the same 5% acceptance bound.
func BenchmarkImputeTraced(b *testing.B) {
	sys, tests := benchFixture(b)
	in := sparseTests(tests[:4], 800)
	traces := obs.NewTraceStore(512, 256, sys.Obs())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tr := range in {
			root := obs.NewRootTrace(true)
			ctx := obs.With(context.Background(), root, sys.Obs())
			start := time.Now()
			if _, _, err := sys.ImputeContext(ctx, tr); err != nil {
				b.Fatal(err)
			}
			traces.Add(obs.TraceRecord{
				TraceID:  root.TraceID,
				SpanID:   root.SpanID,
				Node:     "bench",
				Route:    "/v1/impute",
				Status:   200,
				Start:    root.Start(),
				Duration: time.Since(start),
				Spans:    root.Records(),
				Retained: obs.RetainHead,
			})
		}
	}
}

// BenchmarkPredictorBERT measures beam imputation driven by the trained
// transformer — half of the BERT-vs-n-gram ablation in DESIGN.md.
func BenchmarkPredictorBERT(b *testing.B) {
	sys, tests := benchFixture(b)
	reqs := gapRequests(sys, tests[:4], 800)
	cfg := impute.Config{
		Tokenizer: sys.tok, Checker: sys.checker,
		MaxGapMeters: sys.cfg.MaxGapM, MaxCalls: 200, TopK: 40, Beam: 4, Alpha: 1,
	}
	p := bundlePredictor{b: sys.global}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, req := range reqs {
			if _, err := impute.Beam(p, cfg, req); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkPredictorNGram measures the same gaps driven by the count-based
// bidirectional n-gram model.
func BenchmarkPredictorNGram(b *testing.B) {
	sys, tests := benchFixture(b)
	m := ngram.New()
	var seqs [][]grid.Cell
	sys.st.All(func(tr store.Traj) bool {
		seqs = append(seqs, sequenceOf(tr))
		return true
	})
	m.Train(seqs)
	reqs := gapRequests(sys, tests[:4], 800)
	cfg := impute.Config{
		Tokenizer: sys.tok, Checker: sys.checker,
		MaxGapMeters: sys.cfg.MaxGapM, MaxCalls: 200, TopK: 40, Beam: 4, Alpha: 1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, req := range reqs {
			if _, err := impute.Beam(m, cfg, req); err != nil {
				b.Fatal(err)
			}
		}
	}
}

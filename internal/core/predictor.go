package core

import (
	"fmt"

	"kamel/internal/bert"
	"kamel/internal/grid"
	"kamel/internal/impute"
	"kamel/internal/vocab"
)

// bundlePredictor adapts a trained modelBundle to the impute.BatchPredictor
// interface: the "Call BERT" arrow of Figure 1.  A gap query becomes a
// masked-token prediction: [CLS] …prefix… S [MASK] D …suffix… [SEP], with
// the window recentered around the mask when the segment outgrows the
// model's sequence length.  Batches of gap queries flow through the model's
// batched engine so a beam frontier costs one stacked forward pass.
type bundlePredictor struct {
	b *modelBundle
}

// maskQuery renders one gap query as the model-level masked prediction.
// Extra candidates are requested because specials and unknown cells are
// dropped during filtering.
func (p bundlePredictor) maskQuery(segment []grid.Cell, gapPos, topK int) (bert.MaskQuery, error) {
	if gapPos < 0 || gapPos+1 >= len(segment) {
		return bert.MaskQuery{}, fmt.Errorf("core: gap position %d out of range for segment of %d tokens", gapPos, len(segment))
	}
	maxBody := p.b.model.Cfg.MaxSeqLen - 2
	// Sequence body: segment tokens with MASK inserted after gapPos.
	body := make([]int, 0, len(segment)+1)
	maskIdx := -1
	for i, c := range segment {
		body = append(body, p.b.vocab.ID(c))
		if i == gapPos {
			maskIdx = len(body)
			body = append(body, vocab.MASK)
		}
	}
	// Window the body around the mask when too long.
	if len(body) > maxBody {
		start := maskIdx - maxBody/2
		if start < 0 {
			start = 0
		}
		if start+maxBody > len(body) {
			start = len(body) - maxBody
		}
		body = body[start : start+maxBody]
		maskIdx -= start
	}
	ids := make([]int, 0, len(body)+2)
	ids = append(ids, vocab.CLS)
	ids = append(ids, body...)
	ids = append(ids, vocab.SEP)
	maskIdx++ // account for CLS
	return bert.MaskQuery{Tokens: ids, MaskPos: maskIdx, TopK: topK + vocab.NumSpecial + 8}, nil
}

// filterCands drops special tokens and unknown cells, keeping topK.
func (p bundlePredictor) filterCands(raw []bert.Candidate, topK int) []impute.Candidate {
	out := make([]impute.Candidate, 0, topK)
	for _, c := range raw {
		cell, ok := p.b.vocab.Cell(c.Token)
		if !ok {
			continue // special token: not a place
		}
		out = append(out, impute.Candidate{Cell: cell, Prob: c.Prob})
		if len(out) == topK {
			break
		}
	}
	return out
}

// Predict implements impute.Predictor.
func (p bundlePredictor) Predict(segment []grid.Cell, gapPos int, topK int) ([]impute.Candidate, error) {
	mq, err := p.maskQuery(segment, gapPos, topK)
	if err != nil {
		return nil, err
	}
	raw, err := p.b.model.PredictMasked(mq.Tokens, mq.MaskPos, mq.TopK)
	if err != nil {
		return nil, err
	}
	return p.filterCands(raw, topK), nil
}

// PredictBatch implements impute.BatchPredictor: every gap query becomes one
// masked query of a single PredictMaskedBatch engine pass.
func (p bundlePredictor) PredictBatch(queries []impute.Query) ([][]impute.Candidate, error) {
	mqs := make([]bert.MaskQuery, len(queries))
	for i, q := range queries {
		mq, err := p.maskQuery(q.Segment, q.GapPos, q.TopK)
		if err != nil {
			return nil, err
		}
		mqs[i] = mq
	}
	raws, err := p.b.model.PredictMaskedBatch(mqs)
	if err != nil {
		return nil, err
	}
	out := make([][]impute.Candidate, len(queries))
	for i, raw := range raws {
		out[i] = p.filterCands(raw, queries[i].TopK)
	}
	return out, nil
}

package core

import (
	"context"
	"fmt"

	"kamel/internal/batcher"
	"kamel/internal/bert"
	"kamel/internal/grid"
	"kamel/internal/impute"
	"kamel/internal/vocab"
)

// bundlePredictor adapts a trained modelBundle to the impute predictor
// interfaces: the "Call BERT" arrow of Figure 1.  A gap query becomes a
// masked-token prediction: [CLS] …prefix… S [MASK] D …suffix… [SEP], with
// the window recentered around the mask when the segment outgrows the
// model's sequence length.  Batches of gap queries flow through the model's
// batched engine so a beam frontier costs one stacked forward pass; when an
// admission batcher is attached (adm non-nil), frontiers are submitted
// asynchronously instead, so concurrent requests hitting the same model
// coalesce into shared engine passes.  The caller's model pin outlives the
// future it waits on, so the engine never runs an unpinned model.
type bundlePredictor struct {
	b   *modelBundle
	adm *batcher.Batcher
}

// maskQuery renders one gap query as the model-level masked prediction.
// Extra candidates are requested because specials and unknown cells are
// dropped during filtering.
func (p bundlePredictor) maskQuery(segment []grid.Cell, gapPos, topK int) (bert.MaskQuery, error) {
	if gapPos < 0 || gapPos+1 >= len(segment) {
		return bert.MaskQuery{}, fmt.Errorf("core: gap position %d out of range for segment of %d tokens", gapPos, len(segment))
	}
	maxBody := p.b.model.Cfg.MaxSeqLen - 2
	// Sequence body: segment tokens with MASK inserted after gapPos.
	body := make([]int, 0, len(segment)+1)
	maskIdx := -1
	for i, c := range segment {
		body = append(body, p.b.vocab.ID(c))
		if i == gapPos {
			maskIdx = len(body)
			body = append(body, vocab.MASK)
		}
	}
	// Window the body around the mask when too long.
	if len(body) > maxBody {
		start := maskIdx - maxBody/2
		if start < 0 {
			start = 0
		}
		if start+maxBody > len(body) {
			start = len(body) - maxBody
		}
		body = body[start : start+maxBody]
		maskIdx -= start
	}
	ids := make([]int, 0, len(body)+2)
	ids = append(ids, vocab.CLS)
	ids = append(ids, body...)
	ids = append(ids, vocab.SEP)
	maskIdx++ // account for CLS
	return bert.MaskQuery{Tokens: ids, MaskPos: maskIdx, TopK: topK + vocab.NumSpecial + 8}, nil
}

// filterCands drops special tokens and unknown cells, keeping topK.
func (p bundlePredictor) filterCands(raw []bert.Candidate, topK int) []impute.Candidate {
	out := make([]impute.Candidate, 0, topK)
	for _, c := range raw {
		cell, ok := p.b.vocab.Cell(c.Token)
		if !ok {
			continue // special token: not a place
		}
		out = append(out, impute.Candidate{Cell: cell, Prob: c.Prob})
		if len(out) == topK {
			break
		}
	}
	return out
}

// Predict implements impute.Predictor.
func (p bundlePredictor) Predict(segment []grid.Cell, gapPos int, topK int) ([]impute.Candidate, error) {
	mq, err := p.maskQuery(segment, gapPos, topK)
	if err != nil {
		return nil, err
	}
	raw, err := p.b.model.PredictMasked(mq.Tokens, mq.MaskPos, mq.TopK)
	if err != nil {
		return nil, err
	}
	return p.filterCands(raw, topK), nil
}

// maskQueries renders every gap query as a model-level masked query.
func (p bundlePredictor) maskQueries(queries []impute.Query) ([]bert.MaskQuery, error) {
	mqs := make([]bert.MaskQuery, len(queries))
	for i, q := range queries {
		mq, err := p.maskQuery(q.Segment, q.GapPos, q.TopK)
		if err != nil {
			return nil, err
		}
		mqs[i] = mq
	}
	return mqs, nil
}

// candsOf converts one batch of raw engine candidates back to grid cells.
func (p bundlePredictor) candsOf(queries []impute.Query, raws [][]bert.Candidate) [][]impute.Candidate {
	out := make([][]impute.Candidate, len(queries))
	for i, raw := range raws {
		out[i] = p.filterCands(raw, queries[i].TopK)
	}
	return out
}

// PredictBatch implements impute.BatchPredictor: every gap query becomes one
// masked query of a single PredictMaskedBatch engine pass.
func (p bundlePredictor) PredictBatch(queries []impute.Query) ([][]impute.Candidate, error) {
	mqs, err := p.maskQueries(queries)
	if err != nil {
		return nil, err
	}
	raws, err := p.b.model.PredictMaskedBatch(mqs)
	if err != nil {
		return nil, err
	}
	return p.candsOf(queries, raws), nil
}

// Submit implements impute.AsyncPredictor.  With an admission batcher
// attached the queries enqueue on the model's dispatcher — keyed by the
// bundle's engine, so every concurrent request for this model lands in the
// same queue — at the priority carried on ctx.  Without one, the batch is
// computed inline (the degenerate future), preserving the pre-batcher
// behaviour for ablations.
func (p bundlePredictor) Submit(ctx context.Context, queries []impute.Query) (impute.Future, error) {
	if p.adm == nil {
		out, err := p.PredictBatch(queries)
		return syncPredFuture{out: out, err: err}, nil
	}
	mqs, err := p.maskQueries(queries)
	if err != nil {
		return nil, err
	}
	fut, err := p.adm.Submit(ctx, p.b.model, mqs, PriorityOf(ctx))
	if err != nil {
		return nil, err
	}
	return &admFuture{p: p, queries: queries, fut: fut}, nil
}

// syncPredFuture is an already-computed submission result.
type syncPredFuture struct {
	out [][]impute.Candidate
	err error
}

func (f syncPredFuture) Wait(context.Context) ([][]impute.Candidate, error) { return f.out, f.err }

// admFuture resolves a batcher future back into grid-cell candidates.
type admFuture struct {
	p       bundlePredictor
	queries []impute.Query
	fut     *batcher.Future
}

func (f *admFuture) Wait(ctx context.Context) ([][]impute.Candidate, error) {
	raws, err := f.fut.Wait(ctx)
	if err != nil {
		return nil, err
	}
	return f.p.candsOf(f.queries, raws), nil
}

package core

import (
	"fmt"

	"kamel/internal/grid"
	"kamel/internal/impute"
	"kamel/internal/vocab"
)

// bundlePredictor adapts a trained modelBundle to the impute.Predictor
// interface: the "Call BERT" arrow of Figure 1.  A gap query becomes a
// masked-token prediction: [CLS] …prefix… S [MASK] D …suffix… [SEP], with
// the window recentered around the mask when the segment outgrows the
// model's sequence length.
type bundlePredictor struct {
	b *modelBundle
}

// Predict implements impute.Predictor.
func (p bundlePredictor) Predict(segment []grid.Cell, gapPos int, topK int) ([]impute.Candidate, error) {
	if gapPos < 0 || gapPos+1 >= len(segment) {
		return nil, fmt.Errorf("core: gap position %d out of range for segment of %d tokens", gapPos, len(segment))
	}
	maxBody := p.b.model.Cfg.MaxSeqLen - 2
	// Sequence body: segment tokens with MASK inserted after gapPos.
	body := make([]int, 0, len(segment)+1)
	maskIdx := -1
	for i, c := range segment {
		body = append(body, p.b.vocab.ID(c))
		if i == gapPos {
			maskIdx = len(body)
			body = append(body, vocab.MASK)
		}
	}
	// Window the body around the mask when too long.
	if len(body) > maxBody {
		start := maskIdx - maxBody/2
		if start < 0 {
			start = 0
		}
		if start+maxBody > len(body) {
			start = len(body) - maxBody
		}
		body = body[start : start+maxBody]
		maskIdx -= start
	}
	ids := make([]int, 0, len(body)+2)
	ids = append(ids, vocab.CLS)
	ids = append(ids, body...)
	ids = append(ids, vocab.SEP)
	maskIdx++ // account for CLS

	// Ask for extra candidates: specials and unknown cells are dropped.
	raw, err := p.b.model.PredictMasked(ids, maskIdx, topK+vocab.NumSpecial+8)
	if err != nil {
		return nil, err
	}
	out := make([]impute.Candidate, 0, topK)
	for _, c := range raw {
		cell, ok := p.b.vocab.Cell(c.Token)
		if !ok {
			continue // special token: not a place
		}
		out = append(out, impute.Candidate{Cell: cell, Prob: c.Prob})
		if len(out) == topK {
			break
		}
	}
	return out, nil
}

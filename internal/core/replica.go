package core

import (
	"bytes"
	"fmt"

	"kamel/internal/fsx"
	"kamel/internal/pyramid"
)

// Replication support: the three primitives the cluster layer's anti-entropy
// sweep needs from a node — enumerate what models it has (with the per-slot
// versions that are comparable across replicas), ship a model's encoded
// payload, and adopt newer models pulled from a peer.  The serving layer
// adapts these to the cluster.ReplicaStore interface; core stays free of any
// cluster dependency.

// ReplicaModel is one model pulled from a replica peer, ready to install.
type ReplicaModel struct {
	Key     pyramid.CellKey
	Slot    string
	Meta    pyramid.ModelMeta // the peer's metadata, version included, verbatim
	Payload []byte            // encoded model bundle (vocabulary + BERT weights)
}

// ServingIndex returns the currently published model snapshot, or nil before
// any partitioned training or load.
func (s *System) ServingIndex() *pyramid.Index {
	if ss := s.serve.Load(); ss != nil {
		return ss.index
	}
	return nil
}

// ModelPayload reads the raw encoded payload of one committed model file,
// integrity-verified.  Only files referenced by the serving snapshot are
// readable — the reference check is what makes the name safe to take from
// the network (a peer can only name files the manifest already names, never
// an arbitrary path).
func (s *System) ModelPayload(name string) ([]byte, error) {
	ix := s.ServingIndex()
	if ix == nil {
		return nil, fmt.Errorf("core: no model snapshot to serve payloads from")
	}
	referenced := false
	for _, ref := range ix.Models() {
		if ref.File == name {
			referenced = true
			break
		}
	}
	if !referenced {
		return nil, fmt.Errorf("core: model file %q not referenced by the current snapshot", name)
	}
	return pyramid.ReadModelPayloadFS(fsx.OS(), s.modelsDir(), name)
}

// InstallReplicaModels decodes and adopts models pulled from replica peers,
// commits them under this repository's own generation sequence, and
// publishes the refreshed snapshot — the write half of anti-entropy.  It
// holds maintMu throughout, so installs serialize with local rebuilds and
// the single-writer Repo discipline holds.  Models are adopted with the
// peer's version verbatim; an undecodable payload stops the batch (models
// adopted before it still commit) and is reported.  Returns how many models
// were installed and committed.
func (s *System) InstallReplicaModels(models []ReplicaModel) (int, error) {
	if len(models) == 0 {
		return 0, nil
	}
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	s.mu.Lock()
	repo := s.repo
	closed := s.st == nil
	s.mu.Unlock()
	if closed {
		return 0, fmt.Errorf("core: system is closed")
	}
	if repo == nil {
		return 0, fmt.Errorf("core: no repository to install replica models into (train or load first)")
	}

	installed := 0
	var firstErr error
	for _, m := range models {
		h, err := bundleCodec{}.Decode(bytes.NewReader(m.Payload))
		if err != nil {
			firstErr = fmt.Errorf("core: decoding replica model %s/%s: %w", m.Key, m.Slot, err)
			break
		}
		if err := repo.Adopt(m.Key, m.Slot, h, m.Meta); err != nil {
			firstErr = err
			break
		}
		installed++
	}
	if installed == 0 {
		return 0, firstErr
	}
	if _, err := repo.CommitFS(fsx.OS(), s.modelsDir(), bundleCodec{}); err != nil {
		return 0, fmt.Errorf("core: committing replica models: %w", err)
	}
	repo.DropHandles()
	ix := repo.Index()
	s.mu.Lock()
	s.curIndex = ix
	s.publishLocked()
	s.mu.Unlock()
	return installed, firstErr
}

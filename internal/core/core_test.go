package core

import (
	"context"
	"math"
	"testing"

	"kamel/internal/baseline"
	"kamel/internal/geo"
	"kamel/internal/metrics"
	"kamel/internal/roadnet"
	"kamel/internal/trajgen"
)

// testFixture builds a small city, simulated traffic, and a KAMEL config
// scaled for unit tests (tiny model, short training).
type testFixture struct {
	net   *roadnet.Network
	proj  *geo.Projection
	train []geo.Trajectory
	test  []geo.Trajectory
	cfg   Config
}

func newFixture(t *testing.T, mutate func(*Config)) *testFixture {
	t.Helper()
	cityCfg := roadnet.DefaultCityConfig()
	cityCfg.Width, cityCfg.Height = 1500, 1500
	cityCfg.BlockSpacing = 250
	net := roadnet.GenerateCity(cityCfg)
	proj := geo.NewProjection(41.15, -8.61)
	gen := trajgen.DefaultConfig(60)
	gen.GPSNoiseMeters = 3
	trajs, err := trajgen.Generate(net, proj, gen)
	if err != nil {
		t.Fatal(err)
	}
	train, test := trajgen.SplitTrainTest(trajs, 0.8, 1)

	cfg := DefaultConfig(t.TempDir())
	cfg.DisablePartitioning = true // cheap global model for most tests
	cfg.Hidden, cfg.FFN = 32, 128
	cfg.Heads = 4
	cfg.Train.Steps = 220
	cfg.Train.Batch = 12
	cfg.Beam = 6
	cfg.TopK = 40
	cfg.MaxCalls = 150
	if mutate != nil {
		mutate(&cfg)
	}
	return &testFixture{net: net, proj: proj, train: train, test: test, cfg: cfg}
}

func trainedSystem(t *testing.T, f *testFixture) *System {
	t.Helper()
	sys, err := NewWithProjection(f.cfg, f.proj)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	if err := sys.Train(f.train); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestConfigNormalize(t *testing.T) {
	c := Config{Workdir: "x"}
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	if c.CellEdgeM != 75 || c.Strategy != StrategyBeam || c.MaxGapM != 100 {
		t.Errorf("defaults not applied: %+v", c)
	}
	bad := Config{}
	if bad.Normalize() == nil {
		t.Error("missing Workdir must be rejected")
	}
	bad = Config{Workdir: "x", GridKind: "triangle"}
	if bad.Normalize() == nil {
		t.Error("unknown grid kind must be rejected")
	}
	bad = Config{Workdir: "x", Hidden: 10, Heads: 3}
	if bad.Normalize() == nil {
		t.Error("indivisible heads must be rejected")
	}
	bad = Config{Workdir: "x", Strategy: "magic"}
	if bad.Normalize() == nil {
		t.Error("unknown strategy must be rejected")
	}
}

func TestTrainThenImputeBeatsNothing(t *testing.T) {
	f := newFixture(t, nil)
	sys := trainedSystem(t, f)

	st := sys.SystemStats()
	if st.Trajectories != len(f.train) {
		t.Errorf("stored %d trajectories, want %d", st.Trajectories, len(f.train))
	}
	if st.SingleModels == 0 {
		t.Fatal("no model trained")
	}
	if st.MaxSpeedMPS < 5 || st.MaxSpeedMPS > 40 {
		t.Errorf("implausible speed estimate %f", st.MaxSpeedMPS)
	}

	truth := f.test[0]
	sparse := truth.Sparsify(700)
	dense, stats, err := sys.Impute(sparse)
	if err != nil {
		t.Fatal(err)
	}
	if len(dense.Points) <= len(sparse.Points) {
		t.Error("imputation must add points")
	}
	if stats.Segments == 0 {
		t.Error("no segments counted")
	}
	// Endpoints preserved, timestamps monotone.
	if dense.Points[0] != sparse.Points[0] {
		t.Error("first point must be preserved")
	}
	for i := 1; i < len(dense.Points); i++ {
		if dense.Points[i].T < dense.Points[i-1].T-1e-9 {
			t.Fatal("timestamps must be non-decreasing")
		}
	}
}

func TestImputeAccuracyAboveLinear(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	f := newFixture(t, func(c *Config) { c.Train.Steps = 350 })
	sys := trainedSystem(t, f)
	lin := &baseline.Linear{Proj: f.proj, StepMeters: 100}

	var kamel, linear metrics.Accumulator
	n := 6
	if n > len(f.test) {
		n = len(f.test)
	}
	for _, truth := range f.test[:n] {
		sparse := truth.Sparsify(700)
		dk, _, err := sys.Impute(sparse)
		if err != nil {
			t.Fatal(err)
		}
		kamel.Add(metrics.Evaluate(f.proj, truth, dk, 100, 50))
		dl, _, _ := lin.Impute(sparse)
		linear.Add(metrics.Evaluate(f.proj, truth, dl, 100, 50))
	}
	t.Logf("KAMEL recall=%.3f linear recall=%.3f", kamel.Recall(), linear.Recall())
	if kamel.Recall() < linear.Recall() {
		t.Errorf("KAMEL recall %.3f below linear %.3f", kamel.Recall(), linear.Recall())
	}
}

func TestImputeRequiresTraining(t *testing.T) {
	cfg := DefaultConfig(t.TempDir())
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.Impute(geo.Trajectory{}); err == nil {
		t.Error("imputing before training must error")
	}
	if err := sys.Train(nil); err == nil {
		t.Error("empty training batch must error")
	}
}

func TestShortTrajectoryPassThrough(t *testing.T) {
	f := newFixture(t, nil)
	sys := trainedSystem(t, f)
	one := geo.Trajectory{ID: "x", Points: f.test[0].Points[:1]}
	out, stats, err := sys.Impute(one)
	if err != nil || len(out.Points) != 1 || stats.Segments != 0 {
		t.Error("single-point trajectory must pass through unchanged")
	}
}

func TestPyramidModeBuildsModels(t *testing.T) {
	if testing.Short() {
		t.Skip("trains several models")
	}
	f := newFixture(t, func(c *Config) {
		c.DisablePartitioning = false
		c.PyramidH = 1
		c.PyramidL = 2 // maintain root and level 1
		c.ThresholdK = 200
		c.Train.Steps = 120
	})
	sys := trainedSystem(t, f)
	st := sys.SystemStats()
	if st.SingleModels == 0 {
		t.Fatal("pyramid built no models")
	}
	if sys.Repo() == nil {
		t.Fatal("repository missing")
	}
	// Imputation must find models via the repository.
	sparse := f.test[0].Sparsify(700)
	_, stats, err := sys.Impute(sparse)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Segments == 0 {
		t.Error("no segments processed")
	}
}

func TestSaveLoadModels(t *testing.T) {
	if testing.Short() {
		t.Skip("trains several models")
	}
	f := newFixture(t, func(c *Config) {
		c.DisablePartitioning = false
		c.PyramidH = 1
		c.PyramidL = 2
		c.ThresholdK = 200
		c.Train.Steps = 100
	})
	sys := trainedSystem(t, f)
	if err := sys.SaveModels(); err != nil {
		t.Fatal(err)
	}
	sparse := f.test[0].Sparsify(700)
	before, _, err := sys.Impute(sparse)
	if err != nil {
		t.Fatal(err)
	}

	// A fresh system over the same workdir must impute identically after
	// loading, without retraining.
	sys2, err := NewWithProjection(f.cfg, f.proj)
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	if err := sys2.LoadModels(); err != nil {
		t.Fatal(err)
	}
	after, _, err := sys2.Impute(sparse)
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Points) != len(after.Points) {
		t.Fatalf("imputation changed after reload: %d vs %d points", len(before.Points), len(after.Points))
	}
	for i := range before.Points {
		if math.Abs(before.Points[i].Lat-after.Points[i].Lat) > 1e-12 {
			t.Fatal("points differ after reload")
		}
	}
}

func TestImputeStream(t *testing.T) {
	f := newFixture(t, nil)
	sys := trainedSystem(t, f)

	in := make(chan geo.Trajectory)
	go func() {
		for _, truth := range f.test[:4] {
			in <- truth.Sparsify(700)
		}
		close(in)
	}()
	out := sys.ImputeStream(context.Background(), in, 2)
	got := map[string]bool{}
	for res := range out {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		got[res.Trajectory.ID] = true
	}
	if len(got) != 4 {
		t.Errorf("stream returned %d results, want 4", len(got))
	}
}

func TestImputeStreamCancellation(t *testing.T) {
	f := newFixture(t, nil)
	sys := trainedSystem(t, f)
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan geo.Trajectory) // never closed, never fed
	out := sys.ImputeStream(ctx, in, 1)
	cancel()
	if _, ok := <-out; ok {
		// Drain until closed; cancellation must close the stream.
		for range out {
		}
	}
}

func TestAblationSwitches(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	// No Multi: at most one imputed point per gap.
	f := newFixture(t, func(c *Config) { c.DisableMultipoint = true })
	sys := trainedSystem(t, f)
	sparse := f.test[0].Sparsify(700)
	dense, _, err := sys.Impute(sparse)
	if err != nil {
		t.Fatal(err)
	}
	// With one point per gap, output size is bounded by 2×sparse.
	if len(dense.Points) > 2*len(sparse.Points) {
		t.Errorf("No-Multi imputed too many points: %d for %d sparse", len(dense.Points), len(sparse.Points))
	}

	// No Const: system still runs end to end.
	f2 := newFixture(t, func(c *Config) { c.DisableConstraints = true })
	sys2 := trainedSystem(t, f2)
	if _, _, err := sys2.Impute(sparse); err != nil {
		t.Fatal(err)
	}
}

func TestSquareGridMode(t *testing.T) {
	f := newFixture(t, func(c *Config) { c.GridKind = "square" })
	sys := trainedSystem(t, f)
	if sys.Grid().Kind() != "square" {
		t.Fatal("square grid not selected")
	}
	if _, _, err := sys.Impute(f.test[0].Sparsify(700)); err != nil {
		t.Fatal(err)
	}
}

func TestSequenceOfDedup(t *testing.T) {
	f := newFixture(t, nil)
	sys, err := NewWithProjection(f.cfg, f.proj)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	rec := sys.tokenize(f.train[0])
	seq := sequenceOf(rec)
	if len(seq) == 0 {
		t.Fatal("empty sequence")
	}
	for i := 1; i < len(seq); i++ {
		if seq[i] == seq[i-1] {
			t.Fatal("consecutive duplicates must be collapsed")
		}
	}
	if len(seq) >= len(rec.Tokens) {
		t.Error("dedup should shrink dense trajectories")
	}
}

func TestNameImplementsImputer(t *testing.T) {
	var _ baseline.Imputer = (*System)(nil)
	f := newFixture(t, nil)
	sys, _ := NewWithProjection(f.cfg, f.proj)
	defer sys.Close()
	if sys.Name() != "KAMEL" {
		t.Error("wrong name")
	}
}

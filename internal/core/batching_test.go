package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kamel/internal/batcher"
	"kamel/internal/geo"
	"kamel/internal/grid"
	"kamel/internal/impute"
)

// trajEqual compares two imputed trajectories point-wise.
func trajEqual(a, b geo.Trajectory) bool {
	if len(a.Points) != len(b.Points) {
		return false
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			return false
		}
	}
	return true
}

// TestAdmissionBatchingParity: the same trajectories impute to identical
// outputs with admission batching on and off — coalescing is a throughput
// device, never a semantic one.
func TestAdmissionBatchingParity(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	f := newFixture(t, nil)
	sys := trainedSystem(t, f)
	if sys.adm == nil {
		t.Fatal("admission batching should be on by default")
	}
	// A read-only view with the batcher detached: same models, same search,
	// inline predictions.
	plain := sys.WithAblation(false, false)
	plain.adm = nil

	for i, tr := range f.test[:4] {
		sp := tr.Sparsify(800)
		got, _, err := sys.Impute(sp)
		if err != nil {
			t.Fatalf("traj %d (batched): %v", i, err)
		}
		want, _, err := plain.Impute(sp)
		if err != nil {
			t.Fatalf("traj %d (inline): %v", i, err)
		}
		if !trajEqual(got, want) {
			t.Fatalf("traj %d: batched imputation diverges from inline (%d vs %d points)",
				i, len(got.Points), len(want.Points))
		}
	}
}

// TestConcurrentImputeThroughBatcher is the -race stress gate: many streams
// impute concurrently through the admission batcher, and every stream's
// output must equal the single-threaded reference — whatever batches their
// queries coalesced into.  A rotating subset of requests is cancelled
// mid-flight to exercise discard-from-queue under load.
func TestConcurrentImputeThroughBatcher(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	f := newFixture(t, func(c *Config) {
		// A short window forces real windowed coalescing under test
		// concurrency without slowing the single-stream reference runs.
		c.BatchMaxWait = 500 * time.Microsecond
	})
	sys := trainedSystem(t, f)

	inputs := make([]geo.Trajectory, 4)
	refs := make([]geo.Trajectory, len(inputs))
	for i := range inputs {
		inputs[i] = f.test[i].Sparsify(800)
		ref, _, err := sys.Impute(inputs[i])
		if err != nil {
			t.Fatalf("reference %d: %v", i, err)
		}
		refs[i] = ref
	}

	const streams = 8
	const rounds = 6
	var wg sync.WaitGroup
	errCh := make(chan error, streams)
	for g := 0; g < streams; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (g + r) % len(inputs)
				if (g+r)%5 == 4 {
					// Cancel mid-flight: the only acceptable error is the
					// context's own.
					ctx, cancel := context.WithTimeout(context.Background(), time.Duration(1+g)*time.Millisecond)
					_, _, err := sys.ImputeContext(ctx, inputs[i])
					cancel()
					if err != nil && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
						errCh <- err
						return
					}
					continue
				}
				out, _, err := sys.Impute(inputs[i])
				if err != nil {
					errCh <- err
					return
				}
				if !trajEqual(out, refs[i]) {
					errCh <- errors.New("concurrent imputation diverged from single-threaded reference")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	st := sys.adm.Stats()
	if st.Items == 0 || st.Batches == 0 {
		t.Fatalf("no work flowed through the batcher: %+v", st)
	}
	// Cancelled stragglers may still be queued for a moment; the dispatcher
	// must discard them and exit shortly after the load stops.
	deadline := time.Now().Add(5 * time.Second)
	for st.QueueDepth != 0 || st.Dispatchers != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("queue not drained after load: %+v", st)
		}
		time.Sleep(time.Millisecond)
		st = sys.adm.Stats()
	}
}

// TestOverloadSheds: a frontier larger than the per-model queue bound is
// shed with ErrOverloaded rather than served degraded or deadlocked.
func TestOverloadSheds(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	f := newFixture(t, func(c *Config) { c.BatchMaxQueue = 1 })
	sys := trainedSystem(t, f)
	sp := f.test[0].Sparsify(800)
	_, _, err := sys.Impute(sp)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
}

// TestCloseDrainsBatcher shuts the system down while streams are imputing:
// every in-flight request returns promptly (success, ErrClosed through the
// predictor, or ErrNotTrained after unpublish) and nothing deadlocks.
func TestCloseDrainsBatcher(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	f := newFixture(t, func(c *Config) {
		c.BatchMaxWait = 2 * time.Millisecond
	})
	sys := trainedSystem(t, f)
	sp := f.test[0].Sparsify(800)

	const streams = 6
	var wg sync.WaitGroup
	errCh := make(chan error, streams)
	start := make(chan struct{})
	for g := 0; g < streams; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for {
				_, _, err := sys.Impute(sp)
				if err == nil {
					continue
				}
				if errors.Is(err, batcher.ErrClosed) || errors.Is(err, ErrNotTrained) {
					return // clean shutdown outcome
				}
				errCh <- err
				return
			}
		}()
	}
	close(start)
	time.Sleep(20 * time.Millisecond) // let streams get in flight
	done := make(chan struct{})
	go func() {
		sys.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close hung with streams in flight")
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if st := sys.adm.Stats(); st.QueueDepth != 0 || st.Dispatchers != 0 {
		t.Fatalf("batcher not drained by Close: %+v", st)
	}
}

// seqOnlyPredictor exposes only the single-query method of bundlePredictor,
// so the impute layer degrades to one engine call per query: the fully
// sequential pre-batching baseline the concurrency benchmarks compare
// against.
type seqOnlyPredictor struct {
	p bundlePredictor
}

func (s seqOnlyPredictor) Predict(segment []grid.Cell, gapPos, topK int) ([]impute.Candidate, error) {
	return s.p.Predict(segment, gapPos, topK)
}

// The concurrency benchmark trio measures per-gap latency under >=8
// concurrent imputation streams in three regimes:
//
//   - Sequential: one engine call per query (no frontier stacking, no
//     admission batching) — the baseline the >=2x acceptance criterion is
//     measured against.
//   - Frontier: each request stacks its own beam frontier per engine call,
//     but requests never share passes.
//   - Admission: frontiers from all streams coalesce through the admission
//     batcher into shared passes; the run also reports the realized
//     coalescing stats (avg_batch, queue_wait_p99_ms) for BENCH_impute.json.
func BenchmarkImputeConcurrentSequential(b *testing.B) {
	benchImputeConcurrent(b, "sequential")
}

func BenchmarkImputeConcurrentFrontier(b *testing.B) {
	benchImputeConcurrent(b, "frontier")
}

func BenchmarkImputeConcurrentAdmission(b *testing.B) {
	benchImputeConcurrent(b, "admission")
}

func benchImputeConcurrent(b *testing.B, mode string) {
	sys, tests := benchFixture(b)
	reqs := gapRequests(sys, tests[:4], 800)
	if len(reqs) == 0 {
		b.Fatal("no gap requests")
	}
	cfg := impute.Config{
		Tokenizer: sys.tok, Checker: sys.checker,
		MaxGapMeters: sys.cfg.MaxGapM, MaxCalls: 200, TopK: 40, Beam: 4, Alpha: 1,
	}
	// RunParallel spawns GOMAXPROCS x parallelism goroutines; pick the
	// parallelism that yields at least 8 concurrent streams on any machine.
	streams := 8
	par := (streams + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0)
	b.SetParallelism(par)

	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var p impute.Predictor
		switch mode {
		case "sequential":
			p = seqOnlyPredictor{p: bundlePredictor{b: sys.global}}
		case "frontier":
			p = bundlePredictor{b: sys.global}
		case "admission":
			sys.adm.StreamEnter()
			defer sys.adm.StreamExit()
			p = bundlePredictor{b: sys.global, adm: sys.adm}
		default:
			panic("unknown mode " + mode)
		}
		for pb.Next() {
			req := reqs[int(next.Add(1))%len(reqs)]
			if _, err := impute.Beam(p, cfg, req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	if mode == "admission" {
		st := sys.adm.Stats()
		b.ReportMetric(st.AvgBatch, "avg_batch")
		b.ReportMetric(st.QueueWaitP99MS, "queue_wait_p99_ms")
	}
}

// Package core wires KAMEL's five modules into the system of the paper's
// Figure 1: Tokenization (internal/grid + internal/vocab), Partitioning
// (internal/store + internal/pyramid + internal/bert), Spatial Constraints
// (internal/constraints), Multipoint Imputation (internal/impute) and
// Detokenization (internal/detok).  It exposes offline bulk training and
// imputation, an online streaming mode, the cell-size auto-tuner of §3.2,
// and the ablation switches the paper evaluates in §8.7.
package core

import (
	"fmt"
	"runtime"
	"time"

	"kamel/internal/bert"
	"kamel/internal/geo"
)

// Strategy selects the multipoint-imputation algorithm (paper §6).
type Strategy string

const (
	// StrategyBeam is the bidirectional beam search (Algorithm 2), the
	// default: §6.2 shows it dominating the greedy approach.
	StrategyBeam Strategy = "beam"
	// StrategyIterative is greedy iterative BERT calling (Algorithm 1).
	StrategyIterative Strategy = "iterative"
)

// Tokenizer kinds accepted by Config.Tokenizer.
const (
	// TokenizerFixed is the uniform grid of the paper (§3), the default.
	TokenizerFixed = "fixed"
	// TokenizerAdaptive is the density-adaptive multi-resolution tokenizer.
	TokenizerAdaptive = "adaptive"
)

// Config collects every tunable of the system.  Zero values are filled with
// the paper's defaults by Normalize.
type Config struct {
	// Workdir is where the trajectory store and model repository live.
	Workdir string

	// Tokenization (§3).
	GridKind    string  // "hex" (default) or "square" (§8.5 comparison)
	CellEdgeM   float64 // hexagon edge length (default 75, the paper's tuned value)
	SquareEdgeM float64 // square edge when GridKind=="square" (default: area-matched)
	// Tokenizer selects how points become tokens: "fixed" (default — the
	// uniform grid above) or "adaptive" (density-adaptive multi-resolution:
	// hot cells split into finer sub-cells, sparse cells merge into coarser
	// super-cells, raising the training-data factor of §3 at both ends).
	// Adaptive requires GridKind "hex".  The adaptive mapping is derived from
	// the first training batch, frozen, and persisted next to the model
	// manifest — tokens are identities shared by every persisted artifact.
	Tokenizer string
	// AdaptiveSplitMin/AdaptiveMergeMax/AdaptiveMaxSplit tune the adaptive
	// derivation (tokenizer.BuildOptions).  Zero = automatic thresholds; a
	// negative AdaptiveMergeMax disables merging.
	AdaptiveSplitMin int
	AdaptiveMergeMax int
	AdaptiveMaxSplit int

	// Partitioning (§4).
	Region     geo.Rect // deployment region; empty = derived from first training batch
	PyramidH   int      // pyramid height (paper default 10; repro default 3)
	PyramidL   int      // maintained levels (paper default 3)
	ThresholdK int      // model threshold base k (paper default 20000; repro default lower)

	// BERT architecture and training.
	Hidden, Layers, Heads, FFN, MaxSeqLen int
	Train                                 bert.TrainConfig

	// Multipoint imputation (§6) and constraints (§5).
	Strategy     Strategy
	MaxGapM      float64 // max_gap (default 100)
	Beam         int     // beam width B (default 10)
	TopK         int     // candidates per BERT call
	MaxCalls     int     // BERT call budget per gap
	Alpha        float64 // length-normalization strength (default 1)
	MaxSpeedMPS  float64 // 0 = inferred from training data (§5.1)
	ConeAngleDeg float64 // direction-constraint angle (default 45)
	CycleLen     int     // cycle-detection window x (default 6)

	// ShardID names this process's shard when the deployment is horizontally
	// sharded (internal/cluster): it labels SystemStats and log lines so a
	// fleet's telemetry is attributable per shard.  Empty for a single-node
	// deployment; purely an identity, it changes no serving behaviour.
	ShardID string

	// ModelCacheBytes bounds how many disk-resident models are held in
	// memory at once (paper §4: models live on disk and page in per
	// request).  Positive: an explicit byte budget.  Zero: automatic — a
	// quarter of available memory, clamped to [64 MiB, 4 GiB].  Negative:
	// unbounded (no eviction).
	ModelCacheBytes int64

	// RebuildWorkers bounds how many per-cell model trainings one pyramid
	// maintenance round runs concurrently (internal/pyramid.IngestParallel).
	// Cells' models are independent and each training is seeded
	// deterministically, so the resulting repository is identical at any
	// worker count — only the wall time changes.  0 = automatic (half the
	// CPUs, clamped to [1, 4]); 1 = serial (the pre-parallelism behaviour).
	RebuildWorkers int

	// Admission batching (internal/batcher): concurrent requests' BERT
	// predictions for the same model are coalesced into shared engine
	// passes.  Zero values take the batcher's defaults.
	BatchMaxSize   int           // queries per coalesced engine call (default 64)
	BatchMaxWait   time.Duration // coalescing window under concurrency (default 2ms; negative disables windowing)
	BatchMaxQueue  int           // queued queries per model before shedding with ErrOverloaded (default 1024; negative unbounded)
	BatchMaxStarve time.Duration // bulk-lane aging bound: wait beyond which dispatches reserve slots for bulk (default 100ms; negative disables)
	// DisableAdmissionBatching computes predictions inline per request (the
	// pre-batcher behaviour), for ablation and debugging.
	DisableAdmissionBatching bool

	// Ablation switches (§8.7, Fig 12-VI).
	DisablePartitioning bool // "No Part.": one global model
	DisableConstraints  bool // "No Const.": accept any BERT prediction
	DisableMultipoint   bool // "No Multi.": one BERT call per gap

	// DisableObservability skips the per-request span/stage instrumentation
	// of the imputation and training paths (the metrics registry still
	// exists, it just receives nothing from them).  Exists so the registry's
	// hot-path overhead can be benchmarked (BenchmarkImpute vs
	// BenchmarkImputeNoObs); production deployments leave it off.
	DisableObservability bool

	Seed uint64
}

// DefaultConfig returns the reproduction-scale defaults: the paper's
// tokenization/imputation parameters with a laptop-scale BERT.
func DefaultConfig(workdir string) Config {
	return Config{
		Workdir:      workdir,
		GridKind:     "hex",
		CellEdgeM:    75,
		Tokenizer:    TokenizerFixed,
		PyramidH:     3,
		PyramidL:     3,
		ThresholdK:   2000,
		Hidden:       64,
		Layers:       2,
		Heads:        4,
		FFN:          256,
		MaxSeqLen:    64,
		Train:        bert.DefaultTrainConfig(),
		Strategy:     StrategyBeam,
		MaxGapM:      100,
		Beam:         6,
		TopK:         60,
		MaxCalls:     400,
		Alpha:        1,
		ConeAngleDeg: 45,
		CycleLen:     6,
		Seed:         1,
	}
}

// Normalize fills zero fields with defaults and validates the result.
func (c *Config) Normalize() error {
	d := DefaultConfig(c.Workdir)
	if c.GridKind == "" {
		c.GridKind = d.GridKind
	}
	if c.GridKind != "hex" && c.GridKind != "square" {
		return fmt.Errorf("core: unknown grid kind %q", c.GridKind)
	}
	if c.Tokenizer == "" {
		c.Tokenizer = d.Tokenizer
	}
	if c.Tokenizer != TokenizerFixed && c.Tokenizer != TokenizerAdaptive {
		return fmt.Errorf("core: unknown tokenizer %q", c.Tokenizer)
	}
	if c.Tokenizer == TokenizerAdaptive && c.GridKind != "hex" {
		return fmt.Errorf("core: adaptive tokenizer requires GridKind \"hex\", got %q", c.GridKind)
	}
	if c.CellEdgeM <= 0 {
		c.CellEdgeM = d.CellEdgeM
	}
	if c.PyramidH <= 0 {
		c.PyramidH = d.PyramidH
	}
	if c.PyramidL <= 0 {
		c.PyramidL = d.PyramidL
	}
	if c.PyramidL > c.PyramidH+1 {
		return fmt.Errorf("core: PyramidL %d exceeds PyramidH+1", c.PyramidL)
	}
	if c.ThresholdK <= 0 {
		c.ThresholdK = d.ThresholdK
	}
	if c.Hidden <= 0 {
		c.Hidden = d.Hidden
	}
	if c.Layers <= 0 {
		c.Layers = d.Layers
	}
	if c.Heads <= 0 {
		c.Heads = d.Heads
	}
	if c.Hidden%c.Heads != 0 {
		return fmt.Errorf("core: Hidden %d not divisible by Heads %d", c.Hidden, c.Heads)
	}
	if c.FFN <= 0 {
		c.FFN = d.FFN
	}
	if c.MaxSeqLen <= 0 {
		c.MaxSeqLen = d.MaxSeqLen
	}
	if c.Train.Steps <= 0 {
		c.Train = d.Train
	}
	if c.Strategy == "" {
		c.Strategy = d.Strategy
	}
	if c.Strategy != StrategyBeam && c.Strategy != StrategyIterative {
		return fmt.Errorf("core: unknown strategy %q", c.Strategy)
	}
	if c.MaxGapM <= 0 {
		c.MaxGapM = d.MaxGapM
	}
	if c.Beam <= 0 {
		c.Beam = d.Beam
	}
	if c.TopK <= 0 {
		c.TopK = d.TopK
	}
	if c.MaxCalls <= 0 {
		c.MaxCalls = d.MaxCalls
	}
	if c.Alpha < 0 || c.Alpha > 1 {
		return fmt.Errorf("core: Alpha %f outside [0,1]", c.Alpha)
	}
	if c.ConeAngleDeg <= 0 {
		c.ConeAngleDeg = d.ConeAngleDeg
	}
	if c.CycleLen <= 0 {
		c.CycleLen = d.CycleLen
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.RebuildWorkers <= 0 {
		w := runtime.NumCPU() / 2
		if w < 1 {
			w = 1
		}
		if w > 4 {
			w = 4
		}
		c.RebuildWorkers = w
	}
	if c.Workdir == "" {
		return fmt.Errorf("core: Workdir is required")
	}
	return nil
}

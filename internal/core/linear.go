package core

import (
	"kamel/internal/baseline"
	"kamel/internal/geo"
)

// ImputeLinear fills every segment of tr with the straight-line baseline,
// bypassing the models entirely.  It is the bottom rung of the degradation
// ladder: the sharded serving layer calls it when the shard owning the
// trajectory's cells is unreachable, so the request is still answered — with
// every gap counted as both a failure (a linear fill, per the paper's
// definition) and a degraded segment (served below the model tier).
//
// It needs only a projection, so it works on any node that has trained or
// loaded models for *some* region — the point of the fallback is that the
// local node does not own this trajectory's region.  Before any projection
// exists (a completely untrained node) it returns ErrNotTrained, which the
// serving layer maps to 503: nothing anywhere can serve the request.
func (s *System) ImputeLinear(tr geo.Trajectory) (geo.Trajectory, baseline.Stats, error) {
	proj := s.Projection()
	if proj == nil {
		// Fall back to the published snapshot's projection: WithAblation
		// clones and snapshot-only readers may carry one there.
		if ss := s.serve.Load(); ss != nil {
			proj = ss.proj
		}
	}
	if proj == nil {
		return geo.Trajectory{}, baseline.Stats{}, ErrNotTrained
	}
	step := s.cfg.MaxGapM
	// Resample at the published tokenizer's step when one exists (the
	// adaptive step can be coarser than the base grid's); the base grid is
	// the race-free fallback before any publication.
	sm := s.g.StepMeters()
	if ss := s.serve.Load(); ss != nil && ss.tok != nil {
		sm = ss.tok.StepMeters()
	}
	if step < sm {
		step = sm
	}
	lin := &baseline.Linear{Proj: proj, StepMeters: step}
	dense, stats, err := lin.Impute(tr)
	if err != nil {
		return geo.Trajectory{}, stats, err
	}
	stats.Degraded = stats.Segments
	s.served.account(stats)
	return dense, stats, nil
}

package core

import (
	"context"
	"errors"
	"time"

	"kamel/internal/baseline"
	"kamel/internal/batcher"
	"kamel/internal/constraints"
	"kamel/internal/fsx"
	"kamel/internal/geo"
	"kamel/internal/grid"
	"kamel/internal/impute"
	"kamel/internal/modelcache"
	"kamel/internal/obs"
	"kamel/internal/pyramid"
)

// ErrNotTrained is returned by the imputation entry points before any model
// has been trained or loaded.  The HTTP layer maps it to its own error code.
var ErrNotTrained = errors.New("core: system has not been trained")

// ErrOverloaded is returned when the admission batcher sheds a request
// because a model's prediction queue is full.  The HTTP layer maps it to
// 429; retrying after backoff is the intended client behaviour.
var ErrOverloaded = batcher.ErrQueueFull

// systemImputeErr reports errors that abort the whole request rather than
// degrading one gap to a straight line: cancellation, load shedding, and
// shutdown.
func systemImputeErr(ctx context.Context, err error) bool {
	return ctx.Err() != nil || errors.Is(err, batcher.ErrQueueFull) || errors.Is(err, batcher.ErrClosed)
}

// testGapHook, when non-nil, is called once per imputed gap with the serve
// snapshot sequence that served it.  The concurrency tests install it to
// prove a single request never mixes snapshot generations; it must be set
// before any goroutine imputes and never changed afterwards.
var testGapHook func(ctx context.Context, snapshotSeq int64)

// Name implements baseline.Imputer, letting the evaluation harness treat
// KAMEL uniformly with its competitors.
func (s *System) Name() string { return "KAMEL" }

// Impute fills the gaps of one sparse trajectory (paper Figure 1, right
// input) and returns the dense trajectory.  It is ImputeContext without
// cancellation.
func (s *System) Impute(tr geo.Trajectory) (geo.Trajectory, baseline.Stats, error) {
	return s.ImputeContext(context.Background(), tr)
}

// ImputeContext fills the gaps of one sparse trajectory.  Each gap between
// consecutive input points is (1) routed to the best pyramid model for its
// extent, (2) imputed as a token sequence by the configured multipoint
// algorithm under the spatial constraints, and (3) detokenized to GPS
// points.  Gaps no model covers are imputed by a straight line and counted
// as failures, per §4.1.  The context is honored between BERT calls: a
// cancelled request abandons the search mid-gap and returns ctx.Err().
//
// The whole request runs against one atomically-loaded serving snapshot and
// takes no locks: concurrent training and maintenance publish new snapshots
// without ever pausing or tearing an in-flight imputation.  Disk-resident
// models are paged in through the byte-budgeted model cache and pinned for
// the duration of the gap they serve.
func (s *System) ImputeContext(ctx context.Context, tr geo.Trajectory) (geo.Trajectory, baseline.Stats, error) {
	// Bind the system registry as the span sink (keeping any request trace
	// the serving layer attached), so per-stage histograms are fed whether
	// the call arrives over HTTP or as a library call.  Observer is nil when
	// observability is disabled; every timing site below then takes no
	// timestamps at all.
	var observe func(string, time.Duration)
	if !s.cfg.DisableObservability {
		ctx = obs.EnsureSink(ctx, s.obsReg)
		observe = obs.Observer(ctx)
		s.imputeReqs.Inc()
	}
	ss := s.serve.Load()
	var stats baseline.Stats
	if ss == nil || ss.tok == nil || (ss.index == nil && ss.global == nil) {
		s.imputeErrs.Inc()
		return geo.Trajectory{}, stats, ErrNotTrained
	}
	if len(tr.Points) < 2 {
		return tr.Clone(), stats, nil
	}
	// Count this request as an active stream: while more than one stream is
	// in flight, the admission batcher holds partial batches for its
	// coalescing window; a lone stream always dispatches immediately, so
	// unloaded latency is unchanged.
	if s.adm != nil {
		s.adm.StreamEnter()
		defer s.adm.StreamExit()
	}

	out := geo.Trajectory{ID: tr.ID}
	cells := make([]grid.Cell, len(tr.Points))
	xys := make([]geo.XY, len(tr.Points))
	var t0 time.Time
	if observe != nil {
		t0 = time.Now()
	}
	for i, p := range tr.Points {
		xys[i] = ss.proj.ToXY(p)
		cells[i] = ss.tok.Tokenize(xys[i])
	}
	if observe != nil {
		observe("impute.tokenize", time.Since(t0))
	}

	for i := 0; i+1 < len(tr.Points); i++ {
		a, b := tr.Points[i], tr.Points[i+1]
		out.Points = append(out.Points, a)
		if xys[i].Dist(xys[i+1]) <= s.cfg.MaxGapM {
			continue // already dense
		}
		stats.Segments++

		res, degraded, ok, err := s.imputeGap(ctx, ss, cells, xys, i, b.T-a.T, observe)
		if err != nil {
			s.imputeErrs.Inc()
			return geo.Trajectory{}, stats, err
		}
		if degraded {
			stats.Degraded++
		}
		if !ok || res.Failed {
			stats.Failures++
			// Straight-line fill (§4.1 / §6 failure behaviour).
			line := geo.ResamplePolyline([]geo.XY{xys[i], xys[i+1]}, s.cfg.MaxGapM)
			s.emit(ss, &out, line[1:len(line)-1], a.T, b.T, xys[i], xys[i+1])
			continue
		}
		// Detokenize the interior tokens (endpoints stay at the observed
		// GPS points, which are more precise than any cell centroid).
		if observe != nil {
			t0 = time.Now()
		}
		pts := ss.detok.Detokenize(res.Tokens)
		if observe != nil {
			observe("impute.detok", time.Since(t0))
		}
		if len(pts) > 2 {
			s.emit(ss, &out, pts[1:len(pts)-1], a.T, b.T, xys[i], xys[i+1])
		}
	}
	out.Points = append(out.Points, tr.Points[len(tr.Points)-1])
	s.served.account(stats)
	return out, stats, nil
}

// BatchResult is one trajectory's outcome from ImputeBatch.
type BatchResult struct {
	Trajectory geo.Trajectory
	Stats      baseline.Stats
	Err        error
}

// ImputeBatch imputes a batch of trajectories and returns one result per
// input, in input order.  System-level failures — an untrained system, a
// cancelled or expired context — abort the whole call; anything that only
// affects a single trajectory lands in its BatchResult.  Results are
// identical to calling ImputeContext per trajectory.
func (s *System) ImputeBatch(ctx context.Context, trs []geo.Trajectory) ([]BatchResult, error) {
	out := make([]BatchResult, len(trs))
	for i, tr := range trs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		dense, stats, err := s.ImputeContext(ctx, tr)
		if err != nil {
			if errors.Is(err, ErrNotTrained) || systemImputeErr(ctx, err) {
				return nil, err
			}
			out[i] = BatchResult{Err: err}
			continue
		}
		out[i] = BatchResult{Trajectory: dense, Stats: stats}
	}
	return out, nil
}

// emit appends interior planar points with timestamps interpolated between
// the two endpoint times, proportional to arc position between the anchors.
func (s *System) emit(ss *serveState, out *geo.Trajectory, interior []geo.XY, t0, t1 float64, a, b geo.XY) {
	full := make([]geo.XY, 0, len(interior)+2)
	full = append(full, a)
	full = append(full, interior...)
	full = append(full, b)
	total := geo.PolylineLength(full)
	var acc float64
	for i, q := range interior {
		acc += full[i].Dist(full[i+1])
		p := ss.proj.ToLatLng(q)
		if total > 0 {
			p.T = t0 + (t1-t0)*acc/total
		} else {
			p.T = t0
		}
		out.Points = append(out.Points, p)
	}
}

// resolveModel materializes the model behind an index reference: resident
// handles are returned directly, disk-resident models are paged in through
// the byte-budgeted cache (deduplicated across concurrent requests) and
// pinned.  The returned release func must be called once the model is no
// longer in use; it is never nil.
func (s *System) resolveModel(ctx context.Context, ref *pyramid.ModelRef) (*modelBundle, func(), error) {
	if ref.Handle != nil {
		return ref.Handle.(*modelBundle), func() {}, nil
	}
	key := modelcache.Key{
		Level: ref.Key.Level, IX: ref.Key.IX, IY: ref.Key.IY,
		Slot: ref.Slot, Generation: ref.Gen,
	}
	pin, err := s.cache.GetOrLoad(ctx, key, func() (modelcache.Sizer, error) {
		h, err := pyramid.ReadModelFS(fsx.OS(), s.modelsDir(), pyramid.FileRef{Name: ref.File, Gen: ref.Gen}, bundleCodec{})
		if err != nil {
			return nil, err
		}
		return h.(*modelBundle), nil
	})
	if err != nil {
		return nil, nil, err
	}
	return pin.Value().(*modelBundle), pin.Release, nil
}

// imputeGap runs the Partitioning lookup and the multipoint algorithm for
// the gap between sparse points i and i+1, whose timestamps differ by dt
// seconds.  ok=false means no model covers the gap.  degraded reports that
// the gap was served down the degradation ladder: the best-fitting model was
// quarantined at load time (ancestor model served instead), or the model
// failed to page in at request time (the caller's linear fallback).  Only
// context errors are returned; any other failure degrades to a failed
// (straight-line) result, preserving the availability contract of §4.1.
func (s *System) imputeGap(ctx context.Context, ss *serveState, cells []grid.Cell, xys []geo.XY, i int, dt float64, observe func(string, time.Duration)) (res impute.Result, degraded, ok bool, err error) {
	if testGapHook != nil {
		testGapHook(ctx, ss.seq)
	}
	bundle := ss.global
	release := func() {}
	if bundle == nil {
		mbr := geo.EmptyRect().ExtendXY(xys[i]).ExtendXY(xys[i+1])
		var t0 time.Time
		if observe != nil {
			t0 = time.Now()
		}
		ref, _, info, found := ss.index.LookupBest(mbr)
		if observe != nil {
			observe("impute.lookup", time.Since(t0))
		}
		if !found {
			return impute.Result{}, info.Degraded, false, nil
		}
		degraded = info.Degraded
		if observe != nil {
			t0 = time.Now()
		}
		b, rel, rerr := s.resolveModel(ctx, ref)
		if observe != nil {
			observe("impute.page_in", time.Since(t0))
		}
		if rerr != nil {
			if ctx.Err() != nil {
				return impute.Result{}, degraded, true, rerr
			}
			// The model could not be paged in (file GC'd under an old
			// snapshot, disk corruption, ...): degrade to the linear
			// fallback rather than failing the request.
			return impute.Result{}, true, false, nil
		}
		bundle, release = b, rel
	}
	defer release()

	req := impute.Request{S: cells[i], D: cells[i+1], TimeDiff: dt}
	if i > 0 {
		prev := cells[i-1]
		req.Prev = &prev
	}
	if i+2 < len(cells) {
		next := cells[i+2]
		req.Next = &next
	}

	cfg := impute.Config{
		Tokenizer:    ss.tok,
		Checker:      ss.checker,
		MaxGapMeters: s.cfg.MaxGapM,
		MaxCalls:     s.cfg.MaxCalls,
		TopK:         s.cfg.TopK,
		Beam:         s.cfg.Beam,
		Alpha:        s.cfg.Alpha,
		Observe:      observe,
	}
	p := bundlePredictor{b: bundle, adm: s.adm}

	if s.cfg.DisableMultipoint {
		var t0 time.Time
		if observe != nil {
			t0 = time.Now()
		}
		res, ok := s.singleShot(p, cfg, req)
		if observe != nil {
			observe("impute.predict", time.Since(t0))
		}
		return res, degraded, ok, nil
	}
	// "impute.beam" is the whole multipoint search; its predict/constraints
	// children are reported separately by the impute package via cfg.Observe,
	// so the beam bucket overlaps them by design.
	var t0 time.Time
	if observe != nil {
		t0 = time.Now()
	}
	switch s.cfg.Strategy {
	case StrategyIterative:
		res, err = impute.IterativeContext(ctx, p, cfg, req)
	default:
		res, err = impute.BeamContext(ctx, p, cfg, req)
	}
	if observe != nil {
		observe("impute.beam", time.Since(t0))
	}
	if err != nil {
		if systemImputeErr(ctx, err) {
			return impute.Result{}, degraded, true, err
		}
		return impute.Result{Failed: true}, degraded, true, nil
	}
	return res, degraded, true, nil
}

// singleShot implements the "No Multi." ablation (§8.7): exactly one BERT
// call per gap, inserting only the top valid candidate.
func (s *System) singleShot(p impute.Predictor, cfg impute.Config, req impute.Request) (impute.Result, bool) {
	cands, err := p.Predict([]grid.Cell{req.S, req.D}, 0, cfg.TopK)
	if err != nil {
		return impute.Result{Failed: true}, true
	}
	seg := constraints.Segment{S: req.S, D: req.D, Prev: req.Prev, Next: req.Next, TimeDiff: req.TimeDiff}
	cands = cfg.Checker.Filter(cands, seg)
	if len(cands) == 0 {
		return impute.Result{Failed: true}, true
	}
	return impute.Result{
		Tokens: []grid.Cell{req.S, cands[0].Cell, req.D},
		Prob:   cands[0].Prob,
		Calls:  1,
	}, true
}

package core

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"kamel/internal/geo"
	"kamel/internal/obs"
)

// TestObservabilityUnderConcurrency hammers ImputeBatch from several
// goroutines while the background maintainer rebuilds models and a scraper
// goroutine renders the Prometheus exposition the whole time.  Run under
// -race it proves the registry's hot path (atomic counter/histogram updates,
// gauge closures that take the system's locks) is safe against concurrent
// training, serving, and scraping; afterwards it checks that the scraped
// numbers are coherent with what the work actually did.
func TestObservabilityUnderConcurrency(t *testing.T) {
	if testing.Short() {
		t.Skip("trains several models under load")
	}
	f := newFixture(t, func(c *Config) {
		c.DisablePartitioning = false
		c.PyramidH = 1
		c.PyramidL = 2
		c.ThresholdK = 200
		c.Train.Steps = 60
	})
	sys, err := NewWithProjection(f.cfg, f.proj)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.Train(f.train[:len(f.train)/2]); err != nil {
		t.Fatal(err)
	}

	mctx, cancelMaint := context.WithCancel(context.Background())
	defer cancelMaint()
	maintDone := make(chan error, 1)
	go func() { maintDone <- sys.Maintain(mctx) }()

	sparse := make([]geo.Trajectory, len(f.test))
	for i, tr := range f.test {
		sparse[i] = tr.Sparsify(700)
	}

	const workers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, workers+1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				batch := []geo.Trajectory{sparse[(w+i)%len(sparse)]}
				results, err := sys.ImputeBatch(context.Background(), batch)
				if err != nil {
					errCh <- err
					return
				}
				if results[0].Err != nil {
					errCh <- results[0].Err
					return
				}
			}
		}(w)
	}
	// The scraper races exposition (which snapshots histograms and runs the
	// gauge closures, taking mu.RLock and the cache's lock) against the
	// writers above.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := sys.Obs().WritePrometheus(&buf); err != nil {
				errCh <- err
				return
			}
			sys.SystemStats()
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Overlap the start of a maintained rebuild with the load, then stop the
	// hammering so the maintainer gets the CPU to drain its queue.
	if err := sys.Train(f.train[len(f.train)/2:]); err != nil {
		t.Fatal(err)
	}
	hammerUntil := time.Now().Add(3 * time.Second)
	for sys.SystemStats().MaintenancePending > 0 && time.Now().Before(hammerUntil) {
		time.Sleep(50 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	deadline := time.Now().Add(3 * time.Minute)
	for sys.SystemStats().MaintenancePending > 0 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Millisecond)
	}
	cancelMaint()
	if err := <-maintDone; err != nil && !errors.Is(err, context.Canceled) {
		t.Fatal(err)
	}
	if st := sys.SystemStats(); st.SingleModels == 0 {
		t.Fatal("no models after maintained training")
	}
	// One quiet pass over the whole test set with the full model repository
	// published, so the model-served stages are guaranteed samples.
	if _, err := sys.ImputeBatch(context.Background(), sparse); err != nil {
		t.Fatal(err)
	}

	// The exposition must now reflect the work: requests were counted, the
	// pipeline stage histograms saw samples, and the stats surface agrees
	// with the registry it reads from.
	if got := sys.imputeReqs.Value(); got == 0 {
		t.Error("no imputation requests counted")
	}
	var seen []string
	var stageSamples int64
	sys.Obs().EachHistogram(func(name string, labels []obs.Label, snap obs.HistogramSnapshot) {
		if name != obs.StageHistogramName {
			return
		}
		for _, l := range labels {
			if l.Key == "stage" && snap.Count > 0 {
				seen = append(seen, l.Value)
			}
		}
		stageSamples += snap.Count
	})
	joined := strings.Join(seen, ",")
	for _, stage := range []string{"impute.tokenize", "impute.lookup", "impute.beam", "impute.predict", "train.rebuild"} {
		if !strings.Contains(joined, stage) {
			t.Errorf("stage %q recorded no samples (stages with samples: %s)", stage, joined)
		}
	}
	if stageSamples == 0 {
		t.Fatal("no stage samples at all")
	}
	st := sys.SystemStats()
	if st.ServedSegments != sys.served.segments.Value() {
		t.Errorf("stats/registry disagree on served segments: %d vs %d",
			st.ServedSegments, sys.served.segments.Value())
	}
	if sys.maintRebuilds.Value() == 0 {
		t.Error("maintainer completed no counted rebuilds")
	}
	var buf bytes.Buffer
	if err := sys.Obs().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"kamel_impute_requests_total",
		`kamel_stage_duration_seconds_bucket{stage="impute.beam"`,
		"kamel_modelcache_load_seconds_count",
		"kamel_snapshot_generation",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

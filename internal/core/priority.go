package core

import (
	"context"

	"kamel/internal/batcher"
)

// Request priority rides on the context from the serving layer down to the
// admission batcher, so the impute algorithms in between stay priority-blind:
// they submit whole frontiers and the batcher orders interactive work ahead
// of bulk at dispatch time.

type priorityKey struct{}

// WithPriority returns a context carrying the admission priority for every
// prediction submitted under it.
func WithPriority(ctx context.Context, p batcher.Priority) context.Context {
	return context.WithValue(ctx, priorityKey{}, p)
}

// PriorityOf reads the admission priority from ctx, defaulting to
// Interactive.
func PriorityOf(ctx context.Context) batcher.Priority {
	if p, ok := ctx.Value(priorityKey{}).(batcher.Priority); ok {
		return p
	}
	return batcher.Interactive
}

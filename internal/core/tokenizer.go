package core

import (
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"path/filepath"

	"kamel/internal/fsx"
	"kamel/internal/geo"
	"kamel/internal/grid"
	"kamel/internal/tokenizer"
)

// Tokenizer lifecycle.  Tokens are identities: every persisted artifact —
// store records, per-model vocabularies, detokenization clusters — is
// expressed in one token mapping, so the mapping must be fixed before the
// first byte is written and never change afterwards.  The spec is therefore
// frozen on first training (derived from the batch for the adaptive
// tokenizer, confirmed from config for the fixed one), persisted atomically
// next to the model manifest, and reloaded — disk wins over config — by
// every later process.  A corrupt spec quarantines and refuses: serving
// models whose token space is unknown would silently misplace every point.

// specPath is where the frozen tokenizer spec lives, beside the manifest.
func (s *System) specPath() string {
	return filepath.Join(s.modelsDir(), tokenizer.SpecFile)
}

// ensureTokenizerLocked freezes the token mapping before the first byte of
// trajectory data is persisted.  Callers hold mu.  Resolution order:
//
//  1. Already frozen: nothing to do.
//  2. A spec persisted by an earlier process: adopt it verbatim (disk wins
//     over config — retraining cannot be allowed to re-derive a different
//     mapping over an existing store).  Corrupt specs quarantine and fail.
//  3. No spec, fixed config: confirm the construction-time tokenizer.
//  4. No spec, adaptive config: derive split/merge sets from the base-cell
//     density of this first batch (deterministic in the batch).
//
// Whichever branch wins, the frozen spec is written to disk so restarts,
// replicas, and the anti-entropy hash check all see the same fingerprint.
func (s *System) ensureTokenizerLocked(trajs []geo.Trajectory) error {
	if s.tokFrozen && s.tok != nil {
		return nil
	}
	spec, err := tokenizer.LoadSpec(fsx.OS(), s.specPath())
	switch {
	case err == nil:
		tk, nerr := tokenizer.New(spec)
		if nerr != nil {
			return fmt.Errorf("core: persisted tokenizer spec is unusable: %w", nerr)
		}
		if spec.Kind != s.cfg.Tokenizer {
			slog.Warn("persisted tokenizer spec overrides configuration",
				"component", "core", "disk", spec.Kind, "config", s.cfg.Tokenizer)
		}
		s.tok = tk
		s.tokFrozen = true
		return nil
	case errors.Is(err, fsx.ErrCorrupt):
		return s.quarantineSpec(err)
	case !errors.Is(err, fs.ErrNotExist):
		return fmt.Errorf("core: reading tokenizer spec: %w", err)
	}

	if s.cfg.Tokenizer == TokenizerAdaptive {
		counts := make(map[grid.Cell]uint64)
		for _, tr := range trajs {
			for _, p := range tr.Points {
				counts[s.g.CellAt(s.proj.ToXY(p))]++
			}
		}
		spec = tokenizer.BuildAdaptive(s.cfg.CellEdgeM, counts, tokenizer.BuildOptions{
			SplitMin: s.cfg.AdaptiveSplitMin,
			MergeMax: s.cfg.AdaptiveMergeMax,
			MaxSplit: s.cfg.AdaptiveMaxSplit,
		})
		tk, err := tokenizer.New(spec)
		if err != nil {
			return fmt.Errorf("core: deriving adaptive tokenizer: %w", err)
		}
		s.tok = tk
	}
	// Fixed config: s.tok was set at construction; only the freeze and the
	// durable spec are new.
	s.tokFrozen = true
	return s.saveSpecLocked()
}

// saveSpecLocked persists the frozen spec atomically beside the manifest.
// It runs before any model commit of the same generation, so a directory
// with models always names its token space.  Callers hold mu.
func (s *System) saveSpecLocked() error {
	if err := fsx.OS().MkdirAll(s.modelsDir(), 0o755); err != nil {
		return fmt.Errorf("core: creating models dir for tokenizer spec: %w", err)
	}
	if err := tokenizer.SaveSpec(fsx.OS(), s.specPath(), s.tok.Spec()); err != nil {
		return fmt.Errorf("core: persisting tokenizer spec: %w", err)
	}
	return nil
}

// quarantineSpec sidelines a corrupt spec file and returns the refusal
// error.  The rename keeps the evidence for forensics while guaranteeing the
// next process does not trip over the same bytes.
func (s *System) quarantineSpec(cause error) error {
	qdir := filepath.Join(s.modelsDir(), "quarantine")
	if err := fsx.OS().MkdirAll(qdir, 0o755); err == nil {
		if err := fsx.OS().Rename(s.specPath(), filepath.Join(qdir, tokenizer.SpecFile)); err == nil {
			slog.Warn("quarantined corrupt tokenizer spec",
				"component", "core", "file", s.specPath(), "err", cause)
		}
	}
	return fmt.Errorf("core: tokenizer spec corrupt (quarantined; token space unknown, refusing): %w", cause)
}

// loadTokenizerLocked restores the frozen tokenizer for a process that loads
// persisted models without training.  Callers hold mu.  A missing spec is
// legal only for directories written before specs existed (or by a peer
// that has not trained): the fixed construction-time tokenizer keeps
// serving, left unfrozen so the next training round writes the spec.
func (s *System) loadTokenizerLocked() error {
	spec, err := tokenizer.LoadSpec(fsx.OS(), s.specPath())
	switch {
	case err == nil:
		tk, nerr := tokenizer.New(spec)
		if nerr != nil {
			return fmt.Errorf("core: persisted tokenizer spec is unusable: %w", nerr)
		}
		s.tok = tk
		s.tokFrozen = true
		return nil
	case errors.Is(err, fsx.ErrCorrupt):
		return s.quarantineSpec(err)
	case errors.Is(err, fs.ErrNotExist):
		if s.tok == nil {
			return fmt.Errorf("core: adaptive tokenizer configured but no tokenizer spec in %s", s.modelsDir())
		}
		return nil
	default:
		return fmt.Errorf("core: reading tokenizer spec: %w", err)
	}
}

// EnsureTokenizer freezes the token mapping from the given batch exactly as
// the first training round would (see ensureTokenizerLocked).  The train
// fan-out calls it on the gateway before scattering, so the whole replica
// group can be offered one spec instead of each member deriving its own from
// its sub-batch.
func (s *System) EnsureTokenizer(trajs []geo.Trajectory) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ensureProjection(trajs); err != nil {
		return err
	}
	return s.ensureTokenizerLocked(trajs)
}

// AdoptTokenizerSpec installs a spec offered by a peer (the train fan-out's
// envelope) as this node's frozen token mapping.  A node that already froze
// the same spec is a no-op; one frozen on a *different* spec refuses loudly —
// its store and models are expressed in the other mapping, and silently
// switching would misplace every persisted token.  The refusal surfaces as a
// failed train ack, which is exactly how an operator finds the split brain.
func (s *System) AdoptTokenizerSpec(spec tokenizer.Spec) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tokFrozen && s.tok != nil {
		if s.tok.Spec().Hash() == spec.Hash() {
			return nil
		}
		return fmt.Errorf("core: refusing offered tokenizer spec %.12s: this node is frozen on %.12s",
			spec.Hash(), s.tok.Spec().Hash())
	}
	tk, err := tokenizer.New(spec)
	if err != nil {
		return fmt.Errorf("core: offered tokenizer spec is unusable: %w", err)
	}
	s.tok = tk
	s.tokFrozen = true
	return s.saveSpecLocked()
}

// tokOrBase returns the active tokenizer, falling back to the fixed base
// tessellation when none is derived yet (adaptive config before training).
// Callers hold mu.
func (s *System) tokOrBase() tokenizer.Tokenizer {
	if s.tok != nil {
		return s.tok
	}
	return tokenizer.NewFixed(s.g)
}

package core

import (
	"context"
	"sync"

	"kamel/internal/baseline"
	"kamel/internal/geo"
)

// StreamResult is one imputed trajectory from the online mode, paired with
// its per-trajectory statistics or the error that prevented imputation.
type StreamResult struct {
	Trajectory geo.Trajectory
	Stats      baseline.Stats
	Err        error
}

// ImputeStream runs KAMEL's online mode (paper §1 feature 4): trajectories
// arriving on `in` are imputed concurrently by `workers` goroutines and
// emitted on the returned channel, which closes once `in` is drained or the
// context is cancelled.  Output order is not guaranteed — the ID identifies
// each result.  Training and maintenance may run concurrently with an open
// stream: each imputation reads one atomically-published serving snapshot,
// so results reflect either the pre- or post-train models, never a mix
// within one trajectory.
func (s *System) ImputeStream(ctx context.Context, in <-chan geo.Trajectory, workers int) <-chan StreamResult {
	if workers <= 0 {
		workers = 1
	}
	out := make(chan StreamResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-ctx.Done():
					return
				case tr, ok := <-in:
					if !ok {
						return
					}
					dense, stats, err := s.ImputeContext(ctx, tr)
					select {
					case out <- StreamResult{Trajectory: dense, Stats: stats, Err: err}:
					case <-ctx.Done():
						return
					}
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

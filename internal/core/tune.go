package core

import (
	"fmt"
	"os"

	"kamel/internal/geo"
	"kamel/internal/metrics"
	"kamel/internal/tensor"
)

// TuneResult reports the auto-tuner's evaluation of one candidate cell size.
type TuneResult struct {
	CellEdgeM float64
	Recall    float64
	Precision float64
}

// TuneCellSize implements the auto-tuning module of §3.2: sample the
// training dataset, train a throwaway model per candidate cell size, impute
// a held-out sample sparsified at sparseDist, and return the size with the
// highest recall (ties broken by precision), along with the whole curve —
// which is the unimodal accuracy-vs-cell-size trade-off of Figure 3(d).
//
// The tuner runs on temporary copies; the receiver system is not modified.
func (s *System) TuneCellSize(trajs []geo.Trajectory, sizes []float64, sparseDist, delta float64) (float64, []TuneResult, error) {
	if len(sizes) == 0 {
		return 0, nil, fmt.Errorf("core: no candidate sizes")
	}
	if len(trajs) < 4 {
		return 0, nil, fmt.Errorf("core: need at least 4 trajectories to tune, got %d", len(trajs))
	}
	// Deterministic 75/25 sample split.
	rng := tensor.NewRNG(s.cfg.Seed)
	perm := rng.Perm(len(trajs))
	cut := len(trajs) * 3 / 4
	var train, test []geo.Trajectory
	for i, pi := range perm {
		if i < cut {
			train = append(train, trajs[pi])
		} else {
			test = append(test, trajs[pi])
		}
	}

	var results []TuneResult
	best := TuneResult{CellEdgeM: sizes[0], Recall: -1}
	for _, size := range sizes {
		if size <= 0 {
			return 0, nil, fmt.Errorf("core: non-positive candidate size %f", size)
		}
		dir, err := os.MkdirTemp(s.cfg.Workdir, "tune-*")
		if err != nil {
			return 0, nil, err
		}
		cfg := s.cfg
		cfg.Workdir = dir
		cfg.CellEdgeM = size
		// One global model keeps the trial cheap and isolates the cell-size
		// effect from partitioning thresholds.
		cfg.DisablePartitioning = true
		trial, err := New(cfg)
		if err != nil {
			return 0, nil, err
		}
		if err := trial.Train(train); err != nil {
			trial.Close()
			return 0, nil, fmt.Errorf("core: tuning at %gm: %w", size, err)
		}
		var acc metrics.Accumulator
		for _, truth := range test {
			sparse := truth.Sparsify(sparseDist)
			dense, _, err := trial.Impute(sparse)
			if err != nil {
				continue
			}
			acc.Add(metrics.Evaluate(trial.Projection(), truth, dense, s.cfg.MaxGapM, delta))
		}
		trial.Close()
		os.RemoveAll(dir)
		res := TuneResult{CellEdgeM: size, Recall: acc.Recall(), Precision: acc.Precision()}
		results = append(results, res)
		if res.Recall > best.Recall || (res.Recall == best.Recall && res.Precision > best.Precision) {
			best = res
		}
	}
	return best.CellEdgeM, results, nil
}

package core

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"time"

	"kamel/internal/bert"
	"kamel/internal/constraints"
	"kamel/internal/detok"
	"kamel/internal/fsx"
	"kamel/internal/geo"
	"kamel/internal/obs"
	"kamel/internal/pyramid"
	"kamel/internal/store"
	"kamel/internal/vocab"
)

// Train ingests a batch of training trajectories (paper Figure 1, left
// input).  It is TrainContext without cancellation.
func (s *System) Train(trajs []geo.Trajectory) error {
	return s.TrainContext(context.Background(), trajs)
}

// TrainContext ingests a batch of training trajectories: tokenizes them,
// appends them to the trajectory store, infers the speed limit for the
// constraints module, rebuilds the detokenization clusters, and runs the
// model-repository maintenance that trains BERT models wherever thresholds
// allow.  Training produces no imputation output; it only enriches the
// system's models.
//
// When a background maintainer is running (Maintain), the expensive model
// rebuilds are scheduled onto it and TrainContext returns as soon as the
// batch is durably appended — train-while-serve: imputation keeps answering
// against the previous model generation throughout.  Without a maintainer
// (or when its queue is full), the rebuild runs synchronously as before.
// The context is checked before each per-region model training — the
// expensive unit of work — so a cancelled request stops enriching models
// promptly; trajectories already appended to the store remain stored.
func (s *System) TrainContext(ctx context.Context, trajs []geo.Trajectory) error {
	if len(trajs) == 0 {
		return fmt.Errorf("core: empty training batch")
	}
	if !s.cfg.DisableObservability {
		ctx = obs.EnsureSink(ctx, s.obsReg)
	}
	sp := obs.StartSpan(ctx, "train.append")
	batch, err := s.appendBatch(trajs)
	sp.End()
	if err != nil {
		return err
	}
	if s.cfg.DisablePartitioning {
		// Ablation "No Part.": one model over everything (§8.7), always
		// rebuilt synchronously.
		return s.rebuildGlobal(ctx)
	}
	if s.maintaining.Load() {
		select {
		case s.maintCh <- batch:
			s.pendingRebuilds.Add(1)
			return nil
		default:
			// Maintainer backlogged: rebuild synchronously (backpressure).
		}
	}
	return s.rebuild(ctx, batch, false)
}

// appendBatch runs the cheap, latency-sensitive half of training under mu:
// tokenize, append to the store, refresh the speed estimate / constraints /
// detokenization clusters, and publish the refreshed auxiliaries.
func (s *System) appendBatch(trajs []geo.Trajectory) ([]store.Traj, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	started := time.Now()

	if err := s.ensureProjection(trajs); err != nil {
		return nil, err
	}
	// Freeze the token mapping before the first record is written: every
	// persisted artifact downstream is expressed in these tokens.
	if err := s.ensureTokenizerLocked(trajs); err != nil {
		return nil, err
	}
	batch := make([]store.Traj, 0, len(trajs))
	for _, tr := range trajs {
		if len(tr.Points) == 0 {
			continue
		}
		rec := s.tokenize(tr)
		if err := s.st.Append(rec); err != nil {
			return nil, fmt.Errorf("core: storing trajectory %q: %w", tr.ID, err)
		}
		batch = append(batch, rec)
	}
	if len(batch) == 0 {
		return nil, fmt.Errorf("core: training batch had no non-empty trajectories")
	}
	s.refreshSpeedEstimate()
	s.refreshChecker()
	s.rebuildDetok()
	s.trainTime += time.Since(started).Seconds()
	s.publishLocked()
	return batch, nil
}

// rebuild runs pyramid maintenance for one appended batch under maintMu and
// publishes the resulting snapshot.  With commit=true (the background
// maintainer), the repository is additionally committed to disk incrementally
// and its in-memory handles dropped, so the serving path pages rebuilt models
// through the cache — the disk-resident lifecycle of paper §4.
func (s *System) rebuild(ctx context.Context, batch []store.Traj, commit bool) error {
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	if !s.cfg.DisableObservability {
		ctx = obs.EnsureSink(ctx, s.obsReg)
	}
	defer obs.StartSpan(ctx, "train.rebuild").End()
	started := time.Now()

	s.mu.Lock()
	st := s.st
	var err error
	if st != nil {
		err = s.ensureRepoLocked()
	}
	repo := s.repo
	s.mu.Unlock()
	if st == nil {
		return fmt.Errorf("core: system is closed")
	}
	if err != nil {
		return err
	}

	// Independent cells rebuild concurrently on a bounded pool; each build
	// is deterministic per task (fixed seed over a fixed training set), so
	// the resulting repository is identical to a serial rebuild.
	err = repo.IngestParallel(st, batch, func(region geo.Rect, rs []store.Traj) (pyramid.Handle, pyramid.ModelMeta, error) {
		if err := ctx.Err(); err != nil {
			return nil, pyramid.ModelMeta{}, err
		}
		return s.buildModelHandle(rs)
	}, s.cfg.RebuildWorkers)
	if err != nil {
		return err
	}
	if commit {
		if _, err := repo.CommitFS(fsx.OS(), s.modelsDir(), bundleCodec{}); err != nil {
			return fmt.Errorf("core: committing model repository: %w", err)
		}
		repo.DropHandles()
	}
	ix := repo.Index()

	s.mu.Lock()
	s.curIndex = ix
	s.trainTime += time.Since(started).Seconds()
	s.publishLocked()
	s.mu.Unlock()
	return nil
}

// buildModelHandle adapts buildModel to the pyramid's BuildFunc signature.
// It may run on a rebuild worker goroutine: it touches only immutable config
// and its own training set, never the Repo.
func (s *System) buildModelHandle(rs []store.Traj) (pyramid.Handle, pyramid.ModelMeta, error) {
	bundle, meta, err := s.buildModel(rs)
	if err != nil {
		return nil, pyramid.ModelMeta{}, err
	}
	s.modelBuilds.Inc()
	return bundle, meta, nil
}

// rebuildGlobal retrains the single global model of the "No Part." ablation.
func (s *System) rebuildGlobal(ctx context.Context) error {
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	started := time.Now()
	s.mu.RLock()
	st := s.st
	s.mu.RUnlock()
	if st == nil {
		return fmt.Errorf("core: system is closed")
	}
	var all []store.Traj
	st.All(func(tr store.Traj) bool { all = append(all, tr); return true })
	bundle, _, err := s.buildModel(all)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.global = bundle
	s.trainTime += time.Since(started).Seconds()
	s.publishLocked()
	s.mu.Unlock()
	return nil
}

// ErrMaintaining is returned by Maintain when a maintenance loop is already
// running for the system.
var ErrMaintaining = errors.New("core: maintenance loop already running")

// Maintain runs the single background repository maintainer (paper §4.2:
// maintenance is one background process).  While it runs, TrainContext
// schedules model rebuilds here instead of blocking, and each finished
// rebuild is committed to disk and atomically published — imputation is
// never paused.  Maintain blocks until the context is cancelled and returns
// the context's error; at most one maintainer may run per system.
func (s *System) Maintain(ctx context.Context) error {
	if !s.maintaining.CompareAndSwap(false, true) {
		return ErrMaintaining
	}
	defer s.maintaining.Store(false)
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case batch := <-s.maintCh:
			started := time.Now()
			err := s.rebuild(ctx, batch, true)
			s.pendingRebuilds.Add(-1)
			if ctx.Err() != nil {
				// The batch is already in the store; the next rebuild after
				// restart covers its region again.
				return ctx.Err()
			}
			if err != nil {
				s.maintFailures.Inc()
				slog.Error("background model rebuild failed",
					"component", "core", "err", err,
					"batch_trajectories", len(batch),
					"duration_ms", time.Since(started).Milliseconds())
				continue
			}
			s.maintRebuilds.Inc()
			slog.Debug("background model rebuild complete",
				"component", "core",
				"batch_trajectories", len(batch),
				"duration_ms", time.Since(started).Milliseconds())
		}
	}
}

// ensureRepoLocked creates the pyramid builder once the deployment region is
// known.  Callers hold mu (and the maintenance path holds maintMu).
func (s *System) ensureRepoLocked() error {
	if s.repo != nil {
		return nil
	}
	region := s.cfg.Region
	if region.IsEmpty() || region == (geo.Rect{}) {
		// Derive from stored data with generous margins so later batches
		// nearby stay inside.
		region = s.st.Bounds().Expand(0.25*s.st.Bounds().Width() + 500)
	}
	repo, err := pyramid.New(pyramid.Config{
		Root: region,
		H:    s.cfg.PyramidH,
		L:    s.cfg.PyramidL,
		K:    s.cfg.ThresholdK,
	})
	if err != nil {
		return err
	}
	// Plain field assignment — the pre-resolved series were registered at
	// init, so no registry locking happens under mu.
	repo.SetMetrics(s.pyrCommit, s.pyrQuarantine)
	s.repo = repo
	return nil
}

// buildModel trains one BERT model over the given trajectories: builds the
// per-model vocabulary, converts trajectories to token-ID sequences, and
// runs the MLM training loop.
func (s *System) buildModel(rs []store.Traj) (*modelBundle, pyramid.ModelMeta, error) {
	v := vocab.New()
	var seqs [][]int
	var tokenTotal int
	for _, rec := range rs {
		cells := sequenceOf(rec)
		ids := make([]int, len(cells))
		for i, c := range cells {
			ids[i] = v.Add(c)
		}
		tokenTotal += len(ids)
		if len(ids) >= 2 {
			seqs = append(seqs, ids)
		}
	}
	if len(seqs) == 0 {
		return nil, pyramid.ModelMeta{}, fmt.Errorf("core: no usable training sequences")
	}
	// Decline regions whose *fully enclosed* corpus is too thin to train a
	// useful model (the cell's raw token count can clear the paper's
	// threshold while very few whole trajectories fit inside it).  A weak
	// per-cell model would shadow a stronger ancestor at lookup time.
	if !s.cfg.DisablePartitioning && (len(seqs) < 10 || tokenTotal < 600) {
		return nil, pyramid.ModelMeta{}, pyramid.ErrSkip
	}
	cfg := bert.Config{
		VocabSize: v.Size(),
		Hidden:    s.cfg.Hidden,
		Layers:    s.cfg.Layers,
		Heads:     s.cfg.Heads,
		FFN:       s.cfg.FFN,
		MaxSeqLen: s.cfg.MaxSeqLen,
		Seed:      s.cfg.Seed,
	}
	m, err := bert.New(cfg)
	if err != nil {
		return nil, pyramid.ModelMeta{}, err
	}
	tc := s.cfg.Train
	tc.Seed = s.cfg.Seed
	// Scale the step budget to the corpus: a per-cell model over a handful
	// of trajectories converges in far fewer steps than the configured
	// maximum, which keeps pyramid maintenance affordable (training is
	// offline but not free, §4).
	if scaled := 150 + 8*len(seqs); scaled < tc.Steps {
		tc.Steps = scaled
	}
	if tc.Warmup > tc.Steps/4 {
		tc.Warmup = tc.Steps / 4
	}
	stats, err := m.Train(seqs, tc)
	if err != nil {
		return nil, pyramid.ModelMeta{}, err
	}
	meta := pyramid.ModelMeta{
		Tokens:    tokenTotal,
		Sequences: stats.Sequences,
		FinalLoss: stats.FinalLoss,
	}
	return &modelBundle{model: m, vocab: v}, meta, nil
}

// refreshSpeedEstimate infers the constraint speed limit from stored data
// (§5.1: "KAMEL currently uses a fixed speed inferred from its training
// trajectory data").  The 95th percentile of observed point-to-point speeds
// is padded by 50%.
func (s *System) refreshSpeedEstimate() {
	if s.cfg.MaxSpeedMPS > 0 {
		s.speedMPS = s.cfg.MaxSpeedMPS
		return
	}
	// Whole-trajectory speeds (length over duration) are robust to GPS
	// noise, which wildly inflates point-to-point speeds at high sampling
	// rates.
	var speeds []float64
	s.st.All(func(tr store.Traj) bool {
		t := geo.Trajectory{Points: tr.Points}
		if dur := t.Duration(); dur > 0 {
			speeds = append(speeds, t.LengthMeters()/dur)
		}
		return len(speeds) < 100000
	})
	if len(speeds) == 0 {
		s.speedMPS = 40 // conservative urban fallback
		return
	}
	sort.Float64s(speeds)
	s.speedMPS = speeds[len(speeds)*95/100] * 1.3
}

// refreshChecker rebuilds the constraints checker against the current
// tokenizer and speed estimate.  The "No Const." ablation swaps in a vacuous
// checker.
func (s *System) refreshChecker() {
	ch := constraints.NewChecker(s.tokOrBase(), s.speedMPS)
	ch.ConeAngleRad = s.cfg.ConeAngleDeg * degToRad
	ch.CycleLen = s.cfg.CycleLen
	if s.cfg.DisableConstraints {
		// Accept any BERT prediction (§8.7).  Cycle detection stays at the
		// trivial x=1 window, which would otherwise hang iterative
		// imputation forever.
		ch.Disabled = true
		ch.CycleLen = 1
	}
	s.checker = ch
}

const degToRad = 3.14159265358979323846 / 180

// rebuildDetok recomputes the per-token cluster table over everything
// stored (§7 offline operation).
func (s *System) rebuildDetok() {
	var all []store.Traj
	s.st.All(func(tr store.Traj) bool { all = append(all, tr); return true })
	s.detokTab = detok.Build(s.tokOrBase(), s.proj, all, detok.DefaultParams())
}

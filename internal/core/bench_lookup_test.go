package core

import (
	"context"
	"testing"

	"kamel/internal/geo"
	"kamel/internal/roadnet"
	"kamel/internal/trajgen"
)

// lookupFixture trains a small partitioned system, persists its repository,
// and reloads it disk-resident under the given model-cache budget, so the
// benchmarks below measure the cache-mediated model-resolution path that
// every imputation request takes.
func lookupFixture(b *testing.B, budget int64) *System {
	b.Helper()
	cityCfg := roadnet.DefaultCityConfig()
	cityCfg.Width, cityCfg.Height = 1500, 1500
	net := roadnet.GenerateCity(cityCfg)
	proj := geo.NewProjection(41.15, -8.61)
	trajs, err := trajgen.Generate(net, proj, trajgen.DefaultConfig(50))
	if err != nil {
		b.Fatal(err)
	}
	train, _ := trajgen.SplitTrainTest(trajs, 0.8, 1)

	cfg := DefaultConfig(b.TempDir())
	cfg.DisablePartitioning = false
	cfg.PyramidH = 1
	cfg.PyramidL = 2
	cfg.ThresholdK = 200
	cfg.Hidden, cfg.FFN = 32, 128
	cfg.Heads = 4
	cfg.Train.Steps = 80
	sys, err := NewWithProjection(cfg, proj)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Train(train); err != nil {
		b.Fatal(err)
	}
	if err := sys.SaveModels(); err != nil {
		b.Fatal(err)
	}
	sys.Close()

	cfg.ModelCacheBytes = budget
	sys2, err := NewWithProjection(cfg, proj)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { sys2.Close() })
	if err := sys2.LoadModels(); err != nil {
		b.Fatal(err)
	}
	return sys2
}

func benchModelLookup(b *testing.B, budget int64) {
	sys := lookupFixture(b, budget)
	ss := sys.serve.Load()
	if ss == nil || ss.index == nil {
		b.Fatal("no serving snapshot")
	}
	ref, ok := ss.index.RootRef()
	if !ok {
		b.Fatal("no root model in index")
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, release, err := sys.resolveModel(ctx, ref)
		if err != nil {
			b.Fatal(err)
		}
		release()
	}
	b.StopTimer()
	st := sys.cache.Stats()
	b.ReportMetric(float64(st.Loads), "loads")
	b.ReportMetric(st.HitRatio(), "hit-ratio")
}

// BenchmarkModelLookupCold measures resolving a disk-resident model when
// every request misses: a 1-byte budget evicts the model the moment its pin
// is released, so each iteration pays the full read-verify-decode cost.
func BenchmarkModelLookupCold(b *testing.B) { benchModelLookup(b, 1) }

// BenchmarkModelLookupWarm measures the same resolution against a generous
// budget: after the first load every iteration is an LRU cache hit, the
// steady state of a working set that fits in memory.
func BenchmarkModelLookupWarm(b *testing.B) { benchModelLookup(b, 1<<30) }

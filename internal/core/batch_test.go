package core

import (
	"context"
	"errors"
	"testing"

	"kamel/internal/geo"
)

// pollCancelCtx reports cancellation starting from its (after+1)-th Err poll,
// making mid-flight cancellation deterministic: the imputation layer polls
// between batched BERT calls, so "cancel after the first poll" aborts the
// search after at most one beam iteration.
type pollCancelCtx struct {
	context.Context
	polls int
	after int
}

func (c *pollCancelCtx) Err() error {
	c.polls++
	if c.polls > c.after {
		return context.Canceled
	}
	return nil
}

func TestImputeBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	f := newFixture(t, nil)
	sys := trainedSystem(t, f)
	var trs []geo.Trajectory
	for _, tr := range f.test[:3] {
		trs = append(trs, tr.Sparsify(700))
	}

	t.Run("matches sequential", func(t *testing.T) {
		batch, err := sys.ImputeBatch(context.Background(), trs)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) != len(trs) {
			t.Fatalf("%d results for %d trajectories", len(batch), len(trs))
		}
		for i, tr := range trs {
			dense, stats, err := sys.Impute(tr)
			if err != nil {
				t.Fatalf("sequential impute %d: %v", i, err)
			}
			if batch[i].Err != nil {
				t.Fatalf("batch item %d errored: %v", i, batch[i].Err)
			}
			if batch[i].Stats != stats {
				t.Errorf("item %d stats %+v != sequential %+v", i, batch[i].Stats, stats)
			}
			got, want := batch[i].Trajectory, dense
			if got.ID != want.ID || len(got.Points) != len(want.Points) {
				t.Fatalf("item %d shape: %s/%d points, want %s/%d",
					i, got.ID, len(got.Points), want.ID, len(want.Points))
			}
			for pi := range want.Points {
				if got.Points[pi] != want.Points[pi] {
					t.Fatalf("item %d point %d: %+v != %+v", i, pi, got.Points[pi], want.Points[pi])
				}
			}
		}
	})

	t.Run("cancellation aborts mid-search", func(t *testing.T) {
		ctx := &pollCancelCtx{Context: context.Background(), after: 1}
		_, _, err := sys.ImputeContext(ctx, trs[0])
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("error %v, want context.Canceled", err)
		}
		// The search made at most one beam iteration before the poll flipped;
		// a full run needs many more polls than that.
		full := &pollCancelCtx{Context: context.Background(), after: 1 << 30}
		if _, _, err := sys.ImputeContext(full, trs[0]); err != nil {
			t.Fatal(err)
		}
		if full.polls <= 2 {
			t.Skip("trajectory too easy to observe cancellation depth")
		}
	})

	t.Run("pre-cancelled batch", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		res, err := sys.ImputeBatch(ctx, trs)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("error %v, want context.Canceled", err)
		}
		if res != nil {
			t.Fatal("cancelled batch must not return partial results")
		}
	})

	t.Run("empty batch", func(t *testing.T) {
		res, err := sys.ImputeBatch(context.Background(), nil)
		if err != nil || len(res) != 0 {
			t.Fatalf("empty batch: (%v, %v)", res, err)
		}
	})
}

func TestImputeBatchNotTrained(t *testing.T) {
	sys, err := New(DefaultConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	_, err = sys.ImputeBatch(context.Background(), []geo.Trajectory{{ID: "x"}})
	if !errors.Is(err, ErrNotTrained) {
		t.Fatalf("error %v, want ErrNotTrained", err)
	}
	if _, _, err := sys.Impute(geo.Trajectory{ID: "x"}); !errors.Is(err, ErrNotTrained) {
		t.Fatalf("Impute error %v, want ErrNotTrained", err)
	}
}

package core

import (
	"bufio"
	"os"
	"strconv"
	"strings"
)

// Model-cache budget sizing.  The cache bounds how many disk-resident models
// are in memory at once (paper §4: the repository lives on disk precisely so
// memory stays fixed as the deployment area grows).  Config.ModelCacheBytes:
//
//	> 0  explicit budget in bytes
//	  0  automatic: a quarter of the machine's available memory, clamped
//	     to [64 MiB, 4 GiB] (256 MiB when availability cannot be read)
//	< 0  unbounded (no eviction) — the pre-lifecycle behavior
const (
	minAutoCacheBytes      = 64 << 20
	maxAutoCacheBytes      = 4 << 30
	fallbackAutoCacheBytes = 256 << 20
)

// resolveCacheBudget maps the config knob to the modelcache.New argument
// (where <= 0 means unbounded).
func resolveCacheBudget(configured int64) int64 {
	switch {
	case configured > 0:
		return configured
	case configured < 0:
		return 0 // unbounded
	default:
		return autoCacheBudget()
	}
}

// autoCacheBudget derives a budget from the machine's currently available
// memory.
func autoCacheBudget() int64 {
	avail := availableMemoryBytes()
	if avail <= 0 {
		return fallbackAutoCacheBytes
	}
	budget := avail / 4
	if budget < minAutoCacheBytes {
		budget = minAutoCacheBytes
	}
	if budget > maxAutoCacheBytes {
		budget = maxAutoCacheBytes
	}
	return budget
}

// availableMemoryBytes reads MemAvailable from /proc/meminfo (Linux).  On
// other platforms, or when the file is unreadable, it returns 0 and the
// caller falls back to a fixed default.
func availableMemoryBytes() int64 {
	f, err := os.Open("/proc/meminfo")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "MemAvailable:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

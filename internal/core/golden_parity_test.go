package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"kamel/internal/geo"
	"kamel/internal/trajgen"
)

// goldenPath is the committed fixture produced by the pre-refactor pipeline
// (fixed hex grid hard-wired through core).  TestGoldenParityFixedTokenizer
// proves the tokenizer refactor kept the default fixed-tokenizer path
// element-wise identical to it.  Regenerate with:
//
//	KAMEL_UPDATE_GOLDEN=1 go test ./internal/core -run TestGoldenParityFixed
const goldenPath = "testdata/golden_fixed_impute.json"

// goldenPoint stores one imputed GPS point with every float64 rendered in
// exact hexadecimal notation, so the comparison is bit-exact rather than
// within-epsilon: the acceptance bar is "identical output", not "close".
type goldenPoint struct {
	Lat string `json:"lat"`
	Lng string `json:"lng"`
	T   string `json:"t"`
}

type goldenTraj struct {
	ID     string        `json:"id"`
	Points []goldenPoint `json:"points"`
}

func hexFloat(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

func goldenEncode(trs []geo.Trajectory) []goldenTraj {
	out := make([]goldenTraj, len(trs))
	for i, tr := range trs {
		g := goldenTraj{ID: tr.ID}
		for _, p := range tr.Points {
			g.Points = append(g.Points, goldenPoint{
				Lat: hexFloat(p.Lat), Lng: hexFloat(p.Lng), T: hexFloat(p.T),
			})
		}
		out[i] = g
	}
	return out
}

// goldenScenario materializes the deterministic porto-like workload the
// fixture was generated from.  Everything is seeded: the road network, the
// simulated trips, the train/test split, and KAMEL's own training.
func goldenScenario(t *testing.T) (*geo.Projection, []geo.Trajectory, []geo.Trajectory) {
	t.Helper()
	p := trajgen.PortoLike(0.35)
	p.City.Width, p.City.Height = 1800, 1800
	p.Traffic.Trips = 60
	_, proj, trajs, err := p.Materialize()
	if err != nil {
		t.Fatalf("materializing golden scenario: %v", err)
	}
	train, test := trajgen.SplitTrainTest(trajs, 0.8, 7)
	if len(test) > 6 {
		test = test[:6]
	}
	return proj, train, test
}

// goldenImpute trains a default-config (fixed hex tokenization) system on the
// golden scenario and imputes the sparsified test set.
func goldenImpute(t *testing.T) []geo.Trajectory {
	t.Helper()
	proj, train, test := goldenScenario(t)
	cfg := DefaultConfig(t.TempDir())
	cfg.Train.Steps = 200
	cfg.PyramidH = 1
	cfg.PyramidL = 2
	cfg.ThresholdK = 300
	sys, err := NewWithProjection(cfg, proj)
	if err != nil {
		t.Fatalf("NewWithProjection: %v", err)
	}
	defer sys.Close()
	if err := sys.Train(train); err != nil {
		t.Fatalf("Train: %v", err)
	}
	out := make([]geo.Trajectory, 0, len(test))
	for _, truth := range test {
		sparse := truth.Sparsify(700)
		dense, _, err := sys.Impute(sparse)
		if err != nil {
			t.Fatalf("Impute %s: %v", truth.ID, err)
		}
		out = append(out, dense)
	}
	return out
}

// TestGoldenParityFixedTokenizer asserts the default fixed-tokenizer
// imputation output is element-wise identical to the committed pre-refactor
// fixture.
func TestGoldenParityFixedTokenizer(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a system; skipped in -short")
	}
	got := goldenEncode(goldenImpute(t))
	if os.Getenv("KAMEL_UPDATE_GOLDEN") != "" {
		buf, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden fixture updated: %s (%d trajectories)", goldenPath, len(got))
		return
	}
	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden fixture (regenerate with KAMEL_UPDATE_GOLDEN=1): %v", err)
	}
	var want []goldenTraj
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("parsing golden fixture: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("trajectory count: got %d want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("trajectory %d: ID got %q want %q", i, got[i].ID, want[i].ID)
		}
		if len(got[i].Points) != len(want[i].Points) {
			t.Fatalf("trajectory %s: point count got %d want %d",
				want[i].ID, len(got[i].Points), len(want[i].Points))
		}
		for j, wp := range want[i].Points {
			gp := got[i].Points[j]
			if gp != wp {
				t.Errorf("trajectory %s point %d: got {%s %s %s} want {%s %s %s}",
					want[i].ID, j, gp.Lat, gp.Lng, gp.T, wp.Lat, wp.Lng, wp.T)
				if j > 3 {
					t.Fatal("stopping after repeated mismatches")
				}
			}
		}
	}
}

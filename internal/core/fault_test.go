package core

import (
	"os"
	"path/filepath"
	"testing"
)

// TestFaultModelQuarantineEndToEnd drives the full degradation ladder through
// the public System surface: train a partitioned system, persist it, corrupt
// one model file on disk, and check that a fresh process quarantines the bad
// file at load time yet still answers imputations.
func TestFaultModelQuarantineEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	f := newFixture(t, func(cfg *Config) {
		cfg.DisablePartitioning = false
		cfg.PyramidH = 1
		cfg.PyramidL = 2
		cfg.ThresholdK = 300
	})
	sys := trainedSystem(t, f)
	if single, _ := sys.Repo().NumModels(); single == 0 {
		t.Fatal("fixture trained no pyramid models")
	}
	if err := sys.SaveModels(); err != nil {
		t.Fatal(err)
	}

	// Flip a byte in one persisted model's payload (past the framed header).
	modelsDir := filepath.Join(f.cfg.Workdir, "models")
	matches, err := filepath.Glob(filepath.Join(modelsDir, "model-*.bin"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no persisted model files (err=%v)", err)
	}
	victim := matches[0]
	buf, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0x40
	if err := os.WriteFile(victim, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh process loads what survives and sidelines the corrupt file.
	sys2, err := New(f.cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	if err := sys2.LoadModels(); err != nil {
		t.Fatalf("LoadModels must degrade, not fail: %v", err)
	}
	st := sys2.SystemStats()
	if st.QuarantinedModels < 1 {
		t.Fatalf("QuarantinedModels = %d, want >= 1", st.QuarantinedModels)
	}
	entries, err := os.ReadDir(filepath.Join(modelsDir, "quarantine"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("quarantine dir must hold the corrupt file (err=%v, %d entries)", err, len(entries))
	}
	if _, err := os.Stat(victim); !os.IsNotExist(err) {
		t.Errorf("corrupt file must be moved out of the models dir, stat err=%v", err)
	}

	// Queries still get answers — possibly via an ancestor model or the
	// linear fallback, never an error.
	sparse := f.test[0].Sparsify(700)
	dense, stats, err := sys2.Impute(sparse)
	if err != nil {
		t.Fatalf("imputation after quarantine: %v", err)
	}
	if len(dense.Points) < len(sparse.Points) {
		t.Errorf("imputation dropped points: %d < %d", len(dense.Points), len(sparse.Points))
	}
	if stats.Segments == 0 {
		t.Error("no segments processed")
	}
	if got := sys2.SystemStats(); got.ServedSegments == 0 {
		t.Errorf("served counters not accumulated: %+v", got)
	}
}

package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kamel/internal/tokenizer"
)

// TestAdaptiveTokenizerEndToEnd trains with the density-adaptive tokenizer,
// imputes through it, and checks the frozen spec survives a save/load cycle
// in a fresh process — including one whose configuration disagrees (disk
// wins: tokens are identities, retraining must not re-derive a different
// mapping over an existing store).
func TestAdaptiveTokenizerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	f := newFixture(t, func(c *Config) {
		c.Tokenizer = TokenizerAdaptive
		c.AdaptiveSplitMin = 40 // low bar so the dense city core actually splits
		c.DisablePartitioning = false
		c.PyramidH, c.PyramidL, c.ThresholdK = 1, 2, 300
	})
	sys := trainedSystem(t, f)

	st := sys.SystemStats()
	if st.TokenizerKind != TokenizerAdaptive {
		t.Fatalf("TokenizerKind = %q, want %q", st.TokenizerKind, TokenizerAdaptive)
	}
	if st.TokenizerSpecHash == "" {
		t.Fatal("trained adaptive system must expose a spec hash")
	}
	if st.SplitCells == 0 {
		t.Error("dense synthetic city with SplitMin=40 should split at least one cell")
	}

	truth := f.test[0]
	dense, ist, err := sys.Impute(truth.Sparsify(700))
	if err != nil {
		t.Fatal(err)
	}
	if len(dense.Points) < len(truth.Sparsify(700).Points) {
		t.Errorf("imputation dropped points: %d -> %d", len(truth.Sparsify(700).Points), len(dense.Points))
	}
	if ist.Segments == 0 {
		t.Error("sparsified trajectory produced no imputation segments")
	}

	if err := sys.SaveModels(); err != nil {
		t.Fatal(err)
	}

	// Fresh process, conflicting config: the persisted spec must win.
	cfg2 := f.cfg
	cfg2.Tokenizer = TokenizerFixed
	sys2, err := NewWithProjection(cfg2, f.proj)
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	if err := sys2.LoadModels(); err != nil {
		t.Fatal(err)
	}
	tk := sys2.Tokenizer()
	if tk == nil || tk.Kind() != TokenizerAdaptive {
		t.Fatalf("disk spec must override fixed config, got %v", tk)
	}
	if got := sys2.TokenizerSpecHash(); got != st.TokenizerSpecHash {
		t.Errorf("spec hash changed across load: %q != %q", got, st.TokenizerSpecHash)
	}
	if _, _, err := sys2.Impute(truth.Sparsify(700)); err != nil {
		t.Fatalf("loaded system must impute: %v", err)
	}
}

// TestTokenizerSpecCorruptionRefusesAndQuarantines flips bytes in the
// persisted tokenizer spec and checks that loading models refuses outright —
// serving models whose token space is unknown would silently misplace every
// point — and that the corrupt file is sidelined into quarantine/ rather
// than left to trip the next process.
func TestTokenizerSpecCorruptionRefusesAndQuarantines(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	f := newFixture(t, func(c *Config) {
		c.Tokenizer = TokenizerAdaptive
		c.DisablePartitioning = false
		c.PyramidH, c.PyramidL, c.ThresholdK = 1, 2, 300
	})
	sys := trainedSystem(t, f)
	if err := sys.SaveModels(); err != nil {
		t.Fatal(err)
	}
	sys.Close()

	specPath := filepath.Join(f.cfg.Workdir, "models", tokenizer.SpecFile)
	buf, err := os.ReadFile(specPath)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0xFF
	if err := os.WriteFile(specPath, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	sys2, err := NewWithProjection(f.cfg, f.proj)
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	err = sys2.LoadModels()
	if err == nil {
		t.Fatal("corrupt tokenizer spec must refuse model loading")
	}
	if !strings.Contains(err.Error(), "quarantined") {
		t.Errorf("refusal should mention quarantine, got: %v", err)
	}
	if _, serr := os.Stat(specPath); !os.IsNotExist(serr) {
		t.Error("corrupt spec must be moved out of the models dir")
	}
	qPath := filepath.Join(f.cfg.Workdir, "models", "quarantine", tokenizer.SpecFile)
	if _, serr := os.Stat(qPath); serr != nil {
		t.Errorf("quarantined spec missing: %v", serr)
	}

	// With the poison gone, a retrain re-derives a spec and recovers.
	sys3, err := NewWithProjection(f.cfg, f.proj)
	if err != nil {
		t.Fatal(err)
	}
	defer sys3.Close()
	if err := sys3.Train(f.train[:4]); err != nil {
		t.Fatalf("retrain after quarantine must succeed: %v", err)
	}
	if sys3.TokenizerSpecHash() == "" {
		t.Error("retrained system must freeze a new spec")
	}
}

package ngram

import (
	"math"
	"testing"

	"kamel/internal/constraints"
	"kamel/internal/geo"
	"kamel/internal/grid"
	"kamel/internal/impute"
	"kamel/internal/tokenizer"
)

func mk(ids ...int) []grid.Cell {
	out := make([]grid.Cell, len(ids))
	for i, v := range ids {
		out[i] = grid.Cell(v)
	}
	return out
}

func TestPredictBridgesGap(t *testing.T) {
	m := New()
	// Corpus: 1→2→3 repeatedly, plus one 1→4.
	var seqs [][]grid.Cell
	for i := 0; i < 9; i++ {
		seqs = append(seqs, mk(1, 2, 3))
	}
	seqs = append(seqs, mk(1, 4))
	m.Train(seqs)

	cands, err := m.Predict(mk(1, 3), 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	if cands[0].Cell != 2 {
		t.Errorf("top candidate %v, want 2 (the only token between 1 and 3)", cands[0].Cell)
	}
	var sum float64
	for _, c := range cands {
		sum += c.Prob
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %f", sum)
	}
}

func TestPredictUnseenContext(t *testing.T) {
	m := New()
	m.Train([][]grid.Cell{mk(1, 2, 3)})
	// Both contexts unseen: backoff still yields unigram-supported tokens.
	cands, err := m.Predict(mk(99, 98), 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 0 {
		t.Log("backoff candidates:", cands) // allowed but not required
	}
}

func TestVocabAndTopK(t *testing.T) {
	m := New()
	m.Train([][]grid.Cell{mk(1, 2, 3, 4, 5)})
	if m.Vocab() != 5 {
		t.Errorf("vocab %d, want 5", m.Vocab())
	}
	cands, _ := m.Predict(mk(2, 4), 0, 1)
	if len(cands) > 1 {
		t.Errorf("topK not honored: %d candidates", len(cands))
	}
}

// TestDrivesImputation wires the n-gram model through the full multipoint
// imputation pipeline: a deterministic corridor corpus must be imputed
// perfectly.
func TestDrivesImputation(t *testing.T) {
	g := grid.NewHex(75)
	// Build a corridor of adjacent cells heading east.
	start := g.CellAt(geo.XY{X: 0, Y: 0})
	corridor := []grid.Cell{start}
	cur := start
	for i := 0; i < 12; i++ {
		cur = g.Neighbors(cur)[0] // east
		corridor = append(corridor, cur)
	}
	m := New()
	var seqs [][]grid.Cell
	for i := 0; i < 10; i++ {
		seqs = append(seqs, corridor)
	}
	m.Train(seqs)

	tk := tokenizer.NewFixed(g)
	ch := constraints.NewChecker(tk, 30)
	cfg := impute.DefaultConfig(tk, ch)
	cfg.Beam = 3
	req := impute.Request{S: corridor[0], D: corridor[len(corridor)-1]}
	res, err := impute.Beam(m, cfg, req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatal("corridor imputation failed")
	}
	// The imputed tokens must be exactly the corridor.
	if len(res.Tokens) != len(corridor) {
		t.Fatalf("imputed %d tokens, want %d", len(res.Tokens), len(corridor))
	}
	for i := range corridor {
		if res.Tokens[i] != corridor[i] {
			t.Fatalf("token %d = %v, want %v", i, res.Tokens[i], corridor[i])
		}
	}
}

var _ impute.Predictor = (*Model)(nil)

// Package ngram implements a count-based bidirectional Markov predictor
// over grid tokens.  It answers the same query as KAMEL's BERT — "which
// token fills the hole between this left and right context?" — from raw
// transition counts instead of a learned model.  The package serves two
// purposes called out in DESIGN.md: it isolates pipeline tests from training
// noise (a deterministic, instantly-"trained" Predictor), and it quantifies
// what the transformer buys over plain statistics
// (BenchmarkPredictorBertVsNGram).
package ngram

import (
	"sort"

	"kamel/internal/constraints"
	"kamel/internal/grid"
)

// Model holds bidirectional bigram counts: how often token b followed token
// a, and the unigram counts used for backoff.
type Model struct {
	next    map[grid.Cell]map[grid.Cell]float64 // a -> b -> count
	prev    map[grid.Cell]map[grid.Cell]float64 // b -> a -> count
	unigram map[grid.Cell]float64
	total   float64
}

// New returns an empty model.
func New() *Model {
	return &Model{
		next:    make(map[grid.Cell]map[grid.Cell]float64),
		prev:    make(map[grid.Cell]map[grid.Cell]float64),
		unigram: make(map[grid.Cell]float64),
	}
}

// Train accumulates transition counts from token sequences (consecutive
// duplicates should already be collapsed, as for BERT).
func (m *Model) Train(sequences [][]grid.Cell) {
	for _, seq := range sequences {
		for i, c := range seq {
			m.unigram[c]++
			m.total++
			if i+1 < len(seq) {
				addCount(m.next, c, seq[i+1])
				addCount(m.prev, seq[i+1], c)
			}
		}
	}
}

func addCount(table map[grid.Cell]map[grid.Cell]float64, k, v grid.Cell) {
	inner, ok := table[k]
	if !ok {
		inner = make(map[grid.Cell]float64)
		table[k] = inner
	}
	inner[v]++
}

// Vocab returns the number of distinct tokens seen.
func (m *Model) Vocab() int { return len(m.unigram) }

// Predict implements impute.Predictor: candidates for the token between
// segment[gapPos] and segment[gapPos+1], scored by the product of the
// forward probability P(t|left) and the backward probability P(t|right),
// each backed off to the unigram distribution with a small weight.
func (m *Model) Predict(segment []grid.Cell, gapPos int, topK int) ([]constraints.Candidate, error) {
	left := segment[gapPos]
	right := segment[gapPos+1]

	scores := make(map[grid.Cell]float64)
	fwd := m.next[left]
	bwd := m.prev[right]
	var fwdTotal, bwdTotal float64
	for _, c := range fwd {
		fwdTotal += c
	}
	for _, c := range bwd {
		bwdTotal += c
	}
	pFwd := func(t grid.Cell) float64 {
		const lambda = 0.9
		var p float64
		if fwdTotal > 0 {
			p = lambda * fwd[t] / fwdTotal
		}
		if m.total > 0 {
			p += (1 - lambda) * m.unigram[t] / m.total
		}
		return p
	}
	pBwd := func(t grid.Cell) float64 {
		const lambda = 0.9
		var p float64
		if bwdTotal > 0 {
			p = lambda * bwd[t] / bwdTotal
		}
		if m.total > 0 {
			p += (1 - lambda) * m.unigram[t] / m.total
		}
		return p
	}
	for t := range fwd {
		scores[t] = pFwd(t) * pBwd(t)
	}
	for t := range bwd {
		if _, seen := scores[t]; !seen {
			scores[t] = pFwd(t) * pBwd(t)
		}
	}

	out := make([]constraints.Candidate, 0, len(scores))
	var norm float64
	for t, s := range scores {
		if s > 0 {
			out = append(out, constraints.Candidate{Cell: t, Prob: s})
			norm += s
		}
	}
	if norm > 0 {
		for i := range out {
			out[i].Prob /= norm
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Prob > out[j].Prob })
	if topK > 0 && len(out) > topK {
		out = out[:topK]
	}
	return out, nil
}

package tokenizer

import (
	"kamel/internal/geo"
	"kamel/internal/grid"
)

// Fixed is the uniform-tessellation tokenizer: a thin wrapper over one
// internal/grid tessellation.  Every method delegates, so its tokens, token
// geometry, and therefore every imputation result are bit-identical to using
// the grid directly — Fixed is the refactor's parity baseline and the
// system default.
type Fixed struct {
	g    grid.Grid
	spec Spec
}

// NewFixed wraps a grid as a Tokenizer.
func NewFixed(g grid.Grid) *Fixed {
	spec := Spec{Kind: KindFixed, Grid: g.Kind(), EdgeM: g.EdgeMeters()}
	return &Fixed{g: g, spec: spec}
}

// Grid returns the underlying tessellation (tests and tooling only; serving
// code goes through the interface).
func (f *Fixed) Grid() grid.Grid { return f.g }

// Kind implements Tokenizer.
func (f *Fixed) Kind() string { return KindFixed }

// EdgeMeters implements Tokenizer.
func (f *Fixed) EdgeMeters() float64 { return f.g.EdgeMeters() }

// StepMeters implements Tokenizer.
func (f *Fixed) StepMeters() float64 { return f.g.StepMeters() }

// Tokenize implements Tokenizer.
func (f *Fixed) Tokenize(p geo.XY) Token { return f.g.CellAt(p) }

// Detokenize implements Tokenizer.
func (f *Fixed) Detokenize(t Token) geo.XY { return f.g.Centroid(t) }

// Neighbors implements Tokenizer.
func (f *Fixed) Neighbors(t Token) []Token { return f.g.Neighbors(t) }

// Distance implements Tokenizer.
func (f *Fixed) Distance(a, b Token) int { return f.g.Distance(a, b) }

// Line implements Tokenizer.
func (f *Fixed) Line(a, b Token) []Token { return f.g.Line(a, b) }

// Spec implements Tokenizer.
func (f *Fixed) Spec() Spec { return f.spec }

package tokenizer

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"kamel/internal/fsx"
	"kamel/internal/grid"
)

// Tokenizer kinds.
const (
	KindFixed    = "fixed"
	KindAdaptive = "adaptive"
)

// Spec is the complete serializable description of a tokenizer.  It is the
// unit of persistence and of replica compatibility: two processes holding
// specs with equal Hash produce identical token mappings, so their models,
// vocabularies, and stored token sequences are interchangeable.  A spec is
// written once (when the tokenizer is frozen at first training) and never
// mutated afterwards.
type Spec struct {
	// Kind is KindFixed or KindAdaptive.
	Kind string `json:"kind"`
	// Grid is the base tessellation ("hex" or "square"; adaptive requires
	// "hex").
	Grid string `json:"grid"`
	// EdgeM is the base-resolution cell edge length in meters.
	EdgeM float64 `json:"edge_m"`

	// Adaptive-only fields.  Split lists the base cells whose points
	// tokenize at the fine resolution (edge EdgeM/2); Merge lists the base
	// cells whose points tokenize at the coarse resolution (edge 2×EdgeM).
	// Both are sorted ascending, making the JSON encoding canonical.
	Split []int64 `json:"split,omitempty"`
	Merge []int64 `json:"merge,omitempty"`
}

// normalize sorts the cell sets so that equal mappings encode to equal
// bytes (and therefore equal hashes) regardless of construction order.
func (s *Spec) normalize() {
	sort.Slice(s.Split, func(i, j int) bool { return s.Split[i] < s.Split[j] })
	sort.Slice(s.Merge, func(i, j int) bool { return s.Merge[i] < s.Merge[j] })
}

// Validate reports the first problem with the spec.
func (s Spec) Validate() error {
	switch s.Kind {
	case KindFixed:
		if s.Grid != "hex" && s.Grid != "square" {
			return fmt.Errorf("tokenizer: fixed spec has unknown grid %q", s.Grid)
		}
	case KindAdaptive:
		if s.Grid != "hex" {
			return fmt.Errorf("tokenizer: adaptive spec requires a hex base grid, got %q", s.Grid)
		}
	default:
		return fmt.Errorf("tokenizer: unknown kind %q", s.Kind)
	}
	if s.EdgeM <= 0 {
		return fmt.Errorf("tokenizer: spec edge %v must be positive", s.EdgeM)
	}
	if s.Kind == KindFixed && (len(s.Split) > 0 || len(s.Merge) > 0) {
		return fmt.Errorf("tokenizer: fixed spec carries split/merge sets")
	}
	return nil
}

// canonical returns the canonical JSON encoding of the spec: fixed field
// order (Go struct order) with sorted cell sets.
func (s Spec) canonical() []byte {
	s.Split = append([]int64(nil), s.Split...)
	s.Merge = append([]int64(nil), s.Merge...)
	s.normalize()
	buf, err := json.Marshal(s)
	if err != nil {
		// Spec holds only numbers and strings; Marshal cannot fail.
		panic(fmt.Sprintf("tokenizer: encoding spec: %v", err))
	}
	return buf
}

// Hash returns the spec's compatibility fingerprint: the hex SHA-256 of its
// canonical encoding.  Anti-entropy refuses to adopt models from a peer
// whose spec hash differs — token IDs trained under a different tokenization
// are meaningless locally.
func (s Spec) Hash() string {
	sum := sha256.Sum256(s.canonical())
	return hex.EncodeToString(sum[:])
}

// New constructs the tokenizer a spec describes.  The construction is a pure
// function of the spec: the same spec always yields the same token mapping.
func New(spec Spec) (Tokenizer, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	switch spec.Kind {
	case KindFixed:
		if spec.Grid == "square" {
			return NewFixed(grid.NewSquare(spec.EdgeM)), nil
		}
		return NewFixed(grid.NewHex(spec.EdgeM)), nil
	default:
		return NewAdaptive(spec)
	}
}

// SpecFile is the filename a tokenizer spec persists under, next to the
// model manifest in the models directory: the spec and the models it
// interprets commit to the same directory, through the same atomic-rename
// fsx machinery.
const SpecFile = "tokenizer.spec"

// SaveSpec atomically writes the spec in a CRC-framed file.  Saving is
// idempotent — the spec is immutable after freeze, so rewriting it on every
// model commit is safe and keeps the pair atomic under crashes: either the
// old spec+manifest generation is visible or the new one, never a mix.
func SaveSpec(fsys fsx.FS, path string, spec Spec) error {
	return fsx.WriteFramed(fsys, path, spec.canonical())
}

// LoadSpec reads a spec written by SaveSpec.  Corruption (torn write, bit
// rot) surfaces as an error wrapping fsx.ErrCorrupt, which callers turn into
// quarantine-and-refuse: serving token IDs under the wrong tokenization
// would silently misplace every imputed point.
func LoadSpec(fsys fsx.FS, path string) (Spec, error) {
	payload, err := fsx.ReadFramed(fsys, path)
	if err != nil {
		return Spec{}, err
	}
	var spec Spec
	if err := json.Unmarshal(payload, &spec); err != nil {
		return Spec{}, fmt.Errorf("%w: %s: parsing spec: %v", fsx.ErrCorrupt, path, err)
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, fmt.Errorf("%w: %s: %v", fsx.ErrCorrupt, path, err)
	}
	return spec, nil
}

package tokenizer

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"kamel/internal/fsx"
	"kamel/internal/grid"
)

func adaptiveSpec() Spec {
	return Spec{Kind: KindAdaptive, Grid: "hex", EdgeM: 75,
		Split: []int64{int64(grid.Pack(3, -2)), int64(grid.Pack(-1, 5))},
		Merge: []int64{int64(grid.Pack(9, 9)), int64(grid.Pack(-4, -4))}}
}

// TestSpecHashCanonical proves the hash is order-insensitive over the cell
// sets (equal mappings hash equal) and content-sensitive (different mappings
// hash differently).
func TestSpecHashCanonical(t *testing.T) {
	a := adaptiveSpec()
	b := adaptiveSpec()
	b.Split[0], b.Split[1] = b.Split[1], b.Split[0]
	b.Merge[0], b.Merge[1] = b.Merge[1], b.Merge[0]
	if a.Hash() != b.Hash() {
		t.Fatal("permuting cell sets changed the hash")
	}
	c := adaptiveSpec()
	c.EdgeM = 80
	if c.Hash() == a.Hash() {
		t.Fatal("different edge, same hash")
	}
	d := adaptiveSpec()
	d.Merge = d.Merge[:1]
	if d.Hash() == a.Hash() {
		t.Fatal("different merge set, same hash")
	}
	fixedHex := NewFixed(grid.NewHex(75)).Spec()
	fixedSq := NewFixed(grid.NewSquare(75)).Spec()
	if fixedHex.Hash() == fixedSq.Hash() {
		t.Fatal("hex and square fixed specs hash equal")
	}
	if fixedHex.Hash() == a.Hash() {
		t.Fatal("fixed and adaptive specs hash equal")
	}
}

// TestSpecSaveLoadRoundTrip proves persistence reproduces the exact spec.
func TestSpecSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), SpecFile)
	want := adaptiveSpec()
	if err := SaveSpec(fsx.OS(), path, want); err != nil {
		t.Fatalf("SaveSpec: %v", err)
	}
	got, err := LoadSpec(fsx.OS(), path)
	if err != nil {
		t.Fatalf("LoadSpec: %v", err)
	}
	if got.Hash() != want.Hash() {
		t.Fatalf("round-trip changed hash:\n got %+v\nwant %+v", got, want)
	}
	if _, err := New(got); err != nil {
		t.Fatalf("loaded spec rejected by factory: %v", err)
	}
}

// TestSpecFaultInjectionSweep is the satellite persistence sweep: fail every
// mutating filesystem operation of a spec save in turn (including torn
// writes) and prove the invariant — after any crash point, LoadSpec either
// returns the previous spec intact or a clean not-exist/corrupt error, never
// a silently different mapping.
func TestSpecFaultInjectionSweep(t *testing.T) {
	for _, torn := range []bool{false, true} {
		dir := t.TempDir()
		path := filepath.Join(dir, SpecFile)
		old := NewFixed(grid.NewHex(75)).Spec()
		if err := SaveSpec(fsx.OS(), path, old); err != nil {
			t.Fatal(err)
		}
		next := adaptiveSpec()
		for failAt := 1; ; failAt++ {
			ff := fsx.NewFault(fsx.OS())
			ff.FailAt = failAt
			ff.Torn = torn
			err := SaveSpec(ff, path, next)
			if ff.Ops() < failAt {
				// The sweep walked past the last operation: the save
				// succeeded untouched.
				if err != nil {
					t.Fatalf("torn=%v failAt=%d: unexpected error %v", torn, failAt, err)
				}
				got, err := LoadSpec(fsx.OS(), path)
				if err != nil || got.Hash() != next.Hash() {
					t.Fatalf("torn=%v: final save not durable: %v", torn, err)
				}
				break
			}
			if err == nil {
				t.Fatalf("torn=%v failAt=%d: injected fault not surfaced", torn, failAt)
			}
			got, err := LoadSpec(fsx.OS(), path)
			if err != nil {
				t.Fatalf("torn=%v failAt=%d: crashed save corrupted the live spec: %v",
					torn, failAt, err)
			}
			// Atomicity: the visible spec is the complete old one or (when
			// the fault hit after the rename) the complete new one — never
			// a torn mix, which LoadSpec would reject above.
			if h := got.Hash(); h != old.Hash() && h != next.Hash() {
				t.Fatalf("torn=%v failAt=%d: crashed save left a third spec", torn, failAt)
			}
		}
	}
}

// TestSpecBitFlipQuarantines proves read-side corruption (bit rot) surfaces
// as fsx.ErrCorrupt, the signal core turns into quarantine-and-refuse.
func TestSpecBitFlipQuarantines(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, SpecFile)
	if err := SaveSpec(fsx.OS(), path, adaptiveSpec()); err != nil {
		t.Fatal(err)
	}
	ff := fsx.NewFault(fsx.OS())
	ff.FlipBitIn = SpecFile
	_, err := LoadSpec(ff, path)
	if !errors.Is(err, fsx.ErrCorrupt) {
		t.Fatalf("bit-flipped spec load: got %v, want ErrCorrupt", err)
	}
}

// TestSpecGarbageRejected proves a syntactically framed but semantically
// invalid spec (valid CRC over garbage JSON) is still refused.
func TestSpecGarbageRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), SpecFile)
	if err := fsx.WriteFramed(fsx.OS(), path, []byte(`{"kind":"mystery"}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSpec(fsx.OS(), path); !errors.Is(err, fsx.ErrCorrupt) {
		t.Fatalf("garbage spec: got %v, want ErrCorrupt", err)
	}
	if _, err := LoadSpec(fsx.OS(), filepath.Join(t.TempDir(), "absent")); err == nil || errors.Is(err, fsx.ErrCorrupt) {
		t.Fatalf("missing spec should be a plain I/O error, got %v", err)
	}
	_ = os.Remove(path)
}

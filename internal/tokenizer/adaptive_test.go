package tokenizer

import (
	"math/rand"
	"testing"

	"kamel/internal/geo"
	"kamel/internal/grid"
)

// TestAdaptiveLevelBitsNoCollision is the satellite property test for the
// token encoding: fine/coarse tokens (level tag in bits 63..58) can never
// equal a fixed-grid cell for any realistic axial coordinate, and the tagged
// packing round-trips negative coordinates exactly.
func TestAdaptiveLevelBitsNoCollision(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const coordSpan = 1 << 25 // |q| < 2^25 ≈ thousands of km at any sane edge
	for i := 0; i < 200000; i++ {
		q := int32(rng.Intn(2*coordSpan)) - coordSpan
		r := int32(rng.Intn(2*coordSpan)) - coordSpan

		// A fixed-grid cell's tag bits are q's sign extension: never a tag.
		cell := grid.Pack(q, r)
		if tag := tagOf(cell); tag != 0 && tag != levelMask {
			t.Fatalf("fixed cell (%d,%d) has tag bits %#x", q, r, tag)
		}

		// Tagged tokens carry the fine/coarse patterns, so they collide with
		// no fixed cell; and both fields round-trip, sign included.
		for _, tag := range []uint64{tagFine, tagCoarse} {
			tok := packLevel(tag, q, r)
			if got := tagOf(tok); got != tag {
				t.Fatalf("packLevel(%#x,%d,%d) read back tag %#x", tag, q, r, got)
			}
			gq, gr := unpackLevel(tok)
			if gq != q || gr != r {
				t.Fatalf("packLevel(%#x,%d,%d) round-tripped to (%d,%d)", tag, q, r, gq, gr)
			}
			if tok == Token(cell) {
				t.Fatalf("tagged token collides with fixed cell at (%d,%d)", q, r)
			}
		}
	}
	if tagFine == tagCoarse {
		t.Fatal("fine and coarse tags must differ")
	}
}

// TestAdaptiveEmptySetsMatchFixed proves an adaptive tokenizer with no split
// or merge cells is behaviourally the fixed hex tokenizer: identical tokens,
// centroids, lines, and step.
func TestAdaptiveEmptySetsMatchFixed(t *testing.T) {
	a := mustAdaptive(t, Spec{Kind: KindAdaptive, Grid: "hex", EdgeM: 75})
	f := NewFixed(grid.NewHex(75))
	if a.StepMeters() != f.StepMeters() {
		t.Errorf("step %v != fixed %v", a.StepMeters(), f.StepMeters())
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		p := geo.XY{X: rng.Float64()*10000 - 5000, Y: rng.Float64()*10000 - 5000}
		ta, tf := a.Tokenize(p), f.Tokenize(p)
		if ta != tf {
			t.Fatalf("Tokenize(%v): adaptive %v != fixed %v", p, ta, tf)
		}
		if a.Detokenize(ta) != f.Detokenize(tf) {
			t.Fatalf("Detokenize(%v) differs", ta)
		}
		b := a.Tokenize(geo.XY{X: p.X + 500, Y: p.Y - 300})
		la, lf := a.Line(ta, b), f.Line(tf, b)
		if len(la) != len(lf) {
			t.Fatalf("Line length %d != %d", len(la), len(lf))
		}
		for j := range la {
			if la[j] != lf[j] {
				t.Fatalf("Line[%d] differs", j)
			}
		}
	}
}

// adaptiveFixture builds a tokenizer with one split cell at the origin and a
// ring of merge cells a few steps east.
func adaptiveFixture(t *testing.T) (*Adaptive, grid.Cell, grid.Cell) {
	t.Helper()
	base := grid.NewHex(75)
	splitCell := base.CellAt(geo.XY{})
	mergeCell := base.CellAt(geo.XY{X: 1200, Y: 0})
	a := mustAdaptive(t, Spec{Kind: KindAdaptive, Grid: "hex", EdgeM: 75,
		Split: []int64{int64(splitCell)},
		Merge: []int64{int64(mergeCell)}})
	return a, splitCell, mergeCell
}

// TestAdaptiveLevels proves points tokenize at the level their base cell
// dictates, and that detokenization stays near the point (the centroid of
// the token's own resolution).
func TestAdaptiveLevels(t *testing.T) {
	a, splitCell, mergeCell := adaptiveFixture(t)
	base := grid.NewHex(75)
	rng := rand.New(rand.NewSource(11))
	var sawFine, sawCoarse, sawBase int
	for i := 0; i < 5000; i++ {
		p := geo.XY{X: rng.Float64()*3000 - 600, Y: rng.Float64()*1200 - 600}
		tok := a.Tokenize(p)
		switch base.CellAt(p) {
		case splitCell:
			if tagOf(tok) != tagFine {
				t.Fatalf("point %v in split cell got tag %#x", p, tagOf(tok))
			}
			sawFine++
			if d := a.Detokenize(tok).Dist(p); d > 75 {
				t.Fatalf("fine token centroid %.1fm from point", d)
			}
		case mergeCell:
			if tagOf(tok) != tagCoarse {
				t.Fatalf("point %v in merge cell got tag %#x", p, tagOf(tok))
			}
			sawCoarse++
			if d := a.Detokenize(tok).Dist(p); d > 4*75 {
				t.Fatalf("coarse token centroid %.1fm from point", d)
			}
		default:
			if tok != base.CellAt(p) {
				t.Fatalf("point %v outside both sets retokenized to %v", p, tok)
			}
			sawBase++
		}
	}
	if sawFine == 0 || sawCoarse == 0 || sawBase == 0 {
		t.Fatalf("sweep did not cover all levels: fine=%d coarse=%d base=%d",
			sawFine, sawCoarse, sawBase)
	}
	if a.SplitCells() != 1 || a.MergeCells() != 1 {
		t.Errorf("set sizes: split=%d merge=%d", a.SplitCells(), a.MergeCells())
	}
}

// TestAdaptiveLine proves lines through mixed-resolution space are pinned at
// both endpoints, never repeat consecutively, and keep consecutive tokens
// within a coarse step of each other — the contract the imputation fallback
// and gap detection rely on.
func TestAdaptiveLine(t *testing.T) {
	a, _, _ := adaptiveFixture(t)
	rng := rand.New(rand.NewSource(17))
	maxStep := a.StepMeters() * 1.05
	for i := 0; i < 500; i++ {
		pa := geo.XY{X: rng.Float64()*3000 - 600, Y: rng.Float64()*1200 - 600}
		pb := geo.XY{X: rng.Float64()*3000 - 600, Y: rng.Float64()*1200 - 600}
		ta, tb := a.Tokenize(pa), a.Tokenize(pb)
		line := a.Line(ta, tb)
		if len(line) == 0 || line[0] != ta || line[len(line)-1] != tb {
			t.Fatalf("line endpoints not pinned: %v .. %v for (%v,%v)",
				line[0], line[len(line)-1], ta, tb)
		}
		for j := 1; j < len(line); j++ {
			if line[j] == line[j-1] {
				t.Fatalf("consecutive duplicate at %d", j)
			}
			if d := CentroidDistance(a, line[j-1], line[j]); d > maxStep {
				t.Fatalf("line step %d spans %.1fm > %.1fm", j, d, maxStep)
			}
		}
		if a.Distance(ta, tb) != len(line)-1 && tagOf(ta)+tagOf(tb) != 0 {
			// Mixed-level distance is defined as line steps.
			if tagOf(ta) == tagFine || tagOf(ta) == tagCoarse ||
				tagOf(tb) == tagFine || tagOf(tb) == tagCoarse {
				t.Fatalf("Distance != len(Line)-1 for tagged pair")
			}
		}
	}
}

// TestAdaptiveNeighbors proves neighbor expansion crosses resolution
// boundaries: neighbors are distinct, exclude the token itself, and sit
// within a coarse step.
func TestAdaptiveNeighbors(t *testing.T) {
	a, splitCell, mergeCell := adaptiveFixture(t)
	base := grid.NewHex(75)
	seeds := []Token{
		a.Tokenize(base.Centroid(splitCell)),                     // fine
		a.Tokenize(base.Centroid(mergeCell)),                     // coarse
		a.Tokenize(base.Centroid(splitCell).Add(geo.XY{X: 300})), // base near boundary
	}
	for _, tok := range seeds {
		ns := a.Neighbors(tok)
		if len(ns) == 0 {
			t.Fatalf("token %v has no neighbors", tok)
		}
		seen := map[Token]bool{}
		for _, n := range ns {
			if n == tok {
				t.Fatalf("token %v is its own neighbor", tok)
			}
			if seen[n] {
				t.Fatalf("duplicate neighbor %v", n)
			}
			seen[n] = true
			if d := CentroidDistance(a, tok, n); d > a.StepMeters()*1.5 {
				t.Fatalf("neighbor %.1fm away exceeds plausible step", d)
			}
		}
	}
}

// TestBuildAdaptive pins the spec derivation: deterministic across map
// orders, hot cells split (bounded), sparse cells merged, disjoint sets.
func TestBuildAdaptive(t *testing.T) {
	counts := map[grid.Cell]uint64{}
	base := grid.NewHex(75)
	rng := rand.New(rand.NewSource(5))
	hot := base.CellAt(geo.XY{})
	counts[hot] = 10000
	for i := 0; i < 400; i++ {
		c := base.CellAt(geo.XY{X: rng.Float64() * 8000, Y: rng.Float64() * 8000})
		counts[c] += uint64(1 + rng.Intn(40))
	}
	spec := BuildAdaptive(75, counts, BuildOptions{})
	if len(spec.Split) == 0 {
		t.Fatal("hot cell not split")
	}
	foundHot := false
	for _, c := range spec.Split {
		if grid.Cell(c) == hot {
			foundHot = true
		}
	}
	if !foundHot {
		t.Fatal("hottest cell missing from split set")
	}
	if len(spec.Merge) == 0 {
		t.Fatal("no sparse cells merged")
	}
	inSplit := map[int64]bool{}
	for _, c := range spec.Split {
		inSplit[c] = true
	}
	for _, c := range spec.Merge {
		if inSplit[c] {
			t.Fatalf("cell %#x in both sets", c)
		}
	}

	// Determinism: rebuilding from a freshly-populated map (different
	// iteration order) yields the identical spec hash.
	counts2 := make(map[grid.Cell]uint64, len(counts))
	for c, n := range counts {
		counts2[c] = n
	}
	if got := BuildAdaptive(75, counts2, BuildOptions{}); got.Hash() != spec.Hash() {
		t.Fatal("BuildAdaptive is order-sensitive")
	}

	// MaxSplit bounds the split set; the hottest cell still wins a slot.
	bounded := BuildAdaptive(75, counts, BuildOptions{SplitMin: 1, MaxSplit: 3})
	if len(bounded.Split) != 3 {
		t.Fatalf("MaxSplit=3 produced %d split cells", len(bounded.Split))
	}
	foundHot = false
	for _, c := range bounded.Split {
		if grid.Cell(c) == hot {
			foundHot = true
		}
	}
	if !foundHot {
		t.Fatal("hottest cell lost its split slot under MaxSplit")
	}

	// The derived spec constructs.
	if _, err := NewAdaptive(spec); err != nil {
		t.Fatalf("derived spec rejected: %v", err)
	}
}

package tokenizer

import (
	"math/rand"
	"testing"

	"kamel/internal/geo"
	"kamel/internal/grid"
)

// TestFixedParityWithGrid proves Fixed is a transparent wrapper: every
// interface method agrees exactly with the wrapped grid over a random point
// and cell sweep, for both tessellations.  This is the foundation of the
// refactor's parity guarantee — with identical tokens and token geometry,
// the downstream pipeline cannot diverge.
func TestFixedParityWithGrid(t *testing.T) {
	grids := []grid.Grid{grid.NewHex(75), grid.NewSquare(100)}
	rng := rand.New(rand.NewSource(42))
	for _, g := range grids {
		f := NewFixed(g)
		if f.Kind() != KindFixed {
			t.Errorf("%s: Kind = %q", g.Kind(), f.Kind())
		}
		if f.EdgeMeters() != g.EdgeMeters() || f.StepMeters() != g.StepMeters() {
			t.Errorf("%s: edge/step mismatch", g.Kind())
		}
		for i := 0; i < 2000; i++ {
			p := geo.XY{X: rng.Float64()*20000 - 10000, Y: rng.Float64()*20000 - 10000}
			if f.Tokenize(p) != g.CellAt(p) {
				t.Fatalf("%s: Tokenize(%v) != CellAt", g.Kind(), p)
			}
			a, b := g.CellAt(p), g.CellAt(geo.XY{X: p.X + rng.Float64()*1000, Y: p.Y - rng.Float64()*1000})
			if f.Detokenize(a) != g.Centroid(a) {
				t.Fatalf("%s: Detokenize(%v) != Centroid", g.Kind(), a)
			}
			if f.Distance(a, b) != g.Distance(a, b) {
				t.Fatalf("%s: Distance mismatch", g.Kind())
			}
			la, lb := f.Line(a, b), g.Line(a, b)
			if len(la) != len(lb) {
				t.Fatalf("%s: Line length mismatch", g.Kind())
			}
			for j := range la {
				if la[j] != lb[j] {
					t.Fatalf("%s: Line[%d] mismatch", g.Kind(), j)
				}
			}
			na, nb := f.Neighbors(a), g.Neighbors(a)
			if len(na) != len(nb) {
				t.Fatalf("%s: Neighbors length mismatch", g.Kind())
			}
			for j := range na {
				if na[j] != nb[j] {
					t.Fatalf("%s: Neighbors[%d] mismatch", g.Kind(), j)
				}
			}
		}
	}
}

// TestNewFromSpec proves the factory reproduces each tokenizer from its own
// spec: same kind, same hash, same token mapping.
func TestNewFromSpec(t *testing.T) {
	base := []Tokenizer{
		NewFixed(grid.NewHex(75)),
		NewFixed(grid.NewSquare(120)),
		mustAdaptive(t, Spec{Kind: KindAdaptive, Grid: "hex", EdgeM: 75,
			Split: []int64{int64(grid.Pack(2, -1))}, Merge: []int64{int64(grid.Pack(-3, 4))}}),
	}
	rng := rand.New(rand.NewSource(7))
	for _, tk := range base {
		rebuilt, err := New(tk.Spec())
		if err != nil {
			t.Fatalf("New(%+v): %v", tk.Spec(), err)
		}
		if rebuilt.Kind() != tk.Kind() {
			t.Errorf("kind %q != %q", rebuilt.Kind(), tk.Kind())
		}
		if rebuilt.Spec().Hash() != tk.Spec().Hash() {
			t.Errorf("%s: hash changed across factory round-trip", tk.Kind())
		}
		for i := 0; i < 500; i++ {
			p := geo.XY{X: rng.Float64()*2000 - 1000, Y: rng.Float64()*2000 - 1000}
			if rebuilt.Tokenize(p) != tk.Tokenize(p) {
				t.Fatalf("%s: rebuilt tokenizer maps %v differently", tk.Kind(), p)
			}
		}
	}
}

func mustAdaptive(t *testing.T, spec Spec) *Adaptive {
	t.Helper()
	a, err := NewAdaptive(spec)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestNewRejectsInvalidSpecs pins the validation surface.
func TestNewRejectsInvalidSpecs(t *testing.T) {
	bad := []Spec{
		{Kind: "mystery", Grid: "hex", EdgeM: 75},
		{Kind: KindFixed, Grid: "triangle", EdgeM: 75},
		{Kind: KindFixed, Grid: "hex", EdgeM: 0},
		{Kind: KindAdaptive, Grid: "square", EdgeM: 75},
		{Kind: KindFixed, Grid: "hex", EdgeM: 75, Split: []int64{1}},
	}
	for _, spec := range bad {
		if _, err := New(spec); err == nil {
			t.Errorf("New(%+v) accepted an invalid spec", spec)
		}
	}
	// Overlapping split/merge sets are rejected at construction.
	c := int64(grid.Pack(1, 1))
	if _, err := NewAdaptive(Spec{Kind: KindAdaptive, Grid: "hex", EdgeM: 75,
		Split: []int64{c}, Merge: []int64{c}}); err == nil {
		t.Error("overlapping split/merge sets accepted")
	}
}

package tokenizer

import (
	"sort"

	"kamel/internal/grid"
)

// BuildOptions tunes the adaptive spec derivation.  Zero values select
// data-driven defaults.
type BuildOptions struct {
	// SplitMin is the training-occurrence count at or above which a base
	// cell is split into fine sub-cells.  0 = automatic: 4× the mean count
	// per occupied cell.
	SplitMin int
	// MergeMax is the count at or below which a base cell merges into its
	// coarse super-cell.  0 = automatic: a quarter of the mean (at least 1).
	// Negative disables merging.
	MergeMax int
	// MaxSplit bounds the split set, keeping the multi-resolution token set
	// bounded no matter how skewed the data; the hottest cells win.
	// 0 = default 256.
	MaxSplit int
}

// BuildAdaptive derives an adaptive spec from base-cell occurrence counts of
// a training corpus.  The derivation is deterministic: thresholds are pure
// functions of the counts, and ties order by cell ID — the same corpus
// always freezes the same spec (replicas fan the same batches out, so every
// replica derives the same hash).
func BuildAdaptive(edgeM float64, counts map[grid.Cell]uint64, opts BuildOptions) Spec {
	spec := Spec{Kind: KindAdaptive, Grid: "hex", EdgeM: edgeM}
	if len(counts) == 0 {
		return spec
	}
	var total uint64
	for _, n := range counts {
		total += n
	}
	mean := float64(total) / float64(len(counts))

	splitMin := float64(opts.SplitMin)
	if opts.SplitMin <= 0 {
		splitMin = 4 * mean
	}
	mergeMax := float64(opts.MergeMax)
	if opts.MergeMax == 0 {
		mergeMax = mean / 4
		if mergeMax < 1 {
			mergeMax = 1
		}
	}
	maxSplit := opts.MaxSplit
	if maxSplit <= 0 {
		maxSplit = 256
	}

	type cc struct {
		cell  grid.Cell
		count uint64
	}
	hot := make([]cc, 0, len(counts))
	for c, n := range counts {
		if float64(n) >= splitMin {
			hot = append(hot, cc{c, n})
		}
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].count != hot[j].count {
			return hot[i].count > hot[j].count
		}
		return hot[i].cell < hot[j].cell
	})
	if len(hot) > maxSplit {
		hot = hot[:maxSplit]
	}
	inSplit := make(map[grid.Cell]struct{}, len(hot))
	for _, h := range hot {
		spec.Split = append(spec.Split, int64(h.cell))
		inSplit[h.cell] = struct{}{}
	}
	// A cell can qualify for both sets under pathological explicit
	// thresholds; splitting wins so the sets stay disjoint.
	for c, n := range counts {
		if _, split := inSplit[c]; split {
			continue
		}
		if opts.MergeMax >= 0 && float64(n) <= mergeMax {
			spec.Merge = append(spec.Merge, int64(c))
		}
	}
	spec.normalize()
	return spec
}

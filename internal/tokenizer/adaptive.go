package tokenizer

import (
	"fmt"
	"math"

	"kamel/internal/geo"
	"kamel/internal/grid"
)

// Adaptive is a density-adaptive multi-resolution hex tokenizer (the TrajTok
// direction of PAPERS.md): a base tessellation of edge E whose hottest cells
// are split into a finer tessellation (edge E/2) and whose sparsest cells
// are merged into a coarser one (edge 2E).  Splitting hot cells gives the
// model spatial resolution where trajectories concentrate; merging sparse
// cells pools thin training data into fewer tokens, raising the paper's
// training-data factor where a uniform grid would scatter it.
//
// A token's resolution level is packed into the spare high bits of the
// 64-bit cell encoding (see the level-tag constants), so adaptive tokens
// flow through every existing Token/grid.Cell-typed surface — the store,
// vocabularies, model bundles — unchanged.  Base-level adaptive tokens are
// bit-identical to the fixed grid's cells.
//
// The split and merge sets are derived from training data once (internal/
// core freezes the spec at first training) and immutable afterwards; the
// mapping is a pure function of the spec.
type Adaptive struct {
	base   *grid.Hex // edge E; also the level tokens outside both sets use
	fine   *grid.Hex // edge E/2, for split cells
	coarse *grid.Hex // edge 2E, for merge cells
	split  map[grid.Cell]struct{}
	merge  map[grid.Cell]struct{}
	spec   Spec
}

// Level tags occupy bits 63..58 of an adaptive token.  A fixed-grid cell
// packs its q coordinate into the high 32 bits, so for any realistic |q|
// (below 2^25 — thousands of kilometers from the projection origin at any
// sane edge length) those six bits are the sign extension: all zeros or all
// ones.  The tags are chosen to be neither, so fine and coarse tokens can
// never collide with a base cell (TestAdaptiveLevelBitsNoCollision).
const (
	levelShift = 58
	levelMask  = 0x3F
	tagFine    = 0x15 // 0b010101
	tagCoarse  = 0x2A // 0b101010

	// Tagged tokens carry their axial coordinates as two 29-bit two's-
	// complement fields.
	coordBits = 29
	coordMask = 1<<coordBits - 1
)

// packLevel encodes axial coordinates of a non-base level under a tag.
func packLevel(tag uint64, q, r int32) Token {
	u := tag<<levelShift |
		(uint64(uint32(q))&coordMask)<<coordBits |
		uint64(uint32(r))&coordMask
	return Token(u)
}

// unpackLevel decodes the axial coordinates of a tagged token.
func unpackLevel(t Token) (int32, int32) {
	u := uint64(t)
	q := int32(int64(u>>coordBits&coordMask<<(64-coordBits)) >> (64 - coordBits))
	r := int32(int64(u&coordMask<<(64-coordBits)) >> (64 - coordBits))
	return q, r
}

// tagOf extracts the level-tag bits.
func tagOf(t Token) uint64 { return uint64(t) >> levelShift & levelMask }

// NewAdaptive constructs the tokenizer an adaptive spec describes.
func NewAdaptive(spec Spec) (*Adaptive, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Kind != KindAdaptive {
		return nil, fmt.Errorf("tokenizer: NewAdaptive given %q spec", spec.Kind)
	}
	a := &Adaptive{
		base:   grid.NewHex(spec.EdgeM),
		fine:   grid.NewHex(spec.EdgeM / 2),
		coarse: grid.NewHex(spec.EdgeM * 2),
		split:  make(map[grid.Cell]struct{}, len(spec.Split)),
		merge:  make(map[grid.Cell]struct{}, len(spec.Merge)),
	}
	for _, c := range spec.Split {
		if tag := tagOf(Token(c)); tag == tagFine || tag == tagCoarse {
			return nil, fmt.Errorf("tokenizer: split set entry %#x is not a base cell", c)
		}
		a.split[grid.Cell(c)] = struct{}{}
	}
	for _, c := range spec.Merge {
		if tag := tagOf(Token(c)); tag == tagFine || tag == tagCoarse {
			return nil, fmt.Errorf("tokenizer: merge set entry %#x is not a base cell", c)
		}
		if _, dup := a.split[grid.Cell(c)]; dup {
			return nil, fmt.Errorf("tokenizer: cell %#x in both split and merge sets", c)
		}
		a.merge[grid.Cell(c)] = struct{}{}
	}
	spec.Split = append([]int64(nil), spec.Split...)
	spec.Merge = append([]int64(nil), spec.Merge...)
	spec.normalize()
	a.spec = spec
	return a, nil
}

// Kind implements Tokenizer.
func (a *Adaptive) Kind() string { return KindAdaptive }

// EdgeMeters implements Tokenizer: the base-resolution edge.
func (a *Adaptive) EdgeMeters() float64 { return a.base.EdgeMeters() }

// StepMeters implements Tokenizer.  With a non-empty merge set, two adjacent
// coarse tokens sit a coarse step apart, so the clamp floor must admit them;
// without merges the base step is the worst case (fine tokens are closer).
func (a *Adaptive) StepMeters() float64 {
	if len(a.merge) > 0 {
		return a.coarse.StepMeters()
	}
	return a.base.StepMeters()
}

// SplitCells and MergeCells report the multi-resolution set sizes (stats).
func (a *Adaptive) SplitCells() int { return len(a.split) }
func (a *Adaptive) MergeCells() int { return len(a.merge) }

// Tokenize implements Tokenizer: the base cell decides the resolution level,
// then the point is addressed in that level's tessellation.
func (a *Adaptive) Tokenize(p geo.XY) Token {
	c := a.base.CellAt(p)
	if _, ok := a.split[c]; ok {
		q, r := grid.Unpack(a.fine.CellAt(p))
		return packLevel(tagFine, q, r)
	}
	if _, ok := a.merge[c]; ok {
		q, r := grid.Unpack(a.coarse.CellAt(p))
		return packLevel(tagCoarse, q, r)
	}
	return c
}

// Detokenize implements Tokenizer.
func (a *Adaptive) Detokenize(t Token) geo.XY {
	switch tagOf(t) {
	case tagFine:
		q, r := unpackLevel(t)
		return a.fine.Centroid(grid.Pack(q, r))
	case tagCoarse:
		q, r := unpackLevel(t)
		return a.coarse.Centroid(grid.Pack(q, r))
	default:
		return a.base.Centroid(t)
	}
}

// levelGridCell returns the token's level tessellation and its cell address
// within it.
func (a *Adaptive) levelGridCell(t Token) (*grid.Hex, grid.Cell) {
	switch tagOf(t) {
	case tagFine:
		q, r := unpackLevel(t)
		return a.fine, grid.Pack(q, r)
	case tagCoarse:
		q, r := unpackLevel(t)
		return a.coarse, grid.Pack(q, r)
	default:
		return a.base, t
	}
}

// Neighbors implements Tokenizer: the six same-level geometric neighbors,
// re-tokenized (a neighbor across a resolution boundary lands in its own
// level), deduplicated, with t itself dropped.
func (a *Adaptive) Neighbors(t Token) []Token {
	g, c := a.levelGridCell(t)
	out := make([]Token, 0, 6)
	for _, n := range g.Neighbors(c) {
		tok := a.Tokenize(g.Centroid(n))
		if tok == t {
			continue
		}
		dup := false
		for _, seen := range out {
			if seen == tok {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, tok)
		}
	}
	return out
}

// Distance implements Tokenizer.  Same-level base pairs use the exact hex
// cube distance (identical to the fixed grid); mixed-level pairs count steps
// along the sampled line.
func (a *Adaptive) Distance(ta, tb Token) int {
	if tagOf(ta) != tagFine && tagOf(ta) != tagCoarse &&
		tagOf(tb) != tagFine && tagOf(tb) != tagCoarse {
		return a.base.Distance(ta, tb)
	}
	return len(a.Line(ta, tb)) - 1
}

// Line implements Tokenizer.  Base-to-base lines delegate to the exact hex
// line algorithm; lines touching a split or merge region sample the planar
// segment at a quarter of the fine edge — dense enough that no crossed token
// is skipped — and deduplicate consecutive repeats.  Endpoints are pinned:
// re-tokenizing a centroid near a resolution boundary may land outside the
// endpoint's own token, so both ends are forced rather than derived.
func (a *Adaptive) Line(ta, tb Token) []Token {
	aBase := tagOf(ta) != tagFine && tagOf(ta) != tagCoarse
	bBase := tagOf(tb) != tagFine && tagOf(tb) != tagCoarse
	if aBase && bBase && len(a.split) == 0 && len(a.merge) == 0 {
		return a.base.Line(ta, tb)
	}
	if ta == tb {
		return []Token{ta}
	}
	from, to := a.Detokenize(ta), a.Detokenize(tb)
	dist := from.Dist(to)
	pitch := a.fine.EdgeMeters() / 4
	n := int(math.Ceil(dist/pitch)) + 1
	out := []Token{ta}
	for i := 1; i < n; i++ {
		f := float64(i) / float64(n)
		tok := a.Tokenize(geo.XY{X: from.X + (to.X-from.X)*f, Y: from.Y + (to.Y-from.Y)*f})
		if tok != out[len(out)-1] && tok != tb {
			out = append(out, tok)
		}
	}
	return append(out, tb)
}

// Spec implements Tokenizer.
func (a *Adaptive) Spec() Spec { return a.spec }

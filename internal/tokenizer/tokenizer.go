// Package tokenizer decouples KAMEL's spatial tokenization (paper §3) from
// the rest of the system.  The paper's Tokenization module exists to raise
// the training-data factor — the average number of training occurrences per
// token — and a fixed-edge tessellation is only one way to do that.  This
// package puts the token mapping behind an interface with a serializable
// spec, so the vocabulary, imputation search, constraints, detokenization,
// and persistence layers all speak "tokens" without knowing how points
// became tokens.
//
// Two implementations exist:
//
//   - Fixed wraps the hex/square grids of internal/grid unchanged — it is
//     bit-identical to the pre-interface behaviour and is the parity
//     baseline (and the default).
//   - Adaptive is a data-driven multi-resolution hex tokenization in the
//     TrajTok spirit: hot base cells split into finer sub-cells, sparse
//     base cells merge into coarser super-cells, with the resolution level
//     packed into spare bits of the existing 64-bit cell encoding.
//
// Cluster routing (internal/cluster) keeps its own coarse hex shard keys
// built directly on internal/grid; it is deliberately NOT behind this
// interface, so retokenizing a deployment never moves shard boundaries.
package tokenizer

import (
	"kamel/internal/geo"
	"kamel/internal/grid"
)

// Token is a spatial token: what trajectories tokenize into and what BERT
// vocabularies key on.  It is an alias (not a defined type) for grid.Cell,
// so every persisted format — the trajectory store, vocabularies, model
// bundles — keeps its exact binary layout, and fixed-tokenizer tokens are
// the very same values the raw grids produce.
type Token = grid.Cell

// Tokenizer maps planar points to spatial tokens and back, and exposes the
// token-space geometry the imputation search and the constraints module
// need.  Implementations are immutable after construction and safe for
// concurrent use.
type Tokenizer interface {
	// Kind identifies the tokenization scheme ("fixed" or "adaptive").
	Kind() string
	// EdgeMeters returns the base-resolution cell edge length, the scale
	// used for constraint slack.
	EdgeMeters() float64
	// StepMeters returns the maximum centroid distance between two tokens
	// at token distance 1.  Consumers clamp meter-valued gap thresholds to
	// at least this, since no two distinct adjacent tokens can be closer
	// (the paper's Figure 6 measures max_gap in token steps for the same
	// reason).
	StepMeters() float64
	// Tokenize returns the token containing the planar point p.
	Tokenize(p geo.XY) Token
	// Detokenize returns the token's centroid in the planar frame — the
	// geometric fallback position; internal/detok refines it with learned
	// clusters.
	Detokenize(t Token) geo.XY
	// Neighbors returns the tokens adjacent to t, in a fixed order.
	Neighbors(t Token) []Token
	// Distance returns the minimum number of neighbor steps between a and b.
	Distance(a, b Token) int
	// Line returns the tokens crossed by the straight segment from a to b,
	// inclusive of both endpoints, in order.
	Line(a, b Token) []Token
	// Spec returns the serializable description of this tokenizer.
	// Constructing a tokenizer from the returned spec (New) reproduces the
	// exact token mapping; its Hash is the compatibility fingerprint
	// replicas compare before adopting each other's models.
	Spec() Spec
}

// CentroidDistance returns the planar distance between two token centroids.
func CentroidDistance(tk Tokenizer, a, b Token) float64 {
	return tk.Detokenize(a).Dist(tk.Detokenize(b))
}

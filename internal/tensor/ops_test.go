package tensor

import (
	"math"
	"testing"
)

func TestSoftmaxInPlace(t *testing.T) {
	v := []float32{1, 2, 3}
	SoftmaxInPlace(v)
	var sum float32
	for i := 1; i < len(v); i++ {
		if v[i] <= v[i-1] {
			t.Error("softmax must preserve order")
		}
	}
	for _, x := range v {
		sum += x
	}
	if math.Abs(float64(sum)-1) > 1e-6 {
		t.Errorf("softmax sum = %f, want 1", sum)
	}
}

func TestSoftmaxStability(t *testing.T) {
	// Large logits must not overflow.
	v := []float32{1000, 1001, 1002}
	SoftmaxInPlace(v)
	for _, x := range v {
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			t.Fatal("softmax overflowed on large logits")
		}
	}
	SoftmaxInPlace(nil) // must not panic
}

func TestSoftmaxRows(t *testing.T) {
	m := FromSlice(2, 3, []float32{1, 2, 3, 3, 2, 1})
	SoftmaxRows(m)
	for i := 0; i < 2; i++ {
		var sum float32
		for _, x := range m.Row(i) {
			sum += x
		}
		if math.Abs(float64(sum)-1) > 1e-6 {
			t.Errorf("row %d sum = %f", i, sum)
		}
	}
}

func TestLogSumExp(t *testing.T) {
	got := LogSumExp([]float32{0, 0})
	if math.Abs(got-math.Log(2)) > 1e-6 {
		t.Errorf("LogSumExp([0,0]) = %f, want ln2", got)
	}
	// Stability for huge values.
	got = LogSumExp([]float32{1e4, 1e4})
	if math.Abs(got-(1e4+math.Log(2))) > 1e-2 {
		t.Errorf("LogSumExp stability: got %f", got)
	}
	if !math.IsInf(LogSumExp(nil), -1) {
		t.Error("LogSumExp(nil) must be -Inf")
	}
}

func TestGELUValues(t *testing.T) {
	x := []float32{-3, -1, 0, 1, 3}
	y := make([]float32, len(x))
	GELU(y, x)
	// gelu(0)=0; gelu is close to identity for large positive x; close to 0
	// for large negative x; gelu(1) ≈ 0.8412.
	if y[2] != 0 {
		t.Errorf("gelu(0) = %f", y[2])
	}
	if math.Abs(float64(y[3])-0.8412) > 0.01 {
		t.Errorf("gelu(1) = %f, want ~0.8412", y[3])
	}
	if math.Abs(float64(y[4])-3) > 0.01 {
		t.Errorf("gelu(3) = %f, want ~3", y[4])
	}
	if math.Abs(float64(y[0])) > 0.01 {
		t.Errorf("gelu(-3) = %f, want ~0", y[0])
	}
}

func TestGELUBackwardNumerical(t *testing.T) {
	// Check the analytic derivative against central finite differences.
	xs := []float32{-2, -0.5, 0, 0.3, 1.7}
	dy := []float32{1, 1, 1, 1, 1}
	dx := make([]float32, len(xs))
	GELUBackward(dx, dy, xs)
	const h = 1e-3
	for i, x := range xs {
		lo := []float32{x - h}
		hi := []float32{x + h}
		ylo := make([]float32, 1)
		yhi := make([]float32, 1)
		GELU(ylo, lo)
		GELU(yhi, hi)
		num := (float64(yhi[0]) - float64(ylo[0])) / (2 * h)
		if math.Abs(num-float64(dx[i])) > 1e-3 {
			t.Errorf("gelu'(%f): analytic %f vs numeric %f", x, dx[i], num)
		}
	}
}

func TestLayerNormForward(t *testing.T) {
	x := FromSlice(1, 4, []float32{1, 2, 3, 4})
	y := NewMat(1, 4)
	xhat := NewMat(1, 4)
	g := []float32{1, 1, 1, 1}
	b := []float32{0, 0, 0, 0}
	LayerNormForward(y, xhat, x, g, b, 1e-5)
	var mean, sq float64
	for _, v := range y.Row(0) {
		mean += float64(v)
	}
	mean /= 4
	for _, v := range y.Row(0) {
		sq += (float64(v) - mean) * (float64(v) - mean)
	}
	if math.Abs(mean) > 1e-5 {
		t.Errorf("normalized mean = %f", mean)
	}
	if math.Abs(sq/4-1) > 1e-3 {
		t.Errorf("normalized variance = %f", sq/4)
	}
	// Gain and bias must be applied.
	g2 := []float32{2, 2, 2, 2}
	b2 := []float32{1, 1, 1, 1}
	y2 := NewMat(1, 4)
	LayerNormForward(y2, xhat, x, g2, b2, 1e-5)
	for j := 0; j < 4; j++ {
		want := y.At(0, j)*2 + 1
		if math.Abs(float64(y2.At(0, j)-want)) > 1e-5 {
			t.Errorf("gain/bias not applied at %d", j)
		}
	}
}

func TestLayerNormBackwardNumerical(t *testing.T) {
	// Compare the analytic layer-norm input gradient against finite
	// differences of a scalar loss L = sum(w ⊙ y).
	rng := NewRNG(11)
	const n = 6
	x := NewMat(2, n)
	NormalInit(x, 1, rng)
	g := make([]float32, n)
	b := make([]float32, n)
	w := NewMat(2, n) // loss weights = upstream gradient
	for j := 0; j < n; j++ {
		g[j] = 1 + float32(j)*0.1
		b[j] = float32(j) * 0.05
	}
	NormalInit(w, 1, rng)

	loss := func(x *Mat) float64 {
		y := NewMat(2, n)
		xh := NewMat(2, n)
		LayerNormForward(y, xh, x, g, b, 1e-5)
		var sum float64
		for i := range y.A {
			sum += float64(y.A[i]) * float64(w.A[i])
		}
		return sum
	}

	y := NewMat(2, n)
	xhat := NewMat(2, n)
	LayerNormForward(y, xhat, x, g, b, 1e-5)
	dx := NewMat(2, n)
	dg := make([]float32, n)
	db := make([]float32, n)
	LayerNormBackward(dx, w, xhat, x, g, dg, db, 1e-5)

	const h = 1e-2
	for i := range x.A {
		orig := x.A[i]
		x.A[i] = orig + h
		up := loss(x)
		x.A[i] = orig - h
		down := loss(x)
		x.A[i] = orig
		num := (up - down) / (2 * h)
		if math.Abs(num-float64(dx.A[i])) > 5e-2 {
			t.Errorf("dx[%d]: analytic %f vs numeric %f", i, dx.A[i], num)
		}
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize f(p) = sum((p - target)^2); Adam should drive p to target.
	target := []float32{3, -2, 0.5, 7}
	p := NewMat(1, 4)
	g := NewMat(1, 4)
	opt := NewAdam(0.1)
	opt.WeightDecay = 0
	for step := 0; step < 2000; step++ {
		for j := range p.A {
			g.A[j] = 2 * (p.A[j] - target[j])
		}
		opt.Step([]*Mat{p}, []*Mat{g})
	}
	for j := range p.A {
		if math.Abs(float64(p.A[j]-target[j])) > 0.01 {
			t.Errorf("param %d = %f, want %f", j, p.A[j], target[j])
		}
	}
	if opt.StepCount() != 2000 {
		t.Errorf("StepCount = %d", opt.StepCount())
	}
}

func TestAdamClipNorm(t *testing.T) {
	p := NewMat(1, 2)
	g := FromSlice(1, 2, []float32{30, 40}) // norm 50
	opt := NewAdam(0.001)
	opt.ClipNorm = 5
	opt.Step([]*Mat{p}, []*Mat{g})
	// Gradient must have been scaled in place to norm 5.
	norm := math.Hypot(float64(g.A[0]), float64(g.A[1]))
	if math.Abs(norm-5) > 1e-4 {
		t.Errorf("clipped gradient norm = %f, want 5", norm)
	}
}

package tensor

import "math"

// RNG is a small deterministic pseudo-random generator (xorshift64*),
// self-contained so that weight initialization and masking are reproducible
// bit-for-bit across runs and platforms.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (0 is remapped to a fixed
// nonzero constant, since xorshift cannot leave the zero state).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0, n).  It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *RNG) NormFloat64() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// XavierInit fills m with zero-mean normal values scaled by
// sqrt(2/(fanIn+fanOut)), the initialization BERT-family models use for
// projection weights.
func XavierInit(m *Mat, rng *RNG) {
	std := math.Sqrt(2 / float64(m.R+m.C))
	for i := range m.A {
		m.A[i] = float32(rng.NormFloat64() * std)
	}
}

// NormalInit fills m with zero-mean normal values with the given standard
// deviation (BERT uses 0.02 for embeddings).
func NormalInit(m *Mat, std float64, rng *RNG) {
	for i := range m.A {
		m.A[i] = float32(rng.NormFloat64() * std)
	}
}

package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Persistent worker pool for the parallel kernels.
//
// The training kernels used to spawn goroutines per matmul; at serving rates
// (hundreds of engine passes per second, each issuing several matmuls per
// layer) that is a steady churn of goroutine startups on the hot path.  The
// pool below starts GOMAXPROCS workers once, on the first parallel dispatch,
// and feeds them row chunks through a channel.
//
// Nested dispatch is the load-bearing case: bert's batched attention runs
// whole sequences on pool workers, and each sequence issues MatMul/MatMulBT
// calls that dispatch through this same pool once the model is large enough
// to cross the parallel threshold.  Two rules keep that deadlock-free:
//
//  1. Submission never blocks — a chunk that cannot be enqueued without
//     blocking runs inline on the submitter.
//  2. Waiting never idles — a submitter waiting for its chunks executes
//     other queued chunks (its own or other dispatches') instead of parking.
//     A pool worker that dispatched nested work therefore remains a queue
//     consumer, so queued chunks always have at least one active drainer
//     and every dispatch makes progress.
//
// Rule 2 is what the old implementation was missing: workers that enqueued
// nested subtasks into a non-full buffer and then parked in wg.Wait left
// nobody to drain the queue, hanging every engine pass.

// parallelThreshold is the approximate number of multiply-adds below which a
// kernel runs single-threaded; spawning parallel work for tiny products
// costs more than it saves.
const parallelThreshold = 64 * 64 * 64

// maxWorkers caps the chunks a single kernel fans out to.  It is a variable
// so tests on small machines can force the parallel path.
var maxWorkers = runtime.GOMAXPROCS(0)

// dispatch tracks one ParallelRows call's outstanding chunks.  The count is
// fixed before any chunk is published, so it strictly decreases and done
// closes exactly once, when the last chunk finishes.
type dispatch struct {
	pending atomic.Int64
	done    chan struct{}
}

func (d *dispatch) finish() {
	if d.pending.Add(-1) == 0 {
		close(d.done)
	}
}

// poolTask is one row chunk handed to a pool worker.
type poolTask struct {
	fn     func(lo, hi int)
	lo, hi int
	d      *dispatch
}

func (t poolTask) run() {
	t.fn(t.lo, t.hi)
	t.d.finish()
}

var (
	poolOnce  sync.Once
	poolTasks chan poolTask
)

// ensurePool starts the workers on first use.  Pool size is fixed at the
// maxWorkers value of the first dispatch; chunks beyond it queue (or run
// inline on the submitter), so a later larger maxWorkers stays correct.
func ensurePool() {
	poolOnce.Do(func() {
		n := maxWorkers
		if n < 1 {
			n = 1
		}
		poolTasks = make(chan poolTask, 8*n)
		for i := 0; i < n; i++ {
			go func() {
				for t := range poolTasks {
					t.run()
				}
			}()
		}
	})
}

// ParallelRows splits rows [0, n) across the worker pool and runs
// fn(lo, hi) on each chunk, or inline when the work is too small to be worth
// sharing (n*flopsPerRow under the parallel threshold, or a single-core
// process).  fn must be safe to run concurrently on disjoint chunks.  The
// caller executes the first chunk itself, then helps drain the task queue
// until its remaining chunks finish — so ParallelRows may be called from
// inside a ParallelRows chunk (nested kernels) without deadlocking the pool.
func ParallelRows(n int, flopsPerRow int, fn func(lo, hi int)) {
	if n == 0 {
		return
	}
	workers := maxWorkers
	if workers > n {
		workers = n
	}
	if workers <= 1 || n*flopsPerRow < parallelThreshold {
		fn(0, n)
		return
	}
	ensurePool()
	chunk := (n + workers - 1) / workers
	d := &dispatch{done: make(chan struct{})}
	// Count every chunk — including the caller's own — before publishing
	// any, so pending cannot hit zero (closing done) while chunks are still
	// being handed out.
	d.pending.Store(int64((n + chunk - 1) / chunk))
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		select {
		case poolTasks <- poolTask{fn: fn, lo: lo, hi: hi, d: d}:
		default:
			// Pool saturated: run the chunk on the caller rather than block.
			fn(lo, hi)
			d.finish()
		}
	}
	fn(0, chunk) // the caller's own share
	d.finish()
	// Help-drain wait: execute queued chunks (whichever dispatch they belong
	// to) until this dispatch completes.  Blocking here without consuming
	// would deadlock nested dispatch; a stolen chunk from another dispatch
	// only delays this return by bounded useful work.
	for d.pending.Load() > 0 {
		select {
		case t := <-poolTasks:
			t.run()
		case <-d.done:
		}
	}
}

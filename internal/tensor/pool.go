package tensor

import (
	"runtime"
	"sync"
)

// Persistent worker pool for the parallel kernels.
//
// The training kernels used to spawn goroutines per matmul; at serving rates
// (hundreds of engine passes per second, each issuing several matmuls per
// layer) that is a steady churn of goroutine startups on the hot path.  The
// pool below starts GOMAXPROCS workers once, on the first parallel dispatch,
// and feeds them row chunks through a channel.  Submission never blocks: if
// every worker is busy (including the nested case where a pooled worker
// itself dispatches a parallel kernel), the chunk runs inline on the caller,
// so the pool cannot deadlock and the caller always contributes its own
// share of the work.

// parallelThreshold is the approximate number of multiply-adds below which a
// kernel runs single-threaded; spawning parallel work for tiny products
// costs more than it saves.
const parallelThreshold = 64 * 64 * 64

// maxWorkers caps the chunks a single kernel fans out to.  It is a variable
// so tests on small machines can force the parallel path.
var maxWorkers = runtime.GOMAXPROCS(0)

// poolTask is one row chunk handed to a pool worker.
type poolTask struct {
	fn     func(lo, hi int)
	lo, hi int
	wg     *sync.WaitGroup
}

var (
	poolOnce  sync.Once
	poolTasks chan poolTask
)

// ensurePool starts the workers on first use.  Pool size is fixed at the
// maxWorkers value of the first dispatch; chunks beyond it queue (or run
// inline on the submitter), so a later larger maxWorkers stays correct.
func ensurePool() {
	poolOnce.Do(func() {
		n := maxWorkers
		if n < 1 {
			n = 1
		}
		poolTasks = make(chan poolTask, 8*n)
		for i := 0; i < n; i++ {
			go func() {
				for t := range poolTasks {
					t.fn(t.lo, t.hi)
					t.wg.Done()
				}
			}()
		}
	})
}

// ParallelRows splits rows [0, n) across the worker pool and runs
// fn(lo, hi) on each chunk, or inline when the work is too small to be worth
// sharing (n*flopsPerRow under the parallel threshold, or a single-core
// process).  fn must be safe to run concurrently on disjoint chunks.  The
// caller always executes the first chunk itself, and chunks that cannot be
// enqueued without blocking run inline too — so nested parallel kernels
// cannot deadlock the pool.
func ParallelRows(n int, flopsPerRow int, fn func(lo, hi int)) {
	if n == 0 {
		return
	}
	workers := maxWorkers
	if workers > n {
		workers = n
	}
	if workers <= 1 || n*flopsPerRow < parallelThreshold {
		fn(0, n)
		return
	}
	ensurePool()
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		select {
		case poolTasks <- poolTask{fn: fn, lo: lo, hi: hi, wg: &wg}:
		default:
			// Pool saturated: run the chunk on the caller rather than block.
			fn(lo, hi)
			wg.Done()
		}
	}
	fn(0, chunk) // the caller's own share
	wg.Wait()
}

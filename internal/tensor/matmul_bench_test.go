package tensor

import (
	"fmt"
	"testing"
)

// The matmul kernel ablation called out in DESIGN.md: the parallel blocked
// kernel vs the naive triple loop, across the shapes BERT training actually
// produces (activations × weights).
func BenchmarkMatMulParallel(b *testing.B) {
	for _, n := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := NewRNG(1)
			a := NewMat(n, n)
			c := NewMat(n, n)
			dst := NewMat(n, n)
			NormalInit(a, 1, rng)
			NormalInit(c, 1, rng)
			b.SetBytes(int64(n * n * n * 2))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMul(dst, a, c)
			}
		})
	}
}

func BenchmarkMatMulNaive(b *testing.B) {
	for _, n := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := NewRNG(1)
			a := NewMat(n, n)
			c := NewMat(n, n)
			dst := NewMat(n, n)
			NormalInit(a, 1, rng)
			NormalInit(c, 1, rng)
			b.SetBytes(int64(n * n * n * 2))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				matMulNaive(dst, a, c)
			}
		})
	}
}

func BenchmarkMatMulBT(b *testing.B) {
	rng := NewRNG(1)
	const n = 128
	a := NewMat(n, n)
	c := NewMat(n, n)
	dst := NewMat(n, n)
	NormalInit(a, 1, rng)
	NormalInit(c, 1, rng)
	b.SetBytes(int64(n * n * n * 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulBT(dst, a, c)
	}
}

func BenchmarkSoftmax(b *testing.B) {
	rng := NewRNG(1)
	m := NewMat(64, 2048)
	NormalInit(m, 1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SoftmaxRows(m)
	}
}

package tensor

import "math"

// Batched inference path.
//
// The training kernels (matmul.go) iterate i-k-j with a load/add/store of the
// destination row on every k step, which is the right trade-off for backprop
// (it reuses gradient buffers in place) but leaves single-core throughput on
// the table for pure inference.  The kernels here serve the batched forward
// pass of internal/bert: weights are transposed once per model, after which
// MatMulTN accumulates a 2-row × 4-column register tile over unit-stride
// operands.
//
// Exactness contract: for every output element, MatMulTN performs the same
// multiply-adds in the same k-ascending order as MatMul followed by a bias
// broadcast, so batched inference results are element-wise equal to the
// training-path forward pass (the zero-skip in MatMul can only affect the
// sign of exact zeros, which no downstream consumer distinguishes).

// Transpose returns a newly allocated mᵀ.
func Transpose(m *Mat) *Mat {
	t := NewMat(m.C, m.R)
	for i := 0; i < m.R; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.A[j*m.R+i] = v
		}
	}
	return t
}

// RowsView returns an aliased view of rows [lo, hi) of m; no data is copied.
// The batched encoder uses it to run per-sequence attention over slices of
// the stacked [B×L, d] activation matrix.
func (m *Mat) RowsView(lo, hi int) *Mat {
	if lo < 0 || hi < lo || hi > m.R {
		panic("tensor: RowsView range out of bounds")
	}
	return &Mat{R: hi - lo, C: m.C, A: m.A[lo*m.C : hi*m.C]}
}

// MatMulTN computes dst = a·btᵀ + bias, where bt is the *pre-transposed*
// weight matrix (m×k for a k→m layer) and bias (length m) may be nil.
// Shapes: a is n×k, bt is m×k, dst is n×m.  dst must not alias a or bt.
//
// Both operands stream with unit stride and the 2×4 register tile keeps eight
// accumulators live, which measures ~1.5-2.5× faster than MatMul on the
// matrix shapes of the BERT forward pass on a single core.  Rows of a are
// additionally split across the tensor worker pool (pool.go) when the
// product is large enough — the admission batcher stacks many requests into
// one [B×L, d] activation matrix, and this is where those rows fan out over
// cores.  Parallel and serial runs are element-wise identical: every output
// element is an independent k-ascending accumulation whatever the row
// partition, which the kernel parity tests enforce exactly.
func MatMulTN(dst, a, bt *Mat, bias []float32) {
	if a.C != bt.C || dst.R != a.R || dst.C != bt.R {
		panic("tensor: MatMulTN shape mismatch")
	}
	if bias != nil && len(bias) != bt.R {
		panic("tensor: MatMulTN bias length mismatch")
	}
	ParallelRows(a.R, a.C*bt.R, func(lo, hi int) {
		matMulTNRange(dst, a, bt, bias, lo, hi)
	})
}

// matMulTNRange is the serial blocked kernel over rows [lo, hi) of a/dst.
func matMulTNRange(dst, a, bt *Mat, bias []float32, lo, hi int) {
	n, k, m := hi, a.C, bt.R
	i := lo
	for ; i+2 <= n; i += 2 {
		a0 := a.A[i*k : (i+1)*k]
		a1 := a.A[(i+1)*k : (i+2)*k]
		d0 := dst.A[i*m : (i+1)*m]
		d1 := dst.A[(i+1)*m : (i+2)*m]
		j := 0
		for ; j+4 <= m; j += 4 {
			b0 := bt.A[j*k : (j+1)*k]
			b1 := bt.A[(j+1)*k : (j+2)*k]
			b2 := bt.A[(j+2)*k : (j+3)*k]
			b3 := bt.A[(j+3)*k : (j+4)*k]
			var s00, s01, s02, s03, s10, s11, s12, s13 float32
			for p := 0; p < k; p++ {
				w0, w1, w2, w3 := b0[p], b1[p], b2[p], b3[p]
				av0, av1 := a0[p], a1[p]
				s00 += av0 * w0
				s01 += av0 * w1
				s02 += av0 * w2
				s03 += av0 * w3
				s10 += av1 * w0
				s11 += av1 * w1
				s12 += av1 * w2
				s13 += av1 * w3
			}
			d0[j], d0[j+1], d0[j+2], d0[j+3] = s00, s01, s02, s03
			d1[j], d1[j+1], d1[j+2], d1[j+3] = s10, s11, s12, s13
		}
		for ; j < m; j++ {
			bj := bt.A[j*k : (j+1)*k]
			var s0, s1 float32
			for p, w := range bj {
				s0 += a0[p] * w
				s1 += a1[p] * w
			}
			d0[j], d1[j] = s0, s1
		}
		if bias != nil {
			for j, bv := range bias {
				d0[j] += bv
				d1[j] += bv
			}
		}
	}
	for ; i < n; i++ {
		ai := a.A[i*k : (i+1)*k]
		di := dst.A[i*m : (i+1)*m]
		j := 0
		for ; j+4 <= m; j += 4 {
			b0 := bt.A[j*k : (j+1)*k]
			b1 := bt.A[(j+1)*k : (j+2)*k]
			b2 := bt.A[(j+2)*k : (j+3)*k]
			b3 := bt.A[(j+3)*k : (j+4)*k]
			var s0, s1, s2, s3 float32
			for p, av := range ai {
				s0 += av * b0[p]
				s1 += av * b1[p]
				s2 += av * b2[p]
				s3 += av * b3[p]
			}
			di[j], di[j+1], di[j+2], di[j+3] = s0, s1, s2, s3
		}
		for ; j < m; j++ {
			bj := bt.A[j*k : (j+1)*k]
			var s float32
			for p, w := range bj {
				s += ai[p] * w
			}
			di[j] = s
		}
		if bias != nil {
			for j, bv := range bias {
				di[j] += bv
			}
		}
	}
}

// LayerNormInfer is LayerNormForward without the xhat trace the backward pass
// needs: each row of x is normalized to zero mean and unit variance, then
// scaled by g and shifted by b, written to y.  y may alias x.
func LayerNormInfer(y, x *Mat, g, b []float32, eps float32) {
	if y.R != x.R || y.C != x.C || len(g) != x.C || len(b) != x.C {
		panic("tensor: LayerNormInfer shape mismatch")
	}
	for i := 0; i < x.R; i++ {
		xi := x.Row(i)
		var mean float32
		for _, v := range xi {
			mean += v
		}
		mean /= float32(len(xi))
		var variance float32
		for _, v := range xi {
			d := v - mean
			variance += d * d
		}
		variance /= float32(len(xi))
		// Same float64 round trip as LayerNormForward, so results match it
		// bit for bit.
		inv := 1 / float32(math.Sqrt(float64(variance+eps)))
		yi := y.Row(i)
		for j, v := range xi {
			h := (v - mean) * inv
			yi[j] = h*g[j] + b[j]
		}
	}
}

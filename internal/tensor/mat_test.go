package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewMatAndAccessors(t *testing.T) {
	m := NewMat(2, 3)
	if m.R != 2 || m.C != 3 || len(m.A) != 6 {
		t.Fatalf("bad shape: %v", m)
	}
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Error("Set/At round-trip failed")
	}
	r := m.Row(1)
	if len(r) != 3 || r[2] != 7 {
		t.Error("Row view broken")
	}
	r[0] = 5
	if m.At(1, 0) != 5 {
		t.Error("Row must be a view, not a copy")
	}
}

func TestFromSlice(t *testing.T) {
	a := []float32{1, 2, 3, 4}
	m := FromSlice(2, 2, a)
	if m.At(1, 0) != 3 {
		t.Error("FromSlice layout wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("FromSlice with wrong length must panic")
		}
	}()
	FromSlice(3, 2, a)
}

func TestCloneAndCopyFrom(t *testing.T) {
	m := NewMat(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Error("Clone shares storage")
	}
	m.CopyFrom(c)
	if m.At(0, 0) != 9 {
		t.Error("CopyFrom did not copy")
	}
}

func TestAddScaleZero(t *testing.T) {
	m := FromSlice(1, 3, []float32{1, 2, 3})
	n := FromSlice(1, 3, []float32{10, 20, 30})
	m.Add(n)
	if m.At(0, 2) != 33 {
		t.Error("Add wrong")
	}
	m.Scale(2)
	if m.At(0, 0) != 22 {
		t.Error("Scale wrong")
	}
	m.Zero()
	for _, v := range m.A {
		if v != 0 {
			t.Error("Zero wrong")
		}
	}
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := NewRNG(42)
	shapes := []struct{ n, k, m int }{
		{1, 1, 1}, {2, 3, 4}, {7, 5, 9}, {16, 16, 16}, {33, 65, 17}, {100, 80, 120},
	}
	for _, s := range shapes {
		a := NewMat(s.n, s.k)
		b := NewMat(s.k, s.m)
		NormalInit(a, 1, rng)
		NormalInit(b, 1, rng)
		got := NewMat(s.n, s.m)
		want := NewMat(s.n, s.m)
		MatMul(got, a, b)
		matMulNaive(want, a, b)
		for i := range got.A {
			if math.Abs(float64(got.A[i]-want.A[i])) > 1e-3 {
				t.Fatalf("shape %v: element %d = %f, want %f", s, i, got.A[i], want.A[i])
			}
		}
	}
}

func TestMatMulBT(t *testing.T) {
	rng := NewRNG(7)
	a := NewMat(5, 8)
	b := NewMat(6, 8) // bᵀ is 8x6
	NormalInit(a, 1, rng)
	NormalInit(b, 1, rng)
	got := NewMat(5, 6)
	MatMulBT(got, a, b)
	// Reference: transpose b explicitly.
	bt := NewMat(8, 6)
	for i := 0; i < 6; i++ {
		for j := 0; j < 8; j++ {
			bt.Set(j, i, b.At(i, j))
		}
	}
	want := NewMat(5, 6)
	matMulNaive(want, a, bt)
	for i := range got.A {
		if math.Abs(float64(got.A[i]-want.A[i])) > 1e-4 {
			t.Fatalf("element %d = %f, want %f", i, got.A[i], want.A[i])
		}
	}
}

func TestMatMulAT(t *testing.T) {
	rng := NewRNG(9)
	a := NewMat(8, 5) // aᵀ is 5x8
	b := NewMat(8, 6)
	NormalInit(a, 1, rng)
	NormalInit(b, 1, rng)
	got := NewMat(5, 6)
	MatMulAT(got, a, b)
	at := NewMat(5, 8)
	for i := 0; i < 8; i++ {
		for j := 0; j < 5; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	want := NewMat(5, 6)
	matMulNaive(want, at, b)
	for i := range got.A {
		if math.Abs(float64(got.A[i]-want.A[i])) > 1e-4 {
			t.Fatalf("element %d = %f, want %f", i, got.A[i], want.A[i])
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	a := NewMat(2, 3)
	b := NewMat(4, 5)
	dst := NewMat(2, 5)
	defer func() {
		if recover() == nil {
			t.Error("MatMul with mismatched inner dims must panic")
		}
	}()
	MatMul(dst, a, b)
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(123)
	b := NewRNG(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	if NewRNG(0).Uint64() == 0 {
		t.Error("zero seed must be remapped")
	}
}

func TestRNGUniformity(t *testing.T) {
	rng := NewRNG(1)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := rng.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %f", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %f, want ~0.5", mean)
	}
}

func TestRNGPerm(t *testing.T) {
	rng := NewRNG(5)
	p := rng.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatal("Perm is not a permutation")
		}
		seen[v] = true
	}
}

func TestNormFloat64Moments(t *testing.T) {
	rng := NewRNG(77)
	var sum, sumSq float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := rng.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %f, want ~1", variance)
	}
}

func TestXavierInitScale(t *testing.T) {
	rng := NewRNG(3)
	m := NewMat(64, 64)
	XavierInit(m, rng)
	var sumSq float64
	for _, v := range m.A {
		sumSq += float64(v) * float64(v)
	}
	std := math.Sqrt(sumSq / float64(len(m.A)))
	want := math.Sqrt(2.0 / 128.0)
	if math.Abs(std-want) > want/4 {
		t.Errorf("Xavier std = %f, want ~%f", std, want)
	}
}

func TestCellProperties(t *testing.T) {
	// quick.Check that Add is commutative through float32 (exact for these ints).
	f := func(a, b int8) bool {
		m := FromSlice(1, 1, []float32{float32(a)})
		n := FromSlice(1, 1, []float32{float32(b)})
		m.Add(n)
		m2 := FromSlice(1, 1, []float32{float32(b)})
		n2 := FromSlice(1, 1, []float32{float32(a)})
		m2.Add(n2)
		return m.At(0, 0) == m2.At(0, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

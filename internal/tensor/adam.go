package tensor

import "math"

// Adam implements the Adam optimizer with optional decoupled weight decay
// (AdamW) and gradient clipping by global norm — the configuration BERT-style
// pretraining uses.
type Adam struct {
	LR          float64 // learning rate
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64 // decoupled (AdamW); 0 disables
	ClipNorm    float64 // global gradient-norm clip; 0 disables

	step int
	m    map[*Mat]*Mat // first-moment estimate, keyed by parameter identity
	v    map[*Mat]*Mat // second-moment estimate
}

// NewAdam returns an optimizer with BERT-flavored defaults: β1=0.9, β2=0.999,
// ε=1e-8, weight decay 0.01, clip norm 1.0.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR:          lr,
		Beta1:       0.9,
		Beta2:       0.999,
		Eps:         1e-8,
		WeightDecay: 0.01,
		ClipNorm:    1.0,
		m:           make(map[*Mat]*Mat),
		v:           make(map[*Mat]*Mat),
	}
}

// Step applies one Adam update.  params and grads are parallel slices: each
// parameter matrix is updated from the gradient at the same index.  Gradient
// matrices are left untouched except for the optional global-norm clip, which
// scales them in place.
func (a *Adam) Step(params, grads []*Mat) {
	if len(params) != len(grads) {
		panic("tensor: Adam.Step params/grads length mismatch")
	}
	a.step++

	if a.ClipNorm > 0 {
		var sq float64
		for _, g := range grads {
			for _, v := range g.A {
				sq += float64(v) * float64(v)
			}
		}
		norm := math.Sqrt(sq)
		if norm > a.ClipNorm {
			scale := float32(a.ClipNorm / norm)
			for _, g := range grads {
				g.Scale(scale)
			}
		}
	}

	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))

	for i, p := range params {
		g := grads[i]
		if p.R != g.R || p.C != g.C {
			panic("tensor: Adam.Step param/grad shape mismatch")
		}
		m, ok := a.m[p]
		if !ok {
			m = NewMat(p.R, p.C)
			a.m[p] = m
			a.v[p] = NewMat(p.R, p.C)
		}
		v := a.v[p]
		b1 := float32(a.Beta1)
		b2 := float32(a.Beta2)
		for j := range p.A {
			gj := g.A[j]
			m.A[j] = b1*m.A[j] + (1-b1)*gj
			v.A[j] = b2*v.A[j] + (1-b2)*gj*gj
			mHat := float64(m.A[j]) / bc1
			vHat := float64(v.A[j]) / bc2
			p.A[j] -= float32(a.LR * mHat / (math.Sqrt(vHat) + a.Eps))
			if a.WeightDecay > 0 {
				p.A[j] -= float32(a.LR * a.WeightDecay * float64(p.A[j]))
			}
		}
	}
}

// StepCount returns the number of updates applied so far.
func (a *Adam) StepCount() int { return a.step }

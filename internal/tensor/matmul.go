package tensor

// parallelRows is the historical name of the shared pool primitive; the
// training kernels below still call it.  See pool.go for semantics.
func parallelRows(n int, flopsPerRow int, fn func(lo, hi int)) {
	ParallelRows(n, flopsPerRow, fn)
}

// MatMul computes dst = a·b.  Shapes: a is n×k, b is k×m, dst is n×m.  dst
// must not alias a or b.  The kernel iterates in i-k-j order so the inner
// loop streams both b and dst rows sequentially, and parallelizes over rows
// of a.
func MatMul(dst, a, b *Mat) {
	if a.C != b.R || dst.R != a.R || dst.C != b.C {
		panic("tensor: MatMul shape mismatch")
	}
	n, k, m := a.R, a.C, b.C
	parallelRows(n, k*m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			di := dst.A[i*m : (i+1)*m]
			for j := range di {
				di[j] = 0
			}
			ai := a.A[i*k : (i+1)*k]
			for p := 0; p < k; p++ {
				av := ai[p]
				if av == 0 {
					continue
				}
				bp := b.A[p*m : (p+1)*m]
				for j, bv := range bp {
					di[j] += av * bv
				}
			}
		}
	})
}

// MatMulBT computes dst = a·bᵀ.  Shapes: a is n×k, b is m×k, dst is n×m.
// This orientation has unit-stride inner loops for both operands, making it
// the fastest kernel; attention scores (Q·Kᵀ) and input gradients (dY·Wᵀ)
// use it.
func MatMulBT(dst, a, b *Mat) {
	if a.C != b.C || dst.R != a.R || dst.C != b.R {
		panic("tensor: MatMulBT shape mismatch")
	}
	n, k, m := a.R, a.C, b.R
	parallelRows(n, k*m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a.A[i*k : (i+1)*k]
			di := dst.A[i*m : (i+1)*m]
			for j := 0; j < m; j++ {
				bj := b.A[j*k : (j+1)*k]
				var sum float32
				for p, av := range ai {
					sum += av * bj[p]
				}
				di[j] = sum
			}
		}
	})
}

// MatMulAT computes dst = aᵀ·b.  Shapes: a is k×n, b is k×m, dst is n×m.
// Weight gradients (Xᵀ·dY) use it.  Parallelizes over rows of dst (columns
// of a) so workers never write the same destination row.
func MatMulAT(dst, a, b *Mat) {
	if a.R != b.R || dst.R != a.C || dst.C != b.C {
		panic("tensor: MatMulAT shape mismatch")
	}
	k, n, m := a.R, a.C, b.C
	parallelRows(n, k*m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			di := dst.A[i*m : (i+1)*m]
			for j := range di {
				di[j] = 0
			}
			for p := 0; p < k; p++ {
				av := a.A[p*n+i]
				if av == 0 {
					continue
				}
				bp := b.A[p*m : (p+1)*m]
				for j, bv := range bp {
					di[j] += av * bv
				}
			}
		}
	})
}

// matMulNaive is the reference triple loop used by tests and the kernel
// ablation benchmark.
func matMulNaive(dst, a, b *Mat) {
	if a.C != b.R || dst.R != a.R || dst.C != b.C {
		panic("tensor: matMulNaive shape mismatch")
	}
	for i := 0; i < a.R; i++ {
		for j := 0; j < b.C; j++ {
			var sum float32
			for p := 0; p < a.C; p++ {
				sum += a.At(i, p) * b.At(p, j)
			}
			dst.Set(i, j, sum)
		}
	}
}

package tensor

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// withWorkers runs fn with the kernel fan-out forced to n chunks, so the
// parallel code path is exercised even on single-core machines.
func withWorkers(t testing.TB, n int, fn func()) {
	old := maxWorkers
	maxWorkers = n
	defer func() { maxWorkers = old }()
	fn()
}

// randMat fills an r×c matrix with reproducible pseudo-random values.
func randMat(r, c int, seed uint64) *Mat {
	rng := NewRNG(seed)
	m := NewMat(r, c)
	for i := range m.A {
		m.A[i] = float32(rng.NormFloat64()) * 0.5
	}
	return m
}

// TestMatMulTNParallelParity is the kernel acceptance gate: the pooled
// parallel MatMulTN must produce output element-wise EQUAL (==, not within a
// tolerance) to the serial blocked kernel, across shapes that hit the tiled
// path, the remainder rows/columns, and chunk boundaries that split a 2-row
// tile.
func TestMatMulTNParallelParity(t *testing.T) {
	shapes := []struct{ n, k, m int }{
		{1, 8, 8},     // single row: no tiling at all
		{2, 16, 4},    // one exact 2×4 tile column
		{7, 33, 13},   // odd everything: every remainder loop runs
		{64, 64, 64},  // exactly at the parallel threshold
		{640, 48, 96}, // typical stacked-batch activation shape
		{963, 48, 51}, // large with odd chunk boundaries
	}
	for _, sh := range shapes {
		for _, withBias := range []bool{false, true} {
			name := fmt.Sprintf("%dx%dx%d_bias=%v", sh.n, sh.k, sh.m, withBias)
			t.Run(name, func(t *testing.T) {
				a := randMat(sh.n, sh.k, 1)
				bt := randMat(sh.m, sh.k, 2)
				var bias []float32
				if withBias {
					bias = randMat(1, sh.m, 3).A
				}
				want := NewMat(sh.n, sh.m)
				matMulTNRange(want, a, bt, bias, 0, sh.n)
				for _, workers := range []int{2, 3, 5, 16} {
					got := NewMat(sh.n, sh.m)
					withWorkers(t, workers, func() {
						MatMulTN(got, a, bt, bias)
					})
					for i := range want.A {
						if got.A[i] != want.A[i] {
							t.Fatalf("workers=%d: element %d: parallel %v != serial %v",
								workers, i, got.A[i], want.A[i])
						}
					}
				}
			})
		}
	}
}

// TestParallelRowsCoversAllRows proves the chunking covers [0, n) exactly
// once for awkward n/worker combinations.
func TestParallelRowsCoversAllRows(t *testing.T) {
	for _, n := range []int{1, 2, 3, 17, 64, 100, 257} {
		for _, workers := range []int{1, 2, 3, 7, 64} {
			hits := make([]int32, n)
			withWorkers(t, workers, func() {
				ParallelRows(n, parallelThreshold, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						hits[i]++
					}
				})
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d workers=%d: row %d covered %d times", n, workers, i, h)
				}
			}
		}
	}
}

// TestNestedDispatchNoDeadlock reproduces the PaperConfig-scale serving
// hang: every pool worker runs an outer chunk (a sequence of a batched
// attention pass) that itself dispatches a nested parallel kernel through
// the same pool.  Before waiters helped drain the queue, all workers could
// enqueue their subtasks and then park waiting on them, leaving no consumer
// — the process hung forever.  The stream count exceeds any plausible pool
// size so the saturation window is actually hit, and fn work is trivial so
// the test is fast when the pool is correct.
func TestNestedDispatchNoDeadlock(t *testing.T) {
	withWorkers(t, 2, func() {
		const fanout, iters = 8, 25
		streams := 2*runtime.GOMAXPROCS(0) + 32
		var total atomic.Int64
		done := make(chan struct{})
		go func() {
			defer close(done)
			var wg sync.WaitGroup
			for g := 0; g < streams; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for iter := 0; iter < iters; iter++ {
						ParallelRows(fanout, parallelThreshold, func(lo, hi int) {
							for i := lo; i < hi; i++ {
								ParallelRows(fanout, parallelThreshold, func(nlo, nhi int) {
									for j := nlo; j < nhi; j++ {
										total.Add(1)
									}
								})
							}
						})
					}
				}()
			}
			wg.Wait()
		}()
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			t.Fatal("nested parallel dispatch deadlocked: pool workers parked with queued subtasks")
		}
		if want := int64(streams * iters * fanout * fanout); total.Load() != want {
			t.Fatalf("nested dispatch ran %d row units, want %d", total.Load(), want)
		}
	})
}

// TestMatMulParallelParity covers the training kernels now routed through the
// shared pool: the same element-wise equality bar as MatMulTN.
func TestMatMulParallelParity(t *testing.T) {
	a := randMat(129, 65, 4)
	b := randMat(65, 67, 5)
	want := NewMat(129, 67)
	withWorkers(t, 1, func() { MatMul(want, a, b) })
	got := NewMat(129, 67)
	withWorkers(t, 4, func() { MatMul(got, a, b) })
	for i := range want.A {
		if got.A[i] != want.A[i] {
			t.Fatalf("element %d: parallel %v != serial %v", i, got.A[i], want.A[i])
		}
	}
}

// BenchmarkMatMulTNSerial and BenchmarkMatMulTNParallel are the CI kernel
// smoke pair: their ratio is the parallel speedup on the runner (≈1 on a
// single-core machine, where the pooled path is bypassed entirely).  The
// shape is a stacked admission batch: 32 sequences × 20 tokens, hidden 64,
// FFN 256.
func BenchmarkMatMulTNSerial(b *testing.B) {
	benchMatMulTN(b, 1)
}

func BenchmarkMatMulTNParallel(b *testing.B) {
	benchMatMulTN(b, maxWorkers)
}

func benchMatMulTN(b *testing.B, workers int) {
	a := randMat(32*20, 64, 1)
	bt := randMat(256, 64, 2)
	bias := randMat(1, 256, 3).A
	dst := NewMat(32*20, 256)
	withWorkers(b, workers, func() {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			MatMulTN(dst, a, bt, bias)
		}
	})
}

// TestParallelMatMulSpeedupSmoke logs the measured parallel-over-serial
// speedup for the CI kernels job.  It never fails on speed — machines differ
// — only parity tests gate correctness.
func TestParallelMatMulSpeedupSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing smoke")
	}
	a := randMat(32*20, 64, 1)
	bt := randMat(256, 64, 2)
	dst := NewMat(32*20, 256)
	const reps = 50
	run := func(workers int) time.Duration {
		var best time.Duration
		withWorkers(t, workers, func() {
			for trial := 0; trial < 3; trial++ {
				t0 := time.Now()
				for i := 0; i < reps; i++ {
					MatMulTN(dst, a, bt, nil)
				}
				if d := time.Since(t0); best == 0 || d < best {
					best = d
				}
			}
		})
		return best
	}
	serial := run(1)
	parallel := run(maxWorkers)
	t.Logf("MatMulTN %d reps: serial=%v parallel(workers=%d)=%v speedup=%.2fx",
		reps, serial, maxWorkers, parallel, float64(serial)/float64(parallel))
}

package tensor

import (
	"math"
	"testing"
)

func fillDet(m *Mat, phase float64) {
	for i := range m.A {
		m.A[i] = float32(math.Sin(phase + float64(i)*0.7))
	}
}

func TestMatMulTNMatchesMatMul(t *testing.T) {
	shapes := [][3]int{
		{1, 1, 1}, {1, 5, 3}, {2, 4, 4}, {3, 7, 5},
		{8, 16, 8}, {30, 64, 64}, {33, 64, 67}, {5, 64, 256}, {9, 256, 64},
	}
	for _, sh := range shapes {
		n, k, m := sh[0], sh[1], sh[2]
		a, b := NewMat(n, k), NewMat(k, m)
		fillDet(a, 0.3)
		fillDet(b, 1.1)
		// Sprinkle exact zeros so the MatMul zero-skip path is exercised.
		if len(a.A) > 3 {
			a.A[0], a.A[3] = 0, 0
		}
		bias := make([]float32, m)
		for j := range bias {
			bias[j] = float32(j)*0.01 - 0.2
		}

		want := NewMat(n, m)
		MatMul(want, a, b)
		for i := 0; i < n; i++ {
			row := want.Row(i)
			for j, bv := range bias {
				row[j] += bv
			}
		}

		got := NewMat(n, m)
		MatMulTN(got, a, Transpose(b), bias)
		for i := range want.A {
			if want.A[i] != got.A[i] {
				t.Fatalf("shape %v: element %d differs: %v vs %v", sh, i, want.A[i], got.A[i])
			}
		}

		// Nil bias path.
		MatMul(want, a, b)
		MatMulTN(got, a, Transpose(b), nil)
		for i := range want.A {
			if want.A[i] != got.A[i] {
				t.Fatalf("shape %v (no bias): element %d differs", sh, i)
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	m := NewMat(2, 3)
	copy(m.A, []float32{1, 2, 3, 4, 5, 6})
	tr := Transpose(m)
	if tr.R != 3 || tr.C != 2 {
		t.Fatalf("transpose shape %dx%d", tr.R, tr.C)
	}
	want := []float32{1, 4, 2, 5, 3, 6}
	for i, v := range want {
		if tr.A[i] != v {
			t.Fatalf("transpose element %d = %v, want %v", i, tr.A[i], v)
		}
	}
}

func TestRowsView(t *testing.T) {
	m := NewMat(4, 3)
	for i := range m.A {
		m.A[i] = float32(i)
	}
	v := m.RowsView(1, 3)
	if v.R != 2 || v.C != 3 {
		t.Fatalf("view shape %dx%d", v.R, v.C)
	}
	if v.At(0, 0) != 3 || v.At(1, 2) != 8 {
		t.Fatal("view reads wrong data")
	}
	v.Set(0, 0, -1)
	if m.At(1, 0) != -1 {
		t.Fatal("view must alias the parent matrix")
	}
	for _, bad := range [][2]int{{-1, 2}, {2, 1}, {0, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RowsView(%d, %d) must panic", bad[0], bad[1])
				}
			}()
			m.RowsView(bad[0], bad[1])
		}()
	}
}

func TestLayerNormInferMatchesForward(t *testing.T) {
	const eps = 1e-5
	x := NewMat(7, 16)
	fillDet(x, 2.2)
	g := make([]float32, 16)
	b := make([]float32, 16)
	for i := range g {
		g[i] = 1 + float32(i)*0.05
		b[i] = float32(i)*0.02 - 0.1
	}
	want := NewMat(7, 16)
	xhat := NewMat(7, 16)
	LayerNormForward(want, xhat, x, g, b, eps)

	got := NewMat(7, 16)
	LayerNormInfer(got, x, g, b, eps)
	for i := range want.A {
		if want.A[i] != got.A[i] {
			t.Fatalf("element %d differs: %v vs %v", i, want.A[i], got.A[i])
		}
	}

	// In-place (y aliasing x) must produce the same result.
	inPlace := x.Clone()
	LayerNormInfer(inPlace, inPlace, g, b, eps)
	for i := range want.A {
		if want.A[i] != inPlace.A[i] {
			t.Fatalf("in-place element %d differs", i)
		}
	}
}

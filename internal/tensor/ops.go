package tensor

import "math"

// SoftmaxRows applies a numerically stable softmax to every row of m in
// place.
func SoftmaxRows(m *Mat) {
	for i := 0; i < m.R; i++ {
		SoftmaxInPlace(m.Row(i))
	}
}

// SoftmaxInPlace applies a numerically stable softmax to the slice in place.
func SoftmaxInPlace(v []float32) {
	if len(v) == 0 {
		return
	}
	maxV := v[0]
	for _, x := range v[1:] {
		if x > maxV {
			maxV = x
		}
	}
	var sum float32
	for i, x := range v {
		e := float32(math.Exp(float64(x - maxV)))
		v[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range v {
		v[i] *= inv
	}
}

// LogSumExp returns log(sum(exp(v))) computed stably.
func LogSumExp(v []float32) float64 {
	if len(v) == 0 {
		return math.Inf(-1)
	}
	maxV := v[0]
	for _, x := range v[1:] {
		if x > maxV {
			maxV = x
		}
	}
	var sum float64
	for _, x := range v {
		sum += math.Exp(float64(x - maxV))
	}
	return float64(maxV) + math.Log(sum)
}

// GELU applies the Gaussian Error Linear Unit (tanh approximation, the one
// BERT uses) element-wise, writing outputs to dst and returning them.  dst
// may alias src.
func GELU(dst, src []float32) {
	const c = 0.7978845608028654 // sqrt(2/pi)
	for i, x := range src {
		x64 := float64(x)
		dst[i] = float32(0.5 * x64 * (1 + math.Tanh(c*(x64+0.044715*x64*x64*x64))))
	}
}

// GELUBackward computes dx = dy * gelu'(x) element-wise into dx.
func GELUBackward(dx, dy, x []float32) {
	const c = 0.7978845608028654
	for i, xi := range x {
		x64 := float64(xi)
		u := c * (x64 + 0.044715*x64*x64*x64)
		t := math.Tanh(u)
		du := c * (1 + 3*0.044715*x64*x64)
		g := 0.5*(1+t) + 0.5*x64*(1-t*t)*du
		dx[i] = dy[i] * float32(g)
	}
}

// LayerNormForward normalizes each row of x to zero mean and unit variance,
// then applies the learned gain g and bias b.  It writes the normalized
// pre-gain values to xhat (needed by the backward pass) and the final output
// to y.  eps guards the variance.
func LayerNormForward(y, xhat, x *Mat, g, b []float32, eps float32) {
	if y.R != x.R || y.C != x.C || xhat.R != x.R || xhat.C != x.C || len(g) != x.C || len(b) != x.C {
		panic("tensor: LayerNormForward shape mismatch")
	}
	for i := 0; i < x.R; i++ {
		xi := x.Row(i)
		var mean float32
		for _, v := range xi {
			mean += v
		}
		mean /= float32(len(xi))
		var variance float32
		for _, v := range xi {
			d := v - mean
			variance += d * d
		}
		variance /= float32(len(xi))
		inv := 1 / float32(math.Sqrt(float64(variance+eps)))
		xh := xhat.Row(i)
		yi := y.Row(i)
		for j, v := range xi {
			h := (v - mean) * inv
			xh[j] = h
			yi[j] = h*g[j] + b[j]
		}
	}
}

// LayerNormBackward computes gradients for a layer-norm layer.  dy is the
// upstream gradient, xhat the normalized activations saved by the forward
// pass, x the original input.  It writes dx and accumulates into dg and db.
func LayerNormBackward(dx, dy, xhat, x *Mat, g []float32, dg, db []float32, eps float32) {
	n := float32(x.C)
	for i := 0; i < x.R; i++ {
		xi := x.Row(i)
		var mean float32
		for _, v := range xi {
			mean += v
		}
		mean /= n
		var variance float32
		for _, v := range xi {
			d := v - mean
			variance += d * d
		}
		variance /= n
		inv := 1 / float32(math.Sqrt(float64(variance+eps)))

		dyi := dy.Row(i)
		xh := xhat.Row(i)
		dxi := dx.Row(i)

		// dg, db accumulation and the two reduction terms of the dx formula.
		var sumDyG, sumDyGXhat float32
		for j := range dyi {
			dg[j] += dyi[j] * xh[j]
			db[j] += dyi[j]
			dyg := dyi[j] * g[j]
			sumDyG += dyg
			sumDyGXhat += dyg * xh[j]
		}
		for j := range dxi {
			dyg := dyi[j] * g[j]
			dxi[j] = inv * (dyg - sumDyG/n - xh[j]*sumDyGXhat/n)
		}
	}
}

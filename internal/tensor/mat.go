// Package tensor provides the dense linear-algebra kernels that KAMEL's
// from-scratch BERT implementation (internal/bert) is built on: row-major
// float32 matrices, goroutine-parallel blocked matrix multiplication in the
// three orientations backpropagation needs, numerically stable softmax,
// layer normalization, GELU, and the Adam optimizer.
//
// Everything is deliberately dependency-free and deterministic: given the
// same seed, training produces the same weights on every run, which the test
// suite and the experiment harness rely on.
package tensor

import "fmt"

// Mat is a dense row-major matrix of float32.  The zero value is not usable;
// construct with NewMat.
type Mat struct {
	R, C int
	A    []float32
}

// NewMat allocates an R×C matrix of zeros.
func NewMat(r, c int) *Mat {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", r, c))
	}
	return &Mat{R: r, C: c, A: make([]float32, r*c)}
}

// FromSlice wraps an existing backing slice as an R×C matrix.  The slice is
// not copied; its length must be exactly r*c.
func FromSlice(r, c int, a []float32) *Mat {
	if len(a) != r*c {
		panic(fmt.Sprintf("tensor: slice length %d does not match %dx%d", len(a), r, c))
	}
	return &Mat{R: r, C: c, A: a}
}

// At returns the element at row i, column j.
func (m *Mat) At(i, j int) float32 { return m.A[i*m.C+j] }

// Set assigns the element at row i, column j.
func (m *Mat) Set(i, j int, v float32) { m.A[i*m.C+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Mat) Row(i int) []float32 { return m.A[i*m.C : (i+1)*m.C] }

// Zero sets every element to zero.
func (m *Mat) Zero() {
	for i := range m.A {
		m.A[i] = 0
	}
}

// Clone returns a deep copy of the matrix.
func (m *Mat) Clone() *Mat {
	out := NewMat(m.R, m.C)
	copy(out.A, m.A)
	return out
}

// CopyFrom copies src into m; shapes must match.
func (m *Mat) CopyFrom(src *Mat) {
	if m.R != src.R || m.C != src.C {
		panic(fmt.Sprintf("tensor: CopyFrom shape mismatch %dx%d vs %dx%d", m.R, m.C, src.R, src.C))
	}
	copy(m.A, src.A)
}

// Add accumulates src into m element-wise; shapes must match.
func (m *Mat) Add(src *Mat) {
	if m.R != src.R || m.C != src.C {
		panic(fmt.Sprintf("tensor: Add shape mismatch %dx%d vs %dx%d", m.R, m.C, src.R, src.C))
	}
	for i, v := range src.A {
		m.A[i] += v
	}
}

// Scale multiplies every element by f.
func (m *Mat) Scale(f float32) {
	for i := range m.A {
		m.A[i] *= f
	}
}

// String renders small matrices for debugging.
func (m *Mat) String() string {
	return fmt.Sprintf("Mat(%dx%d)", m.R, m.C)
}

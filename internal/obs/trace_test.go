package obs

import (
	"context"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundtrip(t *testing.T) {
	for _, sampled := range []bool{true, false} {
		root := NewRootTrace(sampled)
		tc, ok := root.Context()
		if !ok {
			t.Fatal("root trace refused to yield a context")
		}
		parsed, ok := ParseTraceparent(FormatTraceparent(tc))
		if !ok {
			t.Fatalf("roundtrip of %q failed to parse", FormatTraceparent(tc))
		}
		if parsed != tc {
			t.Fatalf("roundtrip: got %+v, want %+v", parsed, tc)
		}
		child := NewChildTrace(parsed)
		if child.TraceID != root.TraceID {
			t.Errorf("child trace id %s, want inherited %s", child.TraceID, root.TraceID)
		}
		if child.ParentSpanID != root.SpanID {
			t.Errorf("child parent span %s, want upstream's %s", child.ParentSpanID, root.SpanID)
		}
		if child.SpanID == root.SpanID || child.SpanID == "" {
			t.Errorf("child span id %q must be fresh", child.SpanID)
		}
		if child.Sampled != sampled {
			t.Errorf("child sampled %v, want inherited %v", child.Sampled, sampled)
		}
	}

	// Identity-less traces must refuse to propagate.
	if _, ok := NewTrace().Context(); ok {
		t.Error("identity-less trace yielded a propagatable context")
	}
	var nilTrace *Trace
	if _, ok := nilTrace.Context(); ok {
		t.Error("nil trace yielded a propagatable context")
	}
}

func TestTraceparentMalformed(t *testing.T) {
	valid := FormatTraceparent(TraceContext{
		TraceID: strings.Repeat("ab", 16), SpanID: strings.Repeat("cd", 8), Sampled: true})
	if _, ok := ParseTraceparent(valid); !ok {
		t.Fatalf("control value %q rejected", valid)
	}
	bad := []string{
		"",
		"00",
		"00-" + strings.Repeat("ab", 16), // missing fields
		"00-" + strings.Repeat("ab", 15) + "-" + strings.Repeat("cd", 8) + "-01",      // short trace id
		"00-" + strings.Repeat("ab", 16) + "-" + strings.Repeat("cd", 7) + "-01",      // short span id
		"00-" + strings.Repeat("AB", 16) + "-" + strings.Repeat("cd", 8) + "-01",      // uppercase hex
		"00-" + strings.Repeat("zz", 16) + "-" + strings.Repeat("cd", 8) + "-01",      // non-hex
		"00-" + strings.Repeat("0", 32) + "-" + strings.Repeat("cd", 8) + "-01",       // all-zero trace id
		"00-" + strings.Repeat("ab", 16) + "-" + strings.Repeat("0", 16) + "-01",      // all-zero span id
		"00-" + strings.Repeat("ab", 16) + "-" + strings.Repeat("cd", 8) + "-01-junk", // extra field
	}
	for _, v := range bad {
		if _, ok := ParseTraceparent(v); ok {
			t.Errorf("malformed %q accepted", v)
		}
	}
}

func TestSpanAttrsRecorded(t *testing.T) {
	tr := NewRootTrace(true)
	ctx := With(context.Background(), tr, nil)
	sp := StartSpan(ctx, "cluster.attempt")
	sp.SetAttr("peer", "shard-1")
	sp.SetAttr("outcome", "busy")
	sp.End()

	recs := tr.Records()
	if len(recs) != 1 {
		t.Fatalf("recorded %d spans, want 1", len(recs))
	}
	want := []Attr{{Key: "peer", Value: "shard-1"}, {Key: "outcome", Value: "busy"}}
	if len(recs[0].Attrs) != len(want) {
		t.Fatalf("attrs %v, want %v", recs[0].Attrs, want)
	}
	for i := range want {
		if recs[0].Attrs[i] != want[i] {
			t.Errorf("attr %d = %+v, want %+v", i, recs[0].Attrs[i], want[i])
		}
	}

	// SetAttr on an unbound (no-op) span must not panic.
	noop := StartSpan(context.Background(), "x")
	noop.SetAttr("k", "v")
	noop.End()
}

func TestTraceStoreRetentionAndFind(t *testing.T) {
	reg := NewRegistry()
	s := NewTraceStore(3, 2, reg)

	rec := func(id, span, reason string, status int, d time.Duration) TraceRecord {
		return TraceRecord{TraceID: id, SpanID: span, Node: "n0", Route: "/v1/impute",
			Status: status, Duration: d, Retained: reason}
	}
	s.Add(rec("t1", "s1", RetainHead, 200, 5*time.Millisecond))
	s.Add(rec("t2", "s2", RetainError, 500, 1*time.Millisecond))
	s.Add(rec("t3", "s3", "", 200, 1*time.Millisecond)) // recent-only hop
	s.Add(rec("t4", "s4", RetainSlow, 200, 900*time.Millisecond))

	// List surfaces only retained traces, newest-first.
	got := s.List(TraceFilter{})
	if len(got) != 3 || got[0].TraceID != "t4" || got[2].TraceID != "t1" {
		t.Fatalf("list = %v", ids(got))
	}
	// Filters: status, min-duration, limit.
	if got = s.List(TraceFilter{Status: 500}); len(got) != 1 || got[0].TraceID != "t2" {
		t.Errorf("status filter = %v", ids(got))
	}
	if got = s.List(TraceFilter{MinDuration: 100 * time.Millisecond}); len(got) != 1 || got[0].TraceID != "t4" {
		t.Errorf("min-duration filter = %v", ids(got))
	}
	if got = s.List(TraceFilter{Limit: 2}); len(got) != 2 {
		t.Errorf("limit filter returned %d", len(got))
	}
	if got = s.List(TraceFilter{Route: "/other"}); len(got) != 0 {
		t.Errorf("route filter = %v", ids(got))
	}

	// A recent-only record is invisible to List but reachable by Find — the
	// property cross-node stitching depends on.
	if found := s.Find("t3"); len(found) != 1 || found[0].SpanID != "s3" {
		t.Errorf("recent-only find = %v", found)
	}
	// A record in both rings dedups by span ID.
	if found := s.Find("t4"); len(found) != 1 {
		t.Errorf("find t4 returned %d records, want 1 (deduped)", len(found))
	}

	// Ring overwrite: a fourth retained trace evicts the oldest of cap 3.
	s.Add(rec("t5", "s5", RetainHead, 200, time.Millisecond))
	if got = s.List(TraceFilter{}); len(got) != 3 || got[0].TraceID != "t5" {
		t.Errorf("after overwrite list = %v", ids(got))
	}
	for _, r := range got {
		if r.TraceID == "t1" {
			t.Error("oldest retained trace survived past ring capacity")
		}
	}

	// Counters: 5 added, 4 retained (head twice, error once, slow once).
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"kamel_traces_total 5",
		`kamel_traces_retained_total{reason="head"} 2`,
		`kamel_traces_retained_total{reason="error"} 1`,
		`kamel_traces_retained_total{reason="slow"} 1`,
		"kamel_trace_store_retained 3",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Nil-safety and identity-less records.
	var nilStore *TraceStore
	nilStore.Add(rec("x", "y", RetainHead, 200, 0))
	if nilStore.Find("x") != nil || nilStore.List(TraceFilter{}) != nil {
		t.Error("nil store not inert")
	}
	s.Add(TraceRecord{SpanID: "anon"}) // no trace ID: dropped
	if found := s.Find(""); found != nil {
		t.Error("empty trace id matched records")
	}
}

func ids(recs []TraceRecord) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.TraceID
	}
	return out
}

func TestHistogramExemplars(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("kamel_test_latency_seconds", "Test latency.", nil, L("route", "/v1/impute"))
	h.ObserveExemplar(0.0003, "aaaa0000aaaa0000aaaa0000aaaa0000")
	h.ObserveExemplar(0.2, "bbbb0000bbbb0000bbbb0000bbbb0000")
	h.ObserveExemplar(0.25, "") // no trace: plain observation, no exemplar

	exs := h.Exemplars()
	if len(exs) != 2 {
		t.Fatalf("%d exemplars, want 2", len(exs))
	}

	// EachExemplar walks the registry's histograms.
	found := map[string]bool{}
	reg.EachExemplar(func(name string, labels []Label, ex Exemplar) {
		if name == "kamel_test_latency_seconds" {
			found[ex.TraceID] = true
		}
	})
	if !found["aaaa0000aaaa0000aaaa0000aaaa0000"] || !found["bbbb0000bbbb0000bbbb0000bbbb0000"] {
		t.Errorf("EachExemplar missed exemplars: %v", found)
	}

	// Exemplars surface as comment lines next to their bucket series.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "# exemplar kamel_test_latency_seconds_bucket") ||
		!strings.Contains(b.String(), "trace_id=aaaa0000aaaa0000aaaa0000aaaa0000") {
		t.Errorf("exposition missing exemplar comments:\n%s", b.String())
	}

	// A same-bucket observation replaces the previous exemplar (always-fresh).
	h.ObserveExemplar(0.0003, "cccc0000cccc0000cccc0000cccc0000")
	found = map[string]bool{}
	for _, ex := range h.Exemplars() {
		found[ex.TraceID] = true
	}
	if found["aaaa0000aaaa0000aaaa0000aaaa0000"] || !found["cccc0000cccc0000cccc0000cccc0000"] {
		t.Errorf("exemplar replacement: %v", found)
	}
}

func TestObserveSpanExemplarThroughContext(t *testing.T) {
	reg := NewRegistry()
	tr := NewRootTrace(true)
	ctx := With(context.Background(), tr, reg)
	sp := StartSpan(ctx, "impute.predict")
	sp.End()
	var got []Exemplar
	reg.EachExemplar(func(name string, labels []Label, ex Exemplar) {
		if name == "kamel_stage_duration_seconds" {
			got = append(got, ex)
		}
	})
	if len(got) != 1 || got[0].TraceID != tr.TraceID {
		t.Fatalf("stage exemplar = %+v, want one with trace %s", got, tr.TraceID)
	}

	// An identity-less trace must NOT leave an exemplar (the bench hot path).
	reg2 := NewRegistry()
	ctx2 := With(context.Background(), NewTrace(), reg2)
	sp2 := StartSpan(ctx2, "impute.predict")
	sp2.End()
	count := 0
	reg2.EachExemplar(func(string, []Label, Exemplar) { count++ })
	if count != 0 {
		t.Errorf("identity-less span left %d exemplars", count)
	}
}

func TestWriteFederated(t *testing.T) {
	nodeA := `# HELP kamel_requests_total Requests served.
# TYPE kamel_requests_total counter
kamel_requests_total{route="/v1/impute"} 10
# HELP kamel_latency_seconds Latency.
# TYPE kamel_latency_seconds histogram
kamel_latency_seconds_bucket{le="0.1"} 4
kamel_latency_seconds_bucket{le="+Inf"} 10
kamel_latency_seconds_sum 0.9
kamel_latency_seconds_count 10
# exemplar kamel_latency_seconds_bucket{le="0.1"} trace_id=abc value=0.05 ts=1
kamel_up 1
`
	nodeB := `# HELP kamel_requests_total DIFFERENT help that must lose.
# TYPE kamel_requests_total counter
kamel_requests_total{route="/v1/impute"} 7
kamel_requests_total{} 3
`
	var b strings.Builder
	err := WriteFederated(&b, []FederatedSource{
		{Node: "shard-0", Text: []byte(nodeA), Up: true},
		{Node: "shard-1", Text: []byte(nodeB), Up: true},
		{Node: "shard-2", Up: false},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		// Node label injected into labeled, empty-braced, and label-less lines.
		`kamel_requests_total{node="shard-0",route="/v1/impute"} 10`,
		`kamel_requests_total{node="shard-1",route="/v1/impute"} 7`,
		`kamel_requests_total{node="shard-1"} 3`,
		`kamel_up{node="shard-0"} 1`,
		// Histogram sub-series stay under the base family.
		`kamel_latency_seconds_bucket{node="shard-0",le="0.1"} 4`,
		`kamel_latency_seconds_sum{node="shard-0"} 0.9`,
		`kamel_latency_seconds_count{node="shard-0"} 10`,
		// Per-node reachability series, including the down peer.
		`kamel_federation_up{node="shard-0"} 1`,
		`kamel_federation_up{node="shard-1"} 1`,
		`kamel_federation_up{node="shard-2"} 0`,
		// First HELP wins.
		"# HELP kamel_requests_total Requests served.",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("federated output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "DIFFERENT help") {
		t.Error("second node's HELP overrode the first")
	}
	if strings.Contains(out, "# exemplar") {
		t.Error("exemplar comments leaked into federated output")
	}
	if strings.Count(out, "# TYPE kamel_requests_total counter") != 1 {
		t.Error("family headers duplicated across nodes")
	}

	// Families group: every kamel_requests_total sample sits under one header.
	idx := strings.Index(out, "# TYPE kamel_requests_total counter")
	next := strings.Index(out[idx:], "# HELP kamel_latency_seconds")
	section := out[idx:]
	if next >= 0 {
		section = out[idx : idx+next]
	}
	if strings.Count(section, "kamel_requests_total{") != 3 {
		t.Errorf("expected all 3 kamel_requests_total samples grouped under the family header:\n%s", out)
	}
}

func TestSLOMonitorBurnAndTrigger(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry()
	m := NewSLOMonitor(SLOConfig{
		Window:       10 * time.Second,
		ErrorBudget:  0.01,
		Sustain:      3,
		MinRequests:  10,
		ProfileDir:   dir,
		ProfileEvery: time.Minute,
	}, reg, nil)

	clock := time.Unix(1_700_000_000, 0)
	m.now = func() time.Time { return clock }
	var captured []string
	m.profile = func(path string) error {
		captured = append(captured, path)
		return nil
	}

	// Below the MinRequests floor, burn reads zero however bad the ratio.
	for i := 0; i < 5; i++ {
		m.Observe(500, time.Millisecond)
	}
	if eb, _, fired := m.EvalOnce(); eb != 0 || fired {
		t.Fatalf("below floor: errBurn=%v fired=%v, want 0/false", eb, fired)
	}

	// 50 requests, 5 errors → 10% error rate over a 1% budget: burn 10x.
	for i := 0; i < 45; i++ {
		m.Observe(200, time.Millisecond)
	}
	eb, _, fired := m.EvalOnce()
	if eb < 9.9 || eb > 10.1 {
		t.Fatalf("errBurn = %v, want ~10", eb)
	}
	if fired {
		t.Fatal("fired on first burning eval; sustain not honored")
	}
	if _, _, fired = m.EvalOnce(); fired {
		t.Fatal("fired on second burning eval; sustain not honored")
	}
	// Third consecutive burning eval fires.
	if _, _, fired = m.EvalOnce(); !fired {
		t.Fatal("did not fire after Sustain burning evals")
	}
	waitSLOIdle(t, m)
	if len(captured) != 1 {
		t.Fatalf("captured %d profiles, want 1", len(captured))
	}

	// Still burning, but inside the rate-limit window: no second capture.
	if _, _, fired = m.EvalOnce(); fired {
		t.Fatal("fired inside the ProfileEvery rate-limit window")
	}
	// Past the rate limit with burn still sustained (the streak carried
	// through the limited window), the very next burning eval fires again.
	clock = clock.Add(2 * time.Minute)
	for i := 0; i < 20; i++ {
		m.Observe(503, time.Millisecond)
	}
	if _, _, fired = m.EvalOnce(); !fired {
		t.Fatal("did not re-fire after the rate-limit window passed")
	}
	waitSLOIdle(t, m)
	if len(captured) != 2 {
		t.Fatalf("captured %d profiles, want 2", len(captured))
	}

	// Burn gauges are on the registry.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"kamel_slo_error_burn_rate",
		"kamel_slo_latency_burn_rate",
		"kamel_slo_profile_captures_total 2",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// A healthy eval resets the streak.
	clock = clock.Add(time.Hour)
	for i := 0; i < 20; i++ {
		m.Observe(200, time.Millisecond)
	}
	if eb, _, fired := m.EvalOnce(); eb != 0 || fired {
		t.Errorf("healthy window: errBurn=%v fired=%v", eb, fired)
	}
}

// waitSLOIdle waits for the async capture goroutine to finish.
func waitSLOIdle(t *testing.T, m *SLOMonitor) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		m.mu.Lock()
		busy := m.capturing
		m.mu.Unlock()
		if !busy {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("capture goroutine never finished")
}

func TestSLOLatencyBurn(t *testing.T) {
	m := NewSLOMonitor(SLOConfig{
		Window:        10 * time.Second,
		LatencyTarget: 100 * time.Millisecond,
		LatencyBudget: 0.05,
		MinRequests:   10,
	}, nil, nil)
	clock := time.Unix(1_700_000_000, 0)
	m.now = func() time.Time { return clock }
	for i := 0; i < 18; i++ {
		m.Observe(200, time.Millisecond)
	}
	m.Observe(200, 150*time.Millisecond)
	m.Observe(200, 2*time.Second)
	// 2/20 slow = 10% over a 5% budget: burn 2x; errors stay quiet.
	eb, lb, _ := m.EvalOnce()
	if eb != 0 {
		t.Errorf("errBurn = %v, want 0", eb)
	}
	if lb < 1.9 || lb > 2.1 {
		t.Errorf("latBurn = %v, want ~2", lb)
	}
}

func TestSLOPruneBoundsProfiles(t *testing.T) {
	dir := t.TempDir()
	m := NewSLOMonitor(SLOConfig{ProfileDir: dir, MaxProfiles: 3}, nil, nil)
	clock := time.Unix(1_700_000_000, 0)
	m.now = func() time.Time { return clock }
	m.profile = func(path string) error {
		return writeFile(path)
	}
	for i := 0; i < 6; i++ {
		m.runCapture(fmt.Sprintf("%s/cpu-2026010%dT000000.000.pprof", dir, i))
	}
	left := profileNames(t, dir)
	if len(left) != 3 {
		t.Fatalf("%d profiles on disk, want 3: %v", len(left), left)
	}
	for _, name := range left {
		if name < "cpu-20260103" {
			t.Errorf("old profile %s survived pruning", name)
		}
	}
}

func writeFile(path string) error {
	return os.WriteFile(path, []byte("profile"), 0o644)
}

func profileNames(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names
}

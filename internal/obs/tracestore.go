package obs

import (
	"sync"
	"time"
)

// Trace retention reasons, recorded on TraceRecord.Retained.
const (
	// RetainHead: the head-sampling coin flip (or an inherited sampled flag)
	// kept the trace.
	RetainHead = "head"
	// RetainError: the request finished with a retained status (5xx or 429),
	// kept regardless of the head decision — tail-based retention.
	RetainError = "error"
	// RetainSlow: the request exceeded the latency threshold, kept regardless
	// of the head decision — tail-based retention.
	RetainSlow = "slow"
)

// TraceRecord is one hop's completed trace as stored for after-the-fact
// retrieval: the distributed identity (for cross-node stitching), the
// request-level outcome, and the full span list.
type TraceRecord struct {
	TraceID      string
	SpanID       string
	ParentSpanID string
	Node         string // shard id (or "local") of the hop that recorded it
	Route        string
	Status       int
	Start        time.Time
	Duration     time.Duration
	Spans        []SpanRecord
	Dropped      int
	// Retained is the retention reason ("head", "error", "slow"), or empty
	// for records held only in the short recent ring.
	Retained string
}

// TraceStore is a bounded per-node trace buffer with two rings:
//
//   - the retained ring holds traces that passed head sampling or tripped
//     tail retention (error / slow) — the /v1/traces listing surface;
//   - the recent ring briefly holds every completed trace regardless of the
//     sampling decision, so a gateway stitching a freshly retained trace can
//     still fetch the remote hops even when those hops' own head decision
//     said no and their tail rules did not fire.
//
// Both rings are fixed-size circular buffers behind one mutex; Add is a few
// copies under a short critical section (lock-light, never allocating beyond
// the record itself), so it sits on the request completion path without
// contending with the handlers.
type TraceStore struct {
	mu       sync.Mutex
	retained ring
	recent   ring

	added        *Counter
	retainedCtrs map[string]*Counter
}

// ring is a fixed-capacity circular buffer of trace records.
type ring struct {
	buf  []TraceRecord
	n    int // records stored (≤ cap)
	next int // slot the next Add overwrites
}

func (r *ring) add(rec TraceRecord) {
	if len(r.buf) == 0 {
		return
	}
	r.buf[r.next] = rec
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// each visits records newest-first.
func (r *ring) each(fn func(rec *TraceRecord) bool) {
	for i := 1; i <= r.n; i++ {
		idx := (r.next - i + len(r.buf)) % len(r.buf)
		if !fn(&r.buf[idx]) {
			return
		}
	}
}

// NewTraceStore builds a store with the given ring capacities (zeros choose
// 512 retained / 256 recent).  reg, when non-nil, receives the store's
// accounting series.
func NewTraceStore(retainedCap, recentCap int, reg *Registry) *TraceStore {
	if retainedCap <= 0 {
		retainedCap = 512
	}
	if recentCap <= 0 {
		recentCap = 256
	}
	s := &TraceStore{
		retained:     ring{buf: make([]TraceRecord, retainedCap)},
		recent:       ring{buf: make([]TraceRecord, recentCap)},
		retainedCtrs: make(map[string]*Counter, 3),
	}
	if reg != nil {
		s.added = reg.Counter("kamel_traces_total",
			"Completed request traces recorded (retained or recent).")
		for _, reason := range []string{RetainHead, RetainError, RetainSlow} {
			s.retainedCtrs[reason] = reg.Counter("kamel_traces_retained_total",
				"Traces kept in the retained ring, by retention reason.",
				L("reason", reason))
		}
		reg.GaugeFunc("kamel_trace_store_retained",
			"Traces currently held in the retained ring.", func() float64 {
				s.mu.Lock()
				defer s.mu.Unlock()
				return float64(s.retained.n)
			})
	}
	return s
}

// Add records one completed hop.  A record with a Retained reason lands in
// the retained ring (and is counted); every record additionally passes
// through the recent ring so cross-node stitching finds unretained hops.
func (s *TraceStore) Add(rec TraceRecord) {
	if s == nil || rec.TraceID == "" {
		return
	}
	s.added.Inc()
	if rec.Retained != "" {
		s.retainedCtrs[rec.Retained].Inc()
	}
	s.mu.Lock()
	if rec.Retained != "" {
		s.retained.add(rec)
	}
	s.recent.add(rec)
	s.mu.Unlock()
}

// Find returns every stored record of one trace (a node records one hop per
// trace in the common case; a self-forwarded batch may record several),
// searching the retained ring first, then the recent ring.  Duplicate span
// IDs across the two rings are returned once.
func (s *TraceStore) Find(traceID string) []TraceRecord {
	if s == nil || traceID == "" {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []TraceRecord
	seen := make(map[string]bool, 2)
	collect := func(rec *TraceRecord) bool {
		if rec.TraceID == traceID && !seen[rec.SpanID] {
			seen[rec.SpanID] = true
			out = append(out, *rec)
		}
		return true
	}
	s.retained.each(collect)
	s.recent.each(collect)
	return out
}

// TraceFilter narrows a List call; zero values match everything.
type TraceFilter struct {
	Route       string
	Status      int
	MinDuration time.Duration
	Limit       int // maximum records returned (0: 100)
}

// List returns retained traces newest-first, filtered.
func (s *TraceStore) List(f TraceFilter) []TraceRecord {
	if s == nil {
		return nil
	}
	limit := f.Limit
	if limit <= 0 {
		limit = 100
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []TraceRecord
	s.retained.each(func(rec *TraceRecord) bool {
		if f.Route != "" && rec.Route != f.Route {
			return true
		}
		if f.Status != 0 && rec.Status != f.Status {
			return true
		}
		if f.MinDuration > 0 && rec.Duration < f.MinDuration {
			return true
		}
		out = append(out, *rec)
		return len(out) < limit
	})
	return out
}

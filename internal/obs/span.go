package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strings"
	"sync"
	"time"
)

// SpanSink receives every finished span's duration; *Registry implements it
// by aggregating into the per-stage histogram family.  A sink must be safe
// for concurrent use.
type SpanSink interface {
	ObserveSpan(name string, d time.Duration)
}

// SpanExemplarSink is optionally implemented by a SpanSink that can attach a
// trace-ID exemplar to the stage observation.  Span.End uses it only when the
// bound trace carries a trace ID, so library calls without trace identity pay
// the plain ObserveSpan path.
type SpanExemplarSink interface {
	ObserveSpanExemplar(name string, d time.Duration, traceID string)
}

// binding is what a context carries: an optional per-request trace and an
// optional aggregation sink.  One context key for both keeps StartSpan at a
// single context lookup.
type binding struct {
	tr   *Trace
	sink SpanSink
}

type bindingKey struct{}

// With returns a context carrying the trace and sink; either may be nil.
// The serving layer binds both per request; library callers usually rely on
// core binding the system registry via EnsureSink.
func With(ctx context.Context, tr *Trace, sink SpanSink) context.Context {
	return context.WithValue(ctx, bindingKey{}, binding{tr: tr, sink: sink})
}

// EnsureSink returns ctx unchanged when it already carries a span sink, and
// otherwise binds sink (keeping any trace already present).  It lets the
// core pipeline guarantee stage histograms are fed even when called as a
// library, without double-wrapping contexts arriving from the HTTP layer.
func EnsureSink(ctx context.Context, sink SpanSink) context.Context {
	b, _ := ctx.Value(bindingKey{}).(binding)
	if b.sink != nil {
		return ctx
	}
	b.sink = sink
	return context.WithValue(ctx, bindingKey{}, b)
}

// TraceFrom returns the per-request trace bound to ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	b, _ := ctx.Value(bindingKey{}).(binding)
	return b.tr
}

// Span is one in-flight timed region.  The zero Span (from an unbound
// context) is valid and End/SetAttr are no-ops, so instrumented code needs no
// branches.
type Span struct {
	name  string
	start time.Time
	b     binding
	attrs []Attr
}

// Attr is one span attribute: a small key/value annotation (e.g. the peer a
// failover attempt targeted and how it answered).
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// StartSpan begins a span named name (e.g. "impute.predict").  When ctx
// carries no trace and no sink the returned Span does nothing.
func StartSpan(ctx context.Context, name string) *Span {
	b, _ := ctx.Value(bindingKey{}).(binding)
	if b.tr == nil && b.sink == nil {
		return &Span{}
	}
	return &Span{name: name, start: time.Now(), b: b}
}

// SetAttr annotates the span.  Attributes ride into the trace's SpanRecord;
// the aggregated stage histograms ignore them (unbounded cardinality).
func (s *Span) SetAttr(key, value string) {
	if s.name == "" {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End finishes the span: its duration is aggregated into the sink's stage
// histogram and appended to the request trace, when either is present.
func (s *Span) End() {
	if s.name == "" {
		return
	}
	d := time.Since(s.start)
	if s.b.sink != nil {
		if tid := s.traceID(); tid != "" {
			if es, ok := s.b.sink.(SpanExemplarSink); ok {
				es.ObserveSpanExemplar(s.name, d, tid)
			} else {
				s.b.sink.ObserveSpan(s.name, d)
			}
		} else {
			s.b.sink.ObserveSpan(s.name, d)
		}
	}
	if s.b.tr != nil {
		s.b.tr.add(s.name, s.start, d, s.attrs)
	}
}

func (s *Span) traceID() string {
	if s.b.tr == nil {
		return ""
	}
	return s.b.tr.TraceID
}

// Observer returns a callback recording (stage, duration) observations
// against ctx's trace and sink, or nil when ctx carries neither — letting
// hot loops skip timing entirely when nobody is watching.  The duration is
// assumed to have just elapsed, so the span's start is back-dated by d.
func Observer(ctx context.Context) func(stage string, d time.Duration) {
	b, _ := ctx.Value(bindingKey{}).(binding)
	if b.tr == nil && b.sink == nil {
		return nil
	}
	return func(stage string, d time.Duration) {
		if b.sink != nil {
			if b.tr != nil && b.tr.TraceID != "" {
				if es, ok := b.sink.(SpanExemplarSink); ok {
					es.ObserveSpanExemplar(stage, d, b.tr.TraceID)
				} else {
					b.sink.ObserveSpan(stage, d)
				}
			} else {
				b.sink.ObserveSpan(stage, d)
			}
		}
		if b.tr != nil {
			b.tr.add(stage, time.Now().Add(-d), d, nil)
		}
	}
}

// maxTraceSpans caps one request's recorded spans; a beam search over many
// gaps can emit hundreds.  Beyond the cap only aggregates are kept.
const maxTraceSpans = 256

// SpanRecord is one finished span, offsets relative to the trace start.
type SpanRecord struct {
	Name  string
	Start time.Duration // offset from trace start
	Dur   time.Duration
	Attrs []Attr // optional annotations (failover attempts, outcomes, ...)
}

// StageSummary aggregates every span of one name within a trace.
type StageSummary struct {
	Name  string
	Count int
	Total time.Duration
}

// Trace records the spans of one request and carries its distributed
// identity.  It is safe for concurrent use (a batch request's items may be
// traced in sequence or parallel).  The ID fields are set at construction and
// never mutated afterwards, so they are readable without the lock.
type Trace struct {
	// TraceID is the 32-hex request identity shared by every hop of one
	// distributed request; empty on identity-less traces (NewTrace), which
	// only feed the inline ?debug=1 breakdown.
	TraceID string
	// SpanID is this hop's own 16-hex identity, the ParentSpanID of any hop
	// this node forwards to.
	SpanID string
	// ParentSpanID is the upstream hop's SpanID, empty at the trace root.
	ParentSpanID string
	// Sampled is the head-sampling decision, inherited across hops via the
	// traceparent flags so one decision governs the whole distributed trace.
	Sampled bool

	start   time.Time
	mu      sync.Mutex
	spans   []SpanRecord
	dropped int
	totals  map[string]*StageSummary
	order   []string
}

// NewTrace starts an empty identity-less trace clocked from now — the
// ?debug=1 and bench-harness recorder.  Serving paths use NewRootTrace /
// NewChildTrace so the trace participates in distributed retention.
func NewTrace() *Trace {
	return &Trace{start: time.Now(), totals: make(map[string]*StageSummary)}
}

// NewRootTrace starts a trace with fresh distributed identity; sampled is the
// head-sampling decision to propagate downstream.
func NewRootTrace(sampled bool) *Trace {
	t := NewTrace()
	t.TraceID = NewTraceID()
	t.SpanID = NewSpanID()
	t.Sampled = sampled
	return t
}

// NewChildTrace starts this hop's trace under an upstream hop's identity: the
// trace ID and sampling decision are adopted, the upstream span becomes the
// parent, and the hop gets its own span ID.
func NewChildTrace(tc TraceContext) *Trace {
	t := NewTrace()
	t.TraceID = tc.TraceID
	t.ParentSpanID = tc.SpanID
	t.SpanID = NewSpanID()
	t.Sampled = tc.Sampled
	return t
}

func (t *Trace) add(name string, start time.Time, d time.Duration, attrs []Attr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) < maxTraceSpans {
		t.spans = append(t.spans, SpanRecord{Name: name, Start: start.Sub(t.start), Dur: d, Attrs: attrs})
	} else {
		t.dropped++
	}
	s := t.totals[name]
	if s == nil {
		s = &StageSummary{Name: name}
		t.totals[name] = s
		t.order = append(t.order, name)
	}
	s.Count++
	s.Total += d
}

// Records returns a copy of the recorded spans in completion order.
func (t *Trace) Records() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	return out
}

// Dropped reports how many spans overflowed the per-trace cap (their
// durations still count in Stages).
func (t *Trace) Dropped() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Stages returns per-stage aggregates in first-seen order.
func (t *Trace) Stages() []StageSummary {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]StageSummary, 0, len(t.order))
	for _, name := range t.order {
		out = append(out, *t.totals[name])
	}
	return out
}

// Elapsed is the time since the trace started.
func (t *Trace) Elapsed() time.Duration { return time.Since(t.start) }

// Start is the trace's start time.
func (t *Trace) Start() time.Time { return t.start }

// HeaderTraceparent is the cross-hop trace propagation header.  The value is
// the W3C traceparent shape: "00-<32 hex trace id>-<16 hex span id>-<flags>",
// flags bit 0 carrying the head-sampling decision.
const HeaderTraceparent = "Traceparent"

// TraceContext is a parsed traceparent header: the identity one hop hands the
// next.
type TraceContext struct {
	TraceID string
	SpanID  string
	Sampled bool
}

// Context returns the identity this trace would propagate downstream: its
// trace ID, its own span ID as the downstream parent, and the sampling bit.
// ok is false for identity-less traces, which must not propagate.
func (t *Trace) Context() (TraceContext, bool) {
	if t == nil || t.TraceID == "" {
		return TraceContext{}, false
	}
	return TraceContext{TraceID: t.TraceID, SpanID: t.SpanID, Sampled: t.Sampled}, true
}

// FormatTraceparent renders a TraceContext as a traceparent header value.
func FormatTraceparent(tc TraceContext) string {
	flags := "00"
	if tc.Sampled {
		flags = "01"
	}
	return "00-" + tc.TraceID + "-" + tc.SpanID + "-" + flags
}

// ParseTraceparent parses a traceparent header value.  ok is false for
// malformed values (wrong field count, wrong lengths, non-hex IDs, or the
// all-zero identities the spec reserves for "no trace").
func ParseTraceparent(v string) (TraceContext, bool) {
	parts := strings.Split(strings.TrimSpace(v), "-")
	if len(parts) != 4 || len(parts[0]) != 2 || len(parts[1]) != 32 || len(parts[2]) != 16 || len(parts[3]) != 2 {
		return TraceContext{}, false
	}
	if !isHex(parts[1]) || !isHex(parts[2]) || !isHex(parts[3]) {
		return TraceContext{}, false
	}
	if parts[1] == strings.Repeat("0", 32) || parts[2] == strings.Repeat("0", 16) {
		return TraceContext{}, false
	}
	flags, err := hex.DecodeString(parts[3])
	if err != nil {
		return TraceContext{}, false
	}
	return TraceContext{TraceID: parts[1], SpanID: parts[2], Sampled: flags[0]&1 == 1}, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// NewTraceID returns a 32-hex-char random trace identifier.
func NewTraceID() string { return randHex(16) }

// NewSpanID returns a 16-hex-char random span identifier.
func NewSpanID() string { return randHex(8) }

func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; a fixed ID keeps
		// the serving path alive (matching NewRequestID's posture).
		return strings.Repeat("42", n)
	}
	return hex.EncodeToString(b)
}

// NewRequestID returns a 16-hex-char random request identifier for the
// X-Request-ID header and log correlation.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; a fixed ID
		// keeps the serving path alive.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

type requestIDKey struct{}

// ContextWithRequestID attaches a request ID for log correlation.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom returns the request ID bound to ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// SpanSink receives every finished span's duration; *Registry implements it
// by aggregating into the per-stage histogram family.  A sink must be safe
// for concurrent use.
type SpanSink interface {
	ObserveSpan(name string, d time.Duration)
}

// binding is what a context carries: an optional per-request trace and an
// optional aggregation sink.  One context key for both keeps StartSpan at a
// single context lookup.
type binding struct {
	tr   *Trace
	sink SpanSink
}

type bindingKey struct{}

// With returns a context carrying the trace and sink; either may be nil.
// The serving layer binds both per request; library callers usually rely on
// core binding the system registry via EnsureSink.
func With(ctx context.Context, tr *Trace, sink SpanSink) context.Context {
	return context.WithValue(ctx, bindingKey{}, binding{tr: tr, sink: sink})
}

// EnsureSink returns ctx unchanged when it already carries a span sink, and
// otherwise binds sink (keeping any trace already present).  It lets the
// core pipeline guarantee stage histograms are fed even when called as a
// library, without double-wrapping contexts arriving from the HTTP layer.
func EnsureSink(ctx context.Context, sink SpanSink) context.Context {
	b, _ := ctx.Value(bindingKey{}).(binding)
	if b.sink != nil {
		return ctx
	}
	b.sink = sink
	return context.WithValue(ctx, bindingKey{}, b)
}

// TraceFrom returns the per-request trace bound to ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	b, _ := ctx.Value(bindingKey{}).(binding)
	return b.tr
}

// Span is one in-flight timed region.  The zero Span (from an unbound
// context) is valid and End is a no-op, so instrumented code needs no
// branches.
type Span struct {
	name  string
	start time.Time
	b     binding
}

// StartSpan begins a span named name (e.g. "impute.predict").  When ctx
// carries no trace and no sink the returned Span does nothing.
func StartSpan(ctx context.Context, name string) Span {
	b, _ := ctx.Value(bindingKey{}).(binding)
	if b.tr == nil && b.sink == nil {
		return Span{}
	}
	return Span{name: name, start: time.Now(), b: b}
}

// End finishes the span: its duration is aggregated into the sink's stage
// histogram and appended to the request trace, when either is present.
func (s Span) End() {
	if s.name == "" {
		return
	}
	d := time.Since(s.start)
	if s.b.sink != nil {
		s.b.sink.ObserveSpan(s.name, d)
	}
	if s.b.tr != nil {
		s.b.tr.add(s.name, s.start, d)
	}
}

// Observer returns a callback recording (stage, duration) observations
// against ctx's trace and sink, or nil when ctx carries neither — letting
// hot loops skip timing entirely when nobody is watching.  The duration is
// assumed to have just elapsed, so the span's start is back-dated by d.
func Observer(ctx context.Context) func(stage string, d time.Duration) {
	b, _ := ctx.Value(bindingKey{}).(binding)
	if b.tr == nil && b.sink == nil {
		return nil
	}
	return func(stage string, d time.Duration) {
		if b.sink != nil {
			b.sink.ObserveSpan(stage, d)
		}
		if b.tr != nil {
			b.tr.add(stage, time.Now().Add(-d), d)
		}
	}
}

// maxTraceSpans caps one request's recorded spans; a beam search over many
// gaps can emit hundreds.  Beyond the cap only aggregates are kept.
const maxTraceSpans = 256

// SpanRecord is one finished span, offsets relative to the trace start.
type SpanRecord struct {
	Name  string
	Start time.Duration // offset from trace start
	Dur   time.Duration
}

// StageSummary aggregates every span of one name within a trace.
type StageSummary struct {
	Name  string
	Count int
	Total time.Duration
}

// Trace records the spans of one request.  It is safe for concurrent use
// (a batch request's items may be traced in sequence or parallel).
type Trace struct {
	start   time.Time
	mu      sync.Mutex
	spans   []SpanRecord
	dropped int
	totals  map[string]*StageSummary
	order   []string
}

// NewTrace starts an empty trace clocked from now.
func NewTrace() *Trace {
	return &Trace{start: time.Now(), totals: make(map[string]*StageSummary)}
}

func (t *Trace) add(name string, start time.Time, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) < maxTraceSpans {
		t.spans = append(t.spans, SpanRecord{Name: name, Start: start.Sub(t.start), Dur: d})
	} else {
		t.dropped++
	}
	s := t.totals[name]
	if s == nil {
		s = &StageSummary{Name: name}
		t.totals[name] = s
		t.order = append(t.order, name)
	}
	s.Count++
	s.Total += d
}

// Records returns a copy of the recorded spans in completion order.
func (t *Trace) Records() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	return out
}

// Dropped reports how many spans overflowed the per-trace cap (their
// durations still count in Stages).
func (t *Trace) Dropped() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Stages returns per-stage aggregates in first-seen order.
func (t *Trace) Stages() []StageSummary {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]StageSummary, 0, len(t.order))
	for _, name := range t.order {
		out = append(out, *t.totals[name])
	}
	return out
}

// Elapsed is the time since the trace started.
func (t *Trace) Elapsed() time.Duration { return time.Since(t.start) }

// NewRequestID returns a 16-hex-char random request identifier for the
// X-Request-ID header and log correlation.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; a fixed ID
		// keeps the serving path alive.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

type requestIDKey struct{}

// ContextWithRequestID attaches a request ID for log correlation.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom returns the request ID bound to ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

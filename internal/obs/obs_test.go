package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("kamel_test_total", "A test counter.", L("kind", "a"))
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Fatalf("counter value %d, want 3", got)
	}
	// Re-registration returns the same series.
	if again := r.Counter("kamel_test_total", "ignored", L("kind", "a")); again != c {
		t.Error("re-registering the same (name, labels) did not return the existing counter")
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP kamel_test_total A test counter.",
		"# TYPE kamel_test_total counter",
		`kamel_test_total{kind="a"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter value not 0")
	}
	var h *Histogram
	h.Observe(1)
	h.ObserveDuration(time.Second)
}

func TestGaugeAndCounterFunc(t *testing.T) {
	r := NewRegistry()
	v := 41.5
	r.GaugeFunc("kamel_test_gauge", "g", func() float64 { return v })
	r.CounterFunc("kamel_test_fn_total", "c", func() float64 { return 7 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE kamel_test_gauge gauge",
		"kamel_test_gauge 41.5",
		"# TYPE kamel_test_fn_total counter",
		"kamel_test_fn_total 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBucketsAndExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("kamel_test_seconds", "h", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	s := h.Snapshot()
	wantCounts := []int64{1, 2, 1, 1}
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Errorf("bucket %d count %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 5 {
		t.Errorf("count %d, want 5", s.Count)
	}
	if s.Sum < 56.04 || s.Sum > 56.06 {
		t.Errorf("sum %v, want 56.05", s.Sum)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE kamel_test_seconds histogram",
		`kamel_test_seconds_bucket{le="0.1"} 1`,
		`kamel_test_seconds_bucket{le="1"} 3`,
		`kamel_test_seconds_bucket{le="10"} 4`,
		`kamel_test_seconds_bucket{le="+Inf"} 5`,
		"kamel_test_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "", []float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all in the (1,2] bucket
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); q < 1 || q > 2 {
		t.Errorf("p50 %v outside its bucket (1,2]", q)
	}
	if q := s.Quantile(0.99); q < 1 || q > 2 {
		t.Errorf("p99 %v outside its bucket (1,2]", q)
	}
	// +Inf observations clamp to the highest finite bound.
	h.Observe(100)
	if q := h.Snapshot().Quantile(1); q != 4 {
		t.Errorf("q1 with +Inf tail = %v, want clamp to 4", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Errorf("empty histogram quantile %v, want 0", q)
	}
}

func TestSpanNoopWithoutBinding(t *testing.T) {
	sp := StartSpan(context.Background(), "x")
	sp.End() // must not panic
	if ob := Observer(context.Background()); ob != nil {
		t.Error("Observer on an unbound context should be nil")
	}
}

func TestSpanRecordsTraceAndStageHistogram(t *testing.T) {
	r := NewRegistry()
	tr := NewTrace()
	ctx := With(context.Background(), tr, r)

	sp := StartSpan(ctx, "impute.predict")
	time.Sleep(time.Millisecond)
	sp.End()
	ob := Observer(ctx)
	if ob == nil {
		t.Fatal("Observer nil on a bound context")
	}
	ob("impute.constraints", 2*time.Millisecond)

	recs := tr.Records()
	if len(recs) != 2 {
		t.Fatalf("trace has %d spans, want 2", len(recs))
	}
	if recs[0].Name != "impute.predict" || recs[0].Dur <= 0 {
		t.Errorf("bad first span record %+v", recs[0])
	}
	stages := tr.Stages()
	if len(stages) != 2 || stages[1].Name != "impute.constraints" || stages[1].Total != 2*time.Millisecond {
		t.Errorf("bad stage summary %+v", stages)
	}

	snap := r.Stage("impute.predict").Snapshot()
	if snap.Count != 1 {
		t.Errorf("stage histogram count %d, want 1", snap.Count)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `kamel_stage_duration_seconds_bucket{stage="impute.predict",le="+Inf"} 1`) {
		t.Errorf("stage series missing from exposition:\n%s", b.String())
	}
}

func TestEnsureSink(t *testing.T) {
	r := NewRegistry()
	ctx := EnsureSink(context.Background(), r)
	if Observer(ctx) == nil {
		t.Fatal("EnsureSink did not bind the sink")
	}
	// Already-bound contexts are returned unchanged.
	if ctx2 := EnsureSink(ctx, NewRegistry()); ctx2 != ctx {
		t.Error("EnsureSink re-bound an already-bound context")
	}
	// A trace-only binding gains the sink but keeps its trace.
	tr := NewTrace()
	ctx3 := EnsureSink(With(context.Background(), tr, nil), r)
	if TraceFrom(ctx3) != tr {
		t.Error("EnsureSink dropped the existing trace")
	}
	if Observer(ctx3) == nil {
		t.Error("EnsureSink did not add the sink alongside the trace")
	}
}

func TestTraceSpanCap(t *testing.T) {
	tr := NewTrace()
	for i := 0; i < maxTraceSpans+10; i++ {
		tr.add("s", time.Now(), time.Microsecond, nil)
	}
	if got := len(tr.Records()); got != maxTraceSpans {
		t.Errorf("recorded %d spans, want cap %d", got, maxTraceSpans)
	}
	if tr.Dropped() != 10 {
		t.Errorf("dropped %d, want 10", tr.Dropped())
	}
	if st := tr.Stages(); st[0].Count != maxTraceSpans+10 {
		t.Errorf("aggregate count %d must include dropped spans", st[0].Count)
	}
}

func TestRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || a == b {
		t.Errorf("request IDs %q/%q: want 16 hex chars, distinct", a, b)
	}
	ctx := ContextWithRequestID(context.Background(), a)
	if got := RequestIDFrom(ctx); got != a {
		t.Errorf("RequestIDFrom = %q, want %q", got, a)
	}
	if RequestIDFrom(context.Background()) != "" {
		t.Error("RequestIDFrom on a bare context should be empty")
	}
}

// TestRegistryConcurrency exercises counters, histograms, stage creation,
// and exposition from many goroutines; run under -race it proves the
// registry's concurrency contract.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Inc()
				r.ObserveSpan("impute.predict", time.Microsecond)
				r.Histogram("conc_seconds", "", nil).Observe(0.001)
				if i%100 == 0 {
					var b strings.Builder
					if err := r.WritePrometheus(&b); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 4000 {
		t.Errorf("counter %d, want 4000", c.Value())
	}
	if snap := r.Stage("impute.predict").Snapshot(); snap.Count != 4000 {
		t.Errorf("stage count %d, want 4000", snap.Count)
	}
}

// Package obs is KAMEL's runtime observability substrate: an atomic,
// allocation-free-on-the-hot-path metrics registry (counters, gauges, and
// fixed-bucket latency histograms) exported in Prometheus text format, plus
// a context-propagated span recorder that gives every imputation request a
// per-stage latency breakdown (see span.go).
//
// Naming note: this package measures *where time goes* at serving time — the
// §8 evaluation's latency story.  The paper's *accuracy* metrics (recall and
// precision against ground truth, §8) live in internal/metrics; the two are
// unrelated despite the similar names.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric dimension, e.g. {stage="impute.predict"}.  Labels are
// fixed at registration time: a (name, labels) pair identifies one series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// DefBuckets are the default latency histogram bounds in seconds: 100µs to
// 30s, roughly exponential.  They cover everything from a warm-cache model
// lookup to a cold multi-gap beam search.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// metric is one registered series.
type metric struct {
	name   string
	help   string
	labels []Label
	ctr    *Counter
	fn     func() float64 // counter-func or gauge-func
	gauge  bool           // fn is a gauge (else counter semantics)
	hist   *Histogram
}

// Registry holds every registered series and renders them in Prometheus text
// exposition format.  Registration takes a lock; observing a counter or
// histogram afterwards is lock-free atomics.  Re-registering an identical
// (name, labels) pair returns the existing series, so hot paths may call
// Counter/Histogram per event and pay only a map lookup.
type Registry struct {
	mu      sync.Mutex
	series  map[string]*metric // id = name + rendered labels
	order   []*metric          // registration order, for stable exposition
	stageMu sync.RWMutex
	stages  map[string]*Histogram // span name → stage histogram (span.go sink)
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		series: make(map[string]*metric),
		stages: make(map[string]*Histogram),
	}
}

// seriesID renders the unique identity of one (name, labels) series.
func seriesID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// register adds (or returns the existing) series for id.
func (r *Registry) register(name, help string, labels []Label, mk func() *metric) *metric {
	id := seriesID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.series[id]; ok {
		return m
	}
	m := mk()
	m.name, m.help, m.labels = name, help, labels
	r.series[id] = m
	r.order = append(r.order, m)
	return m
}

// Counter registers (or fetches) a monotonically increasing counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.register(name, help, labels, func() *metric { return &metric{ctr: &Counter{}} })
	if m.ctr == nil {
		panic(fmt.Sprintf("obs: %s already registered with a different type", name))
	}
	return m.ctr
}

// CounterFunc registers a counter whose value is read from fn at exposition
// time — the bridge for counters whose source of truth lives elsewhere
// (e.g. the model cache's hit/miss totals), so /metrics and /v1/stats can
// never disagree.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, labels, func() *metric { return &metric{fn: fn} })
}

// GaugeFunc registers a gauge read from fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, labels, func() *metric { return &metric{fn: fn, gauge: true} })
}

// Histogram registers (or fetches) a fixed-bucket histogram.  buckets are
// upper bounds in ascending order; a final +Inf bucket is implicit.  Nil
// buckets means DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	m := r.register(name, help, labels, func() *metric {
		return &metric{hist: newHistogram(buckets)}
	})
	if m.hist == nil {
		panic(fmt.Sprintf("obs: %s already registered with a different type", name))
	}
	return m.hist
}

// StageHistogramName is the family every span observation aggregates into,
// labelled by span name: kamel_stage_duration_seconds{stage="impute.predict"}.
const StageHistogramName = "kamel_stage_duration_seconds"

// Stage returns the latency histogram a span named stage aggregates into,
// creating it on first use.  Pre-registering known stages makes them visible
// on /metrics before any traffic.
func (r *Registry) Stage(stage string) *Histogram {
	r.stageMu.RLock()
	h, ok := r.stages[stage]
	r.stageMu.RUnlock()
	if ok {
		return h
	}
	h = r.Histogram(StageHistogramName,
		"Per-stage pipeline latency, labelled by span name.",
		nil, L("stage", stage))
	r.stageMu.Lock()
	r.stages[stage] = h
	r.stageMu.Unlock()
	return h
}

// ObserveSpan implements SpanSink: span durations aggregate into the
// per-stage histogram family.
func (r *Registry) ObserveSpan(name string, d time.Duration) {
	r.Stage(name).Observe(d.Seconds())
}

// ObserveSpanExemplar implements SpanExemplarSink: the duration aggregates
// into the stage histogram and the trace ID becomes the bucket's exemplar, so
// a p99 stage bucket points at an inspectable trace.
func (r *Registry) ObserveSpanExemplar(name string, d time.Duration, traceID string) {
	r.Stage(name).ObserveExemplar(d.Seconds(), traceID)
}

// Counter is a monotonically increasing atomic counter.  All methods are
// nil-safe no-ops, so un-instrumented components cost nothing.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be non-negative to keep the counter monotonic).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Histogram is a fixed-bucket latency histogram: per-bucket atomic counts
// plus a running sum.  Observe is allocation-free: a linear scan over the
// bucket bounds (≤ ~20) and two atomic adds.  ObserveExemplar additionally
// remembers the trace ID of a recent bucket occupant.
type Histogram struct {
	bounds    []float64      // ascending upper bounds; +Inf implicit
	counts    []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count     atomic.Int64
	sum       atomic.Uint64 // float64 bits, CAS-accumulated
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar links one histogram bucket to a recent trace that landed in it.
type Exemplar struct {
	Value   float64   // the observed value
	TraceID string    // identity of the trace that produced it
	Time    time.Time // when it was observed
	LE      float64   // the bucket's upper bound (+Inf for the last)
}

func newHistogram(buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram buckets not ascending at %d: %v", i, buckets))
		}
	}
	return &Histogram{
		bounds:    buckets,
		counts:    make([]atomic.Int64, len(buckets)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(buckets)+1),
	}
}

// Observe records one value (seconds, for latency histograms).  Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.observe(v)
}

// observe records v and returns its bucket index.
func (h *Histogram) observe(v float64) int {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return i
		}
	}
}

// ObserveExemplar is Observe plus exemplar capture: the bucket the value
// lands in remembers traceID as its most recent occupant (one atomic pointer
// swap; the previous occupant is simply replaced).  Nil-safe; an empty
// traceID degrades to a plain Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	i := h.observe(v)
	if traceID == "" {
		return
	}
	le := math.Inf(1)
	if i < len(h.bounds) {
		le = h.bounds[i]
	}
	h.exemplars[i].Store(&Exemplar{Value: v, TraceID: traceID, Time: time.Now(), LE: le})
}

// Exemplars returns the current per-bucket exemplars, skipping empty buckets.
func (h *Histogram) Exemplars() []Exemplar {
	if h == nil {
		return nil
	}
	var out []Exemplar
	for i := range h.exemplars {
		if ex := h.exemplars[i].Load(); ex != nil {
			out = append(out, *ex)
		}
	}
	return out
}

// ObserveDuration records a duration in seconds.  Nil-safe.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds; the final +Inf bucket is implicit
	Counts []int64   // per-bucket (non-cumulative); len(Bounds)+1
	Sum    float64
	Count  int64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the bucket that crosses the target rank — the standard Prometheus
// histogram_quantile estimate.  Observations in the +Inf bucket clamp to the
// highest finite bound.  Returns 0 when the histogram is empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		next := cum + float64(c)
		if next >= rank && c > 0 {
			if i >= len(s.Bounds) {
				return s.Bounds[len(s.Bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = s.Bounds[i-1]
			}
			frac := (rank - cum) / float64(c)
			return lower + (s.Bounds[i]-lower)*frac
		}
		cum = next
	}
	return s.Bounds[len(s.Bounds)-1]
}

// EachHistogram visits every registered histogram with a snapshot, in
// registration order — the bench harness reads per-stage percentiles here.
func (r *Registry) EachHistogram(fn func(name string, labels []Label, snap HistogramSnapshot)) {
	r.mu.Lock()
	hists := make([]*metric, 0, len(r.order))
	for _, m := range r.order {
		if m.hist != nil {
			hists = append(hists, m)
		}
	}
	r.mu.Unlock()
	for _, m := range hists {
		fn(m.name, m.labels, m.hist.Snapshot())
	}
}

// EachExemplar visits every histogram bucket exemplar currently held, in
// registration order — the /v1/traces exemplar listing reads trace IDs here.
func (r *Registry) EachExemplar(fn func(name string, labels []Label, ex Exemplar)) {
	r.mu.Lock()
	hists := make([]*metric, 0, len(r.order))
	for _, m := range r.order {
		if m.hist != nil {
			hists = append(hists, m)
		}
	}
	r.mu.Unlock()
	for _, m := range hists {
		for _, ex := range m.hist.Exemplars() {
			fn(m.name, m.labels, ex)
		}
	}
}

// WritePrometheus renders every registered series in Prometheus text
// exposition format (version 0.0.4), grouped by family with one HELP/TYPE
// header each.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	series := make([]*metric, len(r.order))
	copy(series, r.order)
	r.mu.Unlock()

	// Group by family name, preserving first-registration order between
	// families and label order within one.
	byFamily := make(map[string][]*metric, len(series))
	var families []string
	for _, m := range series {
		if _, ok := byFamily[m.name]; !ok {
			families = append(families, m.name)
		}
		byFamily[m.name] = append(byFamily[m.name], m)
	}
	for _, fam := range families {
		ms := byFamily[fam]
		typ := "counter"
		switch {
		case ms[0].hist != nil:
			typ = "histogram"
		case ms[0].gauge:
			typ = "gauge"
		}
		if ms[0].help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam, strings.ReplaceAll(ms[0].help, "\n", " ")); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, typ); err != nil {
			return err
		}
		sorted := make([]*metric, len(ms))
		copy(sorted, ms)
		sort.SliceStable(sorted, func(i, j int) bool {
			return seriesID(sorted[i].name, sorted[i].labels) < seriesID(sorted[j].name, sorted[j].labels)
		})
		for _, m := range sorted {
			if err := writeSeries(w, m); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, m *metric) error {
	switch {
	case m.ctr != nil:
		_, err := fmt.Fprintf(w, "%s %d\n", seriesID(m.name, m.labels), m.ctr.Value())
		return err
	case m.fn != nil:
		_, err := fmt.Fprintf(w, "%s %s\n", seriesID(m.name, m.labels), formatFloat(m.fn()))
		return err
	case m.hist != nil:
		s := m.hist.Snapshot()
		var cum int64
		for i, bound := range s.Bounds {
			cum += s.Counts[i]
			le := append(append([]Label{}, m.labels...), L("le", formatFloat(bound)))
			if _, err := fmt.Fprintf(w, "%s %d\n", seriesID(m.name+"_bucket", le), cum); err != nil {
				return err
			}
		}
		cum += s.Counts[len(s.Bounds)]
		inf := append(append([]Label{}, m.labels...), L("le", "+Inf"))
		if _, err := fmt.Fprintf(w, "%s %d\n", seriesID(m.name+"_bucket", inf), cum); err != nil {
			return err
		}
		// Exemplars ride as comment lines (the 0.0.4 text format has no
		// exemplar syntax; comments keep every parser happy), linking a bucket
		// to the trace ID of a recent occupant.
		for _, ex := range m.hist.Exemplars() {
			le := append(append([]Label{}, m.labels...), L("le", formatFloat(ex.LE)))
			if _, err := fmt.Fprintf(w, "# exemplar %s trace_id=%s value=%s ts=%d\n",
				seriesID(m.name+"_bucket", le), ex.TraceID, formatFloat(ex.Value), ex.Time.Unix()); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", seriesID(m.name+"_sum", m.labels), formatFloat(s.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n", seriesID(m.name+"_count", m.labels), s.Count)
		return err
	}
	return nil
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

package obs

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SLO burn-rate monitoring: the serving layer feeds every request's status
// and latency into an SLOMonitor, which maintains rolling-window burn-rate
// gauges for two budgets — error rate and latency — and, when a budget burns
// hot for long enough, captures a CPU profile of the very process that is
// burning it.  The capture is rate-limited and the profiles directory is
// bounded, so the trigger is safe to leave armed in production.

// SLOConfig bounds the monitor.  Zero values select the defaults noted.
type SLOConfig struct {
	// Window is the rolling window burn rates are computed over (60s).
	Window time.Duration
	// ErrorBudget is the tolerated fraction of failed (5xx/429) requests
	// within the window (0.01).  Burn rate = observed rate / budget.
	ErrorBudget float64
	// LatencyTarget classifies a request as slow (500ms).
	LatencyTarget time.Duration
	// LatencyBudget is the tolerated fraction of slow requests (0.05).
	LatencyBudget float64
	// BurnThreshold is the burn rate at or above which an evaluation counts
	// as burning (1.0: consuming budget exactly as fast as allowed).
	BurnThreshold float64
	// Sustain is how many consecutive burning evaluations arm the profile
	// trigger (3) — one bad second must not cost a capture.
	Sustain int
	// MinRequests is the window floor below which burn rates read 0 (10);
	// a single failed request on an idle node is noise, not an incident.
	MinRequests int64
	// ProfileDir receives CPU captures; empty disables capturing (the burn
	// gauges still run).
	ProfileDir string
	// ProfileEvery rate-limits captures (10m).
	ProfileEvery time.Duration
	// ProfileDuration is the CPU capture length (5s).
	ProfileDuration time.Duration
	// MaxProfiles bounds the on-disk captures; oldest pruned first (8).
	MaxProfiles int
}

func (c *SLOConfig) defaults() {
	if c.Window <= 0 {
		c.Window = 60 * time.Second
	}
	if c.ErrorBudget <= 0 {
		c.ErrorBudget = 0.01
	}
	if c.LatencyTarget <= 0 {
		c.LatencyTarget = 500 * time.Millisecond
	}
	if c.LatencyBudget <= 0 {
		c.LatencyBudget = 0.05
	}
	if c.BurnThreshold <= 0 {
		c.BurnThreshold = 1.0
	}
	if c.Sustain <= 0 {
		c.Sustain = 3
	}
	if c.MinRequests <= 0 {
		c.MinRequests = 10
	}
	if c.ProfileEvery <= 0 {
		c.ProfileEvery = 10 * time.Minute
	}
	if c.ProfileDuration <= 0 {
		c.ProfileDuration = 5 * time.Second
	}
	if c.MaxProfiles <= 0 {
		c.MaxProfiles = 8
	}
}

// sloBucket accumulates one second of request outcomes.
type sloBucket struct {
	sec        int64 // unix second this bucket currently represents
	reqs, errs int64
	slow       int64
}

// SLOMonitor tracks rolling error-rate and latency-budget burn and triggers
// rate-limited CPU profile captures on sustained burn.  Observe is cheap
// (one short mutex hold); evaluation runs once per second from Run.
type SLOMonitor struct {
	cfg SLOConfig

	// test seams: the clock and the capture implementation.
	now     func() time.Time
	profile func(path string) error

	log *slog.Logger

	mu          sync.Mutex
	buckets     []sloBucket // ring indexed by unix-second modulo window size
	streak      int
	lastCapture time.Time
	capturing   bool

	errBurn  atomic.Uint64 // float64 bits, read by the gauge funcs
	latBurn  atomic.Uint64
	captures *Counter
}

// NewSLOMonitor builds a monitor and registers its burn gauges and capture
// counter on reg (nil reg skips registration; the monitor still works).
func NewSLOMonitor(cfg SLOConfig, reg *Registry, log *slog.Logger) *SLOMonitor {
	cfg.defaults()
	if log == nil {
		log = slog.Default()
	}
	m := &SLOMonitor{
		cfg: cfg,
		now: time.Now,
		log: log,
		// One bucket per window second plus slack so the second being
		// overwritten is always outside the evaluated window.
		buckets: make([]sloBucket, int(cfg.Window/time.Second)+2),
	}
	m.profile = m.captureCPUProfile
	if reg != nil {
		reg.GaugeFunc("kamel_slo_error_burn_rate",
			"Rolling-window error-rate burn: observed error fraction over the error budget.",
			func() float64 { return math.Float64frombits(m.errBurn.Load()) })
		reg.GaugeFunc("kamel_slo_latency_burn_rate",
			"Rolling-window latency burn: observed slow-request fraction over the latency budget.",
			func() float64 { return math.Float64frombits(m.latBurn.Load()) })
		m.captures = reg.Counter("kamel_slo_profile_captures_total",
			"CPU profiles captured by the SLO burn trigger.")
	}
	return m
}

// Observe records one finished request.  Failed means status ≥ 500 or 429
// (the shed signal); slow means duration ≥ LatencyTarget.
func (m *SLOMonitor) Observe(status int, d time.Duration) {
	if m == nil {
		return
	}
	sec := m.now().Unix()
	m.mu.Lock()
	b := &m.buckets[int(sec%int64(len(m.buckets)))]
	if b.sec != sec {
		*b = sloBucket{sec: sec}
	}
	b.reqs++
	if status >= 500 || status == 429 {
		b.errs++
	}
	if d >= m.cfg.LatencyTarget {
		b.slow++
	}
	m.mu.Unlock()
}

// EvalOnce recomputes the burn gauges over the trailing window and fires the
// profile trigger when burn has been sustained.  It returns the burn rates
// and whether a capture was started, for tests and Run's logging.
func (m *SLOMonitor) EvalOnce() (errBurn, latBurn float64, captured bool) {
	now := m.now()
	oldest := now.Unix() - int64(m.cfg.Window/time.Second) + 1

	m.mu.Lock()
	var reqs, errs, slow int64
	for i := range m.buckets {
		if b := &m.buckets[i]; b.sec >= oldest && b.sec <= now.Unix() {
			reqs += b.reqs
			errs += b.errs
			slow += b.slow
		}
	}
	if reqs >= m.cfg.MinRequests {
		errBurn = (float64(errs) / float64(reqs)) / m.cfg.ErrorBudget
		latBurn = (float64(slow) / float64(reqs)) / m.cfg.LatencyBudget
	}
	m.errBurn.Store(math.Float64bits(errBurn))
	m.latBurn.Store(math.Float64bits(latBurn))

	burning := errBurn >= m.cfg.BurnThreshold || latBurn >= m.cfg.BurnThreshold
	if burning {
		m.streak++
	} else {
		m.streak = 0
	}
	fire := burning && m.streak >= m.cfg.Sustain &&
		m.cfg.ProfileDir != "" && !m.capturing &&
		(m.lastCapture.IsZero() || now.Sub(m.lastCapture) >= m.cfg.ProfileEvery)
	if fire {
		m.capturing = true
		m.lastCapture = now
	}
	m.mu.Unlock()

	if fire {
		path := filepath.Join(m.cfg.ProfileDir,
			fmt.Sprintf("cpu-%s.pprof", now.UTC().Format("20060102T150405.000")))
		m.log.Warn("slo burn sustained; capturing CPU profile",
			"error_burn", errBurn, "latency_burn", latBurn,
			"streak", m.streak, "path", path)
		go m.runCapture(path)
	}
	return errBurn, latBurn, fire
}

// runCapture performs one capture and prunes the profiles directory.
func (m *SLOMonitor) runCapture(path string) {
	defer func() {
		m.mu.Lock()
		m.capturing = false
		m.mu.Unlock()
	}()
	if err := os.MkdirAll(m.cfg.ProfileDir, 0o755); err != nil {
		m.log.Error("slo profile dir", "err", err)
		return
	}
	if err := m.profile(path); err != nil {
		m.log.Error("slo profile capture", "err", err, "path", path)
		return
	}
	m.captures.Inc()
	m.prune()
}

// captureCPUProfile is the production profile implementation: a CPU profile
// of ProfileDuration written to path.
func (m *SLOMonitor) captureCPUProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := pprof.StartCPUProfile(f); err != nil {
		return err
	}
	time.Sleep(m.cfg.ProfileDuration)
	pprof.StopCPUProfile()
	return nil
}

// prune removes the oldest captures beyond MaxProfiles.  Capture filenames
// embed a UTC timestamp, so lexicographic order is age order.
func (m *SLOMonitor) prune() {
	entries, err := os.ReadDir(m.cfg.ProfileDir)
	if err != nil {
		return
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".pprof" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for len(names) > m.cfg.MaxProfiles {
		os.Remove(filepath.Join(m.cfg.ProfileDir, names[0]))
		names = names[1:]
	}
}

// Run evaluates once per second until ctx is done.
func (m *SLOMonitor) Run(ctx context.Context) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			m.EvalOnce()
		}
	}
}

package obs

import "context"

// Admission baggage: the client identity and admission priority of a request,
// carried on the context so the cluster transport can propagate them on every
// forwarded hop (one-hop forwards, scatter-gather legs, replica-failover
// walks, train fan-out).  Like the request ID and traceparent, these are
// request *metadata*, not tracing state — they live here because obs is the
// one substrate every layer (serve, cluster, batcher) already shares.
//
// The serving layer's admission controller attributes each request to the
// client named by HeaderClient and enforces per-client fair-share quotas on
// it; without propagation, a gateway's forwards would all be billed to the
// gateway peer instead of the originating tenant, letting one bulk client
// launder its traffic through the cluster topology.

// HeaderClient carries the client identity (tenant) of a request.  Set by
// clients; propagated verbatim on cluster forwards.
const HeaderClient = "X-Kamel-Client"

// HeaderPriority carries the admission priority ("interactive" or "bulk") so
// the receiving node's admission controller can apply its bulk headroom
// before reading the body.  The JSON body's priority field remains the
// authority for the batcher's dispatch lane; this header exists for the
// admission decision, which happens in middleware ahead of body decoding.
const HeaderPriority = "X-Kamel-Priority"

type clientIDKey struct{}
type priorityKey struct{}

// ContextWithClientID attaches the admission client identity to ctx.
func ContextWithClientID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, clientIDKey{}, id)
}

// ClientIDFrom returns the admission client identity bound to ctx, or "".
func ClientIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(clientIDKey{}).(string)
	return id
}

// ContextWithPriorityLabel attaches the admission priority's wire form
// ("interactive" or "bulk") for forward propagation.
func ContextWithPriorityLabel(ctx context.Context, pri string) context.Context {
	if pri == "" {
		return ctx
	}
	return context.WithValue(ctx, priorityKey{}, pri)
}

// PriorityLabelFrom returns the admission priority label bound to ctx, or "".
func PriorityLabelFrom(ctx context.Context) string {
	p, _ := ctx.Value(priorityKey{}).(string)
	return p
}

package obs

import (
	"fmt"
	"io"
	"strings"
)

// Metrics federation: /v1/cluster/metrics merges every node's Prometheus
// exposition into one document with a `node` label injected on each sample,
// so one scrape sees the whole replica group.  The merge is textual — each
// node renders its own registry with WritePrometheus and the gateway splices
// the streams — which keeps the federated surface honest: it can never
// disagree with what the node itself exposes on /metrics.

// FederatedSource is one node's exposition text as gathered by the gateway.
type FederatedSource struct {
	Node string
	Text []byte
	// Up records whether the node's exposition was fetched; a down node
	// contributes only its kamel_federation_up 0 sample.
	Up bool
}

// family collects one metric family's header and samples across sources.
type family struct {
	help    string
	typ     string
	samples []string
}

// WriteFederated merges the sources into one exposition document.  Per
// family, the first source's HELP/TYPE header wins (identical binaries render
// identical headers; a mixed-version cluster surfaces the older wording,
// which is harmless); samples from every source follow with the node label
// injected first.  Exemplar and other comment lines are dropped — they are
// per-node detail, available on each node's own /metrics.  A synthetic
// kamel_federation_up gauge reports per-node scrape success.
func WriteFederated(w io.Writer, sources []FederatedSource) error {
	fams := make(map[string]*family)
	var order []string
	fam := func(name string) *family {
		if f, ok := fams[name]; ok {
			return f
		}
		f := &family{}
		fams[name] = f
		order = append(order, name)
		return f
	}
	// _bucket/_sum/_count samples belong to their base histogram family; the
	// base name is registered by its TYPE line before any sample appears, so
	// membership resolves by lookup.
	baseOf := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, suf); ok {
				if _, exists := fams[base]; exists {
					return base
				}
			}
		}
		return name
	}

	for _, src := range sources {
		if !src.Up {
			continue
		}
		for _, line := range strings.Split(string(src.Text), "\n") {
			switch {
			case line == "":
			case strings.HasPrefix(line, "# HELP "):
				rest := line[len("# HELP "):]
				name, help, _ := strings.Cut(rest, " ")
				if f := fam(name); f.help == "" {
					f.help = help
				}
			case strings.HasPrefix(line, "# TYPE "):
				rest := line[len("# TYPE "):]
				name, typ, _ := strings.Cut(rest, " ")
				if f := fam(name); f.typ == "" {
					f.typ = typ
				}
			case strings.HasPrefix(line, "#"):
				// Exemplars and free comments: per-node detail, dropped.
			default:
				name := line
				if i := strings.IndexAny(line, "{ "); i >= 0 {
					name = line[:i]
				}
				f := fams[baseOf(name)]
				if f == nil {
					f = fam(name)
				}
				f.samples = append(f.samples, injectNodeLabel(line, src.Node))
			}
		}
	}
	up := fam("kamel_federation_up")
	up.help = "Whether the node's exposition was fetched for this federated scrape."
	up.typ = "gauge"
	for _, src := range sources {
		v := 0
		if src.Up {
			v = 1
		}
		up.samples = append(up.samples,
			fmt.Sprintf("kamel_federation_up{node=%q} %d", src.Node, v))
	}

	for _, name := range order {
		f := fams[name]
		if len(f.samples) == 0 {
			continue
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, f.help); err != nil {
				return err
			}
		}
		typ := f.typ
		if typ == "" {
			typ = "untyped"
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ); err != nil {
			return err
		}
		for _, s := range f.samples {
			if _, err := io.WriteString(w, s+"\n"); err != nil {
				return err
			}
		}
	}
	return nil
}

// injectNodeLabel rewrites one sample line so node=... is its first label.
func injectNodeLabel(line, node string) string {
	if i := strings.IndexByte(line, '{'); i >= 0 && i < strings.IndexByte(line, ' ') {
		rest := line[i+1:]
		if strings.HasPrefix(rest, "}") {
			return line[:i] + fmt.Sprintf("{node=%q", node) + rest
		}
		return line[:i] + fmt.Sprintf("{node=%q,", node) + rest
	}
	name, rest, ok := strings.Cut(line, " ")
	if !ok {
		return line
	}
	return fmt.Sprintf("%s{node=%q} %s", name, node, rest)
}

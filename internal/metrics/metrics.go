// Package metrics implements the paper's performance metrics (§8): recall
// and precision of imputed trajectories against ground truth under an
// accuracy threshold δ, plus the straight/curved segment classification of
// §8.4.  Failure rate lives with the imputers themselves (baseline.Stats);
// timing is measured by the harness.
//
// This package scores imputation *accuracy* offline.  Serving *latency* —
// per-stage histograms, request traces, the /metrics exposition — is the
// job of internal/obs, the runtime observability layer.
package metrics

import (
	"kamel/internal/geo"
	"kamel/internal/roadnet"
)

// RecallPrecision holds the two accuracy metrics for one comparison.
type RecallPrecision struct {
	Recall    float64
	Precision float64
	// Supports record how many discretized points each ratio is over.
	RecallSupport    int
	PrecisionSupport int
}

// Evaluate computes the paper's recall and precision between a ground-truth
// trajectory and an imputed one:
//
//   - Recall: discretize the ground truth every maxGap meters; the fraction
//     of those points within δ of the imputed polyline.
//   - Precision: discretize the imputed trajectory every maxGap meters; the
//     fraction of those points within δ of the ground-truth polyline.
func Evaluate(proj *geo.Projection, truth, imputed geo.Trajectory, maxGap, delta float64) RecallPrecision {
	truthLine := truth.XYs(proj)
	impLine := imputed.XYs(proj)
	var out RecallPrecision

	truthPts := geo.ResamplePolyline(truthLine, maxGap)
	out.RecallSupport = len(truthPts)
	if len(truthPts) > 0 {
		hit := 0
		for _, p := range truthPts {
			if geo.PointPolylineDist(p, impLine) <= delta {
				hit++
			}
		}
		out.Recall = float64(hit) / float64(len(truthPts))
	}

	impPts := geo.ResamplePolyline(impLine, maxGap)
	out.PrecisionSupport = len(impPts)
	if len(impPts) > 0 {
		hit := 0
		for _, p := range impPts {
			if geo.PointPolylineDist(p, truthLine) <= delta {
				hit++
			}
		}
		out.Precision = float64(hit) / float64(len(impPts))
	}
	return out
}

// Accumulator aggregates RecallPrecision over many trajectories, weighting
// by support so long trajectories count proportionally.
type Accumulator struct {
	recallHits, recallTotal       float64
	precisionHits, precisionTotal float64
}

// Add folds one evaluation into the accumulator.
func (a *Accumulator) Add(rp RecallPrecision) {
	a.recallHits += rp.Recall * float64(rp.RecallSupport)
	a.recallTotal += float64(rp.RecallSupport)
	a.precisionHits += rp.Precision * float64(rp.PrecisionSupport)
	a.precisionTotal += float64(rp.PrecisionSupport)
}

// Recall returns the aggregate recall (0 when nothing was added).
func (a *Accumulator) Recall() float64 {
	if a.recallTotal == 0 {
		return 0
	}
	return a.recallHits / a.recallTotal
}

// Precision returns the aggregate precision.
func (a *Accumulator) Precision() float64 {
	if a.precisionTotal == 0 {
		return 0
	}
	return a.precisionHits / a.precisionTotal
}

// SegmentKind classifies one ground-truth segment per §8.4.
type SegmentKind int

const (
	// Straight segments: Euclidean ≈ road-network distance (within tol).
	Straight SegmentKind = iota
	// Curved segments: the road meanders between the end points.
	Curved
)

// ClassifySegment labels the segment between two planar points using the
// true road network (evaluation-only knowledge): straight when the network
// distance exceeds the Euclidean distance by at most tol meters (paper
// default 5 m).
func ClassifySegment(net *roadnet.Network, a, b geo.XY, tol float64) (SegmentKind, error) {
	nd, err := net.NetworkDistance(a, b)
	if err != nil {
		return Straight, err
	}
	if nd-a.Dist(b) <= tol {
		return Straight, nil
	}
	return Curved, nil
}

// SplitByRoadType partitions a sparse trajectory's segments by kind and
// returns two trajectories containing only the points that bound segments of
// each kind.  Because recall/precision are computed per gap via the dense
// ground truth, the harness instead uses per-segment sub-trajectories: each
// consecutive point pair becomes a 2-point trajectory in the corresponding
// bucket.
func SplitByRoadType(net *roadnet.Network, proj *geo.Projection, sparse geo.Trajectory, tol float64) (straight, curved []geo.Trajectory, err error) {
	for i := 0; i+1 < len(sparse.Points); i++ {
		a := proj.ToXY(sparse.Points[i])
		b := proj.ToXY(sparse.Points[i+1])
		kind, cerr := ClassifySegment(net, a, b, tol)
		if cerr != nil {
			return nil, nil, cerr
		}
		seg := geo.Trajectory{
			ID:     sparse.ID,
			Points: []geo.Point{sparse.Points[i], sparse.Points[i+1]},
		}
		if kind == Straight {
			straight = append(straight, seg)
		} else {
			curved = append(curved, seg)
		}
	}
	return straight, curved, nil
}

package metrics

import (
	"math"
	"testing"

	"kamel/internal/geo"
	"kamel/internal/roadnet"
)

func proj() *geo.Projection { return geo.NewProjection(41.15, -8.61) }

// lineTraj builds a trajectory along given planar points.
func lineTraj(id string, pts ...geo.XY) geo.Trajectory {
	pr := proj()
	tr := geo.Trajectory{ID: id}
	for i, q := range pts {
		p := pr.ToLatLng(q)
		p.T = float64(i)
		tr.Points = append(tr.Points, p)
	}
	return tr
}

func TestEvaluatePerfectImputation(t *testing.T) {
	truth := lineTraj("t", geo.XY{X: 0, Y: 0}, geo.XY{X: 1000, Y: 0})
	rp := Evaluate(proj(), truth, truth, 100, 50)
	if rp.Recall != 1 || rp.Precision != 1 {
		t.Errorf("identical trajectories must score 1/1, got %f/%f", rp.Recall, rp.Precision)
	}
	if rp.RecallSupport < 10 {
		t.Errorf("support %d too low for a 1km trajectory at 100m", rp.RecallSupport)
	}
}

func TestEvaluateOffsetImputation(t *testing.T) {
	truth := lineTraj("t", geo.XY{X: 0, Y: 0}, geo.XY{X: 1000, Y: 0})
	// Imputed 60m north: outside δ=50 everywhere, inside δ=75 everywhere.
	shifted := lineTraj("s", geo.XY{X: 0, Y: 60}, geo.XY{X: 1000, Y: 60})
	tight := Evaluate(proj(), truth, shifted, 100, 50)
	if tight.Recall > 0.01 || tight.Precision > 0.01 {
		t.Errorf("60m offset at δ=50 must score ~0, got %f/%f", tight.Recall, tight.Precision)
	}
	loose := Evaluate(proj(), truth, shifted, 100, 75)
	if loose.Recall < 0.99 || loose.Precision < 0.99 {
		t.Errorf("60m offset at δ=75 must score ~1, got %f/%f", loose.Recall, loose.Precision)
	}
}

func TestEvaluateAsymmetry(t *testing.T) {
	// Imputed covers only half the truth: recall ~0.5, precision ~1.
	truth := lineTraj("t", geo.XY{X: 0, Y: 0}, geo.XY{X: 1000, Y: 0})
	half := lineTraj("h", geo.XY{X: 0, Y: 0}, geo.XY{X: 500, Y: 0})
	rp := Evaluate(proj(), truth, half, 100, 25)
	if math.Abs(rp.Recall-0.5) > 0.15 {
		t.Errorf("half coverage recall = %f, want ~0.5", rp.Recall)
	}
	if rp.Precision < 0.99 {
		t.Errorf("half coverage precision = %f, want 1", rp.Precision)
	}
	// And the reverse: imputed overshoots far beyond the truth.
	double := lineTraj("d", geo.XY{X: 0, Y: 0}, geo.XY{X: 2000, Y: 0})
	rp = Evaluate(proj(), truth, double, 100, 25)
	if rp.Recall < 0.99 {
		t.Errorf("overshoot recall = %f, want 1", rp.Recall)
	}
	if math.Abs(rp.Precision-0.5) > 0.15 {
		t.Errorf("overshoot precision = %f, want ~0.5", rp.Precision)
	}
}

func TestAccumulatorWeighting(t *testing.T) {
	var acc Accumulator
	acc.Add(RecallPrecision{Recall: 1, RecallSupport: 90, Precision: 1, PrecisionSupport: 90})
	acc.Add(RecallPrecision{Recall: 0, RecallSupport: 10, Precision: 0, PrecisionSupport: 10})
	if got := acc.Recall(); math.Abs(got-0.9) > 1e-9 {
		t.Errorf("weighted recall = %f, want 0.9", got)
	}
	if got := acc.Precision(); math.Abs(got-0.9) > 1e-9 {
		t.Errorf("weighted precision = %f, want 0.9", got)
	}
	var empty Accumulator
	if empty.Recall() != 0 || empty.Precision() != 0 {
		t.Error("empty accumulator must report 0")
	}
}

func TestClassifySegment(t *testing.T) {
	cfg := roadnet.DefaultCityConfig()
	cfg.Width, cfg.Height = 1200, 1200
	cfg.CurvedRoads = 0
	cfg.Roundabouts = 0
	cfg.Overpasses = 0
	net := roadnet.GenerateCity(cfg)

	// Along one street: straight.
	kind, err := ClassifySegment(net, geo.XY{X: 100, Y: 300}, geo.XY{X: 700, Y: 300}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if kind != Straight {
		t.Error("same-street segment must classify straight")
	}
	// Diagonal across blocks: curved (network detours around the block).
	kind, err = ClassifySegment(net, geo.XY{X: 100, Y: 300}, geo.XY{X: 700, Y: 900}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if kind != Curved {
		t.Error("cross-block segment must classify curved")
	}
}

func TestSplitByRoadType(t *testing.T) {
	cfg := roadnet.DefaultCityConfig()
	cfg.Width, cfg.Height = 1200, 1200
	cfg.CurvedRoads = 0
	cfg.Roundabouts = 0
	cfg.Overpasses = 0
	net := roadnet.GenerateCity(cfg)
	pr := proj()
	sparse := lineTraj("s",
		geo.XY{X: 100, Y: 300}, geo.XY{X: 700, Y: 300}, // straight leg
		geo.XY{X: 700, Y: 900}, // L-shaped leg => curved
	)
	straight, curved, err := SplitByRoadType(net, pr, sparse, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(straight) != 1 || len(curved) != 1 {
		t.Fatalf("split %d/%d, want 1/1", len(straight), len(curved))
	}
	if len(straight[0].Points) != 2 {
		t.Error("split segments must be point pairs")
	}
}

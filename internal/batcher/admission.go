package batcher

import (
	"container/list"
	"math"
	"sync"
	"time"

	"kamel/internal/obs"
)

// Admission is the serve path's adaptive concurrency controller: the
// replacement for the fixed token-bucket shed (ROADMAP item 2).  It keeps a
// concurrency limit that tracks observed queue delay instead of a hand-tuned
// constant, in the CoDel tradition: the congestion signal is the *minimum*
// queue delay seen over an evaluation interval — if even the luckiest request
// of the interval waited longer than the target, the system is genuinely
// backed up, not just absorbing a burst.  The limit moves by AIMD: a
// multiplicative cut while the minimum delay exceeds the target, an additive
// raise (with a faster idle catch-up) while it does not, bounded to
// [MinLimit, MaxLimit].
//
// On top of the global limit it enforces two fairness properties the fixed
// bucket could not:
//
//   - Per-client fair share: each client (identified by the X-Kamel-Client
//     header, tracked in an LRU-bounded table) may hold at most
//     ceil(limit·QuotaBurst/activeClients) slots.  A flooding tenant hits its
//     own ceiling and is shed with reason "quota" while well-behaved clients
//     keep admitting — the quota check runs *before* the global limit check
//     precisely so a flood is bounded in held slots below the full limit.
//   - Bulk headroom: bulk-priority work is shed once in-flight reaches
//     BulkHeadroom·limit, reserving the top slice of capacity for
//     interactive traffic, mirroring the dispatcher's priority lanes at the
//     door instead of in the queue.
//
// The controller has no goroutine: evaluation is lazy, triggered from Admit
// and ObserveQueueDelay when the interval has elapsed on the injected clock.
// That keeps it deterministic under a simulated clock in tests and free when
// idle.
type Admission struct {
	opts AdmissionOptions

	mu       sync.Mutex
	limit    int
	inflight int

	// Interval accumulator (CoDel window): the minimum and last queue delay
	// observed since lastEval.  sampled reports whether any delay arrived.
	minDelay  time.Duration
	lastDelay time.Duration
	sampled   bool
	lastEval  time.Time
	// observed is the congestion signal of the *previous* interval — the
	// value Retry-After and stats are derived from, stable between evals.
	observed time.Duration

	// clients is the LRU-bounded per-client table: front = most recent.
	clients map[string]*clientEntry
	lru     *list.List
	active  int // clients seen within ActivityWindow as of the last eval (+ fresh arrivals since)

	admitted  *obs.Counter
	shedLimit *obs.Counter
	shedQuota *obs.Counter
	shedBulk  *obs.Counter
	increases *obs.Counter
	decreases *obs.Counter
	evictions *obs.Counter
}

type clientEntry struct {
	id   string
	held int   // admission slots currently held
	shed int64 // lifetime sheds charged to this client
	seen time.Time
	elem *list.Element
}

// AdmissionOptions configure an Admission controller.  Zero values take the
// defaults noted per field.
type AdmissionOptions struct {
	// Target is the queue-delay bound the controller converges on: while the
	// interval's minimum observed queue delay exceeds it, the limit shrinks
	// (default 25ms).
	Target time.Duration
	// MaxLimit caps the concurrency limit and is the starting value, so an
	// uncongested server behaves exactly like the fixed limiter it replaces
	// (default 64).
	MaxLimit int
	// MinLimit floors the limit so overload can never wedge the server shut
	// (default 1).
	MinLimit int
	// Interval is the evaluation period: how often the limit adjusts and the
	// delay window resets (default 100ms).
	Interval time.Duration
	// QuotaBurst scales the per-client fair share: each active client may
	// hold up to ceil(limit·QuotaBurst/activeClients) slots, so QuotaBurst=2
	// lets a lone-but-bursty client use twice its equal share while still
	// bounding a flood (default 2; values below 1 are raised to 1).
	QuotaBurst float64
	// QuotaClients bounds the LRU client table (default 1024).
	QuotaClients int
	// BulkHeadroom is the fraction of the limit beyond which bulk-priority
	// admissions are shed, reserving the rest for interactive traffic
	// (default 0.75; 1 disables the reservation).
	BulkHeadroom float64
	// ActivityWindow is how recently a client must have been seen to count
	// toward the fair-share divisor (default 1s).
	ActivityWindow time.Duration
	// Now is the clock; nil uses time.Now.  Tests inject a simulated clock.
	Now func() time.Time
	// Registry receives the controller's metrics; nil uses a private one.
	Registry *obs.Registry
}

func (o *AdmissionOptions) normalize() {
	if o.Target <= 0 {
		o.Target = 25 * time.Millisecond
	}
	if o.MaxLimit <= 0 {
		o.MaxLimit = 64
	}
	if o.MinLimit <= 0 {
		o.MinLimit = 1
	}
	if o.MinLimit > o.MaxLimit {
		o.MinLimit = o.MaxLimit
	}
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	if o.QuotaBurst < 1 {
		if o.QuotaBurst != 0 {
			o.QuotaBurst = 1
		} else {
			o.QuotaBurst = 2
		}
	}
	if o.QuotaClients <= 0 {
		o.QuotaClients = 1024
	}
	if o.BulkHeadroom <= 0 || o.BulkHeadroom > 1 {
		o.BulkHeadroom = 0.75
	}
	if o.ActivityWindow <= 0 {
		o.ActivityWindow = time.Second
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
}

// Shed reports one refused admission: why, and what to tell the client.
type Shed struct {
	// Reason is "limit" (global concurrency), "quota" (per-client fair
	// share), or "bulk" (bulk headroom exhausted).
	Reason string
	// RetryAfter is the whole-second backoff derived from how far the
	// observed queue delay overshoots the target, clamped to [1, 30].
	RetryAfter int
	// Limit is the concurrency limit at shed time.
	Limit int
	// QueueDelayMS is the controller's current queue-delay estimate, for the
	// error envelope.
	QueueDelayMS float64
}

// NewAdmission builds the controller and registers its metric series.  The
// limit starts at MaxLimit, so behaviour is identical to the fixed limiter
// until congestion is actually observed.
func NewAdmission(opts AdmissionOptions) *Admission {
	opts.normalize()
	reg := opts.Registry
	a := &Admission{
		opts:     opts,
		limit:    opts.MaxLimit,
		lastEval: opts.Now(),
		clients:  make(map[string]*clientEntry),
		lru:      list.New(),
		admitted: reg.Counter("kamel_admission_admitted_total",
			"Requests admitted by the adaptive controller."),
		shedLimit: reg.Counter("kamel_admission_shed_total",
			"Requests shed by the adaptive controller.", obs.L("reason", "limit")),
		shedQuota: reg.Counter("kamel_admission_shed_total",
			"Requests shed by the adaptive controller.", obs.L("reason", "quota")),
		shedBulk: reg.Counter("kamel_admission_shed_total",
			"Requests shed by the adaptive controller.", obs.L("reason", "bulk")),
		increases: reg.Counter("kamel_admission_limit_increases_total",
			"Additive limit raises (queue delay at or under target)."),
		decreases: reg.Counter("kamel_admission_limit_decreases_total",
			"Multiplicative limit cuts (queue delay over target)."),
		evictions: reg.Counter("kamel_admission_client_evictions_total",
			"Client-table entries evicted by the LRU bound."),
	}
	reg.GaugeFunc("kamel_admission_limit",
		"Current adaptive concurrency limit.", func() float64 {
			a.mu.Lock()
			defer a.mu.Unlock()
			return float64(a.limit)
		})
	reg.GaugeFunc("kamel_admission_inflight",
		"Requests currently holding an admission slot.", func() float64 {
			a.mu.Lock()
			defer a.mu.Unlock()
			return float64(a.inflight)
		})
	reg.GaugeFunc("kamel_admission_queue_delay_seconds",
		"Minimum queue delay observed over the last evaluation interval.", func() float64 {
			a.mu.Lock()
			defer a.mu.Unlock()
			return a.observed.Seconds()
		})
	reg.GaugeFunc("kamel_admission_active_clients",
		"Clients seen within the activity window (fair-share divisor).", func() float64 {
			a.mu.Lock()
			defer a.mu.Unlock()
			return float64(a.active)
		})
	return a
}

// Admit asks for one slot on behalf of clientID at the given priority.  On
// success it returns a non-nil release closure (call exactly once) and a nil
// Shed; on refusal the release is nil and Shed says why.  An empty clientID
// is attributed to the shared "anonymous" client rather than bypassing
// quotas.
func (a *Admission) Admit(clientID string, pri Priority) (func(), *Shed) {
	if clientID == "" {
		clientID = "anonymous"
	}
	now := a.opts.Now()

	a.mu.Lock()
	a.maybeEvalLocked(now)
	c := a.touchClientLocked(clientID, now)

	// Fair-share quota first: a flooding client must be bounded *below* the
	// global limit, so innocents still find free slots behind it.
	if c.held >= a.clientCapLocked() {
		c.shed++
		shed := a.shedLocked("quota")
		a.mu.Unlock()
		a.shedQuota.Inc()
		return nil, shed
	}
	if pri == Bulk && float64(a.inflight) >= a.opts.BulkHeadroom*float64(a.limit) {
		c.shed++
		shed := a.shedLocked("bulk")
		a.mu.Unlock()
		a.shedBulk.Inc()
		return nil, shed
	}
	if a.inflight >= a.limit {
		c.shed++
		shed := a.shedLocked("limit")
		a.mu.Unlock()
		a.shedLimit.Inc()
		return nil, shed
	}
	a.inflight++
	c.held++
	a.mu.Unlock()
	a.admitted.Inc()

	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			a.inflight--
			c.held--
			a.mu.Unlock()
		})
	}, nil
}

// ObserveQueueDelay feeds one queue-delay sample (the batcher's queue wait,
// or any other congestion-indicating delay) into the current interval.
func (a *Admission) ObserveQueueDelay(d time.Duration) {
	now := a.opts.Now()
	a.mu.Lock()
	if !a.sampled || d < a.minDelay {
		a.minDelay = d
	}
	a.lastDelay = d
	a.sampled = true
	a.maybeEvalLocked(now)
	a.mu.Unlock()
}

// clientCapLocked is the per-client slot ceiling under the current limit and
// active-client population.
func (a *Admission) clientCapLocked() int {
	n := a.active
	if n < 1 {
		n = 1
	}
	cap := int(math.Ceil(float64(a.limit) * a.opts.QuotaBurst / float64(n)))
	if cap < 1 {
		cap = 1
	}
	return cap
}

// shedLocked builds the refusal document from controller state.
func (a *Admission) shedLocked(reason string) *Shed {
	retry := 1
	if a.observed > a.opts.Target {
		retry = int(math.Ceil(float64(a.observed) / float64(a.opts.Target)))
		if retry > 30 {
			retry = 30
		}
	}
	return &Shed{
		Reason:       reason,
		RetryAfter:   retry,
		Limit:        a.limit,
		QueueDelayMS: float64(a.observed) / float64(time.Millisecond),
	}
}

// touchClientLocked finds or creates the client entry, moves it to the LRU
// front, and keeps the active-client divisor honest: a client not seen within
// the activity window counts as newly active immediately (shrinking everyone's
// fair share without waiting for the next eval), while going inactive is only
// settled at eval time.
func (a *Admission) touchClientLocked(id string, now time.Time) *clientEntry {
	c := a.clients[id]
	if c == nil {
		c = &clientEntry{id: id, seen: now}
		c.elem = a.lru.PushFront(c)
		a.clients[id] = c
		a.active++
		a.evictLocked()
		return c
	}
	if now.Sub(c.seen) > a.opts.ActivityWindow {
		a.active++ // was idle, is active again
	}
	c.seen = now
	a.lru.MoveToFront(c.elem)
	return c
}

// evictLocked enforces the LRU bound, preferring entries holding no slots.
// An entry holding slots may still be evicted when everything does — its
// release closure keeps a direct pointer, so accounting stays correct; only
// its quota history is forgotten.
func (a *Admission) evictLocked() {
	for len(a.clients) > a.opts.QuotaClients {
		victim := a.lru.Back()
		for e := victim; e != nil; e = e.Prev() {
			if e.Value.(*clientEntry).held == 0 {
				victim = e
				break
			}
		}
		if victim == nil {
			return
		}
		c := victim.Value.(*clientEntry)
		a.lru.Remove(victim)
		delete(a.clients, c.id)
		a.evictions.Inc()
	}
}

// maybeEvalLocked runs the AIMD adjustment once per interval: a 10%
// multiplicative cut while the interval's minimum queue delay exceeded the
// target, an additive +1 raise otherwise — with an idle catch-up (quarter of
// the remaining headroom) when the interval saw no samples and nothing is in
// flight, so a server recovers to full capacity in a few intervals instead of
// one step per interval.  It also recounts active clients and resets the
// delay window.  Multiple elapsed intervals collapse into one adjustment:
// with lazy evaluation there is no traffic (hence no congestion evidence)
// during the gap.
func (a *Admission) maybeEvalLocked(now time.Time) {
	if now.Sub(a.lastEval) < a.opts.Interval {
		return
	}
	a.lastEval = now
	if a.sampled {
		a.observed = a.minDelay
		if a.minDelay > a.opts.Target {
			next := a.limit * 9 / 10
			if next >= a.limit {
				next = a.limit - 1
			}
			if next < a.opts.MinLimit {
				next = a.opts.MinLimit
			}
			if next != a.limit {
				a.limit = next
				a.decreases.Inc()
			}
		} else if a.limit < a.opts.MaxLimit {
			a.limit++
			a.increases.Inc()
		}
	} else {
		// No queue-delay evidence this interval.  If the server is idle,
		// recover fast; if requests are in flight but none queued long
		// enough to sample, creep up additively.
		if a.limit < a.opts.MaxLimit {
			step := 1
			if a.inflight == 0 {
				if h := (a.opts.MaxLimit - a.limit) / 4; h > step {
					step = h
				}
			}
			a.limit += step
			if a.limit > a.opts.MaxLimit {
				a.limit = a.opts.MaxLimit
			}
			a.increases.Inc()
		}
		a.observed = 0
	}
	a.sampled = false
	a.minDelay = 0
	a.lastDelay = 0

	// Settle the active-client divisor: count entries seen within the
	// window, dropping idle tail entries beyond a grace of one window so the
	// table tracks live tenants, not history.  The scan is bounded by
	// QuotaClients.
	active := 0
	var idle []*list.Element
	for e := a.lru.Front(); e != nil; e = e.Next() {
		c := e.Value.(*clientEntry)
		if now.Sub(c.seen) <= a.opts.ActivityWindow {
			active++
		} else if c.held == 0 && now.Sub(c.seen) > 2*a.opts.ActivityWindow {
			idle = append(idle, e)
		}
	}
	a.active = active
	for _, e := range idle {
		delete(a.clients, e.Value.(*clientEntry).id)
		a.lru.Remove(e)
	}
}

// AdmissionStats is the controller's point-in-time state, surfaced under
// "admission" in /v1/stats.
type AdmissionStats struct {
	Limit          int     `json:"limit"`
	MaxLimit       int     `json:"max_limit"`
	Inflight       int     `json:"inflight"`
	TargetMS       float64 `json:"target_ms"`
	QueueDelayMS   float64 `json:"queue_delay_ms"`
	ActiveClients  int     `json:"active_clients"`
	TrackedClients int     `json:"tracked_clients"`
	Admitted       int64   `json:"admitted"`
	ShedLimit      int64   `json:"shed_limit"`
	ShedQuota      int64   `json:"shed_quota"`
	ShedBulk       int64   `json:"shed_bulk"`
	LimitIncreases int64   `json:"limit_increases"`
	LimitDecreases int64   `json:"limit_decreases"`
}

// Stats reads the controller's current state.
func (a *Admission) Stats() AdmissionStats {
	a.mu.Lock()
	st := AdmissionStats{
		Limit:          a.limit,
		MaxLimit:       a.opts.MaxLimit,
		Inflight:       a.inflight,
		TargetMS:       float64(a.opts.Target) / float64(time.Millisecond),
		QueueDelayMS:   float64(a.observed) / float64(time.Millisecond),
		ActiveClients:  a.active,
		TrackedClients: len(a.clients),
	}
	a.mu.Unlock()
	st.Admitted = a.admitted.Value()
	st.ShedLimit = a.shedLimit.Value()
	st.ShedQuota = a.shedQuota.Value()
	st.ShedBulk = a.shedBulk.Value()
	st.LimitIncreases = a.increases.Value()
	st.LimitDecreases = a.decreases.Value()
	return st
}

// RetryAfterHint derives the backoff advice for a 429 produced elsewhere in
// the stack (e.g. the batcher's queue-full shed) from the controller's
// current congestion estimate: the same seconds/queue-delay pair a Shed would
// carry.
func (a *Admission) RetryAfterHint() (seconds int, queueDelayMS float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := a.shedLocked("")
	return s.RetryAfter, s.QueueDelayMS
}

// Limit reports the current concurrency limit (tests and stats).
func (a *Admission) Limit() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.limit
}

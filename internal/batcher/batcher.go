// Package batcher implements cross-request admission batching for the BERT
// hot path: the serve-side half of the paper's §6 "one model call, many
// predictions" amortization, applied *across* concurrent requests instead of
// only within one request's beam frontier.
//
// Requests do not call the engine; they Submit work items — (engine,
// sequence, mask) triples rendered as bert.MaskQuery — and receive a Future.
// A per-model dispatcher coalesces every in-flight item for that model into
// one PredictMaskedBatch call, bounded by MaxBatch items and a MaxWait
// coalescing window.  Because the engine's batched pass is element-wise
// equal to per-query calls whatever the batch composition, admission
// batching changes throughput, never results.
//
// Two batching regimes compose:
//
//   - Natural batching: while the engine is busy with one batch, newly
//     submitted items queue; the dispatcher grabs everything pending the
//     moment the call returns.  This costs zero added latency and is always
//     on.
//   - Windowed batching: when more than one imputation stream is active
//     (StreamEnter/StreamExit), the dispatcher additionally waits up to
//     MaxWait for concurrent streams to contribute before firing a partial
//     batch.  A single-stream process never waits, so unloaded latency is
//     unchanged.
//
// Dispatchers are ephemeral: one goroutine starts when the first item for a
// model arrives and exits as soon as its queue drains, so model-cache
// eviction and snapshot churn never leak goroutines.  Close fails all queued
// items and waits for dispatchers to finish — the system's drain path.
package batcher

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"kamel/internal/bert"
	"kamel/internal/obs"
)

// Engine answers one coalesced batch of masked predictions; *bert.Model is
// the production implementation.  The engine value is also the dispatcher
// key: items batch together exactly when they carry the same Engine.
type Engine interface {
	PredictMaskedBatch(queries []bert.MaskQuery) ([][]bert.Candidate, error)
}

// Priority orders items within a dispatch: all queued Interactive items are
// batched ahead of any Bulk item, so a flood of bulk batch-endpoint work
// cannot starve single interactive imputations (ROADMAP item 2's priority
// lanes, applied at the model queue).
type Priority int

const (
	// Interactive is the default lane: user-facing single imputations.
	Interactive Priority = iota
	// Bulk is the background lane: batch-endpoint and offline work.
	Bulk
	numLanes
)

// ParsePriority maps the wire form ("interactive", "bulk", "") to a lane;
// ok=false for anything else.  The empty string resolves to def.
func ParsePriority(s string, def Priority) (Priority, bool) {
	switch s {
	case "":
		return def, true
	case "interactive":
		return Interactive, true
	case "bulk":
		return Bulk, true
	}
	return def, false
}

// String returns the wire form of the priority.
func (p Priority) String() string {
	if p == Bulk {
		return "bulk"
	}
	return "interactive"
}

// Errors returned by Submit.
var (
	// ErrQueueFull reports that admitting the submission would overflow the
	// model's queue bound; the serving layer sheds it with 429.
	ErrQueueFull = errors.New("batcher: prediction queue full")
	// ErrClosed reports a submission to (or item drained by) a closed
	// batcher — the shutdown path.
	ErrClosed = errors.New("batcher: closed")
)

// Options configure a Batcher.  Zero values take the defaults.
type Options struct {
	// MaxBatch bounds the queries coalesced into one engine call
	// (default 64).
	MaxBatch int
	// MaxWait is the coalescing window: how long a dispatcher holds a
	// partial batch for other active streams to contribute (default 2ms;
	// negative disables windowing, leaving natural batching only).  The
	// window is only ever applied while more than one stream is active.
	MaxWait time.Duration
	// MaxQueue bounds queued queries per model; submissions that would
	// overflow it fail with ErrQueueFull (default 1024; negative disables).
	MaxQueue int
	// MaxStarve bounds how long strict priority ordering may pass over a
	// queued bulk item: once the oldest bulk item has waited this long,
	// each dispatch reserves a quarter of the batch (at least one slot)
	// for the bulk lane until it catches up.  Without this, sustained
	// interactive traffic starves bulk items indefinitely — they hold
	// MaxQueue budget while never running, turning new work into 429s
	// (default 100ms; negative disables aging).
	MaxStarve time.Duration
	// Registry receives the batcher's metrics (queue depth, batch size,
	// queue wait); nil uses a private registry, keeping Stats() working.
	Registry *obs.Registry
}

func (o *Options) normalize() {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.MaxWait == 0 {
		o.MaxWait = 2 * time.Millisecond
	}
	if o.MaxWait < 0 {
		o.MaxWait = 0
	}
	if o.MaxQueue == 0 {
		o.MaxQueue = 1024
	}
	if o.MaxQueue < 0 {
		o.MaxQueue = 0 // unbounded
	}
	if o.MaxStarve == 0 {
		o.MaxStarve = 100 * time.Millisecond
	}
	if o.MaxStarve < 0 {
		o.MaxStarve = 0 // aging disabled: strict priority
	}
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
}

// item is one queued masked prediction: a query plus the slot of the future
// it resolves into.
type item struct {
	ctx context.Context
	q   bert.MaskQuery
	fut *Future
	idx int
	enq time.Time
}

// dispatcher owns one model's queue.  Lanes and depth are guarded by the
// batcher mutex; the goroutine draining it lives exactly as long as the
// queue is non-empty.
type dispatcher struct {
	eng   Engine
	lanes [numLanes][]*item
	depth int
	wake  chan struct{} // buffered(1): queue grew, or Close emptied it
}

// Batcher coalesces masked-prediction submissions into per-model engine
// batches.  All methods are safe for concurrent use.
type Batcher struct {
	opts Options

	mu     sync.Mutex
	disp   map[Engine]*dispatcher
	closed bool
	wg     sync.WaitGroup // running dispatcher goroutines

	streams atomic.Int64 // active imputation streams (windowing gate)

	// waitObs, when set, receives every item's queue wait as it dispatches —
	// the adaptive admission controller's congestion signal (see admission.go).
	waitObs atomic.Pointer[func(time.Duration)]

	batchSize *obs.Histogram
	queueWait *obs.Histogram
	dispatch  *obs.Histogram
	batches   *obs.Counter
	items     *obs.Counter
	overflows *obs.Counter
	cancelled *obs.Counter
}

// New creates a Batcher and registers its metric series.
func New(opts Options) *Batcher {
	opts.normalize()
	reg := opts.Registry
	b := &Batcher{
		opts: opts,
		disp: make(map[Engine]*dispatcher),
		batchSize: reg.Histogram("kamel_batcher_batch_size",
			"Queries coalesced into one PredictMaskedBatch engine call.",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256}),
		queueWait: reg.Histogram("kamel_batcher_queue_wait_seconds",
			"Time a query spent queued before its engine call started.",
			[]float64{0.0001, 0.00025, 0.0005, 0.001, 0.002, 0.004, 0.008,
				0.016, 0.032, 0.064, 0.128, 0.256, 0.512, 1}),
		dispatch: reg.Stage("batcher.dispatch"),
		batches: reg.Counter("kamel_batcher_batches_total",
			"Coalesced engine calls dispatched."),
		items: reg.Counter("kamel_batcher_items_total",
			"Queries dispatched through coalesced engine calls."),
		overflows: reg.Counter("kamel_batcher_overflow_total",
			"Submissions rejected because a model queue was full."),
		cancelled: reg.Counter("kamel_batcher_cancelled_total",
			"Queued queries dropped because their request context ended."),
	}
	reg.GaugeFunc("kamel_batcher_queue_depth",
		"Queries currently queued across all model dispatchers.", func() float64 {
			b.mu.Lock()
			defer b.mu.Unlock()
			total := 0
			for _, d := range b.disp {
				total += d.depth
			}
			return float64(total)
		})
	reg.GaugeFunc("kamel_batcher_dispatchers",
		"Model dispatchers currently live.", func() float64 {
			b.mu.Lock()
			defer b.mu.Unlock()
			return float64(len(b.disp))
		})
	reg.GaugeFunc("kamel_batcher_streams",
		"Imputation streams currently active (windowing gate).", func() float64 {
			return float64(b.streams.Load())
		})
	return b
}

// SetQueueWaitObserver registers fn to receive every dispatched item's queue
// wait alongside the queue-wait histogram.  One observer is supported; nil
// unregisters.  The callback runs on the dispatcher goroutine, so it must be
// cheap and must not call back into the Batcher.
func (b *Batcher) SetQueueWaitObserver(fn func(time.Duration)) {
	if fn == nil {
		b.waitObs.Store(nil)
		return
	}
	b.waitObs.Store(&fn)
}

// StreamEnter marks one imputation stream active.  While more than one
// stream is active, dispatchers apply the MaxWait coalescing window; a
// single stream always dispatches immediately.
func (b *Batcher) StreamEnter() { b.streams.Add(1) }

// StreamExit undoes StreamEnter.
func (b *Batcher) StreamExit() { b.streams.Add(-1) }

// Future is the pending result of one Submit call.  Exactly one of the
// results/err pair is meaningful once Wait returns.
type Future struct {
	mu      sync.Mutex
	results [][]bert.Candidate
	err     error
	pending int
	done    chan struct{}
}

// Wait blocks until every submitted query resolved (returning results in
// query order) or ctx ends.  A Wait abandoned by cancellation leaves the
// queued items to be discarded by their dispatcher; the engine never runs
// them.
func (f *Future) Wait(ctx context.Context) ([][]bert.Candidate, error) {
	select {
	case <-f.done:
		if f.err != nil {
			return nil, f.err
		}
		return f.results, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// deliver resolves one slot; the future completes when all slots resolved.
func (f *Future) deliver(idx int, cands []bert.Candidate) {
	f.mu.Lock()
	f.results[idx] = cands
	f.pending--
	fin := f.pending == 0
	f.mu.Unlock()
	if fin {
		close(f.done)
	}
}

// fail completes the future with err (first error wins) on behalf of one
// slot.
func (f *Future) fail(idx int, err error) {
	f.mu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.pending--
	fin := f.pending == 0
	f.mu.Unlock()
	if fin {
		close(f.done)
	}
}

// Submit enqueues queries for eng on the given priority lane and returns a
// Future resolving to one candidate list per query, in query order.  The
// whole submission is admitted or rejected atomically: ErrQueueFull sheds it
// without partial enqueue, ErrClosed reports a shut-down batcher.
func (b *Batcher) Submit(ctx context.Context, eng Engine, queries []bert.MaskQuery, pri Priority) (*Future, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if pri < Interactive || pri >= numLanes {
		pri = Interactive
	}
	fut := &Future{
		results: make([][]bert.Candidate, len(queries)),
		pending: len(queries),
		done:    make(chan struct{}),
	}
	if len(queries) == 0 {
		close(fut.done)
		return fut, nil
	}
	now := time.Now()

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrClosed
	}
	d := b.disp[eng]
	if d == nil {
		d = &dispatcher{eng: eng, wake: make(chan struct{}, 1)}
		b.disp[eng] = d
		b.wg.Add(1)
		go b.run(d)
	}
	if b.opts.MaxQueue > 0 && d.depth+len(queries) > b.opts.MaxQueue {
		b.mu.Unlock()
		b.overflows.Inc()
		return nil, ErrQueueFull
	}
	for i := range queries {
		d.lanes[pri] = append(d.lanes[pri], &item{
			ctx: ctx, q: queries[i], fut: fut, idx: i, enq: now,
		})
	}
	d.depth += len(queries)
	b.mu.Unlock()

	select {
	case d.wake <- struct{}{}:
	default:
	}
	return fut, nil
}

// take pops up to MaxBatch items in priority order, discarding items whose
// context already ended (their futures are failed with the context error,
// outside the lock).  Interactive items dispatch first, but once the oldest
// bulk item has waited past MaxStarve a quarter of the batch (at least one
// slot) is reserved for the bulk lane, so sustained interactive traffic
// drains bulk at a bounded fraction of throughput instead of starving it.
// It returns the live batch.
func (b *Batcher) take(d *dispatcher) []*item {
	b.mu.Lock()
	batch := make([]*item, 0, min(d.depth, b.opts.MaxBatch))
	var dead []*item
	drain := func(lane Priority, want int) {
		q := d.lanes[lane]
		i := 0
		for ; i < len(q) && want > 0; i++ {
			if q[i].ctx.Err() != nil {
				dead = append(dead, q[i])
				continue
			}
			batch = append(batch, q[i])
			want--
		}
		d.depth -= i
		d.lanes[lane] = q[i:]
	}
	reserve := 0
	if b.opts.MaxStarve > 0 {
		if q := d.lanes[Bulk]; len(q) > 0 && time.Since(q[0].enq) >= b.opts.MaxStarve {
			reserve = max(1, b.opts.MaxBatch/4)
		}
	}
	drain(Interactive, b.opts.MaxBatch-reserve)
	drain(Bulk, b.opts.MaxBatch-len(batch))
	// Backfill: if the bulk lane had fewer items than its reservation, the
	// spare slots go back to interactive work.
	drain(Interactive, b.opts.MaxBatch-len(batch))
	b.mu.Unlock()
	for _, it := range dead {
		b.cancelled.Inc()
		it.fut.fail(it.idx, it.ctx.Err())
	}
	return batch
}

// run drains one model's queue and exits when it is empty.
func (b *Batcher) run(d *dispatcher) {
	defer b.wg.Done()
	for {
		b.mu.Lock()
		if d.depth == 0 || b.closed {
			delete(b.disp, d.eng)
			b.mu.Unlock()
			return
		}
		full := d.depth >= b.opts.MaxBatch
		b.mu.Unlock()

		// Coalescing window: hold a partial batch only while other streams
		// are active and might still contribute; a lone stream never waits.
		if !full && b.opts.MaxWait > 0 && b.streams.Load() > 1 {
			timer := time.NewTimer(b.opts.MaxWait)
		window:
			for {
				select {
				case <-timer.C:
					break window
				case <-d.wake:
					b.mu.Lock()
					full = d.depth >= b.opts.MaxBatch || b.closed
					b.mu.Unlock()
					if full {
						break window
					}
				}
			}
			timer.Stop()
		}

		batch := b.take(d)
		if len(batch) == 0 {
			continue
		}
		now := time.Now()
		obsFn := b.waitObs.Load()
		for _, it := range batch {
			wait := now.Sub(it.enq)
			b.queueWait.Observe(wait.Seconds())
			if obsFn != nil {
				(*obsFn)(wait)
			}
		}
		b.batches.Inc()
		b.items.Add(int64(len(batch)))
		b.batchSize.Observe(float64(len(batch)))

		queries := make([]bert.MaskQuery, len(batch))
		for i, it := range batch {
			queries[i] = it.q
		}
		dispStart := time.Now()
		results, err := d.eng.PredictMaskedBatch(queries)
		b.dispatch.ObserveDuration(time.Since(dispStart))
		if err != nil {
			for _, it := range batch {
				it.fut.fail(it.idx, err)
			}
			continue
		}
		for i, it := range batch {
			it.fut.deliver(it.idx, results[i])
		}
	}
}

// Close rejects further submissions, fails every queued item with ErrClosed,
// and waits for in-flight dispatches to finish delivering.  It is the drain
// hook of the serving lifecycle and is idempotent.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		b.wg.Wait()
		return
	}
	b.closed = true
	var drops []*item
	for _, d := range b.disp {
		for lane := range d.lanes {
			drops = append(drops, d.lanes[lane]...)
			d.lanes[lane] = nil
		}
		d.depth = 0
		select {
		case d.wake <- struct{}{}:
		default:
		}
	}
	b.mu.Unlock()
	for _, it := range drops {
		it.fut.fail(it.idx, ErrClosed)
	}
	b.wg.Wait()
}

// Stats is a point-in-time summary of coalescing behaviour, surfaced in
// /v1/stats and recorded next to the benchmarks in BENCH_impute.json.
type Stats struct {
	Batches        int64   `json:"batches"`
	Items          int64   `json:"items"`
	AvgBatch       float64 `json:"avg_batch"`
	Overflows      int64   `json:"overflows"`
	Cancelled      int64   `json:"cancelled"`
	QueueDepth     int     `json:"queue_depth"`
	Dispatchers    int     `json:"dispatchers"`
	ActiveStreams  int64   `json:"active_streams"`
	QueueWaitP50MS float64 `json:"queue_wait_p50_ms"`
	QueueWaitP99MS float64 `json:"queue_wait_p99_ms"`
}

// Stats reads the current counters and queue-wait quantiles.
func (b *Batcher) Stats() Stats {
	st := Stats{
		Batches:       b.batches.Value(),
		Items:         b.items.Value(),
		Overflows:     b.overflows.Value(),
		Cancelled:     b.cancelled.Value(),
		ActiveStreams: b.streams.Load(),
	}
	if st.Batches > 0 {
		st.AvgBatch = float64(st.Items) / float64(st.Batches)
	}
	b.mu.Lock()
	for _, d := range b.disp {
		st.QueueDepth += d.depth
	}
	st.Dispatchers = len(b.disp)
	b.mu.Unlock()
	snap := b.queueWait.Snapshot()
	st.QueueWaitP50MS = snap.Quantile(0.5) * 1e3
	st.QueueWaitP99MS = snap.Quantile(0.99) * 1e3
	return st
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

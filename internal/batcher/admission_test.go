package batcher

import (
	"context"
	"fmt"
	"testing"
	"time"

	"kamel/internal/bert"
)

// fakeClock is a manually advanced clock making controller evaluation
// deterministic: every test drives intervals explicitly.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) Now() time.Time          { return c.t }
func (c *fakeClock) Advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestAdmission(clk *fakeClock, tweak func(*AdmissionOptions)) *Admission {
	opts := AdmissionOptions{
		Target:   10 * time.Millisecond,
		MaxLimit: 64,
		Interval: 100 * time.Millisecond,
		Now:      clk.Now,
	}
	if tweak != nil {
		tweak(&opts)
	}
	return NewAdmission(opts)
}

// drive simulates one evaluation interval of uniform queue delay and advances
// the clock past the interval so the next controller touch evaluates.
func drive(a *Admission, clk *fakeClock, delay time.Duration) {
	a.ObserveQueueDelay(delay)
	clk.Advance(101 * time.Millisecond)
	a.ObserveQueueDelay(delay) // first touch after the boundary triggers eval
}

func TestAdmissionStartsAtMaxLimit(t *testing.T) {
	clk := newFakeClock()
	a := newTestAdmission(clk, nil)
	if got := a.Limit(); got != 64 {
		t.Fatalf("initial limit = %d, want MaxLimit 64", got)
	}
	release, shed := a.Admit("c1", Interactive)
	if shed != nil {
		t.Fatalf("first admit shed: %+v", shed)
	}
	release()
	release() // double release must not double-decrement
	if st := a.Stats(); st.Inflight != 0 {
		t.Fatalf("inflight after release = %d, want 0", st.Inflight)
	}
}

// Under sustained queue delay above target, the limit must converge downward
// (multiplicative decrease) and hold near the floor rather than oscillating
// back to max.
func TestAdmissionConvergesUnderStepOverload(t *testing.T) {
	clk := newFakeClock()
	a := newTestAdmission(clk, nil)
	for i := 0; i < 40; i++ {
		drive(a, clk, 50*time.Millisecond) // 5x the target, every interval
	}
	if got := a.Limit(); got != 1 {
		t.Fatalf("limit after sustained overload = %d, want MinLimit 1", got)
	}
	st := a.Stats()
	if st.LimitDecreases == 0 {
		t.Fatal("no multiplicative decreases recorded")
	}
	if st.QueueDelayMS < 49 || st.QueueDelayMS > 51 {
		t.Fatalf("observed queue delay = %.1fms, want ~50ms", st.QueueDelayMS)
	}
}

// When the overload clears, additive increase (plus idle catch-up) must bring
// the limit back up to MaxLimit.
func TestAdmissionRecoversAfterLoadDrops(t *testing.T) {
	clk := newFakeClock()
	a := newTestAdmission(clk, nil)
	for i := 0; i < 40; i++ {
		drive(a, clk, 50*time.Millisecond)
	}
	if got := a.Limit(); got != 1 {
		t.Fatalf("limit after overload = %d, want 1", got)
	}
	// Load drops but traffic continues at healthy delay: additive recovery.
	for i := 0; i < 10; i++ {
		drive(a, clk, time.Millisecond)
	}
	if got := a.Limit(); got != 11 {
		t.Fatalf("limit after 10 healthy intervals = %d, want 11 (additive +1)", got)
	}
	// Traffic stops entirely: idle catch-up recovers a quarter of the gap
	// per interval, reaching MaxLimit in a handful of evals.
	for i := 0; i < 20; i++ {
		clk.Advance(101 * time.Millisecond)
		if rel, shed := a.Admit("probe", Interactive); shed == nil {
			rel()
		}
	}
	if got := a.Limit(); got != 64 {
		t.Fatalf("limit after idle recovery = %d, want 64", got)
	}
}

// The limit check itself: beyond the current limit, interactive admissions
// shed with reason "limit" and a Retry-After derived from observed delay.
func TestAdmissionShedsAtLimit(t *testing.T) {
	clk := newFakeClock()
	a := newTestAdmission(clk, func(o *AdmissionOptions) { o.MaxLimit = 4 })
	var releases []func()
	for i := 0; i < 4; i++ {
		rel, shed := a.Admit(fmt.Sprintf("c%d", i), Interactive)
		if shed != nil {
			t.Fatalf("admit %d shed: %+v", i, shed)
		}
		releases = append(releases, rel)
	}
	_, shed := a.Admit("c9", Interactive)
	if shed == nil {
		t.Fatal("admission beyond the limit succeeded")
	}
	if shed.Reason != "limit" {
		t.Fatalf("shed reason = %q, want limit", shed.Reason)
	}
	if shed.RetryAfter < 1 {
		t.Fatalf("Retry-After = %d, want >= 1", shed.RetryAfter)
	}
	for _, rel := range releases {
		rel()
	}
	if rel, shed := a.Admit("c9", Interactive); shed != nil {
		t.Fatalf("admit after release shed: %+v", shed)
	} else {
		rel()
	}
}

// Retry-After must scale with the overshoot: observed/target rounded up,
// clamped to 30.
func TestAdmissionRetryAfterDerivation(t *testing.T) {
	clk := newFakeClock()
	a := newTestAdmission(clk, func(o *AdmissionOptions) { o.MaxLimit = 1 })
	rel, _ := a.Admit("holder", Interactive)
	defer rel()

	cases := []struct {
		delay time.Duration
		want  int
	}{
		{time.Millisecond, 1},      // under target: minimum backoff
		{35 * time.Millisecond, 4}, // ceil(35/10)
		{10 * time.Second, 30},     // clamped
	}
	for _, tc := range cases {
		drive(a, clk, tc.delay)
		_, shed := a.Admit("other", Interactive)
		if shed == nil {
			t.Fatalf("delay %v: expected shed", tc.delay)
		}
		if shed.RetryAfter != tc.want {
			t.Fatalf("delay %v: Retry-After = %d, want %d", tc.delay, shed.RetryAfter, tc.want)
		}
	}
}

// Bulk work must shed once in-flight crosses BulkHeadroom*limit while
// interactive work still admits, so a bulk flood cannot occupy the slice of
// capacity reserved for interactive traffic.
func TestAdmissionBulkCannotStarveInteractive(t *testing.T) {
	clk := newFakeClock()
	a := newTestAdmission(clk, func(o *AdmissionOptions) {
		o.MaxLimit = 8
		o.BulkHeadroom = 0.75
		o.QuotaBurst = 8 // quotas wide open: this test isolates the headroom
	})
	// A bulk flood from one tenant grabs what it can: exactly 6 slots (8*0.75).
	admitted := 0
	for i := 0; i < 20; i++ {
		if rel, shed := a.Admit("bulkTenant", Bulk); shed == nil {
			admitted++
			_ = rel
		} else if shed.Reason != "bulk" {
			t.Fatalf("bulk shed reason = %q, want bulk", shed.Reason)
		}
	}
	if admitted != 6 {
		t.Fatalf("bulk admitted %d slots, want 6 (0.75 * 8)", admitted)
	}
	// Interactive work still fits in the reserved headroom.
	for i := 0; i < 2; i++ {
		if _, shed := a.Admit("user", Interactive); shed != nil {
			t.Fatalf("interactive admit %d shed behind bulk flood: %+v", i, shed)
		}
	}
	// Now the global limit is genuinely full; interactive sheds with "limit".
	if _, shed := a.Admit("user", Interactive); shed == nil {
		t.Fatal("admission beyond MaxLimit succeeded")
	} else if shed.Reason != "limit" {
		t.Fatalf("shed reason = %q, want limit", shed.Reason)
	}
}

// A flooding client must hit its fair-share ceiling and be shed with reason
// "quota" while a second client keeps admitting.
func TestAdmissionQuotaIsolatesFloodingClient(t *testing.T) {
	clk := newFakeClock()
	a := newTestAdmission(clk, func(o *AdmissionOptions) {
		o.MaxLimit = 16
		o.QuotaBurst = 1
	})
	// Two active clients: fair share is ceil(16*1/2) = 8.
	relA, shed := a.Admit("good", Interactive)
	if shed != nil {
		t.Fatalf("good client shed: %+v", shed)
	}
	defer relA()

	flooded := 0
	var quotaSheds int
	for i := 0; i < 20; i++ {
		if _, shed := a.Admit("flood", Interactive); shed == nil {
			flooded++
		} else {
			if shed.Reason != "quota" {
				t.Fatalf("flood shed reason = %q, want quota", shed.Reason)
			}
			quotaSheds++
		}
	}
	if flooded != 8 {
		t.Fatalf("flooding client holds %d slots, want fair share 8", flooded)
	}
	if quotaSheds == 0 {
		t.Fatal("no quota sheds recorded")
	}
	// The good client still has room: 16 - 1 - 8 = 7 free slots, and its own
	// quota (8) is not exhausted.
	for i := 0; i < 7; i++ {
		if _, shed := a.Admit("good", Interactive); shed != nil {
			t.Fatalf("good client admit %d shed behind flood: %+v", i, shed)
		}
	}
	st := a.Stats()
	if st.ShedQuota == 0 {
		t.Fatal("stats missing quota sheds")
	}
	if st.ActiveClients != 2 {
		t.Fatalf("active clients = %d, want 2", st.ActiveClients)
	}
}

// The anonymous fallback shares one quota bucket: requests without a client
// header cannot bypass fair-share by being unattributed.
func TestAdmissionAnonymousSharesOneBucket(t *testing.T) {
	clk := newFakeClock()
	a := newTestAdmission(clk, func(o *AdmissionOptions) {
		o.MaxLimit = 8
		o.QuotaBurst = 1
	})
	rel, shed := a.Admit("named", Interactive)
	if shed != nil {
		t.Fatalf("named client shed: %+v", shed)
	}
	defer rel()
	anon := 0
	for i := 0; i < 10; i++ {
		if _, s := a.Admit("", Interactive); s == nil {
			anon++
		}
	}
	if anon != 4 { // ceil(8*1/2)
		t.Fatalf("anonymous slots = %d, want fair share 4", anon)
	}
}

// The client table must stay bounded: evictions prefer entries holding no
// slots, and the map never exceeds QuotaClients.
func TestAdmissionClientTableLRUBound(t *testing.T) {
	clk := newFakeClock()
	a := newTestAdmission(clk, func(o *AdmissionOptions) {
		o.MaxLimit = 256
		o.QuotaClients = 8
		o.QuotaBurst = 256 // quotas wide open
	})
	// A holder that must survive eviction pressure with correct accounting.
	relHold, shed := a.Admit("holder", Interactive)
	if shed != nil {
		t.Fatalf("holder shed: %+v", shed)
	}
	for i := 0; i < 100; i++ {
		rel, shed := a.Admit(fmt.Sprintf("churn-%d", i), Interactive)
		if shed != nil {
			t.Fatalf("churn client %d shed: %+v", i, shed)
		}
		rel()
	}
	st := a.Stats()
	if st.TrackedClients > 8 {
		t.Fatalf("tracked clients = %d, want <= 8", st.TrackedClients)
	}
	if st.Inflight != 1 {
		t.Fatalf("inflight = %d, want 1 (the holder)", st.Inflight)
	}
	relHold()
	if st := a.Stats(); st.Inflight != 0 {
		t.Fatalf("inflight after holder release = %d, want 0", st.Inflight)
	}
}

// Idle clients must fall out of the fair-share divisor after the activity
// window, restoring a lone client's full burst allowance.
func TestAdmissionActiveClientDecay(t *testing.T) {
	clk := newFakeClock()
	a := newTestAdmission(clk, func(o *AdmissionOptions) {
		o.MaxLimit = 16
		o.QuotaBurst = 1
		o.ActivityWindow = 500 * time.Millisecond
	})
	// Three clients touch; divisor becomes 3.
	for _, id := range []string{"a", "b", "c"} {
		rel, shed := a.Admit(id, Interactive)
		if shed != nil {
			t.Fatalf("client %s shed: %+v", id, shed)
		}
		rel()
	}
	if st := a.Stats(); st.ActiveClients != 3 {
		t.Fatalf("active clients = %d, want 3", st.ActiveClients)
	}
	// Two go idle past the window; after an eval only the returning client
	// counts, so it gets the whole limit to itself.
	clk.Advance(time.Second)
	got := 0
	for i := 0; i < 20; i++ {
		if _, shed := a.Admit("a", Interactive); shed == nil {
			got++
		}
	}
	if got != 16 {
		t.Fatalf("lone client admitted %d, want full limit 16", got)
	}
}

// The batcher's queue-wait observer hook must deliver each dispatched item's
// wait to the registered callback.
func TestBatcherQueueWaitObserver(t *testing.T) {
	b := New(Options{MaxWait: -1})
	defer b.Close()
	waits := make(chan time.Duration, 16)
	b.SetQueueWaitObserver(func(d time.Duration) { waits <- d })
	eng := &fakeEngine{}
	fut, err := b.Submit(context.Background(), eng, []bert.MaskQuery{q(1), q(2), q(3)}, Interactive)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := fut.Wait(context.Background()); err != nil {
		t.Fatalf("wait: %v", err)
	}
	for i := 0; i < 3; i++ {
		select {
		case d := <-waits:
			if d < 0 {
				t.Fatalf("negative queue wait %v", d)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("observer saw %d/3 waits", i)
		}
	}
	b.SetQueueWaitObserver(nil) // unregister must not panic the dispatcher
}

package batcher

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"kamel/internal/bert"
)

// fakeEngine answers each query deterministically from its first token, and
// records every batch composition it was called with.  An optional gate
// channel blocks calls so tests can pile submissions up behind a busy engine
// (the natural-batching regime).
type fakeEngine struct {
	mu      sync.Mutex
	batches [][]bert.MaskQuery
	gate    chan struct{} // if non-nil, each call receives once before running
	fail    error         // if non-nil, calls return this error
}

func (e *fakeEngine) PredictMaskedBatch(queries []bert.MaskQuery) ([][]bert.Candidate, error) {
	if e.gate != nil {
		<-e.gate
	}
	e.mu.Lock()
	cp := make([]bert.MaskQuery, len(queries))
	copy(cp, queries)
	e.batches = append(e.batches, cp)
	fail := e.fail
	e.mu.Unlock()
	if fail != nil {
		return nil, fail
	}
	out := make([][]bert.Candidate, len(queries))
	for i, q := range queries {
		out[i] = []bert.Candidate{{Token: q.Tokens[0], Prob: 1}}
	}
	return out, nil
}

func (e *fakeEngine) calls() [][]bert.MaskQuery {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([][]bert.MaskQuery(nil), e.batches...)
}

func q(tok int) bert.MaskQuery {
	return bert.MaskQuery{Tokens: []int{tok}, MaskPos: 0, TopK: 1}
}

// TestSubmitDeliversInOrder checks the basic contract: results come back in
// query order and match what the engine produced for each query.
func TestSubmitDeliversInOrder(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	eng := &fakeEngine{}
	fut, err := b.Submit(context.Background(), eng, []bert.MaskQuery{q(7), q(8), q(9)}, Interactive)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	res, err := fut.Wait(context.Background())
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	for i, want := range []int{7, 8, 9} {
		if len(res[i]) != 1 || res[i][0].Token != want {
			t.Fatalf("slot %d: got %+v, want token %d", i, res[i], want)
		}
	}
}

// TestNaturalBatching piles concurrent submissions behind a gated engine and
// checks they coalesce: the total engine calls must be far fewer than the
// submissions, and every query must still resolve to its own answer.
func TestNaturalBatching(t *testing.T) {
	b := New(Options{MaxBatch: 64, MaxWait: -1})
	defer b.Close()
	eng := &fakeEngine{gate: make(chan struct{})}

	const n = 24
	var wg sync.WaitGroup
	errs := make([]error, n)
	toks := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fut, err := b.Submit(context.Background(), eng, []bert.MaskQuery{q(100 + i)}, Interactive)
			if err != nil {
				errs[i] = err
				return
			}
			res, err := fut.Wait(context.Background())
			if err != nil {
				errs[i] = err
				return
			}
			toks[i] = res[0][0].Token
		}(i)
	}
	// Let the first dispatch start (and block on the gate) while the rest
	// queue up behind it, then release the engine until everything drains.
	time.Sleep(20 * time.Millisecond)
	go func() {
		for {
			select {
			case eng.gate <- struct{}{}:
			case <-time.After(200 * time.Millisecond):
				return
			}
		}
	}()
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("submission %d: %v", i, errs[i])
		}
		if toks[i] != 100+i {
			t.Fatalf("submission %d: got token %d, want %d", i, toks[i], 100+i)
		}
	}
	calls := eng.calls()
	if len(calls) >= n {
		t.Fatalf("no coalescing: %d engine calls for %d submissions", len(calls), n)
	}
	var maxBatch int
	for _, c := range calls {
		if len(c) > maxBatch {
			maxBatch = len(c)
		}
	}
	if maxBatch < 2 {
		t.Fatalf("expected at least one coalesced batch, largest was %d", maxBatch)
	}
	st := b.Stats()
	if st.Items != n || st.Batches != int64(len(calls)) {
		t.Fatalf("stats mismatch: %+v vs %d calls", st, len(calls))
	}
	if st.AvgBatch <= 1 {
		t.Fatalf("avg batch %v, want > 1", st.AvgBatch)
	}
}

// TestPriorityOrdering queues bulk then interactive work behind a busy
// engine and checks the next dispatch carries the interactive items first.
func TestPriorityOrdering(t *testing.T) {
	b := New(Options{MaxBatch: 4, MaxWait: -1})
	defer b.Close()
	eng := &fakeEngine{gate: make(chan struct{})}

	// First submission occupies the dispatcher (blocked on the gate).
	first, err := b.Submit(context.Background(), eng, []bert.MaskQuery{q(1)}, Bulk)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	time.Sleep(10 * time.Millisecond)

	// Queue 4 bulk then 2 interactive queries; MaxBatch is 4, so the next
	// dispatch must be the 2 interactive plus only 2 of the bulk.
	bulk, err := b.Submit(context.Background(), eng, []bert.MaskQuery{q(10), q(11), q(12), q(13)}, Bulk)
	if err != nil {
		t.Fatalf("Submit bulk: %v", err)
	}
	inter, err := b.Submit(context.Background(), eng, []bert.MaskQuery{q(20), q(21)}, Interactive)
	if err != nil {
		t.Fatalf("Submit interactive: %v", err)
	}

	go func() {
		for i := 0; i < 3; i++ {
			eng.gate <- struct{}{}
		}
	}()
	for _, fut := range []*Future{first, bulk, inter} {
		if _, err := fut.Wait(context.Background()); err != nil {
			t.Fatalf("Wait: %v", err)
		}
	}

	calls := eng.calls()
	if len(calls) != 3 {
		t.Fatalf("got %d engine calls, want 3: %v", len(calls), calls)
	}
	second := calls[1]
	if len(second) != 4 {
		t.Fatalf("second batch size %d, want 4", len(second))
	}
	if second[0].Tokens[0] != 20 || second[1].Tokens[0] != 21 {
		t.Fatalf("interactive items not first in batch: %v", second)
	}
	if second[2].Tokens[0] != 10 || second[3].Tokens[0] != 11 {
		t.Fatalf("bulk items not FIFO after interactive: %v", second)
	}
}

// TestBulkAging checks the anti-starvation valve: once a queued bulk item
// has waited past MaxStarve, the next dispatch reserves a slot for the bulk
// lane even though enough interactive work is queued to fill the whole
// batch.  Without aging, sustained interactive traffic would pin bulk items
// in the queue forever.
func TestBulkAging(t *testing.T) {
	b := New(Options{MaxBatch: 2, MaxWait: -1, MaxStarve: 20 * time.Millisecond})
	defer b.Close()
	eng := &fakeEngine{gate: make(chan struct{})}

	// First submission occupies the dispatcher (blocked on the gate).
	first, err := b.Submit(context.Background(), eng, []bert.MaskQuery{q(1)}, Interactive)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	time.Sleep(10 * time.Millisecond)

	// One bulk item, then more interactive work than a batch holds.
	bulk, err := b.Submit(context.Background(), eng, []bert.MaskQuery{q(50)}, Bulk)
	if err != nil {
		t.Fatalf("Submit bulk: %v", err)
	}
	inter, err := b.Submit(context.Background(), eng, []bert.MaskQuery{q(10), q(11), q(12)}, Interactive)
	if err != nil {
		t.Fatalf("Submit interactive: %v", err)
	}

	// Let the bulk item age past MaxStarve while the engine stays busy.
	time.Sleep(30 * time.Millisecond)
	go func() {
		for i := 0; i < 3; i++ {
			eng.gate <- struct{}{}
		}
	}()
	for _, fut := range []*Future{first, bulk, inter} {
		if _, err := fut.Wait(context.Background()); err != nil {
			t.Fatalf("Wait: %v", err)
		}
	}

	calls := eng.calls()
	if len(calls) != 3 {
		t.Fatalf("got %d engine calls, want 3: %v", len(calls), calls)
	}
	// Dispatch 2 must carry the aged bulk item in its reserved slot, behind
	// the interactive item that fills the rest of the batch.
	second := calls[1]
	if len(second) != 2 || second[0].Tokens[0] != 10 || second[1].Tokens[0] != 50 {
		t.Fatalf("aged bulk item not dispatched in reserved slot: %v", second)
	}
	// With the bulk lane drained, dispatch 3 is pure interactive FIFO.
	third := calls[2]
	if len(third) != 2 || third[0].Tokens[0] != 11 || third[1].Tokens[0] != 12 {
		t.Fatalf("post-aging dispatch wrong: %v", third)
	}
}

// TestCancellationMidQueue cancels a submission while it is queued behind a
// busy engine: its future fails with the context error, the engine never
// sees its queries, and other work is untouched.
func TestCancellationMidQueue(t *testing.T) {
	b := New(Options{MaxWait: -1})
	defer b.Close()
	eng := &fakeEngine{gate: make(chan struct{})}

	first, err := b.Submit(context.Background(), eng, []bert.MaskQuery{q(1)}, Interactive)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	time.Sleep(10 * time.Millisecond)

	ctx, cancel := context.WithCancel(context.Background())
	doomed, err := b.Submit(ctx, eng, []bert.MaskQuery{q(2)}, Interactive)
	if err != nil {
		t.Fatalf("Submit doomed: %v", err)
	}
	survivor, err := b.Submit(context.Background(), eng, []bert.MaskQuery{q(3)}, Interactive)
	if err != nil {
		t.Fatalf("Submit survivor: %v", err)
	}
	cancel()

	go func() {
		for i := 0; i < 2; i++ {
			eng.gate <- struct{}{}
		}
	}()
	if _, err := doomed.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("doomed future: err=%v, want context.Canceled", err)
	}
	if _, err := first.Wait(context.Background()); err != nil {
		t.Fatalf("first: %v", err)
	}
	res, err := survivor.Wait(context.Background())
	if err != nil || res[0][0].Token != 3 {
		t.Fatalf("survivor: res=%v err=%v", res, err)
	}
	for _, c := range eng.calls() {
		for _, qq := range c {
			if qq.Tokens[0] == 2 {
				t.Fatalf("cancelled query reached the engine: %v", c)
			}
		}
	}
	if got := b.Stats().Cancelled; got != 1 {
		t.Fatalf("cancelled counter = %d, want 1", got)
	}
}

// TestQueueOverflow checks submissions shed with ErrQueueFull once the
// per-model queue bound is hit, without partial enqueue.
func TestQueueOverflow(t *testing.T) {
	b := New(Options{MaxQueue: 3, MaxWait: -1})
	defer b.Close()
	eng := &fakeEngine{gate: make(chan struct{})}

	first, err := b.Submit(context.Background(), eng, []bert.MaskQuery{q(1)}, Interactive)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	time.Sleep(10 * time.Millisecond)
	// Queue holds 0 now (item 1 is in flight); 3 fit, the 4th query tips it.
	if _, err := b.Submit(context.Background(), eng, []bert.MaskQuery{q(2), q(3)}, Interactive); err != nil {
		t.Fatalf("Submit within bound: %v", err)
	}
	if _, err := b.Submit(context.Background(), eng, []bert.MaskQuery{q(4), q(5)}, Interactive); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow err = %v, want ErrQueueFull", err)
	}
	if got := b.Stats().Overflows; got != 1 {
		t.Fatalf("overflow counter = %d, want 1", got)
	}
	go func() {
		for i := 0; i < 2; i++ {
			eng.gate <- struct{}{}
		}
	}()
	if _, err := first.Wait(context.Background()); err != nil {
		t.Fatalf("first: %v", err)
	}
}

// TestEngineErrorFailsBatch propagates an engine error to every future in
// the failed batch.
func TestEngineErrorFailsBatch(t *testing.T) {
	b := New(Options{MaxWait: -1})
	defer b.Close()
	boom := fmt.Errorf("engine exploded")
	eng := &fakeEngine{fail: boom}
	fut, err := b.Submit(context.Background(), eng, []bert.MaskQuery{q(1), q(2)}, Interactive)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := fut.Wait(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("Wait err = %v, want %v", err, boom)
	}
}

// TestCloseDrains checks Close fails queued items with ErrClosed, rejects
// later submissions, and leaves no dispatcher running.
func TestCloseDrains(t *testing.T) {
	b := New(Options{MaxWait: -1})
	eng := &fakeEngine{gate: make(chan struct{})}

	first, err := b.Submit(context.Background(), eng, []bert.MaskQuery{q(1)}, Interactive)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	time.Sleep(10 * time.Millisecond)
	queued, err := b.Submit(context.Background(), eng, []bert.MaskQuery{q(2)}, Interactive)
	if err != nil {
		t.Fatalf("Submit queued: %v", err)
	}

	done := make(chan struct{})
	go func() {
		b.Close()
		close(done)
	}()
	// Close must fail the queued item promptly even with the engine busy.
	if _, err := queued.Wait(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("queued future err = %v, want ErrClosed", err)
	}
	eng.gate <- struct{}{} // release the in-flight batch
	if _, err := first.Wait(context.Background()); err != nil {
		t.Fatalf("in-flight batch must still deliver: %v", err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not return after engine drained")
	}
	if _, err := b.Submit(context.Background(), eng, []bert.MaskQuery{q(3)}, Interactive); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close Submit err = %v, want ErrClosed", err)
	}
	if st := b.Stats(); st.Dispatchers != 0 || st.QueueDepth != 0 {
		t.Fatalf("dispatchers/queue not drained: %+v", st)
	}
}

// TestWindowedCoalescing checks that with multiple streams active the
// dispatcher holds a partial batch for the coalescing window, merging two
// submissions that arrive a moment apart into one engine call.
func TestWindowedCoalescing(t *testing.T) {
	b := New(Options{MaxWait: 80 * time.Millisecond})
	defer b.Close()
	eng := &fakeEngine{}

	b.StreamEnter()
	b.StreamEnter() // two active streams: window applies
	defer b.StreamExit()
	defer b.StreamExit()

	fut1, err := b.Submit(context.Background(), eng, []bert.MaskQuery{q(1)}, Interactive)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	time.Sleep(15 * time.Millisecond) // well inside the window
	fut2, err := b.Submit(context.Background(), eng, []bert.MaskQuery{q(2)}, Bulk)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := fut1.Wait(context.Background()); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if _, err := fut2.Wait(context.Background()); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	calls := eng.calls()
	if len(calls) != 1 || len(calls[0]) != 2 {
		t.Fatalf("window did not coalesce: %d calls %v", len(calls), calls)
	}
}

// TestSingleStreamNoWait checks a lone stream dispatches without the window:
// the submission completes far faster than MaxWait.
func TestSingleStreamNoWait(t *testing.T) {
	b := New(Options{MaxWait: time.Second})
	defer b.Close()
	eng := &fakeEngine{}
	b.StreamEnter() // exactly one stream
	defer b.StreamExit()

	t0 := time.Now()
	fut, err := b.Submit(context.Background(), eng, []bert.MaskQuery{q(1)}, Interactive)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := fut.Wait(context.Background()); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if el := time.Since(t0); el > 500*time.Millisecond {
		t.Fatalf("single-stream dispatch took %v; the window must not apply", el)
	}
}

// TestEmptySubmit resolves immediately.
func TestEmptySubmit(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	fut, err := b.Submit(context.Background(), &fakeEngine{}, nil, Interactive)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	res, err := fut.Wait(context.Background())
	if err != nil || len(res) != 0 {
		t.Fatalf("empty submit: res=%v err=%v", res, err)
	}
}

// TestDispatcherExitsWhenDrained checks the per-model goroutine is ephemeral:
// after work drains, no dispatcher entry remains (so evicted models cannot
// leak goroutines), and a later submission starts a fresh one.
func TestDispatcherExitsWhenDrained(t *testing.T) {
	b := New(Options{MaxWait: -1})
	defer b.Close()
	eng := &fakeEngine{}
	for round := 0; round < 3; round++ {
		fut, err := b.Submit(context.Background(), eng, []bert.MaskQuery{q(round)}, Interactive)
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		if _, err := fut.Wait(context.Background()); err != nil {
			t.Fatalf("Wait: %v", err)
		}
		deadline := time.Now().Add(2 * time.Second)
		for b.Stats().Dispatchers != 0 {
			if time.Now().After(deadline) {
				t.Fatalf("dispatcher did not exit after drain (round %d)", round)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// TestParsePriority covers the wire mapping.
func TestParsePriority(t *testing.T) {
	cases := []struct {
		in   string
		def  Priority
		want Priority
		ok   bool
	}{
		{"", Interactive, Interactive, true},
		{"", Bulk, Bulk, true},
		{"interactive", Bulk, Interactive, true},
		{"bulk", Interactive, Bulk, true},
		{"urgent", Interactive, Interactive, false},
	}
	for _, c := range cases {
		got, ok := ParsePriority(c.in, c.def)
		if got != c.want || ok != c.ok {
			t.Fatalf("ParsePriority(%q, %v) = %v,%v want %v,%v", c.in, c.def, got, ok, c.want, c.ok)
		}
	}
}

package vocab

import (
	"bytes"
	"testing"
	"testing/quick"

	"kamel/internal/grid"
)

func TestSpecialsReserved(t *testing.T) {
	v := New()
	if v.Size() != NumSpecial {
		t.Fatalf("empty vocab size = %d, want %d", v.Size(), NumSpecial)
	}
	id := v.Add(grid.Cell(42))
	if id != NumSpecial {
		t.Errorf("first cell got id %d, want %d", id, NumSpecial)
	}
	if _, ok := v.Cell(MASK); ok {
		t.Error("special IDs must not map to cells")
	}
}

func TestAddIdempotentID(t *testing.T) {
	v := New()
	a := v.Add(grid.Cell(7))
	b := v.Add(grid.Cell(7))
	if a != b {
		t.Error("same cell must keep the same ID")
	}
	if v.Count(a) != 2 {
		t.Errorf("count = %d, want 2", v.Count(a))
	}
	if v.Size() != NumSpecial+1 {
		t.Errorf("size = %d", v.Size())
	}
}

func TestIDUnknownCell(t *testing.T) {
	v := New()
	v.Add(grid.Cell(1))
	if got := v.ID(grid.Cell(999)); got != UNK {
		t.Errorf("unknown cell ID = %d, want UNK", got)
	}
}

func TestCellRoundTrip(t *testing.T) {
	v := New()
	cells := []grid.Cell{10, -5, 1 << 40, 0}
	for _, c := range cells {
		id := v.Add(c)
		got, ok := v.Cell(id)
		if !ok || got != c {
			t.Errorf("Cell(%d) = %v,%v, want %v", id, got, ok, c)
		}
		if v.ID(c) != id {
			t.Errorf("ID(%v) = %d, want %d", c, v.ID(c), id)
		}
	}
}

func TestTrainingDataFactor(t *testing.T) {
	v := New()
	if v.TrainingDataFactor() != 0 {
		t.Error("empty vocab factor must be 0")
	}
	// 2 distinct cells, 6 total occurrences => factor 3.
	for i := 0; i < 4; i++ {
		v.Add(grid.Cell(1))
	}
	for i := 0; i < 2; i++ {
		v.Add(grid.Cell(2))
	}
	if got := v.TrainingDataFactor(); got != 3 {
		t.Errorf("factor = %f, want 3", got)
	}
	if v.TotalCount() != 6 {
		t.Errorf("total = %d, want 6", v.TotalCount())
	}
}

func TestTopK(t *testing.T) {
	v := New()
	for i := 0; i < 5; i++ {
		v.Add(grid.Cell(100))
	}
	for i := 0; i < 3; i++ {
		v.Add(grid.Cell(200))
	}
	v.Add(grid.Cell(300))
	top := v.TopK(2)
	if len(top) != 2 {
		t.Fatalf("TopK(2) returned %d ids", len(top))
	}
	if c, _ := v.Cell(top[0]); c != 100 {
		t.Errorf("top token is %v, want cell 100", c)
	}
	if c, _ := v.Cell(top[1]); c != 200 {
		t.Errorf("second token is %v, want cell 200", c)
	}
	if got := v.TopK(100); len(got) != 3 {
		t.Errorf("TopK over size returned %d", len(got))
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	v := New()
	for i := 0; i < 1000; i++ {
		v.Add(grid.Cell(i % 137))
	}
	var buf bytes.Buffer
	if _, err := v.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	w := New()
	if _, err := w.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if w.Size() != v.Size() {
		t.Fatalf("size mismatch: %d vs %d", w.Size(), v.Size())
	}
	for id := NumSpecial; id < v.Size(); id++ {
		vc, _ := v.Cell(id)
		wc, _ := w.Cell(id)
		if vc != wc {
			t.Errorf("id %d: cell %v vs %v", id, vc, wc)
		}
		if v.Count(id) != w.Count(id) {
			t.Errorf("id %d: count %d vs %d", id, v.Count(id), w.Count(id))
		}
	}
}

func TestSerializationRejectsGarbage(t *testing.T) {
	w := New()
	if _, err := w.ReadFrom(bytes.NewReader([]byte("NOPE00000000000000"))); err == nil {
		t.Error("bad magic must be rejected")
	}
	if _, err := w.ReadFrom(bytes.NewReader(nil)); err == nil {
		t.Error("empty input must be rejected")
	}
}

func TestVocabProperty(t *testing.T) {
	// Adding any multiset of cells: every added cell resolves back to a
	// unique ID and the total count equals the number of Adds.
	f := func(raw []int16) bool {
		v := New()
		for _, r := range raw {
			v.Add(grid.Cell(r))
		}
		distinct := map[grid.Cell]bool{}
		for _, r := range raw {
			distinct[grid.Cell(r)] = true
		}
		if v.Size() != NumSpecial+len(distinct) {
			return false
		}
		return v.TotalCount() == uint64(len(raw))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Package vocab maps spatial tokens (internal/tokenizer; KAMEL's grid-cell
// tokens of paper §3) to the dense integer IDs a BERT model consumes,
// mirroring the word-piece vocabulary of the original BERT.  It also tracks
// token frequencies, which quantify the paper's "training data factor" — the
// average number of times each token appears in the training set — the very
// statistic Tokenization exists to raise.  The mapping is tokenizer-agnostic:
// a token is an opaque 64-bit value, whether it came from a fixed grid or an
// adaptive multi-resolution tokenizer.
package vocab

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"kamel/internal/tokenizer"
)

// Special token IDs.  They occupy the first slots of every vocabulary, as in
// BERT's word-piece vocabularies.
const (
	PAD  = 0 // padding
	UNK  = 1 // cell never seen in training
	CLS  = 2 // sequence start
	SEP  = 3 // sequence end
	MASK = 4 // the masked-token placeholder BERT predicts at
	// NumSpecial is the number of reserved IDs.
	NumSpecial = 5
)

// Vocab is a bidirectional mapping between spatial tokens and token IDs plus
// per-token training-frequency counts.  It is not safe for concurrent
// mutation; build it single-threaded, then share it read-only.
type Vocab struct {
	idOf   map[tokenizer.Token]int
	cellOf []tokenizer.Token // index = id - NumSpecial
	counts []uint64          // parallel to cellOf
	total  uint64            // running sum of counts, so TotalCount is O(1)
}

// New returns an empty vocabulary containing only the special tokens.
func New() *Vocab {
	return &Vocab{idOf: make(map[tokenizer.Token]int)}
}

// Size returns the total number of token IDs, including the specials.
func (v *Vocab) Size() int { return NumSpecial + len(v.cellOf) }

// SizeBytes estimates the vocabulary's resident memory: the cell and count
// slices plus the id map (whose per-entry overhead is approximated at 48
// bytes — Go map bucket plus key/value).  Used by the model cache to charge
// a loaded model bundle against its byte budget.
func (v *Vocab) SizeBytes() int64 {
	const cellBytes = 8                         // a token is an int64
	n := int64(len(v.cellOf)) * (cellBytes + 8) // cellOf + counts
	n += int64(len(v.idOf)) * (cellBytes + 8 + 48)
	return n
}

// Add registers an occurrence of the token, creating an ID on first sight,
// and returns the token's ID.
func (v *Vocab) Add(c tokenizer.Token) int {
	id, ok := v.idOf[c]
	if !ok {
		id = NumSpecial + len(v.cellOf)
		v.idOf[c] = id
		v.cellOf = append(v.cellOf, c)
		v.counts = append(v.counts, 0)
	}
	v.counts[id-NumSpecial]++
	v.total++
	return id
}

// ID returns the token ID for the token, or UNK if it was never added.
func (v *Vocab) ID(c tokenizer.Token) int {
	if id, ok := v.idOf[c]; ok {
		return id
	}
	return UNK
}

// Cell returns the spatial token for a token ID.  The second result is false
// for special tokens and out-of-range IDs, which do not correspond to any
// place.
func (v *Vocab) Cell(id int) (tokenizer.Token, bool) {
	i := id - NumSpecial
	if i < 0 || i >= len(v.cellOf) {
		return 0, false
	}
	return v.cellOf[i], true
}

// Count returns how many times the token behind the ID occurred in training
// data, or 0 for specials/unknown IDs.
func (v *Vocab) Count(id int) uint64 {
	i := id - NumSpecial
	if i < 0 || i >= len(v.counts) {
		return 0
	}
	return v.counts[i]
}

// TotalCount returns the total number of token occurrences added.  It is
// O(1): Add and ReadFrom maintain the running sum, so stats surfaces can
// poll it per scrape without scanning every count.
func (v *Vocab) TotalCount() uint64 { return v.total }

// TrainingDataFactor returns the average number of occurrences per distinct
// token — the paper's challenge-2 statistic (§1).  Zero for an empty
// vocabulary.
func (v *Vocab) TrainingDataFactor() float64 {
	if len(v.cellOf) == 0 {
		return 0
	}
	return float64(v.TotalCount()) / float64(len(v.cellOf))
}

// TopK returns the k most frequent token IDs in descending count order.
func (v *Vocab) TopK(k int) []int {
	ids := make([]int, len(v.cellOf))
	for i := range ids {
		ids[i] = NumSpecial + i
	}
	sort.Slice(ids, func(a, b int) bool { return v.Count(ids[a]) > v.Count(ids[b]) })
	if k < len(ids) {
		ids = ids[:k]
	}
	return ids
}

// serialization format:
//   magic "KVOC" | u32 version | u64 numCells | numCells × (i64 cell, u64 count)

const (
	magic   = "KVOC"
	version = 1
)

// WriteTo serializes the vocabulary.  The cell order (and therefore the ID
// assignment) is preserved exactly.
func (v *Vocab) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	if _, err := bw.WriteString(magic); err != nil {
		return n, err
	}
	var scratch [8]byte
	binary.LittleEndian.PutUint32(scratch[:4], version)
	bw.Write(scratch[:4])
	binary.LittleEndian.PutUint64(scratch[:], uint64(len(v.cellOf)))
	bw.Write(scratch[:])
	for i, c := range v.cellOf {
		binary.LittleEndian.PutUint64(scratch[:], uint64(c))
		bw.Write(scratch[:])
		binary.LittleEndian.PutUint64(scratch[:], v.counts[i])
		if _, err := bw.Write(scratch[:]); err != nil {
			return n, err
		}
	}
	n = int64(4 + 4 + 8 + 16*len(v.cellOf))
	return n, bw.Flush()
}

// ReadFrom deserializes a vocabulary previously written by WriteTo,
// replacing the receiver's contents.
func (v *Vocab) ReadFrom(r io.Reader) (int64, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 4+4+8)
	if _, err := io.ReadFull(br, head); err != nil {
		return 0, fmt.Errorf("vocab: reading header: %w", err)
	}
	if string(head[:4]) != magic {
		return 0, fmt.Errorf("vocab: bad magic %q", head[:4])
	}
	if ver := binary.LittleEndian.Uint32(head[4:8]); ver != version {
		return 0, fmt.Errorf("vocab: unsupported version %d", ver)
	}
	num := binary.LittleEndian.Uint64(head[8:16])
	v.idOf = make(map[tokenizer.Token]int, num)
	v.cellOf = make([]tokenizer.Token, 0, num)
	v.counts = make([]uint64, 0, num)
	v.total = 0
	rec := make([]byte, 16)
	for i := uint64(0); i < num; i++ {
		if _, err := io.ReadFull(br, rec); err != nil {
			return 0, fmt.Errorf("vocab: reading record %d: %w", i, err)
		}
		c := tokenizer.Token(binary.LittleEndian.Uint64(rec[:8]))
		cnt := binary.LittleEndian.Uint64(rec[8:16])
		id := NumSpecial + len(v.cellOf)
		v.idOf[c] = id
		v.cellOf = append(v.cellOf, c)
		v.counts = append(v.counts, cnt)
		v.total += cnt
	}
	return int64(16 + 16*num), nil
}

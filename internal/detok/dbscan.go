// Package detok implements KAMEL's Detokenization module (paper §7).
// Offline, the training points inside every token are clustered with DBSCAN
// on their travel direction, capturing where the (unknown) roads run through
// the cell; online, each imputed token is replaced by the centroid of the
// cluster whose direction best matches the local trajectory direction,
// falling back to the all-points centroid and finally the hexagon centroid
// (the three cases of the paper's Figure 8).
package detok

import (
	"math"

	"kamel/internal/geo"
)

// dbpoint is a clustering sample: a planar position and a heading.
type dbpoint struct {
	pos     geo.XY
	heading float64 // radians
}

// dbscanDirections clusters points by angular proximity of their headings:
// two points are neighbors when their headings differ by less than epsRad.
// Returns a cluster label per point; -1 labels noise.  This is the classical
// DBSCAN of Ester et al. [21] with an angular metric, which is what "cluster
// the contents of each token based on each point's direction" (§7) needs.
func dbscanDirections(pts []dbpoint, epsRad float64, minPts int) []int {
	labels := make([]int, len(pts))
	for i := range labels {
		labels[i] = -2 // unvisited
	}
	neighbors := func(i int) []int {
		var out []int
		for j := range pts {
			if geo.AngleDiff(pts[i].heading, pts[j].heading) <= epsRad {
				out = append(out, j)
			}
		}
		return out
	}
	cluster := -1
	for i := range pts {
		if labels[i] != -2 {
			continue
		}
		nb := neighbors(i)
		if len(nb) < minPts {
			labels[i] = -1 // noise (may be claimed by a cluster later)
			continue
		}
		cluster++
		labels[i] = cluster
		// Expand the cluster with a work queue.
		queue := append([]int(nil), nb...)
		for len(queue) > 0 {
			j := queue[0]
			queue = queue[1:]
			if labels[j] == -1 {
				labels[j] = cluster // border point
			}
			if labels[j] != -2 {
				continue
			}
			labels[j] = cluster
			jn := neighbors(j)
			if len(jn) >= minPts {
				queue = append(queue, jn...)
			}
		}
	}
	return labels
}

// meanAngle returns the circular mean of a set of angles.
func meanAngle(angles []float64) float64 {
	var sx, sy float64
	for _, a := range angles {
		sx += math.Cos(a)
		sy += math.Sin(a)
	}
	return math.Atan2(sy, sx)
}

package detok

import (
	"math"

	"kamel/internal/geo"
	"kamel/internal/grid"
	"kamel/internal/store"
	"kamel/internal/tokenizer"
)

// Cluster is one directional cluster of training points within a token.
type Cluster struct {
	Centroid  geo.XY  // mean position of the cluster's points
	Direction float64 // circular mean heading, radians
	Size      int
}

// Table holds per-token cluster metadata, the offline product of §7 that the
// online path reads.
type Table struct {
	tk       tokenizer.Tokenizer
	clusters map[grid.Cell][]Cluster
	centroid map[grid.Cell]geo.XY // all-points centroid (Figure 8(b) fallback)
}

// Params controls the offline clustering.
type Params struct {
	EpsRad float64 // DBSCAN angular neighborhood (default 30°)
	MinPts int     // DBSCAN density threshold (default 4)
}

// DefaultParams returns the clustering defaults.
func DefaultParams() Params {
	return Params{EpsRad: 30 * math.Pi / 180, MinPts: 4}
}

// Build runs the offline operation of §7: for every token with training
// points, cluster the points by direction and record cluster centroids and
// mean directions.  Headings are taken between consecutive points of each
// trajectory.
func Build(tk tokenizer.Tokenizer, proj *geo.Projection, trajs []store.Traj, p Params) *Table {
	if p.EpsRad <= 0 {
		p.EpsRad = DefaultParams().EpsRad
	}
	if p.MinPts <= 0 {
		p.MinPts = DefaultParams().MinPts
	}
	byToken := make(map[grid.Cell][]dbpoint)
	for _, tr := range trajs {
		xys := make([]geo.XY, len(tr.Points))
		for i, pt := range tr.Points {
			xys[i] = proj.ToXY(pt)
		}
		for i := range tr.Points {
			// Heading at point i: direction to the next point, or from the
			// previous one for the last point.
			var h float64
			switch {
			case i+1 < len(xys):
				h = xys[i+1].Sub(xys[i]).Heading()
			case i > 0:
				h = xys[i].Sub(xys[i-1]).Heading()
			default:
				continue // single isolated point: no direction
			}
			tok := tr.Tokens[i]
			byToken[tok] = append(byToken[tok], dbpoint{pos: xys[i], heading: h})
		}
	}

	t := &Table{
		tk:       tk,
		clusters: make(map[grid.Cell][]Cluster, len(byToken)),
		centroid: make(map[grid.Cell]geo.XY, len(byToken)),
	}
	for tok, pts := range byToken {
		// All-points centroid (the Figure 8(b) case).
		var cx, cy float64
		for _, p := range pts {
			cx += p.pos.X
			cy += p.pos.Y
		}
		t.centroid[tok] = geo.XY{X: cx / float64(len(pts)), Y: cy / float64(len(pts))}

		labels := dbscanDirections(pts, p.EpsRad, p.MinPts)
		groups := make(map[int][]dbpoint)
		for i, l := range labels {
			if l >= 0 {
				groups[l] = append(groups[l], pts[i])
			}
		}
		for _, g := range groups {
			var sx, sy float64
			angles := make([]float64, len(g))
			for i, p := range g {
				sx += p.pos.X
				sy += p.pos.Y
				angles[i] = p.heading
			}
			t.clusters[tok] = append(t.clusters[tok], Cluster{
				Centroid:  geo.XY{X: sx / float64(len(g)), Y: sy / float64(len(g))},
				Direction: meanAngle(angles),
				Size:      len(g),
			})
		}
	}
	return t
}

// Clusters returns the clusters recorded for a token (nil if none).
func (t *Table) Clusters(tok grid.Cell) []Cluster { return t.clusters[tok] }

// NumTokens returns how many tokens carry metadata.
func (t *Table) NumTokens() int { return len(t.centroid) }

// Detokenize converts an imputed token sequence to planar points (§7 online
// operation).  For each token the direction angle is the average of the
// incoming and outgoing directions relative to its neighbor tokens; the
// cluster with the nearest direction wins.  Tokens without clusters fall
// back to the data centroid, and tokens never seen in training to the cell
// centroid.
func (t *Table) Detokenize(tokens []grid.Cell) []geo.XY {
	out := make([]geo.XY, len(tokens))
	for i, tok := range tokens {
		out[i] = t.resolve(tokens, i, tok)
	}
	return out
}

func (t *Table) resolve(tokens []grid.Cell, i int, tok grid.Cell) geo.XY {
	cl := t.clusters[tok]
	if len(cl) == 0 {
		if c, ok := t.centroid[tok]; ok {
			return c // Figure 8(b): one de-facto cluster / sparse data
		}
		return t.tk.Detokenize(tok) // Figure 8(c): never seen in training
	}
	if len(cl) == 1 {
		return cl[0].Centroid
	}
	// Figure 8(a): multiple clusters — pick by token direction angle.
	dir, ok := t.tokenDirection(tokens, i)
	if !ok {
		// No neighbors to derive a direction from: biggest cluster wins.
		best := cl[0]
		for _, c := range cl[1:] {
			if c.Size > best.Size {
				best = c
			}
		}
		return best.Centroid
	}
	best := cl[0]
	bestDiff := geo.AngleDiff(dir, cl[0].Direction)
	for _, c := range cl[1:] {
		if d := geo.AngleDiff(dir, c.Direction); d < bestDiff {
			bestDiff = d
			best = c
		}
	}
	return best.Centroid
}

// tokenDirection averages the incoming and outgoing angles of token i within
// the sequence, per §7.
func (t *Table) tokenDirection(tokens []grid.Cell, i int) (float64, bool) {
	here := t.tk.Detokenize(tokens[i])
	var angles []float64
	if i > 0 {
		angles = append(angles, here.Sub(t.tk.Detokenize(tokens[i-1])).Heading())
	}
	if i+1 < len(tokens) {
		angles = append(angles, t.tk.Detokenize(tokens[i+1]).Sub(here).Heading())
	}
	if len(angles) == 0 {
		return 0, false
	}
	return meanAngle(angles), true
}

package detok

import (
	"math"
	"testing"

	"kamel/internal/geo"
	"kamel/internal/grid"
	"kamel/internal/store"
	"kamel/internal/tokenizer"
)

// TestBuildParamsDefaults: zero params are replaced with defaults rather
// than producing a degenerate clustering.
func TestBuildParamsDefaults(t *testing.T) {
	g := grid.NewHex(75)
	proj := geo.NewProjection(41.15, -8.61)
	tr := store.Traj{ID: "a"}
	for i := 0; i < 10; i++ {
		xy := geo.XY{X: float64(i) * 20, Y: 0}
		p := proj.ToLatLng(xy)
		tr.Points = append(tr.Points, p)
		tr.Tokens = append(tr.Tokens, g.CellAt(xy))
	}
	table := Build(tokenizer.NewFixed(g), proj, []store.Traj{tr}, Params{}) // zero params
	if table.NumTokens() == 0 {
		t.Fatal("zero params must fall back to defaults, not produce nothing")
	}
}

// TestDetokenizeSingleTokenNoDirection: a lone token with multiple clusters
// falls back to the biggest cluster when there are no neighbors to derive a
// direction from.
func TestDetokenizeSingleTokenNoDirection(t *testing.T) {
	g := grid.NewHex(75)
	proj := geo.NewProjection(41.15, -8.61)
	center := g.Centroid(g.CellAt(geo.XY{X: 500, Y: 500}))
	tok := g.CellAt(center)

	var trajs []store.Traj
	mk := func(id string, pts []geo.XY) store.Traj {
		tr := store.Traj{ID: id}
		for i, xy := range pts {
			p := proj.ToLatLng(xy)
			p.T = float64(i)
			tr.Points = append(tr.Points, p)
			tr.Tokens = append(tr.Tokens, g.CellAt(xy))
		}
		return tr
	}
	// Big eastbound cluster (10 passes), small northbound cluster (5).
	for k := 0; k < 10; k++ {
		var pts []geo.XY
		for s := -4; s <= 4; s++ {
			pts = append(pts, geo.XY{X: center.X + float64(s)*20, Y: center.Y - 10})
		}
		trajs = append(trajs, mk("ew", pts))
	}
	for k := 0; k < 5; k++ {
		var pts []geo.XY
		for s := -4; s <= 4; s++ {
			pts = append(pts, geo.XY{X: center.X + 10, Y: center.Y + float64(s)*20})
		}
		trajs = append(trajs, mk("ns", pts))
	}
	table := Build(tokenizer.NewFixed(g), proj, trajs, DefaultParams())
	if len(table.Clusters(tok)) < 2 {
		t.Skip("clustering merged the streets; direction fallback untestable here")
	}
	got := table.Detokenize([]grid.Cell{tok})[0]
	// The bigger (eastbound) cluster sits ~10m south of the centroid.
	if got.Y >= center.Y {
		t.Errorf("lone token resolved to %v; expected the dominant southern cluster", got)
	}
}

// TestClusterDirectionsAreCircularMeans: recorded directions stay within
// the data's angular spread.
func TestClusterDirectionsAreCircularMeans(t *testing.T) {
	table, _, _, tok := buildCrossroads(t)
	for _, c := range table.Clusters(tok) {
		d0 := geo.AngleDiff(c.Direction, 0)
		d90 := geo.AngleDiff(c.Direction, math.Pi/2)
		if math.Min(d0, d90) > 0.3 {
			t.Errorf("cluster direction %f matches neither street axis", c.Direction)
		}
		if c.Size < 3 {
			t.Errorf("cluster of size %d should not have formed with MinPts=4", c.Size)
		}
	}
}

package detok

import (
	"math"
	"testing"

	"kamel/internal/geo"
	"kamel/internal/grid"
	"kamel/internal/store"
	"kamel/internal/tokenizer"
)

func TestDBSCANSeparatesDirections(t *testing.T) {
	var pts []dbpoint
	// 10 points heading east, 10 heading north.
	for i := 0; i < 10; i++ {
		pts = append(pts, dbpoint{heading: 0.02 * float64(i)})
	}
	for i := 0; i < 10; i++ {
		pts = append(pts, dbpoint{heading: math.Pi/2 + 0.02*float64(i)})
	}
	labels := dbscanDirections(pts, 20*math.Pi/180, 4)
	clusters := map[int]bool{}
	for _, l := range labels {
		if l >= 0 {
			clusters[l] = true
		}
	}
	if len(clusters) != 2 {
		t.Fatalf("got %d clusters, want 2: %v", len(clusters), labels)
	}
	// The east points must all share one label and the north points another.
	if labels[0] != labels[9] || labels[10] != labels[19] || labels[0] == labels[10] {
		t.Errorf("directional groups not separated: %v", labels)
	}
}

func TestDBSCANNoise(t *testing.T) {
	pts := []dbpoint{
		{heading: 0}, {heading: 0.01}, {heading: 0.02}, {heading: 0.03}, {heading: 0.04},
		{heading: math.Pi}, // lone opposite point
	}
	labels := dbscanDirections(pts, 10*math.Pi/180, 4)
	if labels[5] != -1 {
		t.Errorf("isolated point labeled %d, want noise (-1)", labels[5])
	}
	for i := 0; i < 5; i++ {
		if labels[i] != 0 {
			t.Errorf("dense point %d labeled %d, want 0", i, labels[i])
		}
	}
}

func TestDBSCANWraparound(t *testing.T) {
	// Headings straddling ±π are the same direction and must cluster
	// together.
	var pts []dbpoint
	for i := -3; i <= 3; i++ {
		pts = append(pts, dbpoint{heading: math.Pi + 0.05*float64(i)})
	}
	labels := dbscanDirections(pts, 20*math.Pi/180, 4)
	for i := range labels {
		if labels[i] != 0 {
			t.Fatalf("wraparound headings split: %v", labels)
		}
	}
}

func TestMeanAngle(t *testing.T) {
	if got := meanAngle([]float64{0.1, -0.1}); math.Abs(got) > 1e-9 {
		t.Errorf("meanAngle = %f, want 0", got)
	}
	// Wraparound mean of ±(π−0.1) is π, not 0.
	got := meanAngle([]float64{math.Pi - 0.1, -math.Pi + 0.1})
	if geo.AngleDiff(got, math.Pi) > 1e-9 {
		t.Errorf("wraparound meanAngle = %f, want ±π", got)
	}
}

// buildCrossroads creates training data through one token where two streets
// cross: east-west traffic along y=yEW and north-south along x=xNS, plus the
// detok table over a 75m hex grid.
func buildCrossroads(t *testing.T) (*Table, grid.Grid, *geo.Projection, grid.Cell) {
	t.Helper()
	g := grid.NewHex(75)
	proj := geo.NewProjection(41.15, -8.61)
	center := g.Centroid(g.CellAt(geo.XY{X: 1000, Y: 1000}))
	tok := g.CellAt(center)

	var trajs []store.Traj
	mk := func(id string, pts []geo.XY) store.Traj {
		tr := store.Traj{ID: id}
		for i, xy := range pts {
			p := proj.ToLatLng(xy)
			p.T = float64(i)
			tr.Points = append(tr.Points, p)
			tr.Tokens = append(tr.Tokens, g.CellAt(xy))
		}
		return tr
	}
	// East-west trips pass slightly south of the centroid; north-south trips
	// slightly east, so the two clusters have distinct centroids.
	for k := 0; k < 6; k++ {
		var ew, ns []geo.XY
		for s := -5; s <= 5; s++ {
			ew = append(ew, geo.XY{X: center.X + float64(s)*20, Y: center.Y - 15 + float64(k)})
			ns = append(ns, geo.XY{X: center.X + 15 + float64(k), Y: center.Y + float64(s)*20})
		}
		trajs = append(trajs, mk("ew", ew), mk("ns", ns))
	}
	return Build(tokenizer.NewFixed(g), proj, trajs, DefaultParams()), g, proj, tok
}

func TestBuildFindsTwoClusters(t *testing.T) {
	table, _, _, tok := buildCrossroads(t)
	cl := table.Clusters(tok)
	if len(cl) != 2 {
		t.Fatalf("crossroads token has %d clusters, want 2", len(cl))
	}
	// One cluster heads ~east (0), the other ~north (π/2).
	dirs := []float64{geo.AngleDiff(cl[0].Direction, 0), geo.AngleDiff(cl[0].Direction, math.Pi/2)}
	if math.Min(dirs[0], dirs[1]) > 0.2 {
		t.Errorf("cluster direction %f matches neither street", cl[0].Direction)
	}
}

func TestDetokenizePicksDirectionalCluster(t *testing.T) {
	table, g, _, tok := buildCrossroads(t)
	center := g.Centroid(tok)
	// A token sequence passing through tok heading east must resolve to the
	// east-west cluster (slightly south of the centroid).
	west := g.CellAt(geo.XY{X: center.X - 200, Y: center.Y})
	east := g.CellAt(geo.XY{X: center.X + 200, Y: center.Y})
	pts := table.Detokenize([]grid.Cell{west, tok, east})
	if dy := pts[1].Y - center.Y; dy > -5 {
		t.Errorf("eastbound pass resolved %.1fm from centroid in Y, want the southern (EW) cluster", dy)
	}
	// Heading north instead must pick the north-south cluster (east of
	// centroid).
	south := g.CellAt(geo.XY{X: center.X, Y: center.Y - 200})
	north := g.CellAt(geo.XY{X: center.X, Y: center.Y + 200})
	pts = table.Detokenize([]grid.Cell{south, tok, north})
	if dx := pts[1].X - center.X; dx < 5 {
		t.Errorf("northbound pass resolved %.1fm from centroid in X, want the eastern (NS) cluster", dx)
	}
}

func TestDetokenizeFallbacks(t *testing.T) {
	g := grid.NewHex(75)
	proj := geo.NewProjection(41.15, -8.61)
	// One short trajectory: too few points for DBSCAN clusters.
	tr := store.Traj{ID: "sparse"}
	var xys []geo.XY
	for i := 0; i < 3; i++ {
		xy := geo.XY{X: float64(i) * 10, Y: 5}
		xys = append(xys, xy)
		p := proj.ToLatLng(xy)
		tr.Points = append(tr.Points, p)
		tr.Tokens = append(tr.Tokens, g.CellAt(xy))
	}
	table := Build(tokenizer.NewFixed(g), proj, []store.Traj{tr}, DefaultParams())

	// Seen token without clusters: data centroid (Figure 8(b)).
	tok := tr.Tokens[0]
	got := table.Detokenize([]grid.Cell{tok})[0]
	if got == g.Centroid(tok) {
		t.Error("seen token must use the data centroid, not the cell centroid")
	}
	// Never-seen token: cell centroid (Figure 8(c)).
	unseen := g.CellAt(geo.XY{X: 9999, Y: 9999})
	got = table.Detokenize([]grid.Cell{unseen})[0]
	if got != g.Centroid(unseen) {
		t.Error("unseen token must fall back to the cell centroid")
	}
}

func TestBuildIgnoresIsolatedPoints(t *testing.T) {
	g := grid.NewHex(75)
	proj := geo.NewProjection(41.15, -8.61)
	tr := store.Traj{
		ID:     "single",
		Points: []geo.Point{proj.ToLatLng(geo.XY{X: 1, Y: 1})},
		Tokens: []grid.Cell{g.CellAt(geo.XY{X: 1, Y: 1})},
	}
	table := Build(tokenizer.NewFixed(g), proj, []store.Traj{tr}, DefaultParams())
	if table.NumTokens() != 0 {
		t.Error("a single point has no direction and must be skipped")
	}
}

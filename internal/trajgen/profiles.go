package trajgen

import (
	"kamel/internal/geo"
	"kamel/internal/roadnet"
)

// Profile bundles a synthetic city with a trajectory workload, standing in
// for one of the paper's two evaluation datasets (§8).  The two profiles
// preserve the datasets' contrasting shapes: Porto has many short
// trajectories over a dense street grid; Jakarta has far fewer but roughly
// 20× longer trajectories over a wider-spaced network — the property the
// paper credits for KAMEL's stronger relative performance there.
type Profile struct {
	Name      string
	City      roadnet.CityConfig
	Traffic   Config
	OriginLat float64
	OriginLng float64
}

// PortoLike returns the dense-city / short-trip profile.  scale multiplies
// the trip count (1.0 = the harness default).
func PortoLike(scale float64) Profile {
	t := DefaultConfig(int(300 * scale))
	t.MinTripMeters = 900
	t.Seed = 11
	return Profile{
		Name: "porto-like",
		City: roadnet.CityConfig{
			Width: 3000, Height: 3000,
			BlockSpacing: 250, SegLen: 50,
			CurvedRoads: 3, Roundabouts: 2, Overpasses: 1,
			Seed: 21,
		},
		Traffic:   t,
		OriginLat: 41.15, OriginLng: -8.61,
	}
}

// JakartaLike returns the wide-city / long-trip profile.
func JakartaLike(scale float64) Profile {
	t := DefaultConfig(int(60 * scale))
	t.MinTripMeters = 4000
	t.Seed = 13
	return Profile{
		Name: "jakarta-like",
		City: roadnet.CityConfig{
			Width: 4000, Height: 4000,
			BlockSpacing: 400, SegLen: 50,
			CurvedRoads: 4, Roundabouts: 3, Overpasses: 1,
			Seed: 23,
		},
		Traffic:   t,
		OriginLat: -6.2, OriginLng: 106.8,
	}
}

// Materialize generates the profile's network, projection and trajectories.
func (p Profile) Materialize() (*roadnet.Network, *geo.Projection, []geo.Trajectory, error) {
	net := roadnet.GenerateCity(p.City)
	proj := geo.NewProjection(p.OriginLat, p.OriginLng)
	trajs, err := Generate(net, proj, p.Traffic)
	return net, proj, trajs, err
}

package trajgen

import (
	"math"
	"testing"

	"kamel/internal/geo"
	"kamel/internal/roadnet"
)

func testSetup() (*roadnet.Network, *geo.Projection) {
	cfg := roadnet.DefaultCityConfig()
	cfg.Width, cfg.Height = 1500, 1500
	net := roadnet.GenerateCity(cfg)
	return net, geo.NewProjection(41.15, -8.61)
}

func TestGenerateBasics(t *testing.T) {
	net, proj := testSetup()
	cfg := DefaultConfig(10)
	trajs, err := Generate(net, proj, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(trajs) != 10 {
		t.Fatalf("got %d trajectories", len(trajs))
	}
	ids := map[string]bool{}
	for _, tr := range trajs {
		if ids[tr.ID] {
			t.Errorf("duplicate trajectory ID %s", tr.ID)
		}
		ids[tr.ID] = true
		if len(tr.Points) < 10 {
			t.Errorf("trajectory %s has only %d points", tr.ID, len(tr.Points))
		}
		if tr.LengthMeters() < cfg.MinTripMeters*0.8 {
			t.Errorf("trajectory %s is %fm, want >= ~%fm", tr.ID, tr.LengthMeters(), cfg.MinTripMeters)
		}
		// Timestamps strictly increase by the sample period.
		for i := 1; i < len(tr.Points); i++ {
			dt := tr.Points[i].T - tr.Points[i-1].T
			if math.Abs(dt-cfg.SamplePeriodS) > 1e-9 {
				t.Fatalf("trajectory %s: sample interval %f", tr.ID, dt)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	net, proj := testSetup()
	a, _ := Generate(net, proj, DefaultConfig(5))
	b, _ := Generate(net, proj, DefaultConfig(5))
	for i := range a {
		if len(a[i].Points) != len(b[i].Points) {
			t.Fatal("same seed must generate the same trajectories")
		}
		for j := range a[i].Points {
			if a[i].Points[j] != b[i].Points[j] {
				t.Fatal("point mismatch between identical seeds")
			}
		}
	}
}

func TestGenerateStaysNearNetwork(t *testing.T) {
	net, proj := testSetup()
	cfg := DefaultConfig(5)
	cfg.GPSNoiseMeters = 3
	trajs, _ := Generate(net, proj, cfg)
	for _, tr := range trajs {
		for _, p := range tr.Points {
			xy := proj.ToXY(p)
			if _, d, ok := net.NearestEdge(xy); !ok || d > 20 {
				t.Fatalf("point %v is %fm from any road", p, d)
			}
		}
	}
}

func TestGenerateSpeedRealism(t *testing.T) {
	net, proj := testSetup()
	cfg := DefaultConfig(5)
	cfg.GPSNoiseMeters = 0
	trajs, _ := Generate(net, proj, cfg)
	for _, tr := range trajs {
		speed := tr.LengthMeters() / tr.Duration()
		lo := cfg.SpeedMPS * (1 - cfg.SpeedJitter) * 0.9
		hi := cfg.SpeedMPS * (1 + cfg.SpeedJitter) * 1.1
		if speed < lo || speed > hi {
			t.Errorf("trajectory %s average speed %f outside [%f,%f]", tr.ID, speed, lo, hi)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	net, proj := testSetup()
	if _, err := Generate(&roadnet.Network{}, proj, DefaultConfig(1)); err == nil {
		t.Error("empty network must error")
	}
	bad := DefaultConfig(0)
	if _, err := Generate(net, proj, bad); err == nil {
		t.Error("zero trips must error")
	}
	impossible := DefaultConfig(1)
	impossible.MinTripMeters = 1e9
	if _, err := Generate(net, proj, impossible); err == nil {
		t.Error("unsatisfiable trip length must error")
	}
}

func TestSplitTrainTest(t *testing.T) {
	trajs := make([]geo.Trajectory, 100)
	for i := range trajs {
		trajs[i].ID = string(rune('a' + i%26))
	}
	train, test := SplitTrainTest(trajs, 0.8, 1)
	if len(train) != 80 || len(test) != 20 {
		t.Fatalf("split sizes %d/%d", len(train), len(test))
	}
	// Deterministic.
	train2, _ := SplitTrainTest(trajs, 0.8, 1)
	for i := range train {
		if train[i].ID != train2[i].ID {
			t.Fatal("split not deterministic")
		}
	}
}

func TestProfilesMaterialize(t *testing.T) {
	if testing.Short() {
		t.Skip("profile materialization is slow")
	}
	for _, p := range []Profile{PortoLike(0.05), JakartaLike(0.1)} {
		net, proj, trajs, err := p.Materialize()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if net.NumNodes() == 0 || proj == nil || len(trajs) == 0 {
			t.Fatalf("%s: empty materialization", p.Name)
		}
	}
}

func TestProfileContrast(t *testing.T) {
	if testing.Short() {
		t.Skip("profile materialization is slow")
	}
	// The jakarta-like profile must have much longer trajectories than the
	// porto-like one — the dataset property §8.1 highlights.
	_, _, porto, err := PortoLike(0.05).Materialize()
	if err != nil {
		t.Fatal(err)
	}
	_, _, jakarta, err := JakartaLike(0.1).Materialize()
	if err != nil {
		t.Fatal(err)
	}
	avg := func(ts []geo.Trajectory) float64 {
		var sum float64
		for _, tr := range ts {
			sum += float64(len(tr.Points))
		}
		return sum / float64(len(ts))
	}
	if avg(jakarta) < 2*avg(porto) {
		t.Errorf("jakarta avg %f points vs porto %f: contrast too weak", avg(jakarta), avg(porto))
	}
}

// Package trajgen simulates GPS trajectory datasets over a ground-truth road
// network.  It substitutes for the Porto and Jakarta taxi/ride-sharing
// datasets of the paper's evaluation (§8): trips are shortest paths between
// random origins and destinations, driven at a jittered speed, sampled at a
// configurable rate, and perturbed with Gaussian GPS noise.  Ground truth is
// exact by construction, which the recall/precision metrics exploit.
package trajgen

import (
	"fmt"

	"kamel/internal/geo"
	"kamel/internal/roadnet"
	"kamel/internal/tensor"
)

// Config controls trajectory simulation.
type Config struct {
	Trips          int     // number of trajectories to generate
	SpeedMPS       float64 // mean driving speed
	SpeedJitter    float64 // relative speed variation per trip (0..1)
	GPSNoiseMeters float64 // standard deviation of positional noise
	SamplePeriodS  float64 // seconds between consecutive GPS fixes
	MinTripMeters  float64 // resample origin/destination until this is met
	Seed           uint64
}

// DefaultConfig returns moderate urban-driving parameters: 10 m/s, 5 m GPS
// noise, 1 s sampling.
func DefaultConfig(trips int) Config {
	return Config{
		Trips:          trips,
		SpeedMPS:       10,
		SpeedJitter:    0.2,
		GPSNoiseMeters: 5,
		SamplePeriodS:  1,
		MinTripMeters:  800,
		Seed:           1,
	}
}

// Generate simulates cfg.Trips trajectories over the network, converting
// planar positions to WGS84 through the projection.  Trip start times are
// staggered so timestamps differ across trajectories.
func Generate(net *roadnet.Network, proj *geo.Projection, cfg Config) ([]geo.Trajectory, error) {
	if net.NumNodes() < 2 {
		return nil, fmt.Errorf("trajgen: network too small (%d nodes)", net.NumNodes())
	}
	if cfg.Trips <= 0 || cfg.SpeedMPS <= 0 || cfg.SamplePeriodS <= 0 {
		return nil, fmt.Errorf("trajgen: Trips, SpeedMPS and SamplePeriodS must be positive")
	}
	rng := tensor.NewRNG(cfg.Seed)
	out := make([]geo.Trajectory, 0, cfg.Trips)
	var startTime float64
	const maxAttempts = 1500

	for len(out) < cfg.Trips {
		var path []int
		var pathLen float64
		found := false
		for attempt := 0; attempt < maxAttempts; attempt++ {
			a := rng.Intn(net.NumNodes())
			b := rng.Intn(net.NumNodes())
			if a == b {
				continue
			}
			if net.Pos[a].Dist(net.Pos[b]) < cfg.MinTripMeters {
				continue
			}
			p, l, ok := net.ShortestPath(a, b)
			if !ok || l < cfg.MinTripMeters {
				continue
			}
			path, pathLen = p, l
			found = true
			break
		}
		if !found {
			return nil, fmt.Errorf("trajgen: could not find a trip of at least %.0fm after %d attempts", cfg.MinTripMeters, maxAttempts)
		}

		speed := cfg.SpeedMPS * (1 + cfg.SpeedJitter*(2*rng.Float64()-1))
		line := net.PathPolyline(path)
		step := speed * cfg.SamplePeriodS
		samples := geo.ResamplePolyline(line, step)

		pts := make([]geo.Point, 0, len(samples))
		for i, q := range samples {
			noisy := geo.XY{
				X: q.X + rng.NormFloat64()*cfg.GPSNoiseMeters,
				Y: q.Y + rng.NormFloat64()*cfg.GPSNoiseMeters,
			}
			p := proj.ToLatLng(noisy)
			p.T = startTime + float64(i)*cfg.SamplePeriodS
			pts = append(pts, p)
		}
		out = append(out, geo.Trajectory{
			ID:     fmt.Sprintf("trip-%04d", len(out)),
			Points: pts,
		})
		startTime += pathLen/speed + 60 // stagger the next trip
	}
	return out, nil
}

// SplitTrainTest partitions trajectories into train and test sets with the
// paper's 80/20 protocol (§8), shuffled deterministically by seed.
func SplitTrainTest(trajs []geo.Trajectory, trainFrac float64, seed uint64) (train, test []geo.Trajectory) {
	rng := tensor.NewRNG(seed)
	perm := rng.Perm(len(trajs))
	cut := int(trainFrac * float64(len(trajs)))
	for i, pi := range perm {
		if i < cut {
			train = append(train, trajs[pi])
		} else {
			test = append(test, trajs[pi])
		}
	}
	return train, test
}

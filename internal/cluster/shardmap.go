// Package cluster is KAMEL's horizontal-sharding layer: it spreads the
// serving load of one deployment across N KAMEL processes by *space*.  The
// paper's pyramid model repository (§4) already partitions the region so
// that every imputation is served by the model of a small area; this package
// lifts the same idea one level up — the region is carved into coarse hex
// shard cells, each cell is deterministically owned by exactly one shard
// process (rendezvous hashing), and a serving node forwards any request it
// does not own to the owning peer.
//
// The package has two halves:
//
//   - Map is the versioned, JSON-serialized shard map every node loads: the
//     projection origin and hex shard-cell size that define the shard key,
//     plus the shard roster (id → HTTP address).  The same map bytes on every
//     node guarantee the same cell → shard decision everywhere, so requests
//     converge in at most one hop (forwarded requests are always served
//     locally — see the serving layer's X-Kamel-Forwarded contract).
//
//   - Router evaluates the map (Owner) and carries requests to peers
//     (Forward) with bounded retries, optional hedging for tail latency, and
//     /readyz health probing.  The routing state is swapped atomically on
//     Reload, so a shard-map rollout never drops in-flight requests.
package cluster

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"net/url"
	"os"
	"sort"

	"kamel/internal/geo"
	"kamel/internal/grid"
)

// MapVersion is the shard-map format version this package reads and writes.
const MapVersion = 1

// DefaultCellEdgeM is the shard-cell hexagon edge used when a map does not
// set one: ~2 km cells are coarse enough that one urban trajectory rarely
// crosses more than a couple, and fine enough to spread a city across a
// handful of shards.
const DefaultCellEdgeM = 2000

// Shard is one serving process in the map.
type Shard struct {
	ID   string `json:"id"`   // stable identity, the rendezvous-hash key
	Addr string `json:"addr"` // base URL, e.g. "http://10.0.0.7:8080"
}

// Map is the versioned shard map.  It is pure data — the full routing input
// every node needs to make identical decisions:
//
//   - OriginLat/OriginLng fix the planar projection the shard grid lives in
//     (independent of any node's training-derived projection, so an untrained
//     node can still route).
//   - CellEdgeM and Level size the hex shard cells: the effective edge is
//     CellEdgeM / 2^Level, mirroring how pyramid level l halves the cell
//     side.  Level 0 uses CellEdgeM as-is.
//   - Shards is the roster; each cell is owned by the rendezvous-hash winner
//     among them.
//
// Generation orders map revisions: Router.Reload rejects a map whose
// generation is lower than the one it already routes by, so a stale file
// can never roll the cluster backwards.
type Map struct {
	Version    int     `json:"version"`
	Generation int     `json:"generation"`
	OriginLat  float64 `json:"origin_lat"`
	OriginLng  float64 `json:"origin_lng"`
	CellEdgeM  float64 `json:"cell_edge_m,omitempty"`
	Level      int     `json:"level,omitempty"`
	// Replicas is the replica-group size R: each shard cell is served by the
	// top R shards of its rendezvous ranking (rank 0 is the primary).  0 and
	// 1 both mean single-owner (the pre-replication behaviour).  Because the
	// ranking is a pure function of the map, every node derives identical
	// replica groups from the same map bytes.
	Replicas int     `json:"replicas,omitempty"`
	Shards   []Shard `json:"shards"`
}

// ReplicaCount returns the effective replica-group size: Replicas clamped to
// [1, len(Shards)].
func (m *Map) ReplicaCount() int {
	r := m.Replicas
	if r < 1 {
		r = 1
	}
	if r > len(m.Shards) {
		r = len(m.Shards)
	}
	return r
}

// EdgeM returns the effective shard-cell hexagon edge in meters:
// CellEdgeM (default DefaultCellEdgeM) halved Level times.
func (m *Map) EdgeM() float64 {
	edge := m.CellEdgeM
	if edge <= 0 {
		edge = DefaultCellEdgeM
	}
	return edge * math.Pow(2, -float64(m.Level))
}

// Validate reports the first problem with the map.
func (m *Map) Validate() error {
	if m.Version != MapVersion {
		return fmt.Errorf("cluster: shard map version %d, want %d", m.Version, MapVersion)
	}
	if m.Generation < 0 {
		return fmt.Errorf("cluster: negative shard map generation %d", m.Generation)
	}
	if len(m.Shards) == 0 {
		return fmt.Errorf("cluster: shard map has no shards")
	}
	if m.Level < -20 || m.Level > 20 {
		return fmt.Errorf("cluster: shard level %d outside [-20, 20]", m.Level)
	}
	if m.Replicas < 0 {
		return fmt.Errorf("cluster: negative replica count %d", m.Replicas)
	}
	if m.Replicas > len(m.Shards) {
		return fmt.Errorf("cluster: replica count %d exceeds %d shards", m.Replicas, len(m.Shards))
	}
	if e := m.EdgeM(); e <= 0 || math.IsNaN(e) || math.IsInf(e, 0) {
		return fmt.Errorf("cluster: invalid shard cell edge %v m", e)
	}
	seen := make(map[string]bool, len(m.Shards))
	for i, sh := range m.Shards {
		if sh.ID == "" {
			return fmt.Errorf("cluster: shard %d has an empty id", i)
		}
		if seen[sh.ID] {
			return fmt.Errorf("cluster: duplicate shard id %q", sh.ID)
		}
		seen[sh.ID] = true
		u, err := url.Parse(sh.Addr)
		if err != nil || u.Host == "" || (u.Scheme != "http" && u.Scheme != "https") {
			return fmt.Errorf("cluster: shard %q has invalid addr %q (want http(s)://host[:port])", sh.ID, sh.Addr)
		}
	}
	return nil
}

// ShardIDs returns the roster's ids in sorted order.
func (m *Map) ShardIDs() []string {
	ids := make([]string, len(m.Shards))
	for i, sh := range m.Shards {
		ids[i] = sh.ID
	}
	sort.Strings(ids)
	return ids
}

// ParseMap decodes and validates a shard map from its JSON serialization.
func ParseMap(data []byte) (*Map, error) {
	var m Map
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("cluster: parsing shard map: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// LoadMap reads and validates a shard map file.
func LoadMap(path string) (*Map, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: reading shard map: %w", err)
	}
	m, err := ParseMap(data)
	if err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", path, err)
	}
	return m, nil
}

// keyer is the evaluated geometric half of a map: the fixed projection and
// the coarse hex grid whose cells are the shard keys.  It is immutable.
type keyer struct {
	proj *geo.Projection
	g    grid.Grid
}

func newKeyer(m *Map) keyer {
	return keyer{
		proj: geo.NewProjection(m.OriginLat, m.OriginLng),
		g:    grid.NewHex(m.EdgeM()),
	}
}

// cellFor returns the shard cell (coarse hex token) containing p.
func (k keyer) cellFor(p geo.Point) grid.Cell {
	return k.g.CellAt(k.proj.ToXY(p))
}

// anchor reduces a trajectory to its routing point: the center of its
// lat/lng bounding box.  Using the MBR center (not the first point) keeps the
// shard decision stable under sparsification — the paper's model lookup keys
// off the MBR for the same reason.
func anchor(points []geo.Point) (geo.Point, bool) {
	if len(points) == 0 {
		return geo.Point{}, false
	}
	minLat, maxLat := points[0].Lat, points[0].Lat
	minLng, maxLng := points[0].Lng, points[0].Lng
	for _, p := range points[1:] {
		minLat, maxLat = math.Min(minLat, p.Lat), math.Max(maxLat, p.Lat)
		minLng, maxLng = math.Min(minLng, p.Lng), math.Max(maxLng, p.Lng)
	}
	return geo.Point{Lat: (minLat + maxLat) / 2, Lng: (minLng + maxLng) / 2}, true
}

// rendezvousOwner picks the owning shard id for a cell: the shard whose
// hash(shardID, cell) scores highest (highest-random-weight hashing).  The
// decisive property over modulo hashing is minimal disruption — removing a
// shard re-homes only that shard's cells, everything else keeps its owner —
// which is what lets a shard-map rollout shift load without a global
// reshuffle (and without invalidating every peer's warm model cache).
func rendezvousOwner(ids []string, c grid.Cell) string {
	var cellBytes [8]byte
	binary.BigEndian.PutUint64(cellBytes[:], uint64(c))
	best, bestScore := "", uint64(0)
	for _, id := range ids {
		// Ties break toward the lexicographically smaller id so the choice
		// stays deterministic regardless of roster order.
		score := rendezvousScore(id, cellBytes)
		if best == "" || score > bestScore || (score == bestScore && id < best) {
			best, bestScore = id, score
		}
	}
	return best
}

// rendezvousRank returns the top-n shard ids for a cell in descending score
// order: rank 0 is the owner rendezvousOwner picks, ranks 1..n-1 are its
// replicas.  The minimal-disruption property extends element-wise: removing a
// shard deletes it from every ranking it appears in and shifts the tail up
// one, leaving all other relative orders untouched — so a node failure
// promotes exactly the next-ranked replica per cell, nothing reshuffles.
func rendezvousRank(ids []string, c grid.Cell, n int) []string {
	if n < 1 {
		n = 1
	}
	if n > len(ids) {
		n = len(ids)
	}
	var cellBytes [8]byte
	binary.BigEndian.PutUint64(cellBytes[:], uint64(c))
	type scored struct {
		id    string
		score uint64
	}
	all := make([]scored, len(ids))
	for i, id := range ids {
		all[i] = scored{id: id, score: rendezvousScore(id, cellBytes)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].id < all[j].id
	})
	out := make([]string, n)
	for i := range out {
		out[i] = all[i].id
	}
	return out
}

// rendezvousScore hashes (shardID, cell) to the shard's weight for that cell.
func rendezvousScore(id string, cellBytes [8]byte) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	h.Write([]byte{0})
	h.Write(cellBytes[:])
	// Raw FNV-1a is too linear in its final input bytes: for consecutive
	// cell ids the per-shard score order barely changes, so one shard
	// would win long runs of adjacent cells.  A murmur3-style finalizer
	// restores avalanche, making the winner effectively uniform per cell.
	return mix64(h.Sum64())
}

// mix64 is the murmur3/splitmix64 avalanche finalizer: every input bit flips
// every output bit with ~50% probability, which rendezvous scoring needs for
// spatially adjacent (numerically consecutive) cells to spread across shards.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"kamel/internal/geo"
	"kamel/internal/grid"
)

func testLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func testMap(gen int, shards ...Shard) *Map {
	return &Map{
		Version:    MapVersion,
		Generation: gen,
		OriginLat:  41.15,
		OriginLng:  -8.61,
		CellEdgeM:  500,
		Shards:     shards,
	}
}

func TestClusterMapValidation(t *testing.T) {
	good := testMap(1, Shard{ID: "a", Addr: "http://127.0.0.1:1"}, Shard{ID: "b", Addr: "http://127.0.0.1:2"})
	if err := good.Validate(); err != nil {
		t.Fatalf("valid map rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Map)
	}{
		{"wrong version", func(m *Map) { m.Version = 2 }},
		{"no shards", func(m *Map) { m.Shards = nil }},
		{"empty id", func(m *Map) { m.Shards[0].ID = "" }},
		{"duplicate id", func(m *Map) { m.Shards[1].ID = m.Shards[0].ID }},
		{"bad addr", func(m *Map) { m.Shards[0].Addr = "not a url" }},
		{"bad scheme", func(m *Map) { m.Shards[0].Addr = "ftp://x:1" }},
		{"negative generation", func(m *Map) { m.Generation = -1 }},
		{"absurd level", func(m *Map) { m.Level = 99 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := *good
			m.Shards = append([]Shard(nil), good.Shards...)
			tc.mutate(&m)
			if err := m.Validate(); err == nil {
				t.Errorf("%s: want validation error", tc.name)
			}
		})
	}

	// JSON round trip preserves the map; ParseMap validates.
	if _, err := ParseMap([]byte(`{"version":1,"shards":[]}`)); err == nil {
		t.Error("ParseMap accepted a shardless map")
	}

	// Level scales the cell edge by powers of two.
	m := testMap(1, Shard{ID: "a", Addr: "http://h:1"})
	m.CellEdgeM = 1000
	m.Level = 2
	if got := m.EdgeM(); got != 250 {
		t.Errorf("EdgeM at level 2 = %v, want 250", got)
	}
	m.CellEdgeM = 0
	m.Level = 0
	if got := m.EdgeM(); got != DefaultCellEdgeM {
		t.Errorf("default EdgeM = %v, want %v", got, DefaultCellEdgeM)
	}
}

// TestClusterRendezvousProperties checks the three properties routing relies
// on: determinism, rough balance, and minimal disruption when a shard leaves.
func TestClusterRendezvousProperties(t *testing.T) {
	ids := []string{"shard-0", "shard-1", "shard-2", "shard-3", "shard-4"}
	const cells = 2000
	counts := make(map[string]int)
	owners := make(map[grid.Cell]string, cells)
	for i := 0; i < cells; i++ {
		c := grid.Cell(int64(i)*2654435761 ^ int64(i)<<32)
		owner := rendezvousOwner(ids, c)
		if again := rendezvousOwner(ids, c); again != owner {
			t.Fatalf("owner of %v not deterministic: %q then %q", c, owner, again)
		}
		// Roster order must not matter.
		rev := []string{"shard-4", "shard-3", "shard-2", "shard-1", "shard-0"}
		if other := rendezvousOwner(rev, c); other != owner {
			t.Fatalf("owner of %v depends on roster order: %q vs %q", c, owner, other)
		}
		owners[c] = owner
		counts[owner]++
	}
	for _, id := range ids {
		if counts[id] < cells/len(ids)/3 {
			t.Errorf("shard %s owns only %d of %d cells; want rough balance %v", id, counts[id], cells, counts)
		}
	}

	// Remove one shard: only its cells may change owner.
	without := []string{"shard-0", "shard-1", "shard-3", "shard-4"}
	moved := 0
	for c, owner := range owners {
		newOwner := rendezvousOwner(without, c)
		if owner == "shard-2" {
			moved++
			if newOwner == "shard-2" {
				t.Fatalf("cell %v still owned by removed shard", c)
			}
			continue
		}
		if newOwner != owner {
			t.Fatalf("cell %v owned by surviving %q was re-homed to %q", c, owner, newOwner)
		}
	}
	if moved == 0 {
		t.Fatal("removed shard owned no cells; test is vacuous")
	}
}

// TestClusterOwnerAnchor checks trajectory routing keys off the MBR center
// and stays stable across nodes evaluating the same map.
func TestClusterOwnerAnchor(t *testing.T) {
	m := testMap(1,
		Shard{ID: "shard-0", Addr: "http://h:1"},
		Shard{ID: "shard-1", Addr: "http://h:2"},
		Shard{ID: "shard-2", Addr: "http://h:3"})
	r0, err := New(m, Options{Self: "shard-0", Logger: testLogger()})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := New(m, Options{Self: "shard-1", Logger: testLogger()})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for i := 0; i < 40; i++ {
		pts := []geo.Point{
			{Lat: 41.15 + float64(i)*0.004, Lng: -8.61, T: 0},
			{Lat: 41.15 + float64(i)*0.004 + 0.001, Lng: -8.609, T: 60},
		}
		o0, c0, ok := r0.Owner(pts)
		if !ok {
			t.Fatal("Owner rejected a non-empty trajectory")
		}
		o1, c1, _ := r1.Owner(pts)
		if o0 != o1 || c0 != c1 {
			t.Fatalf("nodes disagree on owner: %q/%v vs %q/%v", o0, c0, o1, c1)
		}
		if r0.OwnerOfCell(c0) != o0 {
			t.Fatal("OwnerOfCell disagrees with Owner")
		}
		seen[o0] = true
	}
	if len(seen) < 2 {
		t.Errorf("40 spread trajectories landed on %d shard(s); want spatial spread", len(seen))
	}
	if self, _, ok := r0.Owner(nil); ok || self != "shard-0" {
		t.Errorf("empty trajectory: owner %q ok=%v, want self and ok=false", self, ok)
	}
}

// TestClusterForwardRetryAndRecovery drives the bounded-retry path: a peer
// that fails once is retried with backoff, succeeds, and stays healthy; a
// dead peer exhausts the budget and surfaces ErrPeerUnavailable.
func TestClusterForwardRetryAndRecovery(t *testing.T) {
	var calls atomic.Int64
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(HeaderForwarded) != "shard-0" {
			t.Errorf("forwarded request missing %s header", HeaderForwarded)
		}
		if calls.Add(1) == 1 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer peer.Close()

	m := testMap(1, Shard{ID: "shard-0", Addr: "http://h:1"}, Shard{ID: "shard-1", Addr: peer.URL})
	rt, err := New(m, Options{Self: "shard-0", Retries: 1, RetryBackoff: time.Millisecond, Logger: testLogger()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Forward(context.Background(), "shard-1", "/v1/impute", []byte(`{}`))
	if err != nil {
		t.Fatalf("forward with one transient failure: %v", err)
	}
	if res.Status != http.StatusOK || string(res.Body) != `{"ok":true}` {
		t.Fatalf("unexpected result %d %q", res.Status, res.Body)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("peer saw %d calls, want 2 (original + retry)", got)
	}
	if !rt.Healthy("shard-1") {
		t.Error("peer must be healthy after a successful forward")
	}
	st := rt.ClusterStats()
	if st.Forwards != 1 || st.Retries != 1 || st.ForwardErrors != 0 {
		t.Errorf("stats = %+v, want 1 forward, 1 retry, 0 errors", st)
	}

	// Kill the peer: the retry budget is exhausted and the error is typed.
	peer.Close()
	_, err = rt.Forward(context.Background(), "shard-1", "/v1/impute", []byte(`{}`))
	if !errors.Is(err, ErrPeerUnavailable) {
		t.Fatalf("dead peer error = %v, want ErrPeerUnavailable", err)
	}
	if rt.Healthy("shard-1") {
		t.Error("peer must be marked unhealthy after exhausting retries")
	}
	if st := rt.ClusterStats(); st.ForwardErrors != 1 {
		t.Errorf("forward errors = %d, want 1", st.ForwardErrors)
	}

	// Unknown shards are a distinct, non-retried error.
	if _, err := rt.Forward(context.Background(), "nope", "/", nil); !errors.Is(err, ErrUnknownShard) {
		t.Fatalf("unknown shard error = %v", err)
	}
}

// TestClusterForwardHedging checks the tail-latency hedge: when the primary
// attempt stalls, a second identical request is launched after HedgeAfter
// and its (fast) response wins.
func TestClusterForwardHedging(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			<-release // first request stalls until the test ends
		}
		fmt.Fprint(w, `{"fast":true}`)
	}))
	defer peer.Close()
	defer close(release)

	m := testMap(1, Shard{ID: "shard-0", Addr: "http://h:1"}, Shard{ID: "shard-1", Addr: peer.URL})
	rt, err := New(m, Options{
		Self: "shard-0", HedgeAfter: 10 * time.Millisecond,
		ForwardTimeout: 5 * time.Second, Logger: testLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := rt.Forward(context.Background(), "shard-1", "/v1/impute", []byte(`{}`))
	if err != nil {
		t.Fatalf("hedged forward: %v", err)
	}
	if string(res.Body) != `{"fast":true}` {
		t.Fatalf("unexpected body %q", res.Body)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("hedge did not rescue the stalled request (took %v)", elapsed)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("peer saw %d calls, want 2 (stalled primary + hedge)", got)
	}
	if st := rt.ClusterStats(); st.Hedges != 1 {
		t.Errorf("hedges = %d, want 1", st.Hedges)
	}
}

// TestClusterReloadKeepsInFlight proves the reload contract: swapping the
// shard map re-routes new requests without tearing one already in flight,
// and stale generations are rejected.
func TestClusterReloadKeepsInFlight(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		fmt.Fprint(w, `{"done":true}`)
	}))
	defer peer.Close()

	m := testMap(1, Shard{ID: "shard-0", Addr: "http://h:1"}, Shard{ID: "shard-1", Addr: peer.URL})
	rt, err := New(m, Options{Self: "shard-0", ForwardTimeout: 5 * time.Second, Logger: testLogger()})
	if err != nil {
		t.Fatal(err)
	}

	type done struct {
		res ForwardResult
		err error
	}
	resCh := make(chan done, 1)
	go func() {
		res, err := rt.Forward(context.Background(), "shard-1", "/v1/impute", []byte(`{}`))
		resCh <- done{res, err}
	}()
	<-entered // the forward is inside the peer handler

	// Roll out generation 2: shard-1 is gone from the map.
	m2 := testMap(2, Shard{ID: "shard-0", Addr: "http://h:1"})
	if err := rt.Reload(m2); err != nil {
		t.Fatalf("reload: %v", err)
	}
	if rt.Map().Generation != 2 {
		t.Fatalf("map generation %d after reload", rt.Map().Generation)
	}
	// New requests no longer know shard-1...
	if _, err := rt.Forward(context.Background(), "shard-1", "/", nil); !errors.Is(err, ErrUnknownShard) {
		t.Fatalf("post-reload forward error = %v, want ErrUnknownShard", err)
	}
	// ...but the in-flight one completes against the state it resolved.
	close(release)
	d := <-resCh
	if d.err != nil || d.res.Status != http.StatusOK {
		t.Fatalf("in-flight forward dropped by reload: %v (status %d)", d.err, d.res.Status)
	}

	// A stale map (generation 1 < 2) must be rejected.
	if err := rt.Reload(m); !errors.Is(err, ErrStaleMap) {
		t.Fatalf("stale reload error = %v, want ErrStaleMap", err)
	}
	// A map without self must be rejected.
	m3 := testMap(3, Shard{ID: "shard-9", Addr: "http://h:9"})
	if err := rt.Reload(m3); err == nil {
		t.Fatal("reload accepted a map without self")
	}
}

// TestClusterProbeHealth drives the /readyz probe loop: an unready peer is
// marked unhealthy (and forwarded requests fail fast), then recovers.
func TestClusterProbeHealth(t *testing.T) {
	var ready atomic.Bool
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" && !ready.Load() {
			http.Error(w, "warming", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `{"status":"ready"}`)
	}))
	defer peer.Close()

	m := testMap(1, Shard{ID: "shard-0", Addr: "http://h:1"}, Shard{ID: "shard-1", Addr: peer.URL})
	rt, err := New(m, Options{Self: "shard-0", ProbeInterval: 5 * time.Millisecond, Logger: testLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	probeDone := make(chan struct{})
	go func() { rt.StartProbing(ctx); close(probeDone) }()

	waitFor := func(want bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for rt.Healthy("shard-1") != want {
			if time.Now().After(deadline) {
				t.Fatalf("peer never became %s", what)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitFor(false, "unhealthy")
	// Fail-fast: with probing active, a dead-marked peer is not dialed.
	if _, err := rt.Forward(ctx, "shard-1", "/v1/impute", nil); !errors.Is(err, ErrPeerUnavailable) {
		t.Fatalf("fail-fast error = %v, want ErrPeerUnavailable", err)
	}
	ready.Store(true)
	waitFor(true, "healthy again")
	if _, err := rt.Forward(ctx, "shard-1", "/v1/impute", []byte(`{}`)); err != nil {
		t.Fatalf("forward after recovery: %v", err)
	}
	if st := rt.ClusterStats(); st.PeersHealthy != 1 {
		t.Errorf("peers_healthy = %d, want 1 after recovery", st.PeersHealthy)
	}
	cancel()
	<-probeDone
}

// TestClusterForwardWriteBypassesReadinessGate pins the bootstrap path of a
// fresh replica: a peer that answers /readyz 503 (alive but untrained) is
// fail-fasted for reads, yet ForwardWrite still delivers the train batch —
// otherwise an empty node could never receive the fan-out that makes it
// ready.
func TestClusterForwardWriteBypassesReadinessGate(t *testing.T) {
	var trains atomic.Int64
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/readyz":
			http.Error(w, `{"error":{"code":"not_trained"}}`, http.StatusServiceUnavailable)
		case "/v1/train":
			trains.Add(1)
			fmt.Fprint(w, `{"trajectories":1}`)
		default:
			http.NotFound(w, r)
		}
	}))
	defer peer.Close()

	m := testMap(1, Shard{ID: "shard-0", Addr: "http://h:1"}, Shard{ID: "shard-1", Addr: peer.URL})
	rt, err := New(m, Options{Self: "shard-0", ProbeInterval: 5 * time.Millisecond, Logger: testLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	probeDone := make(chan struct{})
	go func() { rt.StartProbing(ctx); close(probeDone) }()

	deadline := time.Now().Add(5 * time.Second)
	for rt.Healthy("shard-1") {
		if time.Now().After(deadline) {
			t.Fatal("peer never marked not-ready")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Reads fail fast on a not-ready peer...
	if _, err := rt.Forward(ctx, "shard-1", "/v1/impute", nil); !errors.Is(err, ErrPeerUnavailable) {
		t.Fatalf("read fail-fast error = %v, want ErrPeerUnavailable", err)
	}
	// ...but writes go through: the peer is alive.
	res, err := rt.ForwardWrite(ctx, "shard-1", "/v1/train", []byte(`[]`))
	if err != nil {
		t.Fatalf("ForwardWrite to alive-but-unready peer: %v", err)
	}
	if res.Status != http.StatusOK || trains.Load() != 1 {
		t.Fatalf("write not delivered: status=%d trains=%d", res.Status, trains.Load())
	}
	// A write ack must not flip the readiness verdict — only /readyz does.
	if rt.Healthy("shard-1") {
		t.Error("write ack marked a not-ready peer healthy")
	}
	cancel()
	<-probeDone
}

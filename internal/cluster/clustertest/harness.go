// Package clustertest is the single-binary cluster harness: it stands up an
// in-process N-node KAMEL cluster on net/http/httptest servers — no real
// networking, no subprocesses — so integration tests and benchmarks can
// exercise forwarding, scatter-gather merges, peer failure, and shard-map
// reloads under the race detector.
//
// The chicken-and-egg of cluster bring-up (a node's router needs every
// node's address; an address exists only once its server is listening) is
// resolved with late-bound handlers: all servers start first behind a
// swappable placeholder, the shard map is assembled from their URLs, and
// then each node's real handler — built by the caller around that node's
// router — is swapped in.
package clustertest

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"

	"kamel/internal/cluster"
)

// Node is one in-process shard: its identity, its HTTP server, and the
// router its handler forwards through.
type Node struct {
	ID     string
	Server *httptest.Server
	Router *cluster.Router

	handler atomic.Pointer[http.Handler]
	closed  atomic.Bool
}

// URL returns the node's base address.
func (n *Node) URL() string { return n.Server.URL }

// SetHandler swaps the node's HTTP handler (tests use it to wrap recorders
// around the real API surface after construction).
func (n *Node) SetHandler(h http.Handler) { n.handler.Store(&h) }

func (n *Node) serveHTTP(w http.ResponseWriter, r *http.Request) {
	if h := n.handler.Load(); h != nil {
		(*h).ServeHTTP(w, r)
		return
	}
	http.Error(w, "node not ready", http.StatusServiceUnavailable)
}

// BuildNode constructs node i's HTTP handler.  It receives the node's shard
// id and its router, already wired to the cluster map; the returned handler
// is what the node's httptest server serves.
type BuildNode func(i int, self string, rt *cluster.Router) (http.Handler, error)

// Cluster is a running in-process cluster.
type Cluster struct {
	Map   *cluster.Map
	Nodes []*Node
}

// New starts an n-node cluster.  tmpl supplies the spatial half of the shard
// map (origin, cell edge, level; Version and Generation are forced to sane
// values, Shards is replaced by the harness roster shard-0..shard-n-1).
// optsFor returns each node's router options (Self is overridden by the
// harness); nil uses defaults.  build constructs each node's handler.
func New(n int, tmpl cluster.Map, optsFor func(i int, self string) cluster.Options, build BuildNode) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("clustertest: need at least 1 node, got %d", n)
	}
	c := &Cluster{}
	m := tmpl
	m.Version = cluster.MapVersion
	if m.Generation < 1 {
		m.Generation = 1
	}
	m.Shards = nil
	for i := 0; i < n; i++ {
		node := &Node{ID: fmt.Sprintf("shard-%d", i)}
		node.Server = httptest.NewServer(http.HandlerFunc(node.serveHTTP))
		c.Nodes = append(c.Nodes, node)
		m.Shards = append(m.Shards, cluster.Shard{ID: node.ID, Addr: node.Server.URL})
	}
	c.Map = &m
	for i, node := range c.Nodes {
		var opts cluster.Options
		if optsFor != nil {
			opts = optsFor(i, node.ID)
		}
		opts.Self = node.ID
		rt, err := cluster.New(c.Map, opts)
		if err != nil {
			c.Close()
			return nil, err
		}
		node.Router = rt
		h, err := build(i, node.ID, rt)
		if err != nil {
			c.Close()
			return nil, err
		}
		node.SetHandler(h)
	}
	return c, nil
}

// Kill closes node i's server: subsequent forwards to it fail at the
// transport, exactly like a crashed shard.  Idempotent.
func (c *Cluster) Kill(i int) {
	if c.Nodes[i].closed.CompareAndSwap(false, true) {
		c.Nodes[i].Server.Close()
	}
}

// Reload pushes a new shard map to every node's router, mimicking a
// coordinated map rollout.  The first error aborts the rollout.
func (c *Cluster) Reload(m *cluster.Map) error {
	for _, node := range c.Nodes {
		if node.Router == nil {
			continue
		}
		if err := node.Router.Reload(m); err != nil {
			return err
		}
	}
	c.Map = m
	return nil
}

// Close shuts every node down.
func (c *Cluster) Close() {
	for i := range c.Nodes {
		c.Kill(i)
	}
}
